package cnprobase_test

// Runnable godoc examples for the public API. `go test` executes them,
// so the documented flow — generate a world, build the taxonomy, query
// and export it — is exercised on every run.

import (
	"bytes"
	"fmt"
	"strings"

	"cnprobase"
)

// ExampleBuild shows the three-call flow from the package comment:
// generate (or load) a corpus, build, query. Workers=1 selects the
// sequential reference path; any worker count produces the same
// taxonomy.
func ExampleBuild() {
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 300
	w, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	opts := cnprobase.DefaultOptions()
	opts.EnableNeural = false // skip model training in the example
	opts.Workers = 1
	res, err := cnprobase.Build(w.Corpus(), opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	st := res.Report.Stats
	fmt.Println(st.Entities > 0, st.Concepts > 0, st.IsARelations > 0)
	// Output: true true true
}

// ExampleTaxonomy_Hypernyms queries the direct hypernyms of a
// disambiguated entity — the paper's getConcept API.
func ExampleTaxonomy_Hypernyms() {
	tax := cnprobase.NewTaxonomy()
	tax.MarkEntity("刘德华（歌手）")
	if err := tax.AddIsA("刘德华（歌手）", "歌手", cnprobase.SourceBracket, 1); err != nil {
		fmt.Println(err)
		return
	}
	if err := tax.AddIsA("刘德华（歌手）", "演员", cnprobase.SourceTag, 1); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(tax.Hypernyms("刘德华（歌手）"))
	// Output: [歌手 演员]
}

// ExampleSaveSnapshot shows the build-once / serve-many flow: build
// the taxonomy (expensive, offline), save the complete serving state
// as a binary snapshot, load it back (milliseconds — what
// `cnpserver -load` does on startup) and serve queries from the loaded
// copy. The loaded taxonomy answers every query exactly like the
// freshly built one.
func ExampleSaveSnapshot() {
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 300
	w, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	opts := cnprobase.DefaultOptions()
	opts.EnableNeural = false
	opts.Workers = 1
	res, err := cnprobase.Build(w.Corpus(), opts)
	if err != nil {
		fmt.Println(err)
		return
	}

	var snap bytes.Buffer // a file in production: cnprobase build -save
	if err := cnprobase.SaveSnapshot(&snap, res); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := cnprobase.LoadSnapshot(&snap)
	if err != nil {
		fmt.Println(err)
		return
	}

	sameEdges := loaded.Taxonomy.EdgeCount() == res.Taxonomy.EdgeCount()
	sameMentions := loaded.Mentions.Size() == res.Mentions.Size()
	sameAnswers := true
	for _, e := range w.Entities {
		if fmt.Sprint(loaded.Taxonomy.Hypernyms(e.ID)) != fmt.Sprint(res.Taxonomy.Hypernyms(e.ID)) {
			sameAnswers = false
		}
	}
	fmt.Println(sameEdges, sameMentions, sameAnswers)
	// Output: true true true
}

// ExampleResult_Freeze shows the build/serve split: freeze the build
// result into an immutable serving view (interned IDs, CSR adjacency,
// pre-ranked typicality — zero locks per query) and answer the
// paper's APIs from it. Servers hold the view in an atomic pointer
// and swap in a freshly frozen one to publish updates (what cnpserver
// does on SIGHUP).
func ExampleResult_Freeze() {
	tax := cnprobase.NewTaxonomy()
	tax.MarkEntity("刘德华（歌手）")
	for _, hyper := range []string{"歌手", "演员"} {
		if err := tax.AddIsA("刘德华（歌手）", hyper, cnprobase.SourceTag, 1); err != nil {
			fmt.Println(err)
			return
		}
	}
	res := &cnprobase.Result{Taxonomy: tax}
	view := res.Freeze()
	fmt.Println(view.Hypernyms("刘德华（歌手）"))
	fmt.Println(view.Lookup("刘德华"), view.Stats().Entities)
	// Output:
	// [歌手 演员]
	// [] 1
}

// ExampleTaxonomy_WriteTSV exports the edge list in the conventional
// taxonomy release format (rows sorted by hyponym, then hypernym).
func ExampleTaxonomy_WriteTSV() {
	tax := cnprobase.NewTaxonomy()
	tax.MarkEntity("刘德华（演员）")
	for _, e := range []struct {
		hypo, hyper string
		src         cnprobase.Source
	}{
		{"男演员", "演员", cnprobase.SourceMorph},
		{"刘德华（演员）", "男演员", cnprobase.SourceBracket},
		{"刘德华（演员）", "演员", cnprobase.SourceTag},
	} {
		if err := tax.AddIsA(e.hypo, e.hyper, e.src, 1); err != nil {
			fmt.Println(err)
			return
		}
	}
	var buf bytes.Buffer
	if err := tax.WriteTSV(&buf); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(strings.ReplaceAll(buf.String(), "\t", " | "))
	// Output:
	// hyponym | hypernym | sources | count
	// 刘德华（演员） | 演员 | tag | 1
	// 刘德华（演员） | 男演员 | bracket | 1
	// 男演员 | 演员 | morph | 1
}
