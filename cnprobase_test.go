package cnprobase

import (
	"bytes"
	"testing"
)

func smallOptions() Options {
	o := DefaultOptions()
	o.NeuralEpochs = 1
	o.NeuralMaxSamples = 200
	o.Neural.Vocab = 300
	return o
}

func buildSmall(t testing.TB, entities int) (*World, *Result) {
	t.Helper()
	wcfg := DefaultWorldConfig()
	wcfg.Entities = entities
	w, err := GenerateWorld(wcfg)
	if err != nil {
		t.Fatalf("GenerateWorld: %v", err)
	}
	res, err := Build(w.Corpus(), smallOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w, res
}

func TestFacadeEndToEnd(t *testing.T) {
	w, res := buildSmall(t, 800)
	st := res.Report.Stats
	if st.Entities == 0 || st.Concepts == 0 || st.IsARelations == 0 {
		t.Fatalf("empty taxonomy: %+v", st)
	}
	// Query path: an entity's hypernyms are judged correct.
	oracle := w.Oracle()
	checked := 0
	for _, e := range w.Entities {
		hs := res.Taxonomy.Hypernyms(e.ID)
		if len(hs) == 0 {
			continue
		}
		checked++
		ok := false
		for _, h := range hs {
			if oracle.Judge(e.ID, h) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("entity %q: no correct hypernym among %v", e.ID, hs)
		}
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no entity had hypernyms")
	}
	if p := SamplePrecision(res.Taxonomy, oracle, 2000, 1); p < 0.85 {
		t.Errorf("precision = %.3f, want ≥0.85", p)
	}
}

func TestFacadeQACoverage(t *testing.T) {
	w, res := buildSmall(t, 800)
	cov, avg := QACoverage(w, res, 2000)
	if cov < 0.8 {
		t.Errorf("coverage = %.3f, want ≥0.8", cov)
	}
	if avg < 1 {
		t.Errorf("avg concepts per entity = %.2f, want ≥1", avg)
	}
}

func TestFacadeCorpusRoundTrip(t *testing.T) {
	w, _ := buildSmall(t, 300)
	var buf bytes.Buffer
	if err := w.Corpus().WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	c, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if c.Len() != w.Corpus().Len() {
		t.Errorf("round trip pages = %d, want %d", c.Len(), w.Corpus().Len())
	}
}

func TestFacadeTaxonomySerialization(t *testing.T) {
	_, res := buildSmall(t, 300)
	var buf bytes.Buffer
	if err := res.Taxonomy.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	tax, err := ReadTaxonomy(&buf)
	if err != nil {
		t.Fatalf("ReadTaxonomy: %v", err)
	}
	if tax.EdgeCount() != res.Taxonomy.EdgeCount() {
		t.Errorf("edges = %d, want %d", tax.EdgeCount(), res.Taxonomy.EdgeCount())
	}
}

func TestFacadeBaselines(t *testing.T) {
	w, res := buildSmall(t, 800)
	oracle := w.Oracle()
	wiki := BuildWikiTaxonomy(w.Corpus(), DefaultWikiTaxonomyConfig())
	tran, _ := BuildProbaseTran(w, DefaultProbaseTranConfig())
	pCN := SamplePrecision(res.Taxonomy, oracle, 1000, 1)
	pTran := SamplePrecision(tran, oracle, 1000, 1)
	if pTran >= pCN {
		t.Errorf("Probase-Tran %.3f should be below CN-Probase %.3f", pTran, pCN)
	}
	if wiki.EdgeCount() >= res.Taxonomy.EdgeCount() {
		t.Errorf("WikiTaxonomy %d edges should be below CN-Probase %d",
			wiki.EdgeCount(), res.Taxonomy.EdgeCount())
	}
}
