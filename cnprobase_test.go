package cnprobase

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

func smallOptions() Options {
	o := DefaultOptions()
	o.NeuralEpochs = 1
	o.NeuralMaxSamples = 200
	o.Neural.Vocab = 300
	return o
}

func buildSmall(t testing.TB, entities int) (*World, *Result) {
	t.Helper()
	wcfg := DefaultWorldConfig()
	wcfg.Entities = entities
	w, err := GenerateWorld(wcfg)
	if err != nil {
		t.Fatalf("GenerateWorld: %v", err)
	}
	res, err := Build(w.Corpus(), smallOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w, res
}

func TestFacadeEndToEnd(t *testing.T) {
	w, res := buildSmall(t, 800)
	st := res.Report.Stats
	if st.Entities == 0 || st.Concepts == 0 || st.IsARelations == 0 {
		t.Fatalf("empty taxonomy: %+v", st)
	}
	// Query path: an entity's hypernyms are judged correct.
	oracle := w.Oracle()
	checked := 0
	for _, e := range w.Entities {
		hs := res.Taxonomy.Hypernyms(e.ID)
		if len(hs) == 0 {
			continue
		}
		checked++
		ok := false
		for _, h := range hs {
			if oracle.Judge(e.ID, h) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("entity %q: no correct hypernym among %v", e.ID, hs)
		}
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no entity had hypernyms")
	}
	if p := SamplePrecision(res.Taxonomy, oracle, 2000, 1); p < 0.85 {
		t.Errorf("precision = %.3f, want ≥0.85", p)
	}
}

func TestFacadeQACoverage(t *testing.T) {
	w, res := buildSmall(t, 800)
	cov, avg := QACoverage(w, res, 2000)
	if cov < 0.8 {
		t.Errorf("coverage = %.3f, want ≥0.8", cov)
	}
	if avg < 1 {
		t.Errorf("avg concepts per entity = %.2f, want ≥1", avg)
	}
}

// TestFacadeViewApplications pins the application layer on the serving
// view: the view-backed conceptualizer and QA evaluation must agree
// exactly with their store-backed counterparts over the same build.
func TestFacadeViewApplications(t *testing.T) {
	w, res := buildSmall(t, 800)
	view := res.Freeze()

	store := NewConceptualizer(res.Taxonomy, res.Mentions)
	onView := NewViewConceptualizer(view)
	texts := []string{""}
	for _, e := range w.Entities[:20] {
		mention := e.ID
		if i := bytes.IndexRune([]byte(mention), '（'); i >= 0 {
			mention = mention[:i]
		}
		texts = append(texts, mention, mention+"是什么？")
	}
	covered := 0
	for _, text := range texts {
		a, b := store.Conceptualize(text), onView.Conceptualize(text)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("conceptualize(%q): store %+v != view %+v", text, a, b)
		}
		u := Understand(text, view)
		if u.Covered {
			covered++
			if len(u.Mentions) == 0 && len(u.Concepts) == 0 {
				t.Errorf("Understand(%q) covered but empty: %+v", text, u)
			}
		}
	}
	if covered == 0 {
		t.Fatal("no probe text was covered by the taxonomy")
	}

	cov, avg := QACoverage(w, res, 1000)
	covV, avgV := QACoverageView(w, view, 1000)
	if cov != covV || avg != avgV {
		t.Errorf("QACoverage store (%v, %v) != view (%v, %v)", cov, avg, covV, avgV)
	}
}

func TestFacadeCorpusRoundTrip(t *testing.T) {
	w, _ := buildSmall(t, 300)
	var buf bytes.Buffer
	if err := w.Corpus().WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	c, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if c.Len() != w.Corpus().Len() {
		t.Errorf("round trip pages = %d, want %d", c.Len(), w.Corpus().Len())
	}
}

func TestFacadeTaxonomySerialization(t *testing.T) {
	_, res := buildSmall(t, 300)
	var buf bytes.Buffer
	if err := res.Taxonomy.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	tax, err := ReadTaxonomy(&buf)
	if err != nil {
		t.Fatalf("ReadTaxonomy: %v", err)
	}
	if tax.EdgeCount() != res.Taxonomy.EdgeCount() {
		t.Errorf("edges = %d, want %d", tax.EdgeCount(), res.Taxonomy.EdgeCount())
	}
}

// TestFacadeSnapshotRoundTrip exercises SaveSnapshot/LoadSnapshot end
// to end: the loaded Result serves identical queries and carries the
// build report back (with stats recomputed from the loaded graph).
func TestFacadeSnapshotRoundTrip(t *testing.T) {
	_, res := buildSmall(t, 300)
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, res); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	sharded, err := LoadSnapshotSharded(bytes.NewReader(buf.Bytes()), 2, 64)
	if err != nil {
		t.Fatalf("LoadSnapshotSharded: %v", err)
	}
	if sharded.Taxonomy.ShardCount() != 64 {
		t.Errorf("LoadSnapshotSharded shard count = %d, want 64", sharded.Taxonomy.ShardCount())
	}
	if sharded.Taxonomy.EdgeCount() != res.Taxonomy.EdgeCount() {
		t.Errorf("sharded load edges = %d, want %d", sharded.Taxonomy.EdgeCount(), res.Taxonomy.EdgeCount())
	}
	if loaded.Taxonomy.EdgeCount() != res.Taxonomy.EdgeCount() {
		t.Errorf("edges = %d, want %d", loaded.Taxonomy.EdgeCount(), res.Taxonomy.EdgeCount())
	}
	if loaded.Report == nil {
		t.Fatal("loaded Result has no report")
	}
	if loaded.Report.Stats != res.Report.Stats {
		t.Errorf("report stats = %+v, want %+v", loaded.Report.Stats, res.Report.Stats)
	}
	if loaded.Report.Pages != res.Report.Pages {
		t.Errorf("report pages = %d, want %d", loaded.Report.Pages, res.Report.Pages)
	}
	if loaded.Report.Verification.Kept != res.Report.Verification.Kept {
		t.Errorf("verification report not restored: %+v", loaded.Report.Verification)
	}
	for _, n := range res.Taxonomy.Nodes() {
		if a, b := res.Taxonomy.Hypernyms(n), loaded.Taxonomy.Hypernyms(n); len(a) != len(b) {
			t.Fatalf("Hypernyms(%q) = %v, want %v", n, b, a)
		}
		if a, b := res.Mentions.Lookup(n), loaded.Mentions.Lookup(n); len(a) != len(b) {
			t.Fatalf("Lookup(%q) = %v, want %v", n, b, a)
		}
	}
	// The evidence section came back too: the loaded Result is
	// Update-capable.
	if loaded.Evidence == nil || loaded.Stats == nil || len(loaded.Kept) == 0 {
		t.Error("snapshot did not restore the update substrate (evidence/stats/kept)")
	}
}

// TestFacadeUpdateAfterSnapshotLoad is the round-trip the evidence
// section exists for: save a build, load it, and feed the loaded
// Result the next crawl batch — the updated taxonomy must match what
// updating the original in-memory Result produces.
func TestFacadeUpdateAfterSnapshotLoad(t *testing.T) {
	wcfg := DefaultWorldConfig()
	wcfg.Entities = 500
	w, err := GenerateWorld(wcfg)
	if err != nil {
		t.Fatalf("GenerateWorld: %v", err)
	}
	corpus := w.Corpus()
	half := corpus.Len() / 2
	first := &Corpus{Pages: corpus.Pages[:half]}
	delta := &Corpus{Pages: corpus.Pages[half:]}
	opts := smallOptions()
	opts.EnableNeural = false
	res, err := Build(first, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, res); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}

	// A Result without evidence (e.g. assembled from a JSON taxonomy)
	// must still refuse cleanly.
	bare := &Result{Taxonomy: loaded.Taxonomy, Mentions: loaded.Mentions, Report: loaded.Report}
	if _, err := Update(bare, delta, opts); err == nil {
		t.Error("Update on an evidence-less Result should fail")
	}

	updLoaded, err := Update(loaded, delta, opts)
	if err != nil {
		t.Fatalf("Update after snapshot load: %v", err)
	}
	updOrig, err := Update(res, delta, opts)
	if err != nil {
		t.Fatalf("Update on original: %v", err)
	}
	if a, b := updOrig.Taxonomy.Edges(), updLoaded.Taxonomy.Edges(); !reflect.DeepEqual(a, b) {
		t.Fatalf("loaded-then-updated taxonomy diverged from original-then-updated: %d vs %d edges", len(a), len(b))
	}
	if !reflect.DeepEqual(updOrig.Kept, updLoaded.Kept) {
		t.Fatalf("kept sets diverged: %d vs %d", len(updOrig.Kept), len(updLoaded.Kept))
	}
	newPage := &delta.Pages[0]
	if len(updLoaded.Mentions.Lookup(newPage.Title)) == 0 {
		t.Errorf("mention %q not indexed after post-load update", newPage.Title)
	}
}

// TestFacadeSnapshotBytesIgnoreConcurrency pins the golden guarantee
// at the facade level: builds of the same world with different
// Workers/Shards settings save byte-identical snapshots, because the
// report's concurrency knobs are normalized out of the metadata.
func TestFacadeSnapshotBytesIgnoreConcurrency(t *testing.T) {
	wcfg := DefaultWorldConfig()
	wcfg.Entities = 300
	w, err := GenerateWorld(wcfg)
	if err != nil {
		t.Fatalf("GenerateWorld: %v", err)
	}
	save := func(workers, shards int) []byte {
		opts := smallOptions()
		opts.EnableNeural = false
		opts.Workers = workers
		opts.Shards = shards
		res, err := Build(w.Corpus(), opts)
		if err != nil {
			t.Fatalf("Build(workers=%d, shards=%d): %v", workers, shards, err)
		}
		var buf bytes.Buffer
		if err := SaveSnapshot(&buf, res); err != nil {
			t.Fatalf("SaveSnapshot: %v", err)
		}
		return buf.Bytes()
	}
	ref := save(1, 1)
	if got := save(8, 48); !bytes.Equal(ref, got) {
		t.Errorf("snapshot bytes differ across build concurrency: %d vs %d bytes", len(ref), len(got))
	}
}

// TestFacadeFreezeAndLoadView covers the serving-view surface of the
// facade: Result.Freeze answers like the store, NewViewServer serves
// it, and LoadSnapshotView decodes a snapshot straight into an
// equivalent view.
func TestFacadeFreezeAndLoadView(t *testing.T) {
	_, res := buildSmall(t, 300)
	view := res.Freeze()
	if view.Stats() != res.Taxonomy.ComputeStats() {
		t.Fatalf("frozen stats = %+v, want %+v", view.Stats(), res.Taxonomy.ComputeStats())
	}
	for _, n := range res.Taxonomy.Nodes() {
		if a, b := res.Taxonomy.Hypernyms(n), view.Hypernyms(n); fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("Hypernyms(%q): view %v, store %v", n, b, a)
		}
		if a, b := res.Mentions.Lookup(n), view.Lookup(n); fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("Lookup(%q): view %v, store %v", n, b, a)
		}
	}

	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, res); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loadedView, err := LoadSnapshotView(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatalf("LoadSnapshotView: %v", err)
	}
	if loadedView.EdgeCount() != view.EdgeCount() || loadedView.Stats() != view.Stats() {
		t.Fatalf("snapshot view (%d edges, %+v) != frozen view (%d edges, %+v)",
			loadedView.EdgeCount(), loadedView.Stats(), view.EdgeCount(), view.Stats())
	}
	for _, n := range res.Taxonomy.Nodes() {
		if a, b := view.Hypernyms(n), loadedView.Hypernyms(n); fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("Hypernyms(%q): snapshot view %v, frozen view %v", n, b, a)
		}
	}
	if srv := NewViewServer(view); srv.View() != view {
		t.Fatal("NewViewServer does not serve the given view")
	}
}

func TestFacadeBaselines(t *testing.T) {
	w, res := buildSmall(t, 800)
	oracle := w.Oracle()
	wiki := BuildWikiTaxonomy(w.Corpus(), DefaultWikiTaxonomyConfig())
	tran, _ := BuildProbaseTran(w, DefaultProbaseTranConfig())
	pCN := SamplePrecision(res.Taxonomy, oracle, 1000, 1)
	pTran := SamplePrecision(tran, oracle, 1000, 1)
	if pTran >= pCN {
		t.Errorf("Probase-Tran %.3f should be below CN-Probase %.3f", pTran, pCN)
	}
	if wiki.EdgeCount() >= res.Taxonomy.EdgeCount() {
		t.Errorf("WikiTaxonomy %d edges should be below CN-Probase %d",
			wiki.EdgeCount(), res.Taxonomy.EdgeCount())
	}
}
