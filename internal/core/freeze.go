package core

import "cnprobase/internal/serving"

// Freeze compiles the build result into an immutable serving.View —
// the read-optimized structure the HTTP APIs serve from (interned
// node IDs, CSR adjacency, pre-sorted typicality, flat mention table;
// zero locks and near-zero allocation per query). The view is a
// point-in-time copy: a later Update extends the mutable store, not
// the view — Freeze again and swap it into the server
// (api.Server.SwapView) to publish the new data.
func (r *Result) Freeze() *serving.View {
	return serving.Compile(r.Taxonomy, r.Mentions)
}
