package core
