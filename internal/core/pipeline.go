// Package core wires the generation and verification modules into the
// CN-Probase construction pipeline (paper Figure 2): four extractors
// produce candidate isA relations from the encyclopedia's brackets,
// abstracts, infoboxes and tags; candidates merge; three verification
// strategies filter noise; the survivors become the taxonomy, extended
// with derived subconcept-concept edges.
package core

import (
	"fmt"

	"cnprobase/internal/copynet"
	"cnprobase/internal/corpus"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/ner"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
	"cnprobase/internal/verify"
)

// Options configures a pipeline run. Zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// EnableBracket toggles the separation-algorithm extractor.
	EnableBracket bool
	// EnableNeural toggles the abstract extractor (the slowest stage:
	// it trains a model).
	EnableNeural bool
	// EnableInfobox toggles predicate discovery + infobox extraction.
	EnableInfobox bool
	// EnableTags toggles direct tag extraction.
	EnableTags bool

	// Neural holds the copy-model configuration.
	Neural copynet.Config
	// NeuralEpochs / NeuralLR control distant-supervision training.
	NeuralEpochs int
	NeuralLR     float64
	// NeuralMaxSamples caps the distant-supervision dataset (0 = all).
	NeuralMaxSamples int

	// Predicates configures infobox predicate discovery.
	Predicates extract.PredicateDiscovery

	// Verify holds the verification thresholds and per-strategy
	// toggles; setting all three Enable* fields false reproduces the
	// no-verification ablation.
	Verify verify.Options

	// DeriveSubconcepts toggles morphological-head and subsumption
	// derivation of subconcept-concept edges.
	DeriveSubconcepts bool
	// SubsumeMinRatio / SubsumeMinSize control subsumption derivation.
	SubsumeMinRatio float64
	SubsumeMinSize  int

	// ExtraDictionary supplies additional segmenter words.
	ExtraDictionary []string
}

// DefaultOptions returns the full pipeline with calibrated settings.
func DefaultOptions() Options {
	return Options{
		EnableBracket:     true,
		EnableNeural:      true,
		EnableInfobox:     true,
		EnableTags:        true,
		Neural:            copynet.DefaultConfig(),
		NeuralEpochs:      3,
		NeuralLR:          0.01,
		NeuralMaxSamples:  4000,
		Predicates:        extract.DefaultPredicateDiscovery(),
		Verify:            verify.DefaultOptions(),
		DeriveSubconcepts: true,
		SubsumeMinRatio:   0.75,
		SubsumeMinSize:    8,
	}
}

// SourceReport counts candidates per generation source before and
// after verification.
type SourceReport struct {
	Generated int
	Kept      int
}

// Report describes one pipeline run.
type Report struct {
	Pages               int
	PerSource           map[taxonomy.Source]*SourceReport
	PredicateCandidates []extract.PredicateStat
	SelectedPredicates  []string
	NeuralSamples       int
	NeuralLoss          []copynet.TrainReport
	Verification        verify.Report
	DerivedSubconcepts  int
	Stats               taxonomy.Stats
}

// Result bundles the pipeline outputs.
type Result struct {
	Taxonomy *taxonomy.Taxonomy
	Mentions *taxonomy.MentionIndex
	Report   *Report
	// Candidates holds the merged pre-verification candidates (kept
	// for per-source precision experiments).
	Candidates []extract.Candidate
	// Kept holds the post-verification candidates.
	Kept []extract.Candidate
	// Segmenter and Stats expose the substrates for reuse (QA, APIs,
	// experiments).
	Segmenter *segment.Segmenter
	Stats     *corpus.Stats
	// Corpus is the input corpus; Update extends it with delta pages.
	Corpus *encyclopedia.Corpus
}

// Pipeline executes the CN-Probase construction.
type Pipeline struct {
	opts Options
}

// New returns a pipeline with the given options.
func New(opts Options) *Pipeline { return &Pipeline{opts: opts} }

// Build runs the full pipeline over the corpus.
func (p *Pipeline) Build(c *encyclopedia.Corpus) (*Result, error) {
	if c == nil || len(c.Pages) == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	rep := &Report{Pages: len(c.Pages), PerSource: make(map[taxonomy.Source]*SourceReport)}

	// ---- substrate: segmenter + corpus statistics ----
	dict := lexicon.BaseDictionary()
	dict = append(dict, p.opts.ExtraDictionary...)
	stats := corpus.NewStats()
	boot := segment.New(dict)
	for i := range c.Pages {
		page := &c.Pages[i]
		if page.Abstract != "" {
			stats.AddSentence(boot.Cut(page.Abstract))
		}
		if page.Bracket != "" {
			stats.AddSentence(boot.Cut(page.Bracket))
		}
	}
	seg := segment.New(dict, segment.WithStats(stats))

	// ---- generation module ----
	var all []extract.Candidate
	var bracketCands []extract.Candidate
	if p.opts.EnableBracket {
		sep := extract.NewSeparator(seg, stats)
		for i := range c.Pages {
			page := &c.Pages[i]
			bracketCands = append(bracketCands, sep.Extract(page.Title, page.Bracket)...)
		}
		all = append(all, bracketCands...)
	}
	if p.opts.EnableInfobox {
		prior := extract.NewPrior(bracketCands)
		cands, selected := p.opts.Predicates.Discover(c, prior)
		rep.PredicateCandidates = cands
		rep.SelectedPredicates = selected
		all = append(all, extract.ExtractInfobox(c, selected)...)
	}
	if p.opts.EnableTags {
		for i := range c.Pages {
			all = append(all, extract.Tags(&c.Pages[i])...)
		}
	}
	if p.opts.EnableNeural {
		samples := extract.BuildDistantDataset(c, bracketCands, seg)
		if p.opts.NeuralMaxSamples > 0 && len(samples) > p.opts.NeuralMaxSamples {
			samples = samples[:p.opts.NeuralMaxSamples]
		}
		rep.NeuralSamples = len(samples)
		if len(samples) > 0 {
			neural := extract.TrainNeural(p.opts.Neural, samples, p.opts.NeuralEpochs, p.opts.NeuralLR,
				func(r copynet.TrainReport) { rep.NeuralLoss = append(rep.NeuralLoss, r) })
			neural.SetSegmenter(seg)
			for i := range c.Pages {
				all = append(all, neural.Extract(&c.Pages[i])...)
			}
		}
	}
	merged := extract.Dedupe(all)
	for _, cand := range merged {
		for _, src := range []taxonomy.Source{taxonomy.SourceBracket, taxonomy.SourceAbstract, taxonomy.SourceInfobox, taxonomy.SourceTag} {
			if cand.Source&src != 0 {
				r := rep.PerSource[src]
				if r == nil {
					r = &SourceReport{}
					rep.PerSource[src] = r
				}
				r.Generated++
			}
		}
	}

	// ---- verification module ----
	rec := ner.New()
	support := ner.NewSupport()
	for i := range c.Pages {
		page := &c.Pages[i]
		if page.Abstract == "" {
			continue
		}
		support.Observe(seg.Cut(page.Abstract), rec.Recognize(page.Abstract))
	}
	ctx := verify.NewContext(c, merged, support, rec)
	kept, vrep := verify.Verify(merged, ctx, seg, p.opts.Verify)
	rep.Verification = vrep
	for _, cand := range kept {
		for _, src := range []taxonomy.Source{taxonomy.SourceBracket, taxonomy.SourceAbstract, taxonomy.SourceInfobox, taxonomy.SourceTag} {
			if cand.Source&src != 0 {
				if r := rep.PerSource[src]; r != nil {
					r.Kept++
				}
			}
		}
	}

	// ---- taxonomy assembly ----
	tax := taxonomy.New()
	mentions := taxonomy.NewMentionIndex()
	for i := range c.Pages {
		page := &c.Pages[i]
		id := page.ID()
		tax.MarkEntity(id)
		mentions.Add(page.Title, id)
		mentions.Add(id, id)
		for _, t := range page.Infobox {
			if t.Predicate == "别名" && t.Object != "" {
				mentions.Add(t.Object, id)
			}
		}
	}
	for _, cand := range kept {
		if err := tax.AddIsA(cand.Hypo, cand.Hyper, cand.Source, cand.Score); err != nil {
			return nil, fmt.Errorf("core: assembling taxonomy: %w", err)
		}
	}
	if p.opts.DeriveSubconcepts {
		rep.DerivedSubconcepts = deriveSubconcepts(tax, seg, p.opts)
	}
	rep.Stats = tax.ComputeStats()

	return &Result{
		Taxonomy:   tax,
		Mentions:   mentions,
		Report:     rep,
		Candidates: merged,
		Kept:       kept,
		Segmenter:  seg,
		Stats:      stats,
		Corpus:     c,
	}, nil
}
