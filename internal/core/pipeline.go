// Package core wires the generation and verification modules into the
// CN-Probase construction pipeline (paper Figure 2): four extractors
// produce candidate isA relations from the encyclopedia's brackets,
// abstracts, infoboxes and tags; candidates merge; three verification
// strategies filter noise; the survivors become the taxonomy, extended
// with derived subconcept-concept edges.
//
// The pipeline is concurrent end-to-end. Per-page work (segmentation,
// extraction, NE recognition) fans out in entity batches over a bounded
// worker pool sized by Options.Workers; the four generators feed the
// verification stage through a channel of per-source candidate sets
// while the NE-evidence pass runs alongside them; assembly inserts the
// surviving relations into a sharded taxonomy store (Options.Shards)
// and finalizes its merged indexes. Workers=1 degrades every stage to
// inline sequential execution — the reference path determinism tests
// compare against — and produces the same taxonomy as any parallel run.
package core

import (
	"fmt"

	"cnprobase/internal/copynet"
	"cnprobase/internal/corpus"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/ner"
	"cnprobase/internal/par"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
	"cnprobase/internal/verify"
)

// Options configures a pipeline run. Zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// EnableBracket toggles the separation-algorithm extractor.
	EnableBracket bool
	// EnableNeural toggles the abstract extractor (the slowest stage:
	// it trains a model).
	EnableNeural bool
	// EnableInfobox toggles predicate discovery + infobox extraction.
	EnableInfobox bool
	// EnableTags toggles direct tag extraction.
	EnableTags bool

	// Workers bounds the worker pool shared by every parallel stage of
	// the build (substrate statistics, the four generators, the
	// NE-evidence pass, verification filtering and taxonomy assembly).
	// 0 selects one worker per logical CPU; 1 runs fully sequentially
	// (the deterministic reference path). Any worker count produces the
	// same taxonomy.
	Workers int
	// Shards is the shard count of the taxonomy store the build
	// assembles into; 0 selects taxonomy.DefaultShards. More shards
	// reduce write contention at high worker counts.
	Shards int

	// Neural holds the copy-model configuration.
	Neural copynet.Config
	// NeuralEpochs / NeuralLR control distant-supervision training.
	NeuralEpochs int
	NeuralLR     float64
	// NeuralMaxSamples caps the distant-supervision dataset (0 = all).
	NeuralMaxSamples int

	// Predicates configures infobox predicate discovery.
	Predicates extract.PredicateDiscovery

	// Verify holds the verification thresholds and per-strategy
	// toggles; setting all three Enable* fields false reproduces the
	// no-verification ablation.
	Verify verify.Options

	// ForceFullReverify makes Update invalidate every verification
	// cache and re-derive all candidate decisions from the persistent
	// evidence — the O(total) reference path the O(delta) incremental
	// path is equivalence-tested against. Build is unaffected (it is
	// always a full pass).
	ForceFullReverify bool

	// DeriveSubconcepts toggles morphological-head and subsumption
	// derivation of subconcept-concept edges.
	DeriveSubconcepts bool
	// SubsumeMinRatio / SubsumeMinSize control subsumption derivation.
	SubsumeMinRatio float64
	SubsumeMinSize  int

	// ExtraDictionary supplies additional segmenter words.
	ExtraDictionary []string
}

// DefaultOptions returns the full pipeline with calibrated settings and
// auto-sized concurrency (Workers=0: one worker per CPU).
func DefaultOptions() Options {
	return Options{
		EnableBracket:     true,
		EnableNeural:      true,
		EnableInfobox:     true,
		EnableTags:        true,
		Neural:            copynet.DefaultConfig(),
		NeuralEpochs:      3,
		NeuralLR:          0.01,
		NeuralMaxSamples:  4000,
		Predicates:        extract.DefaultPredicateDiscovery(),
		Verify:            verify.DefaultOptions(),
		DeriveSubconcepts: true,
		SubsumeMinRatio:   0.75,
		SubsumeMinSize:    8,
	}
}

// SourceReport counts candidates per generation source before and
// after verification.
type SourceReport struct {
	Generated int
	Kept      int
}

// Report describes one pipeline run.
type Report struct {
	Pages int
	// Workers / Shards record the resolved concurrency settings the run
	// used.
	Workers             int
	Shards              int
	PerSource           map[taxonomy.Source]*SourceReport
	PredicateCandidates []extract.PredicateStat
	SelectedPredicates  []string
	NeuralSamples       int
	NeuralLoss          []copynet.TrainReport
	Verification        verify.Report
	DerivedSubconcepts  int
	Stats               taxonomy.Stats
}

// Result bundles the pipeline outputs.
type Result struct {
	Taxonomy *taxonomy.Taxonomy
	Mentions *taxonomy.MentionIndex
	Report   *Report
	// Candidates holds the merged pre-verification candidates (kept
	// for per-source precision experiments).
	Candidates []extract.Candidate
	// Kept holds the post-verification candidates.
	Kept []extract.Candidate
	// Segmenter and Stats expose the substrates for reuse (QA, APIs,
	// experiments).
	Segmenter *segment.Segmenter
	Stats     *corpus.Stats
	// Evidence is the persistent verification evidence over the kept
	// candidate set. Update folds each delta batch into it and
	// re-verifies only the affected candidates, so incremental cost is
	// proportional to the delta — raw pages are never retained or
	// copied. Snapshots round-trip it, which is what lets a
	// snapshot-loaded Result accept Update.
	Evidence *verify.Evidence
}

// Pipeline executes the CN-Probase construction.
type Pipeline struct {
	opts Options
}

// New returns a pipeline with the given options.
func New(opts Options) *Pipeline { return &Pipeline{opts: opts} }

// candidateSet is one generator's output, fed to the verification stage
// over a channel as soon as the generator finishes.
type candidateSet struct {
	source taxonomy.Source
	cands  []extract.Candidate
}

// Build runs the full pipeline over the corpus.
func (p *Pipeline) Build(c *encyclopedia.Corpus) (*Result, error) {
	if c == nil || len(c.Pages) == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	workers := workerCount(p.opts.Workers)
	pl := par.NewPool(workers)
	rep := &Report{Pages: len(c.Pages), Workers: workers, PerSource: make(map[taxonomy.Source]*SourceReport)}

	// ---- substrate: segmenter + corpus statistics ----
	// Pages are cut in parallel batches; the counts merge in page
	// order. The bootstrap segmenter reads no statistics (its costs are
	// uniform), so cutting has no feedback loop and batching cannot
	// change the merged counts.
	dict := lexicon.BaseDictionary()
	dict = append(dict, p.opts.ExtraDictionary...)
	boot := segment.New(dict)
	stats := corpusStats(c, boot, pl)
	seg := segment.New(dict, segment.WithStats(stats))

	// ---- verification evidence, overlapped with generation ----
	// The NE-support pass only needs the corpus and the segmenter, so
	// it runs alongside the generators on the shared pool.
	rec := ner.New()
	var support *ner.Support
	evidence := &par.Group{Inline: pl == nil}
	evidence.Go(func() error {
		support = observeSupport(c, seg, rec, pl)
		return nil
	})

	// ---- generation module: fan out, feed verification a channel ----
	// The buffer covers one send per enabled generator, so the inline
	// (Workers=1) path — where every producer runs to completion before
	// the drain below starts — can never block on a full channel.
	nGen := 0
	for _, enabled := range []bool{p.opts.EnableBracket, p.opts.EnableTags, p.opts.EnableInfobox, p.opts.EnableNeural} {
		if enabled {
			nGen++
		}
	}
	candSetCh := make(chan candidateSet, nGen)
	gen := &par.Group{Inline: pl == nil}
	var bracketCands []extract.Candidate
	bracketReady := make(chan struct{})
	gen.Go(func() error {
		if p.opts.EnableBracket {
			bracketCands = p.bracketStage(c, seg, stats, pl)
		}
		close(bracketReady)
		if p.opts.EnableBracket {
			candSetCh <- candidateSet{source: taxonomy.SourceBracket, cands: bracketCands}
		}
		return nil
	})
	gen.Go(func() error {
		if !p.opts.EnableTags {
			return nil
		}
		candSetCh <- candidateSet{source: taxonomy.SourceTag, cands: p.tagStage(c, pl)}
		return nil
	})
	gen.Go(func() error {
		if !p.opts.EnableInfobox {
			return nil
		}
		<-bracketReady // predicate discovery aligns against the bracket prior
		cands, predStats, selected := p.infoboxStage(c, bracketCands, pl)
		rep.PredicateCandidates = predStats
		rep.SelectedPredicates = selected
		candSetCh <- candidateSet{source: taxonomy.SourceInfobox, cands: cands}
		return nil
	})
	gen.Go(func() error {
		if !p.opts.EnableNeural {
			return nil
		}
		<-bracketReady // distant supervision comes from the bracket source
		cands, nSamples, losses := p.neuralStage(c, bracketCands, seg, pl)
		rep.NeuralSamples = nSamples
		rep.NeuralLoss = losses
		if cands != nil {
			candSetCh <- candidateSet{source: taxonomy.SourceAbstract, cands: cands}
		}
		return nil
	})

	// ---- verification module, fed by the candidate-set channel ----
	if pl == nil {
		close(candSetCh) // producers ran inline; all sets are buffered
	} else {
		go func() {
			gen.Wait()
			close(candSetCh)
		}()
	}
	var all []extract.Candidate
	for set := range candSetCh {
		all = append(all, set.cands...)
	}
	if err := gen.Wait(); err != nil {
		return nil, err
	}
	merged := extract.Dedupe(all)
	if err := evidence.Wait(); err != nil {
		return nil, err
	}
	ctx := verify.NewContext(c, merged, support, rec)
	vopts := p.opts.Verify
	if vopts.Workers == 0 {
		vopts.Workers = workers // inherit the pipeline pool size by default
	}
	kept, vrep := verify.Verify(merged, ctx, seg, vopts)
	rep.Verification = vrep
	rep.PerSource = perSourceCounts(merged, kept)
	// Trim the evidence to the surviving candidate set: between crawl
	// batches the persistent evidence always describes kept pairs, so
	// the next Update's verification sees exactly the union of kept
	// and fresh candidates.
	ctx.RemoveCandidates(diffCandidates(merged, kept))

	// ---- taxonomy assembly into the sharded store ----
	tax := taxonomy.NewSharded(p.opts.Shards)
	rep.Shards = tax.ShardCount()
	mentions := taxonomy.NewMentionIndex()
	for i := range c.Pages {
		page := &c.Pages[i]
		id := page.ID()
		tax.MarkEntity(id)
		mentions.Add(page.Title, id)
		mentions.Add(id, id)
		for _, t := range page.Infobox {
			if t.Predicate == "别名" && t.Object != "" {
				mentions.Add(t.Object, id)
			}
		}
	}
	if err := assembleEdges(tax, kept, pl); err != nil {
		return nil, fmt.Errorf("core: assembling taxonomy: %w", err)
	}
	if p.opts.DeriveSubconcepts {
		rep.DerivedSubconcepts = deriveSubconcepts(tax, seg, ctx, p.opts)
	}
	tax.Finalize()
	rep.Stats = tax.ComputeStats()

	return &Result{
		Taxonomy:   tax,
		Mentions:   mentions,
		Report:     rep,
		Candidates: merged,
		Kept:       kept,
		Segmenter:  seg,
		Stats:      stats,
		Evidence:   ctx,
	}, nil
}

// perSourceCounts tallies, per generation source, how many candidates
// of the current merged set exist and how many survived verification.
// Update recomputes it each batch, so the counters always describe the
// current candidate union rather than the original build.
func perSourceCounts(merged, kept []extract.Candidate) map[taxonomy.Source]*SourceReport {
	out := make(map[taxonomy.Source]*SourceReport)
	sources := []taxonomy.Source{taxonomy.SourceBracket, taxonomy.SourceAbstract, taxonomy.SourceInfobox, taxonomy.SourceTag}
	tally := func(cands []extract.Candidate, kept bool) {
		for _, cand := range cands {
			for _, src := range sources {
				if cand.Source&src == 0 {
					continue
				}
				r := out[src]
				if r == nil {
					r = &SourceReport{}
					out[src] = r
				}
				if kept {
					r.Kept++
				} else {
					r.Generated++
				}
			}
		}
	}
	tally(merged, false)
	tally(kept, true)
	return out
}

// bracketStage runs the separation algorithm over every page bracket in
// parallel batches; concatenation in batch order reproduces the
// sequential candidate order exactly (distant supervision depends on
// it).
func (p *Pipeline) bracketStage(c *encyclopedia.Corpus, seg *segment.Segmenter, stats *corpus.Stats, pl *par.Pool) []extract.Candidate {
	sep := extract.NewSeparator(seg, stats)
	return par.Concat(par.MapBatches(pl, len(c.Pages), func(lo, hi int) []extract.Candidate {
		var out []extract.Candidate
		for i := lo; i < hi; i++ {
			page := &c.Pages[i]
			out = append(out, sep.Extract(page.Title, page.Bracket)...)
		}
		return out
	}))
}

// tagStage extracts tag candidates in parallel batches.
func (p *Pipeline) tagStage(c *encyclopedia.Corpus, pl *par.Pool) []extract.Candidate {
	return par.Concat(par.MapBatches(pl, len(c.Pages), func(lo, hi int) []extract.Candidate {
		var out []extract.Candidate
		for i := lo; i < hi; i++ {
			out = append(out, extract.Tags(&c.Pages[i])...)
		}
		return out
	}))
}

// infoboxStage discovers isA predicates against the bracket prior
// (sequential: a cheap counting pass) and then harvests matching
// triples in parallel batches.
func (p *Pipeline) infoboxStage(c *encyclopedia.Corpus, bracketCands []extract.Candidate, pl *par.Pool) (cands []extract.Candidate, predStats []extract.PredicateStat, selected []string) {
	release := pl.Acquire() // discovery is coordinator-side CPU work
	prior := extract.NewPrior(bracketCands)
	predStats, selected = p.opts.Predicates.Discover(c, prior)
	release()
	cands = par.Concat(par.MapBatches(pl, len(c.Pages), func(lo, hi int) []extract.Candidate {
		sub := encyclopedia.Corpus{Pages: c.Pages[lo:hi]}
		return extract.ExtractInfobox(&sub, selected)
	}))
	return cands, predStats, selected
}

// neuralStage trains the copy model on the distant dataset (sequential:
// SGD order is part of the model) and decodes every abstract in
// parallel batches. Returns nil candidates when no samples exist.
func (p *Pipeline) neuralStage(c *encyclopedia.Corpus, bracketCands []extract.Candidate, seg *segment.Segmenter, pl *par.Pool) (cands []extract.Candidate, nSamples int, losses []copynet.TrainReport) {
	release := pl.Acquire() // dataset assembly + SGD are coordinator-side CPU work
	samples := extract.BuildDistantDataset(c, bracketCands, seg)
	if p.opts.NeuralMaxSamples > 0 && len(samples) > p.opts.NeuralMaxSamples {
		samples = samples[:p.opts.NeuralMaxSamples]
	}
	nSamples = len(samples)
	if nSamples == 0 {
		release()
		return nil, 0, nil
	}
	neural := extract.TrainNeural(p.opts.Neural, samples, p.opts.NeuralEpochs, p.opts.NeuralLR,
		func(r copynet.TrainReport) { losses = append(losses, r) })
	neural.SetSegmenter(seg)
	release()
	cands = par.Concat(par.MapBatches(pl, len(c.Pages), func(lo, hi int) []extract.Candidate {
		var out []extract.Candidate
		for i := lo; i < hi; i++ {
			out = append(out, neural.Extract(&c.Pages[i])...)
		}
		return out
	}))
	if cands == nil {
		cands = []extract.Candidate{}
	}
	return cands, nSamples, losses
}
