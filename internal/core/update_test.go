package core

import (
	"reflect"
	"testing"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

func TestUpdateExtendsTaxonomy(t *testing.T) {
	// Build over the first half of a world, then update with the rest.
	cfg := synth.DefaultConfig()
	cfg.Entities = 900
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	corpus := w.Corpus()
	half := corpus.Len() / 2
	first := &encyclopedia.Corpus{}
	first.Pages = append(first.Pages, corpus.Pages[:half]...)
	delta := &encyclopedia.Corpus{}
	delta.Pages = append(delta.Pages, corpus.Pages[half:]...)

	p := New(fastOptions())
	res, err := p.Build(first)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	before := res.Taxonomy.EdgeCount()
	beforeEntities := res.Report.Stats.Entities

	updated, err := p.Update(res, delta)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if updated.Taxonomy.EdgeCount() <= before {
		t.Errorf("edges %d → %d; update did not grow the taxonomy", before, updated.Taxonomy.EdgeCount())
	}
	if updated.Report.Stats.Entities <= beforeEntities {
		t.Errorf("entities %d → %d", beforeEntities, updated.Report.Stats.Entities)
	}
	if updated.Report.Pages != corpus.Len() {
		t.Errorf("pages = %d, want %d", updated.Report.Pages, corpus.Len())
	}
	// New pages must be queryable.
	newPage := delta.Pages[0]
	if len(updated.Mentions.Lookup(newPage.Title)) == 0 {
		t.Errorf("mention %q not indexed after update", newPage.Title)
	}

	// Precision stays in band after the incremental pass.
	oracle := w.Oracle()
	if p := sampledPrecision(updated.Taxonomy, oracle); p < 0.85 {
		t.Errorf("post-update precision = %.3f, want ≥0.85", p)
	}
}

func TestUpdateIncrementalEqualsRebuildApproximately(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Entities = 600
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	corpus := w.Corpus()
	half := corpus.Len() / 2
	first := &encyclopedia.Corpus{}
	first.Pages = append(first.Pages, corpus.Pages[:half]...)
	delta := &encyclopedia.Corpus{}
	delta.Pages = append(delta.Pages, corpus.Pages[half:]...)

	p := New(fastOptions())
	res, err := p.Build(first)
	if err != nil {
		t.Fatal(err)
	}
	updated, err := p.Update(res, delta)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(fastOptions()).Build(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// The incremental result should be within ~15% of a full rebuild
	// (statistics differ slightly: PMI accumulates in a different
	// order, predicate curation is frozen).
	ratio := float64(updated.Taxonomy.EdgeCount()) / float64(full.Taxonomy.EdgeCount())
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("incremental/full edge ratio = %.3f (inc=%d full=%d)",
			ratio, updated.Taxonomy.EdgeCount(), full.Taxonomy.EdgeCount())
	}
}

// TestUpdateIncrementalMatchesFullReverify pins the O(delta) update
// path against the O(total) reference: folding K batches through the
// incremental evidence (cached decisions, affected-subset
// re-verification) must produce exactly the taxonomy, mention index,
// kept set and report that full re-verification over the union
// produces at every batch.
func TestUpdateIncrementalMatchesFullReverify(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Entities = 900
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	corpus := w.Corpus()
	slice := func(lo, hi int) *encyclopedia.Corpus {
		c := &encyclopedia.Corpus{}
		c.Pages = append(c.Pages, corpus.Pages[lo:hi]...)
		return c
	}
	const batches = 4
	chunk := corpus.Len() / (batches + 1)

	fullOpts := fastOptions()
	fullOpts.ForceFullReverify = true
	inc := New(fastOptions())
	full := New(fullOpts)
	resInc, err := inc.Build(slice(0, chunk))
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := full.Build(slice(0, chunk))
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= batches; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if b == batches {
			hi = corpus.Len()
		}
		if _, err := inc.Update(resInc, slice(lo, hi)); err != nil {
			t.Fatalf("batch %d incremental: %v", b, err)
		}
		if _, err := full.Update(resFull, slice(lo, hi)); err != nil {
			t.Fatalf("batch %d full: %v", b, err)
		}
		if !reflect.DeepEqual(resInc.Kept, resFull.Kept) {
			t.Fatalf("batch %d: kept sets diverged (%d vs %d)", b, len(resInc.Kept), len(resFull.Kept))
		}
		if !reflect.DeepEqual(resInc.Taxonomy.Edges(), resFull.Taxonomy.Edges()) {
			t.Fatalf("batch %d: taxonomies diverged", b)
		}
		if resInc.Report.Stats != resFull.Report.Stats {
			t.Fatalf("batch %d: stats diverged: %+v vs %+v", b, resInc.Report.Stats, resFull.Report.Stats)
		}
		if !reflect.DeepEqual(resInc.Report.PerSource, resFull.Report.PerSource) {
			t.Fatalf("batch %d: per-source reports diverged", b)
		}
		ri, rf := resInc.Report.Verification, resFull.Report.Verification
		if ri.Input != rf.Input || ri.Kept != rf.Kept || ri.IncompatiblePairs != rf.IncompatiblePairs ||
			!reflect.DeepEqual(ri.Rejected, rf.Rejected) {
			t.Fatalf("batch %d: verification reports diverged: %+v vs %+v", b, ri, rf)
		}
		// The incremental pass must actually be incremental: later
		// batches re-verify a strict subset of the candidate union.
		if b == batches && ri.Reverified >= ri.Input {
			t.Errorf("batch %d reverified %d of %d candidates; expected a strict subset", b, ri.Reverified, ri.Input)
		}
	}
	// Mention indexes agree on every node of the final taxonomy.
	for _, n := range resInc.Taxonomy.Nodes() {
		if a, b := resInc.Mentions.Lookup(n), resFull.Mentions.Lookup(n); !reflect.DeepEqual(a, b) {
			t.Fatalf("mention divergence on %q: %v vs %v", n, a, b)
		}
	}
}

// TestUpdateRefreshesPerSource is the regression test for the stale
// per-source counters: after an update the Generated/Kept columns must
// describe the current candidate union, not the original build.
func TestUpdateRefreshesPerSource(t *testing.T) {
	w := buildSmallWorld(t, 600)
	corpus := w.Corpus()
	half := corpus.Len() / 2
	first := &encyclopedia.Corpus{Pages: corpus.Pages[:half]}
	delta := &encyclopedia.Corpus{Pages: corpus.Pages[half:]}

	p := New(fastOptions())
	res, err := p.Build(first)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Report.PerSource[taxonomy.SourceTag]
	if before == nil || before.Generated == 0 {
		t.Fatal("build produced no tag candidates; fixture too small")
	}
	beforeGenerated := before.Generated
	if _, err := p.Update(res, delta); err != nil {
		t.Fatal(err)
	}
	after := res.Report.PerSource[taxonomy.SourceTag]
	if after == nil || after.Generated <= beforeGenerated {
		t.Fatalf("tag Generated %d → %v; update did not fold the delta's per-source counts in", beforeGenerated, after)
	}
	// The counters must equal a from-scratch tally over the current
	// candidate union and kept set.
	if want := perSourceCounts(res.Candidates, res.Kept); !reflect.DeepEqual(res.Report.PerSource, want) {
		t.Errorf("PerSource = %+v, want recomputed %+v", res.Report.PerSource, want)
	}
}

func TestUpdateNilAndEmpty(t *testing.T) {
	p := New(fastOptions())
	if _, err := p.Update(nil, &encyclopedia.Corpus{}); err == nil {
		t.Error("Update(nil, …) accepted")
	}
	w := buildSmallWorld(t, 300)
	res, err := p.Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	same, err := p.Update(res, &encyclopedia.Corpus{})
	if err != nil || same != res {
		t.Errorf("empty delta should be a no-op: %v", err)
	}
}
