package core

import (
	"testing"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/synth"
)

func TestUpdateExtendsTaxonomy(t *testing.T) {
	// Build over the first half of a world, then update with the rest.
	cfg := synth.DefaultConfig()
	cfg.Entities = 900
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	corpus := w.Corpus()
	half := corpus.Len() / 2
	first := &encyclopedia.Corpus{}
	first.Pages = append(first.Pages, corpus.Pages[:half]...)
	delta := &encyclopedia.Corpus{}
	delta.Pages = append(delta.Pages, corpus.Pages[half:]...)

	p := New(fastOptions())
	res, err := p.Build(first)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	before := res.Taxonomy.EdgeCount()
	beforeEntities := res.Report.Stats.Entities

	updated, err := p.Update(res, delta)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if updated.Taxonomy.EdgeCount() <= before {
		t.Errorf("edges %d → %d; update did not grow the taxonomy", before, updated.Taxonomy.EdgeCount())
	}
	if updated.Report.Stats.Entities <= beforeEntities {
		t.Errorf("entities %d → %d", beforeEntities, updated.Report.Stats.Entities)
	}
	if updated.Report.Pages != corpus.Len() {
		t.Errorf("pages = %d, want %d", updated.Report.Pages, corpus.Len())
	}
	// New pages must be queryable.
	newPage := delta.Pages[0]
	if len(updated.Mentions.Lookup(newPage.Title)) == 0 {
		t.Errorf("mention %q not indexed after update", newPage.Title)
	}

	// Precision stays in band after the incremental pass.
	oracle := w.Oracle()
	if p := sampledPrecision(updated.Taxonomy, oracle); p < 0.85 {
		t.Errorf("post-update precision = %.3f, want ≥0.85", p)
	}
}

func TestUpdateIncrementalEqualsRebuildApproximately(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Entities = 600
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	corpus := w.Corpus()
	half := corpus.Len() / 2
	first := &encyclopedia.Corpus{}
	first.Pages = append(first.Pages, corpus.Pages[:half]...)
	delta := &encyclopedia.Corpus{}
	delta.Pages = append(delta.Pages, corpus.Pages[half:]...)

	p := New(fastOptions())
	res, err := p.Build(first)
	if err != nil {
		t.Fatal(err)
	}
	updated, err := p.Update(res, delta)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(fastOptions()).Build(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// The incremental result should be within ~15% of a full rebuild
	// (statistics differ slightly: PMI accumulates in a different
	// order, predicate curation is frozen).
	ratio := float64(updated.Taxonomy.EdgeCount()) / float64(full.Taxonomy.EdgeCount())
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("incremental/full edge ratio = %.3f (inc=%d full=%d)",
			ratio, updated.Taxonomy.EdgeCount(), full.Taxonomy.EdgeCount())
	}
}

func TestUpdateNilAndEmpty(t *testing.T) {
	p := New(fastOptions())
	if _, err := p.Update(nil, &encyclopedia.Corpus{}); err == nil {
		t.Error("Update(nil, …) accepted")
	}
	w := buildSmallWorld(t, 300)
	res, err := p.Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	same, err := p.Update(res, &encyclopedia.Corpus{})
	if err != nil || same != res {
		t.Errorf("empty delta should be a no-op: %v", err)
	}
}
