package core

import (
	"runtime"

	"cnprobase/internal/corpus"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
	"cnprobase/internal/par"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

// workerCount resolves Options.Workers: zero or negative selects one
// worker per logical CPU, one means fully sequential, anything else is
// used as given.
func workerCount(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// windowPages bounds how many pages' intermediate results (token
// slices, NE spans) the streaming passes below keep in memory at once:
// cut a window in parallel, fold it into the accumulator, move on. The
// constant multiplies the pool size so every worker stays busy within
// a window while memory stays O(window), not O(corpus).
const windowPages = 512

// corpusStats builds the unigram/bigram statistics over every page's
// abstract and bracket. The accumulator only adds counts and the
// bootstrap segmenter reads no statistics (no feedback loop), so the
// windowed parallel fold produces exactly the sequential counts.
func corpusStats(c *encyclopedia.Corpus, boot *segment.Segmenter, p *par.Pool) *corpus.Stats {
	type pageCut struct{ abstract, bracket []string }
	stats := corpus.NewStats()
	par.WindowFold(p, len(c.Pages), windowPages, func(lo, hi int) []pageCut {
		out := make([]pageCut, 0, hi-lo)
		// One shared backing array per batch: CutAppend grows it in
		// place and each page keeps a capacity-clamped sub-slice, so the
		// batch performs a handful of amortized allocations instead of
		// one `[]string` per page.
		toks := make([]string, 0, 32*(hi-lo))
		for i := lo; i < hi; i++ {
			page := &c.Pages[i]
			var pc pageCut
			if page.Abstract != "" {
				a := len(toks)
				toks = boot.CutAppend(toks, page.Abstract)
				pc.abstract = toks[a:len(toks):len(toks)]
			}
			if page.Bracket != "" {
				b := len(toks)
				toks = boot.CutAppend(toks, page.Bracket)
				pc.bracket = toks[b:len(toks):len(toks)]
			}
			out = append(out, pc)
		}
		return out
	}, func(pc pageCut) {
		if len(pc.abstract) > 0 {
			stats.AddSentence(pc.abstract)
		}
		if len(pc.bracket) > 0 {
			stats.AddSentence(pc.bracket)
		}
	})
	return stats
}

// observeSupport runs the NE-evidence pass: segment + recognize every
// abstract (in windowed parallel batches) and fold the observations
// into a Support accumulator in page order. Support only adds counts,
// so windowing cannot change the result.
func observeSupport(c *encyclopedia.Corpus, seg *segment.Segmenter, rec *ner.Recognizer, p *par.Pool) *ner.Support {
	type obs struct {
		tokens []string
		spans  []ner.Span
	}
	support := ner.NewSupport()
	par.WindowFold(p, len(c.Pages), windowPages, func(lo, hi int) []obs {
		out := make([]obs, 0, hi-lo)
		// Batch-shared token backing array; see corpusStats.
		toks := make([]string, 0, 32*(hi-lo))
		for i := lo; i < hi; i++ {
			page := &c.Pages[i]
			if page.Abstract == "" {
				continue
			}
			a := len(toks)
			toks = seg.CutAppend(toks, page.Abstract)
			out = append(out, obs{tokens: toks[a:len(toks):len(toks)], spans: rec.Recognize(page.Abstract)})
		}
		return out
	}, func(o obs) {
		support.Observe(o.tokens, o.spans)
	})
	return support
}

// assembleEdges inserts the kept candidates into the sharded taxonomy,
// fanning contiguous chunks out over the pool. Insertion order across
// chunks is not deterministic; Finalize canonicalizes adjacency order
// afterwards.
func assembleEdges(tax *taxonomy.Taxonomy, kept []extract.Candidate, p *par.Pool) error {
	errs := par.MapBatches(p, len(kept), func(lo, hi int) error {
		for _, cand := range kept[lo:hi] {
			if err := tax.AddIsA(cand.Hypo, cand.Hyper, cand.Source, cand.Score); err != nil {
				return err
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
