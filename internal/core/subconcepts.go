package core

import (
	"sort"
	"strings"

	"cnprobase/internal/runes"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
	"cnprobase/internal/verify"
)

// deriveSubconcepts adds subconcept-concept isA edges (the paper's
// 527k subconcept relations) through two data-driven rules:
//
//   - morphological head: a compound concept whose suffix is itself a
//     well-supported concept specializes it (男演员 isA 演员,
//     首席战略官 isA 战略官);
//   - subsumption: concept c1 whose hyponym set is (nearly) contained
//     in a much larger concept c2's set is its subconcept.
//
// Returns the number of derived edges added. The subsumption rule
// reads its entity extents from the persistent evidence indexes
// (maintained incrementally by the update path) instead of copying
// hyponym lists out of the store, so the per-batch cost of
// re-derivation stays small.
func deriveSubconcepts(tax *taxonomy.Taxonomy, seg *segment.Segmenter, ev *verify.Evidence, opts Options) int {
	concepts := conceptNodes(tax)
	added := 0
	// ---- morphological heads ----
	support := make(map[string]int, len(concepts))
	for _, c := range concepts {
		support[c] = tax.HyponymCount(c)
	}
	for _, c := range concepts {
		rs := []rune(c)
		if len(rs) < 3 {
			continue
		}
		// Longest proper suffix that is itself a supported concept.
		for cut := 1; cut <= len(rs)-2; cut++ {
			sfx := string(rs[cut:])
			if support[sfx] >= 2 && sfx != c {
				if err := tax.AddIsA(c, sfx, taxonomy.SourceMorph, 1); err == nil {
					tax.MarkConcept(c)
					added++
				}
				break
			}
		}
	}
	// ---- subsumption ----
	added += deriveSubsumption(tax, ev, opts)
	return added
}

// deriveSubsumption adds c1 isA c2 whenever hyponyms(c1) are almost all
// inside hyponyms(c2) and c2 is substantially larger. The evaluation
// is incremental: candidate pairs come from the evidence's entity
// co-occurrence index, restricted to pairs with a side whose entity
// extent changed since the last derivation pass — a pair with both
// sides untouched has the same overlap, sizes and ratio it had last
// time, so re-testing it cannot change the outcome (derived edges only
// accumulate). The first pass after a build or a snapshot load sees
// every concept dirty and therefore evaluates everything.
func deriveSubsumption(tax *taxonomy.Taxonomy, ev *verify.Evidence, opts Options) int {
	minRatio := opts.SubsumeMinRatio
	if minRatio <= 0 {
		minRatio = 0.75
	}
	minSize := opts.SubsumeMinSize
	if minSize <= 0 {
		minSize = 8
	}
	hypos := func(c string) map[string]bool { return ev.EntityHyponyms(c) }
	cand := make(map[[2]string]bool)
	for a := range ev.TakeEntityDirtyConcepts() {
		for b := range ev.EntityPartners(a) {
			cand[[2]string{a, b}] = true
			cand[[2]string{b, a}] = true
		}
	}
	added := 0
	// Deterministic iteration over pairs.
	keys := make([][2]string, 0, len(cand))
	for k := range cand {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		c1, c2 := k[0], k[1]
		n1, n2 := len(hypos(c1)), len(hypos(c2))
		if n1 < minSize || n2 < minSize {
			continue // both sides need real extents
		}
		if n2 < 2*n1 {
			continue // need a clear size gap: generalization, not synonymy
		}
		overlap := ev.EntityOverlap(c1, c2)
		if float64(overlap)/float64(n1) < minRatio {
			continue
		}
		if morphRelated(c1, c2) {
			continue // already added by the head rule
		}
		if tax.HasIsA(c1, c2) || tax.IsAncestor(c2, c1) {
			continue // avoid duplicates and 2-cycles
		}
		if err := tax.AddIsA(c1, c2, taxonomy.SourceSubsume, float64(overlap)/float64(n1)); err == nil {
			tax.MarkConcept(c1)
			added++
		}
	}
	return added
}

// morphRelated reports whether c2 is a suffix of c1 (the head rule's
// territory).
func morphRelated(c1, c2 string) bool { return strings.HasSuffix(c1, c2) && c1 != c2 }

// conceptNodes lists hypernym-position nodes that look like concepts.
func conceptNodes(tax *taxonomy.Taxonomy) []string {
	var out []string
	for _, n := range tax.Nodes() {
		if tax.Kind(n) == taxonomy.KindConcept && runes.AllHan(n) {
			out = append(out, n)
		}
	}
	return out
}
