package core

import (
	"fmt"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
	"cnprobase/internal/verify"
)

// Update performs an incremental build: it extends an existing Result
// with newly crawled pages, the never-ending-extraction mode of the
// CN-DBpedia pipeline CN-Probase sits on. The existing taxonomy is
// extended in place (and also returned).
//
// The delta pass reuses the original run's substrates — segmenter,
// corpus statistics (updated with the new text) and curated predicate
// list — and re-runs verification over the union candidate set so the
// incompatibility statistics see both old and new evidence. The neural
// extractor is skipped during updates; bracket, infobox and tag
// extraction cover the delta.
func (p *Pipeline) Update(prev *Result, delta *encyclopedia.Corpus) (*Result, error) {
	if prev == nil || prev.Taxonomy == nil {
		return nil, fmt.Errorf("core: Update needs a prior Result")
	}
	if delta == nil || len(delta.Pages) == 0 {
		return prev, nil
	}
	if prev.Corpus == nil {
		return nil, fmt.Errorf("core: prior Result lacks its corpus; rebuild with this version")
	}

	// Extend corpus statistics with the new text.
	for i := range delta.Pages {
		page := &delta.Pages[i]
		if page.Abstract != "" {
			prev.Stats.AddSentence(prev.Segmenter.Cut(page.Abstract))
		}
		if page.Bracket != "" {
			prev.Stats.AddSentence(prev.Segmenter.Cut(page.Bracket))
		}
	}

	// ---- generation over the delta ----
	var fresh []extract.Candidate
	if p.opts.EnableBracket {
		sep := extract.NewSeparator(prev.Segmenter, prev.Stats)
		for i := range delta.Pages {
			page := &delta.Pages[i]
			fresh = append(fresh, sep.Extract(page.Title, page.Bracket)...)
		}
	}
	if p.opts.EnableInfobox {
		// Reuse the predicates curated during the full build: the
		// "manual selection" does not change per crawl batch.
		fresh = append(fresh, extract.ExtractInfobox(delta, prev.Report.SelectedPredicates)...)
	}
	if p.opts.EnableTags {
		for i := range delta.Pages {
			fresh = append(fresh, extract.Tags(&delta.Pages[i])...)
		}
	}

	// ---- verification over the union ----
	union := &encyclopedia.Corpus{Pages: append(append([]encyclopedia.Page(nil), prev.Corpus.Pages...), delta.Pages...)}
	merged := extract.Dedupe(append(append([]extract.Candidate(nil), prev.Kept...), fresh...))
	rec := ner.New()
	support := ner.NewSupport()
	for i := range union.Pages {
		page := &union.Pages[i]
		if page.Abstract == "" {
			continue
		}
		support.Observe(prev.Segmenter.Cut(page.Abstract), rec.Recognize(page.Abstract))
	}
	ctx := verify.NewContext(union, merged, support, rec)
	kept, vrep := verify.Verify(merged, ctx, prev.Segmenter, p.opts.Verify)

	// ---- taxonomy extension ----
	for i := range delta.Pages {
		page := &delta.Pages[i]
		id := page.ID()
		prev.Taxonomy.MarkEntity(id)
		prev.Mentions.Add(page.Title, id)
		prev.Mentions.Add(id, id)
		for _, t := range page.Infobox {
			if t.Predicate == "别名" && t.Object != "" {
				prev.Mentions.Add(t.Object, id)
			}
		}
	}
	// Remove previously-kept edges that the union-wide verification now
	// rejects, then add everything kept.
	keptSet := make(map[[2]string]bool, len(kept))
	for _, c := range kept {
		keptSet[[2]string{c.Hypo, c.Hyper}] = true
	}
	for _, c := range prev.Kept {
		if !keptSet[[2]string{c.Hypo, c.Hyper}] {
			prev.Taxonomy.RemoveIsA(c.Hypo, c.Hyper)
		}
	}
	for _, c := range kept {
		if err := prev.Taxonomy.AddIsA(c.Hypo, c.Hyper, c.Source, c.Score); err != nil {
			return nil, fmt.Errorf("core: updating taxonomy: %w", err)
		}
	}
	if p.opts.DeriveSubconcepts {
		prev.Report.DerivedSubconcepts += deriveSubconcepts(prev.Taxonomy, prev.Segmenter, p.opts)
	}

	prev.Corpus = union
	prev.Candidates = merged
	prev.Kept = kept
	prev.Report.Pages = union.Len()
	prev.Report.Verification = vrep
	prev.Report.Stats = prev.Taxonomy.ComputeStats()
	return prev, nil
}
