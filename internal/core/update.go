package core

import (
	"fmt"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
	"cnprobase/internal/par"
	"cnprobase/internal/verify"
)

// Update performs an incremental build: it extends an existing Result
// with newly crawled pages, the never-ending-extraction mode of the
// CN-DBpedia pipeline CN-Probase sits on. The existing taxonomy is
// extended in place (and also returned).
//
// The delta pass reuses the original run's substrates — segmenter,
// corpus statistics (updated with the new text) and curated predicate
// list — and re-runs verification over the union candidate set so the
// incompatibility statistics see both old and new evidence. The neural
// extractor is skipped during updates; bracket, infobox and tag
// extraction cover the delta. Per-page work (segmentation, extraction,
// NE recognition) fans out over the same bounded worker pool Build
// uses, sized by Options.Workers.
func (p *Pipeline) Update(prev *Result, delta *encyclopedia.Corpus) (*Result, error) {
	if prev == nil || prev.Taxonomy == nil {
		return nil, fmt.Errorf("core: Update needs a prior Result")
	}
	if delta == nil || len(delta.Pages) == 0 {
		return prev, nil
	}
	if prev.Corpus == nil {
		return nil, fmt.Errorf("core: prior Result lacks its corpus; rebuild with this version")
	}
	workers := workerCount(p.opts.Workers)
	pl := par.NewPool(workers)

	// Extend corpus statistics with the new text, then refresh the
	// segmenter's precomputed word costs once for the whole batch.
	// Since costs were frozen into the dictionary at construction, the
	// cuts inside this loop all use the pre-delta probabilities (batch
	// granularity: the stats→segmenter feedback applies between crawl
	// batches, not between pages of one batch), which also makes the
	// loop order-free.
	var toks []string // recycled; AddSentence clones first-seen keys
	for i := range delta.Pages {
		page := &delta.Pages[i]
		if page.Abstract != "" {
			toks = prev.Segmenter.CutAppend(toks[:0], page.Abstract)
			prev.Stats.AddSentence(toks)
		}
		if page.Bracket != "" {
			toks = prev.Segmenter.CutAppend(toks[:0], page.Bracket)
			prev.Stats.AddSentence(toks)
		}
	}
	// Everything downstream — delta extraction and union-wide NE
	// evidence — segments with the delta's counts folded in.
	prev.Segmenter.RefreshCosts()

	// ---- generation over the delta ----
	var fresh []extract.Candidate
	if p.opts.EnableBracket {
		fresh = append(fresh, p.bracketStage(delta, prev.Segmenter, prev.Stats, pl)...)
	}
	if p.opts.EnableInfobox {
		// Reuse the predicates curated during the full build: the
		// "manual selection" does not change per crawl batch.
		fresh = append(fresh, par.Concat(par.MapBatches(pl, len(delta.Pages), func(lo, hi int) []extract.Candidate {
			sub := encyclopedia.Corpus{Pages: delta.Pages[lo:hi]}
			return extract.ExtractInfobox(&sub, prev.Report.SelectedPredicates)
		}))...)
	}
	if p.opts.EnableTags {
		fresh = append(fresh, p.tagStage(delta, pl)...)
	}

	// ---- verification over the union ----
	union := &encyclopedia.Corpus{Pages: append(append([]encyclopedia.Page(nil), prev.Corpus.Pages...), delta.Pages...)}
	merged := extract.Dedupe(append(append([]extract.Candidate(nil), prev.Kept...), fresh...))
	rec := ner.New()
	support := observeSupport(union, prev.Segmenter, rec, pl)
	ctx := verify.NewContext(union, merged, support, rec)
	vopts := p.opts.Verify
	if vopts.Workers == 0 {
		vopts.Workers = workers // inherit the pipeline pool size by default
	}
	kept, vrep := verify.Verify(merged, ctx, prev.Segmenter, vopts)

	// ---- taxonomy extension ----
	for i := range delta.Pages {
		page := &delta.Pages[i]
		id := page.ID()
		prev.Taxonomy.MarkEntity(id)
		prev.Mentions.Add(page.Title, id)
		prev.Mentions.Add(id, id)
		for _, t := range page.Infobox {
			if t.Predicate == "别名" && t.Object != "" {
				prev.Mentions.Add(t.Object, id)
			}
		}
	}
	// Remove previously-kept edges that the union-wide verification now
	// rejects, then add everything kept.
	keptSet := make(map[[2]string]bool, len(kept))
	for _, c := range kept {
		keptSet[[2]string{c.Hypo, c.Hyper}] = true
	}
	for _, c := range prev.Kept {
		if !keptSet[[2]string{c.Hypo, c.Hyper}] {
			prev.Taxonomy.RemoveIsA(c.Hypo, c.Hyper)
		}
	}
	if err := assembleEdges(prev.Taxonomy, kept, pl); err != nil {
		return nil, fmt.Errorf("core: updating taxonomy: %w", err)
	}
	if p.opts.DeriveSubconcepts {
		prev.Report.DerivedSubconcepts += deriveSubconcepts(prev.Taxonomy, prev.Segmenter, p.opts)
	}
	prev.Taxonomy.Finalize()

	prev.Corpus = union
	prev.Candidates = merged
	prev.Kept = kept
	prev.Report.Pages = union.Len()
	prev.Report.Workers = workers
	prev.Report.Verification = vrep
	prev.Report.Stats = prev.Taxonomy.ComputeStats()
	return prev, nil
}
