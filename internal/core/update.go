package core

import (
	"fmt"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/par"
	"cnprobase/internal/segment"
	"cnprobase/internal/verify"
)

// Update performs an incremental build: it extends an existing Result
// with newly crawled pages, the never-ending-extraction mode of the
// CN-DBpedia pipeline CN-Probase sits on. The existing taxonomy is
// extended in place (and also returned).
//
// Update cost is proportional to the delta, not the accumulated
// corpus. The delta pass reuses the original run's substrates —
// segmenter, corpus statistics (updated with the new text) and curated
// predicate list — and folds the batch into the persistent
// verification evidence carried on the Result: only delta abstracts
// are segmented and recognized, and only fresh candidates plus the
// affected subset (candidates whose hyper/hypo evidence actually
// changed) are re-verified, while every other candidate keeps its
// cached decision. Raw pages are never retained or copied. The neural
// extractor is skipped during updates; bracket, infobox and tag
// extraction cover the delta. Per-page work (segmentation, extraction,
// NE recognition) fans out over the same bounded worker pool Build
// uses, sized by Options.Workers.
//
// Results restored from an evidence-carrying snapshot accept Update;
// their segmenter is rebuilt from the dictionary plus the restored
// statistics on first use. Options.ForceFullReverify selects the
// O(total) full re-verification reference path instead of the
// incremental one; both produce identical results (pinned by
// TestUpdateIncrementalMatchesFullReverify).
func (p *Pipeline) Update(prev *Result, delta *encyclopedia.Corpus) (*Result, error) {
	if prev == nil || prev.Taxonomy == nil {
		return nil, fmt.Errorf("core: Update needs a prior Result")
	}
	if delta == nil || len(delta.Pages) == 0 {
		return prev, nil
	}
	if prev.Evidence == nil || prev.Stats == nil {
		return nil, fmt.Errorf("core: prior Result lacks verification evidence; rebuild with this version or load a snapshot that carries it")
	}
	if prev.Segmenter == nil {
		// Snapshot-loaded Results carry statistics but no segmenter;
		// rebuild it the way Build constructs its final segmenter.
		dict := lexicon.BaseDictionary()
		dict = append(dict, p.opts.ExtraDictionary...)
		prev.Segmenter = segment.New(dict, segment.WithStats(prev.Stats))
	}
	workers := workerCount(p.opts.Workers)
	pl := par.NewPool(workers)

	// Extend corpus statistics with the new text, then refresh the
	// segmenter's precomputed word costs once for the whole batch.
	// Since costs were frozen into the dictionary at construction, the
	// cuts inside this loop all use the pre-delta probabilities (batch
	// granularity: the stats→segmenter feedback applies between crawl
	// batches, not between pages of one batch), which also makes the
	// loop order-free.
	var toks []string // recycled; AddSentence clones first-seen keys
	for i := range delta.Pages {
		page := &delta.Pages[i]
		if page.Abstract != "" {
			toks = prev.Segmenter.CutAppend(toks[:0], page.Abstract)
			prev.Stats.AddSentence(toks)
		}
		if page.Bracket != "" {
			toks = prev.Segmenter.CutAppend(toks[:0], page.Bracket)
			prev.Stats.AddSentence(toks)
		}
	}
	// Everything downstream — delta extraction and delta NE evidence —
	// segments with the delta's counts folded in.
	prev.Segmenter.RefreshCosts()

	// ---- generation over the delta ----
	var fresh []extract.Candidate
	if p.opts.EnableBracket {
		fresh = append(fresh, p.bracketStage(delta, prev.Segmenter, prev.Stats, pl)...)
	}
	if p.opts.EnableInfobox {
		// Reuse the predicates curated during the full build: the
		// "manual selection" does not change per crawl batch.
		fresh = append(fresh, par.Concat(par.MapBatches(pl, len(delta.Pages), func(lo, hi int) []extract.Candidate {
			sub := encyclopedia.Corpus{Pages: delta.Pages[lo:hi]}
			return extract.ExtractInfobox(&sub, prev.Report.SelectedPredicates)
		}))...)
	}
	if p.opts.EnableTags {
		fresh = append(fresh, p.tagStage(delta, pl)...)
	}
	// Malformed crawl pages (blank titles yield empty-node candidates)
	// must not abort the update after the evidence and statistics have
	// already been extended — drop anything the taxonomy would reject
	// up front, so a bad batch can never leave the Result half-mutated.
	fresh = dropInvalid(fresh)

	// ---- evidence fold: only the delta is segmented and recognized ----
	deltaSupport := observeSupport(delta, prev.Segmenter, prev.Evidence.Recognizer, pl)
	prev.Evidence.FoldSupport(deltaSupport)
	prev.Evidence.AddPages(delta.Pages)

	// ---- verification over the union candidate set ----
	// The candidate set is previously kept pairs plus the fresh delta.
	// Both sides are deduplicated and sorted, so the union is a linear
	// merge; only the fresh pairs enter the evidence (kept pairs are
	// already in it), and the dirty tracking confines re-verification
	// to the affected subset unless the reference path is forced.
	freshDedup := extract.Dedupe(fresh)
	merged := mergeCandidates(prev.Kept, freshDedup)
	prev.Evidence.AddCandidates(freshDedup)
	if p.opts.ForceFullReverify {
		prev.Evidence.MarkAllDirty()
	}
	vopts := p.opts.Verify
	if vopts.Workers == 0 {
		vopts.Workers = workers // inherit the pipeline pool size by default
	}
	kept, vrep := verify.VerifyDelta(merged, prev.Evidence, prev.Segmenter, vopts)
	// Between batches the evidence describes the kept set only.
	prev.Evidence.RemoveCandidates(diffCandidates(merged, kept))

	// ---- taxonomy extension ----
	for i := range delta.Pages {
		page := &delta.Pages[i]
		id := page.ID()
		prev.Taxonomy.MarkEntity(id)
		prev.Mentions.Add(page.Title, id)
		prev.Mentions.Add(id, id)
		for _, t := range page.Infobox {
			if t.Predicate == "别名" && t.Object != "" {
				prev.Mentions.Add(t.Object, id)
			}
		}
	}
	// Remove previously-kept edges that re-verification now rejects,
	// then insert the delta's evidence: brand-new kept pairs, plus
	// re-generated pairs whose fresh occurrence reinforces an existing
	// edge. Unaffected edges are left alone.
	for _, c := range diffCandidates(prev.Kept, kept) {
		prev.Taxonomy.RemoveIsA(c.Hypo, c.Hyper)
	}
	if err := assembleEdges(prev.Taxonomy, updateInserts(kept, freshDedup, prev.Kept), pl); err != nil {
		return nil, fmt.Errorf("core: updating taxonomy: %w", err)
	}
	if p.opts.DeriveSubconcepts {
		prev.Report.DerivedSubconcepts += deriveSubconcepts(prev.Taxonomy, prev.Segmenter, prev.Evidence, p.opts)
	}
	prev.Taxonomy.Finalize()

	prev.Candidates = merged
	prev.Kept = kept
	prev.Report.Pages += len(delta.Pages)
	prev.Report.Workers = workers
	prev.Report.Verification = vrep
	prev.Report.PerSource = perSourceCounts(merged, kept)
	prev.Report.Stats = prev.Taxonomy.ComputeStats()
	return prev, nil
}
