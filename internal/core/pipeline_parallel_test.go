package core

import (
	"testing"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/par"
)

// TestParallelBuildMatchesSequential is the determinism contract of the
// concurrent pipeline: a Workers=8 build over a sharded store must
// produce a taxonomy identical to the Workers=1 sequential reference —
// same edge set (with sources, scores and counts), same node kinds,
// same stats, same kept candidates, same verification report.
func TestParallelBuildMatchesSequential(t *testing.T) {
	w := buildSmallWorld(t, 900)

	seqOpts := testOptions()
	seqOpts.Workers = 1
	seqOpts.Shards = 1
	seq, err := New(seqOpts).Build(w.Corpus())
	if err != nil {
		t.Fatalf("sequential Build: %v", err)
	}

	parOpts := testOptions()
	parOpts.Workers = 8
	parOpts.Shards = 32
	par, err := New(parOpts).Build(w.Corpus())
	if err != nil {
		t.Fatalf("parallel Build: %v", err)
	}

	if par.Report.Workers != 8 || par.Report.Shards != 32 {
		t.Errorf("report knobs = workers %d shards %d, want 8/32",
			par.Report.Workers, par.Report.Shards)
	}

	// Edge sets, including provenance and evidence counts.
	seqEdges, parEdges := seq.Taxonomy.Edges(), par.Taxonomy.Edges()
	if len(seqEdges) != len(parEdges) {
		t.Fatalf("edge count: parallel %d, sequential %d", len(parEdges), len(seqEdges))
	}
	for i := range seqEdges {
		if seqEdges[i] != parEdges[i] {
			t.Fatalf("edge[%d]: parallel %+v, sequential %+v", i, parEdges[i], seqEdges[i])
		}
	}

	// Node sets and kinds.
	seqNodes, parNodes := seq.Taxonomy.Nodes(), par.Taxonomy.Nodes()
	if len(seqNodes) != len(parNodes) {
		t.Fatalf("node count: parallel %d, sequential %d", len(parNodes), len(seqNodes))
	}
	for i, n := range seqNodes {
		if parNodes[i] != n {
			t.Fatalf("node[%d]: parallel %q, sequential %q", i, parNodes[i], n)
		}
		if seq.Taxonomy.Kind(n) != par.Taxonomy.Kind(n) {
			t.Fatalf("kind of %q differs", n)
		}
	}

	if seq.Report.Stats != par.Report.Stats {
		t.Errorf("stats: parallel %+v, sequential %+v", par.Report.Stats, seq.Report.Stats)
	}

	// Kept candidates (order included: chunked filtering must preserve it).
	if len(seq.Kept) != len(par.Kept) {
		t.Fatalf("kept count: parallel %d, sequential %d", len(par.Kept), len(seq.Kept))
	}
	for i := range seq.Kept {
		if seq.Kept[i] != par.Kept[i] {
			t.Fatalf("kept[%d]: parallel %+v, sequential %+v", i, par.Kept[i], seq.Kept[i])
		}
	}

	// Verification report.
	sv, pv := seq.Report.Verification, par.Report.Verification
	if sv.Input != pv.Input || sv.Kept != pv.Kept || sv.IncompatiblePairs != pv.IncompatiblePairs {
		t.Errorf("verification: parallel %+v, sequential %+v", pv, sv)
	}
	for r, n := range sv.Rejected {
		if pv.Rejected[r] != n {
			t.Errorf("rejected[%s]: parallel %d, sequential %d", r, pv.Rejected[r], n)
		}
	}

	// Finalized canonical adjacency must agree everywhere.
	for _, n := range seqNodes {
		sh, ph := seq.Taxonomy.Hypernyms(n), par.Taxonomy.Hypernyms(n)
		if len(sh) != len(ph) {
			t.Fatalf("hypernyms of %q: parallel %v, sequential %v", n, ph, sh)
		}
		for i := range sh {
			if sh[i] != ph[i] {
				t.Fatalf("hypernyms of %q: parallel %v, sequential %v", n, ph, sh)
			}
		}
	}
}

// TestParallelUpdateMatchesSequential extends a built taxonomy with a
// crawl batch under both worker counts and compares the results.
func TestParallelUpdateMatchesSequential(t *testing.T) {
	w := buildSmallWorld(t, 700)
	corpus := w.Corpus()
	half := corpus.Len() / 2

	run := func(workers int) *Result {
		opts := testOptions()
		opts.EnableNeural = false
		opts.Workers = workers
		first := corpusSlice(corpus, 0, half)
		delta := corpusSlice(corpus, half, corpus.Len())
		p := New(opts)
		res, err := p.Build(first)
		if err != nil {
			t.Fatalf("Build(workers=%d): %v", workers, err)
		}
		res, err = p.Update(res, delta)
		if err != nil {
			t.Fatalf("Update(workers=%d): %v", workers, err)
		}
		return res
	}
	seq, par := run(1), run(8)
	seqEdges, parEdges := seq.Taxonomy.Edges(), par.Taxonomy.Edges()
	if len(seqEdges) != len(parEdges) {
		t.Fatalf("edge count: parallel %d, sequential %d", len(parEdges), len(seqEdges))
	}
	for i := range seqEdges {
		if seqEdges[i] != parEdges[i] {
			t.Fatalf("edge[%d]: parallel %+v, sequential %+v", i, parEdges[i], seqEdges[i])
		}
	}
	if seq.Report.Stats != par.Report.Stats {
		t.Errorf("stats: parallel %+v, sequential %+v", par.Report.Stats, seq.Report.Stats)
	}
}

// TestBuildUsesShardedStore checks the Shards option reaches the store.
func TestBuildUsesShardedStore(t *testing.T) {
	w := buildSmallWorld(t, 300)
	opts := testOptions()
	opts.EnableNeural = false
	opts.Shards = 7
	res, err := New(opts).Build(w.Corpus())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := res.Taxonomy.ShardCount(); got != 7 {
		t.Errorf("ShardCount = %d, want 7", got)
	}
	if !res.Taxonomy.Finalized() {
		t.Error("Build returned a non-finalized taxonomy")
	}
	if res.Report.Shards != 7 {
		t.Errorf("Report.Shards = %d, want 7", res.Report.Shards)
	}
}

// TestWorkerCountResolution pins the Workers semantics: <= 0 is auto,
// 1 is sequential (nil pool), n > 1 is n.
func TestWorkerCountResolution(t *testing.T) {
	if workerCount(1) != 1 {
		t.Error("workerCount(1) != 1")
	}
	if workerCount(6) != 6 {
		t.Error("workerCount(6) != 6")
	}
	if workerCount(0) < 1 || workerCount(-2) < 1 {
		t.Error("auto worker count < 1")
	}
	if par.NewPool(1) != nil {
		t.Error("NewPool(1) should be nil (sequential)")
	}
	if p := par.NewPool(4); p == nil || p.Size() != 4 {
		t.Error("NewPool(4) misconfigured")
	}
}

func corpusSlice(c *encyclopedia.Corpus, lo, hi int) *encyclopedia.Corpus {
	return &encyclopedia.Corpus{Pages: append([]encyclopedia.Page(nil), c.Pages[lo:hi]...)}
}
