package core

import (
	"strings"
	"testing"

	"cnprobase/internal/taxonomy"
)

func TestBuildRejectsEmptyCorpus(t *testing.T) {
	if _, err := New(DefaultOptions()).Build(nil); err == nil {
		t.Fatal("nil corpus accepted")
	}
}

func fastOptions() Options {
	o := DefaultOptions()
	o.EnableNeural = false // the slow stage; covered separately
	return o
}

func TestSourceToggles(t *testing.T) {
	w := buildSmallWorld(t, 600)
	run := func(mutate func(*Options)) *Result {
		o := fastOptions()
		mutate(&o)
		res, err := New(o).Build(w.Corpus())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return res
	}
	full := run(func(*Options) {})
	noTags := run(func(o *Options) { o.EnableTags = false })
	noBracket := run(func(o *Options) { o.EnableBracket = false })

	if full.Report.PerSource[taxonomy.SourceTag] == nil {
		t.Fatal("full run missing tag source report")
	}
	if noTags.Report.PerSource[taxonomy.SourceTag] != nil {
		t.Error("tags disabled but tag candidates produced")
	}
	if noTags.Taxonomy.EdgeCount() >= full.Taxonomy.EdgeCount() {
		t.Error("disabling tags should shrink the taxonomy")
	}
	if noBracket.Report.PerSource[taxonomy.SourceBracket] != nil {
		t.Error("bracket disabled but bracket candidates produced")
	}
	// Without the bracket prior, predicate discovery has nothing to
	// align and selects nothing.
	if len(noBracket.Report.SelectedPredicates) != 0 {
		t.Errorf("predicates selected without prior: %v", noBracket.Report.SelectedPredicates)
	}
}

func TestSubconceptDerivation(t *testing.T) {
	w := buildSmallWorld(t, 1200)
	o := fastOptions()
	res, err := New(o).Build(w.Corpus())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res.Report.DerivedSubconcepts == 0 {
		t.Fatal("no subconcept edges derived")
	}
	st := res.Report.Stats
	if st.SubConceptIsA == 0 {
		t.Fatalf("stats show no subconcept edges: %+v", st)
	}
	// The morphological rule must produce 男演员 → 演员 whenever both
	// concepts were extracted.
	if res.Taxonomy.HyponymCount("男演员") > 0 && res.Taxonomy.HyponymCount("演员") > 0 {
		if !res.Taxonomy.HasIsA("男演员", "演员") {
			t.Error("missing derived edge 男演员 → 演员")
		}
	}
	// Derived edges judged by the oracle should be mostly correct.
	oracle := w.Oracle()
	correct, total := 0, 0
	for _, e := range res.Taxonomy.Edges() {
		if e.Sources&(taxonomy.SourceMorph|taxonomy.SourceSubsume) != 0 {
			total++
			if oracle.Judge(e.Hypo, e.Hyper) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no derived edges found")
	}
	if p := float64(correct) / float64(total); p < 0.7 {
		t.Errorf("derived subconcept precision = %.3f (%d/%d), want ≥0.7", p, correct, total)
	}

	off := fastOptions()
	off.DeriveSubconcepts = false
	res2, err := New(off).Build(w.Corpus())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res2.Report.DerivedSubconcepts != 0 || res2.Report.Stats.SubConceptIsA != 0 {
		t.Errorf("derivation disabled but edges present: %+v", res2.Report.Stats)
	}
}

func TestVerificationImprovesPrecision(t *testing.T) {
	w := buildSmallWorld(t, 1200)
	oracle := w.Oracle()

	on := fastOptions()
	off := fastOptions()
	off.Verify.EnableIncompatible = false
	off.Verify.EnableNE = false
	off.Verify.EnableSyntax = false

	resOn, err := New(on).Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := New(off).Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	pOn := sampledPrecision(resOn.Taxonomy, oracle)
	pOff := sampledPrecision(resOff.Taxonomy, oracle)
	if pOn <= pOff {
		t.Errorf("verification should improve precision: on=%.3f off=%.3f", pOn, pOff)
	}
	if pOn-pOff < 0.05 {
		t.Errorf("verification gain %.3f too small; filters inert?", pOn-pOff)
	}
	if resOff.Taxonomy.EdgeCount() <= resOn.Taxonomy.EdgeCount() {
		t.Error("verification should remove edges")
	}
}

func sampledPrecision(tx *taxonomy.Taxonomy, judge interface{ Judge(a, b string) bool }) float64 {
	edges := tx.Edges()
	correct, n := 0, 0
	for i, e := range edges {
		if i%3 != 0 { // stride sample for speed
			continue
		}
		n++
		if judge.Judge(e.Hypo, e.Hyper) {
			correct++
		}
	}
	if n == 0 {
		return 1
	}
	return float64(correct) / float64(n)
}

func TestMentionIndexBuilt(t *testing.T) {
	w := buildSmallWorld(t, 800)
	res, err := New(fastOptions()).Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mentions.Size() == 0 {
		t.Fatal("empty mention index")
	}
	// Every page title must resolve to its entity.
	p := w.Corpus().Pages[0]
	ids := res.Mentions.Lookup(p.Title)
	found := false
	for _, id := range ids {
		if id == p.ID() {
			found = true
		}
	}
	if !found {
		t.Errorf("Lookup(%q) = %v, missing %q", p.Title, ids, p.ID())
	}
	// Aliases from 别名 triples resolve too.
	for _, page := range w.Corpus().Pages {
		for _, tr := range page.Infobox {
			if tr.Predicate == "别名" {
				if len(res.Mentions.Lookup(tr.Object)) == 0 {
					t.Errorf("alias %q not indexed", tr.Object)
				}
				return
			}
		}
	}
}

func TestReportAccounting(t *testing.T) {
	w := buildSmallWorld(t, 600)
	res, err := New(fastOptions()).Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Pages != w.Corpus().Len() {
		t.Errorf("Pages = %d, want %d", rep.Pages, w.Corpus().Len())
	}
	if rep.Verification.Input != len(res.Candidates) {
		t.Errorf("verification input %d != candidates %d", rep.Verification.Input, len(res.Candidates))
	}
	if rep.Verification.Kept != len(res.Kept) {
		t.Errorf("verification kept %d != kept %d", rep.Verification.Kept, len(res.Kept))
	}
	for src, sr := range rep.PerSource {
		if sr.Kept > sr.Generated {
			t.Errorf("source %v kept %d > generated %d", src, sr.Kept, sr.Generated)
		}
	}
	for _, p := range rep.SelectedPredicates {
		if strings.TrimSpace(p) == "" {
			t.Error("empty selected predicate")
		}
	}
}

func TestTaxonomyMarksKinds(t *testing.T) {
	w := buildSmallWorld(t, 500)
	res, err := New(fastOptions()).Build(w.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Corpus().Pages[:10] {
		if res.Taxonomy.Kind(p.ID()) != taxonomy.KindEntity {
			t.Errorf("page %q not marked entity", p.ID())
		}
	}
}
