package core

import (
	"testing"

	"cnprobase/internal/eval"
	"cnprobase/internal/extract"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// buildSmallWorld generates a compact world for pipeline tests.
func buildSmallWorld(t testing.TB, entities int) *synth.World {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Entities = entities
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return w
}

func testOptions() Options {
	o := DefaultOptions()
	o.NeuralEpochs = 1
	o.NeuralMaxSamples = 300
	o.Neural.Vocab = 400
	return o
}

func TestPipelineEndToEnd(t *testing.T) {
	w := buildSmallWorld(t, 1200)
	res, err := New(testOptions()).Build(w.Corpus())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := res.Report.Stats
	if st.Entities == 0 || st.Concepts == 0 || st.IsARelations == 0 {
		t.Fatalf("empty taxonomy: %+v", st)
	}
	oracle := w.Oracle()
	pr := eval.SamplePrecision(eval.EdgePairs(res.Taxonomy.Edges(), 0), oracle, 2000, 1)
	t.Logf("stats=%+v precision=%.3f (sampled %d)", st, pr.Precision(), pr.Sampled)
	t.Logf("verification=%+v", res.Report.Verification)
	t.Logf("selected predicates=%v", res.Report.SelectedPredicates)
	for src, sr := range res.Report.PerSource {
		prSrc := eval.SamplePrecision(candPairs(res.Kept, src), oracle, 0, 1)
		t.Logf("source %v: generated=%d kept=%d precision=%.3f", src, sr.Generated, sr.Kept, prSrc.Precision())
	}
	if pr.Precision() < 0.85 {
		t.Errorf("taxonomy precision %.3f below 0.85 band", pr.Precision())
	}
}

func candPairs(cands []extract.Candidate, src taxonomy.Source) []eval.Pair {
	var out []eval.Pair
	for _, c := range cands {
		if src == 0 || c.Source&src != 0 {
			out = append(out, eval.Pair{Hypo: c.Hypo, Hyper: c.Hyper})
		}
	}
	return out
}
