package runes

import "testing"

func TestIsHan(t *testing.T) {
	for _, tc := range []struct {
		r    rune
		want bool
	}{
		{'中', true}, {'国', true}, {'人', true}, {'A', false},
		{'1', false}, {'，', false}, {' ', false}, {'ñ', false},
	} {
		if got := IsHan(tc.r); got != tc.want {
			t.Errorf("IsHan(%q) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestIsCJKPunct(t *testing.T) {
	for _, r := range []rune{'，', '。', '、', '《', '》', '（', '）'} {
		if !IsCJKPunct(r) {
			t.Errorf("IsCJKPunct(%q) = false, want true", r)
		}
	}
	for _, r := range []rune{'中', 'a', '1'} {
		if IsCJKPunct(r) {
			t.Errorf("IsCJKPunct(%q) = true, want false", r)
		}
	}
}

func TestIsPunct(t *testing.T) {
	for _, r := range []rune{'，', '.', '!', '-', '+'} {
		if !IsPunct(r) {
			t.Errorf("IsPunct(%q) = false, want true", r)
		}
	}
	if IsPunct('汉') {
		t.Error("IsPunct(汉) = true, want false")
	}
}

func TestIsDigit(t *testing.T) {
	for _, tc := range []struct {
		r    rune
		want bool
	}{{'0', true}, {'9', true}, {'０', true}, {'９', true}, {'a', false}, {'十', false}} {
		if got := IsDigit(tc.r); got != tc.want {
			t.Errorf("IsDigit(%q) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestHanCountAndAllHan(t *testing.T) {
	if got := HanCount("中abc国12"); got != 2 {
		t.Errorf("HanCount = %d, want 2", got)
	}
	if !AllHan("中国人") {
		t.Error("AllHan(中国人) = false, want true")
	}
	if AllHan("中国a") {
		t.Error("AllHan(中国a) = true, want false")
	}
	if AllHan("") {
		t.Error("AllHan(\"\") = true, want false")
	}
}

func TestLen(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want int
	}{{"", 0}, {"abc", 3}, {"中国", 2}, {"a中1", 3}} {
		if got := Len(tc.s); got != tc.want {
			t.Errorf("Len(%q) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestHasSuffix(t *testing.T) {
	rs := []rune("教育机构")
	if !HasSuffix(rs, "机构") {
		t.Error("HasSuffix(教育机构, 机构) = false, want true")
	}
	if HasSuffix(rs, "教育") {
		t.Error("HasSuffix(教育机构, 教育) = true, want false")
	}
	if HasSuffix(rs, "很长很长很长的后缀") {
		t.Error("HasSuffix with over-long suffix = true, want false")
	}
	if !HasSuffix(rs, "") {
		t.Error("HasSuffix with empty suffix = false, want true")
	}
}

func TestReverse(t *testing.T) {
	got := string(Reverse([]rune("中国人")))
	if got != "人国中" {
		t.Errorf("Reverse = %q, want 人国中", got)
	}
	if len(Reverse(nil)) != 0 {
		t.Error("Reverse(nil) should be empty")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	for _, s := range []string{"", "abc", "中文mixed123", "《忘情水》"} {
		if got := Join(Split(s)); got != s {
			t.Errorf("Join(Split(%q)) = %q", s, got)
		}
	}
}
