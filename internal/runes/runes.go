// Package runes provides rune-level utilities for Chinese (CJK) text
// processing shared by the segmenter, the NER recognizer and the
// extraction algorithms.
//
// Chinese has no word spaces, so most of the pipeline operates on rune
// slices rather than byte offsets; this package centralizes the
// conversions and the script classification predicates.
package runes

import "unicode"

// IsHan reports whether r is a Han (CJK ideograph) rune.
func IsHan(r rune) bool {
	return unicode.Is(unicode.Han, r)
}

// IsASCIILetter reports whether r is an ASCII letter.
func IsASCIILetter(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

// IsDigit reports whether r is an ASCII or fullwidth digit.
func IsDigit(r rune) bool {
	return (r >= '0' && r <= '9') || (r >= '０' && r <= '９')
}

// IsCJKPunct reports whether r is common CJK punctuation.
func IsCJKPunct(r rune) bool {
	switch r {
	case '，', '。', '、', '；', '：', '？', '！', '（', '）',
		'《', '》', '“', '”', '‘', '’', '【', '】', '—', '…', '·':
		return true
	}
	return false
}

// IsPunct reports whether r is punctuation in either script.
func IsPunct(r rune) bool {
	return IsCJKPunct(r) || unicode.IsPunct(r) || unicode.IsSymbol(r)
}

// Split converts s into a slice of runes.
func Split(s string) []rune { return []rune(s) }

// Join converts a rune slice back into a string.
func Join(rs []rune) string { return string(rs) }

// HanCount returns the number of Han runes in s.
func HanCount(s string) int {
	n := 0
	for _, r := range s {
		if IsHan(r) {
			n++
		}
	}
	return n
}

// AllHan reports whether s is non-empty and consists only of Han runes.
func AllHan(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !IsHan(r) {
			return false
		}
	}
	return true
}

// Len returns the number of runes in s.
func Len(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// HasSuffix reports whether the rune slice rs ends with the runes of
// suffix.
func HasSuffix(rs []rune, suffix string) bool {
	sfx := []rune(suffix)
	if len(sfx) > len(rs) {
		return false
	}
	off := len(rs) - len(sfx)
	for i, r := range sfx {
		if rs[off+i] != r {
			return false
		}
	}
	return true
}

// Reverse returns a new slice with the runes of rs in reverse order.
func Reverse(rs []rune) []rune {
	out := make([]rune, len(rs))
	for i, r := range rs {
		out[len(rs)-1-i] = r
	}
	return out
}
