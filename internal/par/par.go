// Package par provides the small concurrency vocabulary the pipeline
// shares: a bounded worker pool, an order-preserving batched map, and
// an inline-degradable coordinator group. Every helper treats a nil
// *Pool as "run inline, sequentially", which is how the deterministic
// Workers=1 path degrades without a second code path.
package par

import "sync"

// Pool is a bounded worker pool. Concurrent stages sharing one Pool
// can never run more than its capacity of leaf tasks at once. A nil
// *Pool means sequential inline execution.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting at most workers concurrent tasks,
// or nil when workers <= 1 (the sequential path).
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Size returns the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return cap(p.sem)
}

// Acquire claims one pool slot for CPU-heavy work running on a
// coordinator goroutine itself (predicate discovery, model training)
// and returns the release function. Release the slot before calling
// MapBatches — holding it across a fan-out would waste a worker (the
// pool stays deadlock-free either way, since leaf tasks never acquire
// further slots). A nil pool returns a no-op.
func (p *Pool) Acquire() (release func()) {
	if p == nil {
		return func() {}
	}
	p.sem <- struct{}{}
	return func() { <-p.sem }
}

// MapBatches splits the index range [0, n) into contiguous batches,
// applies fn to each batch on the pool, and returns the per-batch
// results in batch order. Batch boundaries follow item order, so
// concatenating the results reproduces the exact sequential output for
// order-preserving fn. With a nil pool the single batch [0, n) runs
// inline on the calling goroutine.
func MapBatches[T any](p *Pool, n int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return []T{fn(0, n)}
	}
	// Oversplit relative to the worker count so uneven batches (pages
	// with and without abstracts, say) still balance.
	batches := p.Size() * 4
	if batches > n {
		batches = n
	}
	size := (n + batches - 1) / batches
	batches = (n + size - 1) / size
	out := make([]T, batches)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		lo := b * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		b := b
		wg.Add(1)
		p.sem <- struct{}{}
		go func() {
			defer func() { <-p.sem; wg.Done() }()
			out[b] = fn(lo, hi)
		}()
	}
	wg.Wait()
	return out
}

// WindowFold processes [0, n) in windows of Size()*perWorker items:
// each window's index range fans out through MapBatches (fn receives
// absolute [lo, hi) bounds) and every produced item is folded in batch
// order before the next window is cut. Resident intermediate results
// are bounded to one window — O(window), not O(n) — which is what the
// pipeline's streaming accumulator passes need. fold runs only on the
// calling goroutine, so it may touch non-thread-safe state.
func WindowFold[T any](p *Pool, n, perWorker int, fn func(lo, hi int) []T, fold func(T)) {
	window := p.Size() * perWorker
	for base := 0; base < n; base += window {
		end := base + window
		if end > n {
			end = n
		}
		base := base
		for _, batch := range MapBatches(p, end-base, func(lo, hi int) []T {
			return fn(base+lo, base+hi)
		}) {
			for _, v := range batch {
				fold(v)
			}
		}
	}
}

// Concat flattens per-batch slices in batch order.
func Concat[T any](batches [][]T) []T {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	out := make([]T, 0, n)
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// Group runs coordinator functions — one per pipeline stage — either
// inline (sequential path) or on goroutines, collecting the first
// error. Coordinators themselves do not occupy pool slots; only the
// leaf batch tasks they spawn through MapBatches (or explicitly via
// Pool.Acquire) do.
type Group struct {
	// Inline makes Go run functions immediately on the caller, in call
	// order — the sequential path.
	Inline bool

	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

func (g *Group) setErr(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// Go runs fn; inline groups run it immediately on the caller.
func (g *Group) Go(fn func() error) {
	if g.Inline {
		g.setErr(fn())
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.setErr(fn())
	}()
}

// Wait blocks until every Go'd function returned and reports the first
// error. It may be called more than once.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
