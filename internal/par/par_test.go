package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapBatchesOrderPreserved(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(4)} {
		got := Concat(MapBatches(p, 1000, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		}))
		if len(got) != 1000 {
			t.Fatalf("pool=%v: len = %d", p, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("pool=%v: got[%d] = %d", p, i, v)
			}
		}
	}
}

func TestMapBatchesBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var cur, max atomic.Int64
	MapBatches(p, 200, func(lo, hi int) struct{} {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
		cur.Add(-1)
		return struct{}{}
	})
	if got := max.Load(); got > 3 {
		t.Errorf("observed %d concurrent tasks, bound is 3", got)
	}
}

func TestWindowFoldCoversAllInOrder(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(4)} {
		var got []int
		WindowFold(p, 1000, 64, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		}, func(v int) { got = append(got, v) })
		if len(got) != 1000 {
			t.Fatalf("pool=%v: folded %d items", p, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("pool=%v: got[%d] = %d", p, i, v)
			}
		}
	}
}

func TestMapBatchesEmpty(t *testing.T) {
	if got := MapBatches(NewPool(2), 0, func(lo, hi int) int { return 1 }); got != nil {
		t.Errorf("MapBatches(0) = %v, want nil", got)
	}
}

func TestPoolNilSemantics(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Error("nil pool Size != 1")
	}
	release := p.Acquire() // must not block or panic
	release()
	if NewPool(1) != nil {
		t.Error("NewPool(1) should be nil (sequential)")
	}
	if q := NewPool(4); q == nil || q.Size() != 4 {
		t.Error("NewPool(4) misconfigured")
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	for _, inline := range []bool{true, false} {
		g := &Group{Inline: inline}
		sentinel := errors.New("boom")
		g.Go(func() error { return nil })
		g.Go(func() error { return sentinel })
		if err := g.Wait(); !errors.Is(err, sentinel) {
			t.Errorf("inline=%v: Wait() = %v, want %v", inline, err, sentinel)
		}
	}
}
