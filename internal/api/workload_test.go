package api

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"cnprobase/internal/taxonomy"
)

// benchWorld builds a workload-ready backing store and server usable
// from both tests and benchmarks.
func benchWorld(tb testing.TB) (*Server, *httptest.Server, *taxonomy.Taxonomy, *taxonomy.MentionIndex) {
	tb.Helper()
	tax := taxonomy.New()
	tax.MarkEntity("刘德华（演员）")
	tax.MarkEntity("刘德华（作家）")
	for _, e := range [][2]string{
		{"刘德华（演员）", "演员"},
		{"刘德华（演员）", "歌手"},
		{"刘德华（作家）", "作家"},
	} {
		if err := tax.AddIsA(e[0], e[1], taxonomy.SourceTag, 1); err != nil {
			tb.Fatal(err)
		}
	}
	mentions := taxonomy.NewMentionIndex()
	mentions.Add("刘德华", "刘德华（演员）")
	mentions.Add("刘德华", "刘德华（作家）")
	srv := NewServer(tax, mentions)
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return srv, ts, tax, mentions
}

// TestMixedWorkload drives the extended generator: all five endpoints
// must receive traffic, the server's counters must match what the
// client issued, and Zipfian sampling must actually skew toward head
// nodes.
func TestMixedWorkload(t *testing.T) {
	srv, ts, tax, mentions := benchWorld(t)
	cfg := MixedWorkloadConfig()
	cfg.Calls = 2000
	issued, err := RunWorkload(NewClient(ts.URL), tax, mentions, cfg)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if issued.Men2Ent == 0 || issued.GetConcept == 0 || issued.GetEntity == 0 ||
		issued.Conceptualize == 0 || issued.QA == 0 {
		t.Fatalf("issued = %+v, want traffic on all five endpoints", issued)
	}
	total := issued.Men2Ent + issued.GetConcept + issued.GetEntity + issued.Conceptualize + issued.QA
	if total != int64(cfg.Calls) {
		t.Errorf("issued %d calls, want %d", total, cfg.Calls)
	}
	got := srv.Counters()
	// Conceptualize on the server side counts batch-expanded texts too,
	// but the generator only uses the single-shot endpoint, so the
	// counters must match exactly.
	if got.Conceptualize != issued.Conceptualize || got.QA != issued.QA {
		t.Errorf("server counters %+v != issued %+v", got, issued)
	}
	// Every endpoint shows up in the latency report.
	report := srv.LatencyReport()
	seen := map[string]bool{}
	for _, row := range report {
		seen[row.Endpoint] = true
	}
	for _, ep := range []string{"men2ent", "getConcept", "getEntity", "conceptualize", "qa"} {
		if !seen[ep] {
			t.Errorf("latency report missing %s: %+v", ep, report)
		}
	}
}

// TestWorkloadZipfSkew checks the sampler shape directly: with s > 1
// the head node must absorb far more picks than a uniform sampler
// would give it.
func TestWorkloadZipfSkew(t *testing.T) {
	cfg := MixedWorkloadConfig()
	rngPicks := func(zipf bool) []int {
		c := cfg
		if !zipf {
			c.ZipfS = 0
		}
		s := newSampler(rand.New(rand.NewSource(7)), c, 100)
		counts := make([]int, 100)
		for i := 0; i < 5000; i++ {
			counts[s.pick()]++
		}
		return counts
	}
	zipf := rngPicks(true)
	uniform := rngPicks(false)
	if zipf[0] < 3*uniform[0] {
		t.Errorf("zipf head picks = %d, uniform = %d; want strong head skew", zipf[0], uniform[0])
	}
}

// BenchmarkMixedWorkload runs the extended five-endpoint workload
// end-to-end over HTTP and reports request throughput plus the
// server-observed p50/p99 — the serving-load smoke CI runs once per
// bench cycle.
func BenchmarkMixedWorkload(b *testing.B) {
	srv, ts, tax, mentions := benchWorld(b)
	cfg := MixedWorkloadConfig()
	cfg.Calls = 400
	client := NewClient(ts.URL)
	start := time.Now()
	calls := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := RunWorkload(client, tax, mentions, cfg); err != nil {
			b.Fatalf("RunWorkload: %v", err)
		}
		calls += cfg.Calls
	}
	b.StopTimer()
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(calls)/sec, "req/s")
	}
	for _, row := range srv.LatencyReport() {
		if row.Endpoint == "conceptualize" {
			b.ReportMetric(row.P50Ms, "conceptualize-p50-ms")
			b.ReportMetric(row.P99Ms, "conceptualize-p99-ms")
		}
	}
}
