package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// storeHandler mirrors the pre-View read path byte for byte: the three
// APIs answered straight from the mutable store with the same response
// structs and JSON encoding the Server uses. It exists only as the
// reference side of the store-vs-view equivalence test.
func storeHandler(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/men2ent", func(w http.ResponseWriter, r *http.Request) {
		m := r.URL.Query().Get("mention")
		if m == "" {
			writeError(w, http.StatusBadRequest, "missing ?mention=")
			return
		}
		writeJSON(w, Men2EntResponse{Mention: m, Entities: mentions.Lookup(m)})
	})
	mux.HandleFunc("/api/getConcept", func(w http.ResponseWriter, r *http.Request) {
		e := r.URL.Query().Get("entity")
		if e == "" {
			writeError(w, http.StatusBadRequest, "missing ?entity=")
			return
		}
		resp := ConceptResponse{Entity: e, Hypernyms: tax.Hypernyms(e)}
		if r.URL.Query().Get("ranked") == "1" {
			resp.Ranked = tax.RankedHypernyms(e, 0)
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/api/getEntity", func(w http.ResponseWriter, r *http.Request) {
		c := r.URL.Query().Get("concept")
		if c == "" {
			writeError(w, http.StatusBadRequest, "missing ?concept=")
			return
		}
		limit := 0
		fmt.Sscanf(r.URL.Query().Get("limit"), "%d", &limit)
		writeJSON(w, EntityResponse{Concept: c, Hyponyms: tax.Hyponyms(c, limit)})
	})
	return mux
}

// equivFixture assembles a finalized store with the response shapes
// that must survive the freeze: multi-hypernym entities with uneven
// evidence counts (non-trivial typicality), subconcept chains,
// ambiguous mentions, and nodes with no hypernyms at all.
func equivFixture(tb testing.TB) (*taxonomy.Taxonomy, *taxonomy.MentionIndex) {
	tb.Helper()
	tax := taxonomy.New()
	mentions := taxonomy.NewMentionIndex()
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("实体%02d（人物）", i)
		tax.MarkEntity(id)
		if err := tax.AddIsA(id, fmt.Sprintf("概念%d", i%7), taxonomy.SourceBracket, 0.5+float64(i)/100); err != nil {
			tb.Fatal(err)
		}
		if i%3 == 0 {
			if err := tax.AddIsA(id, fmt.Sprintf("概念%d", i%7), taxonomy.SourceTag, 0.9); err != nil {
				tb.Fatal(err)
			}
		}
		if i%4 == 0 {
			if err := tax.AddIsA(id, fmt.Sprintf("概念%d", (i+2)%7), taxonomy.SourceAbstract, 0.7); err != nil {
				tb.Fatal(err)
			}
		}
		mentions.Add(fmt.Sprintf("实体%02d", i), id)
		mentions.Add(id, id)
	}
	mentions.Add("实体00", "实体07（人物）")
	for i := 0; i < 7; i++ {
		if err := tax.AddIsA(fmt.Sprintf("概念%d", i), "顶层概念", taxonomy.SourceMorph, 1); err != nil {
			tb.Fatal(err)
		}
	}
	tax.Finalize()
	return tax, mentions
}

// TestStoreVsViewHTTPEquivalence pins the refactor's core guarantee:
// for every node (plus unknown and missing-parameter probes), the
// HTTP responses of the View-backed Server are byte-identical to
// serving the same queries from the finalized mutable store.
func TestStoreVsViewHTTPEquivalence(t *testing.T) {
	tax, mentions := equivFixture(t)
	storeTS := httptest.NewServer(storeHandler(tax, mentions))
	defer storeTS.Close()
	viewTS := httptest.NewServer(NewServer(tax, mentions).Handler())
	defer viewTS.Close()

	fetch := func(base, path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d %s %s", resp.StatusCode, resp.Header.Get("Content-Type"), body)
	}

	probes := append(tax.Nodes(), "未知节点", "实体00", "实体13")
	var paths []string
	for _, n := range probes {
		q := url.QueryEscape(n)
		paths = append(paths,
			"/api/men2ent?mention="+q,
			"/api/getConcept?entity="+q,
			"/api/getConcept?ranked=1&entity="+q,
			"/api/getEntity?concept="+q,
			"/api/getEntity?limit=3&concept="+q,
		)
	}
	paths = append(paths, "/api/men2ent", "/api/getConcept", "/api/getEntity")
	for _, p := range paths {
		if store, view := fetch(storeTS.URL, p), fetch(viewTS.URL, p); store != view {
			t.Fatalf("response mismatch on %s:\nstore: %s\nview:  %s", p, store, view)
		}
	}
}

func TestMen2EntBatch(t *testing.T) {
	srv, ts := testServer(t)
	body, _ := json.Marshal([]string{"刘德华", "未知提及"})
	resp, err := http.Post(ts.URL+"/api/men2entBatch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out []Men2EntResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2", len(out))
	}
	if len(out[0].Entities) != 2 {
		t.Errorf("batch[0] = %+v, want both 刘德华 senses", out[0])
	}
	if out[1].Mention != "未知提及" || len(out[1].Entities) != 0 {
		t.Errorf("batch[1] = %+v, want empty resolution", out[1])
	}
	// Each batched mention counts as one men2ent resolution, and the
	// batch request itself is counted separately.
	got := srv.Counters()
	if got.Men2Ent != 2 || got.Men2EntBatch != 1 {
		t.Errorf("counters = %+v, want Men2Ent=2 Men2EntBatch=1", got)
	}
	// Batch answers must match the single-shot API element-wise.
	var single Men2EntResponse
	getJSON(t, ts.URL+"/api/men2ent?mention=刘德华", &single)
	if fmt.Sprint(single.Entities) != fmt.Sprint(out[0].Entities) {
		t.Errorf("batch %v != single %v", out[0].Entities, single.Entities)
	}
}

func TestMen2EntBatchErrors(t *testing.T) {
	_, ts := testServer(t)
	// Wrong method.
	resp, err := http.Get(ts.URL + "/api/men2entBatch")
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusMethodNotAllowed)
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
	// Malformed body.
	resp, err = http.Post(ts.URL+"/api/men2entBatch", "application/json", bytes.NewReader([]byte(`{"not":"an array"}`)))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)
	// Oversized batch.
	huge, _ := json.Marshal(make([]string, MaxBatchMentions+1))
	resp, err = http.Post(ts.URL+"/api/men2entBatch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)
	// Oversized body: rejected while reading (MaxBytesReader), not
	// after being decoded into memory.
	fat := append([]byte(`["`), bytes.Repeat([]byte("长"), MaxBatchBytes)...)
	fat = append(fat, []byte(`"]`)...)
	resp, err = http.Post(ts.URL+"/api/men2entBatch", "application/json", bytes.NewReader(fat))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)
}

// TestErrorResponsesAreJSON is the regression test for the plain-text
// http.Error bodies the handlers used to send: every parameter error
// must be a JSON object with the JSON Content-Type.
func TestErrorResponsesAreJSON(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{
		"/api/men2ent",
		"/api/getConcept",
		"/api/getEntity",
		"/api/getEntity?concept=演员&limit=-1",
		"/api/getEntity?concept=演员&limit=abc",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusBadRequest)
	}
}

// TestStatsMethodNotAllowed pins the /api/stats method contract: like
// men2entBatch, a wrong method gets a JSON 405 with an Allow header
// rather than being silently served.
func TestStatsMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		req, err := http.NewRequest(method, ts.URL+"/api/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusMethodNotAllowed)
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("%s: Allow = %q, want GET", method, allow)
		}
	}
	// GET still works.
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /api/stats status = %d, want 200", resp.StatusCode)
	}
}

// checkJSONError asserts status, JSON Content-Type, and a non-empty
// {"error": ...} body, then closes the response.
func checkJSONError(t *testing.T, resp *http.Response, wantStatus int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Errorf("%s: status = %d, want %d", resp.Request.URL, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("%s: Content-Type = %q, want JSON", resp.Request.URL, ct)
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Errorf("%s: error body is not JSON: %v", resp.Request.URL, err)
	} else if body.Error == "" {
		t.Errorf("%s: error body has empty message", resp.Request.URL)
	}
}

// TestSwapView pins the hot-reload semantics: writes to the build
// store are invisible until a freshly compiled view is swapped in.
func TestSwapView(t *testing.T) {
	tax, mentions := equivFixture(t)
	srv := NewServer(tax, mentions)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := tax.AddIsA("新实体（测试）", "概念0", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	var out ConceptResponse
	getJSON(t, ts.URL+"/api/getConcept?entity="+url.QueryEscape("新实体（测试）"), &out)
	if len(out.Hypernyms) != 0 {
		t.Fatalf("store write visible before SwapView: %v", out.Hypernyms)
	}
	old := srv.SwapView(serving.Compile(tax, mentions))
	if old == nil {
		t.Fatal("SwapView returned nil previous view")
	}
	getJSON(t, ts.URL+"/api/getConcept?entity="+url.QueryEscape("新实体（测试）"), &out)
	if len(out.Hypernyms) != 1 || out.Hypernyms[0] != "概念0" {
		t.Fatalf("hypernyms after swap = %v, want [概念0]", out.Hypernyms)
	}
	// The old view still answers (in-flight requests keep working).
	if old.Hypernyms("实体00（人物）") == nil {
		t.Error("previous view unusable after swap")
	}
}

// TestStatsLatency checks the /api/stats latency summaries: served
// endpoints report counts and sane quantiles, unserved ones are
// omitted.
func TestStatsLatency(t *testing.T) {
	_, ts := testServer(t)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/api/men2ent?mention=刘德华")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var stats struct {
		Latency []EndpointLatency `json:"latency"`
	}
	getJSON(t, ts.URL+"/api/stats", &stats)
	if len(stats.Latency) != 1 {
		t.Fatalf("latency = %+v, want exactly the men2ent row", stats.Latency)
	}
	row := stats.Latency[0]
	if row.Endpoint != "men2ent" || row.Count != 5 {
		t.Errorf("latency row = %+v, want men2ent count=5", row)
	}
	if row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
		t.Errorf("quantiles implausible: %+v", row)
	}
}
