package api

import (
	"os"
	"regexp"
	"testing"

	"cnprobase/internal/taxonomy"
)

// TestRoutesMatchDocs is the docs contract: every route the mux
// serves (the /api endpoints plus the /healthz and /readyz probes)
// must be documented in docs/API.md, and every such route the docs
// mention must exist on the mux. Adding an endpoint without
// documenting it (or documenting one that does not exist) fails here.
func TestRoutesMatchDocs(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile(`/api/[A-Za-z0-9]+|/healthz|/readyz`).FindAllString(string(doc), -1) {
		documented[m] = true
	}

	srv := NewServer(taxonomy.New(), taxonomy.NewMentionIndex())
	served := map[string]bool{}
	for path := range srv.routes() {
		served[path] = true
	}

	for path := range served {
		if !documented[path] {
			t.Errorf("route %s is served but not documented in docs/API.md", path)
		}
	}
	for path := range documented {
		if !served[path] {
			t.Errorf("route %s is documented in docs/API.md but not served", path)
		}
	}
}
