package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/synth"
)

// ingestFixture builds a small world, serves it, and wires an Ingester
// over the build Result.
func ingestFixture(t *testing.T) (*core.Result, *Server, *Ingester, *httptest.Server, *httptest.Server) {
	t.Helper()
	wcfg := synth.DefaultConfig()
	wcfg.Entities = 300
	w, err := synth.Generate(wcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	pipeline := core.New(opts)
	res, err := pipeline.Build(w.Corpus())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	srv := NewViewServer(res.Freeze())
	ing, err := NewIngester(res, pipeline, srv)
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	t.Cleanup(ing.Close)
	apiTS := httptest.NewServer(srv.Handler())
	t.Cleanup(apiTS.Close)
	ingTS := httptest.NewServer(ing.Handler())
	t.Cleanup(ingTS.Close)
	return res, srv, ing, apiTS, ingTS
}

// postJSONL posts pages as a JSONL body to the ingest endpoint.
func postJSONL(t *testing.T, ingURL string, pages []encyclopedia.Page) *http.Response {
	t.Helper()
	var body bytes.Buffer
	c := encyclopedia.Corpus{Pages: pages}
	if err := c.WriteJSONL(&body); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	resp, err := http.Post(ingURL+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	return resp
}

// TestIngestSwapsServingView drives the whole loop in-process: a
// posted batch becomes queryable through the API server without any
// restart, and the response reports the post-update shape.
func TestIngestSwapsServingView(t *testing.T) {
	res, _, _, apiTS, ingTS := ingestFixture(t)
	concept := res.Kept[0].Hyper
	newTitle := "热更新测试实体"

	// Not visible before ingestion.
	var before ConceptResponse
	getJSON(t, apiTS.URL+"/api/getConcept?entity="+url.QueryEscape(newTitle), &before)
	if len(before.Hypernyms) != 0 {
		t.Fatalf("new entity visible before ingest: %v", before.Hypernyms)
	}

	resp := postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: newTitle, Tags: []string{concept}}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	var rep IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode ingest response: %v", err)
	}
	if rep.Pages != 1 || rep.Entities == 0 || rep.IsARelations == 0 {
		t.Errorf("ingest response implausible: %+v", rep)
	}

	// The swap happened before the response: the edge serves now.
	var after ConceptResponse
	getJSON(t, apiTS.URL+"/api/getConcept?entity="+url.QueryEscape(newTitle), &after)
	found := false
	for _, h := range after.Hypernyms {
		if h == concept {
			found = true
		}
	}
	if !found {
		t.Fatalf("getConcept(%q) = %v after ingest, want %q", newTitle, after.Hypernyms, concept)
	}
	var men Men2EntResponse
	getJSON(t, apiTS.URL+"/api/men2ent?mention="+url.QueryEscape(newTitle), &men)
	if len(men.Entities) == 0 {
		t.Errorf("men2ent(%q) empty after ingest", newTitle)
	}
}

// TestIngestErrors covers the endpoint contract: wrong method gets a
// JSON 405 with Allow, garbage and empty bodies get JSON 400s, and a
// closed ingester answers 503.
func TestIngestErrors(t *testing.T) {
	_, _, ing, _, ingTS := ingestFixture(t)

	resp, err := http.Get(ingTS.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusMethodNotAllowed)
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}

	resp, err = http.Post(ingTS.URL+"/ingest", "application/x-ndjson", strings.NewReader("not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)

	resp, err = http.Post(ingTS.URL+"/ingest", "application/x-ndjson", strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)

	// A page with a blank title would generate empty-node candidates;
	// it must be rejected before the update starts, and a good batch
	// afterwards must still succeed (no half-applied state).
	resp = postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: "  ", Tags: []string{"演员"}}})
	checkJSONError(t, resp, http.StatusBadRequest)
	resp = postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: "合法实体"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid batch after rejected batch: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	ing.Close()
	resp = postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: "迟到实体"}})
	checkJSONError(t, resp, http.StatusServiceUnavailable)
}

// TestIngestSerializesConcurrentBatches hammers the endpoint from
// several goroutines while queries run — the single updater goroutine
// must serialize every batch (this is the -race coverage for the
// updater).
func TestIngestSerializesConcurrentBatches(t *testing.T) {
	res, srv, _, apiTS, ingTS := ingestFixture(t)
	concept := res.Kept[0].Hyper
	baseline := srv.View().Stats().Entities

	const writers, batches = 4, 3
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				title := "并发实体" + string(rune('甲'+wr)) + string(rune('子'+b))
				resp := postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: title, Tags: []string{concept}}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest %q status = %d", title, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(wr)
	}
	// Readers during ingestion: the API must answer throughout.
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(apiTS.URL + "/api/getEntity?concept=" + url.QueryEscape(concept))
				if err != nil {
					t.Errorf("query during ingest: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query during ingest status = %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := srv.View().Stats().Entities; got != baseline+writers*batches {
		t.Errorf("entities = %d, want %d after %d ingested pages", got, baseline+writers*batches, writers*batches)
	}
}
