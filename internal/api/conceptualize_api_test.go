package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cnprobase/internal/conceptualize"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/qa"
	"cnprobase/internal/serving"
	"cnprobase/internal/snapshot"
	"cnprobase/internal/taxonomy"
)

// postJSON posts v as JSON and decodes a 200 response into out.
func postJSON(t *testing.T, url string, v, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestConceptualizeEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	var out ConceptualizeResponse
	resp := postJSON(t, ts.URL+"/api/conceptualize", ConceptualizeRequest{Text: "刘德华的新电影"}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !out.Covered || len(out.Mentions) != 1 {
		t.Fatalf("response = %+v, want covered with one mention", out)
	}
	m := out.Mentions[0]
	if m.Surface != "刘德华" || m.Candidates != 2 || m.Entity != "刘德华（演员）" {
		t.Errorf("mention = %+v, want the higher-evidence actor sense of 刘德华", m)
	}
	if len(out.Concepts) == 0 {
		t.Error("no aggregated concepts")
	}
	if got := srv.Counters(); got.Conceptualize != 1 || got.ConceptualizeBatch != 0 {
		t.Errorf("counters = %+v, want Conceptualize=1", got)
	}
	// Empty and uncovered texts are valid requests, not errors.
	for _, text := range []string{"", "今天天气怎么样？"} {
		var empty ConceptualizeResponse
		resp := postJSON(t, ts.URL+"/api/conceptualize", ConceptualizeRequest{Text: text}, &empty)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("text %q: status = %d, want 200", text, resp.StatusCode)
		}
		if empty.Covered || empty.Concepts == nil || len(empty.Concepts) != 0 {
			t.Errorf("text %q: response = %+v, want uncovered with empty concepts array", text, empty)
		}
	}
}

func TestConceptualizeBatchEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	texts := []string{"刘德华的新电影", "", "无关文本"}
	var out []ConceptualizeResponse
	resp := postJSON(t, ts.URL+"/api/conceptualizeBatch", texts, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out) != len(texts) {
		t.Fatalf("got %d results, want %d", len(out), len(texts))
	}
	// Element-wise identical to the single-shot endpoint.
	for i, text := range texts {
		var single ConceptualizeResponse
		postJSON(t, ts.URL+"/api/conceptualize", ConceptualizeRequest{Text: text}, &single)
		a, _ := json.Marshal(single)
		b, _ := json.Marshal(out[i])
		if !bytes.Equal(a, b) {
			t.Errorf("batch[%d] = %s, single = %s", i, b, a)
		}
	}
	// Each text counts as one conceptualization; the batch request is
	// counted separately (mirroring men2entBatch). The single-shot
	// probes above added 3 more.
	if got := srv.Counters(); got.Conceptualize != 6 || got.ConceptualizeBatch != 1 {
		t.Errorf("counters = %+v, want Conceptualize=6 ConceptualizeBatch=1", got)
	}
}

func TestQAEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	var out QAResponse
	resp := postJSON(t, ts.URL+"/api/qa", QARequest{Question: "刘德华是谁？"}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !out.Covered || len(out.Mentions) != 1 || out.Mentions[0].Surface != "刘德华" {
		t.Fatalf("response = %+v, want covered via the 刘德华 mention", out)
	}
	if len(out.Mentions[0].Entities) != 2 {
		t.Errorf("entities = %v, want both senses", out.Mentions[0].Entities)
	}
	var dis QAResponse
	postJSON(t, ts.URL+"/api/qa", QARequest{Question: "一加一等于几？"}, &dis)
	if dis.Covered || dis.Mentions != nil {
		t.Errorf("distractor = %+v, want uncovered", dis)
	}
	if got := srv.Counters(); got.QA != 2 {
		t.Errorf("counters = %+v, want QA=2", got)
	}
}

// TestApplicationEndpointErrors pins the error contract on the three
// new endpoints: JSON 405 with Allow on wrong method, JSON 400 on
// malformed bodies, oversized batches, and oversized payloads.
func TestApplicationEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	endpoints := []string{"/api/conceptualize", "/api/conceptualizeBatch", "/api/qa"}
	for _, ep := range endpoints {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusMethodNotAllowed)
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("%s: Allow = %q, want POST", ep, allow)
		}
		resp, err = http.Post(ts.URL+ep, "application/json", bytes.NewReader([]byte(`{bad json`)))
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusBadRequest)
		// Oversized body: rejected while reading via MaxBytesReader.
		fat := append([]byte(`{"text":"`), bytes.Repeat([]byte("长"), MaxBatchBytes)...)
		fat = append(fat, []byte(`"}`)...)
		resp, err = http.Post(ts.URL+ep, "application/json", bytes.NewReader(fat))
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, resp, http.StatusBadRequest)
	}
	// Type mismatch: the batch endpoint wants an array, the others an
	// object.
	resp, err := http.Post(ts.URL+"/api/conceptualizeBatch", "application/json", bytes.NewReader([]byte(`{"text":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)
	// Oversized batch count.
	huge, _ := json.Marshal(make([]string, MaxBatchTexts+1))
	resp, err = http.Post(ts.URL+"/api/conceptualizeBatch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	checkJSONError(t, resp, http.StatusBadRequest)
}

// TestApplicationEndpointsInvalidUTF8 posts raw bodies whose JSON
// strings carry invalid UTF-8 bytes: the decoder coerces them to
// U+FFFD, so the endpoints must answer 200 with valid JSON — never a
// 500.
func TestApplicationEndpointsInvalidUTF8(t *testing.T) {
	_, ts := testServer(t)
	bodies := map[string][]byte{
		"/api/conceptualize":      append(append([]byte(`{"text":"`), 0xff, 0xfe), []byte("刘德华\xff"+`"}`)...),
		"/api/conceptualizeBatch": append(append([]byte(`["`), 0xff), []byte("刘德华"+`"]`)...),
		"/api/qa":                 append(append([]byte(`{"question":"`), 0xff, 0xfe), []byte("刘德华是谁\xff"+`"}`)...),
	}
	for ep, body := range bodies {
		resp, err := http.Post(ts.URL+ep, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with invalid UTF-8: status = %d, body %s", ep, resp.StatusCode, raw)
			continue
		}
		if !json.Valid(raw) {
			t.Errorf("%s: response is not valid JSON: %s", ep, raw)
		}
	}
}

// storeApplicationHandler extends the storeHandler idea to the
// application endpoints: the same response structs and handlers
// answered from the mutable store — the reference side of the
// equivalence test.
func storeApplicationHandler(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) http.Handler {
	engine := conceptualize.New(tax, mentions)
	src := qa.NewStoreSource(tax, mentions)
	mux := http.NewServeMux()
	mux.HandleFunc("/api/conceptualize", func(w http.ResponseWriter, r *http.Request) {
		var req ConceptualizeRequest
		if !decodePost(w, r, &req) {
			return
		}
		writeJSON(w, conceptualizeOne(engine, req.Text))
	})
	mux.HandleFunc("/api/conceptualizeBatch", func(w http.ResponseWriter, r *http.Request) {
		var batch []string
		if !decodePost(w, r, &batch) {
			return
		}
		out := make([]ConceptualizeResponse, len(batch))
		for i, text := range batch {
			out[i] = conceptualizeOne(engine, text)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/qa", func(w http.ResponseWriter, r *http.Request) {
		var req QARequest
		if !decodePost(w, r, &req) {
			return
		}
		u := qa.Understand(req.Question, src)
		writeJSON(w, QAResponse{Question: req.Question, Covered: u.Covered, Mentions: u.Mentions, Concepts: u.Concepts})
	})
	return mux
}

// applicationProbes is the request set the equivalence and golden
// tests replay: ambiguous mentions, multi-mention texts, unknown text,
// empty text, raw invalid UTF-8, and batches.
func applicationProbes() []struct {
	path string
	body []byte
} {
	texts := []string{
		"",
		"实体00的资料",
		"实体00和实体13有什么关系？",
		"实体07（人物）是谁？",
		"未知内容完全不在库里",
		"实体01实体01实体01",
		"有哪些著名的概念3？",
	}
	var probes []struct {
		path string
		body []byte
	}
	for _, text := range texts {
		b, _ := json.Marshal(ConceptualizeRequest{Text: text})
		probes = append(probes, struct {
			path string
			body []byte
		}{"/api/conceptualize", b})
		q, _ := json.Marshal(QARequest{Question: text})
		probes = append(probes, struct {
			path string
			body []byte
		}{"/api/qa", q})
	}
	batch, _ := json.Marshal(texts)
	probes = append(probes,
		struct {
			path string
			body []byte
		}{"/api/conceptualizeBatch", batch},
		// Raw invalid UTF-8 inside the JSON string, sent verbatim.
		struct {
			path string
			body []byte
		}{"/api/conceptualize", []byte("{\"text\":\"\xff\xfe实体00\xff\"}")},
		struct {
			path string
			body []byte
		}{"/api/qa", []byte("{\"question\":\"\xff实体13是谁\"}")},
	)
	return probes
}

func fetchPost(t *testing.T, base, path string, body []byte) string {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%d %s %s", resp.StatusCode, resp.Header.Get("Content-Type"), raw)
}

// TestStoreVsViewApplicationEquivalence pins the tentpole guarantee:
// the view-backed application endpoints answer byte-identically to the
// same handlers served from the finalized mutable store.
func TestStoreVsViewApplicationEquivalence(t *testing.T) {
	tax, mentions := equivFixture(t)
	storeTS := httptest.NewServer(storeApplicationHandler(tax, mentions))
	defer storeTS.Close()
	viewTS := httptest.NewServer(NewServer(tax, mentions).Handler())
	defer viewTS.Close()
	for _, p := range applicationProbes() {
		store := fetchPost(t, storeTS.URL, p.path, p.body)
		view := fetchPost(t, viewTS.URL, p.path, p.body)
		if store != view {
			t.Fatalf("response mismatch on %s %s:\nstore: %s\nview:  %s", p.path, p.body, store, view)
		}
	}
}

// TestApplicationGoldenSnapshotRoundtrip pins the other axis: a server
// over a snapshot-loaded view answers the application endpoints
// byte-identically to a server compiled fresh from the store.
func TestApplicationGoldenSnapshotRoundtrip(t *testing.T) {
	tax, mentions := equivFixture(t)
	freshTS := httptest.NewServer(NewServer(tax, mentions).Handler())
	defer freshTS.Close()

	var buf bytes.Buffer
	err := snapshot.Save(&buf, &snapshot.State{Taxonomy: tax, Mentions: mentions}, snapshot.Options{})
	if err != nil {
		t.Fatalf("snapshot.Save: %v", err)
	}
	loaded, _, err := snapshot.LoadView(bytes.NewReader(buf.Bytes()), snapshot.Options{})
	if err != nil {
		t.Fatalf("snapshot.LoadView: %v", err)
	}
	loadedTS := httptest.NewServer(NewViewServer(loaded).Handler())
	defer loadedTS.Close()

	for _, p := range applicationProbes() {
		fresh := fetchPost(t, freshTS.URL, p.path, p.body)
		snap := fetchPost(t, loadedTS.URL, p.path, p.body)
		if fresh != snap {
			t.Fatalf("response mismatch on %s %s:\nfresh:    %s\nsnapshot: %s", p.path, p.body, fresh, snap)
		}
	}
}

// TestConcurrentConceptualizeDuringIngest is the -race coverage for
// the application endpoints: conceptualize and qa requests hammer the
// server while ingest batches swap the hot view underneath them. Every
// request must succeed on a consistent view.
func TestConcurrentConceptualizeDuringIngest(t *testing.T) {
	res, srv, _, apiTS, ingTS := ingestFixture(t)
	concept := res.Kept[0].Hyper
	entity := res.Kept[0].Hypo

	const writers, batches = 3, 3
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				title := "并发概念化" + string(rune('甲'+wr)) + string(rune('子'+b))
				resp := postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: title, Tags: []string{concept}}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest %q status = %d", title, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(wr)
	}
	texts := []string{entity + "的资料", "有哪些著名的" + concept + "？", "完全无关的文本"}
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				text := texts[(rd+i)%len(texts)]
				body, _ := json.Marshal(ConceptualizeRequest{Text: text})
				resp, err := http.Post(apiTS.URL+"/api/conceptualize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("conceptualize during ingest: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("conceptualize during ingest status = %d", resp.StatusCode)
				}
				resp.Body.Close()
				qbody, _ := json.Marshal(QARequest{Question: text})
				resp, err = http.Post(apiTS.URL+"/api/qa", "application/json", bytes.NewReader(qbody))
				if err != nil {
					t.Errorf("qa during ingest: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("qa during ingest status = %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(rd)
	}
	wg.Wait()
	// After all swaps, the entity still conceptualizes on the final view.
	var out ConceptualizeResponse
	postJSON(t, apiTS.URL+"/api/conceptualize", ConceptualizeRequest{Text: entity}, &out)
	if !out.Covered {
		t.Errorf("%q uncovered after ingest churn: %+v", entity, out)
	}
	// SwapView also composes directly with the application endpoints.
	var swapped ConceptualizeResponse
	srv.SwapView(serving.Compile(taxonomy.New(), taxonomy.NewMentionIndex()))
	postJSON(t, apiTS.URL+"/api/conceptualize", ConceptualizeRequest{Text: entity}, &swapped)
	if swapped.Covered {
		t.Errorf("empty view still conceptualizes: %+v", swapped)
	}
	var unq QAResponse
	postJSON(t, apiTS.URL+"/api/qa", QARequest{Question: entity + "是谁？"}, &unq)
	if unq.Covered {
		t.Errorf("empty view still understands: %+v", unq)
	}
}
