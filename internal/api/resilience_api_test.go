package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/serving"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// resilientServer builds a tiny server with explicit resilience knobs
// and mounts its full Handler on a real listener.
func resilientServer(t *testing.T, rc ResilienceConfig) (*Server, *httptest.Server) {
	t.Helper()
	tax := taxonomy.New()
	tax.MarkEntity("李小龙（武术家）")
	if err := tax.AddIsA("李小龙（武术家）", "武术家", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	mentions := taxonomy.NewMentionIndex()
	mentions.Add("李小龙", "李小龙（武术家）")
	srv := NewViewServerConfig(serving.Compile(tax, mentions), rc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// get runs one GET and returns status plus body.
func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

func jsonError(t *testing.T, body []byte) string {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("body %q is not the uniform JSON error shape (err %v)", body, err)
	}
	return e.Error
}

// TestQueryPlaneSheds429 saturates a 1-slot server with a slow request
// and checks the next one is shed with the full 429 contract: JSON
// body, Retry-After header, a per-endpoint counter in /api/stats —
// which itself must keep answering while the query plane sheds.
func TestQueryPlaneSheds429(t *testing.T) {
	srv, ts := resilientServer(t, ResilienceConfig{
		MaxInFlight:   1,
		AdmitWait:     0,
		LookupTimeout: 10 * time.Second,
		HandlerDelay:  300 * time.Millisecond,
	})

	// Occupy the only slot.
	slow := make(chan int, 1)
	go func() {
		code, _, _ := get(t, ts.URL+"/api/men2ent?mention=李小龙")
		slow <- code
	}()
	// Wait until the slot is actually held.
	deadline := time.Now().Add(5 * time.Second)
	for srv.limiter.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	code, body, hdr := get(t, ts.URL+"/api/getConcept?entity=李小龙（武术家）")
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated request code = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	jsonError(t, body)

	// Observability is exempt from admission: stats answers during the
	// overload and reports the shed.
	code, body, _ = get(t, ts.URL+"/api/stats")
	if code != http.StatusOK {
		t.Fatalf("/api/stats during overload = %d, want 200", code)
	}
	var stats struct {
		Resilience *ResilienceStats `json:"resilience"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Resilience == nil || stats.Resilience.Shed["getConcept"] != 1 {
		t.Fatalf("stats.resilience = %+v, want shed[getConcept]=1", stats.Resilience)
	}

	if code := <-slow; code != http.StatusOK {
		t.Fatalf("the admitted slow request code = %d, want 200", code)
	}
}

// TestQueryPlaneDeadline503 gives lookups a deadline far below the
// injected handler latency and checks the JSON 503 plus the timeout
// counter in /api/stats.
func TestQueryPlaneDeadline503(t *testing.T) {
	_, ts := resilientServer(t, ResilienceConfig{
		LookupTimeout: 20 * time.Millisecond,
		HandlerDelay:  2 * time.Second,
	})
	start := time.Now()
	code, body, _ := get(t, ts.URL+"/api/men2ent?mention=李小龙")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("503 took %v; the deadline should fire near 20ms", elapsed)
	}
	if msg := jsonError(t, body); !strings.Contains(msg, "deadline") {
		t.Fatalf("error = %q, want a deadline message", msg)
	}

	code, body, _ = get(t, ts.URL+"/api/stats")
	if code != http.StatusOK {
		t.Fatalf("/api/stats = %d", code)
	}
	var stats struct {
		Resilience *ResilienceStats `json:"resilience"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Resilience == nil || stats.Resilience.Timeouts < 1 {
		t.Fatalf("stats.resilience = %+v, want timeouts >= 1", stats.Resilience)
	}
}

// TestStatsOmitsResilienceWhenClean pins the legacy payload shape: a
// server that has never shed, timed out or panicked reports no
// "resilience" key at all.
func TestStatsOmitsResilienceWhenClean(t *testing.T) {
	_, ts := resilientServer(t, DefaultResilience())
	code, body, _ := get(t, ts.URL+"/api/stats")
	if code != http.StatusOK {
		t.Fatalf("/api/stats = %d", code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if _, ok := raw["resilience"]; ok {
		t.Fatalf("clean server leaks a resilience key: %s", body)
	}
}

// TestProbesThroughHandler drives /healthz and /readyz through the
// real mux, including the draining flip the shutdown path performs.
func TestProbesThroughHandler(t *testing.T) {
	srv, ts := resilientServer(t, DefaultResilience())

	for _, path := range []string{"/healthz", "/readyz"} {
		code, body, hdr := get(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, code)
		}
		if !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
			t.Fatalf("%s Content-Type = %q", path, hdr.Get("Content-Type"))
		}
		var ok struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &ok); err != nil || ok.Status != "ok" {
			t.Fatalf("%s body = %q", path, body)
		}
	}

	srv.Health().SetDraining()
	code, body, _ := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", code)
	}
	if msg := jsonError(t, body); !strings.Contains(msg, "draining") {
		t.Fatalf("/readyz reason = %q", msg)
	}
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", code)
	}
}

// panicUpdater is the injected fault for the wedge test: the first
// Update call panics mid-apply, as a buggy extraction stage would.
type panicUpdater struct{}

func (panicUpdater) Update(prev *core.Result, delta *encyclopedia.Corpus) (*core.Result, error) {
	panic("injected updater panic")
}

// TestIngestPanicWedgesIngester is the blast-radius contract for an
// updater panic: the batch that hit it gets a 503, the ingester wedges
// (sticky 503 for later batches, compaction refused, /readyz flips to
// 503), the panic is counted — and the query plane keeps serving the
// last good view through all of it.
func TestIngestPanicWedgesIngester(t *testing.T) {
	wcfg := synth.DefaultConfig()
	wcfg.Entities = 300
	w, err := synth.Generate(wcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	srv := NewViewServer(res.Freeze())
	ing, err := NewIngester(res, panicUpdater{}, srv)
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	t.Cleanup(ing.Close)
	apiTS := httptest.NewServer(srv.Handler())
	t.Cleanup(apiTS.Close)
	ingTS := httptest.NewServer(ing.Handler())
	t.Cleanup(ingTS.Close)

	// Queries work before the fault.
	someEntity := res.Kept[0].Hypo
	if code, _, _ := get(t, apiTS.URL+"/api/getConcept?entity="+someEntity); code != http.StatusOK {
		t.Fatalf("query before fault = %d", code)
	}

	// First batch trips the injected panic → 503, not a dead process.
	resp := postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: "引爆实体", Tags: []string{"概念"}}})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panicking batch = %d (%s), want 503", resp.StatusCode, body)
	}
	if msg := jsonError(t, body); !strings.Contains(msg, "wedged") {
		t.Fatalf("panicking batch error = %q, want a wedged message", msg)
	}
	if !ing.Wedged() {
		t.Fatal("ingester not wedged after updater panic")
	}

	// The wedge is sticky: the next batch is refused up front.
	resp = postJSONL(t, ingTS.URL, []encyclopedia.Page{{Title: "后续实体", Tags: []string{"概念"}}})
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch after wedge = %d (%s), want sticky 503", resp.StatusCode, body)
	}

	// Compaction must never persist half-mutated state.
	if err := ing.Compact(); err == nil {
		t.Fatal("Compact on a wedged ingester must refuse")
	}

	// Readiness flips so the replica is rotated out...
	code, body, _ := get(t, apiTS.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after wedge = %d, want 503", code)
	}
	if msg := jsonError(t, body); !strings.Contains(msg, "wedged") {
		t.Fatalf("/readyz reason = %q", msg)
	}
	// ...but liveness holds and queries keep serving the old view.
	if code, _, _ := get(t, apiTS.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after wedge = %d, want 200", code)
	}
	if code, _, _ := get(t, apiTS.URL+"/api/getConcept?entity="+someEntity); code != http.StatusOK {
		t.Fatalf("query after wedge = %d, want 200 from the last good view", code)
	}

	// The panic shows up in /api/stats.
	code, body, _ = get(t, apiTS.URL+"/api/stats")
	if code != http.StatusOK {
		t.Fatalf("/api/stats after wedge = %d", code)
	}
	var stats struct {
		Resilience *ResilienceStats `json:"resilience"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Resilience == nil || stats.Resilience.Panics < 1 {
		t.Fatalf("stats.resilience = %+v, want panics >= 1", stats.Resilience)
	}
}

// TestShedDuringConcurrentSwap hammers a small-capacity server with
// queries while another goroutine swaps the serving view — the
// admission, metrics and view-swap paths all run concurrently so the
// race detector can check their synchronization.
func TestShedDuringConcurrentSwap(t *testing.T) {
	srv, ts := resilientServer(t, ResilienceConfig{
		MaxInFlight:   2,
		AdmitWait:     time.Millisecond,
		LookupTimeout: time.Second,
		HandlerDelay:  time.Millisecond,
	})

	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() { // view swapper, runs until the queriers are done
		defer close(swapperDone)
		tax := taxonomy.New()
		tax.MarkEntity("交换实体")
		fresh := serving.Compile(tax, nil)
		for {
			select {
			case <-stop:
				return
			default:
				srv.SwapView(fresh)
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { // queriers, some shed and some served
			defer wg.Done()
			for j := 0; j < 30; j++ {
				code, _, _ := get(t, ts.URL+"/api/men2ent?mention=李小龙")
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("unexpected code %d", code)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // stats reader alongside
		defer wg.Done()
		for j := 0; j < 30; j++ {
			if code, _, _ := get(t, ts.URL+"/api/stats"); code != http.StatusOK {
				t.Errorf("stats code %d", code)
				return
			}
		}
	}()
	// Let the queriers and stats reader finish, then stop the swapper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent swap/shed exercise hung")
	}
	close(stop)
	<-swapperDone
}
