package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/snapshot"
	"cnprobase/internal/synth"
	"cnprobase/internal/wal"
)

// ---------------------------------------------------------------------------
// Fixture: one 300-entity build, cloned per test through the snapshot
// codec — the same substrate the durable ingest plane persists with.
// ---------------------------------------------------------------------------

var (
	baseOnce sync.Once
	baseSnap []byte
	baseErr  error
)

// baseSnapshot builds the shared world once and returns it encoded as
// an evidence-carrying snapshot.
func baseSnapshot(t *testing.T) []byte {
	t.Helper()
	baseOnce.Do(func() {
		wcfg := synth.DefaultConfig()
		wcfg.Entities = 300
		w, err := synth.Generate(wcfg)
		if err != nil {
			baseErr = fmt.Errorf("Generate: %w", err)
			return
		}
		opts := core.DefaultOptions()
		opts.EnableNeural = false
		res, err := core.New(opts).Build(w.Corpus())
		if err != nil {
			baseErr = fmt.Errorf("Build: %w", err)
			return
		}
		var buf bytes.Buffer
		baseErr = testSaveSnapshot(&buf, res, 0)
		baseSnap = buf.Bytes()
	})
	if baseErr != nil {
		t.Fatal(baseErr)
	}
	return baseSnap
}

// testSaveSnapshot is the snapshot saver the durable fixtures inject —
// in production the facade provides the equivalent.
func testSaveSnapshot(w io.Writer, res *core.Result, lsn uint64) error {
	return snapshot.Save(w, &snapshot.State{
		Taxonomy: res.Taxonomy,
		Mentions: res.Mentions,
		Meta:     snapshot.Meta{Pages: res.Report.Pages, Stats: res.Report.Stats, LSN: lsn},
		Evidence: res.Evidence,
		Kept:     res.Kept,
		Stats:    res.Stats,
	}, snapshot.Options{})
}

// loadResult decodes a snapshot into a mutable Result plus the LSN it
// covers.
func loadResult(t *testing.T, data []byte) (*core.Result, uint64) {
	t.Helper()
	st, err := snapshot.Load(bytes.NewReader(data), snapshot.Options{})
	if err != nil {
		t.Fatalf("snapshot.Load: %v", err)
	}
	return &core.Result{
		Taxonomy: st.Taxonomy,
		Mentions: st.Mentions,
		Report:   &core.Report{Pages: st.Meta.Pages, Shards: st.Taxonomy.ShardCount(), Stats: st.Taxonomy.ComputeStats()},
		Evidence: st.Evidence,
		Kept:     st.Kept,
		Stats:    st.Stats,
	}, st.Meta.LSN
}

type durableFixture struct {
	res      *core.Result
	pipeline *core.Pipeline
	srv      *Server
	ing      *Ingester
	apiTS    *httptest.Server
	ingTS    *httptest.Server
	snapPath string
	walDir   string
	concept  string
}

// newDurableFixture stands up a full durable ingest plane on a temp
// dir: base snapshot on disk, open WAL, durable ingester, HTTP
// endpoints.
func newDurableFixture(t *testing.T, queue int) *durableFixture {
	t.Helper()
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "taxonomy.snap")
	if err := os.WriteFile(snapPath, baseSnapshot(t), 0o644); err != nil {
		t.Fatalf("write base snapshot: %v", err)
	}
	res, lsn := loadResult(t, baseSnapshot(t))
	walDir := filepath.Join(dir, "wal")
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	pipeline := core.New(opts)
	srv := NewViewServer(res.Freeze())
	ing, err := NewDurableIngester(res, pipeline, srv, IngesterConfig{
		WAL:          l,
		SnapshotPath: snapPath,
		SnapshotLSN:  lsn,
		SaveSnapshot: testSaveSnapshot,
		Queue:        queue,
	})
	if err != nil {
		t.Fatalf("NewDurableIngester: %v", err)
	}
	t.Cleanup(ing.Close)
	f := &durableFixture{
		res: res, pipeline: pipeline, srv: srv, ing: ing,
		snapPath: snapPath, walDir: walDir, concept: res.Kept[0].Hyper,
	}
	f.apiTS = httptest.NewServer(srv.Handler())
	t.Cleanup(f.apiTS.Close)
	f.ingTS = httptest.NewServer(ing.Handler())
	t.Cleanup(f.ingTS.Close)
	return f
}

// recover reopens the fixture's on-disk state — snapshot + WAL — the
// way a restarted cnpserver does, and returns the recovered Result.
func (f *durableFixture) recover(t *testing.T) (*core.Result, ReplayStats) {
	t.Helper()
	data, err := os.ReadFile(f.snapPath)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	res, lsn := loadResult(t, data)
	l, err := wal.Open(f.walDir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	defer l.Close()
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	res, stats, err := ReplayWAL(res, core.New(opts), l, lsn)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	return res, stats
}

// hypernymsOf reads an entity's hypernyms from a frozen view via the
// HTTP API so live and recovered states are compared through the same
// query path.
func hypernymsOf(t *testing.T, baseURL, title string) []string {
	t.Helper()
	var resp ConceptResponse
	getJSON(t, baseURL+"/api/getConcept?entity="+url.QueryEscape(title), &resp)
	return resp.Hypernyms
}

// ---------------------------------------------------------------------------
// Durable round-trip: acknowledged batches survive restart.
// ---------------------------------------------------------------------------

func TestDurableIngestRecoversAcknowledgedBatches(t *testing.T) {
	f := newDurableFixture(t, 0)
	titles := []string{"持久实体一", "持久实体二", "持久实体三"}
	for i, title := range titles {
		resp := postJSONL(t, f.ingTS.URL, []encyclopedia.Page{{Title: title, Tags: []string{f.concept}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %q status = %d", title, resp.StatusCode)
		}
		var rep IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		resp.Body.Close()
		if rep.LSN != uint64(i+1) {
			t.Fatalf("batch %d acknowledged at LSN %d, want %d", i, rep.LSN, i+1)
		}
	}
	liveStats := f.srv.View().Stats()
	liveHyp := make(map[string][]string)
	for _, title := range titles {
		liveHyp[title] = hypernymsOf(t, f.apiTS.URL, title)
		if len(liveHyp[title]) == 0 {
			t.Fatalf("ingested entity %q has no hypernyms on the live server", title)
		}
	}
	f.ing.Close() // flushes + closes the WAL

	// "Restart": base snapshot (never compacted, LSN 0) + WAL replay
	// must reconstruct the acknowledged state exactly.
	res2, stats := f.recover(t)
	if stats.Applied != len(titles) || stats.Skipped != 0 {
		t.Fatalf("replay applied %d, skipped %d; want %d, 0", stats.Applied, stats.Skipped, len(titles))
	}
	ts := httptest.NewServer(NewViewServer(res2.Freeze()).Handler())
	defer ts.Close()
	if got := res2.Freeze().Stats(); got != liveStats {
		t.Fatalf("recovered stats %+v != live stats %+v", got, liveStats)
	}
	for _, title := range titles {
		got := hypernymsOf(t, ts.URL, title)
		if fmt.Sprint(got) != fmt.Sprint(liveHyp[title]) {
			t.Fatalf("recovered hypernyms(%q) = %v, live = %v", title, got, liveHyp[title])
		}
	}
}

// ---------------------------------------------------------------------------
// Concurrent ingest + queries + compaction (-race coverage), with LSN
// accounting: truncation never drops a batch the snapshot misses.
// ---------------------------------------------------------------------------

func TestDurableIngestConcurrentCompaction(t *testing.T) {
	f := newDurableFixture(t, 0)
	baseline := f.srv.View().Stats().Entities
	const writers, batches = 4, 3

	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				title := "并发耐久" + string(rune('甲'+wr)) + string(rune('子'+b))
				for {
					resp := postJSONL(t, f.ingTS.URL, []encyclopedia.Page{{Title: title, Tags: []string{f.concept}}})
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						break
					}
					if code != http.StatusTooManyRequests {
						t.Errorf("ingest %q status = %d", title, code)
						return
					}
					time.Sleep(5 * time.Millisecond) // honor the backpressure
				}
			}
		}(wr)
	}
	// Readers throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			resp, err := http.Get(f.apiTS.URL + "/api/getEntity?concept=" + url.QueryEscape(f.concept))
			if err != nil {
				t.Errorf("query during ingest: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query during ingest status = %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()
	// Compactor racing the writers: each cycle snapshots mid-stream
	// and truncates the log below it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := f.ing.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	total := uint64(writers * batches)
	if got := f.ing.AppliedLSN(); got != total {
		t.Fatalf("AppliedLSN = %d, want %d", got, total)
	}
	// LSN accounting: the snapshot's claimed coverage can never exceed
	// what was applied, and replaying the surviving tail on top of the
	// snapshot must land exactly on the acknowledged state — if
	// truncation ever dropped a batch the snapshot misses, the entity
	// count below would come up short.
	if compacted := f.ing.CompactedLSN(); compacted > total {
		t.Fatalf("CompactedLSN = %d > applied %d", compacted, total)
	}
	liveStats := f.srv.View().Stats()
	f.ing.Close()

	res2, stats := f.recover(t)
	data, err := os.ReadFile(f.snapPath)
	if err != nil {
		t.Fatalf("read compacted snapshot: %v", err)
	}
	_, snapLSN := loadResult(t, data)
	if snapLSN != f.ing.CompactedLSN() {
		t.Fatalf("snapshot on disk covers LSN %d, compactor reported %d", snapLSN, f.ing.CompactedLSN())
	}
	if snapLSN+uint64(stats.Applied) != total {
		t.Fatalf("snapshot at LSN %d + %d replayed batches != %d total", snapLSN, stats.Applied, total)
	}
	got := res2.Freeze().Stats()
	if got != liveStats {
		t.Fatalf("recovered stats %+v != live stats %+v", got, liveStats)
	}
	if got.Entities != baseline+writers*batches {
		t.Fatalf("recovered %d entities, want %d", got.Entities, baseline+writers*batches)
	}
}

// ---------------------------------------------------------------------------
// Backpressure: a full queue answers 429 + Retry-After.
// ---------------------------------------------------------------------------

func TestIngestQueueFullAnswers429(t *testing.T) {
	// Hand-built ingester with a one-slot queue and NO updater
	// goroutine, so the queue state is fully deterministic: the first
	// request parks in the queue, the second must bounce.
	ing := &Ingester{
		cfg:  IngesterConfig{Queue: 1},
		reqs: make(chan ingestReq, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	body := func() io.Reader {
		return bytes.NewReader([]byte(`{"title":"排队实体"}` + "\n"))
	}
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		ing.handleIngest(rec, httptest.NewRequest(http.MethodPost, "/ingest", body()))
		first <- rec
	}()
	// Wait for the first request to occupy the queue slot.
	for i := 0; len(ing.reqs) == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	ing.handleIngest(rec, httptest.NewRequest(http.MethodPost, "/ingest", body()))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	// Service the parked request so the goroutine finishes.
	req := <-ing.reqs
	req.reply <- ingestReply{resp: IngestResponse{Pages: 1}}
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", rec.Code)
	}
}

// ---------------------------------------------------------------------------
// Shutdown-during-batch: every 200 is durable, every 503 is absent.
// ---------------------------------------------------------------------------

func TestShutdownDuringBatchIsAtomic(t *testing.T) {
	f := newDurableFixture(t, 0)
	const inflight = 8
	statuses := make([]int, inflight)
	titleOf := func(i int) string { return fmt.Sprintf("关机批次%02d", i) }

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp := postJSONL(t, f.ingTS.URL, []encyclopedia.Page{{Title: titleOf(i), Tags: []string{f.concept}}})
			statuses[i] = resp.StatusCode
			resp.Body.Close()
		}(i)
	}
	close(start)
	// Close races the in-flight posts: it must flush + fsync the WAL
	// before any batch is refused.
	f.ing.Close()
	wg.Wait()

	// The WAL is closed; reopen it and collect the titles it holds.
	l, err := wal.Open(f.walDir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	defer l.Close()
	logged := map[string]bool{}
	err = l.Replay(0, func(lsn uint64, payload []byte) error {
		c, err := encyclopedia.ReadJSONL(bytes.NewReader(payload))
		if err != nil {
			return err
		}
		for _, p := range c.Pages {
			logged[p.Title] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}

	for i := 0; i < inflight; i++ {
		switch statuses[i] {
		case http.StatusOK:
			if !logged[titleOf(i)] {
				t.Errorf("batch %d was acknowledged with 200 but is not in the WAL", i)
			}
		case http.StatusServiceUnavailable:
			if logged[titleOf(i)] {
				t.Errorf("batch %d was refused with 503 but is in the WAL", i)
			}
		default:
			t.Errorf("batch %d got status %d, want 200 or 503", i, statuses[i])
		}
	}

	// Post-close requests keep getting the typed rejection.
	resp := postJSONL(t, f.ingTS.URL, []encyclopedia.Page{{Title: "迟到批次"}})
	checkJSONError(t, resp, http.StatusServiceUnavailable)
}

// TestDurableIngesterValidation pins the configuration contract.
func TestDurableIngesterValidation(t *testing.T) {
	res, _ := loadResult(t, baseSnapshot(t))
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	srv := NewViewServer(res.Freeze())
	_, err := NewDurableIngester(res, core.New(opts), srv, IngesterConfig{
		CompactEvery: time.Second, // compaction without a WAL/saver/path
	})
	if err == nil {
		t.Fatal("compaction without a WAL was accepted")
	}
}
