package api

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"

	"cnprobase/internal/taxonomy"
)

// WorkloadConfig drives the Table II reproduction: a simulated client
// population issuing calls in the mix the paper observed over six
// months on Aliyun (43.9M men2ent : 13.8M getConcept : 25.8M
// getEntity).
type WorkloadConfig struct {
	// Calls is the total number of API calls to issue.
	Calls int
	// Weights are the relative call frequencies, in the order men2ent,
	// getConcept, getEntity (paper's observed counts by default).
	Weights [3]float64
	Seed    int64
}

// DefaultWorkloadConfig uses the paper's observed six-month mix.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Calls:   20000,
		Weights: [3]float64{43896044, 13815076, 25793372},
		Seed:    3,
	}
}

// Client calls the three APIs over HTTP.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

func (c *Client) get(path string, params url.Values) error {
	resp, err := c.HTTP.Get(c.Base + path + "?" + params.Encode())
	if err != nil {
		return fmt.Errorf("api client: %w", err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("api client: drain: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api client: %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// Men2Ent issues a men2ent call.
func (c *Client) Men2Ent(mention string) error {
	return c.get("/api/men2ent", url.Values{"mention": {mention}})
}

// GetConcept issues a getConcept call.
func (c *Client) GetConcept(entity string) error {
	return c.get("/api/getConcept", url.Values{"entity": {entity}})
}

// GetEntity issues a getEntity call.
func (c *Client) GetEntity(concept string) error {
	return c.get("/api/getEntity", url.Values{"concept": {concept}, "limit": {"50"}})
}

// RunWorkload fires cfg.Calls requests against the client, sampling
// API and argument per the weights, and returns the issued counts in
// Table II order.
func RunWorkload(c *Client, tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex, cfg WorkloadConfig) (Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	entities, concepts := splitNodes(tax)
	if len(entities) == 0 || len(concepts) == 0 {
		return Stats{}, fmt.Errorf("api workload: taxonomy has no entities or no concepts")
	}
	total := cfg.Weights[0] + cfg.Weights[1] + cfg.Weights[2]
	if total <= 0 {
		return Stats{}, fmt.Errorf("api workload: weights must be positive")
	}
	var issued Stats
	for i := 0; i < cfg.Calls; i++ {
		r := rng.Float64() * total
		var err error
		switch {
		case r < cfg.Weights[0]:
			ent := entities[rng.Intn(len(entities))]
			mention := ent
			if t := strings.Split(ent, "（"); len(t) > 0 {
				mention = t[0]
			}
			err = c.Men2Ent(mention)
			issued.Men2Ent++
		case r < cfg.Weights[0]+cfg.Weights[1]:
			err = c.GetConcept(entities[rng.Intn(len(entities))])
			issued.GetConcept++
		default:
			err = c.GetEntity(concepts[rng.Intn(len(concepts))])
			issued.GetEntity++
		}
		if err != nil {
			return issued, err
		}
	}
	return issued, nil
}

func splitNodes(tax *taxonomy.Taxonomy) (entities, concepts []string) {
	for _, n := range tax.Nodes() {
		switch tax.Kind(n) {
		case taxonomy.KindEntity:
			entities = append(entities, n)
		case taxonomy.KindConcept:
			concepts = append(concepts, n)
		}
	}
	return entities, concepts
}

// FormatTable2 renders API usage in the layout of the paper's Table II.
func FormatTable2(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12s\n", "API name", "Given", "Return", "Count")
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12d\n", "men2ent", "mention", "entity", s.Men2Ent)
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12d\n", "getConcept", "entity", "hypernym list", s.GetConcept)
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12d\n", "getEntity", "concept", "hyponym list", s.GetEntity)
	return b.String()
}
