package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"

	"cnprobase/internal/taxonomy"
)

// WorkloadConfig drives the Table II reproduction: a simulated client
// population issuing calls in the mix the paper observed over six
// months on Aliyun (43.9M men2ent : 13.8M getConcept : 25.8M
// getEntity), optionally extended with the application endpoints.
type WorkloadConfig struct {
	// Calls is the total number of API calls to issue.
	Calls int
	// Weights are the relative call frequencies, in the order men2ent,
	// getConcept, getEntity, conceptualize, qa. The paper's observed
	// counts fill the first three by default; a zero weight disables an
	// endpoint.
	Weights [5]float64
	// ZipfS/ZipfV skew argument sampling toward popular nodes with a
	// Zipf(s, v) distribution over the node list — real serving traffic
	// concentrates on head entities. ZipfS <= 1 keeps sampling uniform
	// (Zipf requires s > 1).
	ZipfS float64
	ZipfV float64
	Seed  int64
}

// DefaultWorkloadConfig uses the paper's observed six-month mix over
// the three public APIs, with uniform argument sampling — the exact
// Table II reproduction.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Calls:   20000,
		Weights: [5]float64{43896044, 13815076, 25793372, 0, 0},
		Seed:    3,
	}
}

// MixedWorkloadConfig extends the paper's mix with the application
// endpoints (conceptualize and qa at a minority share, as application
// traffic rides on top of the lookup APIs) and Zipfian argument
// skew — the extended serving workload CI exercises.
func MixedWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Calls:   20000,
		Weights: [5]float64{43896044, 13815076, 25793372, 15000000, 8000000},
		ZipfS:   1.2,
		ZipfV:   1,
		Seed:    3,
	}
}

// Client calls the APIs over HTTP.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

func (c *Client) get(path string, params url.Values) error {
	resp, err := c.HTTP.Get(c.Base + path + "?" + params.Encode())
	if err != nil {
		return fmt.Errorf("api client: %w", err)
	}
	return drain(resp, path)
}

func (c *Client) post(path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("api client: marshal: %w", err)
	}
	resp, err := c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("api client: %w", err)
	}
	return drain(resp, path)
}

func drain(resp *http.Response, path string) error {
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("api client: drain: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api client: %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// Men2Ent issues a men2ent call.
func (c *Client) Men2Ent(mention string) error {
	return c.get("/api/men2ent", url.Values{"mention": {mention}})
}

// GetConcept issues a getConcept call.
func (c *Client) GetConcept(entity string) error {
	return c.get("/api/getConcept", url.Values{"entity": {entity}})
}

// GetEntity issues a getEntity call.
func (c *Client) GetEntity(concept string) error {
	return c.get("/api/getEntity", url.Values{"concept": {concept}, "limit": {"50"}})
}

// Conceptualize issues a conceptualize call.
func (c *Client) Conceptualize(text string) error {
	return c.post("/api/conceptualize", ConceptualizeRequest{Text: text})
}

// QA issues a qa call.
func (c *Client) QA(question string) error {
	return c.post("/api/qa", QARequest{Question: question})
}

// sampler picks node indexes — uniform, or Zipfian when the config
// asks for skew, so a few head nodes absorb most of the traffic.
type sampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newSampler(rng *rand.Rand, cfg WorkloadConfig, n int) *sampler {
	s := &sampler{rng: rng, n: n}
	if cfg.ZipfS > 1 && n > 0 {
		v := cfg.ZipfV
		if v < 1 {
			v = 1
		}
		s.zipf = rand.NewZipf(rng, cfg.ZipfS, v, uint64(n-1))
	}
	return s
}

func (s *sampler) pick() int {
	if s.zipf != nil {
		return int(s.zipf.Uint64())
	}
	return s.rng.Intn(s.n)
}

// qaWorkloadTemplates shape the application-endpoint texts around the
// sampled mention.
var qaWorkloadTemplates = []string{"%s是谁？", "%s的代表作品有哪些？", "请介绍一下%s。"}

// RunWorkload fires cfg.Calls requests against the client, sampling
// API and argument per the weights, and returns the issued counts in
// Table II order.
func RunWorkload(c *Client, tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex, cfg WorkloadConfig) (Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	entities, concepts := splitNodes(tax)
	if len(entities) == 0 || len(concepts) == 0 {
		return Stats{}, fmt.Errorf("api workload: taxonomy has no entities or no concepts")
	}
	var total float64
	for _, w := range cfg.Weights {
		if w < 0 {
			return Stats{}, fmt.Errorf("api workload: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return Stats{}, fmt.Errorf("api workload: weights must be positive")
	}
	entPick := newSampler(rng, cfg, len(entities))
	conPick := newSampler(rng, cfg, len(concepts))
	mentionOf := func(ent string) string {
		if t := strings.Split(ent, "（"); len(t) > 0 {
			return t[0]
		}
		return ent
	}
	var issued Stats
	for i := 0; i < cfg.Calls; i++ {
		r := rng.Float64() * total
		var err error
		switch {
		case r < cfg.Weights[0]:
			err = c.Men2Ent(mentionOf(entities[entPick.pick()]))
			issued.Men2Ent++
		case r < cfg.Weights[0]+cfg.Weights[1]:
			err = c.GetConcept(entities[entPick.pick()])
			issued.GetConcept++
		case r < cfg.Weights[0]+cfg.Weights[1]+cfg.Weights[2]:
			err = c.GetEntity(concepts[conPick.pick()])
			issued.GetEntity++
		case r < cfg.Weights[0]+cfg.Weights[1]+cfg.Weights[2]+cfg.Weights[3]:
			// Short text around one or two sampled mentions.
			text := mentionOf(entities[entPick.pick()]) + "的相关资料"
			if rng.Intn(2) == 0 {
				text += "，以及" + mentionOf(entities[entPick.pick()])
			}
			err = c.Conceptualize(text)
			issued.Conceptualize++
		default:
			q := fmt.Sprintf(qaWorkloadTemplates[rng.Intn(len(qaWorkloadTemplates))],
				mentionOf(entities[entPick.pick()]))
			err = c.QA(q)
			issued.QA++
		}
		if err != nil {
			return issued, err
		}
	}
	return issued, nil
}

func splitNodes(tax *taxonomy.Taxonomy) (entities, concepts []string) {
	for _, n := range tax.Nodes() {
		switch tax.Kind(n) {
		case taxonomy.KindEntity:
			entities = append(entities, n)
		case taxonomy.KindConcept:
			concepts = append(concepts, n)
		}
	}
	return entities, concepts
}

// FormatTable2 renders API usage in the layout of the paper's Table II.
func FormatTable2(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12s\n", "API name", "Given", "Return", "Count")
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12d\n", "men2ent", "mention", "entity", s.Men2Ent)
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12d\n", "getConcept", "entity", "hypernym list", s.GetConcept)
	fmt.Fprintf(&b, "%-12s %-10s %-16s %12d\n", "getEntity", "concept", "hyponym list", s.GetEntity)
	return b.String()
}
