package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cnprobase/internal/taxonomy"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tax := taxonomy.New()
	tax.MarkEntity("刘德华（演员）")
	tax.MarkEntity("刘德华（作家）")
	for _, e := range [][2]string{
		{"刘德华（演员）", "演员"},
		{"刘德华（演员）", "歌手"},
		{"刘德华（作家）", "作家"},
	} {
		if err := tax.AddIsA(e[0], e[1], taxonomy.SourceTag, 1); err != nil {
			t.Fatal(err)
		}
	}
	mentions := taxonomy.NewMentionIndex()
	mentions.Add("刘德华", "刘德华（演员）")
	mentions.Add("刘德华", "刘德华（作家）")
	srv := NewServer(tax, mentions)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestMen2Ent(t *testing.T) {
	_, ts := testServer(t)
	var out Men2EntResponse
	resp := getJSON(t, ts.URL+"/api/men2ent?mention=刘德华", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Entities) != 2 {
		t.Fatalf("entities = %v, want both senses", out.Entities)
	}
}

func TestMen2EntMissingParam(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/men2ent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestGetConcept(t *testing.T) {
	_, ts := testServer(t)
	var out ConceptResponse
	getJSON(t, ts.URL+"/api/getConcept?entity="+escape("刘德华（演员）"), &out)
	if len(out.Hypernyms) != 2 {
		t.Fatalf("hypernyms = %v", out.Hypernyms)
	}
	if out.Ranked != nil {
		t.Error("Ranked filled without ?ranked=1")
	}
}

func TestGetConceptRanked(t *testing.T) {
	_, ts := testServer(t)
	var out ConceptResponse
	getJSON(t, ts.URL+"/api/getConcept?ranked=1&entity="+escape("刘德华（演员）"), &out)
	if len(out.Ranked) != 2 {
		t.Fatalf("ranked = %v", out.Ranked)
	}
	if out.Ranked[0].Score < out.Ranked[1].Score {
		t.Errorf("ranked not sorted: %v", out.Ranked)
	}
	sum := out.Ranked[0].Score + out.Ranked[1].Score
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("typicality sums to %v", sum)
	}
}

func TestGetEntity(t *testing.T) {
	_, ts := testServer(t)
	var out EntityResponse
	getJSON(t, ts.URL+"/api/getEntity?concept=演员", &out)
	if len(out.Hyponyms) != 1 || out.Hyponyms[0] != "刘德华（演员）" {
		t.Fatalf("hyponyms = %v", out.Hyponyms)
	}
	// limit=0 means all; bad limit is a 400.
	resp, err := http.Get(ts.URL + "/api/getEntity?concept=演员&limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", resp.StatusCode)
	}
}

func TestCountersAndStats(t *testing.T) {
	srv, ts := testServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/api/men2ent?mention=刘德华")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/api/getConcept?entity=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := srv.Counters()
	if got.Men2Ent != 3 || got.GetConcept != 1 || got.GetEntity != 0 {
		t.Fatalf("counters = %+v", got)
	}
	var viaHTTP Stats
	getJSON(t, ts.URL+"/api/stats", &viaHTTP)
	if viaHTTP.Men2Ent != 3 {
		t.Errorf("stats endpoint = %+v", viaHTTP)
	}
}

func TestWorkloadMix(t *testing.T) {
	srv, ts := testServer(t)
	tax, mentions := srvBacking(t)
	cfg := WorkloadConfig{Calls: 3000, Weights: [5]float64{43896044, 13815076, 25793372, 0, 0}, Seed: 1}
	issued, err := RunWorkload(NewClient(ts.URL), tax, mentions, cfg)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	total := issued.Men2Ent + issued.GetConcept + issued.GetEntity
	if total != 3000 {
		t.Fatalf("issued %d calls, want 3000", total)
	}
	// The mix must approximate the paper's ratios: men2ent ≈ 52.6%,
	// getConcept ≈ 16.6%, getEntity ≈ 30.9%.
	frac := func(n int64) float64 { return float64(n) / float64(total) }
	if f := frac(issued.Men2Ent); f < 0.48 || f > 0.58 {
		t.Errorf("men2ent fraction = %.3f, want ≈0.526", f)
	}
	if f := frac(issued.GetConcept); f < 0.12 || f > 0.21 {
		t.Errorf("getConcept fraction = %.3f, want ≈0.166", f)
	}
	if f := frac(issued.GetEntity); f < 0.26 || f > 0.36 {
		t.Errorf("getEntity fraction = %.3f, want ≈0.309", f)
	}
	// Server observed what the client issued.
	if got := srv.Counters(); got.Men2Ent != issued.Men2Ent || got.GetEntity != issued.GetEntity {
		t.Errorf("server counters %+v != issued %+v", got, issued)
	}
}

func TestWorkloadRejectsEmptyTaxonomy(t *testing.T) {
	_, ts := testServer(t)
	if _, err := RunWorkload(NewClient(ts.URL), taxonomy.New(), taxonomy.NewMentionIndex(), DefaultWorkloadConfig()); err == nil {
		t.Fatal("workload over empty taxonomy should fail")
	}
}

func TestFormatTable2(t *testing.T) {
	out := FormatTable2(Stats{Men2Ent: 10, GetConcept: 5, GetEntity: 7})
	for _, want := range []string{"men2ent", "getConcept", "getEntity", "hypernym list", "10", "5", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
}

// srvBacking rebuilds the same backing data testServer uses, for the
// workload generator.
func srvBacking(t *testing.T) (*taxonomy.Taxonomy, *taxonomy.MentionIndex) {
	t.Helper()
	tax := taxonomy.New()
	tax.MarkEntity("刘德华（演员）")
	tax.MarkEntity("刘德华（作家）")
	for _, e := range [][2]string{
		{"刘德华（演员）", "演员"},
		{"刘德华（演员）", "歌手"},
		{"刘德华（作家）", "作家"},
	} {
		if err := tax.AddIsA(e[0], e[1], taxonomy.SourceTag, 1); err != nil {
			t.Fatal(err)
		}
	}
	mentions := taxonomy.NewMentionIndex()
	mentions.Add("刘德华", "刘德华（演员）")
	mentions.Add("刘德华", "刘德华（作家）")
	return tax, mentions
}

func escape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "（", "%EF%BC%88"), "）", "%EF%BC%89")
}
