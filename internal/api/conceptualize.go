package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cnprobase/internal/conceptualize"
	"cnprobase/internal/qa"
	"cnprobase/internal/taxonomy"
)

// The application endpoints: conceptualization and question
// understanding, served — like every other handler — from the
// immutable view in the atomic pointer, never the build store. A batch
// resolves every text against the one view loaded at its start, so a
// concurrent SwapView can never split a batch across taxonomy
// versions.

// ConceptualizeRequest is the body of /api/conceptualize.
type ConceptualizeRequest struct {
	Text string `json:"text"`
}

// ConceptualizeResponse is the payload of /api/conceptualize (and one
// element of the /api/conceptualizeBatch response array).
type ConceptualizeResponse struct {
	Text    string `json:"text"`
	Covered bool   `json:"covered"`
	// Mentions are the resolved entity mentions of the text.
	Mentions []conceptualize.Mention `json:"mentions,omitempty"`
	// Concepts is the text's aggregated ranked concept vector.
	Concepts []taxonomy.Scored `json:"concepts"`
}

func conceptualizeOne(e *conceptualize.Engine, text string) ConceptualizeResponse {
	res := e.Conceptualize(text)
	return ConceptualizeResponse{
		Text:     text,
		Covered:  res.Covered(),
		Mentions: res.Mentions,
		Concepts: res.Concepts,
	}
}

// decodePost enforces the shared POST contract: POST only (405 with
// Allow otherwise), body capped at MaxBatchBytes, JSON decoded into
// dst. A malformed or oversized body yields a JSON 400; the reply to
// the caller is true only when dst was filled.
func decodePost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, r.URL.Path+" requires POST with a JSON body")
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBytes)).Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleConceptualize(w http.ResponseWriter, r *http.Request) {
	defer s.conceptualizeLat.since(time.Now())
	s.conceptualizeCalls.Add(1)
	var req ConceptualizeRequest
	if !decodePost(w, r, &req) {
		return
	}
	writeJSON(w, conceptualizeOne(conceptualize.NewView(s.View()), req.Text))
}

func (s *Server) handleConceptualizeBatch(w http.ResponseWriter, r *http.Request) {
	defer s.conceptualizeBatchLat.since(time.Now())
	s.conceptualizeBatchCall.Add(1)
	var batch []string
	if !decodePost(w, r, &batch) {
		return
	}
	if len(batch) > MaxBatchTexts {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d texts exceeds the limit of %d", len(batch), MaxBatchTexts))
		return
	}
	s.conceptualizeCalls.Add(int64(len(batch))) // each text counts as one conceptualization
	e := conceptualize.NewView(s.View())        // one consistent view for the whole batch
	out := make([]ConceptualizeResponse, len(batch))
	for i, text := range batch {
		out[i] = conceptualizeOne(e, text)
	}
	writeJSON(w, out)
}

// QARequest is the body of /api/qa.
type QARequest struct {
	Question string `json:"question"`
}

// QAResponse is the payload of /api/qa: whether the taxonomy
// understands the question (the coverage predicate of the paper's QA
// experiment), plus what it resolved.
type QAResponse struct {
	Question string `json:"question"`
	Covered  bool   `json:"covered"`
	// Mentions are the entity mentions found in the question.
	Mentions []qa.EntityMention `json:"mentions,omitempty"`
	// Concepts are taxonomy concepts appearing verbatim in the question.
	Concepts []string `json:"concepts,omitempty"`
}

func (s *Server) handleQA(w http.ResponseWriter, r *http.Request) {
	defer s.qaLat.since(time.Now())
	s.qaCalls.Add(1)
	var req QARequest
	if !decodePost(w, r, &req) {
		return
	}
	u := qa.Understand(req.Question, s.View())
	writeJSON(w, QAResponse{
		Question: req.Question,
		Covered:  u.Covered,
		Mentions: u.Mentions,
		Concepts: u.Concepts,
	})
}
