package api

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Cheap lock-free latency histograms: one power-of-two bucket per
// nanosecond magnitude (bucket i covers [2^i, 2^(i+1)) ns), one atomic
// counter per bucket. Recording is a bit-length + one atomic add, so
// the measurement cost is negligible next to even the cheapest
// handler. Quantiles are read back as the geometric midpoint of the
// bucket holding the target rank — ~±25% resolution, plenty for the
// p50/p99 shutdown report workload experiments read.

const latencyBuckets = 64

type histogram struct {
	buckets [latencyBuckets]atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	h.buckets[bits.Len64(uint64(ns))-1].Add(1)
}

func (h *histogram) count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// quantile returns the latency at quantile q in [0, 1], as the
// geometric midpoint of the bucket containing that rank. Zero when
// nothing has been recorded.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			lo := int64(1) << i
			return time.Duration(lo + lo/2) // midpoint of [2^i, 2^(i+1))
		}
	}
	return time.Duration(1<<62 + 1<<61) // midpoint of the top bucket
}

// EndpointLatency is one endpoint's latency summary, reported by
// /api/stats and logged by cnpserver on shutdown.
type EndpointLatency struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// LatencyReport summarizes per-endpoint request latency (p50/p99 from
// the log2 histograms), sorted by endpoint name; endpoints that served
// no requests are omitted.
func (s *Server) LatencyReport() []EndpointLatency {
	var out []EndpointLatency
	for name, h := range s.latency() {
		n := h.count()
		if n == 0 {
			continue
		}
		out = append(out, EndpointLatency{
			Endpoint: name,
			Count:    n,
			P50Ms:    float64(h.quantile(0.50)) / float64(time.Millisecond),
			P99Ms:    float64(h.quantile(0.99)) / float64(time.Millisecond),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

func (s *Server) latency() map[string]*histogram {
	return map[string]*histogram{
		"men2ent":            &s.men2entLat,
		"men2entBatch":       &s.men2entBatchLat,
		"getConcept":         &s.getConceptLat,
		"getEntity":          &s.getEntityLat,
		"conceptualize":      &s.conceptualizeLat,
		"conceptualizeBatch": &s.conceptualizeBatchLat,
		"qa":                 &s.qaLat,
	}
}
