// Package api serves the taxonomy over HTTP with the paper's three
// public APIs (Table II), mounted under /api:
//
//	/api/men2ent      — mention → disambiguated entities
//	/api/getConcept   — entity → hypernym list (?ranked=1 adds typicality scores)
//	/api/getEntity    — concept → hyponym list (?limit=N caps it)
//	/api/men2entBatch — POST a JSON array of mentions, resolve them all at once
//
// and the application layer the paper motivates on top of them:
//
//	/api/conceptualize      — POST a text, get its ranked concept vector
//	/api/conceptualizeBatch — POST a JSON array of texts, conceptualize all at once
//	/api/qa                 — POST a question, get its taxonomy understanding
//
// plus /api/stats exposing per-API call counters and latency
// summaries, which the Table II workload experiment reads back, and
// the orchestration probes /healthz (liveness) and /readyz
// (readiness).
//
// Handlers never touch the mutable build store: every request is
// served from an immutable serving.View held in an atomic pointer —
// zero locks, near-zero allocation per query — and SwapView atomically
// replaces the whole view to pick up new data (cnpserver wires this to
// SIGHUP for hot snapshot reload). Errors are JSON bodies
// ({"error": "..."}) with the right Content-Type. Handlers are safe
// for concurrent use; request/response schemas are documented in
// docs/API.md.
//
// Every query endpoint runs behind the resilience stack (see
// internal/resilience): admission control sheds excess load with 429 +
// Retry-After instead of queueing without bound, a per-request
// deadline converts stuck work into a JSON 503, and panic isolation
// turns a handler panic into a JSON 500 on that one request. /api/stats
// and the health probes bypass admission so observability survives
// overload. ResilienceConfig tunes all of it.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cnprobase/internal/resilience"
	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// MaxBatchMentions caps the number of mentions one /api/men2entBatch
// request may carry; MaxBatchTexts caps the texts per
// /api/conceptualizeBatch request (texts are heavier than mentions);
// MaxBatchBytes caps every POST body itself, so an oversized payload
// is rejected while reading rather than after being fully decoded
// into memory.
const (
	MaxBatchMentions = 10000
	MaxBatchTexts    = 1000
	MaxBatchBytes    = 4 << 20
)

// ResilienceConfig tunes the overload-safety stack wrapped around the
// query endpoints. The zero value disables every layer (panic
// isolation stays on — it has no knob); DefaultResilience returns the
// production defaults NewServer and NewViewServer apply.
type ResilienceConfig struct {
	// MaxInFlight caps concurrently executing query-plane requests;
	// beyond it (after AdmitWait) requests are shed with 429 +
	// Retry-After. <= 0 disables admission control.
	MaxInFlight int
	// AdmitWait is how long an arriving request may wait for an
	// admission slot before being shed — long enough to ride out a
	// micro-burst, far too short to build a queue.
	AdmitWait time.Duration
	// LookupTimeout is the per-request deadline for the cheap GET
	// lookups (men2ent, getConcept, getEntity); BatchTimeout covers
	// the heavier POST endpoints (men2entBatch, conceptualize,
	// conceptualizeBatch, qa). 0 disables the deadline for that class.
	LookupTimeout time.Duration
	BatchTimeout  time.Duration
	// HandlerDelay and HandlerBurn are chaos knobs: artificial sleep /
	// CPU spin injected inside the stack (inside the admission slot,
	// under the deadline) on every query-plane request. Drain drills
	// and the overload benchmark use them to make handler cost
	// controllable; zero in production.
	HandlerDelay time.Duration
	HandlerBurn  time.Duration
}

// DefaultResilience is the production default: admission wide enough
// that only true overload sheds, deadlines generous enough that only
// stuck work times out.
func DefaultResilience() ResilienceConfig {
	return ResilienceConfig{
		MaxInFlight:   64 * runtime.GOMAXPROCS(0),
		AdmitWait:     10 * time.Millisecond,
		LookupTimeout: 5 * time.Second,
		BatchTimeout:  30 * time.Second,
	}
}

// Server hosts the APIs over an immutable serving view.
type Server struct {
	view atomic.Pointer[serving.View]

	rc      ResilienceConfig
	limiter *resilience.Limiter
	metrics resilience.Metrics
	health  resilience.Health
	shed    map[string]*atomic.Int64 // per-endpoint load-shed counters, keyed like the latency map

	men2entCalls           atomic.Int64
	men2entBatchCalls      atomic.Int64
	getConceptCalls        atomic.Int64
	getEntityCalls         atomic.Int64
	conceptualizeCalls     atomic.Int64
	conceptualizeBatchCall atomic.Int64
	qaCalls                atomic.Int64

	men2entLat            histogram
	men2entBatchLat       histogram
	getConceptLat         histogram
	getEntityLat          histogram
	conceptualizeLat      histogram
	conceptualizeBatchLat histogram
	qaLat                 histogram
}

// NewServer builds a Server by freezing the current contents of the
// build store into an immutable View (mentions may be nil). Later
// writes to the store are not served; compile a new view and SwapView.
func NewServer(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) *Server {
	return NewViewServer(serving.Compile(tax, mentions))
}

// NewViewServer builds a Server over an already-compiled view — the
// zero-copy path snapshot loading uses — with the default resilience
// stack.
func NewViewServer(v *serving.View) *Server {
	return NewViewServerConfig(v, DefaultResilience())
}

// NewViewServerConfig is NewViewServer with an explicit resilience
// configuration (admission cap, deadlines, chaos knobs). The server
// starts ready: by construction its serving view is loaded.
func NewViewServerConfig(v *serving.View, rc ResilienceConfig) *Server {
	s := &Server{rc: rc}
	s.view.Store(v)
	s.limiter = resilience.NewLimiter(rc.MaxInFlight, rc.AdmitWait)
	s.shed = make(map[string]*atomic.Int64)
	for path := range s.routes() {
		if admitted(path) {
			s.shed[endpointName(path)] = new(atomic.Int64)
		}
	}
	s.health.SetReady(true)
	return s
}

// Health exposes the probe state behind /healthz and /readyz, so the
// serving process can flip readiness off when it starts draining and
// the ingest plane can mark itself wedged after an isolated panic.
func (s *Server) Health() *resilience.Health { return &s.health }

// admitted reports whether a route sits behind admission control.
// Stats and the health probes are exempt: observability and
// orchestration must keep answering precisely when the server sheds.
func admitted(path string) bool {
	switch path {
	case "/api/stats", "/healthz", "/readyz":
		return false
	}
	return true
}

// lookupClass reports whether a route is a cheap GET lookup (the
// LookupTimeout class) rather than a heavy POST (BatchTimeout class).
func lookupClass(path string) bool {
	switch path {
	case "/api/men2ent", "/api/getConcept", "/api/getEntity":
		return true
	}
	return false
}

// endpointName is the short stats/latency key of a route.
func endpointName(path string) string { return strings.TrimPrefix(path, "/api/") }

// SwapView atomically replaces the serving view and returns the
// previous one. In-flight requests finish on the view they started
// with; new requests see the new data. Safe to call at any time.
func (s *Server) SwapView(v *serving.View) *serving.View {
	return s.view.Swap(v)
}

// View returns the view currently being served.
func (s *Server) View() *serving.View { return s.view.Load() }

// routes is the full endpoint table — the single source the mux is
// built from, and the surface docs/API.md is contract-tested against.
func (s *Server) routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"/api/men2ent":            s.handleMen2Ent,
		"/api/men2entBatch":       s.handleMen2EntBatch,
		"/api/getConcept":         s.handleGetConcept,
		"/api/getEntity":          s.handleGetEntity,
		"/api/conceptualize":      s.handleConceptualize,
		"/api/conceptualizeBatch": s.handleConceptualizeBatch,
		"/api/qa":                 s.handleQA,
		"/api/stats":              s.handleStats,
		"/healthz":                s.health.ServeLiveness,
		"/readyz":                 s.health.ServeReadiness,
	}
}

// Handler returns the HTTP mux with all endpoints registered, each
// behind its slice of the resilience stack: query endpoints get
// admission control + a per-class deadline + panic isolation, while
// stats and the health probes get panic isolation only (they must
// answer while the rest of the plane sheds).
func (s *Server) Handler() http.Handler {
	base := resilience.Guard{
		Limiter: s.limiter,
		Metrics: &s.metrics,
		Delay:   s.rc.HandlerDelay,
		Burn:    s.rc.HandlerBurn,
	}
	mux := http.NewServeMux()
	for path, h := range s.routes() {
		g := base
		switch {
		case !admitted(path):
			g = resilience.Guard{Metrics: &s.metrics} // recover-only
		case lookupClass(path):
			g.Timeout = s.rc.LookupTimeout
		default:
			g.Timeout = s.rc.BatchTimeout
		}
		mux.Handle(path, g.Wrap(h, s.shed[endpointName(path)]))
	}
	return mux
}

// Men2EntResponse is the payload of /api/men2ent (and one element of
// the /api/men2entBatch response array).
type Men2EntResponse struct {
	Mention  string   `json:"mention"`
	Entities []string `json:"entities"`
}

func (s *Server) handleMen2Ent(w http.ResponseWriter, r *http.Request) {
	defer s.men2entLat.since(time.Now())
	s.men2entCalls.Add(1)
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		writeError(w, http.StatusBadRequest, "missing ?mention=")
		return
	}
	writeJSON(w, Men2EntResponse{Mention: mention, Entities: s.View().Lookup(mention)})
}

func (s *Server) handleMen2EntBatch(w http.ResponseWriter, r *http.Request) {
	defer s.men2entBatchLat.since(time.Now())
	s.men2entBatchCalls.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "men2entBatch requires POST with a JSON array of mentions")
		return
	}
	var batch []string
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBytes)).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "body must be a JSON array of mention strings: "+err.Error())
		return
	}
	if len(batch) > MaxBatchMentions {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d mentions exceeds the limit of %d", len(batch), MaxBatchMentions))
		return
	}
	s.men2entCalls.Add(int64(len(batch))) // each mention counts as one men2ent resolution
	v := s.View()                         // one consistent view for the whole batch
	out := make([]Men2EntResponse, len(batch))
	for i, m := range batch {
		out[i] = Men2EntResponse{Mention: m, Entities: v.Lookup(m)}
	}
	writeJSON(w, out)
}

// ConceptResponse is the payload of /api/getConcept. Ranked is filled
// when the client asks for typicality-scored hypernyms (?ranked=1),
// the Probase-style probabilistic reading.
type ConceptResponse struct {
	Entity    string            `json:"entity"`
	Hypernyms []string          `json:"hypernyms"`
	Ranked    []taxonomy.Scored `json:"ranked,omitempty"`
}

func (s *Server) handleGetConcept(w http.ResponseWriter, r *http.Request) {
	defer s.getConceptLat.since(time.Now())
	s.getConceptCalls.Add(1)
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		writeError(w, http.StatusBadRequest, "missing ?entity=")
		return
	}
	v := s.View()
	resp := ConceptResponse{Entity: entity, Hypernyms: v.Hypernyms(entity)}
	if r.URL.Query().Get("ranked") == "1" {
		resp.Ranked = v.RankedHypernyms(entity, 0)
	}
	writeJSON(w, resp)
}

// EntityResponse is the payload of /api/getEntity.
type EntityResponse struct {
	Concept  string   `json:"concept"`
	Hyponyms []string `json:"hyponyms"`
}

func (s *Server) handleGetEntity(w http.ResponseWriter, r *http.Request) {
	defer s.getEntityLat.since(time.Now())
	s.getEntityCalls.Add(1)
	concept := r.URL.Query().Get("concept")
	if concept == "" {
		writeError(w, http.StatusBadRequest, "missing ?concept=")
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad ?limit=")
			return
		}
		limit = n
	}
	writeJSON(w, EntityResponse{Concept: concept, Hyponyms: s.View().Hyponyms(concept, limit)})
}

// Stats mirrors the call-count columns of the paper's Table II, plus
// the application endpoints. Men2EntBatch counts batch *requests*;
// each mention inside a batch also increments Men2Ent — and likewise
// ConceptualizeBatch requests increment Conceptualize per text. The
// application counters use omitempty so deployments that never call
// them keep the original Table II payload shape.
type Stats struct {
	Men2Ent            int64 `json:"men2ent"`
	GetConcept         int64 `json:"getConcept"`
	GetEntity          int64 `json:"getEntity"`
	Men2EntBatch       int64 `json:"men2entBatch,omitempty"`
	Conceptualize      int64 `json:"conceptualize,omitempty"`
	ConceptualizeBatch int64 `json:"conceptualizeBatch,omitempty"`
	QA                 int64 `json:"qa,omitempty"`
}

// Counters returns a snapshot of the per-API call counts.
func (s *Server) Counters() Stats {
	return Stats{
		Men2Ent:            s.men2entCalls.Load(),
		GetConcept:         s.getConceptCalls.Load(),
		GetEntity:          s.getEntityCalls.Load(),
		Men2EntBatch:       s.men2entBatchCalls.Load(),
		Conceptualize:      s.conceptualizeCalls.Load(),
		ConceptualizeBatch: s.conceptualizeBatchCall.Load(),
		QA:                 s.qaCalls.Load(),
	}
}

// ResilienceStats reports the failure-path counters of the overload
// stack: panics isolated (handler or ingest updater), deadlines
// expired, and — per endpoint — requests shed by admission control.
type ResilienceStats struct {
	Panics   int64            `json:"panics"`
	Timeouts int64            `json:"timeouts"`
	Shed     map[string]int64 `json:"shed,omitempty"`
}

// ResilienceReport snapshots the overload counters, or nil when every
// counter is zero (so the legacy /api/stats payload shape is
// preserved until the stack first absorbs something).
func (s *Server) ResilienceReport() *ResilienceStats {
	rs := &ResilienceStats{
		Panics:   s.metrics.Panics.Load(),
		Timeouts: s.metrics.Timeouts.Load(),
	}
	var total int64
	for name, c := range s.shed {
		if n := c.Load(); n > 0 {
			if rs.Shed == nil {
				rs.Shed = make(map[string]int64)
			}
			rs.Shed[name] = n
			total += n
		}
	}
	if rs.Panics == 0 && rs.Timeouts == 0 && total == 0 {
		return nil
	}
	return rs
}

// statsResponse is the /api/stats payload: the Table II counters plus
// per-endpoint latency summaries and, once the overload stack has
// absorbed anything, its failure-path counters.
type statsResponse struct {
	Stats
	Latency    []EndpointLatency `json:"latency,omitempty"`
	Resilience *ResilienceStats  `json:"resilience,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "stats requires GET")
		return
	}
	writeJSON(w, statsResponse{Stats: s.Counters(), Latency: s.LatencyReport(), Resilience: s.ResilienceReport()})
}

func (h *histogram) since(start time.Time) { h.observe(time.Since(start)) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	// Encoding to the client can fail only on connection loss; nothing
	// actionable remains at that point.
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorResponse is the body of every non-200 API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// writeError sends a JSON error body with the right Content-Type —
// clients always parse one schema, success or failure. It delegates to
// resilience.WriteJSONError, the single place allowed to write raw
// error responses (enforced by the jsonerr analyzer).
func writeError(w http.ResponseWriter, code int, msg string) {
	resilience.WriteJSONError(w, code, msg)
}
