// Package api serves the taxonomy over HTTP with the paper's three
// public APIs (Table II), mounted under /api:
//
//	/api/men2ent      — mention → disambiguated entities
//	/api/getConcept   — entity → hypernym list (?ranked=1 adds typicality scores)
//	/api/getEntity    — concept → hyponym list (?limit=N caps it)
//	/api/men2entBatch — POST a JSON array of mentions, resolve them all at once
//
// and the application layer the paper motivates on top of them:
//
//	/api/conceptualize      — POST a text, get its ranked concept vector
//	/api/conceptualizeBatch — POST a JSON array of texts, conceptualize all at once
//	/api/qa                 — POST a question, get its taxonomy understanding
//
// plus /api/stats exposing per-API call counters and latency
// summaries, which the Table II workload experiment reads back.
//
// Handlers never touch the mutable build store: every request is
// served from an immutable serving.View held in an atomic pointer —
// zero locks, near-zero allocation per query — and SwapView atomically
// replaces the whole view to pick up new data (cnpserver wires this to
// SIGHUP for hot snapshot reload). Errors are JSON bodies
// ({"error": "..."}) with the right Content-Type. Handlers are safe
// for concurrent use; request/response schemas are documented in
// docs/API.md.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// MaxBatchMentions caps the number of mentions one /api/men2entBatch
// request may carry; MaxBatchTexts caps the texts per
// /api/conceptualizeBatch request (texts are heavier than mentions);
// MaxBatchBytes caps every POST body itself, so an oversized payload
// is rejected while reading rather than after being fully decoded
// into memory.
const (
	MaxBatchMentions = 10000
	MaxBatchTexts    = 1000
	MaxBatchBytes    = 4 << 20
)

// Server hosts the APIs over an immutable serving view.
type Server struct {
	view atomic.Pointer[serving.View]

	men2entCalls           atomic.Int64
	men2entBatchCalls      atomic.Int64
	getConceptCalls        atomic.Int64
	getEntityCalls         atomic.Int64
	conceptualizeCalls     atomic.Int64
	conceptualizeBatchCall atomic.Int64
	qaCalls                atomic.Int64

	men2entLat            histogram
	men2entBatchLat       histogram
	getConceptLat         histogram
	getEntityLat          histogram
	conceptualizeLat      histogram
	conceptualizeBatchLat histogram
	qaLat                 histogram
}

// NewServer builds a Server by freezing the current contents of the
// build store into an immutable View (mentions may be nil). Later
// writes to the store are not served; compile a new view and SwapView.
func NewServer(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) *Server {
	return NewViewServer(serving.Compile(tax, mentions))
}

// NewViewServer builds a Server over an already-compiled view — the
// zero-copy path snapshot loading uses.
func NewViewServer(v *serving.View) *Server {
	s := &Server{}
	s.view.Store(v)
	return s
}

// SwapView atomically replaces the serving view and returns the
// previous one. In-flight requests finish on the view they started
// with; new requests see the new data. Safe to call at any time.
func (s *Server) SwapView(v *serving.View) *serving.View {
	return s.view.Swap(v)
}

// View returns the view currently being served.
func (s *Server) View() *serving.View { return s.view.Load() }

// routes is the full endpoint table — the single source the mux is
// built from, and the surface docs/API.md is contract-tested against.
func (s *Server) routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"/api/men2ent":            s.handleMen2Ent,
		"/api/men2entBatch":       s.handleMen2EntBatch,
		"/api/getConcept":         s.handleGetConcept,
		"/api/getEntity":          s.handleGetEntity,
		"/api/conceptualize":      s.handleConceptualize,
		"/api/conceptualizeBatch": s.handleConceptualizeBatch,
		"/api/qa":                 s.handleQA,
		"/api/stats":              s.handleStats,
	}
}

// Handler returns the HTTP mux with all endpoints registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for path, h := range s.routes() {
		mux.HandleFunc(path, h)
	}
	return mux
}

// Men2EntResponse is the payload of /api/men2ent (and one element of
// the /api/men2entBatch response array).
type Men2EntResponse struct {
	Mention  string   `json:"mention"`
	Entities []string `json:"entities"`
}

func (s *Server) handleMen2Ent(w http.ResponseWriter, r *http.Request) {
	defer s.men2entLat.since(time.Now())
	s.men2entCalls.Add(1)
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		writeError(w, http.StatusBadRequest, "missing ?mention=")
		return
	}
	writeJSON(w, Men2EntResponse{Mention: mention, Entities: s.View().Lookup(mention)})
}

func (s *Server) handleMen2EntBatch(w http.ResponseWriter, r *http.Request) {
	defer s.men2entBatchLat.since(time.Now())
	s.men2entBatchCalls.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "men2entBatch requires POST with a JSON array of mentions")
		return
	}
	var batch []string
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBytes)).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "body must be a JSON array of mention strings: "+err.Error())
		return
	}
	if len(batch) > MaxBatchMentions {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d mentions exceeds the limit of %d", len(batch), MaxBatchMentions))
		return
	}
	s.men2entCalls.Add(int64(len(batch))) // each mention counts as one men2ent resolution
	v := s.View()                         // one consistent view for the whole batch
	out := make([]Men2EntResponse, len(batch))
	for i, m := range batch {
		out[i] = Men2EntResponse{Mention: m, Entities: v.Lookup(m)}
	}
	writeJSON(w, out)
}

// ConceptResponse is the payload of /api/getConcept. Ranked is filled
// when the client asks for typicality-scored hypernyms (?ranked=1),
// the Probase-style probabilistic reading.
type ConceptResponse struct {
	Entity    string            `json:"entity"`
	Hypernyms []string          `json:"hypernyms"`
	Ranked    []taxonomy.Scored `json:"ranked,omitempty"`
}

func (s *Server) handleGetConcept(w http.ResponseWriter, r *http.Request) {
	defer s.getConceptLat.since(time.Now())
	s.getConceptCalls.Add(1)
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		writeError(w, http.StatusBadRequest, "missing ?entity=")
		return
	}
	v := s.View()
	resp := ConceptResponse{Entity: entity, Hypernyms: v.Hypernyms(entity)}
	if r.URL.Query().Get("ranked") == "1" {
		resp.Ranked = v.RankedHypernyms(entity, 0)
	}
	writeJSON(w, resp)
}

// EntityResponse is the payload of /api/getEntity.
type EntityResponse struct {
	Concept  string   `json:"concept"`
	Hyponyms []string `json:"hyponyms"`
}

func (s *Server) handleGetEntity(w http.ResponseWriter, r *http.Request) {
	defer s.getEntityLat.since(time.Now())
	s.getEntityCalls.Add(1)
	concept := r.URL.Query().Get("concept")
	if concept == "" {
		writeError(w, http.StatusBadRequest, "missing ?concept=")
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad ?limit=")
			return
		}
		limit = n
	}
	writeJSON(w, EntityResponse{Concept: concept, Hyponyms: s.View().Hyponyms(concept, limit)})
}

// Stats mirrors the call-count columns of the paper's Table II, plus
// the application endpoints. Men2EntBatch counts batch *requests*;
// each mention inside a batch also increments Men2Ent — and likewise
// ConceptualizeBatch requests increment Conceptualize per text. The
// application counters use omitempty so deployments that never call
// them keep the original Table II payload shape.
type Stats struct {
	Men2Ent            int64 `json:"men2ent"`
	GetConcept         int64 `json:"getConcept"`
	GetEntity          int64 `json:"getEntity"`
	Men2EntBatch       int64 `json:"men2entBatch,omitempty"`
	Conceptualize      int64 `json:"conceptualize,omitempty"`
	ConceptualizeBatch int64 `json:"conceptualizeBatch,omitempty"`
	QA                 int64 `json:"qa,omitempty"`
}

// Counters returns a snapshot of the per-API call counts.
func (s *Server) Counters() Stats {
	return Stats{
		Men2Ent:            s.men2entCalls.Load(),
		GetConcept:         s.getConceptCalls.Load(),
		GetEntity:          s.getEntityCalls.Load(),
		Men2EntBatch:       s.men2entBatchCalls.Load(),
		Conceptualize:      s.conceptualizeCalls.Load(),
		ConceptualizeBatch: s.conceptualizeBatchCall.Load(),
		QA:                 s.qaCalls.Load(),
	}
}

// statsResponse is the /api/stats payload: the Table II counters plus
// per-endpoint latency summaries.
type statsResponse struct {
	Stats
	Latency []EndpointLatency `json:"latency,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "stats requires GET")
		return
	}
	writeJSON(w, statsResponse{Stats: s.Counters(), Latency: s.LatencyReport()})
}

func (h *histogram) since(start time.Time) { h.observe(time.Since(start)) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	// Encoding to the client can fail only on connection loss; nothing
	// actionable remains at that point.
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorResponse is the body of every non-200 API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// writeError sends a JSON error body with the right Content-Type —
// clients always parse one schema, success or failure.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}
