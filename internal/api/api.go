// Package api serves the taxonomy over HTTP with the paper's three
// public APIs (Table II), mounted under /api:
//
//	/api/men2ent    — mention → disambiguated entities
//	/api/getConcept — entity → hypernym list (?ranked=1 adds typicality scores)
//	/api/getEntity  — concept → hyponym list (?limit=N caps it)
//
// plus /api/stats exposing per-API call counters, which the Table II
// workload experiment reads back. Handlers are safe for concurrent use;
// request/response schemas are documented in docs/API.md.
package api

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"

	"cnprobase/internal/taxonomy"
)

// Server hosts the three APIs over a taxonomy + mention index.
type Server struct {
	tax      *taxonomy.Taxonomy
	mentions *taxonomy.MentionIndex

	men2entCalls    atomic.Int64
	getConceptCalls atomic.Int64
	getEntityCalls  atomic.Int64
}

// NewServer builds a Server.
func NewServer(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) *Server {
	return &Server{tax: tax, mentions: mentions}
}

// Handler returns the HTTP mux with all endpoints registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/men2ent", s.handleMen2Ent)
	mux.HandleFunc("/api/getConcept", s.handleGetConcept)
	mux.HandleFunc("/api/getEntity", s.handleGetEntity)
	mux.HandleFunc("/api/stats", s.handleStats)
	return mux
}

// Men2EntResponse is the payload of /api/men2ent.
type Men2EntResponse struct {
	Mention  string   `json:"mention"`
	Entities []string `json:"entities"`
}

func (s *Server) handleMen2Ent(w http.ResponseWriter, r *http.Request) {
	s.men2entCalls.Add(1)
	mention := r.URL.Query().Get("mention")
	if mention == "" {
		http.Error(w, "missing ?mention=", http.StatusBadRequest)
		return
	}
	writeJSON(w, Men2EntResponse{Mention: mention, Entities: s.mentions.Lookup(mention)})
}

// ConceptResponse is the payload of /api/getConcept. Ranked is filled
// when the client asks for typicality-scored hypernyms (?ranked=1),
// the Probase-style probabilistic reading.
type ConceptResponse struct {
	Entity    string            `json:"entity"`
	Hypernyms []string          `json:"hypernyms"`
	Ranked    []taxonomy.Scored `json:"ranked,omitempty"`
}

func (s *Server) handleGetConcept(w http.ResponseWriter, r *http.Request) {
	s.getConceptCalls.Add(1)
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		http.Error(w, "missing ?entity=", http.StatusBadRequest)
		return
	}
	resp := ConceptResponse{Entity: entity, Hypernyms: s.tax.Hypernyms(entity)}
	if r.URL.Query().Get("ranked") == "1" {
		resp.Ranked = s.tax.RankedHypernyms(entity, 0)
	}
	writeJSON(w, resp)
}

// EntityResponse is the payload of /api/getEntity.
type EntityResponse struct {
	Concept  string   `json:"concept"`
	Hyponyms []string `json:"hyponyms"`
}

func (s *Server) handleGetEntity(w http.ResponseWriter, r *http.Request) {
	s.getEntityCalls.Add(1)
	concept := r.URL.Query().Get("concept")
	if concept == "" {
		http.Error(w, "missing ?concept=", http.StatusBadRequest)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad ?limit=", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, EntityResponse{Concept: concept, Hyponyms: s.tax.Hyponyms(concept, limit)})
}

// Stats mirrors the call-count columns of the paper's Table II.
type Stats struct {
	Men2Ent    int64 `json:"men2ent"`
	GetConcept int64 `json:"getConcept"`
	GetEntity  int64 `json:"getEntity"`
}

// Counters returns a snapshot of the per-API call counts.
func (s *Server) Counters() Stats {
	return Stats{
		Men2Ent:    s.men2entCalls.Load(),
		GetConcept: s.getConceptCalls.Load(),
		GetEntity:  s.getEntityCalls.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Counters())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	// Encoding to the client can fail only on connection loss; nothing
	// actionable remains at that point.
	_ = json.NewEncoder(w).Encode(v)
}
