// Continuous ingestion: the admin endpoint a live server exposes so
// crawl batches flow into the taxonomy without a restart. POST bodies
// are JSONL pages (the encyclopedia dump format); a single updater
// goroutine serializes batches through core.Update, freezes the
// updated Result into a fresh serving view and swaps it into the API
// server atomically — in-flight queries finish on the old view, new
// queries see the new edges, zero downtime. The endpoint is meant for
// a dedicated listener (cnpserver -ingest), never the public API port.
//
// Ingestion is durable when a write-ahead log is configured
// (cnpserver -wal): each accepted batch is appended to the WAL and
// fsynced *before* the update is applied, so the 200 response means
// the batch survives a crash — restart replays the log tail past the
// last snapshot and reconstructs the exact acknowledged state. A
// background compactor periodically saves a fresh snapshot stamped
// with the last applied LSN and truncates the log below it, keeping
// replay time proportional to the un-snapshotted tail (docs/WAL.md
// specifies the protocol).
//
// The updater queue is bounded: when a crawler outruns Update, excess
// batches are refused with 429 + Retry-After instead of queueing
// without limit, so backpressure reaches the producer before memory
// does.
package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/resilience"
	"cnprobase/internal/wal"
)

// MaxIngestBytes caps one /ingest request body, so an oversized batch
// is rejected while reading rather than after being decoded.
const MaxIngestBytes = 64 << 20

// DefaultIngestQueue is the default bound on batches waiting for the
// updater goroutine. Beyond it, /ingest answers 429 + Retry-After.
const DefaultIngestQueue = 16

// ErrIngesterClosed is returned (and mapped to 503) for batches that
// reach the ingester after Close has begun: the WAL is already flushed
// and closed, so the batch was not — and will never be — made durable.
var ErrIngesterClosed = errors.New("api: ingester is closed")

// ErrIngesterWedged is returned (and mapped to a sticky 503) for every
// batch after the updater goroutine has panicked: the panic is
// isolated — the process keeps serving queries from the last good view
// — but the mutable build state can no longer be trusted, so no
// further batch is applied or acknowledged until the replica is
// restarted.
var ErrIngesterWedged = errors.New("api: ingest updater is wedged after a panic; restart the server")

// Updater folds a crawl delta into a build Result — the single method
// of core.Pipeline the ingest plane uses, as an interface so the
// chaos tests can inject failing and panicking updaters.
type Updater interface {
	Update(prev *core.Result, delta *encyclopedia.Corpus) (*core.Result, error)
}

// IngesterConfig configures durability and backpressure. The zero
// value is a volatile, memory-only ingester with the default queue
// bound.
type IngesterConfig struct {
	// WAL, when non-nil, makes ingestion durable: every batch is
	// appended and fsynced before it is applied. The ingester owns the
	// log from then on — Close flushes and closes it.
	WAL *wal.Log
	// SnapshotPath is the snapshot file the compactor rewrites
	// (atomically: temp file + rename). Required for compaction.
	SnapshotPath string
	// SnapshotLSN is the LSN the snapshot at SnapshotPath already
	// covers at startup, so the first compaction cycle knows whether
	// there is anything new to persist.
	SnapshotLSN uint64
	// CompactEvery is the compaction period; 0 disables the
	// background compactor (Compact can still be called manually).
	CompactEvery time.Duration
	// SaveSnapshot writes res as a snapshot covering WAL records up
	// to and including lsn. Injected by the facade so this package
	// does not depend on the snapshot encoder. Required for
	// compaction.
	SaveSnapshot func(w io.Writer, res *core.Result, lsn uint64) error
	// Queue bounds batches waiting for the updater; 0 selects
	// DefaultIngestQueue.
	Queue int
}

// IngestResponse is the /ingest success payload: the batch size, how
// long the update took, the post-update taxonomy shape, and — on a
// durable ingester — the batch's log sequence number.
type IngestResponse struct {
	Pages        int     `json:"pages"`
	TookMs       float64 `json:"took_ms"`
	Entities     int     `json:"entities"`
	Concepts     int     `json:"concepts"`
	IsARelations int     `json:"isa_relations"`
	LSN          uint64  `json:"lsn,omitempty"`
}

type ingestReply struct {
	resp IngestResponse
	err  error
}

type ingestReq struct {
	raw   []byte // exact request body, the bytes the WAL persists
	delta *encyclopedia.Corpus
	reply chan ingestReply
}

// Ingester owns the single updater goroutine. All mutation of the
// Result — updates, view swaps, compaction snapshots, WAL truncation —
// happens on that goroutine; handlers only enqueue batches and wait
// for the outcome, so concurrent POSTs serialize and the serving view
// is swapped exactly once per batch.
type Ingester struct {
	pipeline Updater
	srv      *Server
	cfg      IngesterConfig
	reqs     chan ingestReq
	compactc chan chan error
	stop     chan struct{}
	done     chan struct{}
	closing  sync.Once

	// wedged flips (permanently) when the updater goroutine panics:
	// the panic is recovered, the half-mutated build state is
	// quarantined, and every subsequent batch gets a sticky 503 while
	// the query plane keeps serving the last published view.
	wedged atomic.Bool

	// lsn is the last LSN settled by the updater (applied, or logged
	// and rejected by Update); compacted is the LSN the latest
	// snapshot covers. atomically read by compaction-lag accounting.
	lsn       atomic.Uint64
	compacted atomic.Uint64
}

// NewIngester starts a volatile (memory-only) ingester over a mutable
// build Result. The Result must carry the update substrate (evidence
// and statistics — a fresh build, or a snapshot with the evidence
// section); srv is the API server whose view each batch swap publishes
// to.
func NewIngester(res *core.Result, pipeline Updater, srv *Server) (*Ingester, error) {
	return NewDurableIngester(res, pipeline, srv, IngesterConfig{})
}

// NewDurableIngester starts the updater goroutine with explicit
// durability configuration. With cfg.WAL set, the log's existing tail
// must already be replayed into res (see ReplayWAL) — the ingester
// numbers new batches after the log's last LSN.
func NewDurableIngester(res *core.Result, pipeline Updater, srv *Server, cfg IngesterConfig) (*Ingester, error) {
	if res == nil || res.Taxonomy == nil {
		return nil, fmt.Errorf("api: ingester needs a build Result")
	}
	if res.Evidence == nil || res.Stats == nil {
		return nil, fmt.Errorf("api: ingestion needs the update substrate; rebuild, or load a snapshot that carries evidence")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultIngestQueue
	}
	if cfg.CompactEvery > 0 && (cfg.WAL == nil || cfg.SnapshotPath == "" || cfg.SaveSnapshot == nil) {
		return nil, fmt.Errorf("api: compaction needs a WAL, a snapshot path and a snapshot saver")
	}
	ing := &Ingester{
		pipeline: pipeline,
		srv:      srv,
		cfg:      cfg,
		reqs:     make(chan ingestReq, cfg.Queue),
		compactc: make(chan chan error),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.WAL != nil {
		ing.lsn.Store(cfg.WAL.LastLSN())
	}
	ing.compacted.Store(cfg.SnapshotLSN)
	go ing.run(res)
	return ing, nil
}

// run is the updater goroutine: one batch at a time through
// WAL-append then Update, then freeze + swap; compaction interleaves
// between batches on the same goroutine, so it always snapshots a
// quiescent Result.
func (ing *Ingester) run(res *core.Result) {
	defer close(ing.done)
	var tickc <-chan time.Time
	if ing.cfg.WAL != nil && ing.cfg.CompactEvery > 0 {
		tick := time.NewTicker(ing.cfg.CompactEvery)
		defer tick.Stop()
		tickc = tick.C
	}
	for {
		select {
		case <-ing.stop:
			ing.shutdown()
			return
		case req := <-ing.reqs:
			if ing.wedged.Load() {
				req.reply <- ingestReply{err: ErrIngesterWedged}
				continue
			}
			res = ing.applySafe(res, req)
		case <-tickc:
			if err := ing.compact(res); err != nil {
				log.Printf("cnprobase: wal compaction: %v", err)
			}
		case c := <-ing.compactc:
			c <- ing.compact(res)
		}
	}
}

// applySafe is apply behind the ingest plane's panic isolation: a
// panic anywhere in the WAL append / Update / freeze / swap path is
// recovered on this goroutine — the process survives — but the build
// state it may have half-mutated is quarantined: the ingester wedges
// permanently (sticky 503 for every later batch, /readyz flips to 503
// so the replica is rotated out) while queries keep serving the last
// view that was published whole.
func (ing *Ingester) applySafe(res *core.Result, req ingestReq) (out *core.Result) {
	defer func() {
		if p := recover(); p != nil {
			ing.srv.metrics.Panics.Add(1)
			ing.wedged.Store(true)
			reason := fmt.Sprintf("update panicked: %v", p)
			ing.srv.Health().Wedge(reason)
			log.Printf("cnprobase: ingest updater panic (ingester wedged, queries unaffected): %v\n%s", p, debug.Stack())
			req.reply <- ingestReply{err: fmt.Errorf("%w (%s)", ErrIngesterWedged, reason)}
			out = res
		}
	}()
	return ing.apply(res, req)
}

// Wedged reports whether the updater has been isolated after a panic.
func (ing *Ingester) Wedged() bool { return ing.wedged.Load() }

// apply settles one batch: make it durable, fold it in, publish the
// new view, answer the caller. The WAL append comes first — only a
// batch that is already on disk may mutate served state, so the
// acknowledged state is always reconstructible.
func (ing *Ingester) apply(res *core.Result, req ingestReq) *core.Result {
	start := time.Now()
	var lsn uint64
	if ing.cfg.WAL != nil {
		var err error
		lsn, err = ing.cfg.WAL.Append(req.raw)
		if err != nil {
			req.reply <- ingestReply{err: fmt.Errorf("write-ahead log append: %w", err)}
			return res
		}
	}
	updated, err := ing.pipeline.Update(res, req.delta)
	if err != nil {
		// The batch is on disk but rejected; replay hits the same
		// deterministic validation and skips it, so live outcome and
		// recovered outcome agree. The LSN still settles — the
		// snapshot may cover it.
		if lsn != 0 {
			ing.lsn.Store(lsn)
		}
		req.reply <- ingestReply{err: err}
		return res
	}
	ing.srv.SwapView(updated.Freeze())
	if lsn != 0 {
		ing.lsn.Store(lsn)
	}
	st := updated.Report.Stats
	req.reply <- ingestReply{resp: IngestResponse{
		Pages:        req.delta.Len(),
		TookMs:       float64(time.Since(start).Microseconds()) / 1000,
		Entities:     st.Entities,
		Concepts:     st.Concepts,
		IsARelations: st.IsARelations,
		LSN:          lsn,
	}}
	return updated
}

// compact persists res as a fresh snapshot covering everything applied
// so far and prunes the WAL below it. The ordering is the data-loss
// proof: the snapshot is fully durable (temp file, fsync, rename,
// directory fsync) before a single log byte is dropped, and
// TruncateBelow only ever removes whole segments at or below the
// snapshot's LSN — a crash anywhere in between recovers from either
// the old snapshot + full log or the new snapshot + shorter log, both
// complete.
func (ing *Ingester) compact(res *core.Result) error {
	if ing.wedged.Load() {
		// A wedged ingester must never snapshot: res may be half-mutated
		// by the panicked update, and persisting it would replace a good
		// snapshot with a corrupt one.
		return ErrIngesterWedged
	}
	lsn := ing.lsn.Load()
	if ing.cfg.WAL == nil || lsn == ing.compacted.Load() {
		return nil
	}
	dir := filepath.Dir(ing.cfg.SnapshotPath)
	f, err := os.CreateTemp(dir, ".cnpsnap-*")
	if err != nil {
		return fmt.Errorf("compaction snapshot: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return fmt.Errorf("compaction snapshot: %w", err)
	}
	if err := ing.cfg.SaveSnapshot(f, res, lsn); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("compaction snapshot: %w", err)
	}
	if err := os.Rename(tmp, ing.cfg.SnapshotPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("compaction snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("compaction snapshot: %w", err)
	}
	ing.compacted.Store(lsn)
	// Seal the tail so the whole covered range is eligible, then
	// prune. Roll before truncate is what lets the log shrink to a
	// single header-only segment when the snapshot covers everything.
	if err := ing.cfg.WAL.Roll(); err != nil {
		return fmt.Errorf("compaction roll: %w", err)
	}
	if _, err := ing.cfg.WAL.TruncateBelow(lsn); err != nil {
		return fmt.Errorf("compaction truncate: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Compact runs one compaction cycle on the updater goroutine and
// returns its outcome. Used by tests and operational tooling; the
// periodic compactor calls the same code.
func (ing *Ingester) Compact() error {
	c := make(chan error, 1)
	select {
	case ing.compactc <- c:
		return <-c
	case <-ing.done:
		return ErrIngesterClosed
	}
}

// CompactedLSN returns the LSN the latest compaction snapshot covers.
func (ing *Ingester) CompactedLSN() uint64 { return ing.compacted.Load() }

// AppliedLSN returns the LSN of the last batch the updater settled.
func (ing *Ingester) AppliedLSN() uint64 { return ing.lsn.Load() }

// shutdown finishes the updater goroutine: first flush and fsync the
// WAL — everything acknowledged so far becomes durable before anything
// is refused — then fail whatever is still queued. Those batches were
// never appended, so the 503 is truthful: not durable, not applied.
func (ing *Ingester) shutdown() {
	if ing.cfg.WAL != nil {
		if err := ing.cfg.WAL.Close(); err != nil {
			log.Printf("cnprobase: wal close: %v", err)
		}
	}
	for {
		select {
		case req := <-ing.reqs:
			req.reply <- ingestReply{err: ErrIngesterClosed}
		default:
			return
		}
	}
}

// Close stops the updater goroutine, flushes and closes the WAL, and
// waits for it all to finish. Requests arriving afterwards are
// rejected with 503. Safe to call more than once.
func (ing *Ingester) Close() {
	ing.closing.Do(func() { close(ing.stop) })
	<-ing.done
}

// Handler returns the admin mux with the /ingest endpoint registered
// behind panic isolation (a handler bug yields a JSON 500 on that
// request, never a dropped connection or a dead process). Backpressure
// is the bounded queue itself, so no extra admission layer is stacked.
func (ing *Ingester) Handler() http.Handler {
	g := resilience.Guard{Metrics: &ing.srv.metrics}
	mux := http.NewServeMux()
	mux.Handle("/ingest", g.Wrap(http.HandlerFunc(ing.handleIngest), nil))
	return mux
}

func (ing *Ingester) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "ingest requires POST with JSONL pages")
		return
	}
	if ing.wedged.Load() {
		// Sticky refusal: reject before reading the body so a wedged
		// replica sheds crawler load instantly.
		writeError(w, http.StatusServiceUnavailable, ErrIngesterWedged.Error())
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxIngestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	delta, err := encyclopedia.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body must be JSONL pages: "+err.Error())
		return
	}
	if delta.Len() == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	for i := range delta.Pages {
		if strings.TrimSpace(delta.Pages[i].Title) == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("page %d has a blank title", i+1))
			return
		}
	}
	req := ingestReq{raw: raw, delta: delta, reply: make(chan ingestReply, 1)}
	select {
	case ing.reqs <- req:
	case <-ing.stop:
		writeError(w, http.StatusServiceUnavailable, "ingester is shut down")
		return
	default:
		// The queue is full: the updater is the bottleneck, so tell
		// the crawler to back off instead of buffering without bound.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest queue is full; retry later")
		return
	}
	var rep ingestReply
	select {
	case rep = <-req.reply:
	case <-ing.done:
		// The updater exited while this batch waited. Shutdown drains
		// the queue, so the reply is normally already buffered; if the
		// enqueue raced past the drain, the batch was dropped unlogged.
		select {
		case rep = <-req.reply:
		default:
			rep = ingestReply{err: ErrIngesterClosed}
		}
	}
	if rep.err != nil {
		code := http.StatusInternalServerError
		if errors.Is(rep.err, ErrIngesterClosed) || errors.Is(rep.err, ErrIngesterWedged) || errors.Is(rep.err, wal.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "update failed: "+rep.err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(rep.resp)
}

// ReplayStats summarizes a WAL replay.
type ReplayStats struct {
	// Applied is the number of batches folded into the Result.
	Applied int
	// Skipped is the number of logged batches Update rejected — the
	// same deterministic validation that failed them with a 500 when
	// they were first submitted, so the recovered state matches the
	// state the live process served.
	Skipped int
	// LastLSN is the LSN of the last replayed record (== after when
	// the log held nothing new).
	LastLSN uint64
}

// ReplayWAL folds the log's records past `after` — the LSN the loaded
// snapshot covers — into res, returning the updated Result. On
// success the Result is byte-for-byte the state the crashed process
// had acknowledged: every logged batch was fsynced before it was
// applied, and Update is deterministic. Payloads that fail to parse
// are an error (the handler validated them before logging, so a
// parse failure means corruption the checksums missed); batches
// Update rejects are counted in Skipped and otherwise ignored,
// mirroring their live 500. After a successful replay the log's
// append position is at least `after`, so a freshly created log
// behind an old snapshot numbers new batches correctly.
func ReplayWAL(res *core.Result, pipeline *core.Pipeline, l *wal.Log, after uint64) (*core.Result, ReplayStats, error) {
	stats := ReplayStats{LastLSN: after}
	if res == nil || res.Taxonomy == nil {
		return nil, stats, fmt.Errorf("api: replay needs a build Result")
	}
	if res.Evidence == nil || res.Stats == nil {
		return nil, stats, fmt.Errorf("api: replay needs the update substrate; load a snapshot that carries evidence")
	}
	err := l.Replay(after, func(lsn uint64, payload []byte) error {
		delta, err := encyclopedia.ReadJSONL(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("record %d does not parse as JSONL pages: %w", lsn, err)
		}
		updated, err := pipeline.Update(res, delta)
		if err != nil {
			stats.Skipped++
			stats.LastLSN = lsn
			return nil
		}
		res = updated
		stats.Applied++
		stats.LastLSN = lsn
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	l.AdvanceTo(after)
	return res, stats, nil
}
