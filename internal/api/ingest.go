// Continuous ingestion: the admin endpoint a live server exposes so
// crawl batches flow into the taxonomy without a restart. POST bodies
// are JSONL pages (the encyclopedia dump format); a single updater
// goroutine serializes batches through core.Update, freezes the
// updated Result into a fresh serving view and swaps it into the API
// server atomically — in-flight queries finish on the old view, new
// queries see the new edges, zero downtime. The endpoint is meant for
// a dedicated listener (cnpserver -ingest), never the public API port.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
)

// MaxIngestBytes caps one /ingest request body, so an oversized batch
// is rejected while reading rather than after being decoded.
const MaxIngestBytes = 64 << 20

// IngestResponse is the /ingest success payload: the batch size, how
// long the update took, and the post-update taxonomy shape.
type IngestResponse struct {
	Pages        int     `json:"pages"`
	TookMs       float64 `json:"took_ms"`
	Entities     int     `json:"entities"`
	Concepts     int     `json:"concepts"`
	IsARelations int     `json:"isa_relations"`
}

type ingestReply struct {
	resp IngestResponse
	err  error
}

type ingestReq struct {
	delta *encyclopedia.Corpus
	reply chan ingestReply
}

// Ingester owns the single updater goroutine. All mutation of the
// Result happens on that goroutine — handlers only enqueue batches and
// wait for the outcome — so concurrent POSTs serialize and the
// serving view is swapped exactly once per batch.
type Ingester struct {
	pipeline *core.Pipeline
	srv      *Server
	reqs     chan ingestReq
	stop     chan struct{}
	done     chan struct{}
	closing  sync.Once
}

// NewIngester starts the updater goroutine over a mutable build
// Result. The Result must carry the update substrate (evidence and
// statistics — a fresh build, or a snapshot with the evidence
// section); srv is the API server whose view each batch swap
// publishes to.
func NewIngester(res *core.Result, pipeline *core.Pipeline, srv *Server) (*Ingester, error) {
	if res == nil || res.Taxonomy == nil {
		return nil, fmt.Errorf("api: ingester needs a build Result")
	}
	if res.Evidence == nil || res.Stats == nil {
		return nil, fmt.Errorf("api: ingestion needs the update substrate; rebuild, or load a snapshot that carries evidence")
	}
	ing := &Ingester{
		pipeline: pipeline,
		srv:      srv,
		reqs:     make(chan ingestReq),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go ing.run(res)
	return ing, nil
}

// run is the updater goroutine: one batch at a time through Update,
// then freeze + swap.
func (ing *Ingester) run(res *core.Result) {
	defer close(ing.done)
	for {
		select {
		case <-ing.stop:
			return
		case req := <-ing.reqs:
			start := time.Now()
			updated, err := ing.pipeline.Update(res, req.delta)
			if err != nil {
				// The old view keeps serving; the batch is reported
				// failed to the caller.
				req.reply <- ingestReply{err: err}
				continue
			}
			res = updated
			ing.srv.SwapView(res.Freeze())
			st := res.Report.Stats
			req.reply <- ingestReply{resp: IngestResponse{
				Pages:        req.delta.Len(),
				TookMs:       float64(time.Since(start).Microseconds()) / 1000,
				Entities:     st.Entities,
				Concepts:     st.Concepts,
				IsARelations: st.IsARelations,
			}}
		}
	}
}

// Close stops the updater goroutine and waits for it to exit. Requests
// arriving afterwards are rejected with 503. Safe to call more than
// once.
func (ing *Ingester) Close() {
	ing.closing.Do(func() { close(ing.stop) })
	<-ing.done
}

// Handler returns the admin mux with the /ingest endpoint registered.
func (ing *Ingester) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", ing.handleIngest)
	return mux
}

func (ing *Ingester) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "ingest requires POST with JSONL pages")
		return
	}
	delta, err := encyclopedia.ReadJSONL(http.MaxBytesReader(w, r.Body, MaxIngestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body must be JSONL pages: "+err.Error())
		return
	}
	if delta.Len() == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	for i := range delta.Pages {
		if strings.TrimSpace(delta.Pages[i].Title) == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("page %d has a blank title", i+1))
			return
		}
	}
	req := ingestReq{delta: delta, reply: make(chan ingestReply, 1)}
	select {
	case ing.reqs <- req:
	case <-ing.stop:
		writeError(w, http.StatusServiceUnavailable, "ingester is shut down")
		return
	}
	rep := <-req.reply
	if rep.err != nil {
		writeError(w, http.StatusInternalServerError, "update failed: "+rep.err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(rep.resp)
}
