package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FileSystem is the slice of filesystem behavior the log needs. The
// default implementation is OSFileSystem; tests substitute an
// in-memory filesystem whose writes fail after a byte budget, which is
// how the crash-injection battery kills a commit at every byte offset
// and checks what replay recovers.
type FileSystem interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// List returns the names (not paths) of the entries in dir.
	List(dir string) ([]string, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making entry creation and
	// removal durable.
	SyncDir(dir string) error
}

// File is an open, appendable segment file.
type File interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Close releases the file.
	Close() error
}

// OSFileSystem is the real filesystem.
type OSFileSystem struct{}

func (OSFileSystem) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFileSystem) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFileSystem) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFileSystem) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (OSFileSystem) Remove(path string) error { return os.Remove(path) }

func (OSFileSystem) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFileSystem) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
