package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the log reader as a first
// segment file. The contract under test is the one recovery relies on:
// Open and Replay never panic, never allocate proportionally to a
// corrupt length claim, and any log they do accept must round-trip —
// re-appending the replayed payloads to a fresh log and replaying that
// must reproduce the identical (LSN, payload) sequence. Seeds cover a
// valid multi-record segment plus the interesting corruption classes
// (truncation, bit flip, huge length claim); the fuzzer mutates from
// there.
func FuzzWALReplay(f *testing.F) {
	valid := buildSegment(1, [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma-gamma")})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[segmentHeaderSize+20] ^= 0x10
	f.Add(flipped) // corrupt payload byte
	huge := buildSegment(1, nil)
	huge = binary.LittleEndian.AppendUint64(huge, MaxRecordBytes+7) // absurd length claim
	huge = binary.LittleEndian.AppendUint64(huge, 1)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := newMemFS()
		fs.files[testDir+"/"+segmentName(1)] = data
		l, err := Open(testDir, Options{FS: fs})
		if err != nil {
			return
		}
		var lsns []uint64
		var payloads [][]byte
		err = l.Replay(0, func(lsn uint64, payload []byte) error {
			lsns = append(lsns, lsn)
			payloads = append(payloads, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			return
		}

		// Accepted: the recovered state must survive a write-out and a
		// second recovery bit-exactly.
		fs2 := newMemFS()
		l2, err := Open(testDir, Options{FS: fs2})
		if err != nil {
			t.Fatalf("reopen fresh log: %v", err)
		}
		for i, p := range payloads {
			lsn, err := l2.Append(p)
			if err != nil {
				t.Fatalf("re-append record %d: %v", i, err)
			}
			if lsn != lsns[i] {
				t.Fatalf("re-append record %d got LSN %d, want %d", i, lsn, lsns[i])
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("close re-appended log: %v", err)
		}
		l3, err := Open(testDir, Options{FS: fs2})
		if err != nil {
			t.Fatalf("reopen re-appended log: %v", err)
		}
		i := 0
		err = l3.Replay(0, func(lsn uint64, payload []byte) error {
			if i >= len(payloads) || lsn != lsns[i] || !bytes.Equal(payload, payloads[i]) {
				t.Fatalf("re-replay diverged at record %d", i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("re-replay: %v", err)
		}
		if i != len(payloads) {
			t.Fatalf("re-replay yielded %d records, want %d", i, len(payloads))
		}
	})
}

// buildSegment assembles a valid segment file by hand, independent of
// the writer under test.
func buildSegment(first uint64, payloads [][]byte) []byte {
	var b []byte
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint32(b, Version)
	b = binary.LittleEndian.AppendUint64(b, first)
	lsn := first
	for _, p := range payloads {
		var frame []byte
		frame = binary.LittleEndian.AppendUint64(frame, uint64(len(p)))
		frame = binary.LittleEndian.AppendUint64(frame, lsn)
		frame = append(frame, p...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
		b = append(b, frame...)
		lsn++
	}
	return b
}
