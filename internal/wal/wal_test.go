package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"testing"
)

// ---------------------------------------------------------------------------
// In-memory filesystem with byte-budget crash injection.
//
// Every mutating operation charges a cost against a budget: writes cost
// their byte count, metadata mutations (sync, remove, truncate, dir
// sync) cost one. When the budget runs out mid-operation the filesystem
// "crashes": a write keeps exactly the bytes the budget still allowed —
// modeling a process killed at that byte offset of the write stream —
// a metadata operation does not apply, and every later mutation fails.
// Sweeping the budget from zero to the scenario's total cost therefore
// kills the log at every byte offset of every commit, which is the
// substrate of the crash-injection property test.
// ---------------------------------------------------------------------------

var errCrashed = errors.New("memfs: crashed")

type memFS struct {
	mu      sync.Mutex
	files   map[string][]byte
	budget  int64 // <0 = unlimited
	spent   int64
	crashed bool
}

func newMemFS() *memFS {
	return &memFS{files: map[string][]byte{}, budget: -1}
}

// crashFS clones fs's current file contents into a fresh, healthy
// filesystem: the disk as the restarted process finds it.
func (fs *memFS) restarted() *memFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clone := newMemFS()
	for name, data := range fs.files {
		clone.files[name] = append([]byte(nil), data...)
	}
	return clone
}

// charge consumes cost from the budget, returning how much of the
// operation may apply and whether it fully fits. A shortfall crashes
// the filesystem.
func (fs *memFS) charge(cost int64) (allowed int64, ok bool) {
	if fs.crashed {
		return 0, false
	}
	if fs.budget < 0 {
		fs.spent += cost
		return cost, true
	}
	if fs.budget >= cost {
		fs.budget -= cost
		fs.spent += cost
		return cost, true
	}
	allowed = fs.budget
	fs.spent += allowed
	fs.budget = 0
	fs.crashed = true
	return allowed, false
}

func (fs *memFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return errCrashed
	}
	return nil
}

func (fs *memFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := dir + "/"
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, strings.TrimPrefix(name, prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *memFS) OpenAppend(p string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, errCrashed
	}
	if _, ok := fs.files[p]; !ok {
		fs.files[p] = nil
	}
	return &memFile{fs: fs, path: p}, nil
}

func (fs *memFS) Open(p string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[p]
	if !ok {
		return nil, fmt.Errorf("memfs: %s does not exist", p)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), data...))), nil
}

func (fs *memFS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.charge(1); !ok {
		return errCrashed
	}
	if _, ok := fs.files[p]; !ok {
		return fmt.Errorf("memfs: %s does not exist", p)
	}
	delete(fs.files, p)
	return nil
}

func (fs *memFS) Truncate(p string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.charge(1); !ok {
		return errCrashed
	}
	data, ok := fs.files[p]
	if !ok {
		return fmt.Errorf("memfs: %s does not exist", p)
	}
	if size > int64(len(data)) {
		return fmt.Errorf("memfs: truncate %s beyond its %d bytes", p, len(data))
	}
	fs.files[p] = data[:size]
	return nil
}

func (fs *memFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.charge(1); !ok {
		return errCrashed
	}
	return nil
}

type memFile struct {
	fs   *memFS
	path string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	allowed, ok := f.fs.charge(int64(len(p)))
	f.fs.files[f.path] = append(f.fs.files[f.path], p[:allowed]...)
	if !ok {
		return int(allowed), errCrashed
	}
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, ok := f.fs.charge(1); !ok {
		return errCrashed
	}
	return nil
}

func (f *memFile) Close() error { return nil }

// ---------------------------------------------------------------------------
// Fixtures and helpers.
// ---------------------------------------------------------------------------

const testDir = "wal"

// scenarioPayloads are the batches the crash scenario commits: varied
// sizes (including empty) so record frames straddle segment rolls at
// every alignment.
func scenarioPayloads() [][]byte {
	return [][]byte{
		[]byte(`{"title":"阿尔法","tags":["概念A"]}`),
		[]byte(`{"title":"beta"}`),
		{},
		[]byte(strings.Repeat("x", 100)),
		[]byte(`{"title":"gamma","tags":["概念B","概念C"]}`),
		[]byte(`{"title":"delta"}`),
		[]byte(strings.Repeat("y", 41)),
		[]byte(`{"title":"epsilon"}`),
	}
}

// replayAll collects every record past `after`.
func replayAll(t *testing.T, l *Log, after uint64) (lsns []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(after, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", after, err)
	}
	return lsns, payloads
}

func mustAppend(t *testing.T, l *Log, payload []byte) uint64 {
	t.Helper()
	lsn, err := l.Append(payload)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

// ---------------------------------------------------------------------------
// Round-trip and API basics.
// ---------------------------------------------------------------------------

func TestRoundTrip(t *testing.T) {
	fs := newMemFS()
	l, err := Open(testDir, Options{FS: fs, SegmentBytes: 96})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := scenarioPayloads()
	for i, p := range want {
		if lsn := mustAppend(t, l, p); lsn != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	if got := l.LastLSN(); got != uint64(len(want)) {
		t.Fatalf("LastLSN = %d, want %d", got, len(want))
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("expected the %d-byte roll threshold to produce multiple segments, got %d", 96, l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a roomy roll threshold: the tail segment is under
	// it, so the first append must continue the tail in place.
	l2, err := Open(testDir, Options{FS: fs, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := l2.LastLSN(); got != uint64(len(want)) {
		t.Fatalf("reopened LastLSN = %d, want %d", got, len(want))
	}
	lsns, payloads := replayAll(t, l2, 0)
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if lsns[i] != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, lsns[i])
		}
		if !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}

	// Appending after a reopen continues the sequence in place.
	segsBefore := l2.SegmentCount()
	extra := []byte("after-restart")
	if lsn := mustAppend(t, l2, extra); lsn != uint64(len(want)+1) {
		t.Fatalf("post-reopen append got LSN %d", lsn)
	}
	if l2.SegmentCount() != segsBefore {
		t.Fatalf("post-reopen append rolled a new segment (%d -> %d) instead of continuing the tail", segsBefore, l2.SegmentCount())
	}
	_, payloads = replayAll(t, l2, uint64(len(want)))
	if len(payloads) != 1 || !bytes.Equal(payloads[0], extra) {
		t.Fatalf("tail replay after reopen = %q", payloads)
	}
}

func TestOpenEmptyDirectory(t *testing.T) {
	fs := newMemFS()
	l, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := l.LastLSN(); got != 0 {
		t.Fatalf("LastLSN on empty log = %d", got)
	}
	lsns, _ := replayAll(t, l, 0)
	if len(lsns) != 0 {
		t.Fatalf("empty log replayed %d records", len(lsns))
	}
}

func TestAdvanceTo(t *testing.T) {
	fs := newMemFS()
	l, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// A fresh log behind a snapshot at LSN 5 must number new batches
	// from 6, or a later replay-after-5 would skip them.
	l.AdvanceTo(5)
	l.AdvanceTo(2) // lower watermarks never rewind
	if lsn := mustAppend(t, l, []byte("six")); lsn != 6 {
		t.Fatalf("append after AdvanceTo(5) got LSN %d, want 6", lsn)
	}
	lsns, _ := replayAll(t, l, 5)
	if len(lsns) != 1 || lsns[0] != 6 {
		t.Fatalf("replay after 5 = %v", lsns)
	}
	// Replaying from before the watermark must refuse the gap rather
	// than serve a stream that silently misses batches 1-5.
	if err := l.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay(0) across the 1-5 gap succeeded")
	}
}

func TestClosedLogRejectsMutations(t *testing.T) {
	fs := newMemFS()
	l, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, []byte("one"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Roll(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Roll after Close = %v, want ErrClosed", err)
	}
	if _, err := l.TruncateBelow(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TruncateBelow after Close = %v, want ErrClosed", err)
	}
	if err := l.Replay(0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after Close = %v, want ErrClosed", err)
	}
}

func TestRollAndTruncateBelow(t *testing.T) {
	fs := newMemFS()
	l, err := Open(testDir, Options{FS: fs, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 6; i++ {
		mustAppend(t, l, []byte(fmt.Sprintf("batch-%d", i)))
		if i == 1 || i == 3 {
			if err := l.Roll(); err != nil {
				t.Fatalf("Roll: %v", err)
			}
		}
	}
	// Segments now hold LSNs {1,2}, {3,4}, {5,6}.
	if got := l.SegmentCount(); got != 3 {
		t.Fatalf("SegmentCount = %d, want 3", got)
	}
	if err := l.Roll(); err != nil {
		t.Fatalf("sealing Roll: %v", err)
	}
	// Rolling a header-only tail is a no-op, not a fourth empty twin.
	if err := l.Roll(); err != nil {
		t.Fatalf("idempotent Roll: %v", err)
	}
	if got := l.SegmentCount(); got != 4 {
		t.Fatalf("SegmentCount after sealing = %d, want 4", got)
	}

	// A snapshot at LSN 3 covers segment {1,2} only: {3,4} holds
	// record 4, which is NOT in the snapshot and must survive.
	if _, err := l.TruncateBelow(3); err != nil {
		t.Fatalf("TruncateBelow(3): %v", err)
	}
	lsns, _ := replayAll(t, l, 3)
	if want := []uint64{4, 5, 6}; !equalLSNs(lsns, want) {
		t.Fatalf("after TruncateBelow(3): replay = %v, want %v", lsns, want)
	}

	// A snapshot at the head lets everything but the tail go.
	if _, err := l.TruncateBelow(6); err != nil {
		t.Fatalf("TruncateBelow(6): %v", err)
	}
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount after full compaction = %d, want 1", got)
	}
	lsns, _ = replayAll(t, l, 6)
	if len(lsns) != 0 {
		t.Fatalf("fully compacted log replayed %v", lsns)
	}
	// The sequence continues across compaction.
	if lsn := mustAppend(t, l, []byte("batch-6")); lsn != 7 {
		t.Fatalf("post-compaction append got LSN %d, want 7", lsn)
	}
}

func equalLSNs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Crash injection: kill the log at every byte offset of every commit.
// ---------------------------------------------------------------------------

type crashScenario struct {
	attempted [][]byte
	acked     int    // appends that returned nil, always a prefix
	snapLSN   uint64 // LSN of the simulated durable snapshot (0 = none)
}

// runCrashScenario drives a realistic ingest lifetime against fs:
// five commits, a compaction (snapshot at LSN 3, roll, truncate), three
// more commits. Append errors end the run the way they would end an
// ingester — nothing after the first failure is retried.
func runCrashScenario(fs *memFS) crashScenario {
	res := crashScenario{attempted: scenarioPayloads()}
	l, err := Open(testDir, Options{FS: fs, SegmentBytes: 80})
	if err != nil {
		return res
	}
	defer l.Close()
	for _, p := range res.attempted[:5] {
		if _, err := l.Append(p); err != nil {
			return res
		}
		res.acked++
	}
	// The compactor saves a snapshot covering LSNs 1-3 (durable
	// before truncation by construction) and prunes below it.
	res.snapLSN = 3
	l.Roll()
	l.TruncateBelow(res.snapLSN)
	for _, p := range res.attempted[5:] {
		if _, err := l.Append(p); err != nil {
			return res
		}
		res.acked++
	}
	return res
}

// TestKillAtEveryByteOffset is the core durability property: for every
// budget K from zero to the scenario's total write cost, kill the
// filesystem after exactly K cost units and prove that a restart
// recovers a state that is (a) a contiguous prefix of the committed
// batch sequence — never a torn or reordered one — and (b) a superset
// of everything Append acknowledged. This is the WAL analogue of
// snapshot_test.go's every-truncation battery, with the truncation
// point swept through live commits instead of a finished file.
func TestKillAtEveryByteOffset(t *testing.T) {
	clean := newMemFS()
	full := runCrashScenario(clean)
	if full.acked != len(full.attempted) {
		t.Fatalf("uncrashed scenario acked %d/%d appends", full.acked, len(full.attempted))
	}
	total := clean.spent
	if total < 300 {
		t.Fatalf("scenario cost %d units; fixture too small to be interesting", total)
	}

	for k := int64(0); k <= total; k++ {
		fs := newMemFS()
		fs.budget = k
		res := runCrashScenario(fs)

		disk := fs.restarted()
		l, err := Open(testDir, Options{FS: disk, SegmentBytes: 80})
		if err != nil {
			t.Fatalf("budget %d: reopen after crash: %v", k, err)
		}
		var lsns []uint64
		err = l.Replay(res.snapLSN, func(lsn uint64, payload []byte) error {
			if want := res.attempted[lsn-1]; !bytes.Equal(payload, want) {
				return fmt.Errorf("LSN %d payload %q, want %q", lsn, payload, want)
			}
			lsns = append(lsns, lsn)
			return nil
		})
		if err != nil {
			t.Fatalf("budget %d: replay after crash: %v", k, err)
		}

		// Contiguity: the recovered stream is snapLSN+1, +2, ... with
		// no gaps — a prefix of the attempted sequence.
		for i, lsn := range lsns {
			if lsn != res.snapLSN+uint64(i+1) {
				t.Fatalf("budget %d: replay LSN sequence %v has a gap", k, lsns)
			}
		}
		last := res.snapLSN
		if n := len(lsns); n > 0 {
			last = lsns[n-1]
		}
		// No acknowledged commit may be lost...
		if last < uint64(res.acked) {
			t.Fatalf("budget %d: acked %d appends but recovered only through LSN %d", k, res.acked, last)
		}
		// ...and at most the single in-flight record may appear beyond
		// the acknowledged prefix (written fully, killed before the
		// fsync was acknowledged): at-least-once, never invention.
		if last > uint64(res.acked)+1 {
			t.Fatalf("budget %d: acked %d appends but recovered through LSN %d", k, res.acked, last)
		}
		if got := l.LastLSN(); got < last {
			t.Fatalf("budget %d: LastLSN = %d but replay reached %d", k, got, last)
		}
	}
}

// ---------------------------------------------------------------------------
// Corruption battery: every single-bit flip, mirrored from
// snapshot_test.go's TestEveryBitFlipDetected, with the WAL's policy —
// a flip may only ever cost the final record of the final segment
// (indistinguishable from a torn tail); everywhere else it must fail
// loudly, and no flip may ever surface a wrong payload.
// ---------------------------------------------------------------------------

// fixtureLog builds a small multi-segment log on a memFS and returns
// the filesystem and the committed payloads.
func fixtureLog(t *testing.T) (*memFS, [][]byte) {
	t.Helper()
	fs := newMemFS()
	l, err := Open(testDir, Options{FS: fs, SegmentBytes: 80})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payloads := scenarioPayloads()
	for _, p := range payloads {
		mustAppend(t, l, p)
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("fixture has %d segments; need >= 3 for the battery to cover sealed segments", l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return fs, payloads
}

// recordEnds parses a segment file and returns the byte offset at
// which each record's frame ends, in order.
func recordEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	var ends []int64
	off := int64(segmentHeaderSize)
	for off < int64(len(data)) {
		length := binary.LittleEndian.Uint64(data[off : off+8])
		off += int64(recordOverhead) + int64(length)
		if off > int64(len(data)) {
			t.Fatalf("fixture segment is torn at offset %d", off)
		}
		ends = append(ends, off)
	}
	return ends
}

func TestEveryBitFlipIsPrefixSafe(t *testing.T) {
	fs, payloads := fixtureLog(t)
	var names []string
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)

	// recordsBefore[f][o] = records guaranteed untouched by a flip in
	// file index f at offset o: every record of earlier files plus the
	// records of f whose frames end at or before o.
	cumulative := 0
	type fileInfo struct {
		name   string
		data   []byte
		before int     // records in earlier segments
		ends   []int64 // frame-end offsets within this segment
	}
	infos := make([]fileInfo, 0, len(names))
	for _, name := range names {
		data := fs.files[name]
		ends := recordEnds(t, data)
		infos = append(infos, fileInfo{name: name, data: data, before: cumulative, ends: ends})
		cumulative += len(ends)
	}
	if cumulative != len(payloads) {
		t.Fatalf("fixture files hold %d records, want %d", cumulative, len(payloads))
	}

	for fi, info := range infos {
		finalFile := fi == len(infos)-1
		for off := range info.data {
			for _, mask := range []byte{0x01, 0x80} {
				disk := fs.restarted()
				disk.files[info.name][off] ^= mask

				got, err := openAndReplay(disk)
				if err != nil {
					continue // loud failure is always acceptable
				}
				if !finalFile {
					t.Fatalf("%s offset %d mask %#x: flip in a sealed segment replayed %d records without error",
						info.name, off, mask, len(got))
				}
				// Silent acceptance in the final segment: the result
				// must still be a strict prefix of the committed
				// sequence, and records entirely before the flip must
				// all survive.
				if len(got) >= len(payloads) {
					t.Fatalf("%s offset %d mask %#x: flip went completely undetected", info.name, off, mask)
				}
				for i, p := range got {
					if !bytes.Equal(p, payloads[i]) {
						t.Fatalf("%s offset %d mask %#x: record %d replayed with wrong bytes", info.name, off, mask, i)
					}
				}
				intact := info.before
				for _, end := range info.ends {
					if end <= int64(off) {
						intact++
					}
				}
				if len(got) < intact {
					t.Fatalf("%s offset %d mask %#x: flip at tail dropped %d records committed before it",
						info.name, off, mask, intact-len(got))
				}
			}
		}
	}
}

// openAndReplay reopens the log on disk and replays everything,
// returning the payloads in order.
func openAndReplay(fs *memFS) ([][]byte, error) {
	l, err := Open(testDir, Options{FS: fs, SegmentBytes: 80})
	if err != nil {
		return nil, err
	}
	var out [][]byte
	err = l.Replay(0, func(lsn uint64, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TestEveryTruncationIsPrefixSafe cuts the log's final segment at every
// length: recovery must yield exactly the records whose frames survived
// whole — the torn remainder is discarded, nothing else.
func TestEveryTruncationIsPrefixSafe(t *testing.T) {
	fs, payloads := fixtureLog(t)
	var names []string
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	tail := names[len(names)-1]
	tailData := fs.files[tail]
	ends := recordEnds(t, tailData)
	before := len(payloads) - len(ends)

	for cut := 0; cut < len(tailData); cut++ {
		disk := fs.restarted()
		disk.files[tail] = disk.files[tail][:cut]
		got, err := openAndReplay(disk)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := before
		for _, end := range ends {
			if end <= int64(cut) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[i]) {
				t.Fatalf("cut %d: record %d has wrong bytes", cut, i)
			}
		}
	}
}

// TestMidFileCorruptionFailsLoudly pins the other half of the torn-tail
// policy: damage in the durable region — before the final record — is
// real data loss and must never be absorbed.
func TestMidFileCorruptionFailsLoudly(t *testing.T) {
	fs, _ := fixtureLog(t)
	var names []string
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)

	// Flip a payload byte of the first record in the FIRST (sealed)
	// segment: Open succeeds — it scans only the tail — but Replay
	// must refuse.
	disk := fs.restarted()
	first := names[0]
	disk.files[first][segmentHeaderSize+16] ^= 0xFF
	l, err := Open(testDir, Options{FS: disk, SegmentBytes: 80})
	if err != nil {
		t.Fatalf("Open with sealed-segment corruption: %v", err)
	}
	if err := l.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay absorbed corruption in a sealed segment")
	}

	// A missing middle segment is a gap, not a shorter log.
	disk = fs.restarted()
	delete(disk.files, names[1])
	l, err = Open(testDir, Options{FS: disk, SegmentBytes: 80})
	if err != nil {
		t.Fatalf("Open with missing segment: %v", err)
	}
	if err := l.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay absorbed a missing middle segment")
	}

	// A record-header length claim beyond MaxRecordBytes is corruption
	// even at the tail: torn writes leave short headers, not absurd
	// complete ones.
	disk = fs.restarted()
	tail := names[len(names)-1]
	ends := recordEnds(t, disk.files[tail])
	lastStart := int64(segmentHeaderSize)
	if len(ends) > 1 {
		lastStart = ends[len(ends)-2]
	}
	binary.LittleEndian.PutUint64(disk.files[tail][lastStart:lastStart+8], MaxRecordBytes+1)
	if _, err := openAndReplay(disk); err == nil {
		t.Fatal("a huge length claim in a complete record header was absorbed")
	}
}

// ---------------------------------------------------------------------------
// Failure repair and wedging.
// ---------------------------------------------------------------------------

// flakyFS injects one transient write failure (fail the Nth write,
// leaving a torn prefix) while keeping every other operation healthy —
// the disk-hiccup case, as opposed to memFS's total-crash case.
type flakyFS struct {
	*memFS
	failAt     int // fail the Nth write (1-based)
	writes     int
	tornBytes  int // bytes of the failed write to leave behind
	truncFails bool
}

func (fs *flakyFS) OpenAppend(p string) (File, error) {
	f, err := fs.memFS.OpenAppend(p)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: f, fs: fs, path: p}, nil
}

func (fs *flakyFS) Truncate(p string, size int64) error {
	if fs.truncFails {
		return errors.New("flaky: truncate failed")
	}
	return fs.memFS.Truncate(p, size)
}

type flakyFile struct {
	File
	fs   *flakyFS
	path string
}

func (f *flakyFile) Write(p []byte) (int, error) {
	f.fs.writes++
	if f.fs.writes == f.fs.failAt {
		n := f.fs.tornBytes
		if n > len(p) {
			n = len(p)
		}
		f.File.Write(p[:n])
		return n, errors.New("flaky: write failed")
	}
	return f.File.Write(p)
}

func TestTransientWriteFailureIsRepaired(t *testing.T) {
	// Writes: 1 = segment header, 2 = record 1, 3 = record 2 (fails,
	// leaving 5 torn bytes), 4 = retried record 2.
	fs := &flakyFS{memFS: newMemFS(), failAt: 3, tornBytes: 5}
	l, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, []byte("one"))
	if _, err := l.Append([]byte("two")); err == nil {
		t.Fatal("injected write failure did not surface")
	}
	// The torn bytes were truncated away, so the retry lands cleanly
	// and the file stays a valid record sequence.
	if lsn := mustAppend(t, l, []byte("two")); lsn != 2 {
		t.Fatalf("retry got LSN %d, want 2", lsn)
	}
	lsns, payloads := replayAll(t, l, 0)
	if !equalLSNs(lsns, []uint64{1, 2}) {
		t.Fatalf("replay after repair = %v", lsns)
	}
	if !bytes.Equal(payloads[1], []byte("two")) {
		t.Fatalf("record 2 = %q after repair", payloads[1])
	}
}

func TestFailedRepairWedgesTheLog(t *testing.T) {
	fs := &flakyFS{memFS: newMemFS(), failAt: 3, tornBytes: 5, truncFails: true}
	l, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, []byte("one"))
	if _, err := l.Append([]byte("two")); err == nil {
		t.Fatal("injected write failure did not surface")
	}
	// Truncation failed too: appending after bytes of unknown
	// integrity would manufacture mid-file corruption, so the log
	// must refuse all further appends.
	if _, err := l.Append([]byte("three")); err == nil {
		t.Fatal("wedged log accepted an append")
	}
}

// TestSegmentNameMismatchRejected pins the rename-detection check: a
// segment whose header disagrees with its file name is refused.
func TestSegmentNameMismatchRejected(t *testing.T) {
	fs, _ := fixtureLog(t)
	var names []string
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	disk := fs.restarted()
	// "Rename" the first segment to claim a different first LSN.
	old := names[0]
	data := disk.files[old]
	delete(disk.files, old)
	disk.files[path.Dir(old)+"/"+segmentName(900)] = data
	l, err := Open(testDir, Options{FS: disk, SegmentBytes: 80})
	if err == nil {
		err = l.Replay(0, func(uint64, []byte) error { return nil })
	}
	if err == nil {
		t.Fatal("renamed segment was accepted")
	}
}
