// Package wal implements the write-ahead log that makes continuous
// ingestion durable: every accepted /ingest batch is appended — length-
// prefixed, CRC-32-checksummed, fsynced — before it is applied to the
// taxonomy, so a crash between snapshot saves loses nothing. On
// startup the server loads the latest snapshot and replays the log
// tail (every record beyond the snapshot's LSN); a background
// compactor periodically saves a fresh snapshot and truncates the log
// below it, keeping replay time proportional to the un-snapshotted
// tail rather than the log's lifetime.
//
// The log is a directory of segment files named by the LSN of their
// first record. Records carry consecutive log sequence numbers
// assigned at append time; one Append is one commit (the write and
// the fsync happen before Append returns), so after a crash the
// durable log is always an exact prefix of the committed batch
// sequence. docs/WAL.md specifies the byte layout and the recovery
// protocol.
//
// Torn-tail policy (the same stance internal/snapshot takes, adapted
// to an append-only file): because every committed record was fsynced
// before the next one started, a crash can damage at most the final
// record of the final segment. A truncated or checksum-failing final
// record is therefore discarded silently — it was never acknowledged —
// while corruption anywhere earlier (a record with intact bytes after
// it, or any defect in a non-final segment) fails loudly: that region
// was durable, so damage there is real data loss and must not be
// papered over.
//
// All file I/O goes through an injectable FileSystem, which is what
// lets the crash-injection tests kill writes at every byte offset of a
// commit and prove the replay-yields-a-committed-prefix property
// rather than assume it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Format constants. The magic opens every segment file; Version is
// bumped on any incompatible layout change (a reader rejects versions
// it does not know).
const (
	// Magic opens every WAL segment file.
	Magic = "CNPBWAL1"
	// Version is the current segment format version.
	Version = 1
	// segmentHeaderSize frames a segment: magic (8), version (4,
	// little-endian), first LSN (8, little-endian).
	segmentHeaderSize = 8 + 4 + 8
	// recordOverhead frames a record: payload length (8) + LSN (8)
	// before the payload, CRC-32 (4) after it. The CRC covers the
	// 16 header bytes and the payload, so a flipped length or LSN is
	// detected exactly like a flipped payload byte.
	recordOverhead = 8 + 8 + 4
	// MaxRecordBytes bounds one record's payload; a larger length
	// claim is treated as corruption. Comfortably above the 64 MiB
	// /ingest body cap.
	MaxRecordBytes = 1 << 30
	// DefaultSegmentBytes is the size past which Append rolls to a
	// fresh segment file, making the filled one eligible for
	// compaction.
	DefaultSegmentBytes = 64 << 20
	// segmentSuffix names segment files: 20 zero-padded decimal
	// digits of the first LSN, then this suffix.
	segmentSuffix = ".wal"
)

// ErrClosed is returned by every mutating method after Close: the
// typed rejection the ingester relies on to 503 late batches instead
// of silently dropping them.
var ErrClosed = errors.New("wal: log is closed")

// Options tunes a Log.
type Options struct {
	// FS is the filesystem the log lives on; nil selects the real
	// one. Tests inject failing filesystems here to simulate crashes
	// at arbitrary byte offsets.
	FS FileSystem
	// SegmentBytes is the roll threshold; 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
}

// segment is one on-disk segment file: its name and the LSN of its
// first record (also encoded in the name).
type segment struct {
	name  string
	first uint64
}

// Log is an append-only, segmented write-ahead log. All methods are
// safe for concurrent use; in the ingest plane only the single updater
// goroutine appends, while compaction (Roll + TruncateBelow) and
// startup replay run on the same goroutine or before it starts.
type Log struct {
	dir  string
	fs   FileSystem
	opts Options

	mu       sync.Mutex
	segs     []segment
	cur      File  // open tail segment, nil until the first append
	curSize  int64 // valid bytes in the tail segment
	lsn      uint64
	closed   bool
	brokenBy error // first unrecoverable append failure; sticky
}

// Open opens (creating if necessary) the log directory, validates the
// tail segment and repairs its torn tail if the previous process died
// mid-append: a final record that is truncated or fails its checksum
// is cut off, restoring the file to the exact committed prefix.
// Defects anywhere else in the tail segment are errors; earlier
// segments are validated when Replay streams them.
func Open(dir string, opts Options) (*Log, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFileSystem{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, fs: fs, opts: opts, segs: segs}
	if len(segs) == 0 {
		return l, nil
	}
	// Scan the tail segment: it determines the last committed LSN and
	// is the only place a torn tail is legal.
	tail := segs[len(segs)-1]
	path := filepath.Join(dir, tail.name)
	r, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	res, err := scanSegment(r, tail.first, true, nil)
	r.Close()
	if err != nil {
		return nil, fmt.Errorf("wal: segment %s: %w", tail.name, err)
	}
	switch {
	case res.torn && res.validSize < segmentHeaderSize:
		// The crash hit the segment header itself: no record of this
		// segment ever committed, so the file carries nothing — drop
		// it and let the previous segment's last record stand.
		if err := fs.Remove(path); err != nil {
			return nil, fmt.Errorf("wal: drop torn segment %s: %w", tail.name, err)
		}
		if err := fs.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("wal: sync %s: %w", dir, err)
		}
		l.segs = segs[:len(segs)-1]
		if len(l.segs) > 0 {
			// The new tail was sealed by a successful roll, so it
			// cannot itself be torn; still read it for its last LSN.
			prev := l.segs[len(l.segs)-1]
			prevPath := filepath.Join(dir, prev.name)
			pr, err := fs.Open(prevPath)
			if err != nil {
				return nil, fmt.Errorf("wal: open %s: %w", prevPath, err)
			}
			pres, err := scanSegment(pr, prev.first, false, nil)
			pr.Close()
			if err != nil {
				return nil, fmt.Errorf("wal: segment %s: %w", prev.name, err)
			}
			l.lsn = pres.lastLSN
			l.curSize = pres.validSize
		}
	case res.torn:
		if err := fs.Truncate(path, res.validSize); err != nil {
			return nil, fmt.Errorf("wal: repair torn tail of %s: %w", tail.name, err)
		}
		l.lsn = res.lastLSN
		l.curSize = res.validSize
	default:
		l.lsn = res.lastLSN
		l.curSize = res.validSize
	}
	return l, nil
}

// listSegments parses the directory into LSN-sorted segments,
// ignoring files that do not look like segments (a co-located
// snapshot, editor droppings).
func listSegments(fs FileSystem, dir string) ([]segment, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []segment
	for _, name := range names {
		base := strings.TrimSuffix(name, segmentSuffix)
		if base == name || len(base) != 20 {
			continue
		}
		first, err := strconv.ParseUint(base, 10, 64)
		if err != nil || first == 0 {
			continue
		}
		segs = append(segs, segment{name: name, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := 1; i < len(segs); i++ {
		if segs[i].first == segs[i-1].first {
			return nil, fmt.Errorf("wal: duplicate segment LSN %d (%s, %s)", segs[i].first, segs[i-1].name, segs[i].name)
		}
	}
	return segs, nil
}

// segmentName formats the file name of a segment starting at first.
func segmentName(first uint64) string {
	return fmt.Sprintf("%020d%s", first, segmentSuffix)
}

// LastLSN returns the sequence number of the last committed record
// (0 when the log has never been appended to).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// AdvanceTo raises the next-LSN watermark so future appends are
// numbered after lsn. Recovery calls this with the loaded snapshot's
// LSN: if the log directory is fresh (or was fully compacted away)
// while the snapshot already covers batches 1..lsn, appends must not
// reuse those numbers — a later replay would skip them as already
// snapshotted. A watermark at or below the current position is a
// no-op.
func (l *Log) AdvanceTo(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.lsn {
		l.lsn = lsn
	}
}

// Append commits one batch payload: frame, write, fsync, in that
// order, returning the record's LSN. When Append returns nil the
// record is durable — replay after any later crash will yield it. On
// a write or sync failure the half-written bytes are truncated away
// so the file stays a valid record sequence; if even that repair
// fails the log wedges (every later Append returns the original
// error) rather than risk appending after a torn region.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.brokenBy != nil {
		return 0, fmt.Errorf("wal: log is wedged by an earlier append failure: %w", l.brokenBy)
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: %d-byte payload exceeds the %d-byte record cap", len(payload), MaxRecordBytes)
	}
	if l.cur == nil && len(l.segs) > 0 && l.curSize < l.opts.SegmentBytes {
		// First append after Open: continue the existing tail segment
		// (already repaired to its committed prefix) instead of
		// rolling a fresh file per restart.
		if err := l.openTailLocked(); err != nil {
			return 0, err
		}
	}
	if l.cur == nil || l.curSize >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.lsn + 1
	frame := make([]byte, 0, recordOverhead+len(payload))
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint64(frame, lsn)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	if _, err := l.cur.Write(frame); err != nil {
		l.repairLocked(err)
		return 0, fmt.Errorf("wal: append record %d: %w", lsn, err)
	}
	if err := l.cur.Sync(); err != nil {
		l.repairLocked(err)
		return 0, fmt.Errorf("wal: fsync record %d: %w", lsn, err)
	}
	l.curSize += int64(len(frame))
	l.lsn = lsn
	return lsn, nil
}

// repairLocked truncates a half-written record off the tail segment
// after a failed write or sync. If truncation itself fails the log is
// wedged: appending after bytes of unknown integrity would turn the
// next crash into mid-file corruption, which replay rightly refuses.
func (l *Log) repairLocked(cause error) {
	path := filepath.Join(l.dir, l.segs[len(l.segs)-1].name)
	if err := l.fs.Truncate(path, l.curSize); err != nil {
		l.brokenBy = cause
	}
}

// Roll seals the tail segment and starts a fresh one, so every record
// committed so far lives in a sealed file that TruncateBelow can
// delete once a snapshot covers it. A tail segment with no records
// yet is already as fresh as a roll would make it; rolling then is a
// no-op.
func (l *Log) Roll() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(l.segs) == 0 || l.curSize <= segmentHeaderSize {
		return nil
	}
	return l.rollLocked()
}

// rollLocked closes the open tail segment (if any) and creates the
// next one, named and stamped with the next LSN.
func (l *Log) rollLocked() error {
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.cur = nil
	}
	seg := segment{name: segmentName(l.lsn + 1), first: l.lsn + 1}
	path := filepath.Join(l.dir, seg.name)
	f, err := l.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", seg.name, err)
	}
	var hdr [segmentHeaderSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], seg.first)
	err = func() error {
		if _, err := f.Write(hdr[:]); err != nil {
			return fmt.Errorf("wal: write segment header %s: %w", seg.name, err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync segment header %s: %w", seg.name, err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: sync %s: %w", l.dir, err)
		}
		return nil
	}()
	if err != nil {
		// Remove the partial file: retrying OpenAppend over it would
		// stack a second header after torn bytes. If the removal fails
		// too the log wedges, same as a failed record repair.
		err = errors.Join(err, f.Close())
		if rmErr := l.fs.Remove(path); rmErr != nil {
			l.brokenBy = err
		}
		return err
	}
	l.segs = append(l.segs, seg)
	l.cur = f
	l.curSize = segmentHeaderSize
	return nil
}

// openTailLocked opens the existing tail segment for appending.
func (l *Log) openTailLocked() error {
	seg := l.segs[len(l.segs)-1]
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, seg.name))
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", seg.name, err)
	}
	l.cur = f
	return nil
}

// TruncateBelow deletes every segment whose records are all covered
// by a snapshot at LSN upTo. Only whole sealed segments go: a segment
// is removable exactly when a later segment exists and starts at or
// below upTo+1 (so every record the segment holds is ≤ upTo and
// already snapshotted — the LSN-accounting guarantee the compactor
// relies on). Segments are removed oldest-first with a directory sync
// after each, so a crash mid-truncation leaves a contiguous suffix,
// never a gap.
func (l *Log) TruncateBelow(upTo uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for len(l.segs) > 1 && l.segs[1].first <= upTo+1 {
		path := filepath.Join(l.dir, l.segs[0].name)
		if err := l.fs.Remove(path); err != nil {
			return removed, fmt.Errorf("wal: remove segment %s: %w", l.segs[0].name, err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			return removed, fmt.Errorf("wal: sync %s: %w", l.dir, err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	return removed, nil
}

// Replay streams every committed record with LSN > after, in order,
// to fn; fn's error aborts the replay and is returned verbatim. The
// record sequence is validated end to end — segment headers, record
// checksums, LSN contiguity across segment boundaries, and the
// snapshot/log handoff (the first record past `after` must be
// after+1; a gap means records were lost and replay refuses to build
// a silently incomplete state). The final segment tolerates a torn
// tail exactly like Open; anything earlier fails loudly.
func (l *Log) Replay(after uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	expect := uint64(0) // next LSN the stream must produce; 0 = unset
	replayed := false
	for i, seg := range l.segs {
		if expect != 0 && seg.first != expect {
			return fmt.Errorf("wal: segment %s starts at LSN %d, want %d: missing records", seg.name, seg.first, expect)
		}
		path := filepath.Join(l.dir, seg.name)
		r, err := l.fs.Open(path)
		if err != nil {
			return fmt.Errorf("wal: open %s: %w", path, err)
		}
		res, err := scanSegment(r, seg.first, i == len(l.segs)-1, func(lsn uint64, payload []byte) error {
			if lsn <= after {
				return nil
			}
			if !replayed && lsn != after+1 {
				return fmt.Errorf("wal: first record past LSN %d is %d: missing records", after, lsn)
			}
			replayed = true
			return fn(lsn, payload)
		})
		r.Close()
		if err != nil {
			return fmt.Errorf("wal: segment %s: %w", seg.name, err)
		}
		if res.torn && i < len(l.segs)-1 {
			return fmt.Errorf("wal: segment %s: torn tail in a non-final segment", seg.name)
		}
		if res.lastLSN >= seg.first {
			expect = res.lastLSN + 1
		} else {
			expect = seg.first // header-only segment: nothing consumed
		}
	}
	return nil
}

// Close flushes and fsyncs the tail segment and closes it. Every
// later mutating call returns ErrClosed. Safe to call more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.cur == nil {
		return nil
	}
	f := l.cur
	l.cur = nil
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync on close: %w", errors.Join(err, f.Close()))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return nil
}

// scanResult summarizes one segment pass.
type scanResult struct {
	// validSize is the byte length of the longest valid prefix:
	// header plus whole, checksum-clean records.
	validSize int64
	// lastLSN is the LSN of the last valid record, or first−1 when
	// the segment holds none.
	lastLSN uint64
	// torn reports that bytes past validSize were discarded under the
	// torn-tail policy (only ever set when final scanning is allowed).
	torn bool
}

// scanSegment reads one segment stream: header, then records, feeding
// each valid record to fn (which may be nil). final selects the
// torn-tail policy — in the final segment a truncated or
// checksum-failing last record is reported as torn rather than an
// error; in any other segment every defect is an error. A defective
// record that is provably not last (intact bytes follow it) is an
// error even in the final segment: fsync ordering means a real crash
// cannot produce it, so it is genuine corruption.
func scanSegment(r io.Reader, first uint64, final bool, fn func(lsn uint64, payload []byte) error) (scanResult, error) {
	res := scanResult{lastLSN: first - 1}
	br := newByteCounter(r)
	var hdr [segmentHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if final && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
			res.torn = true
			return res, nil
		}
		return res, fmt.Errorf("read segment header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return res, fmt.Errorf("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return res, fmt.Errorf("unsupported format version %d (supported: %d)", v, Version)
	}
	if got := binary.LittleEndian.Uint64(hdr[12:20]); got != first {
		return res, fmt.Errorf("header says first LSN %d, file name says %d", got, first)
	}
	res.validSize = segmentHeaderSize

	expect := first
	for {
		var rh [16]byte
		n, err := io.ReadFull(br, rh[:])
		if err != nil {
			if errors.Is(err, io.EOF) && n == 0 {
				return res, nil // clean end between records
			}
			if final {
				res.torn = true
				return res, nil
			}
			return res, fmt.Errorf("truncated record header at offset %d", res.validSize)
		}
		length := binary.LittleEndian.Uint64(rh[:8])
		lsn := binary.LittleEndian.Uint64(rh[8:16])
		if length > MaxRecordBytes {
			// Append never writes a payload this large, and a torn
			// write leaves a *prefix* of the frame — a short header,
			// not a complete header with a wrong value. A fully
			// readable absurd length is therefore corruption, loud
			// even in the final segment.
			return res, fmt.Errorf("record at offset %d claims %d bytes", res.validSize, length)
		}
		payload, err := readN(br, length)
		if err != nil {
			if final {
				res.torn = true
				return res, nil
			}
			return res, fmt.Errorf("truncated record %d at offset %d", lsn, res.validSize)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			if final {
				res.torn = true
				return res, nil
			}
			return res, fmt.Errorf("truncated record %d checksum at offset %d", lsn, res.validSize)
		}
		crc := crc32.ChecksumIEEE(rh[:])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != binary.LittleEndian.Uint32(crcb[:]) {
			// A checksum failure is a torn write only if this really is
			// the last record; intact bytes after it prove otherwise.
			if final && !br.more() {
				res.torn = true
				return res, nil
			}
			return res, fmt.Errorf("record %d checksum mismatch at offset %d", lsn, res.validSize)
		}
		if lsn != expect {
			return res, fmt.Errorf("record at offset %d has LSN %d, want %d", res.validSize, lsn, expect)
		}
		if fn != nil {
			if err := fn(lsn, payload); err != nil {
				return res, err
			}
		}
		res.validSize += int64(recordOverhead) + int64(length)
		res.lastLSN = lsn
		expect++
	}
}

// readN reads exactly n bytes, growing the buffer one bounded chunk
// at a time so a corrupted length claim costs at most one chunk of
// allocation before the truncated read surfaces (the same defense
// internal/snapshot applies to section lengths).
func readN(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	var buf []byte
	for remaining := n; remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
		remaining -= step
	}
	return buf, nil
}

// byteCounter wraps a reader with one byte of lookahead so the scan
// can ask "are there intact bytes after this record?" without
// consuming them into the next frame.
type byteCounter struct {
	r      io.Reader
	peeked []byte
	eof    bool
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	if len(b.peeked) > 0 {
		n := copy(p, b.peeked)
		b.peeked = b.peeked[n:]
		return n, nil
	}
	if b.eof {
		return 0, io.EOF
	}
	return b.r.Read(p)
}

// more reports whether at least one more byte exists in the stream.
func (b *byteCounter) more() bool {
	if len(b.peeked) > 0 {
		return true
	}
	if b.eof {
		return false
	}
	var one [1]byte
	n, err := io.ReadFull(b.r, one[:])
	if n == 1 {
		b.peeked = append(b.peeked, one[0])
		return true
	}
	if err != nil {
		b.eof = true
	}
	return false
}
