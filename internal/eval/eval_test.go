package eval

import (
	"strings"
	"testing"

	"cnprobase/internal/taxonomy"
)

// mapJudge judges pairs from a fixed set.
type mapJudge map[string]bool

func (m mapJudge) Judge(hypo, hyper string) bool { return m[hypo+"|"+hyper] }

func TestSamplePrecisionWholePopulation(t *testing.T) {
	judge := mapJudge{"a|x": true, "b|x": true}
	pairs := []Pair{{"a", "x"}, {"b", "x"}, {"c", "x"}, {"d", "x"}}
	res := SamplePrecision(pairs, judge, 0, 1)
	if res.Sampled != 4 || res.Correct != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Precision() != 0.5 {
		t.Errorf("Precision = %v, want 0.5", res.Precision())
	}
}

func TestSamplePrecisionSampling(t *testing.T) {
	judge := mapJudge{}
	var pairs []Pair
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair{Hypo: "h", Hyper: "x"})
	}
	res := SamplePrecision(pairs, judge, 10, 1)
	if res.Sampled != 10 {
		t.Errorf("Sampled = %d, want 10", res.Sampled)
	}
	if res.Population != 100 {
		t.Errorf("Population = %d, want 100", res.Population)
	}
	// Deterministic under the same seed.
	res2 := SamplePrecision(pairs, judge, 10, 1)
	if res2.Sampled != res.Sampled || res2.Correct != res.Correct {
		t.Error("sampling not deterministic under fixed seed")
	}
}

func TestSamplePrecisionEmpty(t *testing.T) {
	res := SamplePrecision(nil, mapJudge{}, 100, 1)
	if res.Sampled != 0 || res.Precision() != 1 {
		t.Errorf("empty population: %+v precision %v", res, res.Precision())
	}
}

func TestEdgePairsSourceFilter(t *testing.T) {
	tx := taxonomy.New()
	if err := tx.AddIsA("a", "b", taxonomy.SourceBracket, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddIsA("a", "c", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	all := EdgePairs(tx.Edges(), 0)
	if len(all) != 2 {
		t.Fatalf("EdgePairs all = %v", all)
	}
	brackets := EdgePairs(tx.Edges(), taxonomy.SourceBracket)
	if len(brackets) != 1 || brackets[0].Hyper != "b" {
		t.Fatalf("EdgePairs bracket = %v", brackets)
	}
}

func TestRowForAndFormat(t *testing.T) {
	tx := taxonomy.New()
	tx.MarkEntity("e")
	if err := tx.AddIsA("e", "c", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	row := RowFor("测试", tx, mapJudge{"e|c": true}, 0, 1)
	if row.Entities != 1 || row.Concepts != 1 || row.IsA != 1 || row.Precision != 1 {
		t.Fatalf("row = %+v", row)
	}
	out := FormatTable1([]TableRow{row})
	if !strings.Contains(out, "测试") || !strings.Contains(out, "100.0%") {
		t.Errorf("FormatTable1 output:\n%s", out)
	}
	if !strings.Contains(out, "# isA relations") {
		t.Errorf("header missing:\n%s", out)
	}
}
