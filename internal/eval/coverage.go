package eval

import "cnprobase/internal/taxonomy"

// TruthSource exposes the ground-truth hypernym sets of entities — the
// synth world's oracle satisfies it. The paper lists coverage among its
// five taxonomy metrics; with a synthetic world it is measurable as
// recall of the ground-truth entity-concept pairs.
type TruthSource interface {
	// TruthHypernyms returns the correct hypernyms of an entity ID
	// (empty for unknown IDs).
	TruthHypernyms(entityID string) []string
}

// CoverageResult reports ground-truth recall.
type CoverageResult struct {
	// Entities is the number of ground-truth entities examined.
	Entities int
	// EntitiesCovered counts entities with at least one correct
	// hypernym in the taxonomy.
	EntitiesCovered int
	// TruthPairs / PairsRecovered count individual ground-truth
	// (entity, hypernym) pairs and how many the taxonomy contains.
	TruthPairs     int
	PairsRecovered int
}

// EntityCoverage is the fraction of entities with ≥1 correct hypernym.
func (r CoverageResult) EntityCoverage() float64 {
	if r.Entities == 0 {
		return 0
	}
	return float64(r.EntitiesCovered) / float64(r.Entities)
}

// PairRecall is the fraction of ground-truth pairs recovered.
func (r CoverageResult) PairRecall() float64 {
	if r.TruthPairs == 0 {
		return 0
	}
	return float64(r.PairsRecovered) / float64(r.TruthPairs)
}

// Graph is the reachability surface coverage needs. Both the mutable
// build store (*taxonomy.Taxonomy) and the immutable serving view
// (*serving.View) satisfy it, so the experiment can run against either
// side of the build/serve split.
type Graph interface {
	// Hypernyms returns the direct hypernyms of a node.
	Hypernyms(node string) []string
	// Ancestors returns every node reachable upward from node.
	Ancestors(node string) []string
}

// Coverage measures ground-truth recall against the build store —
// CoverageOf is the general form accepting any Graph.
func Coverage(t *taxonomy.Taxonomy, truth TruthSource, entityIDs []string) CoverageResult {
	return CoverageOf(t, truth, entityIDs)
}

// CoverageOf measures how much of the ground truth a taxonomy
// recovered, counting both direct edges and edges reachable through
// the concept hierarchy (isA is transitive).
func CoverageOf(g Graph, truth TruthSource, entityIDs []string) CoverageResult {
	var res CoverageResult
	for _, id := range entityIDs {
		want := truth.TruthHypernyms(id)
		if len(want) == 0 {
			continue
		}
		res.Entities++
		reach := make(map[string]bool)
		for _, h := range g.Hypernyms(id) {
			reach[h] = true
		}
		for _, h := range g.Ancestors(id) {
			reach[h] = true
		}
		covered := false
		for _, h := range want {
			res.TruthPairs++
			if reach[h] {
				res.PairsRecovered++
				covered = true
			}
		}
		if covered {
			res.EntitiesCovered++
		}
	}
	return res
}
