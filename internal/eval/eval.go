// Package eval measures taxonomies the way the paper's experiments
// section does: size (entities, concepts, isA relations) and precision
// estimated on a random sample of isA pairs — 2000 in the paper —
// judged by an oracle (the synthetic world's ground truth substitutes
// for the paper's human labelers).
package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"cnprobase/internal/taxonomy"
)

// Judge decides whether an isA pair is correct. The synth.Oracle
// satisfies it.
type Judge interface {
	Judge(hypo, hyper string) bool
}

// Pair is one isA relation under evaluation.
type Pair struct {
	Hypo, Hyper string
}

// PrecisionResult reports a sampled precision estimate.
type PrecisionResult struct {
	Population int
	Sampled    int
	Correct    int
}

// Precision returns the sampled precision (1.0 for an empty sample, as
// "no errors found").
func (r PrecisionResult) Precision() float64 {
	if r.Sampled == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Sampled)
}

// SamplePrecision estimates precision over pairs by sampling `sample`
// of them without replacement (paper: 2000) and asking the judge.
// sample <= 0 or >= len(pairs) evaluates the whole population.
func SamplePrecision(pairs []Pair, judge Judge, sample int, seed int64) PrecisionResult {
	res := PrecisionResult{Population: len(pairs)}
	if len(pairs) == 0 {
		return res
	}
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	if sample > 0 && sample < len(pairs) {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:sample]
	}
	for _, i := range idx {
		res.Sampled++
		if judge.Judge(pairs[i].Hypo, pairs[i].Hyper) {
			res.Correct++
		}
	}
	return res
}

// EdgePairs converts taxonomy edges to evaluation pairs, optionally
// restricted to a source bitmask (0 = all).
func EdgePairs(edges []taxonomy.Edge, sources taxonomy.Source) []Pair {
	var out []Pair
	for _, e := range edges {
		if sources != 0 && e.Sources&sources == 0 {
			continue
		}
		out = append(out, Pair{Hypo: e.Hypo, Hyper: e.Hyper})
	}
	return out
}

// TableRow is one row of the paper's Table I.
type TableRow struct {
	Name      string
	Entities  int
	Concepts  int
	IsA       int
	Precision float64
}

// RowFor summarizes a taxonomy into a table row.
func RowFor(name string, t *taxonomy.Taxonomy, judge Judge, sample int, seed int64) TableRow {
	st := t.ComputeStats()
	pr := SamplePrecision(EdgePairs(t.Edges(), 0), judge, sample, seed)
	return TableRow{
		Name:      name,
		Entities:  st.Entities,
		Concepts:  st.Concepts,
		IsA:       st.IsARelations,
		Precision: pr.Precision(),
	}
}

// FormatTable1 renders rows in the layout of the paper's Table I.
func FormatTable1(rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %16s %10s\n", "Taxonomy", "# entities", "# concepts", "# isA relations", "precision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12d %12d %16d %9.1f%%\n", r.Name, r.Entities, r.Concepts, r.IsA, r.Precision*100)
	}
	return b.String()
}
