package eval

import (
	"testing"

	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

type truthMap map[string][]string

func (m truthMap) TruthHypernyms(id string) []string { return m[id] }

func TestCoverage(t *testing.T) {
	tx := taxonomy.New()
	add := func(a, b string) {
		if err := tx.AddIsA(a, b, taxonomy.SourceTag, 1); err != nil {
			t.Fatal(err)
		}
	}
	add("甲", "演员")
	add("演员", "人物") // gives 甲 → 人物 transitively
	add("乙", "错误概念")

	truth := truthMap{
		"甲": {"演员", "人物"},
		"乙": {"歌手"},
		"丙": {"城市"},
	}
	res := Coverage(tx, truth, []string{"甲", "乙", "丙"})
	if res.Entities != 3 {
		t.Fatalf("Entities = %d", res.Entities)
	}
	if res.EntitiesCovered != 1 {
		t.Errorf("EntitiesCovered = %d, want 1 (only 甲)", res.EntitiesCovered)
	}
	if res.TruthPairs != 4 {
		t.Errorf("TruthPairs = %d, want 4", res.TruthPairs)
	}
	// 甲→演员 direct, 甲→人物 via ancestors.
	if res.PairsRecovered != 2 {
		t.Errorf("PairsRecovered = %d, want 2", res.PairsRecovered)
	}
	if res.EntityCoverage() < 0.33 || res.EntityCoverage() > 0.34 {
		t.Errorf("EntityCoverage = %v", res.EntityCoverage())
	}
	if res.PairRecall() != 0.5 {
		t.Errorf("PairRecall = %v, want 0.5", res.PairRecall())
	}
}

// TestCoverageOfViewMatchesStore runs the experiment against the
// compiled serving view and demands the same result as the store.
func TestCoverageOfViewMatchesStore(t *testing.T) {
	tx := taxonomy.New()
	add := func(a, b string) {
		if err := tx.AddIsA(a, b, taxonomy.SourceTag, 1); err != nil {
			t.Fatal(err)
		}
	}
	add("甲", "演员")
	add("演员", "人物")
	add("乙", "错误概念")
	truth := truthMap{
		"甲": {"演员", "人物"},
		"乙": {"歌手"},
		"丙": {"城市"},
	}
	ids := []string{"甲", "乙", "丙"}
	want := Coverage(tx, truth, ids)
	tx.Finalize()
	v := serving.Compile(tx, taxonomy.NewMentionIndex())
	if got := CoverageOf(v, truth, ids); got != want {
		t.Errorf("view coverage = %+v, store = %+v", got, want)
	}
}

func TestCoverageEmpty(t *testing.T) {
	res := Coverage(taxonomy.New(), truthMap{}, nil)
	if res.EntityCoverage() != 0 || res.PairRecall() != 0 {
		t.Errorf("empty coverage: %+v", res)
	}
}
