// Package corpus accumulates word-level statistics over segmented text:
// unigram and adjacent-bigram counts, from which it derives the
// pointwise mutual information (PMI) scores that drive the paper's
// separation algorithm (Section II) and the word probabilities the
// Viterbi segmenter uses.
//
// Stats is safe for concurrent reads after all writes complete; the
// pipeline builds it in a single pass before extraction begins.
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// pairKey is an adjacency key for bigram counts. Using a struct key
// avoids the ambiguity of string concatenation.
type pairKey struct{ a, b string }

// Stats holds unigram and adjacent-bigram counts over a segmented
// corpus.
type Stats struct {
	unigrams map[string]int
	bigrams  map[pairKey]int
	total    int // total unigram tokens observed
	pairs    int // total adjacent pairs observed
}

// NewStats returns an empty statistics accumulator.
func NewStats() *Stats {
	return &Stats{
		unigrams: make(map[string]int),
		bigrams:  make(map[pairKey]int),
	}
}

// AddSentence records one segmented sentence: every word counts as a
// unigram and every adjacent pair as a bigram. Tokens from the
// zero-copy segmenter are substrings of whole page texts, so keys are
// cloned on first insertion — Stats never pins its callers' backing
// strings (the clone cost is bounded by vocabulary size, not corpus
// size).
func (s *Stats) AddSentence(words []string) {
	for i, w := range words {
		if w == "" {
			continue
		}
		if _, ok := s.unigrams[w]; !ok {
			w = strings.Clone(w)
		}
		s.unigrams[w]++
		s.total++
		if i+1 < len(words) && words[i+1] != "" {
			k := pairKey{w, words[i+1]}
			if _, ok := s.bigrams[k]; !ok {
				k = pairKey{strings.Clone(k.a), strings.Clone(k.b)}
			}
			s.bigrams[k]++
			s.pairs++
		}
	}
}

// Count returns the unigram count of w.
func (s *Stats) Count(w string) int { return s.unigrams[w] }

// PairCount returns the adjacency count of (a, b).
func (s *Stats) PairCount(a, b string) int { return s.bigrams[pairKey{a, b}] }

// Tokens returns the total number of unigram tokens observed.
func (s *Stats) Tokens() int { return s.total }

// Pairs returns the total number of adjacent pairs observed.
func (s *Stats) Pairs() int { return s.pairs }

// VocabSize returns the number of distinct words observed.
func (s *Stats) VocabSize() int { return len(s.unigrams) }

// PMI returns the smoothed pointwise mutual information of the adjacent
// pair (a, b):
//
//	PMI(a,b) = log( P(a,b) / (P(a) · P(b)) )
//
// with add-one smoothing on the joint count so unseen pairs get a large
// negative — but finite — score. A pair of unseen words returns the
// floor value.
func (s *Stats) PMI(a, b string) float64 {
	if s.total == 0 || s.pairs == 0 {
		return pmiFloor
	}
	ca, cb := s.unigrams[a], s.unigrams[b]
	if ca == 0 || cb == 0 {
		return pmiFloor
	}
	joint := float64(s.bigrams[pairKey{a, b}]) + smoothing
	pJoint := joint / (float64(s.pairs) + smoothing*float64(len(s.bigrams)+1))
	pa := float64(ca) / float64(s.total)
	pb := float64(cb) / float64(s.total)
	v := math.Log(pJoint / (pa * pb))
	if v < pmiFloor {
		return pmiFloor
	}
	return v
}

const (
	smoothing = 0.1
	pmiFloor  = -20.0
)

// Probability returns the smoothed unigram probability of w, used as the
// word cost in the Viterbi segmenter. Unknown words get a probability
// below every observed word.
func (s *Stats) Probability(w string) float64 {
	if s.total == 0 {
		return 1e-9
	}
	c := s.unigrams[w]
	return (float64(c) + smoothing) / (float64(s.total) + smoothing*float64(len(s.unigrams)+1))
}

// TopWords returns the n most frequent words (ties broken
// lexicographically for determinism).
func (s *Stats) TopWords(n int) []string {
	type wc struct {
		w string
		c int
	}
	all := make([]wc, 0, len(s.unigrams))
	for w, c := range s.unigrams {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}

// statsJSON is the serialization schema for Stats.
type statsJSON struct {
	Unigrams map[string]int `json:"unigrams"`
	Bigrams  []bigramJSON   `json:"bigrams"`
}

type bigramJSON struct {
	A string `json:"a"`
	B string `json:"b"`
	N int    `json:"n"`
}

// WriteTo serializes the statistics as JSON.
func (s *Stats) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	out := statsJSON{Unigrams: s.unigrams}
	out.Bigrams = make([]bigramJSON, 0, len(s.bigrams))
	for k, n := range s.bigrams {
		out.Bigrams = append(out.Bigrams, bigramJSON{A: k.a, B: k.b, N: n})
	}
	sort.Slice(out.Bigrams, func(i, j int) bool {
		if out.Bigrams[i].A != out.Bigrams[j].A {
			return out.Bigrams[i].A < out.Bigrams[j].A
		}
		return out.Bigrams[i].B < out.Bigrams[j].B
	})
	if err := enc.Encode(out); err != nil {
		return 0, fmt.Errorf("corpus: encode stats: %w", err)
	}
	return 0, bw.Flush()
}

// ReadStats deserializes statistics written by WriteTo.
func ReadStats(r io.Reader) (*Stats, error) {
	var in statsJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("corpus: decode stats: %w", err)
	}
	s := NewStats()
	for w, c := range in.Unigrams {
		s.unigrams[w] = c
		s.total += c
	}
	for _, b := range in.Bigrams {
		s.bigrams[pairKey{b.A, b.B}] = b.N
		s.pairs += b.N
	}
	return s, nil
}
