package corpus

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func buildStats(sentences ...[]string) *Stats {
	s := NewStats()
	for _, sent := range sentences {
		s.AddSentence(sent)
	}
	return s
}

func TestCounts(t *testing.T) {
	s := buildStats(
		[]string{"蚂蚁", "金服", "首席", "战略官"},
		[]string{"首席", "战略官"},
	)
	if got := s.Count("首席"); got != 2 {
		t.Errorf("Count(首席) = %d, want 2", got)
	}
	if got := s.PairCount("首席", "战略官"); got != 2 {
		t.Errorf("PairCount(首席,战略官) = %d, want 2", got)
	}
	if got := s.PairCount("战略官", "首席"); got != 0 {
		t.Errorf("PairCount is directional; got %d, want 0", got)
	}
	if got := s.Tokens(); got != 6 {
		t.Errorf("Tokens = %d, want 6", got)
	}
	if got := s.Pairs(); got != 4 {
		t.Errorf("Pairs = %d, want 4", got)
	}
	if got := s.VocabSize(); got != 4 {
		t.Errorf("VocabSize = %d, want 4", got)
	}
}

func TestAddSentenceSkipsEmptyTokens(t *testing.T) {
	s := buildStats([]string{"a", "", "b"})
	if s.Tokens() != 2 {
		t.Errorf("Tokens = %d, want 2", s.Tokens())
	}
	if s.PairCount("a", "b") != 0 {
		t.Error("pair across empty token should not count")
	}
}

func TestPMIOrdering(t *testing.T) {
	// 首席+战略官 always adjacent; 金服+首席 rarely; so
	// PMI(首席,战略官) > PMI(金服,首席). This ordering is what drives
	// the separation algorithm.
	var sents [][]string
	for i := 0; i < 50; i++ {
		sents = append(sents, []string{"首席", "战略官"})
	}
	for i := 0; i < 50; i++ {
		sents = append(sents, []string{"蚂蚁", "金服"})
	}
	sents = append(sents, []string{"蚂蚁", "金服", "首席", "战略官"})
	s := buildStats(sents...)
	strong := s.PMI("首席", "战略官")
	weak := s.PMI("金服", "首席")
	if strong <= weak {
		t.Errorf("PMI(首席,战略官)=%.3f should exceed PMI(金服,首席)=%.3f", strong, weak)
	}
}

func TestPMIUnknownWordsFloor(t *testing.T) {
	s := buildStats([]string{"a", "b"})
	if got := s.PMI("x", "y"); got != -20.0 {
		t.Errorf("PMI of unknown pair = %v, want floor -20", got)
	}
	if got := NewStats().PMI("a", "b"); got != -20.0 {
		t.Errorf("PMI on empty stats = %v, want floor", got)
	}
}

func TestProbabilityMonotoneInCount(t *testing.T) {
	s := buildStats(
		[]string{"常见", "常见", "常见", "罕见"},
	)
	if s.Probability("常见") <= s.Probability("罕见") {
		t.Error("more frequent word must have higher probability")
	}
	if s.Probability("未见") >= s.Probability("罕见") {
		t.Error("unseen word must have lower probability than seen word")
	}
	if p := s.Probability("未见"); p <= 0 {
		t.Errorf("unseen probability must be positive, got %v", p)
	}
}

func TestTopWords(t *testing.T) {
	s := buildStats([]string{"b", "a", "b", "c", "b", "a"})
	got := s.TopWords(2)
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("TopWords = %v, want [b a]", got)
	}
	if n := len(s.TopWords(100)); n != 3 {
		t.Errorf("TopWords(100) len = %d, want 3", n)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s := buildStats(
		[]string{"蚂蚁", "金服", "首席"},
		[]string{"首席", "战略官"},
	)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadStats(&buf)
	if err != nil {
		t.Fatalf("ReadStats: %v", err)
	}
	if got.Tokens() != s.Tokens() || got.Pairs() != s.Pairs() {
		t.Fatalf("round trip totals: got (%d,%d), want (%d,%d)",
			got.Tokens(), got.Pairs(), s.Tokens(), s.Pairs())
	}
	if got.PMI("首席", "战略官") != s.PMI("首席", "战略官") {
		t.Error("PMI changed across serialization")
	}
}

func TestReadStatsRejectsGarbage(t *testing.T) {
	if _, err := ReadStats(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("ReadStats accepted garbage")
	}
}

// Property: PMI is finite and bounded below by the floor for any pair
// of observed words.
func TestQuickPMIBounded(t *testing.T) {
	f := func(raw [][2]byte) bool {
		s := NewStats()
		vocab := []string{"一", "二", "三", "四"}
		for _, pair := range raw {
			s.AddSentence([]string{vocab[int(pair[0])%4], vocab[int(pair[1])%4]})
		}
		for _, a := range vocab {
			for _, b := range vocab {
				p := s.PMI(a, b)
				if math.IsNaN(p) || math.IsInf(p, 0) || p < -20.0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
