// Package nn is a deliberately small neural-network substrate: flat
// float64 matrices, the activation functions, a GRU cell with explicit
// forward/backward passes, and an Adam optimizer. It exists so the
// reproduction can train the paper's copy-mechanism encoder–decoder
// (neural generation, Section II) without any dependency beyond the
// standard library.
//
// The package trades generality for auditability: there is no autograd;
// each layer exposes a Forward that returns the cached intermediates a
// matching Backward consumes.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone copies v.
func (v Vec) Clone() Vec { out := make(Vec, len(v)); copy(out, v); return out }

// Zero resets v in place.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add accumulates o into v (v += o).
func (v Vec) Add(o Vec) {
	for i := range v {
		v[i] += o[i]
	}
}

// AddScaled accumulates s*o into v.
func (v Vec) AddScaled(o Vec, s float64) {
	for i := range v {
		v[i] += s * o[i]
	}
}

// Dot returns the inner product of v and o.
func (v Vec) Dot(o Vec) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Mat is a row-major dense matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatRand returns a matrix with Xavier-style uniform init.
func NewMatRand(rows, cols int, rng *rand.Rand) *Mat {
	m := NewMat(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns m[i,j].
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Zero resets all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatVec computes y = M·x.
func MatVec(m *Mat, x Vec) Vec {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("nn: MatVec dim mismatch %d×%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := NewVec(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] = s
	}
	return y
}

// MatTVecAdd accumulates y += Mᵀ·x.
func MatTVecAdd(y Vec, m *Mat, x Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("nn: MatTVecAdd dim mismatch %d×%d, x=%d y=%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range y {
			y[j] += row[j] * xv
		}
	}
}

// AddOuter accumulates g += a·bᵀ (gradient of y=M·x wrt M with a=dy,
// b=x).
func AddOuter(g *Mat, a, b Vec) {
	if len(a) != g.Rows || len(b) != g.Cols {
		panic(fmt.Sprintf("nn: AddOuter dim mismatch %d×%d, a=%d b=%d", g.Rows, g.Cols, len(a), len(b)))
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := g.Data[i*g.Cols : (i+1)*g.Cols]
		for j, bv := range b {
			row[j] += av * bv
		}
	}
}

// Sigmoid applies the logistic function elementwise, returning a new
// vector.
func Sigmoid(x Vec) Vec {
	y := NewVec(len(x))
	for i, v := range x {
		y[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// SigmoidScalar is the scalar logistic function.
func SigmoidScalar(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Tanh applies tanh elementwise, returning a new vector.
func Tanh(x Vec) Vec {
	y := NewVec(len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// Softmax returns the softmax of x (numerically stabilized).
func Softmax(x Vec) Vec {
	if len(x) == 0 {
		return nil
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	y := NewVec(len(x))
	sum := 0.0
	for i, v := range x {
		y[i] = math.Exp(v - max)
		sum += y[i]
	}
	for i := range y {
		y[i] /= sum
	}
	return y
}

// ClipInPlace rescales g so its L2 norm is at most maxNorm.
func ClipInPlace(g []float64, maxNorm float64) {
	n := 0.0
	for _, v := range g {
		n += v * v
	}
	n = math.Sqrt(n)
	if n <= maxNorm || n == 0 {
		return
	}
	s := maxNorm / n
	for i := range g {
		g[i] *= s
	}
}
