package nn

import "math"

// ParamPair couples a flat parameter slice with its gradient slice.
type ParamPair struct {
	W []float64
	G []float64
}

// Adam is the Adam optimizer over registered parameter pairs.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// ClipNorm, when positive, rescales the global gradient to this L2
	// norm before each step.
	ClipNorm float64

	t     int
	pairs []ParamPair
	m, v  [][]float64
}

// NewAdam returns an optimizer with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5}
}

// Register adds parameter pairs to be updated on Step.
func (a *Adam) Register(pairs ...ParamPair) {
	for _, p := range pairs {
		a.pairs = append(a.pairs, p)
		a.m = append(a.m, make([]float64, len(p.W)))
		a.v = append(a.v, make([]float64, len(p.W)))
	}
}

// Step applies one Adam update from the accumulated gradients, then
// zeroes them.
func (a *Adam) Step() {
	a.t++
	if a.ClipNorm > 0 {
		total := 0.0
		for _, p := range a.pairs {
			for _, g := range p.G {
				total += g * g
			}
		}
		total = math.Sqrt(total)
		if total > a.ClipNorm && total > 0 {
			s := a.ClipNorm / total
			for _, p := range a.pairs {
				for i := range p.G {
					p.G[i] *= s
				}
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for k, p := range a.pairs {
		m, v := a.m[k], a.v[k]
		for i := range p.W {
			g := p.G[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.G[i] = 0
		}
	}
}
