package nn

import "math/rand"

// GRUCell is a gated recurrent unit:
//
//	z  = σ(Wz·x + Uz·h + bz)
//	r  = σ(Wr·x + Ur·h + br)
//	ĥ  = tanh(Wh·x + Uh·(r⊙h) + bh)
//	h' = (1−z)⊙h + z⊙ĥ
//
// Forward returns a cache the matching Backward consumes; gradients
// accumulate into the cell's G* fields until the optimizer consumes
// them.
type GRUCell struct {
	In, Hidden int

	Wz, Uz     *Mat
	Wr, Ur     *Mat
	Wh, Uh     *Mat
	Bz, Br, Bh Vec

	GWz, GUz      *Mat
	GWr, GUr      *Mat
	GWh, GUh      *Mat
	GBz, GBr, GBh Vec
}

// NewGRUCell builds a randomly initialized cell.
func NewGRUCell(in, hidden int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		In: in, Hidden: hidden,
		Wz: NewMatRand(hidden, in, rng), Uz: NewMatRand(hidden, hidden, rng),
		Wr: NewMatRand(hidden, in, rng), Ur: NewMatRand(hidden, hidden, rng),
		Wh: NewMatRand(hidden, in, rng), Uh: NewMatRand(hidden, hidden, rng),
		Bz: NewVec(hidden), Br: NewVec(hidden), Bh: NewVec(hidden),
		GWz: NewMat(hidden, in), GUz: NewMat(hidden, hidden),
		GWr: NewMat(hidden, in), GUr: NewMat(hidden, hidden),
		GWh: NewMat(hidden, in), GUh: NewMat(hidden, hidden),
		GBz: NewVec(hidden), GBr: NewVec(hidden), GBh: NewVec(hidden),
	}
}

// GRUCache stores the forward intermediates of one step.
type GRUCache struct {
	X, HPrev     Vec
	Z, R, HTilde Vec
	RH           Vec // r ⊙ hPrev
	H            Vec // output state
}

// Forward computes one step from input x and previous state hPrev.
func (c *GRUCell) Forward(x, hPrev Vec) *GRUCache {
	az := MatVec(c.Wz, x)
	MatVecAddInto(az, c.Uz, hPrev)
	az.Add(c.Bz)
	z := Sigmoid(az)

	ar := MatVec(c.Wr, x)
	MatVecAddInto(ar, c.Ur, hPrev)
	ar.Add(c.Br)
	r := Sigmoid(ar)

	rh := NewVec(c.Hidden)
	for i := range rh {
		rh[i] = r[i] * hPrev[i]
	}
	ah := MatVec(c.Wh, x)
	MatVecAddInto(ah, c.Uh, rh)
	ah.Add(c.Bh)
	ht := Tanh(ah)

	h := NewVec(c.Hidden)
	for i := range h {
		h[i] = (1-z[i])*hPrev[i] + z[i]*ht[i]
	}
	return &GRUCache{X: x, HPrev: hPrev, Z: z, R: r, HTilde: ht, RH: rh, H: h}
}

// Backward consumes dH (gradient wrt the step's output state) and the
// step cache; it accumulates parameter gradients and returns (dX,
// dHPrev).
func (c *GRUCell) Backward(dH Vec, k *GRUCache) (dX, dHPrev Vec) {
	h := c.Hidden
	dht := NewVec(h)
	dz := NewVec(h)
	dHPrev = NewVec(h)
	for i := 0; i < h; i++ {
		dht[i] = dH[i] * k.Z[i]
		dz[i] = dH[i] * (k.HTilde[i] - k.HPrev[i])
		dHPrev[i] = dH[i] * (1 - k.Z[i])
	}
	// Pre-activation grads.
	dah := NewVec(h)
	for i := 0; i < h; i++ {
		dah[i] = dht[i] * (1 - k.HTilde[i]*k.HTilde[i])
	}
	daz := NewVec(h)
	for i := 0; i < h; i++ {
		daz[i] = dz[i] * k.Z[i] * (1 - k.Z[i])
	}
	// d(r⊙h) comes through Uh.
	drh := NewVec(h)
	MatTVecAdd(drh, c.Uh, dah)
	dar := NewVec(h)
	for i := 0; i < h; i++ {
		dr := drh[i] * k.HPrev[i]
		dar[i] = dr * k.R[i] * (1 - k.R[i])
		dHPrev[i] += drh[i] * k.R[i]
	}
	// Parameter grads.
	AddOuter(c.GWz, daz, k.X)
	AddOuter(c.GUz, daz, k.HPrev)
	c.GBz.Add(daz)
	AddOuter(c.GWr, dar, k.X)
	AddOuter(c.GUr, dar, k.HPrev)
	c.GBr.Add(dar)
	AddOuter(c.GWh, dah, k.X)
	AddOuter(c.GUh, dah, k.RH)
	c.GBh.Add(dah)
	// Input and recurrent grads.
	dX = NewVec(c.In)
	MatTVecAdd(dX, c.Wz, daz)
	MatTVecAdd(dX, c.Wr, dar)
	MatTVecAdd(dX, c.Wh, dah)
	MatTVecAdd(dHPrev, c.Uz, daz)
	MatTVecAdd(dHPrev, c.Ur, dar)
	return dX, dHPrev
}

// Params returns the cell's parameter/gradient pairs for optimizer
// registration.
func (c *GRUCell) Params() []ParamPair {
	return []ParamPair{
		{c.Wz.Data, c.GWz.Data}, {c.Uz.Data, c.GUz.Data}, {c.Bz, c.GBz},
		{c.Wr.Data, c.GWr.Data}, {c.Ur.Data, c.GUr.Data}, {c.Br, c.GBr},
		{c.Wh.Data, c.GWh.Data}, {c.Uh.Data, c.GUh.Data}, {c.Bh, c.GBh},
	}
}

// MatVecAddInto computes y += M·x in place.
func MatVecAddInto(y Vec, m *Mat, x Vec) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] += s
	}
}
