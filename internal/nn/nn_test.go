package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := MatVec(m, Vec{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MatVec = %v, want [-2 -2]", y)
	}
}

func TestMatVecDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatVec with wrong dims did not panic")
		}
	}()
	MatVec(NewMat(2, 3), Vec{1, 2})
}

func TestMatTVecAdd(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := NewVec(3)
	MatTVecAdd(y, m, Vec{1, 1})
	want := Vec{5, 7, 9}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MatTVecAdd = %v, want %v", y, want)
		}
	}
}

func TestAddOuter(t *testing.T) {
	g := NewMat(2, 2)
	AddOuter(g, Vec{1, 2}, Vec{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("AddOuter = %v, want %v", g.Data, want)
		}
	}
}

func TestSoftmax(t *testing.T) {
	y := Softmax(Vec{1, 2, 3})
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(y[2] > y[1] && y[1] > y[0]) {
		t.Errorf("softmax not monotone: %v", y)
	}
	// Large values must not overflow.
	y = Softmax(Vec{1000, 1000})
	if math.IsNaN(y[0]) || math.Abs(y[0]-0.5) > 1e-9 {
		t.Errorf("softmax unstable: %v", y)
	}
}

func TestSigmoidTanh(t *testing.T) {
	if v := SigmoidScalar(0); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", v)
	}
	y := Tanh(Vec{0})
	if y[0] != 0 {
		t.Errorf("tanh(0) = %v", y[0])
	}
}

func TestClipInPlace(t *testing.T) {
	g := []float64{3, 4} // norm 5
	ClipInPlace(g, 1)
	norm := math.Hypot(g[0], g[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", norm)
	}
	h := []float64{0.3, 0.4}
	ClipInPlace(h, 1)
	if h[0] != 0.3 || h[1] != 0.4 {
		t.Error("clip modified in-budget gradient")
	}
}

// TestGRUGradientCheck verifies the analytic GRU backward pass against
// central finite differences on a scalar loss L = Σ h'ᵢ·tᵢ.
func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const in, hid = 3, 4
	cell := NewGRUCell(in, hid, rng)
	x := randVec(rng, in)
	h0 := randVec(rng, hid)
	target := randVec(rng, hid)

	loss := func() float64 {
		k := cell.Forward(x, h0)
		return k.H.Dot(target)
	}

	// Analytic gradients.
	k := cell.Forward(x, h0)
	dX, dH := cell.Backward(target.Clone(), k)

	const eps = 1e-6
	checkVec := func(name string, v Vec, analytic Vec) {
		for i := range v {
			orig := v[i]
			v[i] = orig + eps
			lp := loss()
			v[i] = orig - eps
			lm := loss()
			v[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-analytic[i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f", name, i, analytic[i], num)
			}
		}
	}
	checkVec("dX", x, dX)
	checkVec("dH0", h0, dH)

	checkMat := func(name string, w, g *Mat) {
		for i := range w.Data {
			orig := w.Data[i]
			w.Data[i] = orig + eps
			lp := loss()
			w.Data[i] = orig - eps
			lm := loss()
			w.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-g.Data[i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f", name, i, g.Data[i], num)
			}
		}
	}
	checkMat("Wz", cell.Wz, cell.GWz)
	checkMat("Uz", cell.Uz, cell.GUz)
	checkMat("Wr", cell.Wr, cell.GWr)
	checkMat("Ur", cell.Ur, cell.GUr)
	checkMat("Wh", cell.Wh, cell.GWh)
	checkMat("Uh", cell.Uh, cell.GUh)
	checkVec("Bz", cell.Bz, cell.GBz)
	checkVec("Br", cell.Br, cell.GBr)
	checkVec("Bh", cell.Bh, cell.GBh)
}

// TestAdamConvergesOnQuadratic drives Adam on f(w) = Σ(w-3)² and
// expects convergence to 3.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := []float64{-2, 8, 0.5}
	g := make([]float64, len(w))
	opt := NewAdam(0.1)
	opt.Register(ParamPair{W: w, G: g})
	for step := 0; step < 600; step++ {
		for i := range w {
			g[i] = 2 * (w[i] - 3)
		}
		opt.Step()
	}
	for i, v := range w {
		if math.Abs(v-3) > 0.05 {
			t.Errorf("w[%d] = %v, want ≈3", i, v)
		}
	}
}

func TestAdamZeroesGradients(t *testing.T) {
	w := []float64{1}
	g := []float64{5}
	opt := NewAdam(0.01)
	opt.Register(ParamPair{W: w, G: g})
	opt.Step()
	if g[0] != 0 {
		t.Errorf("gradient not zeroed after Step: %v", g[0])
	}
}

func TestNewMatRandInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatRand(10, 10, rng)
	bound := math.Sqrt(6.0 / 20)
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("init value %v outside ±%v", v, bound)
		}
	}
}

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.5
	}
	return v
}
