// Package serving implements the immutable, read-optimized serving
// view of a built taxonomy — the classic build/serve split of the
// CN-Probase deployment. The mutable, RWMutex-sharded store in
// internal/taxonomy is the *build* structure: it absorbs concurrent
// writes from the pipeline. A View is the *serve* structure: compiled
// once from a finalized store (or decoded straight from a snapshot via
// a Builder), it answers the paper's three APIs — men2ent, getConcept,
// getEntity — with zero locks and near-zero allocation per query.
//
// Layout: node names are interned to dense uint32 IDs assigned in
// sorted order (so ascending IDs are ascending strings and adjacency
// stored by ID is already in the store's canonical order). Adjacency
// is CSR-style — one flat edge array plus per-node offsets — with a
// parallel array of pre-resolved name slices so Hypernyms/Hyponyms
// return a shared subslice instead of copying. Typicality rankings
// are computed once at compile time and stored pre-sorted, so the
// ?ranked=1 path is a subslice too. Mentions live in one flat sorted
// table resolved by binary search.
//
// Every query method answers exactly like its Taxonomy counterpart on
// a finalized store (pinned by equivalence tests, down to byte-equal
// HTTP responses). Returned slices are views into shared immutable
// arrays: callers must not modify them.
package serving

import (
	"strings"

	"cnprobase/internal/taxonomy"
	"cnprobase/internal/trie"
)

// View is the immutable serving view. The zero value is not usable;
// build one with Compile or a Builder. A View is safe for unlimited
// concurrent use and never changes after construction — servers swap
// whole Views atomically to pick up new data (see api.Server.SwapView).
type View struct {
	names []string          // id → name, sorted ascending
	ids   map[string]uint32 // name → id (the interning table)
	kinds []taxonomy.NodeKind

	// Hypernym CSR: node i's outgoing edges occupy index range
	// [hyperOff[i], hyperOff[i+1]) in the flat arrays. hyperIDs is
	// ascending within each node (canonical order); hyperNames is the
	// same range pre-resolved to names; hyperRank is the same range
	// pre-sorted by descending typicality. Edge provenance (sources,
	// score, count) is stored on this side, aligned with hyperIDs.
	hyperOff    []uint32
	hyperIDs    []uint32
	hyperNames  []string
	hyperRank   []taxonomy.Scored
	edgeSources []taxonomy.Source
	edgeScores  []float64
	edgeCounts  []int64
	hyperTotals []int64 // per node: Σ evidence counts of outgoing edges

	// Hyponym CSR, mirroring the hypernym side (no edge payload — the
	// provenance of edge (hypo, hyper) lives in the hypernym CSR).
	hypoOff    []uint32
	hypoIDs    []uint32
	hypoNames  []string
	hypoRank   []taxonomy.Scored
	hypoTotals []int64 // per node: Σ evidence counts of incoming edges

	// Mention table: mentions sorted ascending; mention i's entity IDs
	// occupy mentionEnts[mentionOff[i]:mentionOff[i+1]], sorted.
	// mentionAt interns mention → table index for O(1) resolution;
	// mentionDict is the frozen trie FindAll scans text with.
	mentions    []string
	mentionAt   map[string]uint32
	mentionOff  []uint32
	mentionEnts []string
	mentionDict *trie.Trie

	stats taxonomy.Stats
}

// id resolves a node name to its interned ID. Compiled views carry an
// interning map; mapped views (OpenImage) drop it and binary-search
// the sorted name table instead — IDs are sorted ranks, so the found
// index IS the ID.
//
//cnp:noalloc
func (v *View) id(name string) (uint32, bool) {
	if v.ids != nil {
		id, ok := v.ids[name]
		return id, ok
	}
	return searchSorted(v.names, name)
}

// searchSorted finds s in the ascending table xs, returning its index.
// Hand-rolled (no sort.SearchStrings closure) to keep the mapped query
// path at 0 allocs/op.
//
//cnp:noalloc
func searchSorted(xs []string, s string) (uint32, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == s {
		return uint32(lo), true
	}
	return 0, false
}

// NodeCount returns the number of nodes.
//
//cnp:noalloc
func (v *View) NodeCount() int { return len(v.names) }

// EdgeCount returns the number of isA edges.
//
//cnp:noalloc
func (v *View) EdgeCount() int { return len(v.hyperIDs) }

// MentionCount returns the number of distinct mentions.
//
//cnp:noalloc
func (v *View) MentionCount() int { return len(v.mentions) }

// Nodes returns all node names, sorted. The returned slice is shared:
// do not modify it.
//
//cnp:noalloc
func (v *View) Nodes() []string { return v.names }

// Stats returns the Table-I-shaped summary computed at compile time.
//
//cnp:noalloc
func (v *View) Stats() taxonomy.Stats { return v.stats }

// Kind returns the node kind of name.
//
//cnp:noalloc
func (v *View) Kind(name string) taxonomy.NodeKind {
	if id, ok := v.id(name); ok {
		return v.kinds[id]
	}
	return taxonomy.KindUnknown
}

// Hypernyms returns the direct hypernyms of node in canonical (sorted)
// order — the getConcept API. The returned slice is shared: do not
// modify it. Nil when the node is unknown or has no hypernyms, exactly
// like Taxonomy.Hypernyms.
//
//cnp:noalloc
func (v *View) Hypernyms(node string) []string {
	id, ok := v.id(node)
	if !ok {
		return nil
	}
	lo, hi := v.hyperOff[id], v.hyperOff[id+1]
	if lo == hi {
		return nil
	}
	return v.hyperNames[lo:hi]
}

// Hyponyms returns up to limit direct hyponyms of a concept in
// canonical order — the getEntity API; limit <= 0 means all. The
// returned slice is shared: do not modify it.
//
//cnp:noalloc
func (v *View) Hyponyms(concept string, limit int) []string {
	id, ok := v.id(concept)
	if !ok {
		return nil
	}
	lo, hi := v.hypoOff[id], v.hypoOff[id+1]
	if lo == hi {
		return nil
	}
	if limit > 0 && uint32(limit) < hi-lo {
		hi = lo + uint32(limit)
	}
	return v.hypoNames[lo:hi]
}

// HyponymCount returns the number of direct hyponyms of a concept.
//
//cnp:noalloc
func (v *View) HyponymCount(concept string) int {
	id, ok := v.id(concept)
	if !ok {
		return 0
	}
	return int(v.hypoOff[id+1] - v.hypoOff[id])
}

// RankedHypernyms returns the node's hypernyms pre-sorted by
// descending typicality (ties broken lexicographically); limit <= 0
// returns all. The returned slice is shared: do not modify it.
//
//cnp:noalloc
func (v *View) RankedHypernyms(node string, limit int) []taxonomy.Scored {
	id, ok := v.id(node)
	if !ok {
		return []taxonomy.Scored{}
	}
	lo, hi := v.hyperOff[id], v.hyperOff[id+1]
	if limit > 0 && uint32(limit) < hi-lo {
		hi = lo + uint32(limit)
	}
	return v.hyperRank[lo:hi]
}

// RankedHyponyms returns the concept's hyponyms pre-sorted by
// descending typicality; limit <= 0 returns all. The returned slice is
// shared: do not modify it.
//
//cnp:noalloc
func (v *View) RankedHyponyms(concept string, limit int) []taxonomy.Scored {
	id, ok := v.id(concept)
	if !ok {
		return []taxonomy.Scored{}
	}
	lo, hi := v.hypoOff[id], v.hypoOff[id+1]
	if limit > 0 && uint32(limit) < hi-lo {
		hi = lo + uint32(limit)
	}
	return v.hypoRank[lo:hi]
}

// edgeIndex locates the flat-array index of edge (hypoID → hyper) by
// binary search over the node's ascending hypernym IDs. Hand-rolled
// (no sort.Search closure) to keep the edge query path at 0 allocs/op.
//
//cnp:noalloc
func (v *View) edgeIndex(hypoID uint32, hyper string) (uint32, bool) {
	hyperID, ok := v.id(hyper)
	if !ok {
		return 0, false
	}
	off, end := v.hyperOff[hypoID], v.hyperOff[hypoID+1]
	seg := v.hyperIDs[off:end]
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seg[mid] < hyperID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(seg) && seg[lo] == hyperID {
		return off + uint32(lo), true
	}
	return 0, false
}

// HasIsA reports whether the direct edge exists.
//
//cnp:noalloc
func (v *View) HasIsA(hypo, hyper string) bool {
	id, ok := v.id(hypo)
	if !ok {
		return false
	}
	_, ok = v.edgeIndex(id, hyper)
	return ok
}

// EdgeOf returns the edge with its full provenance, if present.
//
//cnp:noalloc
func (v *View) EdgeOf(hypo, hyper string) (taxonomy.Edge, bool) {
	id, ok := v.id(hypo)
	if !ok {
		return taxonomy.Edge{}, false
	}
	i, ok := v.edgeIndex(id, hyper)
	if !ok {
		return taxonomy.Edge{}, false
	}
	return taxonomy.Edge{
		Hypo:    hypo,
		Hyper:   v.hyperNames[i],
		Sources: v.edgeSources[i],
		Score:   v.edgeScores[i],
		Count:   int(v.edgeCounts[i]),
	}, true
}

// TypicalityOfConcept returns P(hyper | hypo) from the edge evidence
// counts; zero when the edge is absent.
//
//cnp:noalloc
func (v *View) TypicalityOfConcept(hypo, hyper string) float64 {
	id, ok := v.id(hypo)
	if !ok {
		return 0
	}
	i, ok := v.edgeIndex(id, hyper)
	if !ok {
		return 0
	}
	total := v.hyperTotals[id]
	if total == 0 {
		return 0
	}
	return float64(v.edgeCounts[i]) / float64(total)
}

// TypicalityOfInstance returns P(hypo | hyper): how representative the
// instance is of the concept.
//
//cnp:noalloc
func (v *View) TypicalityOfInstance(hyper, hypo string) float64 {
	hypoID, ok := v.id(hypo)
	if !ok {
		return 0
	}
	i, ok := v.edgeIndex(hypoID, hyper)
	if !ok {
		return 0
	}
	hyperID, _ := v.id(hyper)
	total := v.hypoTotals[hyperID]
	if total == 0 {
		return 0
	}
	return float64(v.edgeCounts[i]) / float64(total)
}

// Ancestors returns all transitive hypernyms of node, breadth-first,
// excluding node itself — the same traversal (and output order) as
// Taxonomy.Ancestors on a finalized store. Cycles are tolerated.
func (v *View) Ancestors(node string) []string {
	start, ok := v.id(node)
	if !ok {
		return nil
	}
	seen := map[uint32]bool{start: true}
	var out []string
	queue := append([]uint32(nil), v.hyperIDs[v.hyperOff[start]:v.hyperOff[start+1]]...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, v.names[cur])
		queue = append(queue, v.hyperIDs[v.hyperOff[cur]:v.hyperOff[cur+1]]...)
	}
	return out
}

// IsAncestor reports whether hyper is reachable from hypo.
func (v *View) IsAncestor(hypo, hyper string) bool {
	start, ok := v.id(hypo)
	if !ok {
		return false
	}
	target, ok := v.id(hyper)
	if !ok {
		return false
	}
	seen := map[uint32]bool{start: true}
	queue := append([]uint32(nil), v.hyperIDs[v.hyperOff[start]:v.hyperOff[start+1]]...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		if cur == target {
			return true
		}
		seen[cur] = true
		queue = append(queue, v.hyperIDs[v.hyperOff[cur]:v.hyperOff[cur+1]]...)
	}
	return false
}

// PathToAncestor returns one shortest isA chain from node to ancestor
// (inclusive of both ends), or nil when ancestor is not reachable —
// the same BFS (and tie-break) as Taxonomy.PathToAncestor on a
// finalized store.
func (v *View) PathToAncestor(node, ancestor string) []string {
	if node == ancestor {
		return []string{node}
	}
	start, ok := v.id(node)
	if !ok {
		return nil
	}
	target, ok := v.id(ancestor)
	if !ok {
		return nil
	}
	prev := map[uint32]uint32{start: start}
	queue := []uint32{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range v.hyperIDs[v.hyperOff[cur]:v.hyperOff[cur+1]] {
			if _, ok := prev[h]; ok {
				continue
			}
			prev[h] = cur
			if h == target {
				var rev []string
				for at := h; ; at = prev[at] {
					rev = append(rev, v.names[at])
					if at == start {
						break
					}
				}
				out := make([]string, len(rev))
				for i := range rev {
					out[i] = rev[len(rev)-1-i]
				}
				return out
			}
			queue = append(queue, h)
		}
	}
	return nil
}

// CommonAncestors returns concepts reachable from both nodes, in the
// order Taxonomy.CommonAncestors yields them (Ancestors(b) order).
func (v *View) CommonAncestors(a, b string) []string {
	inA := make(map[string]bool)
	for _, x := range v.Ancestors(a) {
		inA[x] = true
	}
	var out []string
	for _, x := range v.Ancestors(b) {
		if inA[x] {
			out = append(out, x)
		}
	}
	return out
}

// Lookup returns the entity IDs a mention may refer to, sorted — the
// men2ent API. The returned slice is shared: do not modify it. Nil
// when the mention is unknown, exactly like MentionIndex.Lookup.
//
//cnp:noalloc
func (v *View) Lookup(mention string) []string {
	q := strings.TrimSpace(mention)
	var i uint32
	var ok bool
	if v.mentionAt != nil {
		i, ok = v.mentionAt[q]
	} else {
		// Mapped views drop the hash; the table is sorted.
		i, ok = searchSorted(v.mentions, q)
	}
	if !ok {
		return nil
	}
	return v.mentionEnts[v.mentionOff[i]:v.mentionOff[i+1]]
}
