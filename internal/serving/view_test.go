package serving

import (
	"fmt"
	"math/rand"
	"testing"

	"cnprobase/internal/taxonomy"
)

// fixture assembles a store + mention index with the shapes queries
// must survive: multi-source reinforced edges, subconcept chains, a
// diamond, an ambiguous mention, disconnected nodes, island marks.
func fixture(tb testing.TB) (*taxonomy.Taxonomy, *taxonomy.MentionIndex) {
	tb.Helper()
	tax := taxonomy.New()
	mentions := taxonomy.NewMentionIndex()
	add := func(hypo, hyper string, src taxonomy.Source, score float64) {
		tb.Helper()
		if err := tax.AddIsA(hypo, hyper, src, score); err != nil {
			tb.Fatalf("AddIsA(%q, %q): %v", hypo, hyper, err)
		}
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("实体%02d（人物）", i)
		tax.MarkEntity(id)
		add(id, fmt.Sprintf("概念%d", i%5), taxonomy.SourceBracket, 0.5+float64(i)/100)
		if i%3 == 0 { // reinforce: bump count, extend source bits
			add(id, fmt.Sprintf("概念%d", i%5), taxonomy.SourceTag, 0.9)
		}
		if i%4 == 0 {
			add(id, fmt.Sprintf("概念%d", (i+1)%5), taxonomy.SourceAbstract, 0.7)
		}
		mentions.Add(fmt.Sprintf("实体%02d", i), id)
		mentions.Add(id, id)
	}
	mentions.Add("实体00", "实体07（人物）") // ambiguous mention
	for i := 0; i < 5; i++ {
		add(fmt.Sprintf("概念%d", i), "顶层概念", taxonomy.SourceMorph, 1)
	}
	// Diamond: 实体00 → 概念0/概念1 → 顶层概念.
	// Disconnected marked nodes with no edges at all.
	tax.MarkEntity("孤岛实体（测试）")
	tax.MarkConcept("孤岛概念")
	tax.Finalize()
	return tax, mentions
}

// requireViewMatchesStore pins every View query against its Taxonomy /
// MentionIndex counterpart on a finalized store.
func requireViewMatchesStore(tb testing.TB, v *View, tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) {
	tb.Helper()
	nodes := tax.Nodes()
	if got := v.Nodes(); fmt.Sprint(got) != fmt.Sprint(nodes) {
		tb.Fatalf("Nodes() = %v, want %v", got, nodes)
	}
	if v.EdgeCount() != tax.EdgeCount() {
		tb.Fatalf("EdgeCount() = %d, want %d", v.EdgeCount(), tax.EdgeCount())
	}
	if v.Stats() != tax.ComputeStats() {
		tb.Fatalf("Stats() = %+v, want %+v", v.Stats(), tax.ComputeStats())
	}
	probe := append([]string{"不存在的节点", ""}, nodes...)
	for _, n := range probe {
		if got, want := v.Kind(n), tax.Kind(n); got != want {
			tb.Fatalf("Kind(%q) = %d, want %d", n, got, want)
		}
		if got, want := v.Hypernyms(n), tax.Hypernyms(n); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("Hypernyms(%q) = %v, want %v", n, got, want)
		}
		for _, limit := range []int{0, 1, 2, 1000} {
			if got, want := v.Hyponyms(n, limit), tax.Hyponyms(n, limit); fmt.Sprint(got) != fmt.Sprint(want) {
				tb.Fatalf("Hyponyms(%q, %d) = %v, want %v", n, limit, got, want)
			}
			if got, want := v.RankedHypernyms(n, limit), tax.RankedHypernyms(n, limit); fmt.Sprint(got) != fmt.Sprint(want) {
				tb.Fatalf("RankedHypernyms(%q, %d) = %v, want %v", n, limit, got, want)
			}
			if got, want := v.RankedHyponyms(n, limit), tax.RankedHyponyms(n, limit); fmt.Sprint(got) != fmt.Sprint(want) {
				tb.Fatalf("RankedHyponyms(%q, %d) = %v, want %v", n, limit, got, want)
			}
		}
		if got, want := v.HyponymCount(n), tax.HyponymCount(n); got != want {
			tb.Fatalf("HyponymCount(%q) = %d, want %d", n, got, want)
		}
		if got, want := v.Ancestors(n), tax.Ancestors(n); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("Ancestors(%q) = %v, want %v", n, got, want)
		}
		if got, want := v.Lookup(n), mentions.Lookup(n); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("Lookup(%q) = %v, want %v", n, got, want)
		}
	}
	// Pairwise queries over a bounded sample (full cross product would
	// be quadratic in graph size).
	sample := nodes
	if len(sample) > 25 {
		sample = sample[:25]
	}
	pairs := append([][2]string{{"不存在", "也不存在"}, {"顶层概念", "顶层概念"}}, cross(sample)...)
	for _, p := range pairs {
		a, b := p[0], p[1]
		if got, want := v.HasIsA(a, b), tax.HasIsA(a, b); got != want {
			tb.Fatalf("HasIsA(%q, %q) = %v, want %v", a, b, got, want)
		}
		gotE, gotOK := v.EdgeOf(a, b)
		wantE, wantOK := tax.EdgeOf(a, b)
		if gotOK != wantOK || gotE != wantE {
			tb.Fatalf("EdgeOf(%q, %q) = %+v/%v, want %+v/%v", a, b, gotE, gotOK, wantE, wantOK)
		}
		if got, want := v.TypicalityOfConcept(a, b), tax.TypicalityOfConcept(a, b); got != want {
			tb.Fatalf("TypicalityOfConcept(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := v.TypicalityOfInstance(a, b), tax.TypicalityOfInstance(a, b); got != want {
			tb.Fatalf("TypicalityOfInstance(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := v.IsAncestor(a, b), tax.IsAncestor(a, b); got != want {
			tb.Fatalf("IsAncestor(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := v.PathToAncestor(a, b), tax.PathToAncestor(a, b); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("PathToAncestor(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := v.CommonAncestors(a, b), tax.CommonAncestors(a, b); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("CommonAncestors(%q, %q) = %v, want %v", a, b, got, want)
		}
	}
	// Mention table: every known mention resolves identically (probe
	// includes surface forms that are not node names).
	for i := 0; i < 30; i++ {
		m := fmt.Sprintf("实体%02d", i)
		if got, want := v.Lookup(m), mentions.Lookup(m); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("Lookup(%q) = %v, want %v", m, got, want)
		}
		if got, want := v.Lookup("  "+m+" "), mentions.Lookup("  "+m+" "); fmt.Sprint(got) != fmt.Sprint(want) {
			tb.Fatalf("Lookup(padded %q) = %v, want %v", m, got, want)
		}
	}
}

func cross(nodes []string) [][2]string {
	var out [][2]string
	for _, a := range nodes {
		for _, b := range nodes {
			out = append(out, [2]string{a, b})
		}
	}
	return out
}

func TestCompileMatchesStore(t *testing.T) {
	tax, mentions := fixture(t)
	requireViewMatchesStore(t, Compile(tax, mentions), tax, mentions)
}

// TestCompileMatchesStoreRandomized fuzzes the equivalence over random
// graphs: random edges (including reinforcements), random kind marks,
// random mentions — every query must agree with the finalized store.
func TestCompileMatchesStoreRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tax := taxonomy.NewSharded(1 + rng.Intn(8))
		mentions := taxonomy.NewMentionIndex()
		nNodes := 20 + rng.Intn(40)
		name := func(i int) string { return fmt.Sprintf("节点%02d", i) }
		for i := 0; i < nNodes; i++ {
			switch rng.Intn(3) {
			case 0:
				tax.MarkEntity(name(i))
			case 1:
				tax.MarkConcept(name(i))
			}
		}
		for tries := 0; tries < nNodes*3; tries++ {
			a, b := rng.Intn(nNodes), rng.Intn(nNodes)
			if a == b {
				continue
			}
			src := taxonomy.Source(1 << rng.Intn(6))
			_ = tax.AddIsA(name(a), name(b), src, rng.Float64())
		}
		for tries := 0; tries < nNodes; tries++ {
			mentions.Add(fmt.Sprintf("提及%d", rng.Intn(nNodes/2+1)), name(rng.Intn(nNodes)))
		}
		tax.Finalize()
		v := Compile(tax, mentions)
		requireViewMatchesStore(t, v, tax, mentions)
	}
}

// TestBuilderMatchesCompile pins the direct path: feeding a Builder
// the store's exported content produces a View indistinguishable from
// Compile.
func TestBuilderMatchesCompile(t *testing.T) {
	tax, mentions := fixture(t)
	b := NewBuilder()
	for _, n := range tax.Nodes() {
		b.ImportKind(n, tax.Kind(n)) // includes KindUnknown no-ops
	}
	for _, e := range tax.Edges() {
		if err := b.InsertEdge(e); err != nil {
			t.Fatalf("InsertEdge: %v", err)
		}
	}
	for _, entry := range mentions.ExportPartitions(3) {
		for _, me := range entry {
			b.AddMentionEntry(me)
		}
	}
	requireViewMatchesStore(t, b.Build(), tax, mentions)
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if err := b.InsertEdge(taxonomy.Edge{Hypo: "", Hyper: "x"}); err == nil {
		t.Error("empty hyponym accepted")
	}
	if err := b.InsertEdge(taxonomy.Edge{Hypo: "x", Hyper: "x"}); err == nil {
		t.Error("self-loop accepted")
	}
	// Overwrite semantics: a duplicate edge replaces the provenance.
	if err := b.InsertEdge(taxonomy.Edge{Hypo: "a", Hyper: "b", Sources: taxonomy.SourceTag, Score: 0.5, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertEdge(taxonomy.Edge{Hypo: "a", Hyper: "b", Sources: taxonomy.SourceBracket, Score: 0.9, Count: 7}); err != nil {
		t.Fatal(err)
	}
	v := b.Build()
	e, ok := v.EdgeOf("a", "b")
	if !ok || e.Count != 7 || e.Sources != taxonomy.SourceBracket {
		t.Fatalf("EdgeOf after overwrite = %+v/%v", e, ok)
	}
	// Blank mentions and empty IDs are dropped like MentionIndex.Add.
	b.AddMention("   ", "id")
	b.AddMention("m", "")
	if got := b.Build().MentionCount(); got != 0 {
		t.Fatalf("MentionCount = %d, want 0", got)
	}
}

// TestQueryAllocations pins the hot-path guarantee the View exists
// for: the three public API lookups allocate nothing.
func TestQueryAllocations(t *testing.T) {
	tax, mentions := fixture(t)
	v := Compile(tax, mentions)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Hypernyms", func() { _ = v.Hypernyms("实体00（人物）") }},
		{"Hyponyms", func() { _ = v.Hyponyms("概念0", 50) }},
		{"RankedHypernyms", func() { _ = v.RankedHypernyms("实体00（人物）", 0) }},
		{"RankedHyponyms", func() { _ = v.RankedHyponyms("概念0", 0) }},
		{"Lookup", func() { _ = v.Lookup("实体00") }},
		{"LookupMiss", func() { _ = v.Lookup("不存在") }},
		{"Kind", func() { _ = v.Kind("概念0") }},
		{"HasIsA", func() { _ = v.HasIsA("实体00（人物）", "概念0") }},
		{"TypicalityOfConcept", func() { _ = v.TypicalityOfConcept("实体00（人物）", "概念0") }},
		{"HyponymCount", func() { _ = v.HyponymCount("概念0") }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per op, want 0", c.name, allocs)
		}
	}
}

// TestViewNilMentions covers serving a taxonomy with no mention index
// (the cnpserver -tax path builds one, but Compile must not require it).
func TestViewNilMentions(t *testing.T) {
	tax, _ := fixture(t)
	v := Compile(tax, nil)
	if v.MentionCount() != 0 {
		t.Fatalf("MentionCount = %d, want 0", v.MentionCount())
	}
	if got := v.Lookup("实体00"); got != nil {
		t.Fatalf("Lookup on empty table = %v, want nil", got)
	}
	if fmt.Sprint(v.Hypernyms("实体00（人物）")) != fmt.Sprint(tax.Hypernyms("实体00（人物）")) {
		t.Fatal("graph queries must be unaffected by a nil mention index")
	}
}

func BenchmarkViewCompile(b *testing.B) {
	tax, mentions := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Compile(tax, mentions)
	}
}
