package serving

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"unicode/utf8"
	"unsafe"

	"cnprobase/internal/taxonomy"
)

// The v3 "view image": the View's canonical arrays serialized as
// fixed-width little-endian blocks plus interned string arenas, laid
// out so a page-aligned mapping of the snapshot file can be used as
// the View's backing storage without a decode pass.
//
// Payload layout (offsets are absolute file offsets; `base` is the
// file offset the payload starts at):
//
//	preamble (56 bytes): 7 × u64 LE —
//	    n (nodes), e (edges), m (mentions), me (mention-entity IDs),
//	    len(name arena), len(mention arena), len(mention-entity arena)
//	then 13 blocks, each preceded by zero padding up to the next
//	8-aligned file offset:
//	     1. nameOff       (n+1) × u32   name i = nameArena[off[i]:off[i+1]]
//	     2. hyperOff      (n+1) × u32   hypernym CSR offsets
//	     3. hyperIDs        e  × u32    CSR targets, ascending per node
//	     4. edgeScores      e  × u64    float64 bits
//	     5. edgeCounts      e  × u64    evidence counts (≤ MaxInt32)
//	     6. mentionStrOff (m+1) × u32   mention string offsets
//	     7. mentionOff    (m+1) × u32   mention → ID-list offsets
//	     8. mentEntOff   (me+1) × u32   ID string offsets
//	     9. kinds           n  × u8     NodeKind per node
//	    10. edgeSources     e  × u8     Source bitmask per edge
//	    11. name arena      (concatenated node names, sorted)
//	    12. mention arena   (concatenated mentions, sorted)
//	    13. mention-entity arena (concatenated ID strings)
//
// Only canonical content is stored. Everything derivable — the hyponym
// CSR, evidence totals, typicality rankings, stats — is recomputed at
// open by buildDerived, the same function the heap compile path uses,
// which is what keeps a mapped View query-identical to a compiled one.
const (
	imagePreambleLen = 56
	// maxImageElems bounds every element count so offset arithmetic
	// stays far from uint64 overflow and indexes fit in int32.
	maxImageElems = 1 << 31
)

// littleEndianHost reports whether the running machine stores integers
// little-endian — the image byte order — so numeric blocks can be
// reinterpreted in place instead of decoded.
var littleEndianHost = binary.NativeEndian.Uint16([]byte{0x12, 0x34}) == 0x3412

// imageBlockSizes returns the (element size, element count) walk of
// the 13 blocks, shared by the encoder and the parser so the two can
// never disagree about where a block lands.
func imageBlockSizes(n, e, m, me, nameLen, menLen, entLen uint64) [13][2]uint64 {
	return [13][2]uint64{
		{4, n + 1}, {4, n + 1}, {4, e}, {8, e}, {8, e},
		{4, m + 1}, {4, m + 1}, {4, me + 1}, {1, n}, {1, e},
		{1, nameLen}, {1, menLen}, {1, entLen},
	}
}

// AppendImage appends the view's canonical content to dst in the
// mappable v3 image layout and returns the extended slice. base is the
// absolute file offset the payload will land at: blocks are padded so
// their file offsets are 8-aligned, making them aligned in any
// page-aligned mapping of the file. Mentions must be valid UTF-8 (the
// mapped FindAll path matches byte-wise over the sorted table; JSON
// ingestion guarantees this, hand-built stores are checked here).
func (v *View) AppendImage(dst []byte, base uint64) ([]byte, error) {
	for _, s := range v.mentions {
		if !utf8.ValidString(s) {
			return nil, fmt.Errorf("serving: mention %q is not valid UTF-8; the mappable image requires UTF-8 mentions", s)
		}
	}
	n, e := len(v.names), len(v.hyperIDs)
	m, me := len(v.mentions), len(v.mentionEnts)
	if n >= maxImageElems || e >= maxImageElems || m >= maxImageElems || me >= maxImageElems {
		return nil, fmt.Errorf("serving: view too large for the image format")
	}
	nameLen, err := arenaLen("node name", v.names)
	if err != nil {
		return nil, err
	}
	menLen, err := arenaLen("mention", v.mentions)
	if err != nil {
		return nil, err
	}
	entLen, err := arenaLen("mention entity", v.mentionEnts)
	if err != nil {
		return nil, err
	}

	start := len(dst)
	pad := func() {
		for (base+uint64(len(dst)-start))%8 != 0 {
			dst = append(dst, 0)
		}
	}
	putU64 := func(x uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		dst = append(dst, b[:]...)
	}
	putU32 := func(x uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], x)
		dst = append(dst, b[:]...)
	}
	strOffsets := func(strs []string) {
		off := uint32(0)
		putU32(0)
		for _, s := range strs {
			off += uint32(len(s))
			putU32(off)
		}
	}

	putU64(uint64(n))
	putU64(uint64(e))
	putU64(uint64(m))
	putU64(uint64(me))
	putU64(nameLen)
	putU64(menLen)
	putU64(entLen)

	pad()
	strOffsets(v.names)
	pad()
	for _, o := range v.hyperOff {
		putU32(o)
	}
	pad()
	for _, id := range v.hyperIDs {
		putU32(id)
	}
	pad()
	for _, s := range v.edgeScores {
		putU64(math.Float64bits(s))
	}
	pad()
	for _, c := range v.edgeCounts {
		if c < 0 {
			c = 0 // defensive clamp, mirroring the stripe encoder
		}
		putU64(uint64(c))
	}
	pad()
	strOffsets(v.mentions)
	pad()
	for _, o := range v.mentionOff {
		putU32(o)
	}
	pad()
	strOffsets(v.mentionEnts)
	pad()
	for _, k := range v.kinds {
		dst = append(dst, byte(k))
	}
	pad()
	for _, s := range v.edgeSources {
		dst = append(dst, byte(s))
	}
	pad()
	for _, s := range v.names {
		dst = append(dst, s...)
	}
	pad()
	for _, s := range v.mentions {
		dst = append(dst, s...)
	}
	pad()
	for _, s := range v.mentionEnts {
		dst = append(dst, s...)
	}
	return dst, nil
}

func arenaLen(what string, strs []string) (uint64, error) {
	var total uint64
	for _, s := range strs {
		total += uint64(len(s))
	}
	if total > math.MaxUint32 {
		return 0, fmt.Errorf("serving: %s arena exceeds the 4 GiB image limit", what)
	}
	return total, nil
}

// image is a parsed v3 payload: the canonical view content, either
// aliased into the payload bytes (little-endian host, aligned blocks)
// or copy-decoded out of them.
type image struct {
	n, e, m, me int

	nameOff, hyperOff, hyperIDs           []uint32
	mentionStrOff, mentionOff, mentEntOff []uint32
	edgeScores                            []float64
	edgeCounts                            []int64
	kinds                                 []taxonomy.NodeKind
	edgeSources                           []taxonomy.Source
	nameArena, mentionArena, mentEntArena []byte
}

func (img *image) name(i int) []byte {
	return img.nameArena[img.nameOff[i]:img.nameOff[i+1]]
}
func (img *image) mention(i int) []byte {
	return img.mentionArena[img.mentionStrOff[i]:img.mentionStrOff[i+1]]
}
func (img *image) mentEnt(i int) []byte {
	return img.mentEntArena[img.mentEntOff[i]:img.mentEntOff[i+1]]
}

// parseImage slices a v3 payload into its blocks and validates every
// structural invariant a View relies on. The same parse backs
// OpenImage (aliasing) and DecodeImage (copying), so the mapped and
// rebuild paths accept exactly the same set of payloads.
func parseImage(data []byte, base uint64) (*image, error) {
	if len(data) < imagePreambleLen {
		return nil, fmt.Errorf("serving: image payload too short (%d bytes)", len(data))
	}
	var hdr [7]uint64
	for i := range hdr {
		hdr[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	n, e, m, me := hdr[0], hdr[1], hdr[2], hdr[3]
	nameLen, menLen, entLen := hdr[4], hdr[5], hdr[6]
	for _, c := range [4]uint64{n, e, m, me} {
		if c >= maxImageElems {
			return nil, fmt.Errorf("serving: image element count %d exceeds limit", c)
		}
	}
	for _, l := range [3]uint64{nameLen, menLen, entLen} {
		if l > math.MaxUint32 {
			return nil, fmt.Errorf("serving: image arena length %d exceeds limit", l)
		}
	}
	pos := uint64(imagePreambleLen)
	var spans [13][2]uint64
	for i, sz := range imageBlockSizes(n, e, m, me, nameLen, menLen, entLen) {
		pos += (8 - (base+pos)%8) % 8
		start := pos
		pos += sz[0] * sz[1]
		if pos > uint64(len(data)) {
			return nil, fmt.Errorf("serving: image truncated (need %d bytes, have %d)", pos, len(data))
		}
		spans[i] = [2]uint64{start, pos}
	}
	if pos != uint64(len(data)) {
		return nil, fmt.Errorf("serving: %d trailing bytes after image content", uint64(len(data))-pos)
	}
	blk := func(i int) []byte { return data[spans[i][0]:spans[i][1]] }

	img := &image{
		n:             int(n),
		e:             int(e),
		m:             int(m),
		me:            int(me),
		nameOff:       castU32(blk(0)),
		hyperOff:      castU32(blk(1)),
		hyperIDs:      castU32(blk(2)),
		edgeScores:    castF64(blk(3)),
		edgeCounts:    castI64(blk(4)),
		mentionStrOff: castU32(blk(5)),
		mentionOff:    castU32(blk(6)),
		mentEntOff:    castU32(blk(7)),
		kinds:         castKinds(blk(8)),
		edgeSources:   castSources(blk(9)),
		nameArena:     blk(10),
		mentionArena:  blk(11),
		mentEntArena:  blk(12),
	}
	if err := img.validate(uint32(nameLen), uint32(menLen), uint32(entLen)); err != nil {
		return nil, err
	}
	return img, nil
}

// validate rejects any payload that could make a mapped View answer
// differently from Load → Compile of the same content (or crash).
func (img *image) validate(nameLen, menLen, entLen uint32) error {
	if err := checkOffsets("node name", img.nameOff, nameLen, true); err != nil {
		return err
	}
	for i := 1; i < img.n; i++ {
		if bytes.Compare(img.name(i-1), img.name(i)) >= 0 {
			return fmt.Errorf("serving: node names not strictly ascending at %d", i)
		}
	}
	for i, k := range img.kinds {
		if k > taxonomy.KindConcept {
			return fmt.Errorf("serving: node %d: invalid kind %d", i, k)
		}
	}
	if err := checkOffsets("hypernym CSR", img.hyperOff, uint32(img.e), false); err != nil {
		return err
	}
	touched := make([]bool, img.n)
	for u := 0; u < img.n; u++ {
		lo, hi := img.hyperOff[u], img.hyperOff[u+1]
		if lo < hi {
			touched[u] = true
		}
		for j := lo; j < hi; j++ {
			id := img.hyperIDs[j]
			switch {
			case id >= uint32(img.n):
				return fmt.Errorf("serving: edge %d: hypernym ID %d out of range", j, id)
			case id == uint32(u):
				return fmt.Errorf("serving: edge %d: self-loop on node %d", j, u)
			case j > lo && id <= img.hyperIDs[j-1]:
				return fmt.Errorf("serving: node %d: hypernym IDs not strictly ascending", u)
			case img.kinds[id] == taxonomy.KindUnknown:
				// InsertEdge implicitly marks unknown hypernyms as
				// concepts, so a compiled image never carries one; a
				// crafted one would make Load and OpenMapped diverge.
				return fmt.Errorf("serving: edge %d: hypernym %d has unknown kind", j, id)
			}
			touched[id] = true
			if c := img.edgeCounts[j]; c < 0 || c > math.MaxInt32 {
				return fmt.Errorf("serving: edge %d: count %d out of range", j, c)
			}
		}
	}
	for u, ok := range touched {
		if !ok && img.kinds[u] == taxonomy.KindUnknown {
			// compile only interns marked nodes and edge endpoints.
			return fmt.Errorf("serving: node %d is unmarked and touches no edge", u)
		}
	}

	if err := checkOffsets("mention", img.mentionStrOff, menLen, true); err != nil {
		return err
	}
	for i := 0; i < img.m; i++ {
		mb := img.mention(i)
		if i > 0 && bytes.Compare(img.mention(i-1), mb) >= 0 {
			return fmt.Errorf("serving: mentions not strictly ascending at %d", i)
		}
		if !utf8.Valid(mb) {
			return fmt.Errorf("serving: mention %d is not valid UTF-8", i)
		}
		if len(bytes.TrimSpace(mb)) != len(mb) {
			return fmt.Errorf("serving: mention %d is not whitespace-trimmed", i)
		}
	}
	if err := checkOffsets("mention ID list", img.mentionOff, uint32(img.me), true); err != nil {
		return err
	}
	if err := checkOffsets("mention entity", img.mentEntOff, entLen, true); err != nil {
		return err
	}
	for i := 0; i < img.m; i++ {
		for j := img.mentionOff[i] + 1; j < img.mentionOff[i+1]; j++ {
			if bytes.Compare(img.mentEnt(int(j-1)), img.mentEnt(int(j))) >= 0 {
				return fmt.Errorf("serving: mention %d: entity IDs not strictly ascending", i)
			}
		}
	}
	return nil
}

func checkOffsets(what string, offs []uint32, total uint32, strict bool) error {
	if offs[0] != 0 {
		return fmt.Errorf("serving: %s offsets do not start at 0", what)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] || (strict && offs[i] == offs[i-1]) {
			return fmt.Errorf("serving: %s offsets not ascending at %d", what, i)
		}
	}
	if offs[len(offs)-1] != total {
		return fmt.Errorf("serving: %s offsets end at %d, want %d", what, offs[len(offs)-1], total)
	}
	return nil
}

// OpenImage builds a View directly over a v3 image payload, aliasing
// its arrays instead of decoding them: node and mention strings become
// string headers pointing into the arenas, and on little-endian hosts
// the numeric blocks are reinterpreted in place (misaligned buffers
// and big-endian hosts get a copying decode). data must stay valid and
// unmodified for the life of the returned View — snapshot.OpenMapped
// ties the mapping's lifetime to the View with a finalizer.
//
// A mapped View has no interning map, mention hash or mention trie;
// those lookups binary-search the sorted tables instead, and every
// query method keeps its 0 allocs/op behavior.
func OpenImage(data []byte, base uint64) (*View, error) {
	img, err := parseImage(data, base)
	if err != nil {
		return nil, err
	}
	v := &View{
		names:       arenaStrings(img.nameArena, img.nameOff, false),
		kinds:       img.kinds,
		hyperOff:    img.hyperOff,
		hyperIDs:    img.hyperIDs,
		edgeSources: img.edgeSources,
		edgeScores:  img.edgeScores,
		edgeCounts:  img.edgeCounts,
		mentions:    arenaStrings(img.mentionArena, img.mentionStrOff, false),
		mentionOff:  img.mentionOff,
		mentionEnts: arenaStrings(img.mentEntArena, img.mentEntOff, false),
	}
	v.buildDerived()
	return v, nil
}

// ImageContent is the logical content of an image — the same
// kind/edge/mention stream a v1/v2 stripe decoder yields — for the
// paths that rebuild mutable state (snapshot.Load) or a heap view
// (snapshot.LoadView). Everything is copied out of the input buffer.
type ImageContent struct {
	Kinds    []taxonomy.KindEntry
	Edges    []taxonomy.Edge
	Mentions []taxonomy.MentionEntry
}

// DecodeImage parses and fully materializes an image payload.
func DecodeImage(data []byte, base uint64) (*ImageContent, error) {
	img, err := parseImage(data, base)
	if err != nil {
		return nil, err
	}
	names := arenaStrings(img.nameArena, img.nameOff, true)
	out := &ImageContent{}
	for i, k := range img.kinds {
		if k != taxonomy.KindUnknown {
			out.Kinds = append(out.Kinds, taxonomy.KindEntry{Name: names[i], Kind: k})
		}
	}
	for u := 0; u < img.n; u++ {
		for j := img.hyperOff[u]; j < img.hyperOff[u+1]; j++ {
			out.Edges = append(out.Edges, taxonomy.Edge{
				Hypo:    names[u],
				Hyper:   names[img.hyperIDs[j]],
				Sources: img.edgeSources[j],
				Score:   img.edgeScores[j],
				Count:   int(img.edgeCounts[j]),
			})
		}
	}
	mentions := arenaStrings(img.mentionArena, img.mentionStrOff, true)
	ents := arenaStrings(img.mentEntArena, img.mentEntOff, true)
	for i := 0; i < img.m; i++ {
		out.Mentions = append(out.Mentions, taxonomy.MentionEntry{
			Mention: mentions[i],
			IDs:     append([]string(nil), ents[img.mentionOff[i]:img.mentionOff[i+1]]...),
		})
	}
	return out, nil
}

// arenaStrings materializes an arena's string table: headers over the
// arena bytes (copyBytes=false — zero bytes copied, the strings alias
// the arena) or full copies (copyBytes=true, for results that must
// outlive the input buffer).
func arenaStrings(arena []byte, offs []uint32, copyBytes bool) []string {
	out := make([]string, len(offs)-1)
	for i := range out {
		b := arena[offs[i]:offs[i+1]]
		if copyBytes {
			out[i] = string(b)
		} else {
			out[i] = unsafe.String(&b[0], len(b))
		}
	}
	return out
}

func castU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if littleEndianHost && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func castF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if littleEndianHost && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func castI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if littleEndianHost && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// castKinds and castSources reinterpret byte blocks as their uint8
// enum types — same size, any alignment, any endianness.
func castKinds(b []byte) []taxonomy.NodeKind {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*taxonomy.NodeKind)(unsafe.Pointer(&b[0])), len(b))
}

func castSources(b []byte) []taxonomy.Source {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*taxonomy.Source)(unsafe.Pointer(&b[0])), len(b))
}
