//go:build !race

package serving

// raceEnabled reports whether the race detector is on.
const raceEnabled = false
