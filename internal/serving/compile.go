package serving

import (
	"fmt"
	"sort"
	"strings"

	"cnprobase/internal/taxonomy"
)

// Compile freezes the current contents of a build store (plus its
// mention index, which may be nil) into an immutable View. The View
// answers every query exactly like the store would after Finalize —
// adjacency in canonical sorted order, typicality from the same
// evidence counts — regardless of whether Finalize has been called.
// Later writes to the store are not reflected; compile again and swap.
func Compile(t *taxonomy.Taxonomy, m *taxonomy.MentionIndex) *View {
	marks := make(map[string]taxonomy.NodeKind)
	for _, n := range t.Nodes() {
		if k := t.Kind(n); k != taxonomy.KindUnknown {
			marks[n] = k
		}
	}
	var mentions []taxonomy.MentionEntry
	if m != nil {
		mentions = m.ExportPartitions(1)[0]
	}
	return compile(marks, t.Edges(), mentions)
}

// Builder accumulates raw taxonomy content — kind marks, edges with
// provenance, mention entries — and compiles it into a View without
// ever materializing the mutable store. It is the direct snapshot →
// View decode path: the methods mirror the store's deserialization
// accessors (ImportKind, InsertEdge, MentionIndex.Add) including their
// validation and overwrite semantics. A Builder is not safe for
// concurrent use.
type Builder struct {
	marks    map[string]taxonomy.NodeKind
	edges    []taxonomy.Edge
	edgeAt   map[[2]string]int
	mentions []taxonomy.MentionEntry
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		marks:  make(map[string]taxonomy.NodeKind),
		edgeAt: make(map[[2]string]int),
	}
}

// ImportKind records an explicit node kind, mirroring
// Taxonomy.ImportKind: later calls overwrite, and KindUnknown removes
// the mark (Unknown is the absence of a kind).
func (b *Builder) ImportKind(name string, k taxonomy.NodeKind) {
	if name == "" {
		return
	}
	if k == taxonomy.KindUnknown {
		delete(b.marks, name)
		return
	}
	b.marks[name] = k
}

// InsertEdge records an edge verbatim, mirroring Taxonomy.InsertEdge:
// full provenance is kept, an existing (Hypo, Hyper) pair is
// overwritten, empty nodes and self-loops are rejected.
func (b *Builder) InsertEdge(e taxonomy.Edge) error {
	if e.Hypo == "" || e.Hyper == "" {
		return fmt.Errorf("serving: empty node in isA(%q, %q)", e.Hypo, e.Hyper)
	}
	if e.Hypo == e.Hyper {
		return fmt.Errorf("serving: self-loop isA(%q, %q)", e.Hypo, e.Hyper)
	}
	k := [2]string{e.Hypo, e.Hyper}
	if i, ok := b.edgeAt[k]; ok {
		b.edges[i] = e
		return nil
	}
	b.edgeAt[k] = len(b.edges)
	b.edges = append(b.edges, e)
	return nil
}

// AddMention registers a mention → entity-ID pair, mirroring
// MentionIndex.Add: the mention is whitespace-trimmed and blank
// mentions or empty IDs are dropped. Duplicate pairs are merged at
// Build time.
func (b *Builder) AddMention(mention, entityID string) {
	mention = strings.TrimSpace(mention)
	if mention == "" || entityID == "" {
		return
	}
	b.mentions = append(b.mentions, taxonomy.MentionEntry{Mention: mention, IDs: []string{entityID}})
}

// AddMentionEntry registers a whole mention entry (one mention with
// its ID list) — the bulk form snapshot decoding uses.
func (b *Builder) AddMentionEntry(e taxonomy.MentionEntry) {
	e.Mention = strings.TrimSpace(e.Mention)
	if e.Mention == "" || len(e.IDs) == 0 {
		return
	}
	b.mentions = append(b.mentions, e)
}

// Build compiles the accumulated content into a View. The Builder can
// keep accumulating and Build again; each call compiles the content
// seen so far.
func (b *Builder) Build() *View {
	marks := make(map[string]taxonomy.NodeKind, len(b.marks))
	for n, k := range b.marks {
		marks[n] = k
	}
	return compile(marks, append([]taxonomy.Edge(nil), b.edges...), b.mentions)
}

// compile is the shared freeze: from explicit kind marks, a deduplicated
// edge list and raw mention entries, produce the interned CSR view.
// The marks map is consumed (implicit hypernym-concept marks are added
// to it); edges is consumed (sorted in place).
func compile(marks map[string]taxonomy.NodeKind, edges []taxonomy.Edge, mentionEntries []taxonomy.MentionEntry) *View {
	// ---- intern: node set = explicit marks ∪ edge endpoints ----
	nameSet := make(map[string]struct{}, len(marks)+len(edges))
	for n := range marks {
		nameSet[n] = struct{}{}
	}
	for i := range edges {
		nameSet[edges[i].Hypo] = struct{}{}
		nameSet[edges[i].Hyper] = struct{}{}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	ids := make(map[string]uint32, len(names))
	for i, n := range names {
		ids[n] = uint32(i)
	}
	n := len(names)

	// ---- kinds: explicit marks, then the store's implicit rule that a
	// hypernym whose kind is unknown is a concept ----
	kinds := make([]taxonomy.NodeKind, n)
	for name, k := range marks {
		kinds[ids[name]] = k
	}
	for i := range edges {
		if id := ids[edges[i].Hyper]; kinds[id] == taxonomy.KindUnknown {
			kinds[id] = taxonomy.KindConcept
		}
	}

	// ---- hypernym CSR (canonical order: IDs ascend iff names ascend) ----
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Hypo != edges[j].Hypo {
			return edges[i].Hypo < edges[j].Hypo
		}
		return edges[i].Hyper < edges[j].Hyper
	})
	e := len(edges)
	v := &View{
		names:       names,
		ids:         ids,
		kinds:       kinds,
		hyperOff:    make([]uint32, n+1),
		hyperIDs:    make([]uint32, e),
		edgeSources: make([]taxonomy.Source, e),
		edgeScores:  make([]float64, e),
		edgeCounts:  make([]int64, e),
	}
	for i := range edges {
		v.hyperOff[ids[edges[i].Hypo]+1]++
	}
	for i := 0; i < n; i++ {
		v.hyperOff[i+1] += v.hyperOff[i]
	}
	for i := range edges {
		v.hyperIDs[i] = ids[edges[i].Hyper] // edges sorted by (hypo, hyper): flat order IS CSR order
		v.edgeSources[i] = edges[i].Sources
		v.edgeScores[i] = edges[i].Score
		v.edgeCounts[i] = int64(edges[i].Count)
	}
	v.buildDerived()

	// ---- flat sorted mention table ----
	sort.Slice(mentionEntries, func(i, j int) bool {
		return mentionEntries[i].Mention < mentionEntries[j].Mention
	})
	v.mentionAt = make(map[string]uint32)
	for i := 0; i < len(mentionEntries); {
		j := i
		var idList []string
		for ; j < len(mentionEntries) && mentionEntries[j].Mention == mentionEntries[i].Mention; j++ {
			idList = append(idList, mentionEntries[j].IDs...)
		}
		sort.Strings(idList)
		v.mentionAt[mentionEntries[i].Mention] = uint32(len(v.mentions))
		v.mentions = append(v.mentions, mentionEntries[i].Mention)
		v.mentionOff = append(v.mentionOff, uint32(len(v.mentionEnts)))
		for k, id := range idList {
			if k > 0 && id == idList[k-1] { // dedupe (mention, id) pairs
				continue
			}
			v.mentionEnts = append(v.mentionEnts, id)
		}
		i = j
	}
	v.mentionOff = append(v.mentionOff, uint32(len(v.mentionEnts)))
	v.mentionDict = compileMentionDict(v.mentions)
	return v
}

// buildDerived computes everything reconstructible from the canonical
// arrays — names, kinds, the hypernym CSR and its edge evidence: the
// pre-resolved name slices, per-node evidence totals, the transposed
// hyponym CSR, the pre-sorted typicality rankings and the stats
// summary. compile calls it on the heap path and OpenImage on the
// mapped path, so the two kinds of View cannot drift apart: the
// derived state is produced by one function either way.
func (v *View) buildDerived() {
	n, e := len(v.names), len(v.hyperIDs)
	v.hyperNames = make([]string, e)
	v.hyperRank = make([]taxonomy.Scored, e)
	v.hyperTotals = make([]int64, n)
	v.hypoOff = make([]uint32, n+1)
	v.hypoIDs = make([]uint32, e)
	v.hypoNames = make([]string, e)
	v.hypoRank = make([]taxonomy.Scored, e)
	v.hypoTotals = make([]int64, n)

	for u := 0; u < n; u++ {
		for j := v.hyperOff[u]; j < v.hyperOff[u+1]; j++ {
			hyperID := v.hyperIDs[j]
			v.hyperNames[j] = v.names[hyperID]
			v.hyperTotals[u] += v.edgeCounts[j]
			v.hypoTotals[hyperID] += v.edgeCounts[j]
			v.hypoOff[hyperID+1]++
		}
	}
	for i := 0; i < n; i++ {
		v.hypoOff[i+1] += v.hypoOff[i]
	}
	// Transpose into the hyponym CSR. Scanning the flat array — which
	// is in (hypo, hyper) ascending order — and appending per-hypernym
	// keeps each segment sorted by hyponym ID.
	fill := make([]uint32, n)
	copy(fill, v.hypoOff[:n])
	hypoEdge := make([]uint32, e) // hypo-CSR position → flat edge index
	for u := 0; u < n; u++ {
		for j := v.hyperOff[u]; j < v.hyperOff[u+1]; j++ {
			hyperID := v.hyperIDs[j]
			pos := fill[hyperID]
			fill[hyperID]++
			v.hypoIDs[pos] = uint32(u)
			v.hypoNames[pos] = v.names[u]
			hypoEdge[pos] = j
		}
	}

	// ---- pre-sorted typicality rankings ----
	for id := 0; id < n; id++ {
		lo, hi := v.hyperOff[id], v.hyperOff[id+1]
		total := v.hyperTotals[id]
		for j := lo; j < hi; j++ {
			score := 0.0
			if total != 0 {
				score = float64(v.edgeCounts[j]) / float64(total)
			}
			v.hyperRank[j] = taxonomy.Scored{Node: v.hyperNames[j], Score: score}
		}
		sortScored(v.hyperRank[lo:hi])

		lo, hi = v.hypoOff[id], v.hypoOff[id+1]
		total = v.hypoTotals[id]
		for j := lo; j < hi; j++ {
			score := 0.0
			if total != 0 {
				score = float64(v.edgeCounts[hypoEdge[j]]) / float64(total)
			}
			v.hypoRank[j] = taxonomy.Scored{Node: v.hypoNames[j], Score: score}
		}
		sortScored(v.hypoRank[lo:hi])
	}

	// ---- stats (the store's ComputeStats, replayed over the frozen
	// content) ----
	v.stats = taxonomy.Stats{}
	for _, k := range v.kinds {
		switch k {
		case taxonomy.KindEntity:
			v.stats.Entities++
		case taxonomy.KindConcept:
			v.stats.Concepts++
		}
	}
	v.stats.IsARelations = e
	for u := 0; u < n; u++ {
		lo, hi := v.hyperOff[u], v.hyperOff[u+1]
		if lo == hi {
			continue
		}
		v.stats.NodesWithHypernym++
		if v.kinds[u] == taxonomy.KindConcept {
			v.stats.SubConceptIsA += int(hi - lo)
		} else {
			v.stats.EntityConceptIsA += int(hi - lo) // unmarked hyponyms behave as instances
		}
	}
}

// sortScored matches taxonomy's ranking order: descending score, ties
// broken lexicographically.
func sortScored(xs []taxonomy.Scored) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return xs[i].Node < xs[j].Node
	})
}
