package serving

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cnprobase/internal/taxonomy"
)

// findFixture builds a mention index (and matching compiled view) with
// the shapes greedy matching must handle: overlapping surfaces where
// one is a prefix of another, single-rune mentions, multi-entity
// ambiguity, and latin alongside Han.
func findFixture(t *testing.T) (*taxonomy.MentionIndex, *View) {
	t.Helper()
	tax := taxonomy.New()
	m := taxonomy.NewMentionIndex()
	add := func(mention string, ids ...string) {
		for _, id := range ids {
			tax.MarkEntity(id)
			m.Add(mention, id)
		}
	}
	add("刘德华", "刘德华（演员）", "刘德华（作家）")
	add("刘德", "刘德（武术指导）")
	add("德华", "德华（角色）")
	add("华", "华（姓氏）")
	add("忘情水", "忘情水")
	add("A股", "A股")
	add("AI", "AI（人工智能）")
	tax.Finalize()
	return m, Compile(tax, m)
}

func TestFindAllMatchesMentionIndex(t *testing.T) {
	m, v := findFixture(t)
	texts := []string{
		"",
		"刘德华演唱了忘情水。",
		"刘德里有德华。",         // longest match fails, shorter overlapping ones hit
		"华仔就是刘德华",         // single-rune mention + longer at another position
		"AI与A股都涨了",        // latin mentions
		"刘德华刘德华刘德华",       // repeats dedupe to one
		"无关文本 totally x",  // nothing matches
		"刘德",              // exact shorter surface
		"\xff\xfe刘德华\xff", // invalid UTF-8 around a valid mention
		"前缀\xe5\x88伪字节刘德华",
	}
	for _, text := range texts {
		want := m.FindAll(text)
		got := v.FindAll(text)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("FindAll(%q): view = %q, store = %q", text, got, want)
		}
	}
}

func TestFindAllRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tax := taxonomy.New()
		m := taxonomy.NewMentionIndex()
		runes := []rune("刘德华周杰伦演员歌手作品abc")
		randWord := func() string {
			n := 1 + rng.Intn(4)
			var b strings.Builder
			for i := 0; i < n; i++ {
				b.WriteRune(runes[rng.Intn(len(runes))])
			}
			return b.String()
		}
		var surfaces []string
		for i := 0; i < 30; i++ {
			w := randWord()
			id := fmt.Sprintf("%s（实体%d）", w, rng.Intn(3))
			tax.MarkEntity(id)
			m.Add(w, id)
			surfaces = append(surfaces, w)
		}
		tax.Finalize()
		v := Compile(tax, m)
		for i := 0; i < 200; i++ {
			var b strings.Builder
			for j := 0; j < 1+rng.Intn(6); j++ {
				if rng.Intn(2) == 0 {
					b.WriteString(surfaces[rng.Intn(len(surfaces))])
				} else {
					b.WriteString(randWord())
				}
				if rng.Intn(3) == 0 {
					b.WriteString("，")
				}
			}
			text := b.String()
			if want, got := m.FindAll(text), v.FindAll(text); !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d FindAll(%q): view = %q, store = %q", seed, text, got, want)
			}
		}
	}
}

// TestFindAllAppendRecycles pins the append contract: results land in
// dst, dedupe is per-call, and the returned strings are substrings of
// the input (no copies) for valid UTF-8.
func TestFindAllAppendRecycles(t *testing.T) {
	_, v := findFixture(t)
	dst := v.FindAllAppend(nil, "刘德华唱忘情水")
	if len(dst) != 2 {
		t.Fatalf("dst = %q, want 2 mentions", dst)
	}
	// Appending a second text keeps the first call's results and
	// dedupes only within the new call.
	dst = v.FindAllAppend(dst, "刘德华")
	if len(dst) != 3 || dst[2] != "刘德华" {
		t.Fatalf("dst after second append = %q", dst)
	}
	// Recycled dst reuses the backing array.
	dst = dst[:0]
	dst = v.FindAllAppend(dst, "忘情水")
	if len(dst) != 1 || dst[0] != "忘情水" {
		t.Fatalf("recycled dst = %q", dst)
	}
}

func TestFindAllAppendAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	_, v := findFixture(t)
	text := "刘德华演唱了忘情水，AI与A股都涨了。"
	var dst []string
	for i := 0; i < 4; i++ { // warm the pool and dst
		dst = v.FindAllAppend(dst[:0], text)
	}
	allocs := testing.AllocsPerRun(200, func() {
		dst = v.FindAllAppend(dst[:0], text)
	})
	if allocs != 0 {
		t.Fatalf("FindAllAppend allocates %.1f allocs/op, want 0", allocs)
	}
}
