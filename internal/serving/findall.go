package serving

import (
	"sync"
	"unicode/utf8"

	"cnprobase/internal/trie"
)

// Text scanning over the view's mention table — the primitive the
// conceptualization and QA engines run on. The mentions are compiled
// into a frozen arena trie once (compile does it), so FindAll answers
// exactly like MentionIndex.FindAll on the same dictionary: greedy
// longest-match from each rune position, distinct surfaces in
// first-occurrence order. Like every other View query it takes no
// locks, and the append form allocates nothing on the steady path.

// findScratch is the pooled per-call state of FindAllAppend: the
// decoded rune buffer and the parallel byte-offset table that lets
// matched spans be returned as substrings of the input.
type findScratch struct {
	rs   []rune
	offs []int
}

var findPool = sync.Pool{New: func() any { return new(findScratch) }}

// FindAll scans text and returns the distinct mentions found, using
// greedy longest-match from each position — exactly like
// MentionIndex.FindAll over the same mention set. Nil when nothing
// matches.
func (v *View) FindAll(text string) []string { return v.FindAllAppend(nil, text) }

// FindAllAppend is FindAll in append style: found mentions are
// appended to dst (which may be a recycled scratch slice) and the
// extended slice is returned. Each appended mention is a byte-offset
// substring of text, so a steady-state caller with a warm dst
// allocates nothing. Deduplication applies to the mentions appended by
// this call, not to dst's prior contents.
func (v *View) FindAllAppend(dst []string, text string) []string {
	if len(v.mentions) == 0 || text == "" {
		return dst
	}
	sc := findPool.Get().(*findScratch)
	rs, offs := sc.rs[:0], sc.offs[:0]
	clean := true // no invalid UTF-8 seen
	for bi, r := range text {
		if r == utf8.RuneError {
			clean = clean && validRuneAt(text, bi)
		}
		rs = append(rs, r)
		offs = append(offs, bi)
	}
	offs = append(offs, len(text))
	base := len(dst)
	for i := 0; i < len(rs); {
		l := v.mentionDict.LongestFrom(rs, i)
		if l == 0 {
			i++
			continue
		}
		w := text[offs[i]:offs[i+l]]
		if !clean {
			// Invalid input bytes decode to U+FFFD; re-encode the runes
			// so the result matches MentionIndex.FindAll byte for byte.
			w = string(rs[i : i+l])
		}
		if !containsString(dst[base:], w) {
			dst = append(dst, w)
		}
		i += l
	}
	sc.rs, sc.offs = rs, offs
	findPool.Put(sc)
	return dst
}

// validRuneAt reports whether the rune starting at byte offset i of s
// is a well-formed encoding (a literal U+FFFD is valid; a decode error
// is not).
func validRuneAt(s string, i int) bool {
	r, size := utf8.DecodeRuneInString(s[i:])
	return !(r == utf8.RuneError && size == 1)
}

// containsString reports whether xs contains w. Found-mention counts
// per text are tiny, so a linear scan beats a map (and allocates
// nothing).
func containsString(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}

// compileMentionDict builds the frozen mention trie FindAll scans.
func compileMentionDict(mentions []string) *trie.Trie {
	d := trie.New()
	for _, m := range mentions {
		d.Insert(m)
	}
	d.Freeze()
	return d
}
