package serving

import (
	"sync"
	"unicode/utf8"

	"cnprobase/internal/trie"
)

// Text scanning over the view's mention table — the primitive the
// conceptualization and QA engines run on. The mentions are compiled
// into a frozen arena trie once (compile does it), so FindAll answers
// exactly like MentionIndex.FindAll on the same dictionary: greedy
// longest-match from each rune position, distinct surfaces in
// first-occurrence order. Like every other View query it takes no
// locks, and the append form allocates nothing on the steady path.

// findScratch is the pooled per-call state of FindAllAppend: the
// decoded rune buffer, the parallel byte-offset table that lets
// matched spans be returned as substrings of the input, and the
// re-encoding buffer the mapped (trie-free) matcher compares with.
type findScratch struct {
	rs   []rune
	offs []int
	p    []byte
}

var findPool = sync.Pool{New: func() any { return new(findScratch) }}

// FindAll scans text and returns the distinct mentions found, using
// greedy longest-match from each position — exactly like
// MentionIndex.FindAll over the same mention set. Nil when nothing
// matches.
func (v *View) FindAll(text string) []string { return v.FindAllAppend(nil, text) }

// FindAllAppend is FindAll in append style: found mentions are
// appended to dst (which may be a recycled scratch slice) and the
// extended slice is returned. Each appended mention is a byte-offset
// substring of text, so a steady-state caller with a warm dst
// allocates nothing. Deduplication applies to the mentions appended by
// this call, not to dst's prior contents.
//
//cnp:noalloc
func (v *View) FindAllAppend(dst []string, text string) []string {
	if len(v.mentions) == 0 || text == "" {
		return dst
	}
	sc := findPool.Get().(*findScratch)
	rs, offs := sc.rs[:0], sc.offs[:0]
	clean := true // no invalid UTF-8 seen
	for bi, r := range text {
		if r == utf8.RuneError {
			clean = clean && validRuneAt(text, bi)
		}
		rs = append(rs, r)
		offs = append(offs, bi)
	}
	offs = append(offs, len(text))
	base := len(dst)
	for i := 0; i < len(rs); {
		var l int
		if v.mentionDict != nil {
			l = v.mentionDict.LongestFrom(rs, i)
		} else {
			l, sc.p = v.longestMentionFrom(rs, i, sc.p[:0])
		}
		if l == 0 {
			i++
			continue
		}
		w := text[offs[i]:offs[i+l]]
		if !clean {
			// Invalid input bytes decode to U+FFFD; re-encode the runes
			// so the result matches MentionIndex.FindAll byte for byte.
			//cnp:allow noallochot (cold path: only texts carrying invalid UTF-8)
			w = string(rs[i : i+l])
		}
		if !containsString(dst[base:], w) {
			dst = append(dst, w)
		}
		i += l
	}
	sc.rs, sc.offs = rs, offs
	findPool.Put(sc)
	return dst
}

// validRuneAt reports whether the rune starting at byte offset i of s
// is a well-formed encoding (a literal U+FFFD is valid; a decode error
// is not).
//
//cnp:noalloc
func validRuneAt(s string, i int) bool {
	r, size := utf8.DecodeRuneInString(s[i:])
	return !(r == utf8.RuneError && size == 1)
}

// containsString reports whether xs contains w. Found-mention counts
// per text are tiny, so a linear scan beats a map (and allocates
// nothing).
//
//cnp:noalloc
func containsString(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}

// longestMentionFrom is the trie-free greedy matcher of mapped views:
// the length (in runes) of the longest mention starting at rs[start],
// found by narrowing a byte-prefix range over the sorted mention
// table, one rune at a time. p is a reusable encoding buffer; the
// (possibly grown) buffer is returned for the pool.
//
// Mapped images require valid-UTF-8 mentions, so byte order over the
// table equals decoded-rune order and this scan matches
// trie.LongestFrom exactly — including on text whose invalid bytes
// decoded to U+FFFD: the runes re-encode to valid bytes before any
// comparison, just as trie.Insert/LongestFrom operate on runes.
//
//cnp:noalloc
func (v *View) longestMentionFrom(rs []rune, start int, p []byte) (int, []byte) {
	lo, hi := 0, len(v.mentions)
	best := 0
	for i := start; i < len(rs) && lo < hi; i++ {
		p = utf8.AppendRune(p, rs[i])
		lo, hi = prefixRange(v.mentions, lo, hi, p)
		if lo == hi {
			break
		}
		if len(v.mentions[lo]) == len(p) {
			// The range minimum carries the full prefix and has equal
			// length: it IS the prefix — a terminal in trie terms.
			best = i - start + 1
		}
	}
	return best, p
}

// prefixRange narrows [lo, hi) — a range of the ascending table
// already known to share p's previous prefix — to the entries carrying
// the full prefix p. Hand-rolled binary searches (no sort.Search
// closures) keep the scan at 0 allocs/op.
//
//cnp:noalloc
func prefixRange(xs []string, lo, hi int, p []byte) (int, int) {
	l, h := lo, hi // first entry not below the prefix
	for l < h {
		mid := int(uint(l+h) >> 1)
		if prefixCompare(xs[mid], p) < 0 {
			l = mid + 1
		} else {
			h = mid
		}
	}
	newLo := l
	h = hi // first entry above every p-prefixed string
	for l < h {
		mid := int(uint(l+h) >> 1)
		if prefixCompare(xs[mid], p) <= 0 {
			l = mid + 1
		} else {
			h = mid
		}
	}
	return newLo, l
}

// prefixCompare orders s against the prefix p: negative when s sorts
// before every string with prefix p, 0 when s carries the prefix,
// positive when it sorts after.
//
//cnp:noalloc
func prefixCompare(s string, p []byte) int {
	n := len(s)
	if len(p) < n {
		n = len(p)
	}
	for i := 0; i < n; i++ {
		if s[i] != p[i] {
			if s[i] < p[i] {
				return -1
			}
			return 1
		}
	}
	if len(s) < len(p) {
		return -1
	}
	return 0
}

// compileMentionDict builds the frozen mention trie FindAll scans.
func compileMentionDict(mentions []string) *trie.Trie {
	d := trie.New()
	for _, m := range mentions {
		d.Insert(m)
	}
	d.Freeze()
	return d
}
