package analysis

import "testing"

// Each fixture exercises one analyzer's positive and negative space;
// the `// want` markers in testdata/src are the goldens.

func TestNoAllocHotFixture(t *testing.T) {
	runFixture(t, "example.com/noalloc", NoAllocHot)
}

func TestViewMutFixture(t *testing.T) {
	runFixture(t, "example.com/viewmutuse", ViewMut)
}

func TestDurableSyncStrictFixture(t *testing.T) {
	runFixture(t, "example.com/internal/wal", DurableSync)
}

func TestDurableSyncLenientFixture(t *testing.T) {
	runFixture(t, "example.com/fileutil", DurableSync)
}

func TestJSONErrFixture(t *testing.T) {
	runFixture(t, "example.com/handlers", JSONErr)
}

func TestJSONErrExemptsResilience(t *testing.T) {
	runFixture(t, "example.com/internal/resilience", JSONErr, BareServe)
}

func TestBareServeFixture(t *testing.T) {
	runFixture(t, "example.com/servers", BareServe)
}

func TestFieldAlignFixture(t *testing.T) {
	runFixture(t, "example.com/internal/serving", FieldAlign)
}

// TestRepoIsClean is the negative corpus over the real tree: the
// annotated hot paths, the durability planes, and every cmd must stay
// diagnostic-free. A regression here is exactly what CI's cnpvet step
// reports.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	requireClean(t, "./...")
}
