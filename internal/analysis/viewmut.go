package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// servingPkgPath is the package whose View type viewmut guards.
const servingPkgPath = "cnprobase/internal/serving"

// viewBuildFuncs are the only functions inside internal/serving allowed
// to write View fields: the compile path that constructs a fresh,
// heap-backed View before it is published.
var viewBuildFuncs = map[string]bool{
	"compile":      true,
	"buildDerived": true,
}

// ViewMut flags writes through serving.View backing slices. A View
// served from a memory-mapped snapshot aliases PROT_READ pages: any
// store through a slice returned by its query methods (Hypernyms,
// Hyponyms, Nodes, ...) is a guaranteed SIGSEGV in production, and on
// a heap-backed View it silently corrupts the shared immutable
// taxonomy. Outside internal/serving the analyzer taints every slice
// obtained from a View method (directly or via intermediate locals)
// and flags element assignment, ++/--, compound assignment, use as a
// copy destination or append first-argument, and handing the slice to
// an in-place sorter. Inside internal/serving it flags View field
// writes anywhere but the compile/buildDerived construction path.
var ViewMut = &Analyzer{
	Name: "viewmut",
	Doc:  "flag writes through serving.View backing slices (mapped views are PROT_READ)",
	Run:  runViewMut,
}

func runViewMut(pass *Pass) error {
	if pass.Pkg.Path() == servingPkgPath {
		runViewMutInternal(pass)
		return nil
	}
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		checkViewTaint(pass, fd)
	})
	return nil
}

// runViewMutInternal checks internal/serving itself: View fields may
// only be assigned in the construction path.
func runViewMutInternal(pass *Pass) {
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if viewBuildFuncs[fd.Name.Name] {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range st.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if tv, ok := pass.Info.Types[sel.X]; ok && namedTypeIs(tv.Type, servingPkgPath, "View") {
					pass.Report(lhs.Pos(),
						"write to View field %s outside the compile/buildDerived construction path", sel.Sel.Name)
				}
			}
			return true
		})
	})
}

// checkViewTaint runs a simple function-local taint pass: slices that
// flow out of serving.View method calls are tainted, taint propagates
// through := / = to plain locals and through re-slicing, and any
// mutating use of a tainted value is flagged.
func checkViewTaint(pass *Pass, fd *ast.FuncDecl) {
	tainted := make(map[*types.Var]bool)

	fromView := func(expr ast.Expr) bool {
		switch e := ast.Unparen(expr).(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, e)
			if fn == nil {
				return false
			}
			sig := fn.Type().(*types.Signature)
			return sig.Recv() != nil && namedTypeIs(sig.Recv().Type(), servingPkgPath, "View")
		case *ast.Ident:
			v, _ := pass.Info.Uses[e].(*types.Var)
			return v != nil && tainted[v]
		case *ast.SliceExpr:
			return false // handled by the recursive call below
		}
		return false
	}
	// taintSource also follows re-slices of tainted values: v[1:] shares
	// the backing array.
	var taintSource func(expr ast.Expr) bool
	taintSource = func(expr ast.Expr) bool {
		if fromView(expr) {
			return true
		}
		if se, ok := ast.Unparen(expr).(*ast.SliceExpr); ok {
			return taintSource(se.X)
		}
		return false
	}
	isSliceType := func(expr ast.Expr) bool {
		tv, ok := pass.Info.Types[expr]
		if !ok || tv.Type == nil {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice
	}

	// Pass 1: propagate taint through assignments until fixpoint. The
	// loop bounds at the assignment count, which is plenty for
	// function-local chains.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !taintSource(st.Rhs[i]) {
					continue
				}
				v, ok := pass.Info.Defs[id].(*types.Var)
				if !ok {
					v, ok = pass.Info.Uses[id].(*types.Var)
				}
				if ok && !tainted[v] {
					tainted[v] = true
					changed = true
				}
			}
			return true
		})
	}

	// Pass 2: flag mutating uses of tainted values.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if ok && isSliceType(ix.X) && taintSource(ix.X) {
					pass.Report(lhs.Pos(), "write through a serving.View backing slice (mapped views are PROT_READ)")
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(st.X).(*ast.IndexExpr); ok && isSliceType(ix.X) && taintSource(ix.X) {
				pass.Report(st.Pos(), "write through a serving.View backing slice (mapped views are PROT_READ)")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && isBuiltinIdent(pass.Info, id) {
				switch id.Name {
				case "copy":
					if len(st.Args) == 2 && taintSource(st.Args[0]) {
						pass.Report(st.Pos(), "copy into a serving.View backing slice (mapped views are PROT_READ)")
					}
				case "append":
					if len(st.Args) > 0 && taintSource(st.Args[0]) {
						pass.Report(st.Pos(), "append to a serving.View backing slice may write into mapped memory")
					}
				}
				return true
			}
			if fn := calleeFunc(pass.Info, st); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sort" && strings.HasPrefix(fn.Name(), "S") {
				// sort.Sort / sort.Slice / sort.Strings / sort.Search —
				// Search is read-only, skip it.
				if fn.Name() != "Search" && fn.Name() != "SearchInts" &&
					fn.Name() != "SearchStrings" && fn.Name() != "SearchFloat64s" {
					for _, arg := range st.Args {
						if isSliceType(arg) && taintSource(arg) {
							pass.Report(st.Pos(), "in-place sort of a serving.View backing slice (mapped views are PROT_READ)")
						}
					}
				}
			}
		}
		return true
	})
}
