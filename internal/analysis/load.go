package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns in dir
// and returns every reported package (dependencies included).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves import paths
// through compiler export data files (as produced by go list -export),
// with importMap applied first (the vettool protocol's vendor map).
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo returns a types.Info with every map the analyzers read.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypeCheck parses and type-checks one package from explicit file
// paths, resolving imports through export data. importMap may be nil.
func TypeCheck(fset *token.FileSet, importPath string, goFiles []string,
	exports, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports, importMap)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  importPath,
		Dir:   filepath.Dir(goFiles[0]),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load resolves the package patterns in dir (the standalone cnpvet
// mode), type-checks every matched package from source against its
// dependencies' export data, and returns them sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range targets {
		paths := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			paths[i] = filepath.Join(p.Dir, name)
		}
		pkg, err := TypeCheck(fset, p.ImportPath, paths, exports, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir type-checks the single fixture package at srcRoot/pkgPath,
// giving it pkgPath as its import path (so path-scoped analyzers see
// the path the fixture claims). Fixtures live under testdata, which
// the go tool never lists; imports are resolved by go-listing the
// fixture's imports from moduleDir, so fixtures may import both the
// standard library and this module's packages.
func LoadDir(moduleDir, srcRoot, pkgPath string) (*Package, error) {
	srcDir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(srcDir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", srcDir)
	}
	imports := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for path := range imports {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports, nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  pkgPath,
		Dir:   srcDir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
