// Package analysis is a self-contained static-analysis framework plus
// the cnpvet analyzer suite that mechanically enforces this repo's
// cross-cutting invariants:
//
//   - noallochot:  no allocation-inducing constructs in functions
//     annotated //cnp:noalloc (the zero-alloc query and segmentation
//     hot paths)
//   - viewmut:     no writes through serving.View backing slices —
//     mapped views alias PROT_READ memory, so such a write is a
//     guaranteed SIGSEGV in production
//   - durablesync: no unchecked Sync/Close/Rename/Truncate errors on
//     write paths, and no rename without a directory fsync — the WAL
//     and snapshot durability contract
//   - jsonerr:     handlers answer errors only through
//     resilience.WriteJSONError (the uniform JSON error contract)
//   - bareserve:   no bare http listeners outside internal/resilience
//     (every listener must carry the hardened timeouts)
//   - fieldalign:  structs in the serving/api/wal planes carry no
//     avoidable padding
//
// The framework mirrors the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library: packages are loaded via `go list -export -deps -json` and
// type-checked against compiler export data, so the suite needs no
// dependencies beyond the Go toolchain itself. cmd/cnpvet is the
// driver; it runs standalone (cnpvet ./...) and as a vettool
// (go vet -vettool=$(which cnpvet) ./...). docs/ANALYSIS.md documents
// each invariant, the annotations, and the suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package through its Pass and reports findings via
// Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cnp:allow suppression comments.
	Name string
	// Doc is the one-line description shown by cnpvet -help.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow  map[string]map[int][]string // filename → line → allowed analyzer names
	report func(Diagnostic)
}

// Report records a finding at pos unless a //cnp:allow comment on the
// same or the preceding line suppresses this analyzer there.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// allowPrefix introduces a suppression comment: //cnp:allow name[,name]
// optionally followed by a justification. It applies to the line it is
// on and the line below it.
const allowPrefix = "//cnp:allow"

// annotationPrefix marks hot-path annotations: //cnp:noalloc on a
// function's doc comment opts it into the noallochot analyzer.
const annotationPrefix = "//cnp:"

// buildAllowIndex scans every comment in the files for //cnp:allow
// markers.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	idx := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				if i := strings.IndexAny(rest, " \t("); i >= 0 {
					rest = rest[:i]
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(rest, ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return idx
}

// FuncAnnotated reports whether fn's doc comment carries the
// //cnp:<name> annotation (e.g. //cnp:noalloc).
func FuncAnnotated(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, annotationPrefix)
		if !ok {
			continue
		}
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			rest = rest[:i]
		}
		if rest == name {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to the package and returns the
// collected findings sorted by position. Test files (*_test.go) are
// excluded from analysis: the invariants guard production code paths,
// and tests legitimately exercise the forbidden constructs.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	allow := buildAllowIndex(pkg.Fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			allow:    allow,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Suite returns the full cnpvet analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		NoAllocHot,
		ViewMut,
		DurableSync,
		JSONErr,
		BareServe,
		FieldAlign,
	}
}

// --- shared type/AST helpers used by several analyzers ---

// calleeFunc resolves the called function or method object of call,
// or nil for calls through function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. os.Rename, net/http.Error).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isMethodCall reports whether call invokes a method with the given
// name (on any receiver type).
func isMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Type().(*types.Signature).Recv() != nil
}

// namedTypeIs reports whether t (after peeling pointers) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			obj := tt.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
		default:
			return false
		}
	}
}

// isBuiltinIdent reports whether id resolves to a builtin (append,
// copy, make, ...) — either recorded as *types.Builtin in Uses or left
// unresolved.
func isBuiltinIdent(info *types.Info, id *ast.Ident) bool {
	obj, ok := info.Uses[id]
	if !ok {
		return true
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// eachFuncDecl visits every function declaration with a body.
func eachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
