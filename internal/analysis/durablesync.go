package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DurableSync enforces the durability contract of the WAL and snapshot
// planes: an acknowledged write must survive a crash, which means every
// Sync, Close (of a write handle), Rename and Truncate error must be
// observed, and every rename that publishes a file must be followed by
// a directory fsync.
//
// Three rules:
//
//  1. The error result of Sync/SyncDir/Close/Rename/Truncate must not
//     be discarded — not as a bare expression statement, not via
//     `_ =`, and not in a defer. Close is only held to this when the
//     receiver demonstrably came from a write-open (os.Create,
//     os.CreateTemp, os.OpenFile, or a method named OpenAppend);
//     read-side closes (os.Open, .Open) lose nothing and are exempt
//     everywhere. A Close whose handle has unknown provenance is
//     flagged only inside the durability packages (internal/wal,
//     internal/snapshot), where write handles dominate.
//
//  2. A function that calls os.Rename (or a Rename method) must, later
//     in the same function, fsync the directory — via a call whose name
//     contains "SyncDir"/"syncDir" or a .Sync() method call — or the
//     rename is not durable (the dirent may be lost on power failure).
//
//  3. Rules apply module-wide for os-level calls; the unknown-origin
//     Close tightening is scoped to the durability packages.
var DurableSync = &Analyzer{
	Name: "durablesync",
	Doc:  "flag unchecked Sync/Close/Rename/Truncate errors and rename without dir fsync",
	Run:  runDurableSync,
}

// durabilityPkg reports whether path is one of the packages holding the
// durability plane, where even unknown-origin closes must be checked.
func durabilityPkg(path string) bool {
	return strings.HasSuffix(path, "internal/wal") || strings.HasSuffix(path, "internal/snapshot")
}

func runDurableSync(pass *Pass) error {
	strict := durabilityPkg(pass.Pkg.Path())
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		origins := writeHandleOrigins(pass, fd)
		checkDiscardedDurableErrors(pass, fd, origins, strict)
		checkRenameDirSync(pass, fd)
	})
	return nil
}

// handleOrigin classifies how a file-handle variable was obtained.
type handleOrigin int

const (
	originUnknown handleOrigin = iota
	originRead                 // os.Open / .Open — closing loses nothing
	originWrite                // os.Create / os.CreateTemp / os.OpenFile / .OpenAppend
)

// writeHandleOrigins walks fd's body classifying each variable that is
// ever assigned from a file-opening call.
func writeHandleOrigins(pass *Pass, fd *ast.FuncDecl) map[*types.Var]handleOrigin {
	origins := make(map[*types.Var]handleOrigin)
	classify := func(call *ast.CallExpr) handleOrigin {
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return originUnknown
		}
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		isMethod := fn.Type().(*types.Signature).Recv() != nil
		switch {
		case pkg == "os" && !isMethod:
			switch fn.Name() {
			case "Open":
				return originRead
			case "Create", "CreateTemp", "OpenFile":
				return originWrite
			}
		case isMethod:
			switch fn.Name() {
			case "Open":
				return originRead
			case "OpenAppend", "Create", "CreateTemp", "OpenFile":
				return originWrite
			}
		}
		return originUnknown
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		origin := classify(call)
		if origin == originUnknown {
			return true
		}
		// f, err := open(...) — the handle is Lhs[0].
		if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok {
			v, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				v, ok = pass.Info.Uses[id].(*types.Var)
			}
			if ok {
				origins[v] = origin
			}
		}
		return true
	})
	return origins
}

// durableCallName returns the checked-error method name if call is one
// of the durability-critical calls, else "".
func durableCallName(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	sig := fn.Type().(*types.Signature)
	isMethod := sig.Recv() != nil
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	// The call must actually return an error to be dischargeable.
	if sig.Results().Len() == 0 {
		return ""
	}
	switch name {
	case "Sync", "SyncDir", "Close", "Truncate":
		if isMethod || pkg == "os" {
			return name
		}
	case "Rename":
		if pkg == "os" || isMethod {
			return name
		}
	}
	return ""
}

// closeReceiverOrigin resolves the origin of the receiver of a .Close()
// call, if the receiver is a plain identifier tracked in origins.
func closeReceiverOrigin(pass *Pass, call *ast.CallExpr, origins map[*types.Var]handleOrigin) handleOrigin {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return originUnknown
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return originUnknown
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok {
		return originUnknown
	}
	return origins[v]
}

// checkDiscardedDurableErrors flags durable calls whose error result is
// discarded: bare statement, defer, or assignment to blank.
func checkDiscardedDurableErrors(pass *Pass, fd *ast.FuncDecl, origins map[*types.Var]handleOrigin, strict bool) {
	flag := func(call *ast.CallExpr, how string) {
		name := durableCallName(pass, call)
		if name == "" {
			return
		}
		if name == "Close" {
			switch closeReceiverOrigin(pass, call, origins) {
			case originRead:
				return // closing a read handle loses nothing
			case originUnknown:
				if !strict {
					return
				}
			}
		}
		pass.Report(call.Pos(), "%s error %s — a dropped %s can silently lose acknowledged writes", name, how, name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				flag(call, "discarded")
			}
		case *ast.DeferStmt:
			flag(st.Call, "discarded in defer")
		case *ast.GoStmt:
			flag(st.Call, "discarded in go statement")
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			allBlank := true
			for _, lhs := range st.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank {
				flag(call, "assigned to _")
			}
		}
		return true
	})
}

// checkRenameDirSync verifies that any function performing an os.Rename
// (or Rename method) also fsyncs the containing directory afterwards.
// The directory sync is recognized as a call whose function name
// contains "SyncDir"/"syncDir", or any .Sync() method call after the
// rename (the dir-handle Sync idiom).
func checkRenameDirSync(pass *Pass, fd *ast.FuncDecl) {
	var renames []*ast.CallExpr
	var syncPositions []int // token offsets of dir-sync-capable calls
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		isMethod := fn.Type().(*types.Signature).Recv() != nil
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		switch {
		case name == "Rename" && (pkg == "os" || isMethod):
			renames = append(renames, call)
		case strings.Contains(name, "SyncDir") || strings.Contains(name, "syncDir"):
			syncPositions = append(syncPositions, int(call.Pos()))
		case name == "Sync" && isMethod:
			syncPositions = append(syncPositions, int(call.Pos()))
		}
		return true
	})
	for _, rename := range renames {
		synced := false
		for _, pos := range syncPositions {
			if pos > int(rename.Pos()) {
				synced = true
				break
			}
		}
		if !synced {
			pass.Report(rename.Pos(),
				"rename without a following directory fsync — the new dirent may be lost on power failure")
		}
	}
}
