package analysis

import (
	"go/ast"
	"go/types"
)

// NoAllocHot flags allocation-inducing constructs inside functions
// annotated //cnp:noalloc — the repo's zero-alloc hot paths
// (serving.View query methods, segment.CutAppend, trie
// MatchesFromAppend, conceptualize.ConceptualizeInto). The runtime
// AllocsPerRun pins catch regressions only for the inputs a test
// happens to run; this catches the construct itself, at vet time.
//
// Flagged constructs:
//
//   - string concatenation (s1 + s2)
//   - conversions between string and []byte/[]rune (either direction)
//   - make and new
//   - map literals, non-empty slice literals, and &T{...} literals
//   - function literals (closures)
//   - any call into package fmt
//   - append to an un-presized local slice (declared var s []T,
//     s := []T{}, or s := make([]T, 0) with no capacity) — growth is
//     guaranteed to allocate; append into caller-provided or pooled
//     buffers is the sanctioned idiom and is not flagged
//   - boxing a non-pointer value into an interface (call arguments and
//     assignments); pointer-shaped values carry no allocation
//
// The check is per-function and does not follow calls: a //cnp:noalloc
// function may call helpers (they should be annotated too if they are
// on the hot path). Cold branches inside a hot function can suppress a
// finding with //cnp:allow noallochot and a justification.
var NoAllocHot = &Analyzer{
	Name: "noallochot",
	Doc:  "flag allocation-inducing constructs in //cnp:noalloc functions",
	Run:  runNoAllocHot,
}

func runNoAllocHot(pass *Pass) error {
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if !FuncAnnotated(fd, "noalloc") {
			return
		}
		(&noallocCheck{pass: pass, presized: presizedLocals(pass, fd)}).check(fd.Body)
	})
	return nil
}

type noallocCheck struct {
	pass *Pass
	// presized maps each local slice variable to whether appending to
	// it is acceptable (parameter, reslice, presized make — anything
	// but a guaranteed-empty fresh slice).
	presized map[*types.Var]bool
}

// presizedLocals classifies every slice variable assigned in fn: a
// variable whose every binding is a fresh un-presized slice (var s
// []T; s := []T{}; s := make([]T, 0)) is a guaranteed-growth append
// target; one bound from a parameter, field, reslice, call result or
// presized make is an amortized append target.
func presizedLocals(pass *Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		v, ok := pass.Info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = pass.Info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		// x = append(...) must not amortize its own destination — the
		// append call is what we are classifying the destination FOR.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltinIdent(pass.Info, id) {
				return
			}
		}
		if rhs == nil || freshEmptySlice(pass, rhs) {
			// Keep an existing amortized marking: a later recycle
			// binding (s = s[:0] style) must not be demoted, and vice
			// versa a fresh binding anywhere keeps the variable fresh
			// unless another binding amortizes it.
			out[v] = out[v] || false
		} else {
			out[v] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id, st.Rhs[i])
					}
				}
			} else {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id, st.Rhs[0])
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							var rhs ast.Expr
							if i < len(vs.Values) {
								rhs = vs.Values[i]
							}
							mark(name, rhs)
						}
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := st.Value.(*ast.Ident); ok {
				mark(id, st.X)
			}
		}
		return true
	})
	return out
}

// freshEmptySlice reports whether expr is a guaranteed-fresh,
// guaranteed-empty slice: []T{}, make([]T, 0) without capacity, or nil.
func freshEmptySlice(pass *Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		_, isSlice := pass.Info.Types[e].Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" && isBuiltinIdent(pass.Info, id) {
			_, isSlice := pass.Info.Types[e].Type.Underlying().(*types.Slice)
			return isSlice && len(e.Args) <= 2 // no explicit capacity
		}
	}
	return false
}

func (c *noallocCheck) check(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			c.checkConcat(e)
		case *ast.CallExpr:
			c.checkCall(e)
		case *ast.CompositeLit:
			c.checkCompositeLit(e, false)
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && e.Op.String() == "&" {
				c.checkCompositeLit(lit, true)
				return false // the inner literal is already reported
			}
		case *ast.FuncLit:
			c.pass.Report(e.Pos(), "function literal may allocate a closure in a //cnp:noalloc function")
		case *ast.AssignStmt:
			c.checkAssignBoxing(e)
		}
		return true
	})
}

func (c *noallocCheck) checkConcat(e *ast.BinaryExpr) {
	if e.Op.String() != "+" {
		return
	}
	if tv, ok := c.pass.Info.Types[e]; ok {
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			c.pass.Report(e.Pos(), "string concatenation allocates in a //cnp:noalloc function")
		}
	}
}

func (c *noallocCheck) checkCall(call *ast.CallExpr) {
	info := c.pass.Info
	// Conversions: string <-> []byte/[]rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if isStringBytesConversion(to, from) {
			c.pass.Report(call.Pos(), "conversion between string and byte/rune slice allocates in a //cnp:noalloc function")
		} else {
			c.checkBoxing(call.Args[0], to) // explicit interface conversion boxes too
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if isBuiltinIdent(info, id) {
			switch id.Name {
			case "make":
				c.pass.Report(call.Pos(), "make allocates in a //cnp:noalloc function")
				return
			case "new":
				c.pass.Report(call.Pos(), "new allocates in a //cnp:noalloc function")
				return
			case "append":
				c.checkAppend(call)
				return
			}
		}
	}
	// fmt.* always allocates (interface boxing of arguments at minimum).
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.pass.Report(call.Pos(), "fmt.%s allocates in a //cnp:noalloc function", fn.Name())
		return
	}
	c.checkArgBoxing(call)
}

func (c *noallocCheck) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // reslices, fields, call results: caller-managed storage
	}
	v, ok := c.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if amortized, known := c.presized[v]; known && !amortized {
		c.pass.Report(call.Pos(),
			"append to un-presized local %s is guaranteed to grow (allocate) in a //cnp:noalloc function", id.Name)
	}
}

// checkArgBoxing flags non-pointer-shaped concrete values passed where
// an interface is expected: the conversion boxes the value on the heap.
func (c *noallocCheck) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := c.pass.Info.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if i == sig.Params().Len()-1 && call.Ellipsis.IsValid() {
				param = sig.Params().At(sig.Params().Len() - 1).Type()
			} else {
				param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		c.checkBoxing(arg, param)
	}
}

func (c *noallocCheck) checkAssignBoxing(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		lt, ok := c.pass.Info.Types[lhs]
		if !ok {
			continue
		}
		c.checkBoxing(st.Rhs[i], lt.Type)
	}
}

func (c *noallocCheck) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := c.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if types.IsInterface(from) || tv.IsNil() {
		return
	}
	if pointerShaped(from) {
		return
	}
	// Constants box too, but small-integer and zero-value boxing is
	// handled by the runtime's static box cache only for some values;
	// flag uniformly — hot paths should not box at all.
	c.pass.Report(expr.Pos(), "converting %s to interface %s boxes (allocates) in a //cnp:noalloc function",
		types.TypeString(from, types.RelativeTo(c.pass.Pkg)), types.TypeString(target, types.RelativeTo(c.pass.Pkg)))
}

// isStringBytesConversion reports whether a conversion between the two
// types crosses the string <-> []byte / []rune boundary (which copies).
func isStringBytesConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isStringType(from) && isByteOrRuneSlice(to))
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && (elem.Kind() == types.Byte || elem.Kind() == types.Rune ||
		elem.Kind() == types.Uint8 || elem.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit in an interface's data
// word without boxing.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (c *noallocCheck) checkCompositeLit(lit *ast.CompositeLit, addressed bool) {
	tv, ok := c.pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.pass.Report(lit.Pos(), "map literal allocates in a //cnp:noalloc function")
	case *types.Slice:
		if len(lit.Elts) > 0 {
			c.pass.Report(lit.Pos(), "non-empty slice literal allocates in a //cnp:noalloc function")
		}
	default:
		if addressed {
			c.pass.Report(lit.Pos(), "&composite literal may allocate in a //cnp:noalloc function")
		}
	}
}
