package analysis

import (
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regex"` expectations from fixture sources —
// the same golden style as golang.org/x/tools analysistest.
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` marker: a diagnostic matching rx must be
// reported on this file:line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// runFixture loads the fixture package at testdata/src/<pkgPath>, runs
// the analyzers over it, and matches every diagnostic against the
// fixture's `// want "regex"` markers: each marker must be hit exactly
// once and no unexpected diagnostics may remain.
func runFixture(t *testing.T, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir("../..", "testdata/src", pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	wants := collectWants(t, pkg)
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		if !claimWant(wants, d.Pos, d.Analyzer+": "+d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

func claimWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// requireClean runs the full suite over a real module package and fails
// on any diagnostic — the negative corpus proving the annotated hot
// paths and fixed call sites stay clean.
func requireClean(t *testing.T, pattern string) {
	t.Helper()
	pkgs, err := Load("../..", pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", pattern)
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, Suite())
		if err != nil {
			t.Fatalf("run %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Path, d)
		}
	}
}

// sanity check for the harness itself: a want marker that nothing hits
// must be reported, and claimWant is position-exact.
func TestClaimWant(t *testing.T) {
	w := &expectation{file: "f.go", line: 3, rx: regexp.MustCompile("boom")}
	if claimWant([]*expectation{w}, token.Position{Filename: "f.go", Line: 4}, "boom") {
		t.Fatal("claimed a want on the wrong line")
	}
	if !claimWant([]*expectation{w}, token.Position{Filename: "f.go", Line: 3}, "analyzer: boom goes the line") {
		t.Fatal("failed to claim a matching want")
	}
	if claimWant([]*expectation{w}, token.Position{Filename: "f.go", Line: 3}, "boom") {
		t.Fatal("claimed an already-hit want twice")
	}
}

func TestWantRegexpSyntax(t *testing.T) {
	m := wantRe.FindStringSubmatch(`x := 1 // want "append to un-presized local \"xs\""`)
	if m == nil {
		t.Fatal("want marker with escaped quotes not recognized")
	}
	if !strings.Contains(m[1], `\"xs\"`) {
		t.Fatalf("capture = %q", m[1])
	}
}
