package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// fieldAlignScopes are the package-path suffixes fieldalign inspects:
// the serving, API and WAL planes, whose structs are either numerous
// (per-request) or long-lived (per-view). Snapshot byte-layout structs
// are deliberately out of scope — their field order IS the wire format,
// pinned by golden tests.
var fieldAlignScopes = [...]string{
	"internal/serving",
	"internal/api",
	"internal/wal",
}

// FieldAlign reports struct types whose fields, if reordered, would
// occupy fewer bytes under 64-bit alignment rules. It is scoped to the
// serving/api/wal planes and is advisory about layout only: it never
// proposes reordering structs whose layout is externally meaningful.
// Suppress a deliberate layout with //cnp:allow fieldalign (reason).
var FieldAlign = &Analyzer{
	Name: "fieldalign",
	Doc:  "structs in the serving/api/wal planes should carry no avoidable padding",
	Run:  runFieldAlign,
}

// stdSizes is the layout model: 64-bit words, 64-bit max alignment —
// matches gc on amd64/arm64, the deployment targets.
var stdSizes = types.StdSizes{WordSize: 8, MaxAlign: 8}

func runFieldAlign(pass *Pass) error {
	inScope := false
	for _, suffix := range fieldAlignScopes {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name]
				if !ok || obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok || st.NumFields() < 2 {
					continue
				}
				// StdSizes.Sizeof omits the trailing padding that rounds a
				// struct up to its alignment; add it, as gc does.
				current := align(stdSizes.Sizeof(st), stdSizes.Alignof(st))
				optimal := optimalStructSize(st)
				if optimal < current {
					pass.Report(ts.Pos(),
						"struct %s is %d bytes; reordering fields by descending alignment would make it %d",
						ts.Name.Name, current, optimal)
				}
			}
		}
	}
	return nil
}

// optimalStructSize computes the size st would have with its fields
// sorted by descending alignment (the classic padding-minimizing
// order). Zero-sized trailing fields keep their required padding byte
// semantics via the final alignment round-up.
func optimalStructSize(st *types.Struct) int64 {
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := stdSizes.Alignof(fields[i].Type()), stdSizes.Alignof(fields[j].Type())
		if ai != aj {
			return ai > aj
		}
		return stdSizes.Sizeof(fields[i].Type()) > stdSizes.Sizeof(fields[j].Type())
	})
	var off, maxAlign int64 = 0, 1
	for _, f := range fields {
		a := stdSizes.Alignof(f.Type())
		if a > maxAlign {
			maxAlign = a
		}
		off = align(off, a)
		off += stdSizes.Sizeof(f.Type())
	}
	return align(off, maxAlign)
}

func align(off, a int64) int64 {
	if a <= 0 {
		return off
	}
	return (off + a - 1) / a * a
}
