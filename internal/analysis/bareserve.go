package analysis

import (
	"go/ast"
	"strings"
)

// BareServe forbids standing up HTTP listeners outside
// internal/resilience. A bare http.ListenAndServe (or a hand-rolled
// &http.Server{}) carries no ReadHeaderTimeout, no IdleTimeout, no
// graceful-drain hook — exactly the hardening resilience.NewServer
// exists to centralize. Flagged outside internal/resilience:
//
//   - http.ListenAndServe / http.ListenAndServeTLS / http.Serve /
//     http.ServeTLS package-level calls
//   - net/http.Server composite literals (with or without &)
var BareServe = &Analyzer{
	Name: "bareserve",
	Doc:  "no bare http listeners outside internal/resilience",
	Run:  runBareServe,
}

func runBareServe(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), resiliencePkgSuffix) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				for _, name := range [...]string{"ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS"} {
					if isPkgFunc(pass.Info, e, "net/http", name) {
						pass.Report(e.Pos(),
							"http.%s starts an unhardened listener; build it with resilience.NewServer", name)
						return true
					}
				}
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[e]; ok && namedTypeIs(tv.Type, "net/http", "Server") {
					pass.Report(e.Pos(),
						"raw http.Server literal bypasses the hardened timeouts; build it with resilience.NewServer")
				}
			}
			return true
		})
	}
	return nil
}
