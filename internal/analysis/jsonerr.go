package analysis

import (
	"go/ast"
	"strings"
)

// resiliencePkgSuffix identifies the one package allowed to touch the
// raw response-writing primitives: it owns WriteJSONError and the
// hardened server construction.
const resiliencePkgSuffix = "internal/resilience"

// JSONErr enforces the uniform JSON error contract: every handler-side
// error response must go through resilience.WriteJSONError, which emits
// {"error":...} with the right Content-Type and Content-Length. Outside
// internal/resilience the analyzer flags:
//
//   - http.Error(w, ...) — plain-text body, breaks every client that
//     unmarshals the error envelope
//   - w.WriteHeader(code) on an http.ResponseWriter — the bare
//     status+Fprintf idiom that bypasses the envelope (success-path
//     WriteHeader is rare in this codebase; wrap or suppress with
//     //cnp:allow jsonerr when a handler genuinely streams)
//   - fmt.Fprint/Fprintf/Fprintln with an http.ResponseWriter
//     destination — writing an ad-hoc body instead of the envelope
var JSONErr = &Analyzer{
	Name: "jsonerr",
	Doc:  "handler errors must go through resilience.WriteJSONError",
	Run:  runJSONErr,
}

func runJSONErr(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), resiliencePkgSuffix) {
		return nil
	}
	isResponseWriter := func(expr ast.Expr) bool {
		tv, ok := pass.Info.Types[expr]
		if !ok || tv.Type == nil {
			return false
		}
		return namedTypeIs(tv.Type, "net/http", "ResponseWriter")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass.Info, call, "net/http", "Error"):
				pass.Report(call.Pos(),
					"http.Error writes a plain-text error body; use resilience.WriteJSONError")
			case isMethodCall(pass.Info, call, "WriteHeader"):
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(sel.X) {
					pass.Report(call.Pos(),
						"bare WriteHeader bypasses the JSON error envelope; use resilience.WriteJSONError")
				}
			default:
				if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") &&
					len(call.Args) > 0 && isResponseWriter(call.Args[0]) {
					pass.Report(call.Pos(),
						"fmt.%s to an http.ResponseWriter writes an ad-hoc body; use resilience.WriteJSONError", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
