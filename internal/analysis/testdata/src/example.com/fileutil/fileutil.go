// Package fileutil is the durablesync negative fixture for a
// non-durability package: unknown-origin closes are tolerated here,
// while write-handle closes and os-level durable calls are still held
// to the contract module-wide.
package fileutil

import "os"

// unknownOriginClose is fine outside internal/wal and
// internal/snapshot: the handle's provenance is unknown and this
// package makes no durability promises.
func unknownOriginClose(f *os.File) {
	f.Close()
}

// writeClose still gets flagged even here: the handle demonstrably
// buffers writes.
func writeClose() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	f.Close() // want "Close error discarded"
	return nil
}
