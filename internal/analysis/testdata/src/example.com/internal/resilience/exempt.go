// Package resilience is the jsonerr/bareserve exemption fixture: a
// package whose import path ends in internal/resilience may touch the
// raw primitives — it IS the sanctioned implementation layer.
package resilience

import (
	"fmt"
	"net/http"
)

func writeRaw(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
}

func serve(h http.Handler) *http.Server {
	return &http.Server{Handler: h}
}
