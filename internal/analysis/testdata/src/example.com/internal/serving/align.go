// Package serving is the fieldalign fixture: its import path suffix
// puts it in scope, and padded demonstrates the classic
// small-large-small layout the analyzer computes a tighter order for.
package serving

type padded struct { // want "struct padded is 24 bytes; reordering fields by descending alignment would make it 16"
	a bool
	b int64
	c bool
}

type packed struct {
	b int64
	a bool
	c bool
}

//cnp:allow fieldalign (fixture: layout is deliberate)
type pinned struct {
	a bool
	b int64
	c bool
}
