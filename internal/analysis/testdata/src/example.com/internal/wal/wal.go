// Package wal is the durablesync fixture for a durability package
// (path suffix internal/wal → strict mode: even unknown-origin closes
// must be checked).
package wal

import "os"

func uncheckedWriteClose() error {
	f, err := os.Create("seg")
	if err != nil {
		return err
	}
	f.Close() // want "Close error discarded"
	return nil
}

func uncheckedReadClose() error {
	f, err := os.Open("seg")
	if err != nil {
		return err
	}
	f.Close() // read handle: closing loses nothing, no finding
	return nil
}

func deferredClose() error {
	f, err := os.CreateTemp("", "seg")
	if err != nil {
		return err
	}
	defer f.Close() // want "Close error discarded in defer"
	return nil
}

func blankSync(f *os.File) {
	_ = f.Sync() // want "Sync error assigned to _"
}

func unknownOriginClose(f *os.File) {
	f.Close() // want "Close error discarded"
}

func renameNoDirSync(a, b string) error {
	return os.Rename(a, b) // want "rename without a following directory fsync"
}

func renameWithDirSync(a, b string) error {
	if err := os.Rename(a, b); err != nil {
		return err
	}
	d, err := os.Open(".")
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func checkedEverything() error {
	f, err := os.Create("seg")
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	return f.Close()
}
