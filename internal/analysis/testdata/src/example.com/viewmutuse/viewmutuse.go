// Package viewmutuse is the viewmut fixture: code outside
// internal/serving mutating slices obtained from serving.View query
// methods — exactly the writes that SIGSEGV on a mapped view.
package viewmutuse

import (
	"sort"

	"cnprobase/internal/serving"
)

func mutate(v *serving.View) {
	hs := v.Hypernyms("刘德华")
	hs[0] = "人物" // want "write through a serving.View backing slice"
	tail := hs[1:]
	tail[0] = "演员"          // want "write through a serving.View backing slice"
	copy(hs, tail)          // want "copy into a serving.View backing slice"
	_ = append(hs, "歌手")    // want "append to a serving.View backing slice"
	sort.Strings(v.Nodes()) // want "in-place sort of a serving.View backing slice"
	names := v.Nodes()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] }) // want "in-place sort of a serving.View backing slice"
}

// readOnly proves query-and-read stays silent, including copying OUT of
// a view slice and sorting a private copy.
func readOnly(v *serving.View) string {
	hs := v.Hypernyms("刘德华")
	if len(hs) > 0 {
		mine := make([]string, len(hs))
		copy(mine, hs)
		sort.Strings(mine)
		return mine[0]
	}
	return ""
}
