// Package handlers is the jsonerr fixture: every way a handler can
// bypass the uniform JSON error envelope.
package handlers

import (
	"encoding/json"
	"fmt"
	"net/http"
)

func bad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)  // want "http.Error writes a plain-text error body"
	w.WriteHeader(http.StatusInternalServerError) // want "bare WriteHeader bypasses the JSON error envelope"
	fmt.Fprintf(w, "oops: %v", r.URL)             // want "fmt.Fprintf to an http.ResponseWriter"
	fmt.Fprintln(w, "bye")                        // want "fmt.Fprintln to an http.ResponseWriter"
}

// good answers through an encoder on the success path — no bare status
// writes, no ad-hoc bodies.
func good(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]string{"ok": "true"})
}
