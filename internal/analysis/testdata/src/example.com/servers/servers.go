// Package servers is the bareserve fixture: listener construction
// outside internal/resilience.
package servers

import "net/http"

func listen(h http.Handler) error {
	srv := &http.Server{Addr: ":8080", Handler: h} // want "raw http.Server literal"
	_ = srv
	return http.ListenAndServe(":8080", h) // want "http.ListenAndServe starts an unhardened listener"
}

func listenTLS(h http.Handler) error {
	return http.ListenAndServeTLS(":8443", "c.pem", "k.pem", h) // want "http.ListenAndServeTLS starts an unhardened listener"
}

// mux building and client use are fine — only listeners are fenced.
func wire() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}
