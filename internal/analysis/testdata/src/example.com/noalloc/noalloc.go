// Package noalloc is the noallochot fixture: an annotated function
// exercising every forbidden construct, plus negative cases proving
// unannotated code, sanctioned append targets, and suppressions stay
// silent.
package noalloc

import "fmt"

type pair struct{ a, b int }

//cnp:noalloc
func hot(a, b string, sink *any) string {
	var xs []int
	xs = append(xs, 1) // want "append to un-presized local xs"
	ys := []int{}
	ys = append(ys, 2)   // want "append to un-presized local ys"
	zs := make([]int, 0) // want "make allocates"
	zs = append(zs, 3)   // want "append to un-presized local zs"
	_ = xs
	_ = ys
	_ = zs
	m := map[string]int{} // want "map literal allocates"
	_ = m
	lit := []int{1, 2} // want "non-empty slice literal allocates"
	_ = lit
	p := &pair{} // want "&composite literal may allocate"
	_ = p
	q := new(pair) // want "new allocates"
	_ = q
	bs := []byte(a) // want "conversion between string and byte/rune slice"
	_ = bs
	back := string(bs) // want "conversion between string and byte/rune slice"
	_ = back
	f := func() {} // want "function literal may allocate a closure"
	f()
	fmt.Println(a)       // want "fmt.Println allocates"
	*sink = len(a)       // want "converting int to interface"
	boxed := any(pair{}) // want "converting pair to interface"
	_ = boxed
	return a + b // want "string concatenation allocates"
}

// hotClean shows the sanctioned zero-alloc idioms: append into a
// caller-provided buffer, reuse of a presized scratch reslice, and
// pointer-shaped interface values.
//
//cnp:noalloc
func hotClean(dst []int, scratch []byte, pp *pair, sink *any) []int {
	dst = append(dst, 1)
	buf := scratch[:0]
	buf = append(buf, 'x')
	_ = buf
	empty := []int{}
	_ = empty
	*sink = pp // pointer-shaped: interface conversion without boxing
	return dst
}

// hotSuppressed demonstrates the //cnp:allow escape hatch for a cold
// branch inside a hot function.
//
//cnp:noalloc
func hotSuppressed(a string) []byte {
	//cnp:allow noallochot (cold path: fixture)
	return []byte(a)
}

// cold is unannotated: every construct above is fine here.
func cold(a, b string) string {
	var xs []int
	xs = append(xs, 1)
	m := map[string]int{a: 2}
	_ = m
	_ = xs
	fmt.Println(a)
	return a + b
}
