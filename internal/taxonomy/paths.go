package taxonomy

// Path explanation queries: downstream applications ask not only "is X
// a Y" but "why" — the witness chain through the concept hierarchy.

// PathToAncestor returns one shortest isA chain from node to ancestor
// (inclusive of both ends), or nil when ancestor is not reachable. BFS
// guarantees minimal length; ties resolve to the first-indexed edge.
// Each BFS step locks one shard via Hypernyms, so the query never holds
// more than one shard lock.
func (t *Taxonomy) PathToAncestor(node, ancestor string) []string {
	if node == ancestor {
		return []string{node}
	}
	prev := map[string]string{node: ""}
	queue := []string{node}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range t.Hypernyms(cur) {
			if _, seen := prev[h]; seen {
				continue
			}
			prev[h] = cur
			if h == ancestor {
				// Reconstruct.
				var rev []string
				for at := h; at != ""; at = prev[at] {
					rev = append(rev, at)
				}
				out := make([]string, len(rev))
				for i := range rev {
					out[i] = rev[len(rev)-1-i]
				}
				return out
			}
			queue = append(queue, h)
		}
	}
	return nil
}

// CommonAncestors returns concepts reachable from both nodes, useful
// for semantic relatedness between entities (e.g. two 演员 instances
// meet at 演员).
func (t *Taxonomy) CommonAncestors(a, b string) []string {
	inA := make(map[string]bool)
	for _, x := range t.Ancestors(a) {
		inA[x] = true
	}
	var out []string
	for _, x := range t.Ancestors(b) {
		if inA[x] {
			out = append(out, x)
		}
	}
	return out
}
