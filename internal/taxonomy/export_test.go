package taxonomy

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTSV(t *testing.T) {
	tx := New()
	tx.MarkEntity("刘德华")
	mustAdd(t, tx, "刘德华", "演员", SourceBracket)
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	var buf bytes.Buffer
	if err := tx.WriteTSV(&buf); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 edges
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "hyponym\thypernym") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "刘德华\t演员\tbracket\t1") {
		t.Errorf("edge line missing:\n%s", out)
	}
}

func TestWriteDOT(t *testing.T) {
	tx := New()
	tx.MarkEntity("刘德华")
	mustAdd(t, tx, "刘德华", "演员", SourceBracket)
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	tx.MarkConcept("男演员")
	var buf bytes.Buffer
	if err := tx.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph taxonomy {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	// Concept-concept edge present; entity edge absent.
	if !strings.Contains(out, `"男演员" -> "演员"`) {
		t.Errorf("missing concept edge:\n%s", out)
	}
	if strings.Contains(out, "刘德华") {
		t.Errorf("entity leaked into concept graph:\n%s", out)
	}
}
