// Package taxonomy implements the conceptual taxonomy store: the data
// structure CN-Probase ultimately is. It holds entities, concepts and
// provenance-tagged isA edges, maintains hypernym/hyponym indexes,
// answers closure queries (with cycle guards) and serializes to JSON.
//
// A Taxonomy is safe for concurrent readers once construction finishes;
// writes take an exclusive lock, so interleaved read/write is also
// safe, just not lock-free.
package taxonomy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Source identifies where an isA relation was generated from (paper
// Figure 2: the four encyclopedia sources) plus derivation modes.
type Source uint8

// Source values.
const (
	// SourceBracket marks pairs from the separation algorithm.
	SourceBracket Source = 1 << iota
	// SourceAbstract marks pairs from neural generation.
	SourceAbstract
	// SourceInfobox marks pairs from predicate discovery.
	SourceInfobox
	// SourceTag marks pairs from direct tag extraction.
	SourceTag
	// SourceMorph marks subconcept edges derived from compound heads.
	SourceMorph
	// SourceSubsume marks subconcept edges derived by set inclusion.
	SourceSubsume
	// SourceTranslation marks pairs from the Probase-Tran baseline.
	SourceTranslation
)

// String names a single source bit or a combination.
func (s Source) String() string {
	names := []struct {
		bit  Source
		name string
	}{
		{SourceBracket, "bracket"},
		{SourceAbstract, "abstract"},
		{SourceInfobox, "infobox"},
		{SourceTag, "tag"},
		{SourceMorph, "morph"},
		{SourceSubsume, "subsume"},
		{SourceTranslation, "translation"},
	}
	out := ""
	for _, n := range names {
		if s&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// NodeKind classifies a taxonomy node.
type NodeKind uint8

// Node kinds.
const (
	// KindUnknown is a node seen only inside edges.
	KindUnknown NodeKind = iota
	// KindEntity is a disambiguated instance (a page).
	KindEntity
	// KindConcept is a class.
	KindConcept
)

// Edge is one isA relation: Hypo isA Hyper.
type Edge struct {
	Hypo    string  `json:"hypo"`
	Hyper   string  `json:"hyper"`
	Sources Source  `json:"sources"`
	Score   float64 `json:"score"`
	// Count is how many times the pair was generated across sources.
	Count int `json:"count"`
}

type edgeKey struct{ hypo, hyper string }

// Taxonomy is the isA graph.
type Taxonomy struct {
	mu        sync.RWMutex
	edges     map[edgeKey]*Edge
	hypers    map[string][]string // hypo → hypernyms (insertion order)
	hypos     map[string][]string // hyper → hyponyms
	kinds     map[string]NodeKind
	nameIndex map[string][]string // bare mention → node names (entity IDs)
}

// New returns an empty taxonomy.
func New() *Taxonomy {
	return &Taxonomy{
		edges:     make(map[edgeKey]*Edge),
		hypers:    make(map[string][]string),
		hypos:     make(map[string][]string),
		kinds:     make(map[string]NodeKind),
		nameIndex: make(map[string][]string),
	}
}

// MarkEntity declares node as an entity.
func (t *Taxonomy) MarkEntity(id string) { t.mark(id, KindEntity) }

// MarkConcept declares node as a concept.
func (t *Taxonomy) MarkConcept(name string) { t.mark(name, KindConcept) }

func (t *Taxonomy) mark(name string, k NodeKind) {
	if name == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.kinds[name] == KindUnknown {
		t.kinds[name] = k
	}
}

// Kind returns the node kind of name.
func (t *Taxonomy) Kind(name string) NodeKind {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.kinds[name]
}

// AddIsA inserts or reinforces the isA(hypo, hyper) edge. Self-loops
// are rejected. Hypernyms are implicitly marked as concepts; hyponyms
// keep their current kind (entities are marked via MarkEntity by the
// pipeline; hyponyms that are concepts form subconcept edges).
func (t *Taxonomy) AddIsA(hypo, hyper string, src Source, score float64) error {
	if hypo == "" || hyper == "" {
		return fmt.Errorf("taxonomy: empty node in isA(%q, %q)", hypo, hyper)
	}
	if hypo == hyper {
		return fmt.Errorf("taxonomy: self-loop isA(%q, %q)", hypo, hyper)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := edgeKey{hypo, hyper}
	if e, ok := t.edges[k]; ok {
		e.Sources |= src
		e.Count++
		if score > e.Score {
			e.Score = score
		}
		return nil
	}
	t.edges[k] = &Edge{Hypo: hypo, Hyper: hyper, Sources: src, Score: score, Count: 1}
	t.hypers[hypo] = append(t.hypers[hypo], hyper)
	t.hypos[hyper] = append(t.hypos[hyper], hypo)
	if t.kinds[hyper] == KindUnknown {
		t.kinds[hyper] = KindConcept
	}
	return nil
}

// RemoveIsA deletes the edge if present and reports whether it existed.
func (t *Taxonomy) RemoveIsA(hypo, hyper string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := edgeKey{hypo, hyper}
	if _, ok := t.edges[k]; !ok {
		return false
	}
	delete(t.edges, k)
	t.hypers[hypo] = removeString(t.hypers[hypo], hyper)
	t.hypos[hyper] = removeString(t.hypos[hyper], hypo)
	return true
}

func removeString(xs []string, x string) []string {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// HasIsA reports whether the direct edge exists.
func (t *Taxonomy) HasIsA(hypo, hyper string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.edges[edgeKey{hypo, hyper}]
	return ok
}

// EdgeOf returns a copy of the edge, if present.
func (t *Taxonomy) EdgeOf(hypo, hyper string) (Edge, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.edges[edgeKey{hypo, hyper}]
	if !ok {
		return Edge{}, false
	}
	return *e, true
}

// Hypernyms returns the direct hypernyms of node (getConcept in the
// paper's API table).
func (t *Taxonomy) Hypernyms(node string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.hypers[node]...)
}

// Hyponyms returns up to limit direct hyponyms of a concept (getEntity
// in the paper's API table); limit <= 0 means all.
func (t *Taxonomy) Hyponyms(concept string, limit int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hs := t.hypos[concept]
	if limit <= 0 || limit > len(hs) {
		limit = len(hs)
	}
	return append([]string(nil), hs[:limit]...)
}

// HyponymCount returns the number of direct hyponyms of a concept.
func (t *Taxonomy) HyponymCount(concept string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.hypos[concept])
}

// Ancestors returns all transitive hypernyms of node, breadth-first,
// excluding node itself. Cycles are tolerated.
func (t *Taxonomy) Ancestors(node string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := map[string]bool{node: true}
	var out []string
	queue := append([]string(nil), t.hypers[node]...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, cur)
		queue = append(queue, t.hypers[cur]...)
	}
	return out
}

// IsAncestor reports whether hyper is reachable from hypo.
func (t *Taxonomy) IsAncestor(hypo, hyper string) bool {
	for _, a := range t.Ancestors(hypo) {
		if a == hyper {
			return true
		}
	}
	return false
}

// Nodes returns all node names, sorted.
func (t *Taxonomy) Nodes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[string]bool)
	for k := range t.edges {
		seen[k.hypo] = true
		seen[k.hyper] = true
	}
	for n := range t.kinds {
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns copies of all edges, sorted for determinism.
func (t *Taxonomy) Edges() []Edge {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Edge, 0, len(t.edges))
	for _, e := range t.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hypo != out[j].Hypo {
			return out[i].Hypo < out[j].Hypo
		}
		return out[i].Hyper < out[j].Hyper
	})
	return out
}

// EdgeCount returns the number of isA edges.
func (t *Taxonomy) EdgeCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.edges)
}

// Stats summarizes the taxonomy in the shape of the paper's Table I
// row: entities, concepts, and the entity-concept / subconcept-concept
// split of isA edges.
type Stats struct {
	Entities          int `json:"entities"`
	Concepts          int `json:"concepts"`
	IsARelations      int `json:"isa_relations"`
	EntityConceptIsA  int `json:"entity_concept_isa"`
	SubConceptIsA     int `json:"subconcept_isa"`
	NodesWithHypernym int `json:"nodes_with_hypernym"`
}

// ComputeStats walks the graph once and classifies edges by hyponym
// kind.
func (t *Taxonomy) ComputeStats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s Stats
	seenEnt := make(map[string]bool)
	seenCon := make(map[string]bool)
	for n, k := range t.kinds {
		switch k {
		case KindEntity:
			seenEnt[n] = true
		case KindConcept:
			seenCon[n] = true
		}
	}
	for k := range t.edges {
		if t.kinds[k.hyper] == KindConcept {
			seenCon[k.hyper] = true
		}
		switch t.kinds[k.hypo] {
		case KindEntity:
			s.EntityConceptIsA++
		case KindConcept:
			s.SubConceptIsA++
		default:
			s.EntityConceptIsA++ // unmarked hyponyms behave as instances
		}
	}
	s.Entities = len(seenEnt)
	s.Concepts = len(seenCon)
	s.IsARelations = len(t.edges)
	s.NodesWithHypernym = len(t.hypers)
	return s
}

// ---- serialization ----

type taxJSON struct {
	Kinds map[string]NodeKind `json:"kinds"`
	Edges []Edge              `json:"edges"`
}

// WriteJSON serializes the taxonomy.
func (t *Taxonomy) WriteJSON(w io.Writer) error {
	t.mu.RLock()
	out := taxJSON{Kinds: make(map[string]NodeKind, len(t.kinds))}
	for n, k := range t.kinds {
		out.Kinds[n] = k
	}
	t.mu.RUnlock()
	out.Edges = t.Edges()
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(out); err != nil {
		return fmt.Errorf("taxonomy: encode: %w", err)
	}
	return bw.Flush()
}

// ReadJSON loads a taxonomy written by WriteJSON.
func ReadJSON(r io.Reader) (*Taxonomy, error) {
	var in taxJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("taxonomy: decode: %w", err)
	}
	t := New()
	for n, k := range in.Kinds {
		t.kinds[n] = k
	}
	for _, e := range in.Edges {
		if err := t.AddIsA(e.Hypo, e.Hyper, e.Sources, e.Score); err != nil {
			return nil, err
		}
		t.edges[edgeKey{e.Hypo, e.Hyper}].Count = e.Count
	}
	return t, nil
}
