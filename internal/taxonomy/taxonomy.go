// Package taxonomy implements the conceptual taxonomy *build* store:
// the mutable structure the construction pipeline assembles into. It
// holds entities, concepts and provenance-tagged isA edges, maintains
// hypernym/hyponym indexes, answers closure queries (with cycle
// guards) and serializes to JSON. For serving traffic, the finished
// store is frozen into the immutable, lock-free view in
// internal/serving (see serving.Compile); the query methods here have
// View equivalents with equivalence pinned by tests.
//
// The store is sharded: nodes and edges are distributed over N
// lock-protected shards keyed by a hash of the hyponym (edges, hypernym
// lists) or of the node itself (kinds, hyponym lists), so concurrent
// writers contend only when they touch the same shard. Single-node
// queries (Hypernyms, Hyponyms, Kind, EdgeOf) lock exactly one shard;
// whole-graph queries (Edges, Nodes, ComputeStats) visit shards one at
// a time. After construction, Finalize builds merged cross-shard
// indexes (sorted node list, cached stats, canonically ordered
// adjacency lists) that subsequent reads are served from until the next
// write invalidates them.
//
// A Taxonomy is safe for concurrent use: writes lock at most two
// shards (always in index order, so writers cannot deadlock), and
// readers never hold more than one shard lock at a time.
package taxonomy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Source identifies where an isA relation was generated from (paper
// Figure 2: the four encyclopedia sources) plus derivation modes.
type Source uint8

// Source values.
const (
	// SourceBracket marks pairs from the separation algorithm.
	SourceBracket Source = 1 << iota
	// SourceAbstract marks pairs from neural generation.
	SourceAbstract
	// SourceInfobox marks pairs from predicate discovery.
	SourceInfobox
	// SourceTag marks pairs from direct tag extraction.
	SourceTag
	// SourceMorph marks subconcept edges derived from compound heads.
	SourceMorph
	// SourceSubsume marks subconcept edges derived by set inclusion.
	SourceSubsume
	// SourceTranslation marks pairs from the Probase-Tran baseline.
	SourceTranslation
)

// String names a single source bit or a combination.
func (s Source) String() string {
	names := []struct {
		bit  Source
		name string
	}{
		{SourceBracket, "bracket"},
		{SourceAbstract, "abstract"},
		{SourceInfobox, "infobox"},
		{SourceTag, "tag"},
		{SourceMorph, "morph"},
		{SourceSubsume, "subsume"},
		{SourceTranslation, "translation"},
	}
	out := ""
	for _, n := range names {
		if s&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// NodeKind classifies a taxonomy node.
type NodeKind uint8

// Node kinds.
const (
	// KindUnknown is a node seen only inside edges.
	KindUnknown NodeKind = iota
	// KindEntity is a disambiguated instance (a page).
	KindEntity
	// KindConcept is a class.
	KindConcept
)

// Edge is one isA relation: Hypo isA Hyper.
type Edge struct {
	Hypo    string  `json:"hypo"`
	Hyper   string  `json:"hyper"`
	Sources Source  `json:"sources"`
	Score   float64 `json:"score"`
	// Count is how many times the pair was generated across sources.
	Count int `json:"count"`
}

type edgeKey struct{ hypo, hyper string }

// DefaultShards is the shard count used by New. Sixteen shards keep
// write contention negligible for the pipeline's worker counts while
// the per-shard maps stay large enough to amortize.
const DefaultShards = 16

// shard is one lock-protected partition of the store. Edges and
// hypernym lists live in the hyponym's shard; hyponym lists and node
// kinds live in the named node's shard.
type shard struct {
	mu     sync.RWMutex
	edges  map[edgeKey]*Edge   // keyed by shard(hypo)
	hypers map[string][]string // hypo → hypernyms, keyed by shard(hypo)
	hypos  map[string][]string // hyper → hyponyms, keyed by shard(hyper)
	kinds  map[string]NodeKind // keyed by shard(node)
	// unsortedHypers / unsortedHypos track adjacency lists appended to
	// since the last Finalize, so re-finalizing after an incremental
	// update sorts only the touched lists instead of every list in the
	// store. Removals keep list order, so they never mark.
	unsortedHypers map[string]bool
	unsortedHypos  map[string]bool
}

// merged holds the cross-shard indexes Finalize builds. gen records
// the write generation the indexes were computed at; readers treat the
// cache as valid only while the store's generation still matches, so a
// write racing Finalize can never leave stale indexes looking valid.
type merged struct {
	gen   uint64
	nodes []string // sorted
	stats Stats
}

// Taxonomy is the isA graph.
type Taxonomy struct {
	shards   []shard
	writeGen atomic.Uint64
	final    atomic.Pointer[merged]
}

// New returns an empty taxonomy with DefaultShards shards.
func New() *Taxonomy { return NewSharded(DefaultShards) }

// NewSharded returns an empty taxonomy with n shards (n <= 0 selects
// DefaultShards). Higher shard counts reduce write contention during
// parallel construction; shard count does not affect query results.
func NewSharded(n int) *Taxonomy {
	if n <= 0 {
		n = DefaultShards
	}
	t := &Taxonomy{shards: make([]shard, n)}
	for i := range t.shards {
		t.shards[i] = shard{
			edges:          make(map[edgeKey]*Edge),
			hypers:         make(map[string][]string),
			hypos:          make(map[string][]string),
			kinds:          make(map[string]NodeKind),
			unsortedHypers: make(map[string]bool),
			unsortedHypos:  make(map[string]bool),
		}
	}
	return t
}

// ShardCount returns the number of shards.
func (t *Taxonomy) ShardCount() int { return len(t.shards) }

// fnv32a hashes s with 32-bit FNV-1a.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (t *Taxonomy) shardIndex(name string) int {
	return int(fnv32a(name) % uint32(len(t.shards)))
}

func (t *Taxonomy) shardOf(name string) *shard { return &t.shards[t.shardIndex(name)] }

// invalidate drops the finalized merged indexes. The generation bump
// comes first so a Finalize computing concurrently publishes its
// result under an outdated generation and readers ignore it.
func (t *Taxonomy) invalidate() {
	t.writeGen.Add(1)
	t.final.Store(nil)
}

// mergedIndexes returns the finalized indexes if they are still
// current, nil otherwise.
func (t *Taxonomy) mergedIndexes() *merged {
	if m := t.final.Load(); m != nil && m.gen == t.writeGen.Load() {
		return m
	}
	return nil
}

// lockPair write-locks the shards of a and b in index order (deadlock
// free) and returns the corresponding shards plus an unlock function.
func (t *Taxonomy) lockPair(a, b string) (sa, sb *shard, unlock func()) {
	i, j := t.shardIndex(a), t.shardIndex(b)
	sa, sb = &t.shards[i], &t.shards[j]
	if i == j {
		sa.mu.Lock()
		return sa, sb, sa.mu.Unlock
	}
	lo, hi := sa, sb
	if i > j {
		lo, hi = sb, sa
	}
	lo.mu.Lock()
	hi.mu.Lock()
	return sa, sb, func() { hi.mu.Unlock(); lo.mu.Unlock() }
}

// MarkEntity declares node as an entity.
func (t *Taxonomy) MarkEntity(id string) { t.mark(id, KindEntity) }

// MarkConcept declares node as a concept.
func (t *Taxonomy) MarkConcept(name string) { t.mark(name, KindConcept) }

func (t *Taxonomy) mark(name string, k NodeKind) {
	if name == "" {
		return
	}
	sh := t.shardOf(name)
	sh.mu.Lock()
	if sh.kinds[name] == KindUnknown {
		sh.kinds[name] = k
	}
	sh.mu.Unlock()
	t.invalidate()
}

// ImportKind overwrites the node kind unconditionally. It is the
// deserialization counterpart of MarkEntity/MarkConcept: JSON and
// binary-snapshot loaders restore saved kinds through it. KindUnknown
// entries are dropped rather than stored — Unknown is the absence of a
// kind, and storing it would make a parallel restore racy against
// InsertEdge's implicit concept marking.
func (t *Taxonomy) ImportKind(name string, k NodeKind) {
	if name == "" {
		return
	}
	sh := t.shardOf(name)
	sh.mu.Lock()
	if k == KindUnknown {
		delete(sh.kinds, name)
	} else {
		sh.kinds[name] = k
	}
	sh.mu.Unlock()
	t.invalidate()
}

// Kind returns the node kind of name.
func (t *Taxonomy) Kind(name string) NodeKind {
	sh := t.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.kinds[name]
}

// AddIsA inserts or reinforces the isA(hypo, hyper) edge. Self-loops
// are rejected. Hypernyms are implicitly marked as concepts; hyponyms
// keep their current kind (entities are marked via MarkEntity by the
// pipeline; hyponyms that are concepts form subconcept edges).
func (t *Taxonomy) AddIsA(hypo, hyper string, src Source, score float64) error {
	if hypo == "" || hyper == "" {
		return fmt.Errorf("taxonomy: empty node in isA(%q, %q)", hypo, hyper)
	}
	if hypo == hyper {
		return fmt.Errorf("taxonomy: self-loop isA(%q, %q)", hypo, hyper)
	}
	sa, sb, unlock := t.lockPair(hypo, hyper)
	defer unlock()
	k := edgeKey{hypo, hyper}
	if e, ok := sa.edges[k]; ok {
		e.Sources |= src
		e.Count++
		if score > e.Score {
			e.Score = score
		}
		t.invalidate()
		return nil
	}
	sa.edges[k] = &Edge{Hypo: hypo, Hyper: hyper, Sources: src, Score: score, Count: 1}
	sa.hypers[hypo] = append(sa.hypers[hypo], hyper)
	sa.unsortedHypers[hypo] = true
	sb.hypos[hyper] = append(sb.hypos[hyper], hypo)
	sb.unsortedHypos[hyper] = true
	if sb.kinds[hyper] == KindUnknown {
		sb.kinds[hyper] = KindConcept
	}
	t.invalidate()
	return nil
}

// InsertEdge installs an edge verbatim: the full provenance — sources,
// score, evidence count — is taken from e rather than re-derived. It is
// the deserialization counterpart of AddIsA (which merges evidence);
// loaders restoring a saved graph use it so counts and scores round-trip
// bit-exactly. An existing (Hypo, Hyper) edge is overwritten in place.
// Like AddIsA, the hypernym is implicitly marked as a concept when its
// kind is still unknown, so edge and kind sections may be restored
// concurrently in any order.
func (t *Taxonomy) InsertEdge(e Edge) error {
	if e.Hypo == "" || e.Hyper == "" {
		return fmt.Errorf("taxonomy: empty node in isA(%q, %q)", e.Hypo, e.Hyper)
	}
	if e.Hypo == e.Hyper {
		return fmt.Errorf("taxonomy: self-loop isA(%q, %q)", e.Hypo, e.Hyper)
	}
	sa, sb, unlock := t.lockPair(e.Hypo, e.Hyper)
	defer unlock()
	k := edgeKey{e.Hypo, e.Hyper}
	if old, ok := sa.edges[k]; ok {
		*old = e
	} else {
		cp := e
		sa.edges[k] = &cp
		sa.hypers[e.Hypo] = append(sa.hypers[e.Hypo], e.Hyper)
		sa.unsortedHypers[e.Hypo] = true
		sb.hypos[e.Hyper] = append(sb.hypos[e.Hyper], e.Hypo)
		sb.unsortedHypos[e.Hyper] = true
	}
	if sb.kinds[e.Hyper] == KindUnknown {
		sb.kinds[e.Hyper] = KindConcept
	}
	t.invalidate()
	return nil
}

// RemoveIsA deletes the edge if present and reports whether it existed.
// Concept endpoints left without any remaining edge are demoted: their
// kinds entry is dropped, so a concept whose last hyponym is retracted
// by re-verification stops counting toward Stats.Concepts instead of
// drifting the count upward across update batches. Entities (marked
// via MarkEntity) always survive retraction.
func (t *Taxonomy) RemoveIsA(hypo, hyper string) bool {
	sa, sb, unlock := t.lockPair(hypo, hyper)
	defer unlock()
	k := edgeKey{hypo, hyper}
	if _, ok := sa.edges[k]; !ok {
		return false
	}
	delete(sa.edges, k)
	if hs := removeString(sa.hypers[hypo], hyper); len(hs) > 0 {
		sa.hypers[hypo] = hs
	} else {
		delete(sa.hypers, hypo) // empty entries would skew NodesWithHypernym
	}
	if hs := removeString(sb.hypos[hyper], hypo); len(hs) > 0 {
		sb.hypos[hyper] = hs
	} else {
		delete(sb.hypos, hyper)
	}
	// Demote orphaned concepts. A node's adjacency both ways lives in
	// its own shard (hypers is keyed by the hyponym side, hypos by the
	// hypernym side), so each endpoint check stays inside the shard
	// lock already held.
	if sb.kinds[hyper] == KindConcept && len(sb.hypos[hyper]) == 0 && len(sb.hypers[hyper]) == 0 {
		delete(sb.kinds, hyper)
	}
	if sa.kinds[hypo] == KindConcept && len(sa.hypers[hypo]) == 0 && len(sa.hypos[hypo]) == 0 {
		delete(sa.kinds, hypo)
	}
	t.invalidate()
	return true
}

func removeString(xs []string, x string) []string {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// HasIsA reports whether the direct edge exists.
func (t *Taxonomy) HasIsA(hypo, hyper string) bool {
	sh := t.shardOf(hypo)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.edges[edgeKey{hypo, hyper}]
	return ok
}

// EdgeOf returns a copy of the edge, if present.
func (t *Taxonomy) EdgeOf(hypo, hyper string) (Edge, bool) {
	sh := t.shardOf(hypo)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.edges[edgeKey{hypo, hyper}]
	if !ok {
		return Edge{}, false
	}
	return *e, true
}

// Hypernyms returns the direct hypernyms of node (getConcept in the
// paper's API table).
func (t *Taxonomy) Hypernyms(node string) []string {
	sh := t.shardOf(node)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]string(nil), sh.hypers[node]...)
}

// Hyponyms returns up to limit direct hyponyms of a concept (getEntity
// in the paper's API table); limit <= 0 means all.
func (t *Taxonomy) Hyponyms(concept string, limit int) []string {
	sh := t.shardOf(concept)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	hs := sh.hypos[concept]
	if limit <= 0 || limit > len(hs) {
		limit = len(hs)
	}
	return append([]string(nil), hs[:limit]...)
}

// HyponymCount returns the number of direct hyponyms of a concept.
func (t *Taxonomy) HyponymCount(concept string) int {
	sh := t.shardOf(concept)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.hypos[concept])
}

// Ancestors returns all transitive hypernyms of node, breadth-first,
// excluding node itself. Cycles are tolerated. Each BFS step reads one
// shard; concurrent writers may interleave, in which case the result is
// a best-effort snapshot (exact once construction has finished).
func (t *Taxonomy) Ancestors(node string) []string {
	seen := map[string]bool{node: true}
	var out []string
	queue := t.Hypernyms(node)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, cur)
		queue = append(queue, t.Hypernyms(cur)...)
	}
	return out
}

// IsAncestor reports whether hyper is reachable from hypo.
func (t *Taxonomy) IsAncestor(hypo, hyper string) bool {
	for _, a := range t.Ancestors(hypo) {
		if a == hyper {
			return true
		}
	}
	return false
}

// Nodes returns all node names, sorted. After Finalize the merged
// sorted list is served from cache.
func (t *Taxonomy) Nodes() []string {
	if m := t.mergedIndexes(); m != nil {
		return append([]string(nil), m.nodes...)
	}
	return t.computeNodes()
}

func (t *Taxonomy) computeNodes() []string {
	seen := make(map[string]bool)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for k := range sh.edges {
			seen[k.hypo] = true
			seen[k.hyper] = true
		}
		for n := range sh.kinds {
			seen[n] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns copies of all edges, sorted for determinism.
func (t *Taxonomy) Edges() []Edge {
	out := make([]Edge, 0, t.EdgeCount())
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, e := range sh.edges {
			out = append(out, *e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hypo != out[j].Hypo {
			return out[i].Hypo < out[j].Hypo
		}
		return out[i].Hyper < out[j].Hyper
	})
	return out
}

// EdgeCount returns the number of isA edges.
func (t *Taxonomy) EdgeCount() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.edges)
		sh.mu.RUnlock()
	}
	return n
}

// Stats summarizes the taxonomy in the shape of the paper's Table I
// row: entities, concepts, and the entity-concept / subconcept-concept
// split of isA edges.
type Stats struct {
	Entities          int `json:"entities"`
	Concepts          int `json:"concepts"`
	IsARelations      int `json:"isa_relations"`
	EntityConceptIsA  int `json:"entity_concept_isa"`
	SubConceptIsA     int `json:"subconcept_isa"`
	NodesWithHypernym int `json:"nodes_with_hypernym"`
}

// snapshotKinds copies the merged kind map, one shard at a time.
func (t *Taxonomy) snapshotKinds() map[string]NodeKind {
	out := make(map[string]NodeKind)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for n, k := range sh.kinds {
			out[n] = k
		}
		sh.mu.RUnlock()
	}
	return out
}

// ComputeStats walks the graph once and classifies edges by hyponym
// kind. After Finalize the cached stats are returned.
func (t *Taxonomy) ComputeStats() Stats {
	if m := t.mergedIndexes(); m != nil {
		return m.stats
	}
	return t.computeStats()
}

func (t *Taxonomy) computeStats() Stats {
	var s Stats
	kinds := t.snapshotKinds()
	seenEnt := make(map[string]bool)
	seenCon := make(map[string]bool)
	for n, k := range kinds {
		switch k {
		case KindEntity:
			seenEnt[n] = true
		case KindConcept:
			seenCon[n] = true
		}
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		s.NodesWithHypernym += len(sh.hypers)
		for k := range sh.edges {
			if kinds[k.hyper] == KindConcept {
				seenCon[k.hyper] = true
			}
			switch kinds[k.hypo] {
			case KindEntity:
				s.EntityConceptIsA++
			case KindConcept:
				s.SubConceptIsA++
			default:
				s.EntityConceptIsA++ // unmarked hyponyms behave as instances
			}
		}
		s.IsARelations += len(sh.edges)
		sh.mu.RUnlock()
	}
	s.Entities = len(seenEnt)
	s.Concepts = len(seenCon)
	return s
}

// Finalize builds the merged cross-shard indexes once construction is
// done: adjacency lists are put into canonical (sorted) order — so the
// result of a parallel build is structurally identical to a sequential
// one — and the sorted node list plus stats are cached for the serving
// path. Any subsequent write invalidates the caches; Finalize can be
// called again after further updates. A write racing Finalize bumps
// the generation the cache is published under, so the stale cache is
// ignored rather than served.
func (t *Taxonomy) Finalize() {
	gen := t.writeGen.Load()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		// Only lists appended to since the last Finalize can be out of
		// order (removals preserve order), so re-finalizing after an
		// incremental update costs O(touched), not O(store).
		for n := range sh.unsortedHypers {
			sort.Strings(sh.hypers[n])
		}
		for n := range sh.unsortedHypos {
			sort.Strings(sh.hypos[n])
		}
		sh.unsortedHypers = make(map[string]bool)
		sh.unsortedHypos = make(map[string]bool)
		sh.mu.Unlock()
	}
	t.final.Store(&merged{gen: gen, nodes: t.computeNodes(), stats: t.computeStats()})
}

// Finalized reports whether the merged indexes are currently valid.
func (t *Taxonomy) Finalized() bool { return t.mergedIndexes() != nil }

// ---- partitioned export (binary snapshots) ----

// KindEntry is one explicitly marked node in a Partition.
type KindEntry struct {
	Name string
	Kind NodeKind
}

// Partition is one hash-partitioned slice of the store's logical
// content: the marked nodes and edges whose owning name (node name for
// kinds, hyponym for edges) hashes into the partition.
type Partition struct {
	Kinds []KindEntry
	Edges []Edge
}

// ExportPartitions splits the store's content into n hash partitions:
// entry i holds the kinds of nodes with fnv32a(name) % n == i and the
// edges with fnv32a(hypo) % n == i. The partitioning depends only on
// the logical content and n — not on the store's shard count — which
// is what lets a snapshot format built on it stay byte-stable across
// Shards settings. Entry order within a partition is unspecified
// (callers needing determinism sort); KindUnknown entries are omitted.
// Shards are read one RLock at a time, so a concurrent writer may or
// may not be reflected (exact once construction has finished).
func (t *Taxonomy) ExportPartitions(n int) []Partition {
	if n <= 0 {
		n = 1
	}
	parts := make([]Partition, n)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for name, k := range sh.kinds {
			if k == KindUnknown {
				continue
			}
			p := &parts[fnv32a(name)%uint32(n)]
			p.Kinds = append(p.Kinds, KindEntry{Name: name, Kind: k})
		}
		for _, e := range sh.edges {
			p := &parts[fnv32a(e.Hypo)%uint32(n)]
			p.Edges = append(p.Edges, *e)
		}
		sh.mu.RUnlock()
	}
	return parts
}

// ---- serialization ----

type taxJSON struct {
	Kinds map[string]NodeKind `json:"kinds"`
	Edges []Edge              `json:"edges"`
}

// WriteJSON serializes the taxonomy.
func (t *Taxonomy) WriteJSON(w io.Writer) error {
	out := taxJSON{Kinds: t.snapshotKinds(), Edges: t.Edges()}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(out); err != nil {
		return fmt.Errorf("taxonomy: encode: %w", err)
	}
	return bw.Flush()
}

// ReadJSON loads a taxonomy written by WriteJSON.
func ReadJSON(r io.Reader) (*Taxonomy, error) {
	var in taxJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("taxonomy: decode: %w", err)
	}
	t := New()
	for n, k := range in.Kinds {
		t.ImportKind(n, k)
	}
	for _, e := range in.Edges {
		if err := t.InsertEdge(e); err != nil {
			return nil, err
		}
	}
	return t, nil
}
