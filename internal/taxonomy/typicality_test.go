package taxonomy

import (
	"math"
	"testing"
)

// buildTypicality creates: 刘德华 isA 演员 (count 3: three sources),
// 刘德华 isA 歌手 (count 1); 张学友 isA 歌手 (count 1).
func buildTypicality(t *testing.T) *Taxonomy {
	t.Helper()
	tx := New()
	tx.MarkEntity("刘德华")
	tx.MarkEntity("张学友")
	mustAdd(t, tx, "刘德华", "演员", SourceBracket)
	mustAdd(t, tx, "刘德华", "演员", SourceTag)
	mustAdd(t, tx, "刘德华", "演员", SourceInfobox)
	mustAdd(t, tx, "刘德华", "歌手", SourceTag)
	mustAdd(t, tx, "张学友", "歌手", SourceTag)
	return tx
}

func TestTypicalityOfConcept(t *testing.T) {
	tx := buildTypicality(t)
	if got := tx.TypicalityOfConcept("刘德华", "演员"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(演员|刘德华) = %v, want 0.75", got)
	}
	if got := tx.TypicalityOfConcept("刘德华", "歌手"); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(歌手|刘德华) = %v, want 0.25", got)
	}
	if got := tx.TypicalityOfConcept("刘德华", "导演"); got != 0 {
		t.Errorf("absent edge typicality = %v, want 0", got)
	}
}

func TestTypicalityOfInstance(t *testing.T) {
	tx := buildTypicality(t)
	// 歌手 has two instances with count 1 each.
	if got := tx.TypicalityOfInstance("歌手", "刘德华"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(刘德华|歌手) = %v, want 0.5", got)
	}
	if got := tx.TypicalityOfInstance("演员", "刘德华"); got != 1 {
		t.Errorf("P(刘德华|演员) = %v, want 1", got)
	}
}

func TestRankedHypernyms(t *testing.T) {
	tx := buildTypicality(t)
	ranked := tx.RankedHypernyms("刘德华", 0)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Node != "演员" || ranked[1].Node != "歌手" {
		t.Errorf("order = %v, want 演员 then 歌手", ranked)
	}
	if got := tx.RankedHypernyms("刘德华", 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
	if got := tx.RankedHypernyms("无人", 0); len(got) != 0 {
		t.Errorf("unknown node ranked = %v", got)
	}
}

func TestRankedHyponyms(t *testing.T) {
	tx := buildTypicality(t)
	ranked := tx.RankedHyponyms("歌手", 0)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	// Equal scores break ties lexicographically.
	if ranked[0].Node > ranked[1].Node {
		t.Errorf("tie-break order wrong: %v", ranked)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	tx := buildTypicality(t)
	sum := 0.0
	for _, s := range tx.RankedHypernyms("刘德华", 0) {
		sum += s.Score
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("P(c|e) sums to %v, want 1", sum)
	}
	sum = 0
	for _, s := range tx.RankedHyponyms("歌手", 0) {
		sum += s.Score
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("P(e|c) sums to %v, want 1", sum)
	}
}
