package taxonomy

import "sort"

// Probase-style typicality scores. CN-Probase inherits Probase's
// probabilistic reading of the isA graph: evidence counts on edges
// induce P(concept | entity) and P(entity | concept), which downstream
// applications (conceptualization, short-text understanding) rank by.
// The evidence for an edge is its Count — how many independent
// generation events produced it — Laplace-smoothed across siblings.

// Scored couples a node with a typicality score.
type Scored struct {
	Node  string  `json:"node"`
	Score float64 `json:"score"`
}

// TypicalityOfConcept returns P(hyper | hypo): how typical the concept
// is for the entity, from the edge evidence counts. Zero when the edge
// is absent.
func (t *Taxonomy) TypicalityOfConcept(hypo, hyper string) float64 {
	// All of hypo's outgoing edges live in hypo's shard, so one lock
	// covers the whole sibling scan.
	sh := t.shardOf(hypo)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.edges[edgeKey{hypo, hyper}]
	if !ok {
		return 0
	}
	total := 0
	for _, h := range sh.hypers[hypo] {
		if sib, ok := sh.edges[edgeKey{hypo, h}]; ok {
			total += sib.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(e.Count) / float64(total)
}

// TypicalityOfInstance returns P(hypo | hyper): how representative the
// instance is of the concept.
func (t *Taxonomy) TypicalityOfInstance(hyper, hypo string) float64 {
	// Sibling edges are keyed by their own hyponyms and may live in any
	// shard, so collect the hyponym list first and read each edge
	// through EdgeOf — never holding two shard locks at once.
	e, ok := t.EdgeOf(hypo, hyper)
	if !ok {
		return 0
	}
	total := 0
	for _, h := range t.Hyponyms(hyper, 0) {
		if sib, ok := t.EdgeOf(h, hyper); ok {
			total += sib.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(e.Count) / float64(total)
}

// RankedHypernyms returns the node's hypernyms sorted by descending
// typicality (ties broken lexicographically); limit <= 0 returns all.
func (t *Taxonomy) RankedHypernyms(node string, limit int) []Scored {
	hypers := t.Hypernyms(node)
	out := make([]Scored, 0, len(hypers))
	for _, h := range hypers {
		out = append(out, Scored{Node: h, Score: t.TypicalityOfConcept(node, h)})
	}
	sortScored(out)
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

// RankedHyponyms returns the concept's hyponyms sorted by descending
// typicality; limit <= 0 returns all.
func (t *Taxonomy) RankedHyponyms(concept string, limit int) []Scored {
	hypos := t.Hyponyms(concept, 0)
	out := make([]Scored, 0, len(hypos))
	for _, h := range hypos {
		out = append(out, Scored{Node: h, Score: t.TypicalityOfInstance(concept, h)})
	}
	sortScored(out)
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

func sortScored(xs []Scored) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return xs[i].Node < xs[j].Node
	})
}
