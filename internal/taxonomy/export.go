package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Exporters for releasing the taxonomy as a resource, matching how the
// authors published CN-Probase (a downloadable edge list plus a
// browsable graph).

// WriteTSV writes the edge list as tab-separated
// hyponym/hypernym/sources/count lines, the conventional release format
// for taxonomy resources.
func (t *Taxonomy) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "hyponym\thypernym\tsources\tcount"); err != nil {
		return fmt.Errorf("taxonomy: write tsv header: %w", err)
	}
	for _, e := range t.Edges() {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%d\n", e.Hypo, e.Hyper, e.Sources, e.Count); err != nil {
			return fmt.Errorf("taxonomy: write tsv edge: %w", err)
		}
	}
	return bw.Flush()
}

// WriteDOT writes a GraphViz digraph of the concept level: subconcept
// edges plus, for each concept, its hyponym count as a label. Entity
// nodes are omitted (15M nodes do not render); the concept graph is
// what the paper's Figure 2 sketches.
func (t *Taxonomy) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "digraph taxonomy {"); err != nil {
		return fmt.Errorf("taxonomy: write dot: %w", err)
	}
	fmt.Fprintln(bw, `  rankdir=BT;`)
	fmt.Fprintln(bw, `  node [shape=box, fontname="sans"];`)
	for _, n := range t.Nodes() {
		if t.Kind(n) != KindConcept {
			continue
		}
		fmt.Fprintf(bw, "  %q [label=\"%s\\n(%d)\"];\n", n, escapeDOT(n), t.HyponymCount(n))
	}
	for _, e := range t.Edges() {
		if t.Kind(e.Hypo) != KindConcept || t.Kind(e.Hyper) != KindConcept {
			continue
		}
		fmt.Fprintf(bw, "  %q -> %q;\n", e.Hypo, e.Hyper)
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return fmt.Errorf("taxonomy: write dot: %w", err)
	}
	return bw.Flush()
}

func escapeDOT(s string) string {
	return strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(s)
}
