package taxonomy

import (
	"sort"
	"strings"
	"sync"

	"cnprobase/internal/trie"
)

// MentionIndex maps surface mentions (titles, aliases) to disambiguated
// entity IDs: the men2ent API of the paper's Table II. It also answers
// "which mentions occur inside this text", which the QA-coverage
// experiment needs.
type MentionIndex struct {
	mu       sync.RWMutex
	mentions map[string][]string // mention → entity IDs
	dict     *trie.Trie
}

// NewMentionIndex returns an empty index.
func NewMentionIndex() *MentionIndex {
	return &MentionIndex{mentions: make(map[string][]string), dict: trie.New()}
}

// Add registers a mention for an entity ID. Duplicate (mention, id)
// pairs are ignored.
func (m *MentionIndex) Add(mention, entityID string) {
	mention = strings.TrimSpace(mention)
	if mention == "" || entityID == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range m.mentions[mention] {
		if id == entityID {
			return
		}
	}
	m.mentions[mention] = append(m.mentions[mention], entityID)
	m.dict.Insert(mention)
}

// Lookup returns the entity IDs a mention may refer to, sorted.
func (m *MentionIndex) Lookup(mention string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := append([]string(nil), m.mentions[strings.TrimSpace(mention)]...)
	sort.Strings(out)
	return out
}

// Size returns the number of distinct mentions.
func (m *MentionIndex) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.mentions)
}

// MentionEntry is one mention → entity-ID mapping in an exported
// partition.
type MentionEntry struct {
	Mention string
	IDs     []string
}

// ExportPartitions splits the index into n hash partitions: entry i
// holds the mentions with fnv32a(mention) % n == i, each with a copy of
// its ID list. Like Taxonomy.ExportPartitions, the split depends only
// on the logical content and n; entry order within a partition is
// unspecified and ID lists keep their insertion order (Lookup sorts, so
// ID order is not query-visible).
func (m *MentionIndex) ExportPartitions(n int) [][]MentionEntry {
	if n <= 0 {
		n = 1
	}
	parts := make([][]MentionEntry, n)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for mention, ids := range m.mentions {
		i := fnv32a(mention) % uint32(n)
		parts[i] = append(parts[i], MentionEntry{Mention: mention, IDs: append([]string(nil), ids...)})
	}
	return parts
}

// FindAll scans text and returns the distinct mentions found, using
// greedy longest-match from each position.
func (m *MentionIndex) FindAll(text string) []string {
	return m.FindAllAppend(nil, text)
}

// FindAllAppend is FindAll in append style: found mentions are
// appended to dst and the extended slice is returned. Deduplication
// applies to the mentions appended by this call, not to dst's prior
// contents. serving.View.FindAllAppend is the allocation-free
// equivalent on the immutable view.
func (m *MentionIndex) FindAllAppend(dst []string, text string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rs := []rune(text)
	base := len(dst)
	for i := 0; i < len(rs); {
		l := m.dict.LongestFrom(rs, i)
		if l == 0 {
			i++
			continue
		}
		w := string(rs[i : i+l])
		found := false
		for _, x := range dst[base:] {
			if x == w {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, w)
		}
		i += l
	}
	return dst
}
