package taxonomy

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddIsAAndLookups(t *testing.T) {
	tx := New()
	tx.MarkEntity("刘德华")
	mustAdd(t, tx, "刘德华", "演员", SourceBracket)
	mustAdd(t, tx, "刘德华", "歌手", SourceTag)
	mustAdd(t, tx, "男演员", "演员", SourceMorph)

	if !tx.HasIsA("刘德华", "演员") {
		t.Error("HasIsA = false")
	}
	hs := tx.Hypernyms("刘德华")
	if len(hs) != 2 {
		t.Fatalf("Hypernyms = %v", hs)
	}
	hypos := tx.Hyponyms("演员", 0)
	if len(hypos) != 2 {
		t.Fatalf("Hyponyms = %v", hypos)
	}
	if got := tx.Hyponyms("演员", 1); len(got) != 1 {
		t.Errorf("Hyponyms with limit = %v", got)
	}
	if tx.HyponymCount("演员") != 2 {
		t.Errorf("HyponymCount = %d", tx.HyponymCount("演员"))
	}
	if tx.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d", tx.EdgeCount())
	}
}

func TestAddIsARejectsDegenerate(t *testing.T) {
	tx := New()
	if err := tx.AddIsA("a", "a", SourceTag, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := tx.AddIsA("", "b", SourceTag, 1); err == nil {
		t.Error("empty hyponym accepted")
	}
	if err := tx.AddIsA("a", "", SourceTag, 1); err == nil {
		t.Error("empty hypernym accepted")
	}
}

func TestDuplicateEdgeMergesProvenance(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "a", "b", SourceTag)
	mustAdd(t, tx, "a", "b", SourceBracket)
	e, ok := tx.EdgeOf("a", "b")
	if !ok {
		t.Fatal("edge missing")
	}
	if e.Count != 2 {
		t.Errorf("Count = %d, want 2", e.Count)
	}
	if e.Sources&SourceTag == 0 || e.Sources&SourceBracket == 0 {
		t.Errorf("Sources = %v", e.Sources)
	}
	if tx.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", tx.EdgeCount())
	}
}

func TestRemoveIsA(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "a", "b", SourceTag)
	if !tx.RemoveIsA("a", "b") {
		t.Error("RemoveIsA returned false")
	}
	if tx.RemoveIsA("a", "b") {
		t.Error("second RemoveIsA returned true")
	}
	if tx.HasIsA("a", "b") || len(tx.Hypernyms("a")) != 0 || len(tx.Hyponyms("b", 0)) != 0 {
		t.Error("edge not fully removed from indexes")
	}
}

// TestRemoveIsADemotesOrphanedConcepts pins the concept-count drift
// bug: retracting a concept's last edge must drop its implicit concept
// marking, so Stats.Concepts does not creep upward across update
// batches. Entities and concepts that still participate in edges
// survive.
func TestRemoveIsADemotesOrphanedConcepts(t *testing.T) {
	tx := New()
	tx.MarkEntity("实体甲")
	mustAdd(t, tx, "实体甲", "概念", SourceTag)
	if got := tx.ComputeStats().Concepts; got != 1 {
		t.Fatalf("Concepts = %d, want 1", got)
	}
	if !tx.RemoveIsA("实体甲", "概念") {
		t.Fatal("RemoveIsA returned false")
	}
	if got := tx.Kind("概念"); got != KindUnknown {
		t.Errorf("orphaned concept kind = %v, want demoted to unknown", got)
	}
	if got := tx.ComputeStats().Concepts; got != 0 {
		t.Errorf("Concepts after retraction = %d, want 0", got)
	}
	// The entity endpoint survives retraction.
	if got := tx.Kind("实体甲"); got != KindEntity {
		t.Errorf("entity kind after retraction = %v, want entity", got)
	}
	if got := tx.ComputeStats().Entities; got != 1 {
		t.Errorf("Entities = %d, want 1", got)
	}

	// A concept that still appears as a hyponym elsewhere (subconcept
	// edge) is not demoted when it loses its last hyponym.
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	mustAdd(t, tx, "实体甲", "男演员", SourceTag)
	if !tx.RemoveIsA("实体甲", "男演员") {
		t.Fatal("RemoveIsA returned false")
	}
	if got := tx.Kind("男演员"); got != KindConcept {
		t.Errorf("男演员 kind = %v, want concept (still a hyponym of 演员)", got)
	}
}

// TestStatsStableAcrossRetractionBatches simulates the update loop:
// edges added and retracted over several batches must leave the
// concept count describing only concepts that still have edges.
func TestStatsStableAcrossRetractionBatches(t *testing.T) {
	tx := New()
	tx.MarkEntity("常驻实体")
	mustAdd(t, tx, "常驻实体", "常驻概念", SourceTag)
	base := tx.ComputeStats()
	for batch := 0; batch < 5; batch++ {
		hypo := fmt.Sprintf("临时实体%d", batch)
		hyper := fmt.Sprintf("临时概念%d", batch)
		tx.MarkEntity(hypo)
		mustAdd(t, tx, hypo, hyper, SourceTag)
		if got := tx.ComputeStats().Concepts; got != base.Concepts+1 {
			t.Fatalf("batch %d: Concepts = %d, want %d", batch, got, base.Concepts+1)
		}
		// Union-wide re-verification retracts the batch's edge again.
		if !tx.RemoveIsA(hypo, hyper) {
			t.Fatalf("batch %d: RemoveIsA returned false", batch)
		}
		if got := tx.ComputeStats().Concepts; got != base.Concepts {
			t.Fatalf("batch %d: Concepts drifted to %d, want %d", batch, got, base.Concepts)
		}
	}
}

func TestAncestorsBFS(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	mustAdd(t, tx, "演员", "人物", SourceTag)
	mustAdd(t, tx, "刘德华", "男演员", SourceBracket)
	anc := tx.Ancestors("刘德华")
	want := map[string]bool{"男演员": true, "演员": true, "人物": true}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v", anc)
	}
	for _, a := range anc {
		if !want[a] {
			t.Fatalf("unexpected ancestor %q", a)
		}
	}
	if !tx.IsAncestor("刘德华", "人物") {
		t.Error("IsAncestor transitive = false")
	}
	if tx.IsAncestor("人物", "刘德华") {
		t.Error("IsAncestor inverted = true")
	}
}

func TestAncestorsToleratesCycle(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "a", "b", SourceTag)
	mustAdd(t, tx, "b", "a", SourceTag)
	anc := tx.Ancestors("a")
	if len(anc) != 2 { // b then a-again excluded? a is start: seen
		// b and a reachable; a excluded as start.
		if len(anc) != 1 {
			t.Fatalf("Ancestors with cycle = %v", anc)
		}
	}
}

func TestKinds(t *testing.T) {
	tx := New()
	tx.MarkEntity("刘德华")
	mustAdd(t, tx, "刘德华", "演员", SourceTag)
	if tx.Kind("刘德华") != KindEntity {
		t.Error("entity kind lost")
	}
	if tx.Kind("演员") != KindConcept {
		t.Error("hypernym not auto-marked concept")
	}
	if tx.Kind("无名") != KindUnknown {
		t.Error("unknown node has a kind")
	}
	// MarkConcept must not overwrite entity.
	tx.MarkConcept("刘德华")
	if tx.Kind("刘德华") != KindEntity {
		t.Error("MarkConcept overwrote entity kind")
	}
}

func TestComputeStats(t *testing.T) {
	tx := New()
	tx.MarkEntity("刘德华")
	mustAdd(t, tx, "刘德华", "演员", SourceBracket)
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	tx.MarkConcept("男演员")
	st := tx.ComputeStats()
	if st.Entities != 1 {
		t.Errorf("Entities = %d", st.Entities)
	}
	if st.Concepts != 2 { // 演员, 男演员
		t.Errorf("Concepts = %d", st.Concepts)
	}
	if st.IsARelations != 2 || st.EntityConceptIsA != 1 || st.SubConceptIsA != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tx := New()
	tx.MarkEntity("刘德华")
	mustAdd(t, tx, "刘德华", "演员", SourceBracket)
	mustAdd(t, tx, "刘德华", "演员", SourceTag) // count 2
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	var buf bytes.Buffer
	if err := tx.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.EdgeCount() != tx.EdgeCount() {
		t.Fatalf("edges = %d, want %d", got.EdgeCount(), tx.EdgeCount())
	}
	e, _ := got.EdgeOf("刘德华", "演员")
	if e.Count != 2 || e.Sources != SourceBracket|SourceTag {
		t.Errorf("edge lost detail: %+v", e)
	}
	if got.Kind("刘德华") != KindEntity {
		t.Error("kind lost in round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("ReadJSON accepted garbage")
	}
}

func TestEdgesSortedDeterministic(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "b", "x", SourceTag)
	mustAdd(t, tx, "a", "y", SourceTag)
	mustAdd(t, tx, "a", "x", SourceTag)
	es := tx.Edges()
	for i := 1; i < len(es); i++ {
		prev, cur := es[i-1], es[i]
		if prev.Hypo > cur.Hypo || (prev.Hypo == cur.Hypo && prev.Hyper > cur.Hyper) {
			t.Fatalf("Edges not sorted: %+v", es)
		}
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	tx := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := string(rune('a' + g))
				_ = tx.AddIsA(name+"实体", "概念", SourceTag, 1)
				_ = tx.Hypernyms(name + "实体")
				_ = tx.Hyponyms("概念", 10)
				_ = tx.ComputeStats()
			}
		}(g)
	}
	wg.Wait()
}

func TestSourceString(t *testing.T) {
	if got := (SourceBracket | SourceTag).String(); got != "bracket+tag" {
		t.Errorf("String = %q", got)
	}
	if got := Source(0).String(); got != "none" {
		t.Errorf("zero Source = %q", got)
	}
}

// Property: after any sequence of valid adds, every hypernym list entry
// has a matching reverse index entry.
func TestQuickIndexesConsistent(t *testing.T) {
	names := []string{"甲", "乙", "丙", "丁", "戊"}
	f := func(pairs [][2]uint8) bool {
		tx := New()
		for _, p := range pairs {
			hypo := names[int(p[0])%len(names)]
			hyper := names[int(p[1])%len(names)]
			if hypo == hyper {
				continue
			}
			if err := tx.AddIsA(hypo, hyper, SourceTag, 1); err != nil {
				return false
			}
		}
		for _, n := range tx.Nodes() {
			for _, h := range tx.Hypernyms(n) {
				found := false
				for _, back := range tx.Hyponyms(h, 0) {
					if back == n {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustAdd(t *testing.T, tx *Taxonomy, hypo, hyper string, src Source) {
	t.Helper()
	if err := tx.AddIsA(hypo, hyper, src, 1); err != nil {
		t.Fatalf("AddIsA(%q,%q): %v", hypo, hyper, err)
	}
}
