package taxonomy

import "testing"

func pathFixture(t *testing.T) *Taxonomy {
	t.Helper()
	tx := New()
	mustAdd(t, tx, "刘德华", "男演员", SourceBracket)
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	mustAdd(t, tx, "演员", "人物", SourceTag)
	mustAdd(t, tx, "刘德华", "歌手", SourceTag)
	mustAdd(t, tx, "歌手", "人物", SourceTag)
	mustAdd(t, tx, "张学友", "歌手", SourceTag)
	return tx
}

func TestPathToAncestor(t *testing.T) {
	tx := pathFixture(t)
	got := tx.PathToAncestor("刘德华", "人物")
	if len(got) != 3 { // 刘德华 → 歌手 → 人物 is the shortest
		t.Fatalf("path = %v, want length 3", got)
	}
	if got[0] != "刘德华" || got[len(got)-1] != "人物" {
		t.Errorf("path endpoints wrong: %v", got)
	}
	long := tx.PathToAncestor("刘德华", "演员")
	want := []string{"刘德华", "男演员", "演员"}
	if len(long) != len(want) {
		t.Fatalf("path = %v, want %v", long, want)
	}
	for i := range want {
		if long[i] != want[i] {
			t.Fatalf("path = %v, want %v", long, want)
		}
	}
}

func TestPathToAncestorUnreachable(t *testing.T) {
	tx := pathFixture(t)
	if got := tx.PathToAncestor("人物", "刘德华"); got != nil {
		t.Errorf("inverted path = %v, want nil", got)
	}
	if got := tx.PathToAncestor("无名", "人物"); got != nil {
		t.Errorf("unknown node path = %v", got)
	}
}

func TestPathToSelf(t *testing.T) {
	tx := pathFixture(t)
	got := tx.PathToAncestor("演员", "演员")
	if len(got) != 1 || got[0] != "演员" {
		t.Errorf("self path = %v", got)
	}
}

func TestCommonAncestors(t *testing.T) {
	tx := pathFixture(t)
	got := tx.CommonAncestors("刘德华", "张学友")
	found := map[string]bool{}
	for _, c := range got {
		found[c] = true
	}
	if !found["歌手"] || !found["人物"] {
		t.Errorf("CommonAncestors = %v, want 歌手 and 人物", got)
	}
	if found["演员"] {
		t.Errorf("演员 is not an ancestor of 张学友: %v", got)
	}
}
