package taxonomy

import "testing"

func pathFixture(t *testing.T) *Taxonomy {
	t.Helper()
	tx := New()
	mustAdd(t, tx, "刘德华", "男演员", SourceBracket)
	mustAdd(t, tx, "男演员", "演员", SourceMorph)
	mustAdd(t, tx, "演员", "人物", SourceTag)
	mustAdd(t, tx, "刘德华", "歌手", SourceTag)
	mustAdd(t, tx, "歌手", "人物", SourceTag)
	mustAdd(t, tx, "张学友", "歌手", SourceTag)
	return tx
}

func TestPathToAncestor(t *testing.T) {
	tx := pathFixture(t)
	got := tx.PathToAncestor("刘德华", "人物")
	if len(got) != 3 { // 刘德华 → 歌手 → 人物 is the shortest
		t.Fatalf("path = %v, want length 3", got)
	}
	if got[0] != "刘德华" || got[len(got)-1] != "人物" {
		t.Errorf("path endpoints wrong: %v", got)
	}
	long := tx.PathToAncestor("刘德华", "演员")
	want := []string{"刘德华", "男演员", "演员"}
	if len(long) != len(want) {
		t.Fatalf("path = %v, want %v", long, want)
	}
	for i := range want {
		if long[i] != want[i] {
			t.Fatalf("path = %v, want %v", long, want)
		}
	}
}

func TestPathToAncestorUnreachable(t *testing.T) {
	tx := pathFixture(t)
	if got := tx.PathToAncestor("人物", "刘德华"); got != nil {
		t.Errorf("inverted path = %v, want nil", got)
	}
	if got := tx.PathToAncestor("无名", "人物"); got != nil {
		t.Errorf("unknown node path = %v", got)
	}
}

func TestPathToSelf(t *testing.T) {
	tx := pathFixture(t)
	got := tx.PathToAncestor("演员", "演员")
	if len(got) != 1 || got[0] != "演员" {
		t.Errorf("self path = %v", got)
	}
}

// TestPathToSelfUnknownNode pins the self-path contract precisely: a
// node is trivially its own ancestor even when the graph has never
// seen it — the length-1 path is answered before any edge lookup.
func TestPathToSelfUnknownNode(t *testing.T) {
	tx := pathFixture(t)
	if got := tx.PathToAncestor("从未出现", "从未出现"); len(got) != 1 || got[0] != "从未出现" {
		t.Errorf("self path for unknown node = %v, want [从未出现]", got)
	}
}

// TestPathDisconnectedComponents covers nodes living in separate
// components: no path in either direction, no common ancestors, and a
// marked island node (no edges at all) behaves the same.
func TestPathDisconnectedComponents(t *testing.T) {
	tx := pathFixture(t)
	mustAdd(t, tx, "长江", "河流", SourceTag) // second component
	mustAdd(t, tx, "河流", "地理实体", SourceTag)
	tx.MarkEntity("孤岛实体") // marked but edge-free
	if got := tx.PathToAncestor("刘德华", "地理实体"); got != nil {
		t.Errorf("cross-component path = %v, want nil", got)
	}
	if got := tx.PathToAncestor("长江", "人物"); got != nil {
		t.Errorf("cross-component path = %v, want nil", got)
	}
	if got := tx.CommonAncestors("刘德华", "长江"); len(got) != 0 {
		t.Errorf("cross-component CommonAncestors = %v, want none", got)
	}
	if got := tx.CommonAncestors("刘德华", "孤岛实体"); len(got) != 0 {
		t.Errorf("island CommonAncestors = %v, want none", got)
	}
	if got := tx.PathToAncestor("孤岛实体", "人物"); got != nil {
		t.Errorf("island path = %v, want nil", got)
	}
}

// TestCommonAncestorsDiamond pins the diamond shape: ancestors
// reachable along multiple paths appear exactly once, and the
// intersection keeps only what both sides reach.
func TestCommonAncestorsDiamond(t *testing.T) {
	tx := New()
	// 底A → 左/右 → 顶 (the diamond); 底B → 右 only.
	mustAdd(t, tx, "底A", "左", SourceTag)
	mustAdd(t, tx, "底A", "右", SourceTag)
	mustAdd(t, tx, "左", "顶", SourceTag)
	mustAdd(t, tx, "右", "顶", SourceTag)
	mustAdd(t, tx, "底B", "右", SourceTag)
	tx.Finalize()

	seen := map[string]int{}
	for _, a := range tx.Ancestors("底A") {
		seen[a]++
	}
	if seen["顶"] != 1 {
		t.Errorf("diamond top appears %d times in Ancestors(底A), want exactly 1: %v", seen["顶"], tx.Ancestors("底A"))
	}
	got := tx.CommonAncestors("底A", "底B")
	want := map[string]bool{"右": true, "顶": true}
	if len(got) != len(want) {
		t.Fatalf("CommonAncestors = %v, want 右 and 顶 only", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected common ancestor %q (左 is not reachable from 底B)", c)
		}
	}
	// The shortest path through the diamond has length 3 and both
	// endpoints in place.
	if p := tx.PathToAncestor("底A", "顶"); len(p) != 3 || p[0] != "底A" || p[2] != "顶" {
		t.Errorf("diamond path = %v, want length 3 from 底A to 顶", p)
	}
}

// TestPathsTolerateCycles: verification should prevent isA cycles, but
// path queries must not hang or duplicate if one slips through.
func TestPathsTolerateCycles(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "甲", "乙", SourceTag)
	mustAdd(t, tx, "乙", "丙", SourceTag)
	mustAdd(t, tx, "丙", "甲", SourceTag) // cycle back
	if got := tx.Ancestors("甲"); len(got) != 2 {
		t.Errorf("Ancestors in a cycle = %v, want [乙 丙]", got)
	}
	if got := tx.PathToAncestor("甲", "丙"); len(got) != 3 {
		t.Errorf("path through cycle = %v, want 甲→乙→丙", got)
	}
	if got := tx.CommonAncestors("甲", "乙"); len(got) == 0 {
		t.Error("cycle members should share ancestors")
	}
}

func TestCommonAncestors(t *testing.T) {
	tx := pathFixture(t)
	got := tx.CommonAncestors("刘德华", "张学友")
	found := map[string]bool{}
	for _, c := range got {
		found[c] = true
	}
	if !found["歌手"] || !found["人物"] {
		t.Errorf("CommonAncestors = %v, want 歌手 and 人物", got)
	}
	if found["演员"] {
		t.Errorf("演员 is not an ancestor of 张学友: %v", got)
	}
}
