package taxonomy

import "testing"

func TestMentionIndexLookup(t *testing.T) {
	m := NewMentionIndex()
	m.Add("刘德华", "刘德华（演员）")
	m.Add("刘德华", "刘德华（作家）")
	m.Add("刘德华", "刘德华（演员）") // duplicate ignored
	m.Add("德华", "刘德华（演员）")
	got := m.Lookup("刘德华")
	if len(got) != 2 {
		t.Fatalf("Lookup = %v", got)
	}
	if got[0] > got[1] {
		t.Error("Lookup result not sorted")
	}
	if got := m.Lookup("  刘德华  "); len(got) != 2 {
		t.Errorf("Lookup should trim spaces, got %v", got)
	}
	if got := m.Lookup("无人"); got != nil {
		t.Errorf("Lookup unknown = %v", got)
	}
	if m.Size() != 2 {
		t.Errorf("Size = %d, want 2", m.Size())
	}
}

func TestMentionIndexIgnoresEmpty(t *testing.T) {
	m := NewMentionIndex()
	m.Add("", "id")
	m.Add("  ", "id")
	m.Add("mention", "")
	if m.Size() != 0 {
		t.Errorf("Size = %d, want 0", m.Size())
	}
}

func TestFindAll(t *testing.T) {
	m := NewMentionIndex()
	m.Add("刘德华", "刘德华（演员）")
	m.Add("忘情水", "忘情水")
	found := m.FindAll("刘德华演唱了《忘情水》，刘德华很出名。")
	if len(found) != 2 {
		t.Fatalf("FindAll = %v", found)
	}
	seen := map[string]bool{}
	for _, f := range found {
		seen[f] = true
	}
	if !seen["刘德华"] || !seen["忘情水"] {
		t.Errorf("FindAll = %v", found)
	}
}

func TestFindAllLongestMatch(t *testing.T) {
	m := NewMentionIndex()
	m.Add("刘德", "刘德")
	m.Add("刘德华", "刘德华（演员）")
	found := m.FindAll("刘德华")
	if len(found) != 1 || found[0] != "刘德华" {
		t.Errorf("FindAll = %v, want longest match 刘德华", found)
	}
}
