package taxonomy

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedEquivalence inserts the same edge multiset into stores
// with different shard counts and checks that every query-visible
// structure is identical: shard count is an implementation detail.
func TestShardedEquivalence(t *testing.T) {
	type ins struct{ hypo, hyper string }
	var edges []ins
	for i := 0; i < 200; i++ {
		edges = append(edges, ins{fmt.Sprintf("实体%03d", i), fmt.Sprintf("概念%d", i%17)})
		if i%5 == 0 {
			edges = append(edges, ins{fmt.Sprintf("概念%d", i%17), fmt.Sprintf("上位%d", i%3)})
		}
	}
	build := func(shards int) *Taxonomy {
		tx := NewSharded(shards)
		for _, e := range edges {
			if err := tx.AddIsA(e.hypo, e.hyper, SourceTag, 1); err != nil {
				t.Fatalf("AddIsA(%q,%q): %v", e.hypo, e.hyper, err)
			}
		}
		tx.MarkEntity("实体000")
		return tx
	}
	ref := build(1)
	for _, shards := range []int{2, 16, 64} {
		got := build(shards)
		if got.ShardCount() != shards {
			t.Fatalf("ShardCount = %d, want %d", got.ShardCount(), shards)
		}
		if a, b := ref.EdgeCount(), got.EdgeCount(); a != b {
			t.Fatalf("shards=%d: EdgeCount %d != %d", shards, b, a)
		}
		refEdges, gotEdges := ref.Edges(), got.Edges()
		for i := range refEdges {
			if refEdges[i] != gotEdges[i] {
				t.Fatalf("shards=%d: edge[%d] = %+v, want %+v", shards, i, gotEdges[i], refEdges[i])
			}
		}
		refNodes, gotNodes := ref.Nodes(), got.Nodes()
		if len(refNodes) != len(gotNodes) {
			t.Fatalf("shards=%d: %d nodes, want %d", shards, len(gotNodes), len(refNodes))
		}
		for i := range refNodes {
			if refNodes[i] != gotNodes[i] {
				t.Fatalf("shards=%d: node[%d] = %q, want %q", shards, i, gotNodes[i], refNodes[i])
			}
		}
		if ref.ComputeStats() != got.ComputeStats() {
			t.Fatalf("shards=%d: stats %+v != %+v", shards, got.ComputeStats(), ref.ComputeStats())
		}
		for _, n := range refNodes {
			if ref.Kind(n) != got.Kind(n) {
				t.Fatalf("shards=%d: Kind(%q) differs", shards, n)
			}
			if ref.HyponymCount(n) != got.HyponymCount(n) {
				t.Fatalf("shards=%d: HyponymCount(%q) differs", shards, n)
			}
		}
	}
}

// TestShardedConcurrentAddAndQuery hammers one sharded store with
// concurrent writers and readers; run under -race this is the data-race
// certification for the lock-per-shard design.
func TestShardedConcurrentAddAndQuery(t *testing.T) {
	tx := NewSharded(8)
	const (
		writers = 8
		readers = 8
		perG    = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				hypo := fmt.Sprintf("实体%d_%d", g, i)
				hyper := fmt.Sprintf("概念%d", i%13)
				if err := tx.AddIsA(hypo, hyper, SourceTag, 1); err != nil {
					t.Errorf("AddIsA: %v", err)
					return
				}
				tx.MarkEntity(hypo)
				if i%7 == 0 {
					// Cross-shard second edge: hypernym of a hypernym.
					_ = tx.AddIsA(hyper, fmt.Sprintf("上位%d", i%3), SourceSubsume, 0.5)
				}
				if i%11 == 0 {
					tx.RemoveIsA(hypo, hyper)
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = tx.Hypernyms(fmt.Sprintf("实体%d_%d", g, i))
				_ = tx.Hyponyms(fmt.Sprintf("概念%d", i%13), 10)
				_ = tx.Ancestors(fmt.Sprintf("实体%d_%d", g%writers, i))
				_ = tx.RankedHypernyms(fmt.Sprintf("实体%d_%d", g, i), 3)
				if i%29 == 0 {
					_ = tx.ComputeStats()
					_ = tx.EdgeCount()
				}
				if i%53 == 0 {
					_ = tx.Edges()
					_ = tx.Nodes()
				}
			}
		}(g)
	}
	wg.Wait()

	// Index invariant after the storm: every hypernym entry has its
	// reverse hyponym entry.
	for _, n := range tx.Nodes() {
		for _, h := range tx.Hypernyms(n) {
			found := false
			for _, back := range tx.Hyponyms(h, 0) {
				if back == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("missing reverse index: %q isA %q", n, h)
			}
		}
	}
}

// TestFinalizeCanonicalizesAndCaches checks that Finalize sorts
// adjacency lists, serves cached merged indexes, and that a subsequent
// write invalidates them.
func TestFinalizeCanonicalizesAndCaches(t *testing.T) {
	tx := New()
	// Insert out of lexicographic order.
	mustAdd(t, tx, "甲", "丙概念", SourceTag)
	mustAdd(t, tx, "甲", "乙概念", SourceTag)
	mustAdd(t, tx, "戊", "乙概念", SourceTag)
	mustAdd(t, tx, "丁", "乙概念", SourceTag)
	tx.Finalize()
	if !tx.Finalized() {
		t.Fatal("Finalized = false after Finalize")
	}
	hs := tx.Hypernyms("甲")
	if len(hs) != 2 || hs[0] != "丙概念" || hs[1] != "乙概念" { // 丙 U+4E19 < 乙 U+4E59
		t.Fatalf("hypernyms not canonical: %v", hs)
	}
	hypos := tx.Hyponyms("乙概念", 0)
	if len(hypos) != 3 || hypos[0] != "丁" || hypos[1] != "戊" || hypos[2] != "甲" {
		t.Fatalf("hyponyms not canonical: %v", hypos)
	}
	stats := tx.ComputeStats()
	if stats.IsARelations != 4 {
		t.Fatalf("cached stats = %+v", stats)
	}
	// A write invalidates the merged indexes…
	mustAdd(t, tx, "己", "乙概念", SourceTag)
	if tx.Finalized() {
		t.Fatal("Finalized = true after a write")
	}
	// …and queries see the new edge immediately.
	if got := tx.ComputeStats().IsARelations; got != 5 {
		t.Fatalf("stats after invalidation = %d, want 5", got)
	}
	if got := len(tx.Nodes()); got != 6 {
		t.Fatalf("nodes after invalidation = %d, want 6", got)
	}
}

// TestRemoveLastEdgeCleansIndexes pins the regression where removing a
// node's only hypernym left an empty adjacency entry behind, inflating
// Stats.NodesWithHypernym.
func TestRemoveLastEdgeCleansIndexes(t *testing.T) {
	tx := New()
	mustAdd(t, tx, "甲", "概念", SourceTag)
	mustAdd(t, tx, "乙", "概念", SourceTag)
	if got := tx.ComputeStats().NodesWithHypernym; got != 2 {
		t.Fatalf("NodesWithHypernym = %d, want 2", got)
	}
	if !tx.RemoveIsA("甲", "概念") {
		t.Fatal("RemoveIsA returned false")
	}
	if got := tx.ComputeStats().NodesWithHypernym; got != 1 {
		t.Errorf("NodesWithHypernym after remove = %d, want 1", got)
	}
	if got := tx.HyponymCount("概念"); got != 1 {
		t.Errorf("HyponymCount = %d, want 1", got)
	}
	// Removing the final edge of the concept clears its hyponym entry
	// too.
	if !tx.RemoveIsA("乙", "概念") {
		t.Fatal("second RemoveIsA returned false")
	}
	if got := tx.ComputeStats().NodesWithHypernym; got != 0 {
		t.Errorf("NodesWithHypernym after removing all = %d, want 0", got)
	}
}

// TestNewShardedDefaults checks the shard-count resolution rules.
func TestNewShardedDefaults(t *testing.T) {
	if got := New().ShardCount(); got != DefaultShards {
		t.Errorf("New().ShardCount() = %d, want %d", got, DefaultShards)
	}
	if got := NewSharded(0).ShardCount(); got != DefaultShards {
		t.Errorf("NewSharded(0).ShardCount() = %d, want %d", got, DefaultShards)
	}
	if got := NewSharded(-3).ShardCount(); got != DefaultShards {
		t.Errorf("NewSharded(-3).ShardCount() = %d, want %d", got, DefaultShards)
	}
	if got := NewSharded(5).ShardCount(); got != 5 {
		t.Errorf("NewSharded(5).ShardCount() = %d, want 5", got)
	}
}
