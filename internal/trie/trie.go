// Package trie implements a rune-keyed prefix tree used as the
// dictionary backbone of the word segmenter and the mention index.
//
// The trie stores words as sequences of runes, which matches the unit of
// Chinese text processing (one Han character per rune). It supports exact
// membership tests, prefix tests, and the "all matches from position i"
// query the Viterbi segmenter needs.
package trie

type node struct {
	children map[rune]*node
	// terminal marks the end of an inserted word; weight carries an
	// optional caller-supplied value (e.g. corpus frequency).
	terminal bool
	weight   float64
}

// Trie is a rune-keyed prefix tree. The zero value is not usable; call
// New.
type Trie struct {
	root *node
	size int
}

// New returns an empty trie.
func New() *Trie {
	return &Trie{root: &node{}}
}

// Size returns the number of distinct words stored.
func (t *Trie) Size() int { return t.size }

// Insert adds word to the trie with weight 1. Inserting an existing word
// is a no-op for size but keeps the larger weight.
func (t *Trie) Insert(word string) { t.InsertWeighted(word, 1) }

// InsertWeighted adds word with the given weight. If word exists, the
// maximum of the old and new weight is kept.
func (t *Trie) InsertWeighted(word string, weight float64) {
	if word == "" {
		return
	}
	n := t.root
	for _, r := range word {
		child, ok := n.children[r]
		if !ok {
			if n.children == nil {
				n.children = make(map[rune]*node)
			}
			child = &node{}
			n.children[r] = child
		}
		n = child
	}
	if !n.terminal {
		n.terminal = true
		t.size++
		n.weight = weight
		return
	}
	if weight > n.weight {
		n.weight = weight
	}
}

// Contains reports whether word was inserted.
func (t *Trie) Contains(word string) bool {
	n := t.find(word)
	return n != nil && n.terminal
}

// Weight returns the weight of word and whether it is present.
func (t *Trie) Weight(word string) (float64, bool) {
	n := t.find(word)
	if n == nil || !n.terminal {
		return 0, false
	}
	return n.weight, true
}

// HasPrefix reports whether any inserted word starts with prefix.
func (t *Trie) HasPrefix(prefix string) bool {
	return t.find(prefix) != nil
}

func (t *Trie) find(word string) *node {
	n := t.root
	for _, r := range word {
		child, ok := n.children[r]
		if !ok {
			return nil
		}
		n = child
	}
	return n
}

// Match is a dictionary hit returned by MatchesFrom.
type Match struct {
	// Len is the number of runes matched.
	Len int
	// Weight is the stored word weight.
	Weight float64
}

// MatchesFrom returns every dictionary word that starts at rs[start],
// reported as rune lengths in increasing order. The scan stops as soon
// as no stored word continues with the next rune, so the cost is bounded
// by the longest dictionary word.
func (t *Trie) MatchesFrom(rs []rune, start int) []Match {
	var out []Match
	n := t.root
	for i := start; i < len(rs); i++ {
		child, ok := n.children[rs[i]]
		if !ok {
			break
		}
		n = child
		if n.terminal {
			out = append(out, Match{Len: i - start + 1, Weight: n.weight})
		}
	}
	return out
}

// LongestFrom returns the rune length of the longest dictionary word
// starting at rs[start], or 0 if none matches.
func (t *Trie) LongestFrom(rs []rune, start int) int {
	best := 0
	n := t.root
	for i := start; i < len(rs); i++ {
		child, ok := n.children[rs[i]]
		if !ok {
			break
		}
		n = child
		if n.terminal {
			best = i - start + 1
		}
	}
	return best
}

// Walk visits every stored word in unspecified order. The callback
// receives the word and its weight; returning false stops the walk.
func (t *Trie) Walk(fn func(word string, weight float64) bool) {
	var rec func(n *node, prefix []rune) bool
	rec = func(n *node, prefix []rune) bool {
		if n.terminal {
			if !fn(string(prefix), n.weight) {
				return false
			}
		}
		for r, child := range n.children {
			if !rec(child, append(prefix, r)) {
				return false
			}
		}
		return true
	}
	rec(t.root, nil)
}
