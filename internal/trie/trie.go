// Package trie implements a rune-keyed prefix tree used as the
// dictionary backbone of the word segmenter and the mention index.
//
// The trie stores words as sequences of runes, which matches the unit of
// Chinese text processing (one Han character per rune). It supports exact
// membership tests, prefix tests, and the "all matches from position i"
// query the Viterbi segmenter needs.
//
// Layout: all nodes live in a single flat arena ([]node indexed by
// uint32) instead of a pointer-per-node heap graph, and each node's
// children are a run of (rune, child-index) edges sorted by rune —
// scanned linearly at small fan-out, binary-searched above it. Freeze
// compacts every per-node run into one shared edge slice so a frozen
// trie is two contiguous arrays, which is what makes MatchesFrom cheap
// enough to sit in the segmenter's inner loop: no pointer chasing, no
// map probes, no per-node GC objects.
package trie

import "sort"

// edge is one child link: the labelling rune and the child's index in
// the node arena.
type edge struct {
	r     rune
	child uint32
}

// node is one arena slot. edges is sorted by rune; after Freeze it is a
// capacity-clamped view into the shared edge slice rather than an owned
// allocation.
type node struct {
	edges []edge
	// terminal marks the end of an inserted word; weight carries an
	// optional caller-supplied value (e.g. corpus frequency, or the
	// segmenter's precomputed word cost).
	terminal bool
	weight   float64
}

// Trie is a rune-keyed prefix tree over a flat node arena. The zero
// value is not usable; call New.
type Trie struct {
	nodes []node
	// rootDispatch, built by Freeze, maps first-rune → child index + a
	// dense O(1) table over [rootLo, rootLo+len): the root has the
	// widest fan-out of any node (one child per distinct first
	// character, thousands for a real Han dictionary) and is crossed by
	// every single query, so it gets a direct-index table instead of a
	// binary search. 0 marks "no child" (the root is never a child).
	rootDispatch []uint32
	rootLo       rune
	frozen       bool
	size         int
}

// New returns an empty trie. Node 0 is the root.
func New() *Trie {
	return &Trie{nodes: make([]node, 1, 16)}
}

// Size returns the number of distinct words stored.
func (t *Trie) Size() int { return t.size }

// Frozen reports whether Freeze has compacted the trie (and no insert
// has thawed it since).
func (t *Trie) Frozen() bool { return t.frozen }

// binarySearchMin is the fan-out at which child lookup switches from a
// linear scan of the sorted run to binary search. Han tries are shallow
// and wide at the root but narrow below it, so most lookups stay on the
// branch-predictable linear path.
const binarySearchMin = 8

// findEdge locates r in the sorted edge run es.
//
//cnp:noalloc
func findEdge(es []edge, r rune) (uint32, bool) {
	if len(es) < binarySearchMin {
		for i := range es {
			if es[i].r == r {
				return es[i].child, true
			}
			if es[i].r > r {
				break
			}
		}
		return 0, false
	}
	lo, hi := 0, len(es)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if es[mid].r < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(es) && es[lo].r == r {
		return es[lo].child, true
	}
	return 0, false
}

// Insert adds word to the trie with weight 1. Inserting an existing word
// is a no-op for size but keeps the larger weight.
func (t *Trie) Insert(word string) { t.InsertWeighted(word, 1) }

// InsertWeighted adds word with the given weight. If word exists, the
// maximum of the old and new weight is kept. Inserting a word that
// needs a new edge into a frozen trie thaws it first (an O(edges)
// copy); call Freeze again afterwards to restore the compact layout.
func (t *Trie) InsertWeighted(word string, weight float64) {
	if word == "" {
		return
	}
	n := uint32(0)
	for _, r := range word {
		c, ok := findEdge(t.nodes[n].edges, r)
		if !ok {
			if t.frozen {
				t.thaw()
			}
			c = t.addChild(n, r)
		}
		n = c
	}
	nd := &t.nodes[n]
	if !nd.terminal {
		nd.terminal = true
		t.size++
		nd.weight = weight
		return
	}
	if weight > nd.weight {
		nd.weight = weight
	}
}

// addChild appends a fresh node to the arena and links it under parent
// at the rune's sorted position. Must not be called while frozen.
func (t *Trie) addChild(parent uint32, r rune) uint32 {
	ci := uint32(len(t.nodes))
	t.nodes = append(t.nodes, node{})
	nd := &t.nodes[parent]
	es := nd.edges
	pos := sort.Search(len(es), func(i int) bool { return es[i].r >= r })
	es = append(es, edge{})
	copy(es[pos+1:], es[pos:])
	es[pos] = edge{r: r, child: ci}
	nd.edges = es
	return ci
}

// Freeze compacts every node's edge run into one shared slice, in node
// order. Lookups are unchanged semantically but touch two contiguous
// arrays instead of scattered allocations. Freezing an already-frozen
// trie is a no-op.
func (t *Trie) Freeze() {
	if t.frozen {
		return
	}
	total := 0
	for i := range t.nodes {
		total += len(t.nodes[i].edges)
	}
	shared := make([]edge, 0, total)
	for i := range t.nodes {
		nd := &t.nodes[i]
		s := len(shared)
		shared = append(shared, nd.edges...)
		// Clamp the capacity so a stray append could never clobber the
		// next node's run (it would copy out instead).
		nd.edges = shared[s:len(shared):len(shared)]
	}
	t.buildRootDispatch()
	t.frozen = true
}

// Root-dispatch sizing: only worth the memory when the root is wide,
// and only safe when the rune span is bounded (a full Han dictionary
// spans ~21k runes ≈ 84KB of table; an adversarial span would not be
// dense, so it falls back to the sorted run).
const (
	dispatchMinFanout = 16
	dispatchMaxSpan   = 1 << 16
)

func (t *Trie) buildRootDispatch() {
	t.rootDispatch, t.rootLo = nil, 0
	es := t.nodes[0].edges
	if len(es) < dispatchMinFanout {
		return
	}
	lo, hi := es[0].r, es[len(es)-1].r
	span := int(hi-lo) + 1
	if span > dispatchMaxSpan {
		return
	}
	d := make([]uint32, span)
	for _, e := range es {
		d[e.r-lo] = e.child
	}
	t.rootDispatch, t.rootLo = d, lo
}

// thaw gives every node back an owned copy of its edge run so sorted
// insertion can shift edges in place again.
func (t *Trie) thaw() {
	for i := range t.nodes {
		nd := &t.nodes[i]
		if len(nd.edges) > 0 {
			nd.edges = append(make([]edge, 0, len(nd.edges)+1), nd.edges...)
		}
	}
	t.rootDispatch, t.rootLo = nil, 0
	t.frozen = false
}

// Contains reports whether word was inserted.
func (t *Trie) Contains(word string) bool {
	n, ok := t.find(word)
	return ok && t.nodes[n].terminal
}

// Weight returns the weight of word and whether it is present.
func (t *Trie) Weight(word string) (float64, bool) {
	n, ok := t.find(word)
	if !ok || !t.nodes[n].terminal {
		return 0, false
	}
	return t.nodes[n].weight, true
}

// HasPrefix reports whether any inserted word starts with prefix.
func (t *Trie) HasPrefix(prefix string) bool {
	_, ok := t.find(prefix)
	return ok
}

func (t *Trie) find(word string) (uint32, bool) {
	n := uint32(0)
	for _, r := range word {
		if n == 0 && t.rootDispatch != nil {
			off := int(r - t.rootLo)
			if off < 0 || off >= len(t.rootDispatch) || t.rootDispatch[off] == 0 {
				return 0, false
			}
			n = t.rootDispatch[off]
			continue
		}
		c, ok := findEdge(t.nodes[n].edges, r)
		if !ok {
			return 0, false
		}
		n = c
	}
	return n, true
}

// Match is a dictionary hit returned by MatchesFrom.
type Match struct {
	// Len is the number of runes matched.
	Len int
	// Weight is the stored word weight.
	Weight float64
}

// MatchesFrom returns every dictionary word that starts at rs[start],
// reported as rune lengths in increasing order. The scan stops as soon
// as no stored word continues with the next rune, so the cost is bounded
// by the longest dictionary word.
func (t *Trie) MatchesFrom(rs []rune, start int) []Match {
	return t.MatchesFromAppend(rs, start, nil)
}

// MatchesFromAppend is MatchesFrom in append style: hits are appended
// to buf (which may be a recycled scratch slice) and the extended slice
// is returned, so a steady-state caller allocates nothing.
//
//cnp:noalloc
func (t *Trie) MatchesFromAppend(rs []rune, start int, buf []Match) []Match {
	if start >= len(rs) {
		return buf
	}
	nodes := t.nodes
	n := uint32(0)
	i := start
	if d := t.rootDispatch; d != nil {
		off := int(rs[i] - t.rootLo)
		if off < 0 || off >= len(d) || d[off] == 0 {
			return buf
		}
		n = d[off]
		if nodes[n].terminal {
			buf = append(buf, Match{Len: 1, Weight: nodes[n].weight})
		}
		i++
	}
scan:
	for ; i < len(rs); i++ {
		// findEdge, inlined by hand: this loop is the segmenter's inner
		// loop and the call is over the inlining budget.
		r := rs[i]
		es := nodes[n].edges
		if len(es) < binarySearchMin {
			for j := range es {
				if es[j].r == r {
					n = es[j].child
					goto hit
				}
				if es[j].r > r {
					break scan
				}
			}
			break scan
		} else {
			lo, hi := 0, len(es)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if es[mid].r < r {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo >= len(es) || es[lo].r != r {
				break scan
			}
			n = es[lo].child
		}
	hit:
		if nodes[n].terminal {
			buf = append(buf, Match{Len: i - start + 1, Weight: nodes[n].weight})
		}
	}
	return buf
}

// LongestFrom returns the rune length of the longest dictionary word
// starting at rs[start], or 0 if none matches.
//
//cnp:noalloc
func (t *Trie) LongestFrom(rs []rune, start int) int {
	if start >= len(rs) {
		return 0
	}
	nodes := t.nodes
	best := 0
	n := uint32(0)
	i := start
	if d := t.rootDispatch; d != nil {
		off := int(rs[i] - t.rootLo)
		if off < 0 || off >= len(d) || d[off] == 0 {
			return 0
		}
		n = d[off]
		if nodes[n].terminal {
			best = 1
		}
		i++
	}
	for ; i < len(rs); i++ {
		c, ok := findEdge(nodes[n].edges, rs[i])
		if !ok {
			break
		}
		n = c
		if nodes[n].terminal {
			best = i - start + 1
		}
	}
	return best
}

// Reweight replaces every stored word's weight with fn(word, weight).
// Weights live in the node arena, not the shared edge slice, so this
// works on frozen tries without thawing them.
func (t *Trie) Reweight(fn func(word string, weight float64) float64) {
	var prefix []rune
	var rec func(n uint32)
	rec = func(n uint32) {
		nd := &t.nodes[n]
		if nd.terminal {
			nd.weight = fn(string(prefix), nd.weight)
		}
		for _, e := range nd.edges {
			prefix = append(prefix, e.r)
			rec(e.child)
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(0)
}

// Walk visits every stored word in unspecified order. The callback
// receives the word and its weight; returning false stops the walk.
func (t *Trie) Walk(fn func(word string, weight float64) bool) {
	var prefix []rune
	var rec func(n uint32) bool
	rec = func(n uint32) bool {
		nd := &t.nodes[n]
		if nd.terminal {
			if !fn(string(prefix), nd.weight) {
				return false
			}
		}
		for _, e := range nd.edges {
			prefix = append(prefix, e.r)
			ok := rec(e.child)
			prefix = prefix[:len(prefix)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
}
