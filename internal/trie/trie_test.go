package trie

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertContains(t *testing.T) {
	tr := New()
	words := []string{"演员", "男演员", "演", "歌手", "首席战略官"}
	for _, w := range words {
		tr.Insert(w)
	}
	if tr.Size() != len(words) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(words))
	}
	for _, w := range words {
		if !tr.Contains(w) {
			t.Errorf("Contains(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"", "演员们", "男", "战略官"} {
		if tr.Contains(w) {
			t.Errorf("Contains(%q) = true, want false", w)
		}
	}
}

func TestInsertEmptyIsNoop(t *testing.T) {
	tr := New()
	tr.Insert("")
	if tr.Size() != 0 {
		t.Errorf("Size after inserting empty = %d, want 0", tr.Size())
	}
}

func TestDuplicateInsertKeepsMaxWeight(t *testing.T) {
	tr := New()
	tr.InsertWeighted("词", 2)
	tr.InsertWeighted("词", 5)
	tr.InsertWeighted("词", 1)
	if tr.Size() != 1 {
		t.Fatalf("Size = %d, want 1", tr.Size())
	}
	w, ok := tr.Weight("词")
	if !ok || w != 5 {
		t.Errorf("Weight = %v,%v, want 5,true", w, ok)
	}
}

func TestHasPrefix(t *testing.T) {
	tr := New()
	tr.Insert("男演员")
	for _, p := range []string{"男", "男演", "男演员", ""} {
		if !tr.HasPrefix(p) {
			t.Errorf("HasPrefix(%q) = false, want true", p)
		}
	}
	if tr.HasPrefix("女") {
		t.Error("HasPrefix(女) = true, want false")
	}
}

func TestMatchesFrom(t *testing.T) {
	tr := New()
	for _, w := range []string{"中", "中国", "中国人", "国人"} {
		tr.Insert(w)
	}
	rs := []rune("大中国人民")
	ms := tr.MatchesFrom(rs, 1)
	var lens []int
	for _, m := range ms {
		lens = append(lens, m.Len)
	}
	want := []int{1, 2, 3} // 中, 中国, 中国人
	if len(lens) != len(want) {
		t.Fatalf("MatchesFrom lens = %v, want %v", lens, want)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("MatchesFrom lens = %v, want %v", lens, want)
		}
	}
	if got := tr.MatchesFrom(rs, 0); got != nil {
		t.Errorf("MatchesFrom at 大 = %v, want nil", got)
	}
}

func TestLongestFrom(t *testing.T) {
	tr := New()
	tr.Insert("中国")
	tr.Insert("中国人")
	rs := []rune("中国人民")
	if got := tr.LongestFrom(rs, 0); got != 3 {
		t.Errorf("LongestFrom = %d, want 3", got)
	}
	if got := tr.LongestFrom(rs, 3); got != 0 {
		t.Errorf("LongestFrom(民) = %d, want 0", got)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tr := New()
	words := []string{"a", "ab", "abc", "b", "中文"}
	for _, w := range words {
		tr.Insert(w)
	}
	var got []string
	tr.Walk(func(w string, _ float64) bool {
		got = append(got, w)
		return true
	})
	sort.Strings(got)
	sort.Strings(words)
	if len(got) != len(words) {
		t.Fatalf("Walk visited %v, want %v", got, words)
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("Walk visited %v, want %v", got, words)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New()
	for _, w := range []string{"a", "b", "c"} {
		tr.Insert(w)
	}
	n := 0
	tr.Walk(func(string, float64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Walk early stop visited %d, want 1", n)
	}
}

func TestFreezePreservesQueries(t *testing.T) {
	words := []string{"中", "中国", "中国人", "国人", "演员", "男演员", "a", "ab"}
	tr := New()
	for i, w := range words {
		tr.InsertWeighted(w, float64(i+1))
	}
	check := func(label string) {
		t.Helper()
		if tr.Size() != len(words) {
			t.Fatalf("%s: Size = %d, want %d", label, tr.Size(), len(words))
		}
		for i, w := range words {
			if !tr.Contains(w) {
				t.Errorf("%s: Contains(%q) = false", label, w)
			}
			if wgt, ok := tr.Weight(w); !ok || wgt != float64(i+1) {
				t.Errorf("%s: Weight(%q) = %v,%v, want %d,true", label, w, wgt, ok, i+1)
			}
		}
		if tr.Contains("国") || tr.HasPrefix("b") {
			t.Errorf("%s: phantom membership after freeze", label)
		}
		rs := []rune("中国人民")
		ms := tr.MatchesFrom(rs, 0)
		if len(ms) != 3 || ms[0].Len != 1 || ms[1].Len != 2 || ms[2].Len != 3 {
			t.Errorf("%s: MatchesFrom = %v", label, ms)
		}
		if got := tr.LongestFrom(rs, 0); got != 3 {
			t.Errorf("%s: LongestFrom = %d, want 3", label, got)
		}
	}
	check("before freeze")
	tr.Freeze()
	if !tr.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	check("after freeze")
	tr.Freeze() // idempotent
	check("after double freeze")

	// Weight-only insert of an existing word must not thaw.
	tr.InsertWeighted("中国", 99)
	if !tr.Frozen() {
		t.Error("weight-only insert thawed the trie")
	}
	if w, _ := tr.Weight("中国"); w != 99 {
		t.Errorf("Weight(中国) = %v, want 99", w)
	}

	// A structural insert thaws, and everything still works.
	tr.Insert("国家")
	if tr.Frozen() {
		t.Error("structural insert left the trie frozen")
	}
	if !tr.Contains("国家") || !tr.Contains("中国人") {
		t.Error("membership broken after thaw")
	}
	tr.Freeze()
	if !tr.Contains("国家") || tr.Size() != len(words)+1 {
		t.Error("membership broken after re-freeze")
	}
}

func TestMatchesFromAppendReusesBuffer(t *testing.T) {
	tr := New()
	for _, w := range []string{"中", "中国", "中国人", "国人"} {
		tr.Insert(w)
	}
	tr.Freeze()
	rs := []rune("中国人民")
	buf := make([]Match, 0, 8)
	first := tr.MatchesFromAppend(rs, 0, buf)
	if len(first) != 3 {
		t.Fatalf("matches = %v", first)
	}
	second := tr.MatchesFromAppend(rs, 0, first[:0])
	if &second[0] != &first[0] {
		t.Error("append-style MatchesFrom reallocated a sufficient buffer")
	}
	// And it appends rather than overwriting past content.
	tail := tr.MatchesFromAppend(rs, 1, second)
	if len(tail) != len(second)+1 {
		t.Fatalf("append grew %d -> %d, want +1", len(second), len(tail))
	}
}

func TestWalkSeesFrozenTrie(t *testing.T) {
	tr := New()
	words := []string{"a", "ab", "abc", "b", "中文"}
	for _, w := range words {
		tr.Insert(w)
	}
	tr.Freeze()
	var got []string
	tr.Walk(func(w string, _ float64) bool {
		got = append(got, w)
		return true
	})
	sort.Strings(got)
	sort.Strings(words)
	if len(got) != len(words) {
		t.Fatalf("Walk after Freeze visited %v, want %v", got, words)
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("Walk after Freeze visited %v, want %v", got, words)
		}
	}
}

// TestQuickFrozenEquivalence pins that freezing never changes any query
// result: random dictionaries, random probes, frozen vs thawed.
func TestQuickFrozenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []rune("天地人你我他中国演员")
	randWord := func() string {
		n := 1 + rng.Intn(5)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	for trial := 0; trial < 20; trial++ {
		thawed, frozen := New(), New()
		for i := 0; i < 80; i++ {
			w := randWord()
			thawed.InsertWeighted(w, float64(i))
			frozen.InsertWeighted(w, float64(i))
		}
		frozen.Freeze()
		for probe := 0; probe < 100; probe++ {
			s := []rune(randWord() + randWord())
			if a, b := thawed.LongestFrom(s, 0), frozen.LongestFrom(s, 0); a != b {
				t.Fatalf("LongestFrom diverged: %d vs %d on %q", a, b, string(s))
			}
			am, bm := thawed.MatchesFrom(s, 0), frozen.MatchesFrom(s, 0)
			if len(am) != len(bm) {
				t.Fatalf("MatchesFrom diverged on %q: %v vs %v", string(s), am, bm)
			}
			for i := range am {
				if am[i] != bm[i] {
					t.Fatalf("MatchesFrom diverged on %q: %v vs %v", string(s), am, bm)
				}
			}
			w := randWord()
			if thawed.Contains(w) != frozen.Contains(w) || thawed.HasPrefix(w) != frozen.HasPrefix(w) {
				t.Fatalf("Contains/HasPrefix diverged on %q", w)
			}
		}
	}
}

// TestQuickInsertedAlwaysContained is a property test: anything
// inserted must be contained, and membership implies a prefix.
func TestQuickInsertedAlwaysContained(t *testing.T) {
	f := func(words []string) bool {
		tr := New()
		for _, w := range words {
			tr.Insert(w)
		}
		for _, w := range words {
			if w == "" {
				continue
			}
			if !tr.Contains(w) || !tr.HasPrefix(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLongestConsistent checks LongestFrom agrees with Contains on
// random Han-ish strings.
func TestQuickLongestConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []rune("天地人你我他")
	randWord := func() string {
		n := 1 + rng.Intn(4)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	tr := New()
	var words []string
	for i := 0; i < 50; i++ {
		w := randWord()
		words = append(words, w)
		tr.Insert(w)
	}
	for i := 0; i < 200; i++ {
		s := []rune(randWord() + randWord())
		l := tr.LongestFrom(s, 0)
		if l > 0 && !tr.Contains(string(s[:l])) {
			t.Fatalf("LongestFrom returned %d but %q not contained", l, string(s[:l]))
		}
		// No longer match may exist.
		for k := l + 1; k <= len(s); k++ {
			if tr.Contains(string(s[:k])) {
				t.Fatalf("LongestFrom=%d missed longer match %q", l, string(s[:k]))
			}
		}
	}
}
