package trie

import (
	"math/rand"
	"testing"
)

// mapTrie is the pre-arena pointer implementation, retained verbatim
// as the benchmark reference so the node-layout win (flat arena +
// sorted edge runs vs map[rune]*node pointer chasing) is measured in
// isolation rather than only through end-to-end build numbers.
type mapNode struct {
	children map[rune]*mapNode
	terminal bool
	weight   float64
}

type mapTrie struct{ root *mapNode }

func newMapTrie() *mapTrie { return &mapTrie{root: &mapNode{}} }

func (t *mapTrie) insert(word string, weight float64) {
	n := t.root
	for _, r := range word {
		child, ok := n.children[r]
		if !ok {
			if n.children == nil {
				n.children = make(map[rune]*mapNode)
			}
			child = &mapNode{}
			n.children[r] = child
		}
		n = child
	}
	n.terminal = true
	if weight > n.weight {
		n.weight = weight
	}
}

func (t *mapTrie) matchesFrom(rs []rune, start int, buf []Match) []Match {
	n := t.root
	for i := start; i < len(rs); i++ {
		child, ok := n.children[rs[i]]
		if !ok {
			break
		}
		n = child
		if n.terminal {
			buf = append(buf, Match{Len: i - start + 1, Weight: n.weight})
		}
	}
	return buf
}

// benchWords generates a dictionary with realistic Han fan-out: 1–4
// rune words over a 40-character alphabet.
func benchWords(n int) []string {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("中国香港男演员歌手词作金服首席战略官出生天地人你我他物理学家研究所大清河市北南东西山水")
	words := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(4)
		rs := make([]rune, l)
		for j := range rs {
			rs[j] = alphabet[rng.Intn(len(alphabet))]
		}
		words = append(words, string(rs))
	}
	return words
}

// benchInput builds the query text from dictionary words so MatchesFrom
// walks real paths instead of failing on the first rune.
func benchInput(words []string, n int) []rune {
	rng := rand.New(rand.NewSource(11))
	rs := make([]rune, 0, n)
	for len(rs) < n {
		rs = append(rs, []rune(words[rng.Intn(len(words))])...)
	}
	return rs[:n]
}

// BenchmarkTrieMatchesFrom compares the retained map-trie reference
// against the arena trie on the segmenter's inner-loop query: all
// dictionary matches starting at each position of a long Han text.
func BenchmarkTrieMatchesFrom(b *testing.B) {
	words := benchWords(20000)
	rs := benchInput(words, 4096)

	mt := newMapTrie()
	at := New()
	for _, w := range words {
		mt.insert(w, 1)
		at.Insert(w)
	}
	at.Freeze()

	var buf []Match
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = mt.matchesFrom(rs, i%len(rs), buf[:0])
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = at.MatchesFromAppend(rs, i%len(rs), buf[:0])
		}
	})
}

// BenchmarkTrieInsert measures dictionary construction cost for both
// layouts (the arena pays sorted-insert, the map pays per-node maps).
func BenchmarkTrieInsert(b *testing.B) {
	words := benchWords(20000)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mt := newMapTrie()
			for _, w := range words {
				mt.insert(w, 1)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			at := New()
			for _, w := range words {
				at.Insert(w)
			}
			at.Freeze()
		}
	})
}
