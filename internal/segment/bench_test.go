package segment

import (
	"strings"
	"testing"

	"cnprobase/internal/corpus"
)

// benchDict is a realistic mid-size dictionary: the test dictionary
// plus generated two- and three-rune compounds so the trie has real
// fan-out and the Viterbi lattice real ambiguity.
func benchDict() []string {
	base := []rune("中国香港男演员歌手词作金服首席战略官出生天地人物理学家研究所大清河市北南")
	words := append([]string(nil), dict...)
	for i := 0; i+1 < len(base); i++ {
		words = append(words, string(base[i:i+2]))
	}
	for i := 0; i+2 < len(base); i += 2 {
		words = append(words, string(base[i:i+3]))
	}
	return words
}

// benchText builds a dictionary-covered Han input of roughly n runes.
func benchText(n int) string {
	var sb strings.Builder
	pieces := []string{"中国香港", "男演员", "歌手", "首席", "战略官", "出生", "物理学家", "研究所", "清河市"}
	i := 0
	for sb.Len() < n*3 {
		sb.WriteString(pieces[i%len(pieces)])
		i++
	}
	return sb.String()
}

// BenchmarkSegmentThroughput measures the steady-state hot build path:
// dictionary-covered Han text through Viterbi Cut. runes/s is the
// number every corpus pass (statistics, NE evidence, separation) is
// bounded by; allocs/op is the GC pressure per sentence.
func BenchmarkSegmentThroughput(b *testing.B) {
	st := corpus.NewStats()
	for i := 0; i < 50; i++ {
		st.AddSentence([]string{"中国香港", "男演员", "歌手", "出生", "物理学家"})
	}
	sg := New(benchDict(), WithStats(st))
	text := benchText(512)
	nRunes := len([]rune(text))
	var dst []string
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = sg.CutAppend(dst[:0], text)
		if len(dst) == 0 {
			b.Fatal("no tokens")
		}
	}
	b.ReportMetric(float64(nRunes)*float64(b.N)/b.Elapsed().Seconds(), "runes/s")
}

// BenchmarkSegmentCut measures the plain Cut entry point (fresh output
// slice per call), the path pre-existing callers use.
func BenchmarkSegmentCut(b *testing.B) {
	sg := New(benchDict())
	text := benchText(512)
	nRunes := len([]rune(text))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if toks := sg.Cut(text); len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
	b.ReportMetric(float64(nRunes)*float64(b.N)/b.Elapsed().Seconds(), "runes/s")
}

// BenchmarkSegmentMixed exercises span splitting too: Han text
// interleaved with latin, digits and punctuation.
func BenchmarkSegmentMixed(b *testing.B) {
	sg := New(benchDict())
	text := strings.Repeat("中国香港男演员Andy123，歌手。physics研究所 ", 24)
	nRunes := len([]rune(text))
	var dst []string
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = sg.CutAppend(dst[:0], text)
	}
	b.ReportMetric(float64(nRunes)*float64(b.N)/b.Elapsed().Seconds(), "runes/s")
}
