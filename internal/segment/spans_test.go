package segment

import (
	"strings"
	"testing"
)

func spanTexts(t *testing.T, text string) (texts []string, kinds []spanKind) {
	t.Helper()
	for _, s := range splitSpans(text) {
		texts = append(texts, s.text)
		kinds = append(kinds, s.kind)
	}
	return texts, kinds
}

func assertSpans(t *testing.T, text string, wantTexts []string, wantKinds []spanKind) {
	t.Helper()
	texts, kinds := spanTexts(t, text)
	if len(texts) != len(wantTexts) {
		t.Fatalf("splitSpans(%q) = %q, want %q", text, texts, wantTexts)
	}
	for i := range wantTexts {
		if texts[i] != wantTexts[i] {
			t.Fatalf("splitSpans(%q) = %q, want %q", text, texts, wantTexts)
		}
		if wantKinds != nil && kinds[i] != wantKinds[i] {
			t.Fatalf("splitSpans(%q) kind[%d] = %v, want %v", text, i, kinds[i], wantKinds[i])
		}
	}
}

func TestSplitSpansEmpty(t *testing.T) {
	if spans := splitSpans(""); len(spans) != 0 {
		t.Errorf("splitSpans(\"\") = %v, want empty", spans)
	}
	if spans := splitSpans(" \t\n\r"); len(spans) != 0 {
		t.Errorf("splitSpans(whitespace) = %v, want empty", spans)
	}
}

func TestSplitSpansCRLF(t *testing.T) {
	// \r\n must behave exactly like \n: a dropped separator, never part
	// of a token.
	assertSpans(t, "演员\r\n歌手", []string{"演员", "歌手"}, []spanKind{spanHan, spanHan})
	assertSpans(t, "abc\r\ndef", []string{"abc", "def"}, []spanKind{spanOther, spanOther})
	assertSpans(t, "演员\rabc", []string{"演员", "abc"}, []spanKind{spanHan, spanOther})
}

func TestSplitSpansScriptBoundaries(t *testing.T) {
	// Han/latin/digit boundaries: Han runs split from everything else,
	// latin+digit runs stay whole.
	assertSpans(t, "演员abc123歌手", []string{"演员", "abc123", "歌手"},
		[]spanKind{spanHan, spanOther, spanHan})
	assertSpans(t, "4K电视", []string{"4K", "电视"}, []spanKind{spanOther, spanHan})
	assertSpans(t, "ｖ５中文２０１９", []string{"ｖ５", "中文", "２０１９"},
		[]spanKind{spanOther, spanHan, spanOther})
}

func TestSplitSpansPunctuation(t *testing.T) {
	// Leading/trailing punctuation, and each punct rune its own span.
	assertSpans(t, "（演员）", []string{"（", "演员", "）"},
		[]spanKind{spanPunct, spanHan, spanPunct})
	assertSpans(t, "。。", []string{"。", "。"}, []spanKind{spanPunct, spanPunct})
	assertSpans(t, "，abc！", []string{"，", "abc", "！"},
		[]spanKind{spanPunct, spanOther, spanPunct})
	assertSpans(t, "——", []string{"—", "—"}, []spanKind{spanPunct, spanPunct})
}

func TestSplitSpansOffsetsCoverInput(t *testing.T) {
	// The byte-offset ranges must be in order, non-overlapping, and
	// cover exactly the non-whitespace bytes.
	for _, text := range []string{
		"中国香港男演员、歌手、词作人",
		"  leading and trailing  ",
		"《无间道》(2002)主演：刘德华、梁朝伟",
		"mix中ed文script字s",
		"\xffinvalid\xfe字节",
	} {
		var rebuilt strings.Builder
		prev := int32(0)
		for _, sr := range appendSpans(nil, text) {
			if sr.start < prev || sr.end <= sr.start || int(sr.end) > len(text) {
				t.Fatalf("appendSpans(%q): bad range [%d,%d) after %d", text, sr.start, sr.end, prev)
			}
			for _, r := range text[prev:sr.start] {
				if !isSpace(r) {
					t.Fatalf("appendSpans(%q): dropped non-space %q", text, r)
				}
			}
			rebuilt.WriteString(text[sr.start:sr.end])
			prev = sr.end
		}
		for _, r := range text[prev:] {
			if !isSpace(r) {
				t.Fatalf("appendSpans(%q): dropped non-space tail %q", text, r)
			}
		}
		want := strings.NewReplacer(" ", "", "\t", "", "\n", "", "\r", "").Replace(text)
		if rebuilt.String() != want {
			t.Fatalf("appendSpans(%q) rebuilt %q, want %q", text, rebuilt.String(), want)
		}
	}
}

// FuzzCut asserts the segmenter's fundamental invariant on arbitrary
// byte strings: concatenating the tokens reproduces the input minus
// whitespace, and no token is empty.
func FuzzCut(f *testing.F) {
	for _, seed := range []string{
		"",
		"中国香港男演员、歌手",
		"演员Andy123，歌手。",
		"出生 于\t中国\r\n香港",
		"《无间道》",
		"\xff\xfe字节",
		strings.Repeat("蚂蚁金服首席战略官", 5),
	} {
		f.Add(seed)
	}
	sg := New(dict)
	strip := strings.NewReplacer(" ", "", "\t", "", "\n", "", "\r", "")
	f.Fuzz(func(t *testing.T, s string) {
		toks := sg.Cut(s)
		var joined strings.Builder
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("Cut(%q) produced an empty token: %q", s, toks)
			}
			joined.WriteString(tok)
		}
		if want := strip.Replace(s); joined.String() != want {
			t.Errorf("Cut(%q) tokens %q rebuild %q, want %q", s, toks, joined.String(), want)
		}
	})
}
