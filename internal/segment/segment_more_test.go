package segment

import (
	"testing"

	"cnprobase/internal/corpus"
)

func TestCutAll(t *testing.T) {
	sg := New(dict)
	got := sg.CutAll([]string{"演员", "歌手"})
	if len(got) != 2 || got[0][0] != "演员" || got[1][0] != "歌手" {
		t.Errorf("CutAll = %v", got)
	}
	if out := sg.CutAll(nil); len(out) != 0 {
		t.Errorf("CutAll(nil) = %v", out)
	}
}

func TestViterbiBeatsFMMWithStats(t *testing.T) {
	// Classic FMM failure: greedy longest match takes a long word that
	// strands the remainder. Dictionary: 研究, 研究生, 生命, 命.
	words := []string{"研究", "研究生", "生命", "命", "起源"}
	st := corpus.NewStats()
	for i := 0; i < 40; i++ {
		st.AddSentence([]string{"研究", "生命", "起源"})
	}
	st.AddSentence([]string{"研究生", "命"})
	sg := New(words, WithStats(st))
	got := sg.Cut("研究生命起源")
	assertTokens(t, got, []string{"研究", "生命", "起源"})
	// FMM greedily takes 研究生 and mangles the rest.
	fmm := sg.CutFMM("研究生命起源")
	if len(fmm) > 0 && fmm[0] != "研究生" {
		t.Errorf("FMM = %v; expected the greedy 研究生 failure", fmm)
	}
}

func TestUnknownPenaltyOption(t *testing.T) {
	// With a tiny unknown penalty, single runes become competitive and
	// the segmenter may split; with the default it must keep the
	// dictionary word.
	sg := New([]string{"演员"}, WithUnknownPenalty(0.1))
	if !sg.HasWord("演员") {
		t.Fatal("dictionary lost")
	}
	def := New([]string{"演员"})
	assertTokens(t, def.Cut("演员"), []string{"演员"})
}

func TestDictSize(t *testing.T) {
	sg := New([]string{"a", "b", "b", ""})
	if sg.DictSize() != 2 {
		t.Errorf("DictSize = %d, want 2", sg.DictSize())
	}
}

func TestSplitSpansMixed(t *testing.T) {
	spans := splitSpans("你好world 123，再见")
	var texts []string
	for _, s := range spans {
		texts = append(texts, s.text)
	}
	want := []string{"你好", "world", "123", "，", "再见"}
	if len(texts) != len(want) {
		t.Fatalf("spans = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("spans = %v, want %v", texts, want)
		}
	}
}
