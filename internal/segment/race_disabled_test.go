//go:build !race

package segment

// raceEnabled reports whether the race detector is on.
const raceEnabled = false
