// Package segment implements Chinese word segmentation on top of a
// dictionary trie. Chinese text has no word spaces, so the separation
// algorithm (paper Section II) depends on this substrate to turn a
// bracket noun compound into the word sequence (x1 … xn).
//
// Two algorithms are provided:
//
//   - Viterbi (default): dynamic programming over all dictionary
//     matches, maximizing the product of unigram word probabilities
//     (equivalently, minimizing summed negative log probabilities).
//     Unknown runes fall back to single-character "words" with a high
//     cost, so dictionary words are strongly preferred.
//   - Forward maximum matching (FMM): the classic greedy longest-match
//     baseline, exposed for comparison and used in tests as an oracle
//     cross-check.
//
// The Viterbi path is the hot loop of every corpus pass the build
// makes (statistics, NE evidence, separation, distant supervision), so
// it is engineered to allocate nothing in steady state: word costs are
// precomputed into the trie's weights at construction (no candidate
// string is ever materialized to look up its cost), spans and tokens
// are byte-offset slices of the input string, and all per-call state
// (lattice arrays, match buffer, span buffer) lives in a pooled
// scratch. Use CutAppend with a recycled destination slice to stay on
// that path; Cut is a convenience wrapper that allocates the result.
//
// A Segmenter is immutable after construction and safe for concurrent
// use.
package segment

import (
	"math"
	"sync"

	"cnprobase/internal/corpus"
	"cnprobase/internal/runes"
	"cnprobase/internal/trie"
)

// Segmenter cuts Chinese text into words using a dictionary and
// optional corpus statistics.
type Segmenter struct {
	// dict stores every dictionary word with its precomputed Viterbi
	// cost as the trie weight, so MatchesFrom hands the decoder
	// (length, cost) pairs directly.
	dict  *trie.Trie
	stats *corpus.Stats // may be nil: uniform word costs
	// unknownPenalty is the additional negative-log cost of emitting a
	// single unknown rune; it keeps the Viterbi path on dictionary words
	// whenever one covers the span.
	unknownPenalty float64
}

// Option configures a Segmenter.
type Option func(*Segmenter)

// WithStats supplies corpus statistics; word costs become smoothed
// unigram surprisals instead of uniform costs.
func WithStats(s *corpus.Stats) Option {
	return func(sg *Segmenter) { sg.stats = s }
}

// WithUnknownPenalty overrides the cost of unknown single runes.
func WithUnknownPenalty(p float64) Option {
	return func(sg *Segmenter) { sg.unknownPenalty = p }
}

// New builds a Segmenter over the given dictionary words.
func New(words []string, opts ...Option) *Segmenter {
	sg := &Segmenter{unknownPenalty: 14.0}
	for _, o := range opts {
		o(sg)
	}
	t := trie.New()
	for _, w := range words {
		if w != "" {
			t.InsertWeighted(w, sg.wordCost(w, true))
		}
	}
	t.Freeze()
	sg.dict = t
	return sg
}

// AddWord inserts an extra dictionary word (e.g. an entity title learned
// from page titles) with its precomputed cost, then re-freezes the
// dictionary so Cut stays on the compact-trie fast path. Word costs
// depend only on the word and the (immutable) corpus statistics, so
// insertion never invalidates other words' precomputed costs. Not safe
// to call concurrently with Cut. Re-freezing costs O(dictionary edges),
// so insert batches through AddWords.
func (sg *Segmenter) AddWord(w string) { sg.AddWords(w) }

// AddWords inserts several dictionary words, thawing at most once and
// re-freezing once at the end — the bulk form AddWord delegates to.
// Not safe to call concurrently with Cut.
func (sg *Segmenter) AddWords(ws ...string) {
	for _, w := range ws {
		if w != "" {
			sg.dict.InsertWeighted(w, sg.wordCost(w, true))
		}
	}
	sg.dict.Freeze()
}

// RefreshCosts recomputes every dictionary word's precomputed cost
// from the current corpus statistics. The statistics object supplied
// via WithStats is mutable; costs are frozen into the trie at
// construction, so a caller that extends the statistics afterwards
// (e.g. the incremental-update pipeline adding a crawl batch) must
// call RefreshCosts for segmentation to see the new probabilities.
// O(dictionary) and in place — the trie stays frozen. Not safe to
// call concurrently with Cut.
func (sg *Segmenter) RefreshCosts() {
	sg.dict.Reweight(func(w string, _ float64) float64 { return sg.wordCost(w, true) })
}

// DictSize returns the number of dictionary words.
func (sg *Segmenter) DictSize() int { return sg.dict.Size() }

// HasWord reports whether w is a dictionary word.
func (sg *Segmenter) HasWord(w string) bool { return sg.dict.Contains(w) }

// scratch is the per-call working set of CutAppend, recycled through a
// pool so steady-state segmentation performs zero heap allocations.
type scratch struct {
	spans []spanRange  // span partition of the input
	rs    []rune       // runes of the current Han span
	ofs   []int32      // byte offset of each rune + final end offset
	best  []float64    // minimal cost to segment rs[:i]
	back  []int32      // start of the last word in that segmentation
	match []trie.Match // per-position dictionary matches
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Cut segments text into words using Viterbi decoding. Punctuation and
// non-Han runs are emitted as their own tokens. Every token is a
// substring (shared bytes) of text.
func (sg *Segmenter) Cut(text string) []string {
	return sg.CutAppend(nil, text)
}

// CutAppend segments text like Cut but appends the tokens to dst and
// returns the extended slice. Passing a recycled dst (e.g. dst[:0]
// from the previous call) keeps the whole segmentation allocation-free
// in steady state — the batch loops of the build pipeline run on this
// entry point.
//
//cnp:noalloc
func (sg *Segmenter) CutAppend(dst []string, text string) []string {
	if text == "" {
		return dst
	}
	sc := scratchPool.Get().(*scratch)
	sc.spans = appendSpans(sc.spans[:0], text)
	for _, sp := range sc.spans {
		if sp.kind == spanHan {
			dst = sg.cutHan(dst, text[sp.start:sp.end], sc)
		} else {
			dst = append(dst, text[sp.start:sp.end])
		}
	}
	scratchPool.Put(sc)
	return dst
}

// CutAll is like Cut applied to each input string, flattening the
// results with sentence boundaries preserved per input.
func (sg *Segmenter) CutAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = sg.Cut(t)
	}
	return out
}

// wordCost returns the negative log probability of w as one token.
// Known-word costs are computed once per dictionary word at
// construction (or AddWord) and carried as trie weights; the decoder
// never calls this on the hot path.
func (sg *Segmenter) wordCost(w string, known bool) float64 {
	if !known {
		return sg.unknownPenalty * float64(runes.Len(w))
	}
	if sg.stats == nil {
		// Uniform cost with a mild preference for longer words.
		return 6.0 - 0.5*float64(runes.Len(w))
	}
	return -math.Log(sg.stats.Probability(w))
}

// growFloats returns a len-n float slice backed by buf when it has the
// capacity, so the lattice arrays stop allocating once warm.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growInts(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// cutHan Viterbi-decodes one pure-Han span, appending its tokens to
// dst. text is the span substring; all tokens are substrings of it.
//
//cnp:noalloc
func (sg *Segmenter) cutHan(dst []string, text string, sc *scratch) []string {
	rs, ofs := sc.rs[:0], sc.ofs[:0]
	for i, r := range text {
		rs = append(rs, r)
		ofs = append(ofs, int32(i))
	}
	ofs = append(ofs, int32(len(text)))
	sc.rs, sc.ofs = rs, ofs
	n := len(rs)
	if n == 0 {
		return dst
	}
	const inf = math.MaxFloat64
	best := growFloats(sc.best, n+1)
	back := growInts(sc.back, n+1)
	sc.best, sc.back = best, back
	best[0] = 0
	for i := 1; i <= n; i++ {
		best[i] = inf
	}
	match := sc.match
	for i := 0; i < n; i++ {
		if best[i] == inf {
			continue
		}
		// One trie walk per lattice position yields every candidate,
		// single runes included — Match.Weight is the precomputed word
		// cost, so no candidate string is ever built.
		match = sg.dict.MatchesFromAppend(rs, i, match[:0])
		single := sg.unknownPenalty // unknown single-rune fallback
		rest := match
		if len(match) > 0 && match[0].Len == 1 {
			single = match[0].Weight
			rest = match[1:]
		}
		if c := best[i] + single; c < best[i+1] {
			best[i+1] = c
			back[i+1] = int32(i)
		}
		for _, m := range rest {
			end := i + m.Len
			if c := best[i] + m.Weight; c < best[end] {
				best[end] = c
				back[end] = int32(i)
			}
		}
	}
	sc.match = match
	// Reconstruct: follow back pointers appending tokens last-to-first,
	// then reverse the appended region in place.
	base := len(dst)
	for i := n; i > 0; {
		j := back[i]
		dst = append(dst, text[ofs[j]:ofs[i]])
		i = int(j)
	}
	for l, r := base, len(dst)-1; l < r; l, r = l+1, r-1 {
		dst[l], dst[r] = dst[r], dst[l]
	}
	return dst
}

// CutFMM segments a pure-Han string with forward maximum matching, the
// greedy baseline.
func (sg *Segmenter) CutFMM(text string) []string {
	var out []string
	for _, span := range splitSpans(text) {
		if span.kind != spanHan {
			out = append(out, span.text)
			continue
		}
		rs := []rune(span.text)
		for i := 0; i < len(rs); {
			l := sg.dict.LongestFrom(rs, i)
			if l == 0 {
				l = 1
			}
			out = append(out, string(rs[i:i+l]))
			i += l
		}
	}
	return out
}

type spanKind int

const (
	spanHan spanKind = iota
	spanOther
	spanPunct
)

// spanRange is one maximal run, as byte offsets into the input.
type spanRange struct {
	start, end int32
	kind       spanKind
}

// span is the materialized form (kept for splitSpans and its tests).
type span struct {
	text string
	kind spanKind
}

// isSpace reports whether r is whitespace the segmenter drops (CRLF
// included, so Windows line endings never leak a \r into a token).
func isSpace(r rune) bool {
	return r == ' ' || r == '\t' || r == '\n' || r == '\r'
}

// appendSpans partitions text into maximal runs of Han runes,
// punctuation (one span per punct rune) and everything else (whole
// runs: latin words, numbers), appending byte-offset ranges to buf.
// Whitespace separates runs and is dropped. Every range is a verbatim
// byte range of text, invalid UTF-8 included (an invalid byte
// classifies as punctuation via utf8.RuneError but keeps its own
// 1-byte width).
//
//cnp:noalloc
func appendSpans(buf []spanRange, text string) []spanRange {
	cur := -1 // start byte of the open run, -1 = none
	curKind := spanOther
	for i, r := range text {
		var kind spanKind
		switch {
		case isSpace(r) || runes.IsPunct(r):
			if cur >= 0 {
				buf = append(buf, spanRange{start: int32(cur), end: int32(i), kind: curKind})
				cur = -1
			}
			if !isSpace(r) {
				// The punct span ends where the next rune starts; record
				// the start now and close it on the next iteration (or at
				// the end of text) so invalid bytes keep their true width.
				cur, curKind = i, spanPunct
			}
			continue
		case runes.IsHan(r):
			kind = spanHan
		default:
			kind = spanOther
		}
		if cur >= 0 && curKind != kind {
			buf = append(buf, spanRange{start: int32(cur), end: int32(i), kind: curKind})
			cur = -1
		}
		if cur < 0 {
			cur, curKind = i, kind
		}
	}
	if cur >= 0 {
		buf = append(buf, spanRange{start: int32(cur), end: int32(len(text)), kind: curKind})
	}
	return buf
}

// splitSpans partitions text into materialized spans; CutFMM and the
// span tests use this form, the hot path uses appendSpans directly.
func splitSpans(text string) []span {
	var out []span
	for _, sr := range appendSpans(nil, text) {
		out = append(out, span{text: text[sr.start:sr.end], kind: sr.kind})
	}
	return out
}

// IsContentToken reports whether a token produced by Cut is a content
// word (Han text) rather than punctuation, digits or latin runs.
func IsContentToken(tok string) bool { return runes.AllHan(tok) }
