// Package segment implements Chinese word segmentation on top of a
// dictionary trie. Chinese text has no word spaces, so the separation
// algorithm (paper Section II) depends on this substrate to turn a
// bracket noun compound into the word sequence (x1 … xn).
//
// Two algorithms are provided:
//
//   - Viterbi (default): dynamic programming over all dictionary
//     matches, maximizing the product of unigram word probabilities
//     (equivalently, minimizing summed negative log probabilities).
//     Unknown runes fall back to single-character "words" with a high
//     cost, so dictionary words are strongly preferred.
//   - Forward maximum matching (FMM): the classic greedy longest-match
//     baseline, exposed for comparison and used in tests as an oracle
//     cross-check.
//
// A Segmenter is immutable after construction and safe for concurrent
// use.
package segment

import (
	"math"
	"strings"

	"cnprobase/internal/corpus"
	"cnprobase/internal/runes"
	"cnprobase/internal/trie"
)

// Segmenter cuts Chinese text into words using a dictionary and
// optional corpus statistics.
type Segmenter struct {
	dict  *trie.Trie
	stats *corpus.Stats // may be nil: uniform word costs
	// unknownPenalty is the additional negative-log cost of emitting a
	// single unknown rune; it keeps the Viterbi path on dictionary words
	// whenever one covers the span.
	unknownPenalty float64
}

// Option configures a Segmenter.
type Option func(*Segmenter)

// WithStats supplies corpus statistics; word costs become smoothed
// unigram surprisals instead of uniform costs.
func WithStats(s *corpus.Stats) Option {
	return func(sg *Segmenter) { sg.stats = s }
}

// WithUnknownPenalty overrides the cost of unknown single runes.
func WithUnknownPenalty(p float64) Option {
	return func(sg *Segmenter) { sg.unknownPenalty = p }
}

// New builds a Segmenter over the given dictionary words.
func New(words []string, opts ...Option) *Segmenter {
	t := trie.New()
	for _, w := range words {
		if w != "" {
			t.Insert(w)
		}
	}
	sg := &Segmenter{dict: t, unknownPenalty: 14.0}
	for _, o := range opts {
		o(sg)
	}
	return sg
}

// AddWord inserts an extra dictionary word (e.g. an entity title learned
// from page titles). Not safe to call concurrently with Cut.
func (sg *Segmenter) AddWord(w string) {
	if w != "" {
		sg.dict.Insert(w)
	}
}

// DictSize returns the number of dictionary words.
func (sg *Segmenter) DictSize() int { return sg.dict.Size() }

// HasWord reports whether w is a dictionary word.
func (sg *Segmenter) HasWord(w string) bool { return sg.dict.Contains(w) }

// Cut segments text into words using Viterbi decoding. Punctuation and
// non-Han runs are emitted as their own tokens.
func (sg *Segmenter) Cut(text string) []string {
	var out []string
	for _, span := range splitSpans(text) {
		if span.kind == spanHan {
			out = append(out, sg.cutHan([]rune(span.text))...)
		} else {
			out = append(out, span.text)
		}
	}
	return out
}

// CutAll is like Cut applied to each input string, flattening the
// results with sentence boundaries preserved per input.
func (sg *Segmenter) CutAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = sg.Cut(t)
	}
	return out
}

// wordCost returns the negative log probability of w as one token.
func (sg *Segmenter) wordCost(w string, known bool) float64 {
	if !known {
		return sg.unknownPenalty * float64(runes.Len(w))
	}
	if sg.stats == nil {
		// Uniform cost with a mild preference for longer words.
		return 6.0 - 0.5*float64(runes.Len(w))
	}
	return -math.Log(sg.stats.Probability(w))
}

// cutHan Viterbi-decodes a pure-Han rune span.
func (sg *Segmenter) cutHan(rs []rune) []string {
	n := len(rs)
	if n == 0 {
		return nil
	}
	const inf = math.MaxFloat64
	// best[i] = minimal cost to segment rs[:i]; back[i] = start of the
	// last word in that segmentation.
	best := make([]float64, n+1)
	back := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = inf
	}
	for i := 0; i < n; i++ {
		if best[i] == inf {
			continue
		}
		// Unknown single rune fallback keeps the lattice connected.
		if c := best[i] + sg.wordCost(string(rs[i]), sg.dict.Contains(string(rs[i]))); c < best[i+1] {
			best[i+1] = c
			back[i+1] = i
		}
		for _, m := range sg.dict.MatchesFrom(rs, i) {
			if m.Len < 2 {
				continue // single-rune matches handled above
			}
			end := i + m.Len
			w := string(rs[i:end])
			if c := best[i] + sg.wordCost(w, true); c < best[end] {
				best[end] = c
				back[end] = i
			}
		}
	}
	// Reconstruct.
	var rev []string
	for i := n; i > 0; {
		j := back[i]
		rev = append(rev, string(rs[j:i]))
		i = j
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// CutFMM segments a pure-Han string with forward maximum matching, the
// greedy baseline.
func (sg *Segmenter) CutFMM(text string) []string {
	var out []string
	for _, span := range splitSpans(text) {
		if span.kind != spanHan {
			out = append(out, span.text)
			continue
		}
		rs := []rune(span.text)
		for i := 0; i < len(rs); {
			l := sg.dict.LongestFrom(rs, i)
			if l == 0 {
				l = 1
			}
			out = append(out, string(rs[i:i+l]))
			i += l
		}
	}
	return out
}

type spanKind int

const (
	spanHan spanKind = iota
	spanOther
	spanPunct
)

type span struct {
	text string
	kind spanKind
}

// splitSpans partitions text into maximal runs of Han runes,
// punctuation (one token per punct rune) and everything else (kept as
// whole runs: latin words, numbers).
func splitSpans(text string) []span {
	var spans []span
	var cur strings.Builder
	curKind := spanOther
	flush := func() {
		if cur.Len() > 0 {
			spans = append(spans, span{text: cur.String(), kind: curKind})
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case runes.IsPunct(r) || r == ' ' || r == '\t' || r == '\n':
			flush()
			if r != ' ' && r != '\t' && r != '\n' {
				spans = append(spans, span{text: string(r), kind: spanPunct})
			}
		case runes.IsHan(r):
			if curKind != spanHan {
				flush()
				curKind = spanHan
			}
			cur.WriteRune(r)
		default:
			if curKind != spanOther {
				flush()
				curKind = spanOther
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return spans
}

// IsContentToken reports whether a token produced by Cut is a content
// word (Han text) rather than punctuation, digits or latin runs.
func IsContentToken(tok string) bool { return runes.AllHan(tok) }
