package segment

import (
	"strings"
	"testing"
	"testing/quick"

	"cnprobase/internal/corpus"
)

var dict = []string{
	"中国", "中国香港", "男演员", "演员", "歌手", "词作人",
	"蚂蚁", "金服", "首席", "战略官", "出生", "出生于", "香港",
}

func TestCutBasic(t *testing.T) {
	sg := New(dict)
	got := sg.Cut("蚂蚁金服首席战略官")
	want := []string{"蚂蚁", "金服", "首席", "战略官"}
	assertTokens(t, got, want)
}

func TestCutPrefersLongerDictionaryWords(t *testing.T) {
	sg := New(dict)
	// 中国香港 must win over 中国+香港, and 男演员 over unknown 男 + 演员
	// needs stats-free preference for longer words.
	got := sg.Cut("中国香港男演员")
	want := []string{"中国香港", "男演员"}
	assertTokens(t, got, want)
}

func TestCutUnknownRunesFallback(t *testing.T) {
	sg := New(dict)
	got := sg.Cut("犇演员")
	want := []string{"犇", "演员"}
	assertTokens(t, got, want)
}

func TestCutMixedScripts(t *testing.T) {
	sg := New(dict)
	got := sg.Cut("演员Andy123，歌手。")
	want := []string{"演员", "Andy123", "，", "歌手", "。"}
	assertTokens(t, got, want)
}

func TestCutEmpty(t *testing.T) {
	sg := New(dict)
	if got := sg.Cut(""); len(got) != 0 {
		t.Errorf("Cut(\"\") = %v, want empty", got)
	}
}

func TestCutWithStatsDisambiguates(t *testing.T) {
	// Stats make 出生于 (observed often) beat 出生+于 splits and vice
	// versa when the corpus says otherwise.
	st := corpus.NewStats()
	for i := 0; i < 50; i++ {
		st.AddSentence([]string{"出生于", "中国"})
	}
	sg := New(dict, WithStats(st))
	got := sg.Cut("出生于中国")
	assertTokens(t, got, []string{"出生于", "中国"})
}

func TestCutFMMGreedy(t *testing.T) {
	sg := New(dict)
	got := sg.CutFMM("中国香港男演员")
	assertTokens(t, got, []string{"中国香港", "男演员"})
	got = sg.CutFMM("犇犇")
	assertTokens(t, got, []string{"犇", "犇"})
}

func TestAddWord(t *testing.T) {
	sg := New(dict)
	before := sg.Cut("忘情水")
	if len(before) != 3 {
		t.Fatalf("before AddWord: %v", before)
	}
	sg.AddWord("忘情水")
	assertTokens(t, sg.Cut("忘情水"), []string{"忘情水"})
	if !sg.HasWord("忘情水") {
		t.Error("HasWord after AddWord = false")
	}
}

func TestIsContentToken(t *testing.T) {
	for tok, want := range map[string]bool{
		"演员": true, "，": false, "Andy": false, "123": false, "": false,
	} {
		if got := IsContentToken(tok); got != want {
			t.Errorf("IsContentToken(%q) = %v, want %v", tok, got, want)
		}
	}
}

// Property: segmentation never loses or reorders non-whitespace
// content — concatenating the tokens reproduces the input minus spaces.
func TestQuickCutLossless(t *testing.T) {
	sg := New(dict)
	pieces := []string{"中国", "香港", "男演员", "犇", "Andy", "，", "123", "出生于"}
	f := func(idxs []uint8) bool {
		var in strings.Builder
		for _, i := range idxs {
			in.WriteString(pieces[int(i)%len(pieces)])
		}
		s := in.String()
		joined := strings.Join(sg.Cut(s), "")
		return joined == strings.ReplaceAll(s, " ", "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every token is non-empty.
func TestQuickNoEmptyTokens(t *testing.T) {
	sg := New(dict)
	f := func(s string) bool {
		for _, tok := range sg.Cut(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func assertTokens(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}
