package segment

import (
	"math/rand"
	"strings"
	"testing"

	"cnprobase/internal/corpus"
)

// slowSegment is the pre-optimization reference implementation of Cut,
// retained verbatim as the correctness oracle for the zero-allocation
// path: it materializes every candidate string, recomputes word costs
// through wordCost instead of reading them off the trie weights, and
// probes the dictionary separately for single runes. Any divergence
// between it and Cut is a bug in the optimized path.
func slowSegment(sg *Segmenter, text string) []string {
	var out []string
	for _, span := range splitSpans(text) {
		if span.kind == spanHan {
			out = append(out, slowCutHan(sg, []rune(span.text))...)
		} else {
			out = append(out, span.text)
		}
	}
	return out
}

// slowCutHan is the old Viterbi decoder over a pure-Han rune span.
func slowCutHan(sg *Segmenter, rs []rune) []string {
	n := len(rs)
	if n == 0 {
		return nil
	}
	const inf = 1.7976931348623157e308 // math.MaxFloat64
	best := make([]float64, n+1)
	back := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = inf
	}
	for i := 0; i < n; i++ {
		if best[i] == inf {
			continue
		}
		// Unknown single rune fallback keeps the lattice connected.
		if c := best[i] + sg.wordCost(string(rs[i]), sg.dict.Contains(string(rs[i]))); c < best[i+1] {
			best[i+1] = c
			back[i+1] = i
		}
		for _, m := range sg.dict.MatchesFrom(rs, i) {
			if m.Len < 2 {
				continue // single-rune matches handled above
			}
			end := i + m.Len
			w := string(rs[i:end])
			if c := best[i] + sg.wordCost(w, true); c < best[end] {
				best[end] = c
				back[end] = i
			}
		}
	}
	var rev []string
	for i := n; i > 0; {
		j := back[i]
		rev = append(rev, string(rs[j:i]))
		i = j
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// randomCorpusCase builds one randomized (dictionary, stats, texts)
// triple: Han words over a small alphabet (so matches overlap heavily),
// mixed into sentences with latin runs, digits, punctuation and
// whitespace.
func randomCorpusCase(rng *rand.Rand) (dict []string, st *corpus.Stats, texts []string) {
	hanAlphabet := []rune("天地人你我他中国演员歌手学者出生香港北南山水")
	randWord := func(min, max int) string {
		n := min + rng.Intn(max-min+1)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = hanAlphabet[rng.Intn(len(hanAlphabet))]
		}
		return string(rs)
	}
	nWords := 30 + rng.Intn(60)
	for i := 0; i < nWords; i++ {
		dict = append(dict, randWord(1, 4))
	}
	if rng.Intn(2) == 0 {
		st = corpus.NewStats()
		for i := 0; i < 40; i++ {
			sent := make([]string, 0, 6)
			for j := 0; j < 2+rng.Intn(5); j++ {
				sent = append(sent, dict[rng.Intn(len(dict))])
			}
			st.AddSentence(sent)
		}
	}
	other := []string{"Andy", "abc", "X1", "42", "２０１９"}
	punct := []string{"，", "。", "、", "！", ",", "-", "…"}
	space := []string{" ", "\t", "\n", "\r\n", ""}
	nTexts := 20 + rng.Intn(20)
	for i := 0; i < nTexts; i++ {
		var sb strings.Builder
		for j := 0; j < 1+rng.Intn(12); j++ {
			switch rng.Intn(10) {
			case 0:
				sb.WriteString(other[rng.Intn(len(other))])
			case 1:
				sb.WriteString(punct[rng.Intn(len(punct))])
			case 2:
				sb.WriteString(space[rng.Intn(len(space))])
			default:
				if rng.Intn(3) == 0 {
					sb.WriteString(randWord(1, 5)) // off-dictionary runs
				} else {
					sb.WriteString(dict[rng.Intn(len(dict))])
				}
			}
		}
		texts = append(texts, sb.String())
	}
	return dict, st, texts
}

// TestCutMatchesSlowReference is the equivalence property the tentpole
// rests on: over randomized mixed Han/latin/punct corpora (several
// seeds, with and without corpus statistics), the optimized Cut and
// the recycled-buffer CutAppend produce token streams identical to the
// retained reference implementation.
func TestCutMatchesSlowReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		words, st, texts := randomCorpusCase(rng)
		var opts []Option
		if st != nil {
			opts = append(opts, WithStats(st))
		}
		sg := New(words, opts...)
		var recycled []string
		for _, text := range texts {
			want := slowSegment(sg, text)
			got := sg.Cut(text)
			assertSameTokens(t, seed, text, "Cut", got, want)
			recycled = sg.CutAppend(recycled[:0], text)
			assertSameTokens(t, seed, text, "CutAppend", recycled, want)
		}
	}
}

// TestCutMatchesSlowReferenceAfterAddWord pins that AddWord (which
// thaws, re-inserts and re-freezes the dictionary trie) keeps the two
// implementations in lockstep.
func TestCutMatchesSlowReferenceAfterAddWord(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	words, _, texts := randomCorpusCase(rng)
	sg := New(words)
	sg.AddWord("天地人你我")
	sg.AddWord("忘情水")
	for _, text := range append(texts, "天地人你我忘情水") {
		want := slowSegment(sg, text)
		got := sg.Cut(text)
		assertSameTokens(t, 1234, text, "Cut after AddWord", got, want)
	}
}

// TestRefreshCostsTracksMutatedStats pins the batch-feedback contract:
// costs are frozen at construction, so mutating the statistics leaves
// segmentation unchanged until RefreshCosts, after which the optimized
// path must again match the oracle (which reads the stats live).
func TestRefreshCostsTracksMutatedStats(t *testing.T) {
	// Dictionary with the classic 研究生/生命 ambiguity; the corpus
	// initially favors 研究生+命, then shifts to 研究+生命.
	words := []string{"研究", "研究生", "生命", "命", "起源"}
	st := corpus.NewStats()
	for i := 0; i < 40; i++ {
		st.AddSentence([]string{"研究生", "命"})
	}
	sg := New(words, WithStats(st))
	text := "研究生命起源"
	assertTokens(t, sg.Cut(text), []string{"研究生", "命", "起源"})

	for i := 0; i < 400; i++ {
		st.AddSentence([]string{"研究", "生命", "起源"})
	}
	// Frozen costs: the shift is invisible until a refresh...
	assertTokens(t, sg.Cut(text), []string{"研究生", "命", "起源"})
	// ...and the oracle (live stats) already disagrees, so the two
	// paths are only guaranteed to match after RefreshCosts.
	sg.RefreshCosts()
	assertTokens(t, sg.Cut(text), []string{"研究", "生命", "起源"})
	assertSameTokens(t, 0, text, "Cut after RefreshCosts", sg.Cut(text), slowSegment(sg, text))
}

func assertSameTokens(t *testing.T, seed int64, text, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("seed %d %s(%q): got %v, reference %v", seed, label, text, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seed %d %s(%q): got %v, reference %v", seed, label, text, got, want)
		}
	}
}

// TestCutAllocations pins the zero-allocation guarantee of the pooled
// steady-state path, the segmentation analogue of serving's
// TestQueryAllocations: CutAppend into a recycled destination over
// dictionary-covered Han input must not touch the heap.
func TestCutAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	sg := New(dict)
	han := strings.Repeat("中国香港男演员蚂蚁金服首席战略官出生于香港", 8)
	mixed := "中国香港男演员Andy123，歌手。出生于香港"
	var dst []string
	dst = sg.CutAppend(dst, han) // warm the scratch pool and dst
	for name, text := range map[string]string{"han": han, "mixed": mixed} {
		allocs := testing.AllocsPerRun(200, func() {
			dst = sg.CutAppend(dst[:0], text)
		})
		if allocs != 0 {
			t.Errorf("CutAppend(%s) allocates %.1f objects per op, want 0", name, allocs)
		}
	}
}

// TestCutTokensShareInputBytes pins the zero-copy token representation:
// every token must be a substring of the input by position, not a
// reconstructed copy.
func TestCutTokensShareInputBytes(t *testing.T) {
	sg := New(dict)
	text := "中国香港男演员，Andy 出生于香港"
	pos := 0
	raw := strings.NewReplacer(" ", "", "\t", "", "\n", "", "\r", "").Replace(text)
	for _, tok := range sg.Cut(text) {
		idx := strings.Index(raw[pos:], tok)
		if idx != 0 {
			t.Fatalf("token %q not contiguous at offset %d of %q", tok, pos, raw)
		}
		pos += len(tok)
	}
	if pos != len(raw) {
		t.Fatalf("tokens cover %d bytes of %d", pos, len(raw))
	}
}
