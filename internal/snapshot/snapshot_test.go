package snapshot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"cnprobase/internal/api"
	"cnprobase/internal/core"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// handState assembles a small deterministic serving state without the
// pipeline: entities, concepts, a subconcept edge, multi-source
// provenance, reinforced evidence counts and an ambiguous mention.
func handState(tb testing.TB) *State {
	tb.Helper()
	tax := taxonomy.New()
	mentions := taxonomy.NewMentionIndex()
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("实体%02d（人物）", i)
		concept := fmt.Sprintf("概念%d", i%7)
		tax.MarkEntity(id)
		if err := tax.AddIsA(id, concept, taxonomy.SourceBracket, 0.5+float64(i)/100); err != nil {
			tb.Fatalf("AddIsA: %v", err)
		}
		if i%3 == 0 { // reinforce: bump Count and add a source bit
			if err := tax.AddIsA(id, concept, taxonomy.SourceTag, 0.9); err != nil {
				tb.Fatalf("AddIsA: %v", err)
			}
		}
		mentions.Add(fmt.Sprintf("实体%02d", i), id)
		mentions.Add(id, id)
	}
	mentions.Add("实体00", "实体07（人物）") // ambiguous mention
	for i := 0; i < 7; i++ {
		if err := tax.AddIsA(fmt.Sprintf("概念%d", i), "顶层概念", taxonomy.SourceMorph, 1); err != nil {
			tb.Fatalf("AddIsA: %v", err)
		}
	}
	tax.Finalize()
	return &State{
		Taxonomy: tax,
		Mentions: mentions,
		Meta:     Meta{Pages: 40, Stats: tax.ComputeStats()},
	}
}

// buildState runs the real pipeline (neural stage off for speed) over
// the deterministic synthetic world at the given concurrency settings.
func buildState(tb testing.TB, entities, workers, shards int) *State {
	tb.Helper()
	cfg := synth.DefaultConfig()
	cfg.Entities = entities
	w, err := synth.Generate(cfg)
	if err != nil {
		tb.Fatalf("synth.Generate: %v", err)
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	opts.Workers = workers
	opts.Shards = shards
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	return &State{
		Taxonomy: res.Taxonomy,
		Mentions: res.Mentions,
		Meta:     Meta{Pages: res.Report.Pages, Stats: res.Report.Stats},
	}
}

func saveBytes(tb testing.TB, st *State, opts Options) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, st, opts); err != nil {
		tb.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// saveLegacyBytes writes st in the striped version-2 layout — the
// compatibility-path fixture source.
func saveLegacyBytes(tb testing.TB, st *State, opts Options) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := SaveLegacy(&buf, st, opts); err != nil {
		tb.Fatalf("SaveLegacy: %v", err)
	}
	return buf.Bytes()
}

// requireEqualState checks that two states are query-identical across
// everything the serving APIs read: edges with full provenance, node
// kinds, stats, adjacency (plain and typicality-ranked) and mention
// resolution. Both states must be finalized.
func requireEqualState(tb testing.TB, want, got *State) {
	tb.Helper()
	wantEdges, gotEdges := want.Taxonomy.Edges(), got.Taxonomy.Edges()
	if len(wantEdges) != len(gotEdges) {
		tb.Fatalf("edge count = %d, want %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			tb.Fatalf("edge[%d] = %+v, want %+v", i, gotEdges[i], wantEdges[i])
		}
	}
	wantNodes, gotNodes := want.Taxonomy.Nodes(), got.Taxonomy.Nodes()
	if len(wantNodes) != len(gotNodes) {
		tb.Fatalf("node count = %d, want %d", len(gotNodes), len(wantNodes))
	}
	for i, n := range wantNodes {
		if gotNodes[i] != n {
			tb.Fatalf("node[%d] = %q, want %q", i, gotNodes[i], n)
		}
		if wk, gk := want.Taxonomy.Kind(n), got.Taxonomy.Kind(n); wk != gk {
			tb.Fatalf("Kind(%q) = %d, want %d", n, gk, wk)
		}
		wh, gh := want.Taxonomy.Hypernyms(n), got.Taxonomy.Hypernyms(n)
		if fmt.Sprint(wh) != fmt.Sprint(gh) {
			tb.Fatalf("Hypernyms(%q) = %v, want %v", n, gh, wh)
		}
		if w, g := want.Taxonomy.Hyponyms(n, 0), got.Taxonomy.Hyponyms(n, 0); fmt.Sprint(w) != fmt.Sprint(g) {
			tb.Fatalf("Hyponyms(%q) = %v, want %v", n, g, w)
		}
		if w, g := want.Taxonomy.RankedHypernyms(n, 0), got.Taxonomy.RankedHypernyms(n, 0); fmt.Sprint(w) != fmt.Sprint(g) {
			tb.Fatalf("RankedHypernyms(%q) = %v, want %v", n, g, w)
		}
	}
	if ws, gs := want.Taxonomy.ComputeStats(), got.Taxonomy.ComputeStats(); ws != gs {
		tb.Fatalf("stats = %+v, want %+v", gs, ws)
	}
	if ws, gs := want.Mentions.Size(), got.Mentions.Size(); ws != gs {
		tb.Fatalf("mention count = %d, want %d", gs, ws)
	}
	for _, n := range wantNodes {
		if w, g := want.Mentions.Lookup(n), got.Mentions.Lookup(n); fmt.Sprint(w) != fmt.Sprint(g) {
			tb.Fatalf("Lookup(%q) = %v, want %v", n, g, w)
		}
	}
}

// TestRoundTripHandAssembled is the core property: Load(Save(x)) is
// query-identical to x, for every combination of save/load worker and
// shard settings.
func TestRoundTripHandAssembled(t *testing.T) {
	st := handState(t)
	for _, saveWorkers := range []int{1, 4} {
		data := saveBytes(t, st, Options{Workers: saveWorkers})
		for _, loadOpts := range []Options{
			{Workers: 1, Shards: 1},
			{Workers: 1, Shards: 64},
			{Workers: 8, Shards: 1},
			{Workers: 8, Shards: 64},
			{}, // all defaults
		} {
			got, err := Load(bytes.NewReader(data), loadOpts)
			if err != nil {
				t.Fatalf("Load(save=%d, opts=%+v): %v", saveWorkers, loadOpts, err)
			}
			if !got.Taxonomy.Finalized() {
				t.Fatalf("loaded taxonomy not finalized (opts %+v)", loadOpts)
			}
			if loadOpts.Shards > 0 && got.Taxonomy.ShardCount() != loadOpts.Shards {
				t.Fatalf("loaded ShardCount = %d, want %d", got.Taxonomy.ShardCount(), loadOpts.Shards)
			}
			if got.Meta.Pages != st.Meta.Pages || got.Meta.Stats != st.Meta.Stats {
				t.Fatalf("meta = %+v, want %+v", got.Meta, st.Meta)
			}
			requireEqualState(t, st, got)
		}
	}
}

// TestRoundTripBuiltWorld runs the property over a real pipeline
// output, including provenance-heavy multi-source edges and the full
// mention index.
func TestRoundTripBuiltWorld(t *testing.T) {
	st := buildState(t, 500, 4, 8)
	data := saveBytes(t, st, Options{Workers: 4})
	got, err := Load(bytes.NewReader(data), Options{Workers: 4, Shards: 32})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireEqualState(t, st, got)
}

// TestByteStabilityAcrossConfigs is the golden guarantee: the same
// synthetic world produces byte-identical snapshots no matter which
// Workers/Shards settings built the taxonomy and no matter which
// worker count saved it — the PR-1 determinism contract extended to
// the on-disk format. A repeated save is also byte-identical (no
// timestamps, no map-order leakage).
func TestByteStabilityAcrossConfigs(t *testing.T) {
	ref := buildState(t, 400, 1, 1)
	refBytes := saveBytes(t, ref, Options{Workers: 1})

	if again := saveBytes(t, ref, Options{Workers: 1}); !bytes.Equal(refBytes, again) {
		t.Fatal("re-saving the same state changed the bytes")
	}
	if par := saveBytes(t, ref, Options{Workers: 8}); !bytes.Equal(refBytes, par) {
		t.Fatal("Workers=8 save differs from Workers=1 save of the same state")
	}
	other := buildState(t, 400, 8, 48)
	if otherBytes := saveBytes(t, other, Options{Workers: 3}); !bytes.Equal(refBytes, otherBytes) {
		t.Fatalf("snapshot of (workers=8, shards=48) build differs from (1, 1) build: %d vs %d bytes",
			len(otherBytes), len(refBytes))
	}
}

// apiResponses issues a fixed query mix — men2ent, getConcept (plain
// and ranked), getEntity (unlimited and limited), plus the Section V
// layer (conceptualize, qa) over texts built from the mentions —
// against a server and returns the concatenated raw response bodies.
func apiResponses(tb testing.TB, srv *api.Server, nodes, mentions []string) string {
	tb.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var out bytes.Buffer
	record := func(path string, resp *http.Response, err error) {
		if err != nil {
			tb.Fatalf("%s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			tb.Fatalf("read %s: %v", path, err)
		}
		fmt.Fprintf(&out, "%s %d %s", path, resp.StatusCode, body)
	}
	get := func(path string) {
		resp, err := ts.Client().Get(ts.URL + path)
		record(path, resp, err)
	}
	post := func(path string, req any) {
		b, err := json.Marshal(req)
		if err != nil {
			tb.Fatalf("encode %s request: %v", path, err)
		}
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
		record(path, resp, err)
	}
	for _, m := range mentions {
		get("/api/men2ent?mention=" + m)
		post("/api/conceptualize", api.ConceptualizeRequest{Text: m + "的资料"})
		post("/api/qa", api.QARequest{Question: m + "是什么？"})
	}
	for _, n := range nodes {
		get("/api/getConcept?entity=" + n)
		get("/api/getConcept?ranked=1&entity=" + n)
		get("/api/getEntity?concept=" + n)
		get("/api/getEntity?limit=3&concept=" + n)
	}
	return out.String()
}

// TestServingEquivalence pins the acceptance criterion: a taxonomy
// saved from any Workers/Shards build configuration loads into a
// server whose men2ent/getConcept/getEntity responses are identical to
// serving the freshly built taxonomy.
func TestServingEquivalence(t *testing.T) {
	for _, cfg := range []struct{ workers, shards int }{
		{1, 1},
		{8, 32},
	} {
		t.Run(fmt.Sprintf("workers=%d,shards=%d", cfg.workers, cfg.shards), func(t *testing.T) {
			fresh := buildState(t, 400, cfg.workers, cfg.shards)
			data := saveBytes(t, fresh, Options{Workers: cfg.workers})
			loaded, err := Load(bytes.NewReader(data), Options{Workers: cfg.workers, Shards: cfg.shards})
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			nodes := fresh.Taxonomy.Nodes()
			if len(nodes) > 80 {
				nodes = nodes[:80]
			}
			mentions := append([]string(nil), nodes...) // IDs and titles are both mentions
			freshBody := apiResponses(t, api.NewServer(fresh.Taxonomy, fresh.Mentions), nodes, mentions)
			loadedBody := apiResponses(t, api.NewServer(loaded.Taxonomy, loaded.Mentions), nodes, mentions)
			if freshBody != loadedBody {
				t.Fatal("loaded server responses differ from freshly built server responses")
			}
		})
	}
}

// TestEveryBitFlipDetected corrupts the snapshot one byte at a time
// (two flip patterns per position, covering low and high bits) and
// requires Load to fail every single time: the CRC-32 sections and the
// framing checks leave no undetected single-byte corruption.
func TestEveryBitFlipDetected(t *testing.T) {
	st := handState(t)
	data := saveBytes(t, st, Options{Workers: 1})
	for _, mask := range []byte{0x01, 0x80} {
		for i := range data {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= mask
			if _, err := Load(bytes.NewReader(mutated), Options{Workers: 1}); err == nil {
				t.Fatalf("flip of byte %d (mask %#02x) in a %d-byte snapshot was not detected", i, mask, len(data))
			}
		}
	}
}

// TestEveryTruncationErrors cuts the snapshot at every possible length
// and requires a clean error (never a panic, never silent success).
func TestEveryTruncationErrors(t *testing.T) {
	st := handState(t)
	data := saveBytes(t, st, Options{Workers: 1})
	for n := 0; n < len(data); n++ {
		if _, err := Load(bytes.NewReader(data[:n]), Options{Workers: 1}); err == nil {
			t.Fatalf("truncation to %d of %d bytes was not detected", n, len(data))
		}
	}
}

// TestHeaderValidation exercises the version/magic/stripe guards.
func TestHeaderValidation(t *testing.T) {
	st := handState(t)
	data := saveBytes(t, st, Options{})

	bad := append([]byte(nil), data...)
	copy(bad, "NOTASNAP")
	if _, err := Load(bytes.NewReader(bad), Options{}); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), data...)
	bad[8] = 99 // version
	if _, err := Load(bytes.NewReader(bad), Options{}); err == nil {
		t.Error("unknown version accepted")
	}

	bad = append([]byte(nil), data...)
	bad[12], bad[13], bad[14], bad[15] = 0, 0, 0, 0 // stripe count 0
	if _, err := Load(bytes.NewReader(bad), Options{}); err == nil {
		t.Error("zero stripe count accepted")
	}
}

// TestSaveNilState rejects unusable inputs instead of writing a
// half-formed file.
func TestSaveNilState(t *testing.T) {
	if err := Save(io.Discard, nil, Options{}); err == nil {
		t.Error("Save(nil) succeeded")
	}
	if err := Save(io.Discard, &State{}, Options{}); err == nil {
		t.Error("Save of state without taxonomy succeeded")
	}
}

// TestSaveWithoutMentions treats a nil mention index as empty rather
// than failing: a hand-assembled taxonomy is still snapshottable.
func TestSaveWithoutMentions(t *testing.T) {
	st := handState(t)
	st.Mentions = nil
	data := saveBytes(t, st, Options{})
	got, err := Load(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Mentions == nil || got.Mentions.Size() != 0 {
		t.Fatalf("loaded mentions = %v, want empty index", got.Mentions)
	}
}
