//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the bytes plus an unmap
// function. A nil unmap means the bytes are heap-backed (empty file,
// or a filesystem that refused the mapping and fell back to a plain
// read) and need no cleanup. The data must not be used after unmap.
func mmapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil, nil // header validation rejects it with a real error
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return b, nil, nil
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
