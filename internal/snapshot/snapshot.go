// Package snapshot implements the binary serving-state snapshot:
// build the taxonomy once (offline, expensive), save it, and start any
// number of servers from the file in milliseconds instead of re-running
// the generation + verification pipeline. A snapshot captures the
// complete state the paper's three public APIs (men2ent, getConcept,
// getEntity) serve from: the taxonomy — edges with full provenance and
// the evidence counts typicality ranking reads — plus the mention index
// and build metadata.
//
// The format is versioned, sectioned and checksummed (docs/SNAPSHOT.md
// specifies the byte layout). Since version 3 the content section is a
// single mappable "view image": the serving view's canonical arrays as
// fixed-width little-endian blocks plus interned string arenas, 8-byte
// aligned in the file, so OpenMapped can serve straight out of an mmap
// with no decode pass and restart cost independent of taxonomy size.
// Saving compiles the store into the canonical serving view first, so
// the same logical state produces byte-identical snapshots regardless
// of the Workers/Shards settings it was built or saved with — the
// pipeline's determinism guarantee extended to the on-disk artifact.
// Versions 1 and 2 hash-partitioned the content into a fixed number of
// varint-encoded stripes instead; SaveLegacy still writes version 2 and
// the loaders still read both.
//
// Decoding defends against arbitrary input: every length is validated
// against the bytes actually present before anything is allocated or
// parsed, oversized section claims read incrementally and fail fast,
// and corruption anywhere — truncation, bit flips, bogus counts — is
// reported as an error, never a panic (fuzz-tested by
// FuzzDecodeSnapshot).
//
// There are three read paths: Load reassembles the mutable build
// store (for JSON export, experiments, further building), LoadView
// compiles the snapshot into an immutable heap serving.View, and
// OpenMapped — version 3 only — maps the file and serves directly from
// the mapping: the cheapest startup, and N replicas on one box share a
// single page-cache copy of the string arenas.
package snapshot

import (
	"encoding/json"
	"runtime"

	"cnprobase/internal/corpus"
	"cnprobase/internal/extract"
	"cnprobase/internal/taxonomy"
	"cnprobase/internal/verify"
)

// Format constants. The magic and end marker frame the file; Version
// is bumped on any incompatible layout change (a loader rejects
// versions it does not know). Stripes is part of the format, not a
// tuning knob: fixing it is what keeps snapshot bytes independent of
// the in-memory shard count.
const (
	// Magic opens every snapshot file.
	Magic = "CNPBSNP1"
	// EndMagic closes every snapshot file (truncation tripwire).
	EndMagic = "CNPBEND1"
	// Version is the current format version. Version 3 replaces the
	// taxonomy/mention stripes with a single mappable "view image"
	// section — the serving view's canonical arrays as fixed-width
	// little-endian blocks plus interned string arenas, 8-byte aligned
	// in the file — so OpenMapped can serve straight out of an mmap of
	// the file with no decode pass. Version-1 and version-2 (striped)
	// files are still read by Load and LoadView; they simply cannot be
	// mapped.
	Version = 3
	// versionV2 is the striped layout with an evidence section (kept
	// candidates, page-derived verification evidence, NE support,
	// corpus statistics) after the mention stripes — what lets a
	// snapshot-loaded Result accept incremental Update. SaveLegacy
	// still writes it as the compatibility oracle.
	versionV2 = 2
	// versionLegacy is the pre-evidence striped layout the loader
	// still accepts.
	versionLegacy = 1
	// Stripes is the number of hash partitions per index (taxonomy,
	// mentions).
	Stripes = 16
)

// Section kinds, in the order sections appear in the file.
const (
	sectionMeta     byte = 1
	sectionTaxonomy byte = 2
	sectionMentions byte = 3
	sectionEvidence byte = 4
	// sectionView is the version-3 mappable view image, replacing the
	// taxonomy and mention stripes.
	sectionView byte = 5
)

// maxStripes bounds the stripe count a loader accepts from a header.
const maxStripes = 1 << 16

// Meta is the build metadata saved alongside the graph. It describes
// the logical artifact, so it deliberately excludes runtime knobs
// (worker counts, shard counts) — those may differ between the build
// that produced a snapshot and the server that loads it, and keeping
// them out is what makes snapshot bytes identical across
// Workers/Shards configurations.
type Meta struct {
	// Pages is the number of corpus pages the taxonomy was built from.
	Pages int `json:"pages"`
	// Stats is the Table-I-shaped summary recorded at save time.
	Stats taxonomy.Stats `json:"stats"`
	// Report is an opaque JSON build report (the facade stores the
	// pipeline Report with concurrency fields normalized to zero).
	Report json.RawMessage `json:"report,omitempty"`
	// LSN is the write-ahead-log sequence number this snapshot covers:
	// every ingested batch with a log position at or below it is folded
	// into the saved state, so recovery replays the WAL strictly after
	// it. Zero (omitted) for snapshots saved outside the durable
	// ingest plane; old snapshots decode with LSN zero, so the field
	// is compatible in both directions.
	LSN uint64 `json:"lsn,omitempty"`
}

// State is the complete serving state a snapshot round-trips, plus —
// since version 2 — the substrate a Result needs to accept incremental
// Update after loading: the persistent verification evidence, the kept
// candidate set it describes, and the corpus statistics the segmenter
// is rebuilt from. The three travel together: Save writes the evidence
// section only when Evidence and Stats are both present.
type State struct {
	Taxonomy *taxonomy.Taxonomy
	Mentions *taxonomy.MentionIndex
	Meta     Meta

	// Evidence is the persistent incremental-update evidence; nil when
	// the snapshot predates version 2 or was saved without it.
	Evidence *verify.Evidence
	// Kept is the post-verification candidate set the evidence
	// describes.
	Kept []extract.Candidate
	// Stats is the corpus unigram/bigram statistics.
	Stats *corpus.Stats
}

// Options tunes snapshot I/O concurrency and the loaded store shape.
type Options struct {
	// Workers bounds the pool stripe encoding/decoding fans out over:
	// 0 selects one worker per logical CPU, 1 runs sequentially. Any
	// worker count produces the same bytes (Save) and the same loaded
	// state (Load).
	Workers int
	// Shards is the shard count of the taxonomy store Load assembles
	// into; 0 selects taxonomy.DefaultShards. Ignored by Save.
	Shards int
}

// workerCount resolves Options.Workers like the build pipeline does.
func workerCount(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}
