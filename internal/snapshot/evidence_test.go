package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"

	"cnprobase/internal/core"
	"cnprobase/internal/synth"
)

// buildResult runs the pipeline so the state carries the full update
// substrate (evidence, kept candidates, statistics).
func buildResult(tb testing.TB, entities int) *core.Result {
	tb.Helper()
	cfg := synth.DefaultConfig()
	cfg.Entities = entities
	w, err := synth.Generate(cfg)
	if err != nil {
		tb.Fatalf("synth.Generate: %v", err)
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	return res
}

// TestEvidenceRoundTrip pins the version-2 evidence section: a state
// saved with evidence loads with the kept candidate set, support
// counts and corpus statistics intact.
func TestEvidenceRoundTrip(t *testing.T) {
	res := buildResult(t, 300)
	st := &State{
		Taxonomy: res.Taxonomy,
		Mentions: res.Mentions,
		Meta:     Meta{Pages: res.Report.Pages, Stats: res.Report.Stats},
		Evidence: res.Evidence,
		Kept:     res.Kept,
		Stats:    res.Stats,
	}
	loaded, err := Load(bytes.NewReader(saveBytes(t, st, Options{Workers: 1})), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Evidence == nil || loaded.Stats == nil {
		t.Fatal("evidence section did not round-trip")
	}
	if len(loaded.Kept) != len(res.Kept) {
		t.Fatalf("kept = %d candidates, want %d", len(loaded.Kept), len(res.Kept))
	}
	for i, c := range res.Kept {
		if loaded.Kept[i] != c {
			t.Fatalf("kept[%d] = %+v, want %+v", i, loaded.Kept[i], c)
		}
	}
	// Support and statistics fold back exactly.
	for _, e := range res.Evidence.Support.Entries() {
		if got := loaded.Evidence.Support.S1(e.Word); got != res.Evidence.Support.S1(e.Word) {
			t.Fatalf("S1(%q) = %v after load, want %v", e.Word, got, res.Evidence.Support.S1(e.Word))
		}
	}
	if got, want := loaded.Stats.Tokens(), res.Stats.Tokens(); got != want {
		t.Fatalf("stats tokens = %d, want %d", got, want)
	}
	if got, want := loaded.Stats.VocabSize(), res.Stats.VocabSize(); got != want {
		t.Fatalf("stats vocab = %d, want %d", got, want)
	}
}

// TestSaveWithoutEvidence: states without the update substrate (e.g.
// hand-assembled or re-saved from a legacy file) save with an
// absent-evidence flag and load back with nil evidence.
func TestSaveWithoutEvidence(t *testing.T) {
	st := handState(t)
	loaded, err := Load(bytes.NewReader(saveBytes(t, st, Options{Workers: 1})), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Evidence != nil || loaded.Kept != nil || loaded.Stats != nil {
		t.Fatal("evidence materialized from an evidence-less snapshot")
	}
	requireEqualState(t, st, loaded)
}

// stripToV1 rewrites a version-2 snapshot into the version-1 layout:
// drop the evidence section and patch the header version. Section
// framing makes this a linear walk.
func stripToV1(tb testing.TB, data []byte) []byte {
	tb.Helper()
	out := append([]byte(nil), data[:16]...)
	binary.LittleEndian.PutUint32(out[8:12], 1)
	off := 16
	for off+13 <= len(data)-8 {
		kind := data[off]
		length := binary.LittleEndian.Uint64(data[off+5 : off+13])
		end := off + 13 + int(length) + 4
		if end > len(data) {
			tb.Fatalf("malformed section at %d", off)
		}
		if kind != sectionEvidence {
			out = append(out, data[off:end]...)
		}
		off = end
	}
	return append(out, data[off:]...) // end marker
}

// TestLoadsLegacyV1 pins backward compatibility: a version-1 file
// (no evidence section) still loads — queries work, evidence is nil —
// through both Load and LoadView.
func TestLoadsLegacyV1(t *testing.T) {
	st := handState(t)
	v1 := stripToV1(t, saveLegacyBytes(t, st, Options{Workers: 1}))
	loaded, err := Load(bytes.NewReader(v1), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Load(v1): %v", err)
	}
	if loaded.Evidence != nil {
		t.Error("legacy snapshot produced evidence")
	}
	requireEqualState(t, st, loaded)
	view, _, err := LoadView(bytes.NewReader(v1), Options{Workers: 1})
	if err != nil {
		t.Fatalf("LoadView(v1): %v", err)
	}
	if a, b := loaded.Taxonomy.ComputeStats(), view.Stats(); a != b {
		t.Fatalf("store and view stats differ on v1: %+v != %+v", a, b)
	}
}
