//go:build !race

package snapshot

// raceEnabled reports whether the race detector is on.
const raceEnabled = false
