//go:build race

package snapshot

// raceEnabled reports whether the race detector is on; allocation
// pinning tests skip under it because instrumentation skews counts.
const raceEnabled = true
