//go:build !unix

package snapshot

import "os"

// mmapFile on platforms without syscall.Mmap reads the file into heap
// memory: OpenMapped still works — same validation, same aliasing view
// — just without the page-cache sharing of a real mapping.
func mmapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
