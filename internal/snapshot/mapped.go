package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"

	"cnprobase/internal/serving"
)

// ErrNotMappable reports that a snapshot file predates the mappable
// version-3 layout. Load and LoadView still read such files; callers
// (the facade, cnpserver) use this sentinel to fall back to the
// streaming decode.
var ErrNotMappable = errors.New("snapshot: file predates the mappable v3 layout")

// OpenMapped maps a version-3 snapshot file read-only and builds a
// serving view directly over the mapping: header and CRCs are
// verified, the image's structure is validated, and the view's arrays
// alias the mapped bytes (see serving.OpenImage). Startup cost is
// independent of the string content — no parse, no hashing, no string
// copies — and every replica on the box shares one page-cache copy of
// the file.
//
// The mapping lives as long as the returned view: a finalizer unmaps
// it when the view becomes unreachable, so after an api.Server.SwapView
// the old file is released only once in-flight queries have drained
// and the garbage collector has proven no reader remains.
//
// Version-1/2 files yield ErrNotMappable (wrapped); use LoadView.
func OpenMapped(path string) (*serving.View, Meta, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("snapshot: map %s: %w", path, err)
	}
	v, meta, err := openMappedBytes(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, Meta{}, err
	}
	if unmap != nil {
		// Unmap only when the view is unreachable — after a hot swap
		// the old view may still be answering in-flight queries, so the
		// munmap rides garbage collection, not the swap itself.
		runtime.SetFinalizer(v, func(*serving.View) { unmap() })
	}
	return v, meta, nil
}

// openMappedBytes is OpenMapped over an in-memory buffer — the
// fuzz-target entry, and the shared tail of the file path. It accepts
// exactly the version-3 files Load accepts (the fuzz target pins the
// agreement), except that bytes after the end marker are ignored, as
// the streaming decoders never read past it either.
func openMappedBytes(data []byte) (*serving.View, Meta, error) {
	if len(data) < 16 {
		return nil, Meta{}, fmt.Errorf("snapshot: read header: file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, Meta{}, fmt.Errorf("snapshot: bad magic %q", data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	switch version {
	case versionLegacy, versionV2:
		return nil, Meta{}, fmt.Errorf("snapshot: version %d: %w", version, ErrNotMappable)
	case Version:
	default:
		return nil, Meta{}, fmt.Errorf("snapshot: unsupported format version %d (supported: %d, %d, %d)", version, versionLegacy, versionV2, Version)
	}
	stripes := binary.LittleEndian.Uint32(data[12:16])
	if stripes == 0 || stripes > maxStripes {
		return nil, Meta{}, fmt.Errorf("snapshot: implausible stripe count %d", stripes)
	}
	// Version 3 has no stripes; the field is pinned to the constant so
	// every header byte stays covered by validation.
	if stripes != Stripes {
		return nil, Meta{}, fmt.Errorf("snapshot: version %d stripe field %d, want %d", version, stripes, Stripes)
	}

	metaPayload, off, err := sliceSection(data, 16, sectionMeta, 0)
	if err != nil {
		return nil, Meta{}, err
	}
	var meta Meta
	if err := json.Unmarshal(metaPayload, &meta); err != nil {
		return nil, Meta{}, fmt.Errorf("snapshot: decode meta: %w", err)
	}
	imageBase := uint64(off + 13)
	imagePayload, off, err := sliceSection(data, off, sectionView, 0)
	if err != nil {
		return nil, Meta{}, err
	}
	evidencePayload, off, err := sliceSection(data, off, sectionEvidence, 0)
	if err != nil {
		return nil, Meta{}, err
	}
	if err := validateEvidence(evidencePayload); err != nil {
		return nil, Meta{}, fmt.Errorf("snapshot: evidence section: %w", err)
	}
	if len(data)-off < 8 {
		return nil, Meta{}, fmt.Errorf("snapshot: read end marker: truncated at offset %d", off)
	}
	if string(data[off:off+8]) != EndMagic {
		return nil, Meta{}, fmt.Errorf("snapshot: bad end marker %q", data[off:off+8])
	}
	view, err := serving.OpenImage(imagePayload, imageBase)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("snapshot: view image: %w", err)
	}
	return view, meta, nil
}

// sliceSection frames one section out of a mapped buffer, enforcing
// the expected kind and index and verifying the payload CRC — the
// in-memory counterpart of readSection. Returns the payload (aliasing
// data) and the offset just past the section.
func sliceSection(data []byte, off int, wantKind byte, wantIndex uint32) ([]byte, int, error) {
	if len(data)-off < 13 {
		return nil, 0, fmt.Errorf("snapshot: read section header: truncated at offset %d", off)
	}
	kind, index := data[off], binary.LittleEndian.Uint32(data[off+1:off+5])
	if kind != wantKind || index != wantIndex {
		return nil, 0, fmt.Errorf("snapshot: unexpected section (kind %d, index %d), want (kind %d, index %d)",
			kind, index, wantKind, wantIndex)
	}
	length := binary.LittleEndian.Uint64(data[off+5 : off+13])
	off += 13
	if length > uint64(len(data)-off) {
		return nil, 0, fmt.Errorf("snapshot: section (kind %d, index %d) length %d exceeds remaining %d bytes",
			wantKind, wantIndex, length, len(data)-off)
	}
	payload := data[off : off+int(length)]
	off += int(length)
	if len(data)-off < 4 {
		return nil, 0, fmt.Errorf("snapshot: read section checksum: truncated at offset %d", off)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[off:off+4]); got != want {
		return nil, 0, fmt.Errorf("snapshot: section (kind %d, index %d) checksum mismatch: %08x != %08x",
			wantKind, wantIndex, got, want)
	}
	return payload, off + 4, nil
}
