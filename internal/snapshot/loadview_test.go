package snapshot

import (
	"bytes"
	"fmt"
	"testing"

	"cnprobase/internal/api"
)

// TestLoadViewServingEquivalence pins the acceptance criterion of the
// build/serve split: the three APIs answer byte-identically whether
// served from the freshly built mutable store, from a snapshot
// restored into the store (Load), or from a snapshot decoded straight
// into the immutable serving view (LoadView) — at any decode worker
// count.
func TestLoadViewServingEquivalence(t *testing.T) {
	fresh := buildState(t, 400, 4, 8)
	data := saveBytes(t, fresh, Options{Workers: 4})

	loaded, err := Load(bytes.NewReader(data), Options{Workers: 4})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			view, meta, err := LoadView(bytes.NewReader(data), Options{Workers: workers})
			if err != nil {
				t.Fatalf("LoadView: %v", err)
			}
			if meta.Pages != fresh.Meta.Pages || meta.Stats != fresh.Meta.Stats {
				t.Fatalf("meta = %+v, want %+v", meta, fresh.Meta)
			}
			if view.Stats() != fresh.Taxonomy.ComputeStats() {
				t.Fatalf("view stats = %+v, want %+v", view.Stats(), fresh.Taxonomy.ComputeStats())
			}
			if view.EdgeCount() != fresh.Taxonomy.EdgeCount() {
				t.Fatalf("view edges = %d, want %d", view.EdgeCount(), fresh.Taxonomy.EdgeCount())
			}
			nodes := fresh.Taxonomy.Nodes()
			if len(nodes) > 80 {
				nodes = nodes[:80]
			}
			mentions := append([]string{"不存在的提及"}, nodes...)
			freshBody := apiResponses(t, api.NewServer(fresh.Taxonomy, fresh.Mentions), nodes, mentions)
			storeBody := apiResponses(t, api.NewServer(loaded.Taxonomy, loaded.Mentions), nodes, mentions)
			viewBody := apiResponses(t, api.NewViewServer(view), nodes, mentions)
			if freshBody != storeBody {
				t.Fatal("snapshot-loaded store responses differ from fresh build")
			}
			if freshBody != viewBody {
				t.Fatal("LoadView responses differ from fresh build")
			}
		})
	}
}

// TestLoadViewDetectsCorruption mirrors the store loader's corruption
// battery for the direct-to-view path: every truncation and every
// byte flip must yield an error, never a panic or a silent success.
func TestLoadViewDetectsCorruption(t *testing.T) {
	st := handState(t)
	data := saveBytes(t, st, Options{Workers: 1})
	for n := 0; n < len(data); n++ {
		if _, _, err := LoadView(bytes.NewReader(data[:n]), Options{Workers: 1}); err == nil {
			t.Fatalf("truncation to %d of %d bytes was not detected", n, len(data))
		}
	}
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x40
		if _, _, err := LoadView(bytes.NewReader(mutated), Options{Workers: 1}); err == nil {
			t.Fatalf("flip of byte %d in a %d-byte snapshot was not detected", i, len(data))
		}
	}
}
