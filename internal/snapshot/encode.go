package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"cnprobase/internal/par"
	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// Save writes st as a version-3 snapshot: the store is compiled into
// the canonical serving view and serialized as one mappable image
// section (the layout serving.View.AppendImage documents), framed by
// the build metadata and evidence sections. Saving the same logical
// state always produces the same bytes, no matter the Workers/Shards
// settings of the build or of this call — compilation canonicalizes
// order by construction. Mentions must be valid UTF-8 (JSON ingestion
// guarantees it; a hand-built store with raw invalid bytes is
// rejected with an error).
//
// Save is safe to call while the taxonomy is being queried. Concurrent
// *writers* are tolerated — per-shard locking means the export sees
// each shard atomically — but the snapshot then captures some
// intermediate state between the writes, exactly like Edges does.
func Save(w io.Writer, st *State, opts Options) error {
	if st == nil || st.Taxonomy == nil {
		return fmt.Errorf("snapshot: nil state or taxonomy")
	}
	mentions := st.Mentions
	if mentions == nil {
		mentions = taxonomy.NewMentionIndex()
	}
	metaPayload, err := json.Marshal(st.Meta)
	if err != nil {
		return fmt.Errorf("snapshot: encode meta: %w", err)
	}
	// The image's alignment padding depends on its absolute file
	// offset: header (16) + meta section framing (13 + payload + 4) +
	// the image's own section header (13).
	imageBase := uint64(16 + 13 + len(metaPayload) + 4 + 13)
	imagePayload, err := serving.Compile(st.Taxonomy, mentions).AppendImage(nil, imageBase)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	evidencePayload, err := encodeEvidence(st)
	if err != nil {
		return err
	}

	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], Stripes)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if err := writeSection(bw, sectionMeta, 0, metaPayload); err != nil {
		return err
	}
	if err := writeSection(bw, sectionView, 0, imagePayload); err != nil {
		return err
	}
	if err := writeSection(bw, sectionEvidence, 0, evidencePayload); err != nil {
		return err
	}
	if _, err := bw.WriteString(EndMagic); err != nil {
		return fmt.Errorf("snapshot: write end marker: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: flush: %w", err)
	}
	return nil
}

// SaveLegacy writes st in the striped version-2 layout — the taxonomy
// and mention index exported into Stripes hash partitions, each put
// into canonical (sorted) order and encoded on the worker pool. Kept
// as the compatibility oracle: v2 files exercise the legacy decode
// path in tests, and the startup benchmark uses them as the
// decode-at-open baseline the mapped path is measured against.
func SaveLegacy(w io.Writer, st *State, opts Options) error {
	if st == nil || st.Taxonomy == nil {
		return fmt.Errorf("snapshot: nil state or taxonomy")
	}
	mentions := st.Mentions
	if mentions == nil {
		mentions = taxonomy.NewMentionIndex()
	}
	metaPayload, err := json.Marshal(st.Meta)
	if err != nil {
		return fmt.Errorf("snapshot: encode meta: %w", err)
	}

	// Export first (cheap map walks), then encode the stripes — the
	// sort + varint + CRC work that dominates — in parallel.
	taxParts := st.Taxonomy.ExportPartitions(Stripes)
	menParts := mentions.ExportPartitions(Stripes)
	pool := par.NewPool(workerCount(opts.Workers))
	taxPayloads := par.Concat(par.MapBatches(pool, Stripes, func(lo, hi int) [][]byte {
		out := make([][]byte, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, encodeTaxStripe(taxParts[i]))
		}
		return out
	}))
	menPayloads := par.Concat(par.MapBatches(pool, Stripes, func(lo, hi int) [][]byte {
		out := make([][]byte, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, encodeMentionStripe(menParts[i]))
		}
		return out
	}))

	evidencePayload, err := encodeEvidence(st)
	if err != nil {
		return err
	}

	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], versionV2)
	binary.LittleEndian.PutUint32(hdr[12:16], Stripes)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if err := writeSection(bw, sectionMeta, 0, metaPayload); err != nil {
		return err
	}
	for i, p := range taxPayloads {
		if err := writeSection(bw, sectionTaxonomy, uint32(i), p); err != nil {
			return err
		}
	}
	for i, p := range menPayloads {
		if err := writeSection(bw, sectionMentions, uint32(i), p); err != nil {
			return err
		}
	}
	if err := writeSection(bw, sectionEvidence, 0, evidencePayload); err != nil {
		return err
	}
	if _, err := bw.WriteString(EndMagic); err != nil {
		return fmt.Errorf("snapshot: write end marker: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: flush: %w", err)
	}
	return nil
}

// writeSection frames one payload: kind byte, stripe index, payload
// length, payload, CRC-32 (IEEE) of the payload.
func writeSection(bw *bufio.Writer, kind byte, index uint32, payload []byte) error {
	var hdr [13]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], index)
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(len(payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write section header: %w", err)
	}
	if _, err := bw.Write(payload); err != nil {
		return fmt.Errorf("snapshot: write section payload: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := bw.Write(crc[:]); err != nil {
		return fmt.Errorf("snapshot: write section checksum: %w", err)
	}
	return nil
}

// encodeTaxStripe canonicalizes and encodes one taxonomy partition:
// kinds sorted by name, then edges sorted by (hypo, hyper), each edge
// carrying its full provenance so counts and scores round-trip
// bit-exactly. Negative evidence counts (impossible through the public
// build path) encode as zero.
func encodeTaxStripe(p taxonomy.Partition) []byte {
	sort.Slice(p.Kinds, func(i, j int) bool { return p.Kinds[i].Name < p.Kinds[j].Name })
	sort.Slice(p.Edges, func(i, j int) bool {
		if p.Edges[i].Hypo != p.Edges[j].Hypo {
			return p.Edges[i].Hypo < p.Edges[j].Hypo
		}
		return p.Edges[i].Hyper < p.Edges[j].Hyper
	})
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(p.Kinds)))
	for _, k := range p.Kinds {
		b = appendString(b, k.Name)
		b = append(b, byte(k.Kind))
	}
	b = binary.AppendUvarint(b, uint64(len(p.Edges)))
	for _, e := range p.Edges {
		b = appendString(b, e.Hypo)
		b = appendString(b, e.Hyper)
		b = append(b, byte(e.Sources))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Score))
		count := e.Count
		if count < 0 {
			count = 0
		}
		b = binary.AppendUvarint(b, uint64(count))
	}
	return b
}

// encodeMentionStripe canonicalizes and encodes one mention partition:
// entries sorted by mention, ID lists sorted (ID order is not
// query-visible — Lookup sorts — so canonical order costs nothing).
func encodeMentionStripe(entries []taxonomy.MentionEntry) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Mention < entries[j].Mention })
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		sort.Strings(e.IDs)
		b = appendString(b, e.Mention)
		b = binary.AppendUvarint(b, uint64(len(e.IDs)))
		for _, id := range e.IDs {
			b = appendString(b, id)
		}
	}
	return b
}

// encodeEvidence encodes the version-2 evidence section: a presence
// flag, the kept candidate set, the page-derived evidence (sorted by
// entity ID, attributes sorted by predicate), the NE support counts
// (sorted by word) and the corpus statistics (their canonical JSON
// form). Everything is sorted at encode time, so evidence bytes are as
// deterministic as the graph stripes.
func encodeEvidence(st *State) ([]byte, error) {
	if st.Evidence == nil || st.Stats == nil {
		return []byte{0}, nil
	}
	b := []byte{1}
	b = binary.AppendUvarint(b, uint64(len(st.Kept)))
	for _, c := range st.Kept {
		b = appendString(b, c.Hypo)
		b = appendString(b, c.Hyper)
		b = append(b, byte(c.Source))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Score))
	}
	ents := st.Evidence.ExportEntities()
	b = binary.AppendUvarint(b, uint64(len(ents)))
	for _, e := range ents {
		b = appendString(b, e.ID)
		b = appendString(b, e.Title)
		b = binary.AppendUvarint(b, uint64(len(e.Attrs)))
		preds := make([]string, 0, len(e.Attrs))
		for p := range e.Attrs {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		for _, p := range preds {
			b = appendString(b, p)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Attrs[p]))
		}
	}
	entries := st.Evidence.Support.Entries()
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, s := range entries {
		b = appendString(b, s.Word)
		b = binary.AppendUvarint(b, uint64(s.NE))
		b = binary.AppendUvarint(b, uint64(s.Total))
	}
	var stats bytes.Buffer
	if _, err := st.Stats.WriteTo(&stats); err != nil {
		return nil, fmt.Errorf("snapshot: encode statistics: %w", err)
	}
	b = binary.AppendUvarint(b, uint64(stats.Len()))
	b = append(b, stats.Bytes()...)
	return b, nil
}

// appendString encodes s as uvarint length + raw bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
