package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"unicode/utf8"

	"cnprobase/internal/corpus"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
	"cnprobase/internal/par"
	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
	"cnprobase/internal/verify"
)

// Load reads a snapshot written by Save and reassembles the serving
// state: a fresh opts.Shards-way sharded taxonomy, the mention index
// and the saved metadata. Sections are read (and CRC-verified)
// sequentially from the stream, then decoded and applied to the store
// in parallel over the worker pool — safe because the store's insert
// path is thread-safe and kind/edge restoration order is commutative —
// and the merged query indexes are rebuilt with Finalize, so the
// loaded taxonomy answers every query exactly like the finalized
// original.
//
// Load never panics on malformed input: any truncation, checksum
// mismatch, or structurally bogus value yields an error, and claimed
// lengths are checked against the bytes actually present before
// allocation.
func Load(r io.Reader, opts Options) (*State, error) {
	p, err := readPayloads(r)
	if err != nil {
		return nil, err
	}
	ev, kept, stats, err := decodeEvidence(p.evidence)
	if err != nil {
		return nil, fmt.Errorf("snapshot: evidence section: %w", err)
	}
	tax := taxonomy.NewSharded(opts.Shards)
	mentions := taxonomy.NewMentionIndex()
	pool := par.NewPool(workerCount(opts.Workers))
	if p.version >= Version {
		// Version 3: decode the view image into the same logical
		// kind/edge/mention stream the stripes carried, then restore
		// through the store's verbatim import path.
		content, err := serving.DecodeImage(p.image, p.imageBase)
		if err != nil {
			return nil, fmt.Errorf("snapshot: view image: %w", err)
		}
		for _, k := range content.Kinds {
			tax.ImportKind(k.Name, k.Kind)
		}
		for _, err := range par.MapBatches(pool, len(content.Edges), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := tax.InsertEdge(content.Edges[i]); err != nil {
					return err
				}
			}
			return nil
		}) {
			if err != nil {
				return nil, fmt.Errorf("snapshot: %w", err)
			}
		}
		for range par.MapBatches(pool, len(content.Mentions), func(lo, hi int) struct{} {
			for i := lo; i < hi; i++ {
				for _, id := range content.Mentions[i].IDs {
					mentions.Add(content.Mentions[i].Mention, id)
				}
			}
			return struct{}{}
		}) {
		}
	} else {
		for _, err := range par.MapBatches(pool, len(p.tax), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				err := decodeTaxStripe(p.tax[i], tax.ImportKind, tax.InsertEdge)
				if err != nil {
					return fmt.Errorf("snapshot: taxonomy stripe %d: %w", i, err)
				}
				if err := decodeMentionStripe(p.men[i], mentions.Add); err != nil {
					return fmt.Errorf("snapshot: mention stripe %d: %w", i, err)
				}
			}
			return nil
		}) {
			if err != nil {
				return nil, err
			}
		}
	}
	tax.Finalize()
	return &State{Taxonomy: tax, Mentions: mentions, Meta: p.meta, Evidence: ev, Kept: kept, Stats: stats}, nil
}

// LoadView reads a snapshot and compiles it straight into an immutable
// serving.View, never materializing the mutable sharded store: stripes
// decode in parallel into raw parts which a serving.Builder freezes
// once. The resulting View answers every query exactly like a store
// restored with Load (pinned by the serving-equivalence tests), and
// opts.Shards is meaningless here (there is no store to shard).
// Malformed input yields an error, never a panic, with the same
// validation Load applies.
func LoadView(r io.Reader, opts Options) (*serving.View, Meta, error) {
	p, err := readPayloads(r)
	if err != nil {
		return nil, Meta{}, err
	}
	// The serving view has no update path, so the evidence section is
	// validated (it was CRC-checked with the rest) but not
	// materialized.
	if err := validateEvidence(p.evidence); err != nil {
		return nil, Meta{}, fmt.Errorf("snapshot: evidence section: %w", err)
	}
	if p.version >= Version {
		// Version 3: rebuild a heap view from the image content. (The
		// zero-copy path over the same image is OpenMapped.)
		content, err := serving.DecodeImage(p.image, p.imageBase)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("snapshot: view image: %w", err)
		}
		b := serving.NewBuilder()
		for _, k := range content.Kinds {
			b.ImportKind(k.Name, k.Kind)
		}
		for _, e := range content.Edges {
			if err := b.InsertEdge(e); err != nil {
				return nil, Meta{}, fmt.Errorf("snapshot: %w", err)
			}
		}
		for _, m := range content.Mentions {
			b.AddMentionEntry(m)
		}
		return b.Build(), p.meta, nil
	}
	type parts struct {
		kinds    []taxonomy.KindEntry
		edges    []taxonomy.Edge
		mentions []taxonomy.MentionEntry
	}
	stripes := make([]parts, len(p.tax))
	pool := par.NewPool(workerCount(opts.Workers))
	for _, err := range par.MapBatches(pool, len(p.tax), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sp := &stripes[i]
			err := decodeTaxStripe(p.tax[i],
				func(name string, k taxonomy.NodeKind) {
					sp.kinds = append(sp.kinds, taxonomy.KindEntry{Name: name, Kind: k})
				},
				func(e taxonomy.Edge) error { // structural validation happens in Builder.InsertEdge
					sp.edges = append(sp.edges, e)
					return nil
				})
			if err != nil {
				return fmt.Errorf("snapshot: taxonomy stripe %d: %w", i, err)
			}
			err = decodeMentionStripe(p.men[i], func(mention, id string) {
				n := len(sp.mentions)
				if n > 0 && sp.mentions[n-1].Mention == mention {
					sp.mentions[n-1].IDs = append(sp.mentions[n-1].IDs, id)
					return
				}
				sp.mentions = append(sp.mentions, taxonomy.MentionEntry{Mention: mention, IDs: []string{id}})
			})
			if err != nil {
				return fmt.Errorf("snapshot: mention stripe %d: %w", i, err)
			}
		}
		return nil
	}) {
		if err != nil {
			return nil, Meta{}, err
		}
	}
	b := serving.NewBuilder()
	for i := range stripes {
		for _, k := range stripes[i].kinds {
			b.ImportKind(k.Name, k.Kind)
		}
		for _, e := range stripes[i].edges {
			if err := b.InsertEdge(e); err != nil {
				return nil, Meta{}, fmt.Errorf("snapshot: %w", err)
			}
		}
		for _, m := range stripes[i].mentions {
			b.AddMentionEntry(m)
		}
	}
	return b.Build(), p.meta, nil
}

// payloads is the CRC-verified content of one snapshot stream. Exactly
// one of {image, tax+men} is set: the view image for version-3 files
// (with imageBase, its absolute file offset — the image's alignment
// padding is relative to it), the stripe payload lists for versions 1
// and 2. evidence is nil for version-1 files.
type payloads struct {
	version   uint32
	meta      Meta
	tax, men  [][]byte
	image     []byte
	imageBase uint64
	evidence  []byte
}

// readPayloads reads and CRC-verifies the framed byte stream shared by
// Load and LoadView: header, meta section, then either the view image
// (version 3) or one payload per taxonomy and mention stripe, the
// evidence section (versions ≥ 2), and the end marker.
func readPayloads(r io.Reader) (*payloads, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", hdr[:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version != Version && version != versionV2 && version != versionLegacy {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (supported: %d, %d, %d)", version, versionLegacy, versionV2, Version)
	}
	stripes := binary.LittleEndian.Uint32(hdr[12:16])
	if stripes == 0 || stripes > maxStripes {
		return nil, fmt.Errorf("snapshot: implausible stripe count %d", stripes)
	}
	// Version 3 has no stripes; the field is pinned to the constant so
	// every header byte stays covered by validation.
	if version >= Version && stripes != Stripes {
		return nil, fmt.Errorf("snapshot: version %d stripe field %d, want %d", version, stripes, Stripes)
	}

	p := &payloads{version: version}
	metaPayload, err := readSection(br, sectionMeta, 0)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(metaPayload, &p.meta); err != nil {
		return nil, fmt.Errorf("snapshot: decode meta: %w", err)
	}
	if version >= Version {
		// Header + meta framing + the image's own section header.
		p.imageBase = uint64(16 + 13 + len(metaPayload) + 4 + 13)
		if p.image, err = readSection(br, sectionView, 0); err != nil {
			return nil, err
		}
	} else {
		p.tax = make([][]byte, stripes)
		for i := range p.tax {
			if p.tax[i], err = readSection(br, sectionTaxonomy, uint32(i)); err != nil {
				return nil, err
			}
		}
		p.men = make([][]byte, stripes)
		for i := range p.men {
			if p.men[i], err = readSection(br, sectionMentions, uint32(i)); err != nil {
				return nil, err
			}
		}
	}
	if version >= versionV2 {
		if p.evidence, err = readSection(br, sectionEvidence, 0); err != nil {
			return nil, err
		}
	}
	var end [8]byte
	if _, err := io.ReadFull(br, end[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read end marker: %w", err)
	}
	if string(end[:]) != EndMagic {
		return nil, fmt.Errorf("snapshot: bad end marker %q", end[:])
	}
	return p, nil
}

// readSection reads one framed section, enforcing the expected kind
// and stripe index and verifying the payload CRC. The payload is read
// in bounded chunks, so a corrupted length field costs at most one
// chunk of allocation before the truncated read surfaces — a
// fabricated multi-exabyte claim cannot OOM the loader.
func readSection(br *bufio.Reader, wantKind byte, wantIndex uint32) ([]byte, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read section header: %w", err)
	}
	kind, index := hdr[0], binary.LittleEndian.Uint32(hdr[1:5])
	if kind != wantKind || index != wantIndex {
		return nil, fmt.Errorf("snapshot: unexpected section (kind %d, index %d), want (kind %d, index %d)",
			kind, index, wantKind, wantIndex)
	}
	payload, err := readN(br, binary.LittleEndian.Uint64(hdr[5:13]))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read section (kind %d, index %d) payload: %w", kind, index, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read section checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("snapshot: section (kind %d, index %d) checksum mismatch: %08x != %08x",
			kind, index, got, want)
	}
	return payload, nil
}

// readN reads exactly n bytes, growing the buffer one bounded chunk at
// a time so allocation tracks bytes actually present in the stream
// rather than the claimed length.
func readN(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	if n > math.MaxInt64 {
		return nil, fmt.Errorf("snapshot: implausible section length %d", n)
	}
	var buf []byte
	for remaining := n; remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
		remaining -= step
	}
	return buf, nil
}

// stripeReader is a bounds-checked cursor over one section payload.
// Every accessor returns an error instead of panicking when the
// payload runs short.
type stripeReader struct {
	b   []byte
	off int
}

func (r *stripeReader) remaining() int { return len(r.b) - r.off }

func (r *stripeReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or overlong varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *stripeReader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("truncated payload at offset %d", r.off)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *stripeReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *stripeReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes at offset %d", n, r.remaining(), r.off)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// count validates a claimed element count against the minimum encoded
// size of one element, so a bogus count can never drive a long loop
// (or a large preallocation) past the bytes actually present.
func (r *stripeReader) count(minElemBytes int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()/minElemBytes) {
		return 0, fmt.Errorf("element count %d exceeds remaining %d bytes at offset %d", n, r.remaining(), r.off)
	}
	return int(n), nil
}

// Minimum encoded sizes used to validate counts: a kind entry is at
// least an empty-string name (1 byte) + kind byte; an edge is two
// 1-byte empty strings + sources byte + 8 score bytes + 1 count byte;
// a mention entry is an empty string + 1-byte ID count; an ID is one
// length byte.
const (
	minKindBytes    = 2
	minEdgeBytes    = 12
	minMentionBytes = 2
	minIDBytes      = 1
)

// decodeTaxStripe parses one taxonomy section, feeding each restored
// kind and edge to the given callbacks — Load passes the store's
// verbatim import accessors, LoadView collects raw parts for the
// serving Builder. Structural garbage that survives the CRC (possible
// only for deliberately crafted input) is caught by the cursor's
// bounds checks and the consumer's own validation (empty nodes,
// self-loops).
func decodeTaxStripe(payload []byte, kind func(string, taxonomy.NodeKind), edge func(taxonomy.Edge) error) error {
	r := &stripeReader{b: payload}
	nKinds, err := r.count(minKindBytes)
	if err != nil {
		return err
	}
	for i := 0; i < nKinds; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		kb, err := r.byte()
		if err != nil {
			return err
		}
		if kb != byte(taxonomy.KindEntity) && kb != byte(taxonomy.KindConcept) {
			return fmt.Errorf("invalid node kind %d for %q", kb, name)
		}
		kind(name, taxonomy.NodeKind(kb))
	}
	nEdges, err := r.count(minEdgeBytes)
	if err != nil {
		return err
	}
	for i := 0; i < nEdges; i++ {
		var e taxonomy.Edge
		if e.Hypo, err = r.str(); err != nil {
			return err
		}
		if e.Hyper, err = r.str(); err != nil {
			return err
		}
		src, err := r.byte()
		if err != nil {
			return err
		}
		e.Sources = taxonomy.Source(src)
		bits, err := r.u64()
		if err != nil {
			return err
		}
		e.Score = math.Float64frombits(bits)
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > math.MaxInt32 {
			return fmt.Errorf("implausible evidence count %d on isA(%q, %q)", count, e.Hypo, e.Hyper)
		}
		e.Count = int(count)
		if err := edge(e); err != nil {
			return err
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes after last edge", r.remaining())
	}
	return nil
}

// Minimum encoded sizes for evidence-section count validation: a kept
// candidate is two 1-byte empty strings + source byte + 8 score bytes;
// an entity is two 1-byte strings + attr count byte; an attribute is a
// 1-byte predicate + 8 value bytes; a support entry is a 1-byte word +
// two count bytes.
const (
	minKeptBytes    = 11
	minEntityBytes  = 3
	minAttrBytes    = 9
	minSupportBytes = 3
)

// decodeEvidence parses the version-2 evidence section and rebuilds
// the persistent update substrate: the kept candidate set, a
// verify.Evidence re-derived from it (entity evidence imported, edge
// evidence re-counted through AddCandidates, caches marked cold so the
// first Update recomputes decisions), and the corpus statistics. A nil
// or flag-0 payload (legacy file, or saved without evidence) yields
// all-nil — the Result then serves queries but refuses Update.
func decodeEvidence(payload []byte) (*verify.Evidence, []extract.Candidate, *corpus.Stats, error) {
	return parseEvidence(payload, true)
}

// validateEvidence walks the section with the exact same checks but
// materializes nothing — the view-only serving path must accept and
// reject precisely the inputs Load does (the fuzz target pins the
// agreement) without paying for the update substrate's index maps.
func validateEvidence(payload []byte) error {
	_, _, _, err := parseEvidence(payload, false)
	return err
}

func parseEvidence(payload []byte, materialize bool) (*verify.Evidence, []extract.Candidate, *corpus.Stats, error) {
	// A zero-length payload means "no evidence" like a legacy file's
	// nil: the streaming decoder yields nil for it, the mapped path an
	// empty slice — both must land here.
	if len(payload) == 0 {
		return nil, nil, nil, nil
	}
	r := &stripeReader{b: payload}
	flag, err := r.byte()
	if err != nil {
		return nil, nil, nil, err
	}
	if flag == 0 {
		if r.remaining() != 0 {
			return nil, nil, nil, fmt.Errorf("%d trailing bytes after absent-evidence flag", r.remaining())
		}
		return nil, nil, nil, nil
	}
	if flag != 1 {
		return nil, nil, nil, fmt.Errorf("invalid evidence flag %d", flag)
	}
	nKept, err := r.count(minKeptBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	var kept []extract.Candidate
	if materialize {
		kept = make([]extract.Candidate, 0, nKept)
	}
	for i := 0; i < nKept; i++ {
		var c extract.Candidate
		if c.Hypo, err = r.str(); err != nil {
			return nil, nil, nil, err
		}
		if c.Hyper, err = r.str(); err != nil {
			return nil, nil, nil, err
		}
		if c.Hypo == "" || c.Hyper == "" {
			return nil, nil, nil, fmt.Errorf("empty node in kept candidate %d", i)
		}
		src, err := r.byte()
		if err != nil {
			return nil, nil, nil, err
		}
		c.Source = taxonomy.Source(src)
		bits, err := r.u64()
		if err != nil {
			return nil, nil, nil, err
		}
		c.Score = math.Float64frombits(bits)
		if materialize {
			kept = append(kept, c)
		}
	}
	var ev *verify.Evidence
	if materialize {
		ev = verify.NewEvidence(ner.NewSupport(), ner.New())
	}
	nEnts, err := r.count(minEntityBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < nEnts; i++ {
		id, err := r.str()
		if err != nil {
			return nil, nil, nil, err
		}
		title, err := r.str()
		if err != nil {
			return nil, nil, nil, err
		}
		if id == "" || title == "" {
			return nil, nil, nil, fmt.Errorf("empty entity in evidence entry %d", i)
		}
		nAttrs, err := r.count(minAttrBytes)
		if err != nil {
			return nil, nil, nil, err
		}
		var attrs map[string]float64
		if materialize && nAttrs > 0 {
			attrs = make(map[string]float64, nAttrs)
		}
		for j := 0; j < nAttrs; j++ {
			pred, err := r.str()
			if err != nil {
				return nil, nil, nil, err
			}
			bits, err := r.u64()
			if err != nil {
				return nil, nil, nil, err
			}
			if materialize {
				attrs[pred] = math.Float64frombits(bits)
			}
		}
		if materialize {
			ev.ImportEntity(id, title, attrs)
		}
	}
	nSup, err := r.count(minSupportBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < nSup; i++ {
		word, err := r.str()
		if err != nil {
			return nil, nil, nil, err
		}
		ne, err := r.uvarint()
		if err != nil {
			return nil, nil, nil, err
		}
		total, err := r.uvarint()
		if err != nil {
			return nil, nil, nil, err
		}
		if ne > math.MaxInt32 || total > math.MaxInt32 {
			return nil, nil, nil, fmt.Errorf("implausible support counts (%d, %d) for %q", ne, total, word)
		}
		if materialize {
			ev.Support.Import(word, int(ne), int(total))
		}
	}
	statsLen, err := r.uvarint()
	if err != nil {
		return nil, nil, nil, err
	}
	if statsLen > uint64(r.remaining()) {
		return nil, nil, nil, fmt.Errorf("statistics length %d exceeds remaining %d bytes", statsLen, r.remaining())
	}
	// The statistics blob must parse in both modes: Load rejects a
	// shape-invalid blob, and the view path has to agree.
	stats, err := corpus.ReadStats(bytes.NewReader(r.b[r.off : r.off+int(statsLen)]))
	if err != nil {
		return nil, nil, nil, err
	}
	r.off += int(statsLen)
	if r.remaining() != 0 {
		return nil, nil, nil, fmt.Errorf("%d trailing bytes after statistics", r.remaining())
	}
	if !materialize {
		return nil, nil, nil, nil
	}
	ev.AddCandidates(kept)
	ev.MarkAllDirty()
	return ev, kept, stats, nil
}

// decodeMentionStripe parses one mention section, feeding each
// (mention, entity ID) pair to add — MentionIndex.Add for Load, a
// parts collector for LoadView. IDs of one mention arrive
// consecutively.
func decodeMentionStripe(payload []byte, add func(mention, id string)) error {
	r := &stripeReader{b: payload}
	nMentions, err := r.count(minMentionBytes)
	if err != nil {
		return err
	}
	for i := 0; i < nMentions; i++ {
		mention, err := r.str()
		if err != nil {
			return err
		}
		// Valid snapshots only contain mentions the index would store
		// verbatim (Add trims whitespace at insert time), so anything
		// blank here is corruption — reject it like the taxonomy
		// stripe rejects empty nodes, rather than letting Add drop it
		// silently.
		if strings.TrimSpace(mention) == "" {
			return fmt.Errorf("blank mention in entry %d", i)
		}
		// JSON ingestion cannot produce invalid UTF-8, and the mappable
		// v3 image requires UTF-8 mentions — rejecting it here keeps
		// every loadable snapshot re-saveable in the current format.
		if !utf8.ValidString(mention) {
			return fmt.Errorf("mention in entry %d is not valid UTF-8", i)
		}
		nIDs, err := r.count(minIDBytes)
		if err != nil {
			return err
		}
		for j := 0; j < nIDs; j++ {
			id, err := r.str()
			if err != nil {
				return err
			}
			if id == "" {
				return fmt.Errorf("empty entity ID under mention %q", mention)
			}
			add(mention, id)
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes after last mention", r.remaining())
	}
	return nil
}
