package snapshot

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"cnprobase/internal/api"
	"cnprobase/internal/taxonomy"
)

// TestConcurrentSaveAndQueries drives the serving scenario the
// snapshot exists for, under the race detector: API queries
// (men2ent/getConcept/getEntity through the real HTTP handlers) keep
// hammering the taxonomy while snapshots of it are being written — and
// while a background writer keeps mutating it, the never-ending
// extraction mode. Every snapshot taken mid-write must still load
// cleanly: per-shard locking means a torn view can only ever be a
// valid intermediate state, never a corrupt file.
func TestConcurrentSaveAndQueries(t *testing.T) {
	st := handState(t)
	srv := api.NewServer(st.Taxonomy, st.Mentions)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const (
		queryWorkers   = 4
		saveWorkers    = 2
		queriesPerGo   = 60
		savesPerWorker = 8
	)
	nodes := st.Taxonomy.Nodes()

	var wg sync.WaitGroup
	errc := make(chan error, queryWorkers+saveWorkers+1)

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesPerGo; i++ {
				n := nodes[(w*queriesPerGo+i)%len(nodes)]
				for _, path := range []string{
					"/api/men2ent?mention=" + n,
					"/api/getConcept?ranked=1&entity=" + n,
					"/api/getEntity?limit=5&concept=" + n,
				} {
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						errc <- fmt.Errorf("GET %s: %w", path, err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errc <- fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
				}
			}
		}(w)
	}

	for w := 0; w < saveWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < savesPerWorker; i++ {
				var buf bytes.Buffer
				if err := Save(&buf, st, Options{Workers: 2}); err != nil {
					errc <- fmt.Errorf("save %d/%d: %w", w, i, err)
					return
				}
				if _, err := Load(bytes.NewReader(buf.Bytes()), Options{Workers: 2}); err != nil {
					errc <- fmt.Errorf("load of mid-write snapshot %d/%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	// One writer extends the graph and the mention index throughout,
	// so saves and queries race against live mutation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			id := fmt.Sprintf("新实体%03d（更新）", i)
			st.Taxonomy.MarkEntity(id)
			if err := st.Taxonomy.AddIsA(id, fmt.Sprintf("概念%d", i%7), taxonomy.SourceTag, 1); err != nil {
				errc <- fmt.Errorf("AddIsA: %w", err)
				return
			}
			st.Mentions.Add(fmt.Sprintf("新实体%03d", i), id)
			if i%50 == 0 {
				st.Taxonomy.Finalize()
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
