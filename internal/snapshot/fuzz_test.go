package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecodeSnapshot throws arbitrary bytes at the loader. The
// invariants: Load never panics, never allocates past the input it
// actually has (the seeds include a section claiming multiple exabytes
// to pin the chunked-read guard), and any input it *accepts* is
// internally consistent — re-saving the loaded state and loading that
// again reproduces the same graph.
//
// CI runs this as a short smoke (-fuzztime=10s); run it longer locally
// with:
//
//	go test ./internal/snapshot -run='^$' -fuzz=FuzzDecodeSnapshot
func FuzzDecodeSnapshot(f *testing.F) {
	valid := saveBytes(f, handState(f), Options{Workers: 1})
	f.Add(valid)
	f.Add(saveLegacyBytes(f, handState(f), Options{Workers: 1})) // striped v2 layout
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:16])                // header only
	f.Add(valid[:len(valid)/2])      // mid-section truncation
	f.Add(valid[:len(valid)-1])      // missing last end-marker byte
	f.Add(bytes.Repeat(valid, 2))    // trailing garbage after a full snapshot
	f.Add([]byte("CNPBSNP1garbage")) // magic followed by junk

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	// A structurally valid header whose first section claims an
	// exabyte-scale payload: the loader must fail on the missing bytes
	// long before it has allocated anything of that order.
	huge := append([]byte(nil), valid[:16]...)
	huge = append(huge, sectionMeta, 0, 0, 0, 0)
	huge = binary.LittleEndian.AppendUint64(huge, 1<<60)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Load(bytes.NewReader(data), Options{Workers: 1})
		view, _, viewErr := LoadView(bytes.NewReader(data), Options{Workers: 1})
		if (err == nil) != (viewErr == nil) {
			t.Fatalf("Load and LoadView disagree: store err=%v, view err=%v", err, viewErr)
		}
		mapped, _, mappedErr := openMappedBytes(data)
		if err != nil {
			// The mapped opener must reject everything the streaming
			// decoders reject: a crafted file must never serve mapped
			// while being refused (or read differently) by Load.
			if mappedErr == nil {
				t.Fatalf("Load rejected (%v) but openMappedBytes accepted", err)
			}
			return // rejected: that is the expected path for noise
		}
		// Load accepted. The mapped opener accepts the same v3 files and
		// punts pre-v3 layouts to the streaming path via ErrNotMappable.
		if mappedErr != nil {
			if !errors.Is(mappedErr, ErrNotMappable) {
				t.Fatalf("Load accepted but openMappedBytes failed: %v", mappedErr)
			}
		} else if a, b := view.Stats(), mapped.Stats(); a != b {
			t.Fatalf("decoded and mapped view stats differ: %+v != %+v", a, b)
		}
		// Both loaders accepted: they must describe the same graph.
		if a, b := st.Taxonomy.ComputeStats(), view.Stats(); a != b {
			t.Fatalf("store and view stats differ: %+v != %+v", a, b)
		}
		// Accepted input must round-trip: the loaded state re-saves,
		// reloads, and describes the same graph.
		resaved := saveBytes(t, st, Options{Workers: 1})
		again, err := Load(bytes.NewReader(resaved), Options{Workers: 1})
		if err != nil {
			t.Fatalf("re-loading a re-saved accepted snapshot failed: %v", err)
		}
		if a, b := st.Taxonomy.EdgeCount(), again.Taxonomy.EdgeCount(); a != b {
			t.Fatalf("edge count changed across re-save: %d != %d", a, b)
		}
		if a, b := st.Taxonomy.ComputeStats(), again.Taxonomy.ComputeStats(); a != b {
			t.Fatalf("stats changed across re-save: %+v != %+v", a, b)
		}
		if a, b := st.Mentions.Size(), again.Mentions.Size(); a != b {
			t.Fatalf("mention count changed across re-save: %d != %d", a, b)
		}
	})
}
