package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"cnprobase/internal/api"
	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// writeTempSnapshot drops raw snapshot bytes into a fresh temp file
// and returns its path.
func writeTempSnapshot(tb testing.TB, data []byte) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "snap.cnp")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		tb.Fatalf("write snapshot: %v", err)
	}
	return path
}

func openMapped(tb testing.TB, path string) *serving.View {
	tb.Helper()
	v, _, err := OpenMapped(path)
	if err != nil {
		tb.Fatalf("OpenMapped: %v", err)
	}
	return v
}

// TestOpenMappedServingEquivalence pins the tentpole acceptance
// criterion: the memory-mapped view answers every HTTP endpoint —
// men2ent, getConcept, getEntity, conceptualize, qa — byte-identically
// to both the freshly built state and the legacy streaming decode of
// the same state.
func TestOpenMappedServingEquivalence(t *testing.T) {
	fresh := buildState(t, 400, 4, 8)
	legacy := saveLegacyBytes(t, fresh, Options{Workers: 4})
	v3 := saveBytes(t, fresh, Options{Workers: 4})

	decoded, _, err := LoadView(bytes.NewReader(legacy), Options{Workers: 4})
	if err != nil {
		t.Fatalf("LoadView(v2): %v", err)
	}
	mapped := openMapped(t, writeTempSnapshot(t, v3))

	nodes := fresh.Taxonomy.Nodes()
	if len(nodes) > 80 {
		nodes = nodes[:80]
	}
	mentions := append([]string(nil), nodes...)
	freshBody := apiResponses(t, api.NewServer(fresh.Taxonomy, fresh.Mentions), nodes, mentions)
	decodedBody := apiResponses(t, api.NewViewServer(decoded), nodes, mentions)
	mappedBody := apiResponses(t, api.NewViewServer(mapped), nodes, mentions)
	if freshBody != decodedBody {
		t.Fatal("v2-decoded server responses differ from freshly built server responses")
	}
	if freshBody != mappedBody {
		t.Fatal("mapped server responses differ from freshly built server responses")
	}
}

// randomState assembles a seeded random serving state: entities with
// shared-prefix mentions (stressing the mapped path's binary-search
// longest-match), ambiguous mentions, reinforced edges and a small
// concept hierarchy.
func randomState(tb testing.TB, seed int64) *State {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	tax := taxonomy.New()
	mentions := taxonomy.NewMentionIndex()
	kinds := []string{"人物", "地点", "作品"}
	n := 30 + rng.Intn(50)
	for i := 0; i < n; i++ {
		title := fmt.Sprintf("实体%c%02d", 'A'+rune(rng.Intn(4)), i)
		id := fmt.Sprintf("%s（%s）", title, kinds[rng.Intn(len(kinds))])
		tax.MarkEntity(id)
		for c, nc := 0, 1+rng.Intn(3); c < nc; c++ {
			if err := tax.AddIsA(id, fmt.Sprintf("概念%d", rng.Intn(9)), taxonomy.SourceBracket, rng.Float64()); err != nil {
				tb.Fatalf("AddIsA: %v", err)
			}
		}
		mentions.Add(id, id)
		mentions.Add(title, id)
		if rng.Intn(2) == 0 {
			mentions.Add(title[:len(title)-1], id) // proper byte-prefix of title (ASCII tail)
		}
		if rng.Intn(4) == 0 {
			mentions.Add("实体", id) // heavily ambiguous shared prefix
		}
	}
	for i := 0; i < 9; i++ {
		if rng.Intn(3) > 0 {
			if err := tax.AddIsA(fmt.Sprintf("概念%d", i), "顶层概念", taxonomy.SourceMorph, 1); err != nil {
				tb.Fatalf("AddIsA: %v", err)
			}
		}
	}
	tax.Finalize()
	return &State{Taxonomy: tax, Mentions: mentions, Meta: Meta{Stats: tax.ComputeStats()}}
}

// TestOpenMappedRandomizedRoundTrip drives the save→map cycle over
// seeded random states and requires the mapped view to answer the full
// endpoint mix identically to the streaming decode of the same bytes.
func TestOpenMappedRandomizedRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := randomState(t, seed)
			data := saveBytes(t, st, Options{Workers: 1})
			decoded, _, err := LoadView(bytes.NewReader(data), Options{Workers: 1})
			if err != nil {
				t.Fatalf("LoadView: %v", err)
			}
			mapped := openMapped(t, writeTempSnapshot(t, data))
			if a, b := decoded.Stats(), mapped.Stats(); a != b {
				t.Fatalf("stats differ: decoded %+v, mapped %+v", a, b)
			}
			nodes := st.Taxonomy.Nodes()
			mentions := append([]string(nil), nodes...)
			decodedBody := apiResponses(t, api.NewViewServer(decoded), nodes, mentions)
			mappedBody := apiResponses(t, api.NewViewServer(mapped), nodes, mentions)
			if decodedBody != mappedBody {
				t.Fatal("mapped server responses differ from decoded server responses")
			}
		})
	}
}

// TestOpenMappedRejectsLegacy pins the fallback protocol: version-1/2
// files yield ErrNotMappable (so callers retry with LoadView), not a
// generic failure.
func TestOpenMappedRejectsLegacy(t *testing.T) {
	st := handState(t)
	v2 := saveLegacyBytes(t, st, Options{Workers: 1})
	if _, _, err := OpenMapped(writeTempSnapshot(t, v2)); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("OpenMapped(v2) = %v, want ErrNotMappable", err)
	}
	v1 := stripToV1(t, v2)
	if _, _, err := openMappedBytes(v1); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("openMappedBytes(v1) = %v, want ErrNotMappable", err)
	}
}

// TestOpenMappedDetectsCorruption runs the full corruption battery
// against the mapped opener: every single-byte flip (low and high bit)
// and every truncation of a valid v3 file must be rejected — the
// mapped path keeps the same zero-undetected-corruption guarantee as
// the streaming decoder.
func TestOpenMappedDetectsCorruption(t *testing.T) {
	st := handState(t)
	data := saveBytes(t, st, Options{Workers: 1})
	for _, mask := range []byte{0x01, 0x80} {
		for i := range data {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= mask
			if _, _, err := openMappedBytes(mutated); err == nil {
				t.Fatalf("flip of byte %d (mask %#02x) in a %d-byte snapshot was not detected", i, mask, len(data))
			}
		}
	}
	for i := 0; i < len(data); i++ {
		if _, _, err := openMappedBytes(data[:i]); err == nil {
			t.Fatalf("truncation to %d of %d bytes was not detected", i, len(data))
		}
	}
	// The same guarantees hold through the file-backed entry point.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, _, err := OpenMapped(writeTempSnapshot(t, flipped)); err == nil {
		t.Fatal("OpenMapped accepted a corrupted file")
	}
	if _, _, err := OpenMapped(writeTempSnapshot(t, data[:len(data)-5])); err == nil {
		t.Fatal("OpenMapped accepted a truncated file")
	}
	if _, _, err := OpenMapped(writeTempSnapshot(t, nil)); err == nil {
		t.Fatal("OpenMapped accepted an empty file")
	}
}

// TestMappedQueryAllocations pins the mapped hot path: with the hash
// maps and the mention trie replaced by binary search over the mapped
// arrays, queries still allocate nothing.
func TestMappedQueryAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	st := handState(t)
	v := openMapped(t, writeTempSnapshot(t, saveBytes(t, st, Options{Workers: 1})))
	var dst []string
	text := "实体00和实体07见面了"
	for i := 0; i < 4; i++ { // warm the scratch pool and dst
		dst = v.FindAllAppend(dst[:0], text)
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"Hypernyms", func() { _ = v.Hypernyms("实体00（人物）") }},
		{"Hyponyms", func() { _ = v.Hyponyms("概念0", 50) }},
		{"RankedHypernyms", func() { _ = v.RankedHypernyms("实体00（人物）", 0) }},
		{"RankedHyponyms", func() { _ = v.RankedHyponyms("概念0", 0) }},
		{"Lookup", func() { _ = v.Lookup("实体00") }},
		{"LookupMiss", func() { _ = v.Lookup("不存在") }},
		{"Kind", func() { _ = v.Kind("概念0") }},
		{"HasIsA", func() { _ = v.HasIsA("实体00（人物）", "概念0") }},
		{"TypicalityOfConcept", func() { _ = v.TypicalityOfConcept("实体00（人物）", "概念0") }},
		{"FindAllAppend", func() { dst = v.FindAllAppend(dst[:0], text) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per op on the mapped view, want 0", c.name, allocs)
		}
	}
}

// TestMappedConcurrentSwap hot-swaps mapped views under live query
// load with forced garbage collection between swaps: queries must keep
// answering correctly while finalizer-driven unmapping retires old
// mappings — the exact lifecycle of a SIGHUP reload in cnpserver. Run
// under -race in CI.
func TestMappedConcurrentSwap(t *testing.T) {
	st := handState(t)
	data := saveBytes(t, st, Options{Workers: 1})
	paths := []string{writeTempSnapshot(t, data), writeTempSnapshot(t, data)}

	srv := api.NewViewServer(openMapped(t, paths[0]))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			urls := []string{
				ts.URL + "/api/men2ent?mention=实体00",
				ts.URL + "/api/getConcept?entity=实体03（人物）",
				ts.URL + "/api/getEntity?concept=概念0&limit=5",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					t.Errorf("query during swap: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query during swap: status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 12; i++ {
		srv.SwapView(openMapped(t, paths[i%len(paths)]))
		runtime.GC() // drive the finalizer that unmaps retired views
	}
	close(stop)
	wg.Wait()
}
