package synth

import (
	"fmt"
	"strings"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/lexicon"
)

// Infobox predicate names used by the renderer. Extraction must NOT
// assume this list — predicate discovery has to find the isA-bearing
// ones from data (paper Section II, predicate discovery).
const (
	PredName       = "中文名"
	PredForeign    = "外文名"
	PredNation     = "国籍"
	PredBirthPlace = "出生地"
	PredBirthDate  = "出生日期"
	PredOccupation = "职业"
	PredPosition   = "职务"
	PredAlmaMater  = "毕业院校"
	PredWorks      = "代表作品"
	PredGenre      = "类型"
	PredCategory   = "类别"
	PredDirector   = "导演"
	PredRelease    = "发行时间"
	PredProducer   = "出品公司"
	PredRegionOf   = "所属地区"
	PredArea       = "面积"
	PredPopulation = "人口"
	PredHQ         = "总部地点"
	PredFounded    = "成立时间"
	PredFounder    = "创始人"
	PredKingdom    = "界"
	PredDistribute = "分布区域"
	PredMaker      = "制造商"
	PredLaunch     = "发布时间"
	PredField      = "领域"
	PredHeight     = "身高"
	PredWeight     = "体重"
	PredAlias      = "别名"
)

// leakPredicates are non-isA predicates that InfoboxLeakNoise may attach
// a concept object to, creating the chance alignments predicate
// discovery must survive.
var leakPredicates = []string{
	PredField, PredWorks, PredForeign, "相关条目", "主要成就", "标签",
	"出处", "登场作品", "相关人物", "所属行业",
}

// renderCorpus renders every entity into an encyclopedia page.
func (w *World) renderCorpus() {
	w.corpus = &encyclopedia.Corpus{Pages: make([]encyclopedia.Page, 0, len(w.Entities))}
	for _, e := range w.Entities {
		p := encyclopedia.Page{
			Title:   e.Title,
			Bracket: e.Bracket,
		}
		if w.rng.Float64() < w.Cfg.AbstractRate {
			p.Abstract = w.renderAbstract(e)
		}
		p.Infobox = w.renderInfobox(e)
		p.Tags = w.renderTags(e)
		w.corpus.Pages = append(w.corpus.Pages, p)
	}
}

// conceptPhrase joins the entity's concepts with 、 optionally prefixed
// by its region: the defining phrase of the first abstract sentence.
func (w *World) conceptPhrase(e *Entity) string {
	var b strings.Builder
	b.WriteString(e.Region)
	for i, c := range e.Concepts {
		if i > 0 {
			b.WriteString("、")
		}
		b.WriteString(c)
	}
	return b.String()
}

func (w *World) renderAbstract(e *Entity) string {
	var b strings.Builder
	switch e.Domain {
	case DomainPerson:
		fmt.Fprintf(&b, "%s（%s），%d年出生于%s，%s。", e.Title, e.English, e.BirthYear, w.randomPlaceMention(), w.conceptPhrase(e))
		if e.JobTitle != "" && e.Employer != nil {
			fmt.Fprintf(&b, "现任%s%s。", e.Employer.Title, e.JobTitle)
		}
		if wk := w.randomTitleOf(DomainWork); wk != "" {
			fmt.Fprintf(&b, "代表作品有《%s》。", wk)
		}
		if org := w.randomTitleOf(DomainOrg); org != "" && w.rng.Float64() < 0.4 {
			fmt.Fprintf(&b, "毕业于%s。", org)
		}
	case DomainWork:
		author := w.randomTitleOf(DomainPerson)
		verb := "创作"
		if contains(e.Concepts, "电影") || w.isDescendantOfAny(e.Concepts, "电影") {
			verb = "执导"
		} else if w.isDescendantOfAny(e.Concepts, "歌曲") {
			verb = "演唱"
		}
		fmt.Fprintf(&b, "《%s》是%s%s的%s，于%d年发行。", e.Title, author, verb, w.conceptPhrase(e), e.BirthYear)
	case DomainPlace:
		fmt.Fprintf(&b, "%s位于%s，是%s著名的%s。", e.Title, e.Region, e.Region, strings.Join(e.Concepts, "、"))
		fmt.Fprintf(&b, "%s有%s等景点。", e.Title, w.randomTitleOf(DomainPlace))
	case DomainOrg:
		fmt.Fprintf(&b, "%s成立于%d年，是一家%s。", e.Title, e.BirthYear, w.conceptPhrase(e))
		if p := w.randomTitleOf(DomainPerson); p != "" && w.rng.Float64() < 0.5 {
			fmt.Fprintf(&b, "创始人为%s。", p)
		}
	case DomainOrganism:
		fmt.Fprintf(&b, "%s是一种%s，分布于%s等地。", e.Title, strings.Join(e.Concepts, "、"), e.Region)
	case DomainProduct:
		maker := w.randomTitleOf(DomainOrg)
		fmt.Fprintf(&b, "%s是%s于%d年发布的%s。", e.Title, maker, e.BirthYear, strings.Join(e.Concepts, "、"))
	case DomainEvent:
		fmt.Fprintf(&b, "%s于%d年在%s举行，是%s重要的%s。", e.Title, e.BirthYear, w.randomPlaceMention(), e.Region, strings.Join(e.Concepts, "、"))
	}
	return b.String()
}

// isDescendantOfAny reports whether any concept in cs equals anc or
// descends from it.
func (w *World) isDescendantOfAny(cs []string, anc string) bool {
	for _, c := range cs {
		if c == anc || w.ancestors[c][anc] {
			return true
		}
	}
	return false
}

// randomPlaceMention returns a region word or a generated place title.
func (w *World) randomPlaceMention() string {
	if w.rng.Float64() < 0.5 {
		if t := w.randomTitleOf(DomainPlace); t != "" {
			return t
		}
	}
	return pick(w.rng, regionsPool)
}

// randomTitleOf returns the title of a random entity of domain d, or "".
func (w *World) randomTitleOf(d Domain) string {
	// The entity list is grouped by sorted title; random probing keeps
	// this O(1) without a per-domain index.
	for try := 0; try < 16; try++ {
		e := w.Entities[w.rng.Intn(len(w.Entities))]
		if e.Domain == d {
			return e.Title
		}
	}
	return ""
}

func (w *World) renderInfobox(e *Entity) []encyclopedia.Triple {
	id := encyclopedia.EntityID(e.Title, e.Bracket)
	var ts []encyclopedia.Triple
	add := func(p, o string) {
		if o != "" {
			ts = append(ts, encyclopedia.Triple{Subject: id, Predicate: p, Object: o})
		}
	}
	add(PredName, e.Title)
	switch e.Domain {
	case DomainPerson:
		add(PredForeign, e.English)
		add(PredNation, e.Region)
		add(PredBirthPlace, w.randomPlaceMention())
		add(PredBirthDate, fmt.Sprintf("%d年", e.BirthYear))
		for _, c := range e.Concepts {
			obj := c
			if w.rng.Float64() < w.Cfg.OccupationCorruption {
				obj = pick(w.rng, thematicPool) // noisy occupation value
			}
			add(PredOccupation, obj)
		}
		if e.JobTitle != "" {
			add(PredPosition, e.JobTitle)
		}
		for _, a := range e.Aliases {
			add(PredAlias, a)
		}
		add(PredAlmaMater, w.randomTitleOf(DomainOrg))
		add(PredWorks, w.randomTitleOf(DomainWork))
		if w.rng.Float64() < 0.3 {
			add(PredHeight, fmt.Sprintf("%dcm", 150+w.rng.Intn(50)))
			add(PredWeight, fmt.Sprintf("%dKG", 45+w.rng.Intn(50)))
		}
	case DomainWork:
		for _, c := range e.Concepts {
			add(w.pickPredicate(PredGenre, "体裁"), c)
		}
		add(PredDirector, w.randomTitleOf(DomainPerson))
		add(PredRelease, fmt.Sprintf("%d年", e.BirthYear))
		add(PredProducer, w.randomTitleOf(DomainOrg))
	case DomainPlace:
		add(PredRegionOf, e.Region)
		add(PredArea, fmt.Sprintf("%d平方公里", 10+w.rng.Intn(5000)))
		add(PredPopulation, fmt.Sprintf("%d万", 1+w.rng.Intn(800)))
		for _, c := range e.Concepts {
			add(w.pickPredicate(PredCategory, "地理类型"), c)
		}
	case DomainOrg:
		add(PredHQ, w.randomPlaceMention())
		add(PredFounded, fmt.Sprintf("%d年", e.BirthYear))
		for _, c := range e.Concepts {
			add(w.pickPredicate(PredGenre, "性质"), c)
		}
		add(PredFounder, w.randomTitleOf(DomainPerson))
	case DomainOrganism:
		add(PredKingdom, string(DomainOrganism))
		for _, c := range e.Concepts {
			add(w.pickPredicate(PredCategory, "分类"), c)
		}
		add(PredDistribute, e.Region)
	case DomainProduct:
		for _, c := range e.Concepts {
			add(w.pickPredicate(PredGenre, PredCategory), c)
		}
		add(PredMaker, w.randomTitleOf(DomainOrg))
		add(PredLaunch, fmt.Sprintf("%d年", e.BirthYear))
	case DomainEvent:
		for _, c := range e.Concepts {
			add(w.pickPredicate(PredCategory, "性质"), c)
		}
		add(PredRegionOf, e.Region)
	}
	// Leak noise: a same-domain *other* entity's concept under a
	// non-isA predicate (相关人物 of an actor is another person, whose
	// occupation sometimes coincides). Such objects align with the
	// bracket prior only occasionally — the long tail behind the
	// paper's 341 candidate predicates that manual curation discards.
	if w.rng.Float64() < w.Cfg.InfoboxLeakNoise {
		for try := 0; try < 8; try++ {
			other := w.Entities[w.rng.Intn(len(w.Entities))]
			if other.Domain == e.Domain && len(other.Concepts) > 0 {
				add(leakPredicates[w.rng.Intn(len(leakPredicates))], other.Concepts[0])
				break
			}
		}
	}
	return ts
}

// pickPredicate selects among predicate synonyms so the curated isA
// predicate list has realistic breadth (the paper curates 12).
func (w *World) pickPredicate(options ...string) string {
	return options[w.rng.Intn(len(options))]
}

func (w *World) renderTags(e *Entity) []string {
	var tags []string
	seen := make(map[string]bool)
	addTag := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			tags = append(tags, t)
		}
	}
	for _, c := range e.Concepts {
		addTag(c)
		// One ancestor tag (e.g. 娱乐人物 style mid-level tag).
		if p := w.Concepts[c].Parent; p != "" && w.rng.Float64() < 0.7 {
			addTag(p)
		}
	}
	addTag(string(e.Domain))
	if w.rng.Float64() < w.Cfg.TagThematicNoise {
		addTag(pick(w.rng, thematicPool))
	}
	if w.rng.Float64() < w.Cfg.TagNERNoise {
		addTag(pick(w.rng, regionsPool))
	}
	if w.rng.Float64() < w.Cfg.TagEntityNoise {
		addTag(w.randomTitleOf(DomainWork))
	}
	if w.rng.Float64() < w.Cfg.TagCrossDomainNoise {
		// A concept from another domain: related, frequent, wrong.
		for try := 0; try < 8; try++ {
			other := w.Entities[w.rng.Intn(len(w.Entities))]
			if other.Domain != e.Domain && len(other.Concepts) > 0 {
				addTag(other.Concepts[0])
				break
			}
		}
	}
	return tags
}

var thematicPool = lexicon.ThematicWords()
