package synth

import (
	"fmt"
	"sort"
	"strings"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/lexicon"
)

// domainShare fixes the entity mix. Persons dominate, matching the
// encyclopedia the paper crawls (Figure 1 is a person page).
var domainShare = []struct {
	d Domain
	w float64
}{
	{DomainPerson, 0.40},
	{DomainWork, 0.20},
	{DomainPlace, 0.12},
	{DomainOrg, 0.12},
	{DomainOrganism, 0.08},
	{DomainProduct, 0.06},
	{DomainEvent, 0.02},
}

// generateEntities mints entity identities for every domain. Rendering
// into pages happens afterwards so cross-references resolve.
func (w *World) generateEntities() error {
	counts := make(map[Domain]int)
	for _, ds := range domainShare {
		counts[ds.d] = int(float64(w.Cfg.Entities) * ds.w)
	}
	// Round remainder into persons.
	total := 0
	for _, c := range counts {
		total += c
	}
	counts[DomainPerson] += w.Cfg.Entities - total

	for _, ds := range domainShare {
		for i := 0; i < counts[ds.d]; i++ {
			e := w.mintEntity(ds.d)
			w.Entities = append(w.Entities, e)
		}
	}
	// Deliberate title collisions: clone some person titles onto new
	// entities with different concepts, forcing bracket disambiguation.
	persons := w.entitiesOf(DomainPerson)
	nCollide := int(float64(len(persons)) * w.Cfg.CollisionRate)
	for i := 0; i < nCollide && i < len(persons); i++ {
		src := persons[w.rng.Intn(len(persons))]
		e := w.mintEntity(DomainPerson)
		e.Title = src.Title
		w.Entities = append(w.Entities, e)
	}
	// Assign brackets + IDs, then index.
	w.assignBrackets()
	for _, e := range w.Entities {
		e.ID = encyclopedia.EntityID(e.Title, e.Bracket)
		if _, dup := w.byID[e.ID]; dup {
			// Same title, same bracket: disambiguate by region.
			if e.Region != "" && !strings.HasPrefix(e.Bracket, e.Region) {
				e.Bracket = e.Region + e.Bracket
				e.ID = encyclopedia.EntityID(e.Title, e.Bracket)
			}
		}
		if _, dup := w.byID[e.ID]; dup {
			continue // drop exact duplicates silently
		}
		w.byID[e.ID] = e
		w.byTitle[e.Title] = append(w.byTitle[e.Title], e)
	}
	// Rebuild the entity list from the index to exclude dropped ones.
	w.Entities = w.Entities[:0]
	for _, title := range sortedKeys(w.byTitle) {
		w.Entities = append(w.Entities, w.byTitle[title]...)
	}
	if len(w.Entities) == 0 {
		return fmt.Errorf("synth: no entities generated")
	}
	return nil
}

func (w *World) entitiesOf(d Domain) []*Entity {
	var out []*Entity
	for _, e := range w.Entities {
		if e.Domain == d {
			out = append(out, e)
		}
	}
	return out
}

// pickConcepts draws 1–3 compatible concepts for a domain.
func (w *World) pickConcepts(d Domain) []string {
	pool := w.conceptsByDomain[d]
	if len(pool) == 0 {
		return []string{string(d)}
	}
	first := pool[w.rng.Intn(len(pool))]
	out := []string{first}
	// Persons frequently hold several roles (演员、歌手) — same domain,
	// so compatible by construction.
	extra := 0
	if d == DomainPerson {
		extra = w.rng.Intn(3) // 0..2 extra roles
	} else if w.rng.Float64() < 0.2 {
		extra = 1
	}
	for i := 0; i < extra; i++ {
		c := pool[w.rng.Intn(len(pool))]
		if !contains(out, c) && !w.related(c, out) {
			out = append(out, c)
		}
	}
	return out
}

// related reports whether c is an ancestor or descendant of any chosen
// concept (avoid typing an entity with both 演员 and 男演员).
func (w *World) related(c string, chosen []string) bool {
	for _, o := range chosen {
		if w.ancestors[c][o] || w.ancestors[o][c] {
			return true
		}
	}
	return false
}

func (w *World) mintEntity(d Domain) *Entity {
	e := &Entity{
		Domain:    d,
		Concepts:  w.pickConcepts(d),
		Region:    pick(w.rng, regionsPool),
		BirthYear: 1900 + w.rng.Intn(110),
	}
	switch d {
	case DomainPerson:
		e.Title = w.personName()
		e.English = romanizeName(e.Title)
		if e.English == "" {
			e.English = w.englishName(2)
		}
		if w.rng.Float64() < w.Cfg.AliasRate {
			rs := []rune(e.Title)
			if len(rs) == 3 {
				e.Aliases = append(e.Aliases, string(rs[1:])) // given-name alias
			}
		}
	case DomainPlace:
		e.Title, e.Concepts = w.placeName()
		e.English = w.englishName(1)
	case DomainOrg:
		e.Title, e.Concepts = w.orgName()
		e.English = strings.ToUpper(w.englishName(1))
	case DomainWork:
		e.Title = w.workTitle()
		e.English = w.englishName(2)
	case DomainOrganism:
		e.Title = w.organismName()
		e.English = w.englishName(1)
	case DomainProduct:
		e.Title = w.productName()
		e.English = strings.ToUpper(w.englishName(1))
	case DomainEvent:
		e.Title = w.eventName()
		e.English = w.englishName(2)
	}
	return e
}

func (w *World) personName() string {
	sur := pick(w.rng, surnamePool)
	n := 1 + w.rng.Intn(2)
	var b strings.Builder
	b.WriteString(sur)
	for i := 0; i < n; i++ {
		b.WriteString(pick(w.rng, givenPool))
	}
	return b.String()
}

// placeName mints a stem+suffix place and types it consistently with
// the suffix.
func (w *World) placeName() (string, []string) {
	type form struct {
		suffix  string
		concept string
	}
	forms := []form{
		{"市", "城市"}, {"县", "地区"}, {"镇", "乡镇"}, {"村", "村庄"},
		{"山", "山脉"}, {"河", "河流"}, {"湖", "湖泊"}, {"岛", "岛屿"},
	}
	f := forms[w.rng.Intn(len(forms))]
	stem := pick(w.rng, placeStemPool)
	concepts := []string{f.concept}
	if f.concept == "城市" && w.rng.Float64() < 0.4 {
		pool := []string{"省会城市", "沿海城市", "历史文化名城"}
		concepts = []string{pool[w.rng.Intn(len(pool))]}
	}
	return stem + f.suffix, concepts
}

// orgName mints organization names; companies use stem+industry
// (蚂蚁金服), schools use placeStem+大学.
func (w *World) orgName() (string, []string) {
	switch w.rng.Intn(5) {
	case 0: // university
		pool := []string{"综合性大学", "师范大学", "医科大学"}
		return pick(w.rng, placeStemPool) + "大学", []string{pool[w.rng.Intn(len(pool))]}
	case 1: // bank / hospital / institute
		type form struct{ sfx, c string }
		forms := []form{{"银行", "银行"}, {"医院", "医院"}, {"研究所", "研究所"}, {"出版社", "出版社"}, {"中学", "中学"}}
		f := forms[w.rng.Intn(len(forms))]
		return pick(w.rng, placeStemPool) + f.sfx, []string{f.c}
	default: // company: stem + industry word
		ind := pick(w.rng, industryPool)
		c := industryConcept[ind]
		if c == "" {
			c = "公司"
		}
		return pick(w.rng, orgStemPool) + ind, []string{c}
	}
}

func (w *World) workTitle() string {
	n := 2 + w.rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(pick(w.rng, workCharPool))
	}
	return b.String()
}

func (w *World) organismName() string {
	heads := []string{"红", "白", "黑", "金", "银", "青", "紫", "斑", "大", "小"}
	bodies := []string{"尾雀", "头鹰", "纹鱼", "翅蝶", "角鹿", "叶兰", "花藤", "果树", "鳞蛇", "须虾"}
	return pick(w.rng, heads) + pick(w.rng, bodies)
}

func (w *World) productName() string {
	brands := []string{"星驰", "云景", "蓝湾", "极光", "飞鸿", "天行", "墨白", "锐界"}
	return pick(w.rng, brands) + fmt.Sprintf("%d", 1+w.rng.Intn(30))
}

func (w *World) eventName() string {
	stems := []string{"春城", "东海", "金陵", "长安", "两江", "南山"}
	kinds := []string{"之战", "运动会", "艺术节", "峰会", "音乐节"}
	return pick(w.rng, stems) + pick(w.rng, kinds)
}

// romanizeName converts a Chinese person name to pinyin in
// "Surname Givenname" form (刘德华 → "Liu Dehua"); it returns "" when a
// character has no known romanization.
func romanizeName(name string) string {
	rs := []rune(name)
	if len(rs) < 2 {
		return ""
	}
	// Try the two-rune surname first (欧阳).
	surLen := 1
	if len(rs) >= 3 {
		if _, ok := lexicon.CharPinyin(string(rs[:2])); ok {
			surLen = 2
		}
	}
	sur, ok := lexicon.CharPinyin(string(rs[:surLen]))
	if !ok {
		return ""
	}
	given := ""
	for _, r := range rs[surLen:] {
		p, ok := lexicon.CharPinyin(string(r))
		if !ok {
			return ""
		}
		given += p
	}
	return title(sur) + " " + title(given)
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func (w *World) englishName(parts int) string {
	var b strings.Builder
	for i := 0; i < parts; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		s := pick(w.rng, pinyinPool)
		b.WriteString(strings.ToUpper(s[:1]) + s[1:])
	}
	return b.String()
}

// assignBrackets decides which entities carry a disambiguation bracket
// and renders the bracket compound.
func (w *World) assignBrackets() {
	// Count title usage to force brackets on collisions.
	titleUses := make(map[string]int)
	for _, e := range w.Entities {
		titleUses[e.Title]++
	}
	for _, e := range w.Entities {
		forced := titleUses[e.Title] > 1
		if !forced && w.rng.Float64() >= w.Cfg.BracketRate {
			continue
		}
		e.Bracket = w.renderBracket(e)
	}
}

// renderBracket builds the noun compound inside the bracket. Person
// brackets occasionally take the org+title form of the paper's Figure 3
// running example (蚂蚁金服首席战略官).
func (w *World) renderBracket(e *Entity) string {
	if e.Domain == DomainPerson && w.rng.Float64() < w.Cfg.OrgTitleBracketRate {
		org := w.randomOrgEmployer()
		if org != nil {
			title := pick(w.rng, jobTitlePool)
			e.Employer = org
			e.JobTitle = title
			e.ExtraHypernyms = append(e.ExtraHypernyms, titleHypernyms(title)...)
			// A labeler also accepts org-type + title compounds
			// (清河大学教授 → 大学教授): generic institutional roles.
			for _, sfx := range orgSuffixPool {
				if strings.HasSuffix(org.Title, sfx) {
					for _, th := range titleHypernyms(title) {
						e.ExtraHypernyms = append(e.ExtraHypernyms, sfx+th)
					}
					break
				}
			}
			return org.Title + title
		}
	}
	var parts []string
	for i, c := range e.Concepts {
		p := c
		if i == 0 {
			// Leading concept may take region and/or modifier prefixes.
			if w.rng.Float64() < 0.5 {
				p = e.Region + p
			}
			if e.Domain == DomainPerson && w.rng.Float64() < 0.3 {
				p = "著名" + p
			}
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, "、")
}

// titleHypernyms expands a compound job title into the hypernym strings
// the oracle accepts: the full title and its head suffix (首席战略官 →
// also 战略官).
func titleHypernyms(title string) []string {
	out := []string{title}
	if strings.HasPrefix(title, "首席") {
		out = append(out, strings.TrimPrefix(title, "首席"))
	}
	if strings.HasPrefix(title, "联合") {
		out = append(out, strings.TrimPrefix(title, "联合"))
	}
	if strings.HasPrefix(title, "副") {
		out = append(out, strings.TrimPrefix(title, "副"))
	}
	return out
}

func (w *World) randomOrgEmployer() *Entity {
	orgs := w.entitiesOf(DomainOrg)
	if len(orgs) == 0 {
		return nil
	}
	return orgs[w.rng.Intn(len(orgs))]
}

// ---- deterministic pools (loaded once from the lexicon) ----

var (
	surnamePool   = lexicon.Surnames()
	givenPool     = lexicon.GivenChars()
	regionsPool   = lexicon.Regions()
	placeStemPool = lexicon.PlaceStems()
	orgStemPool   = lexicon.OrgStems()
	industryPool  = lexicon.OrgIndustry()
	workCharPool  = lexicon.WorkChars()
	jobTitlePool  = lexicon.JobTitles()
	pinyinPool    = lexicon.PinyinSyllables()
	orgSuffixPool = lexicon.OrgSuffixes()
)

// industryConcept maps a company industry word to its typed concept.
var industryConcept = map[string]string{
	"金服": "金融公司", "科技": "科技公司", "网络": "互联网公司",
	"传媒": "电影公司", "资本": "金融公司", "控股": "金融公司",
	"证券": "金融公司", "软件": "科技公司",
}

func pick(r interface{ Intn(int) int }, xs []string) string {
	return xs[r.Intn(len(xs))]
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string][]*Entity) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
