package synth

import (
	"strings"
	"testing"
)

// The renderer is what the extractors consume; these tests pin the
// contract between world truth and page surface.

func TestAbstractContainsDefiningConcepts(t *testing.T) {
	w := smallWorld(t, 600, 21)
	checked := 0
	for i, p := range w.Corpus().Pages {
		if p.Abstract == "" {
			continue
		}
		e := w.Entities[i]
		// The first concept must appear verbatim in the abstract —
		// this is what distant supervision and the copy mechanism rely
		// on.
		if !strings.Contains(p.Abstract, e.Concepts[0]) {
			t.Errorf("abstract of %q lacks defining concept %q: %s", e.ID, e.Concepts[0], p.Abstract)
		}
		if checked++; checked == 100 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no abstracts rendered")
	}
}

func TestTagsContainTruthAndAncestor(t *testing.T) {
	w := smallWorld(t, 600, 22)
	for i, p := range w.Corpus().Pages {
		e := w.Entities[i]
		tagSet := make(map[string]bool, len(p.Tags))
		for _, tag := range p.Tags {
			tagSet[tag] = true
		}
		for _, c := range e.Concepts {
			if !tagSet[c] {
				t.Errorf("tags of %q lack truth concept %q: %v", e.ID, c, p.Tags)
			}
		}
		if !tagSet[string(e.Domain)] {
			t.Errorf("tags of %q lack domain root: %v", e.ID, p.Tags)
		}
		if i == 80 {
			break
		}
	}
}

func TestTagsHaveNoDuplicates(t *testing.T) {
	w := smallWorld(t, 400, 23)
	for _, p := range w.Corpus().Pages {
		seen := make(map[string]bool)
		for _, tag := range p.Tags {
			if seen[tag] {
				t.Fatalf("page %q has duplicate tag %q", p.ID(), tag)
			}
			seen[tag] = true
		}
	}
}

func TestOccupationTriplesMostlyTruthful(t *testing.T) {
	w := smallWorld(t, 2000, 24)
	o := w.Oracle()
	good, bad := 0, 0
	for _, p := range w.Corpus().Pages {
		for _, tr := range p.Infobox {
			if tr.Predicate != PredOccupation {
				continue
			}
			if o.Judge(tr.Subject, tr.Object) {
				good++
			} else {
				bad++
			}
		}
	}
	if good == 0 {
		t.Fatal("no occupation triples")
	}
	rate := float64(bad) / float64(good+bad)
	// OccupationCorruption defaults to 3%.
	if rate > 0.08 {
		t.Errorf("occupation corruption rate = %.3f, want ≈0.03", rate)
	}
	if bad == 0 {
		t.Error("corruption never fired; noise model inert")
	}
}

func TestLeakNoisePresent(t *testing.T) {
	w := smallWorld(t, 2000, 25)
	leaks := 0
	leakSet := make(map[string]bool, len(leakPredicates))
	for _, lp := range leakPredicates {
		leakSet[lp] = true
	}
	for _, p := range w.Corpus().Pages {
		for _, tr := range p.Infobox {
			if leakSet[tr.Predicate] && w.IsConcept(tr.Object) {
				leaks++
			}
		}
	}
	if leaks == 0 {
		t.Error("no leak triples generated; predicate discovery has no long tail to reject")
	}
}

func TestAliasTriplesRendered(t *testing.T) {
	w := smallWorld(t, 2000, 26)
	found := false
	for i, p := range w.Corpus().Pages {
		e := w.Entities[i]
		if len(e.Aliases) == 0 {
			continue
		}
		for _, tr := range p.Infobox {
			if tr.Predicate == PredAlias && tr.Object == e.Aliases[0] {
				found = true
			}
		}
	}
	if !found {
		t.Error("no alias triples rendered; men2ent alias path untested upstream")
	}
}
