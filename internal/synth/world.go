// Package synth generates the synthetic Chinese encyclopedia that
// substitutes for the CN-DBpedia dump the paper consumes (DESIGN.md
// Section 2). It builds a ground-truth world — a concept ontology plus
// typed entities — and renders each entity into an encyclopedia page
// with the four sources the paper extracts from: disambiguation bracket,
// abstract, infobox SPO triples and tags, each with calibrated noise.
//
// Because the world knows the truth, the Oracle replaces the paper's
// manual labeling of 2000 sampled isA pairs with exact judgments.
package synth

import (
	"fmt"
	"math/rand"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/lexicon"
)

// Domain identifies the root concept an entity belongs to.
type Domain string

// Domains used by the generator; they match the ontology roots.
const (
	DomainPerson   Domain = "人物"
	DomainPlace    Domain = "地点"
	DomainOrg      Domain = "组织"
	DomainWork     Domain = "作品"
	DomainOrganism Domain = "生物"
	DomainProduct  Domain = "产品"
	DomainEvent    Domain = "事件"
)

// Config controls the size and noise profile of the generated world.
// The zero value is not useful; start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal seeds give identical worlds.
	Seed int64
	// Entities is the number of entities to generate.
	Entities int

	// BracketRate is the fraction of entities rendered with a
	// disambiguation bracket (name collisions always force one).
	BracketRate float64
	// AbstractRate is the fraction of entities with an abstract.
	AbstractRate float64
	// OrgTitleBracketRate is the fraction of persons whose bracket is
	// an organization + job title compound (蚂蚁金服首席战略官).
	OrgTitleBracketRate float64

	// TagThematicNoise is the probability of adding one thematic
	// (non-taxonomic) word to an entity's tags.
	TagThematicNoise float64
	// TagNERNoise is the probability of adding a region (named entity)
	// tag.
	TagNERNoise float64
	// TagEntityNoise is the probability of adding another entity's
	// title as a tag.
	TagEntityNoise float64
	// TagCrossDomainNoise is the probability of adding a concept from
	// a different domain as a tag (a singer tagged 流行歌曲) — the
	// "related but not isA" confusion user-generated tags exhibit.
	TagCrossDomainNoise float64
	// InfoboxLeakNoise is the probability of emitting one extra triple
	// with a random non-isA predicate whose object is a concept — the
	// chance alignments that inflate the paper's 341 predicate
	// candidates.
	InfoboxLeakNoise float64
	// OccupationCorruption is the probability that a 职业-style triple
	// carries a thematic word instead of a concept.
	OccupationCorruption float64
	// AliasRate is the fraction of persons with a short alias (给 men2ent).
	AliasRate float64
	// CollisionRate is the fraction of person names deliberately
	// reused to create ambiguous mentions.
	CollisionRate float64
}

// DefaultConfig returns the calibrated defaults used by the experiment
// harness. The noise levels are tuned so the reproduction lands in the
// paper's precision bands (DESIGN.md Section 4).
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Entities:             8000,
		BracketRate:          0.55,
		AbstractRate:         0.80,
		OrgTitleBracketRate:  0.12,
		TagThematicNoise:     0.35,
		TagNERNoise:          0.18,
		TagEntityNoise:       0.06,
		TagCrossDomainNoise:  0.06,
		InfoboxLeakNoise:     0.08,
		OccupationCorruption: 0.03,
		AliasRate:            0.20,
		CollisionRate:        0.06,
	}
}

// ConceptInfo is one concept of the ground-truth ontology.
type ConceptInfo struct {
	Name   string
	En     string
	Parent string // empty for roots
	Depth  int    // 0 for roots
}

// Entity is one ground-truth entity.
type Entity struct {
	// ID is the disambiguated identifier (title plus bracket if any).
	ID string
	// Title is the page name.
	Title string
	// Bracket is the disambiguation compound, empty if none.
	Bracket string
	// English is the romanized label used by the Probase-Tran baseline.
	English string
	// Domain is the root concept.
	Domain Domain
	// Concepts are the direct ground-truth concepts (most specific).
	Concepts []string
	// ExtraHypernyms are non-ontology hypernyms that are nevertheless
	// correct, e.g. job titles (首席战略官) and their head suffixes.
	ExtraHypernyms []string
	// Region is the associated country/region word.
	Region string
	// Aliases are alternative mentions (e.g. given name only).
	Aliases []string
	// BirthYear is used by abstract and infobox templates.
	BirthYear int
	// Employer, for persons with an org-title bracket.
	Employer *Entity
	// JobTitle, for persons with an org-title bracket.
	JobTitle string
}

// World is a generated ground-truth universe plus its rendered corpus.
type World struct {
	Cfg      Config
	Concepts map[string]*ConceptInfo
	// ConceptOrder lists concept names in deterministic (ontology)
	// order.
	ConceptOrder []string
	Entities     []*Entity
	byID         map[string]*Entity
	byTitle      map[string][]*Entity
	corpus       *encyclopedia.Corpus
	rng          *rand.Rand

	// conceptsByDomain maps a root concept to its descendant leaf-ish
	// concepts used for entity typing.
	conceptsByDomain map[Domain][]string
	// ancestors maps concept → set of all ancestors (not including
	// itself).
	ancestors map[string]map[string]bool
}

// Generate builds a world from cfg.
func Generate(cfg Config) (*World, error) {
	if cfg.Entities <= 0 {
		return nil, fmt.Errorf("synth: config.Entities must be positive, got %d", cfg.Entities)
	}
	w := &World{
		Cfg:              cfg,
		Concepts:         make(map[string]*ConceptInfo),
		byID:             make(map[string]*Entity),
		byTitle:          make(map[string][]*Entity),
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		conceptsByDomain: make(map[Domain][]string),
		ancestors:        make(map[string]map[string]bool),
	}
	w.buildOntology()
	if err := w.generateEntities(); err != nil {
		return nil, err
	}
	w.renderCorpus()
	return w, nil
}

// buildOntology loads the embedded ontology and computes depths,
// per-domain concept pools and ancestor closures.
func (w *World) buildOntology() {
	for _, e := range lexicon.Ontology() {
		w.Concepts[e.Zh] = &ConceptInfo{Name: e.Zh, En: e.En, Parent: e.Parent}
		w.ConceptOrder = append(w.ConceptOrder, e.Zh)
	}
	// Depth by repeated relaxation (the ontology is small and acyclic).
	for changed := true; changed; {
		changed = false
		for _, c := range w.Concepts {
			if c.Parent == "" {
				continue
			}
			p, ok := w.Concepts[c.Parent]
			if !ok {
				continue
			}
			if c.Depth != p.Depth+1 {
				c.Depth = p.Depth + 1
				changed = true
			}
		}
	}
	// Ancestor closure.
	for name := range w.Concepts {
		anc := make(map[string]bool)
		for cur := w.Concepts[name].Parent; cur != ""; {
			if anc[cur] {
				break // cycle guard; embedded data is acyclic
			}
			anc[cur] = true
			ci, ok := w.Concepts[cur]
			if !ok {
				break
			}
			cur = ci.Parent
		}
		w.ancestors[name] = anc
	}
	// Domain pools: concepts whose root ancestor is the domain and
	// that have no children (leaves) plus mid-level concepts.
	hasChild := make(map[string]bool)
	for _, c := range w.Concepts {
		if c.Parent != "" {
			hasChild[c.Parent] = true
		}
	}
	for _, name := range w.ConceptOrder {
		root := w.rootOf(name)
		if name == root {
			continue
		}
		d := Domain(root)
		// Prefer leaves; keep mid-level concepts too so entities can
		// be typed at either level (paper: entities average >2
		// concepts).
		if !hasChild[name] || w.Concepts[name].Depth >= 1 {
			w.conceptsByDomain[d] = append(w.conceptsByDomain[d], name)
		}
	}
}

// rootOf returns the root ancestor of concept name (or name itself).
func (w *World) rootOf(name string) string {
	cur := name
	for {
		ci, ok := w.Concepts[cur]
		if !ok || ci.Parent == "" {
			return cur
		}
		cur = ci.Parent
	}
}

// Corpus returns the rendered encyclopedia corpus.
func (w *World) Corpus() *encyclopedia.Corpus { return w.corpus }

// EntityByID looks up a generated entity by its disambiguated ID.
func (w *World) EntityByID(id string) (*Entity, bool) {
	e, ok := w.byID[id]
	return e, ok
}

// EntitiesByTitle returns all entities sharing a page title (ambiguous
// mentions map to several).
func (w *World) EntitiesByTitle(title string) []*Entity { return w.byTitle[title] }

// IsConcept reports whether name is an ontology concept.
func (w *World) IsConcept(name string) bool {
	_, ok := w.Concepts[name]
	return ok
}

// AncestorsOf returns the ancestor set of an ontology concept.
func (w *World) AncestorsOf(name string) map[string]bool { return w.ancestors[name] }
