package synth

import (
	"strings"
)

// Oracle judges candidate isA relations against the generated ground
// truth. It substitutes for the paper's manual labeling of 2000 sampled
// pairs: with a synthetic world the truth is known exactly.
type Oracle struct {
	w *World
	// entityTruth caches, per entity ID, the full set of correct
	// hypernym strings.
	entityTruth map[string]map[string]bool
}

// Oracle builds (once) and returns the world's oracle.
func (w *World) Oracle() *Oracle {
	o := &Oracle{w: w, entityTruth: make(map[string]map[string]bool, len(w.Entities))}
	for _, e := range w.Entities {
		truth := make(map[string]bool)
		for _, c := range e.Concepts {
			truth[c] = true
			for anc := range w.ancestors[c] {
				truth[anc] = true
			}
		}
		for _, h := range e.ExtraHypernyms {
			truth[h] = true
		}
		o.entityTruth[e.ID] = truth
	}
	return o
}

// Judge reports whether isA(hypo, hyper) is correct. The hyponym may be
// a disambiguated entity ID, a bare title (resolved if unambiguous), or
// an ontology concept; the hypernym is a concept-like string.
func (o *Oracle) Judge(hypo, hyper string) bool {
	if hyper == "" || hypo == "" || hypo == hyper {
		return false
	}
	// Entity hyponym.
	if truth, ok := o.entityTruth[hypo]; ok {
		return o.judgeEntity(truth, hyper)
	}
	// Bare title: a human labeler accepts the pair if any entity with
	// that title matches (they cannot see disambiguation subscripts).
	for _, e := range o.w.byTitle[strings.TrimSpace(hypo)] {
		if o.judgeEntity(o.entityTruth[e.ID], hyper) {
			return true
		}
	}
	// Concept-concept edge.
	if o.w.IsConcept(hypo) && o.w.IsConcept(hyper) {
		return o.w.ancestors[hypo][hyper]
	}
	return false
}

// judgeEntity accepts exact truth hits plus benign generalizations a
// human labeler would accept: the truth concept with a region/gender
// modifier stripped (中国男演员 → 男演员 is already truth; 著名演员 →
// 演员).
func (o *Oracle) judgeEntity(truth map[string]bool, hyper string) bool {
	if truth == nil {
		return false
	}
	if truth[hyper] {
		return true
	}
	// Modifier-wrapped truth: strip a known leading modifier or region
	// and re-check (a labeler marks 中国著名演员 correct for an actor).
	stripped := stripModifiers(hyper)
	if stripped != hyper && truth[stripped] {
		return true
	}
	return false
}

// stripModifiers removes region and adjective prefixes from a compound
// hypernym.
func stripModifiers(h string) string {
	for again := true; again; {
		again = false
		for _, m := range modifierPrefixes {
			if strings.HasPrefix(h, m) && len(h) > len(m) {
				h = strings.TrimPrefix(h, m)
				again = true
			}
		}
	}
	return h
}

var modifierPrefixes = func() []string {
	var out []string
	out = append(out, regionsPool...)
	out = append(out, "著名", "知名", "当代", "现代", "青年", "资深", "国际", "优秀", "杰出")
	return out
}()

// TruthCount returns the number of ground-truth hypernyms of an entity
// (used by recall-flavored diagnostics).
func (o *Oracle) TruthCount(entityID string) int { return len(o.entityTruth[entityID]) }

// TruthHypernyms returns a copy of the ground-truth hypernym set of an
// entity ID (empty when unknown).
func (o *Oracle) TruthHypernyms(entityID string) []string {
	var out []string
	for h := range o.entityTruth[entityID] {
		out = append(out, h)
	}
	return out
}
