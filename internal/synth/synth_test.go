package synth

import (
	"strings"
	"testing"

	"cnprobase/internal/encyclopedia"
)

func smallWorld(t testing.TB, entities int, seed int64) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Entities = entities
	cfg.Seed = seed
	w, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("Generate accepted zero config")
	}
}

func TestDeterminism(t *testing.T) {
	a := smallWorld(t, 400, 9)
	b := smallWorld(t, 400, 9)
	if len(a.Entities) != len(b.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(a.Entities), len(b.Entities))
	}
	for i := range a.Entities {
		if a.Entities[i].ID != b.Entities[i].ID {
			t.Fatalf("entity %d differs: %q vs %q", i, a.Entities[i].ID, b.Entities[i].ID)
		}
	}
	pa, pb := a.Corpus().Pages, b.Corpus().Pages
	for i := range pa {
		if pa[i].Abstract != pb[i].Abstract {
			t.Fatalf("page %d abstract differs", i)
		}
	}
	c := smallWorld(t, 400, 10)
	if len(c.Entities) == len(a.Entities) {
		same := true
		for i := range c.Entities {
			if c.Entities[i].ID != a.Entities[i].ID {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestWorldShape(t *testing.T) {
	w := smallWorld(t, 1000, 1)
	c := w.Corpus()
	if c.Len() != len(w.Entities) {
		t.Fatalf("pages=%d entities=%d", c.Len(), len(w.Entities))
	}
	if got := float64(c.BracketCount()) / float64(c.Len()); got < 0.4 || got > 0.8 {
		t.Errorf("bracket rate = %.2f, want around 0.55", got)
	}
	if got := float64(c.AbstractCount()) / float64(c.Len()); got < 0.65 || got > 0.95 {
		t.Errorf("abstract rate = %.2f, want around 0.8", got)
	}
	if c.TripleCount() == 0 || c.TagCount() == 0 {
		t.Error("corpus missing triples or tags")
	}
	// Every entity resolvable by ID, and IDs unique.
	seen := make(map[string]bool)
	for _, e := range w.Entities {
		if seen[e.ID] {
			t.Fatalf("duplicate entity ID %q", e.ID)
		}
		seen[e.ID] = true
		if _, ok := w.EntityByID(e.ID); !ok {
			t.Fatalf("EntityByID(%q) missing", e.ID)
		}
		if len(e.Concepts) == 0 {
			t.Fatalf("entity %q has no concepts", e.ID)
		}
	}
}

func TestAmbiguousTitlesExist(t *testing.T) {
	w := smallWorld(t, 1500, 1)
	ambiguous := 0
	for title := range w.byTitle {
		if len(w.EntitiesByTitle(title)) > 1 {
			ambiguous++
		}
	}
	if ambiguous == 0 {
		t.Error("no ambiguous titles generated; men2ent has nothing to disambiguate")
	}
}

func TestConceptsConsistentWithDomain(t *testing.T) {
	w := smallWorld(t, 800, 2)
	for _, e := range w.Entities {
		for _, c := range e.Concepts {
			root := w.rootOf(c)
			if root != string(e.Domain) {
				t.Errorf("entity %q: concept %q roots at %q, want %q", e.ID, c, root, e.Domain)
			}
		}
	}
}

func TestOracleJudgments(t *testing.T) {
	w := smallWorld(t, 800, 3)
	o := w.Oracle()
	var person *Entity
	for _, e := range w.Entities {
		if e.Domain == DomainPerson {
			person = e
			break
		}
	}
	if person == nil {
		t.Fatal("no person generated")
	}
	direct := person.Concepts[0]
	if !o.Judge(person.ID, direct) {
		t.Errorf("Judge(%q, %q) = false for direct concept", person.ID, direct)
	}
	// Ancestors count as correct.
	if parent := w.Concepts[direct].Parent; parent != "" {
		if !o.Judge(person.ID, parent) {
			t.Errorf("Judge for ancestor %q = false", parent)
		}
	}
	if !o.Judge(person.ID, "人物") {
		t.Error("Judge for domain root = false")
	}
	// Wrong domain concept is wrong.
	if o.Judge(person.ID, "城市") {
		t.Error("Judge accepted cross-domain concept 城市")
	}
	// Thematic junk is wrong.
	if o.Judge(person.ID, "音乐") {
		t.Error("Judge accepted thematic word 音乐")
	}
	// Self and empty are wrong.
	if o.Judge(person.ID, person.ID) || o.Judge("", "演员") {
		t.Error("Judge accepted degenerate pairs")
	}
}

func TestOracleModifierStripping(t *testing.T) {
	w := smallWorld(t, 500, 4)
	o := w.Oracle()
	for _, e := range w.Entities {
		if e.Domain != DomainPerson {
			continue
		}
		c := e.Concepts[0]
		if !o.Judge(e.ID, "中国"+c) {
			t.Errorf("Judge(%q, 中国%s) = false; labelers accept region-modified truth", e.ID, c)
		}
		if !o.Judge(e.ID, "著名"+c) {
			t.Errorf("Judge(%q, 著名%s) = false", e.ID, c)
		}
		break
	}
}

func TestOracleConceptEdges(t *testing.T) {
	w := smallWorld(t, 300, 5)
	o := w.Oracle()
	if !o.Judge("男演员", "演员") || !o.Judge("男演员", "人物") {
		t.Error("concept-concept ancestor edges should be correct")
	}
	if o.Judge("演员", "男演员") {
		t.Error("inverted concept edge judged correct")
	}
	if o.Judge("演员", "城市") {
		t.Error("cross-domain concept edge judged correct")
	}
}

func TestOracleAmbiguousTitleAnyMatch(t *testing.T) {
	w := smallWorld(t, 1500, 1)
	o := w.Oracle()
	for title, es := range w.byTitle {
		if len(es) < 2 {
			continue
		}
		// A bare-title pair is right if it matches any of the entities.
		if !o.Judge(title, es[0].Concepts[0]) {
			t.Errorf("Judge(%q, %q) = false for ambiguous title", title, es[0].Concepts[0])
		}
		return
	}
	t.Skip("no ambiguous title found")
}

func TestJobTitleBrackets(t *testing.T) {
	w := smallWorld(t, 2000, 1)
	o := w.Oracle()
	found := false
	for _, e := range w.Entities {
		if e.JobTitle == "" || e.Employer == nil {
			continue
		}
		found = true
		if !strings.HasPrefix(e.Bracket, e.Employer.Title) {
			t.Errorf("org-title bracket %q should start with employer %q", e.Bracket, e.Employer.Title)
		}
		if !o.Judge(e.ID, e.JobTitle) {
			t.Errorf("Judge(%q, %q) = false for job title", e.ID, e.JobTitle)
		}
		// The employer org itself is NOT a hypernym.
		if o.Judge(e.ID, e.Employer.Title) {
			t.Errorf("Judge accepted employer %q as hypernym", e.Employer.Title)
		}
		break
	}
	if !found {
		t.Skip("no org-title bracket generated at this size")
	}
}

func TestInfoboxSubjectsMatchIDs(t *testing.T) {
	w := smallWorld(t, 400, 6)
	for _, p := range w.Corpus().Pages {
		for _, tr := range p.Infobox {
			if tr.Subject != p.ID() {
				t.Fatalf("triple subject %q != page id %q", tr.Subject, p.ID())
			}
			if tr.Predicate == "" || tr.Object == "" {
				t.Fatalf("empty triple field: %+v", tr)
			}
		}
	}
}

func TestRomanizeName(t *testing.T) {
	got := romanizeName("刘德华")
	// 德 is not in the pinyin table, so this one fails romanization —
	// pick names composed of table characters instead.
	if got != "" {
		t.Logf("romanizeName(刘德华) = %q", got)
	}
	if got := romanizeName("王伟"); got != "Wang Wei" {
		t.Errorf("romanizeName(王伟) = %q, want Wang Wei", got)
	}
	if got := romanizeName("欧阳明"); got != "Ouyang Ming" {
		t.Errorf("romanizeName(欧阳明) = %q, want Ouyang Ming", got)
	}
	if got := romanizeName("王"); got != "" {
		t.Errorf("romanizeName(single rune) = %q, want empty", got)
	}
}

func TestPagesParseableAsEncyclopediaIDs(t *testing.T) {
	w := smallWorld(t, 300, 7)
	for _, p := range w.Corpus().Pages {
		title, bracket := encyclopedia.ParseEntityID(p.ID())
		if title != p.Title || bracket != p.Bracket {
			t.Fatalf("ParseEntityID(%q) = %q,%q; want %q,%q", p.ID(), title, bracket, p.Title, p.Bracket)
		}
	}
}
