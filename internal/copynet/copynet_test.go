package copynet

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestBuildVocab(t *testing.T) {
	v := BuildVocab([][]string{{"演员", "歌手", "演员"}, {"演员"}}, 10)
	if v.Size() != numReserved+2 {
		t.Fatalf("Size = %d, want %d", v.Size(), numReserved+2)
	}
	if !v.Known("演员") || !v.Known("歌手") {
		t.Error("vocab missing words")
	}
	if v.ID("演员") == UNK || v.ID("不存在") != UNK {
		t.Error("ID mapping wrong")
	}
	if v.Word(v.ID("演员")) != "演员" {
		t.Error("Word(ID) round trip failed")
	}
	// Frequency cap: most frequent words kept.
	v2 := BuildVocab([][]string{{"a", "a", "b"}}, 1)
	if !v2.Known("a") || v2.Known("b") {
		t.Error("vocab cap should keep the most frequent word")
	}
}

func TestVocabReservedSlots(t *testing.T) {
	v := BuildVocab(nil, 5)
	if v.Word(BOS) != "<bos>" || v.Word(EOS) != "<eos>" || v.Word(UNK) != "<unk>" {
		t.Error("reserved slots misplaced")
	}
	if v.Word(-1) != "<bad>" || v.Word(999) != "<bad>" {
		t.Error("out-of-range Word should return <bad>")
	}
}

func tinyConfig() Config {
	return Config{Dim: 8, Hidden: 10, Att: 8, MaxSrc: 8, MaxTgt: 2, Vocab: 50, UseCopy: true, Seed: 3}
}

// TestModelGradientCheck numerically validates trainStep's analytic
// gradients for a handful of parameters across every parameter tensor.
func TestModelGradientCheck(t *testing.T) {
	samples := []Sample{
		{Src: []string{"甲", "乙", "丙"}, Tgt: []string{"乙"}},
	}
	vocab := BuildVocab([][]string{{"甲", "乙", "丙"}}, 10)
	m := New(tinyConfig(), vocab)

	s := samples[0]
	m.trainStep(s) // fills gradients

	const eps = 1e-5
	for pi, pair := range m.params() {
		// Check up to 4 entries per tensor to keep runtime sane.
		step := len(pair.W)/4 + 1
		for i := 0; i < len(pair.W); i += step {
			orig := pair.W[i]
			pair.W[i] = orig + eps
			lp := m.Loss(s) * float64(len(s.Tgt)+1)
			pair.W[i] = orig - eps
			lm := m.Loss(s) * float64(len(s.Tgt)+1)
			pair.W[i] = orig
			num := (lp - lm) / (2 * eps)
			got := pair.G[i]
			if math.Abs(num-got) > 1e-3*(1+math.Abs(num)) {
				t.Errorf("param %d entry %d: analytic %.8f vs numeric %.8f", pi, i, got, num)
			}
		}
	}
}

// TestLearnsCopyTask trains on a task where the target is always the
// token after the marker 是: the copy mechanism must attend and copy,
// including tokens unseen in the (tiny) vocabulary.
func TestLearnsCopyTask(t *testing.T) {
	entities := []string{"红山", "白水", "青田", "黑河", "金沙", "紫云", "蓝湾", "绿洲"}
	concepts := []string{"城市", "河流", "山脉", "湖泊"}
	var samples []Sample
	for i := 0; i < 240; i++ {
		e := entities[i%len(entities)]
		c := concepts[(i/3)%len(concepts)]
		samples = append(samples, Sample{
			Src: []string{e, "是", "一座", c},
			Tgt: []string{c},
		})
	}
	var seqs [][]string
	for _, s := range samples {
		seqs = append(seqs, s.Src, s.Tgt)
	}
	cfg := tinyConfig()
	vocab := BuildVocab(seqs, cfg.Vocab)
	m := New(cfg, vocab)

	var losses []float64
	m.Train(samples, 6, 0.02, func(r TrainReport) { losses = append(losses, r.Loss) })
	if len(losses) != 6 {
		t.Fatalf("expected 6 epoch reports, got %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	hits := 0
	for _, s := range samples[:40] {
		if got := strings.Join(m.Generate(s.Src), ""); got == s.Tgt[0] {
			hits++
		}
	}
	if hits < 30 {
		t.Errorf("copy task accuracy %d/40, want ≥30", hits)
	}
}

// TestCopyHandlesOOV feeds a source containing an out-of-vocabulary
// concept; the copy path can emit it, the no-copy model cannot — the
// exact motivation the paper gives for CopyNet.
func TestCopyHandlesOOV(t *testing.T) {
	var samples []Sample
	concepts := []string{"城市", "河流", "山脉", "湖泊", "村庄", "岛屿"}
	for i := 0; i < 300; i++ {
		c := concepts[i%len(concepts)]
		samples = append(samples, Sample{
			Src: []string{"它", "是", "一座", c},
			Tgt: []string{c},
		})
	}
	cfg := tinyConfig()
	// Vocab too small to hold all concepts: last ones become OOV but
	// remain learnable via copy.
	cfg.Vocab = 6 // <bos>/<eos>/<unk> + 它/是/一座 + few concepts at most
	var seqs [][]string
	for _, s := range samples {
		seqs = append(seqs, s.Src)
	}
	vocab := BuildVocab(seqs, cfg.Vocab)
	oov := ""
	for _, c := range concepts {
		if !vocab.Known(c) {
			oov = c
			break
		}
	}
	if oov == "" {
		t.Fatal("test setup: expected an OOV concept")
	}
	m := New(cfg, vocab)
	m.Train(samples, 6, 0.02, nil)
	got := strings.Join(m.Generate([]string{"它", "是", "一座", oov}), "")
	if got != oov {
		t.Errorf("copy model generated %q for OOV target %q", got, oov)
	}

	// The no-copy model cannot ever emit the OOV surface form.
	cfg2 := cfg
	cfg2.UseCopy = false
	m2 := New(cfg2, vocab)
	m2.Train(samples, 4, 0.02, nil)
	got2 := strings.Join(m2.Generate([]string{"它", "是", "一座", oov}), "")
	if got2 == oov {
		t.Errorf("no-copy model produced OOV token %q; copy ablation is broken", oov)
	}
}

func TestGenerateEmptySource(t *testing.T) {
	vocab := BuildVocab(nil, 5)
	m := New(tinyConfig(), vocab)
	if got := m.Generate(nil); got != nil {
		t.Errorf("Generate(nil) = %v, want nil", got)
	}
}

func TestLossFiniteOnUnseenTokens(t *testing.T) {
	vocab := BuildVocab([][]string{{"甲"}}, 5)
	m := New(tinyConfig(), vocab)
	l := m.Loss(Sample{Src: []string{"未见过", "的", "词"}, Tgt: []string{"更没见过"}})
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Errorf("loss = %v, want finite", l)
	}
}

func TestTrainNoopOnEmptyInput(t *testing.T) {
	vocab := BuildVocab(nil, 5)
	m := New(tinyConfig(), vocab)
	m.Train(nil, 3, 0.01, func(TrainReport) { t.Error("progress called for empty dataset") })
	m.Train([]Sample{{Src: []string{"a"}, Tgt: []string{"b"}}}, 0, 0.01, func(TrainReport) { t.Error("progress called for zero epochs") })
}

func TestTargetSeqCap(t *testing.T) {
	m := New(tinyConfig(), BuildVocab(nil, 5)) // MaxTgt = 2
	got := m.targetSeq([]string{"a", "b", "c", "d"})
	if len(got) != 3 || got[2] != "<eos>" {
		t.Errorf("targetSeq = %v, want capped with <eos>", got)
	}
}

func ExampleModel_Generate() {
	samples := []Sample{}
	for i := 0; i < 200; i++ {
		samples = append(samples, Sample{Src: []string{"他", "是", "歌手"}, Tgt: []string{"歌手"}})
	}
	vocab := BuildVocab([][]string{{"他", "是", "歌手"}}, 10)
	m := New(Config{Dim: 8, Hidden: 10, Att: 8, MaxSrc: 8, MaxTgt: 2, Vocab: 10, UseCopy: true, Seed: 1}, vocab)
	m.Train(samples, 4, 0.02, nil)
	fmt.Println(strings.Join(m.Generate([]string{"他", "是", "歌手"}), ""))
	// Output: 歌手
}
