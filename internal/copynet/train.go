package copynet

import (
	"math"

	"cnprobase/internal/nn"
)

// params lists every parameter/gradient pair for the optimizer.
func (m *Model) params() []nn.ParamPair {
	pairs := []nn.ParamPair{
		{W: m.eIn.Data, G: m.gEIn.Data},
		{W: m.eOut.Data, G: m.gEOut.Data},
		{W: m.wInit.Data, G: m.gWInit.Data},
		{W: m.bInit, G: m.gBInit},
		{W: m.wa.Data, G: m.gWa.Data},
		{W: m.ua.Data, G: m.gUa.Data},
		{W: m.va, G: m.gVa},
		{W: m.wo.Data, G: m.gWo.Data},
		{W: m.bo, G: m.gBo},
		{W: m.wg, G: m.gWg},
		{W: m.bg, G: m.gBg},
	}
	return append(pairs, m.gru.Params()...)
}

// stepRecord couples a forward step with its training target.
type stepRecord struct {
	sf      *stepForward
	prob    float64
	genID   int
	matches []int
}

// trainStep runs forward + backward on one sample, accumulating
// gradients, and returns the per-token loss.
func (m *Model) trainStep(s Sample) float64 {
	ids, emb, mean, s0 := m.encode(s.Src)
	src := s.Src
	if len(src) > m.cfg.MaxSrc {
		src = src[:m.cfg.MaxSrc]
	}
	tgt := m.targetSeq(s.Tgt)

	// ---- forward ----
	var steps []stepRecord
	state := s0
	prev := BOS
	loss := 0.0
	for _, w := range tgt {
		sf := m.step(prev, state, emb)
		p, genID, matches := m.probOf(sf, src, w)
		loss += -math.Log(p + 1e-12)
		steps = append(steps, stepRecord{sf: sf, prob: p, genID: genID, matches: matches})
		state = sf.gruCache.H
		prev = m.vocab.ID(w)
	}

	// ---- backward ----
	h, d := m.cfg.Hidden, m.cfg.Dim
	dState := nn.NewVec(h)
	deAcc := make([]nn.Vec, len(emb))
	for i := range deAcc {
		deAcc[i] = nn.NewVec(d)
	}
	for t := len(steps) - 1; t >= 0; t-- {
		st := steps[t]
		sf := st.sf
		dp := -1.0 / (st.prob + 1e-12)
		g := sf.gate

		// Gate gradient: P = (1-g)·pgen[genID] + g·copyMass.
		dag := 0.0
		if m.cfg.UseCopy {
			copyMass := 0.0
			for _, i := range st.matches {
				copyMass += sf.alpha[i]
			}
			dg := dp * (copyMass - sf.pgen[st.genID])
			dag = dg * g * (1 - g)
		}

		// Generate path: softmax backward touching only pgen[genID].
		dlogits := nn.NewVec(m.vocab.Size())
		coeff := dp * (1 - g) * sf.pgen[st.genID]
		if coeff != 0 {
			for j := range dlogits {
				dlogits[j] = -coeff * sf.pgen[j]
			}
			dlogits[st.genID] += coeff
		}

		// dcat = Woᵀ·dlogits + wg·dag; parameter grads alongside.
		dcat := nn.NewVec(h + d)
		nn.MatTVecAdd(dcat, m.wo, dlogits)
		nn.AddOuter(m.gWo, dlogits, sf.cat)
		m.gBo.Add(dlogits)
		if dag != 0 {
			dcat.AddScaled(m.wg, dag)
			m.gWg.AddScaled(sf.cat, dag)
			m.gBg[0] += dag
		}
		ds := nn.Vec(dcat[:h]).Clone()
		ds.Add(dState)
		dctx := nn.Vec(dcat[h:])

		// Attention weight gradients: copy path + context path.
		dalpha := nn.NewVec(len(emb))
		if m.cfg.UseCopy {
			for _, i := range st.matches {
				dalpha[i] += dp * g
			}
		}
		for i, e := range emb {
			dalpha[i] += dctx.Dot(e)
			deAcc[i].AddScaled(dctx, sf.alpha[i])
		}
		// Softmax backward over attention scores.
		sum := 0.0
		for i := range dalpha {
			sum += dalpha[i] * sf.alpha[i]
		}
		for i := range emb {
			dsc := sf.alpha[i] * (dalpha[i] - sum)
			if dsc == 0 {
				continue
			}
			th := sf.tanhs[i]
			dtanh := nn.NewVec(m.cfg.Att)
			for k := range dtanh {
				dtanh[k] = dsc * m.va[k] * (1 - th[k]*th[k])
			}
			m.gVa.AddScaled(th, dsc)
			nn.AddOuter(m.gWa, dtanh, emb[i])
			nn.MatTVecAdd(deAcc[i], m.wa, dtanh)
			nn.AddOuter(m.gUa, dtanh, sf.gruCache.H)
			nn.MatTVecAdd(ds, m.ua, dtanh)
		}

		// GRU backward; decoder-input embedding gradient.
		dX, dHPrev := m.gru.Backward(ds, sf.gruCache)
		m.gEOut.Row(sf.prevID).Add(dX)
		dState = dHPrev
	}

	// Initial-state backward: s0 = tanh(WInit·mean + bInit).
	ds0pre := nn.NewVec(h)
	for i := range ds0pre {
		ds0pre[i] = dState[i] * (1 - s0[i]*s0[i])
	}
	nn.AddOuter(m.gWInit, ds0pre, mean)
	m.gBInit.Add(ds0pre)
	if len(emb) > 0 {
		dmean := nn.NewVec(d)
		nn.MatTVecAdd(dmean, m.wInit, ds0pre)
		inv := 1.0 / float64(len(emb))
		for i := range deAcc {
			deAcc[i].AddScaled(dmean, inv)
		}
	}
	for i, id := range ids {
		m.gEIn.Row(id).Add(deAcc[i])
	}
	return loss / float64(len(tgt))
}

// TrainReport carries per-epoch training progress.
type TrainReport struct {
	Epoch int
	Loss  float64
}

// Train fits the model on samples for the given number of epochs with
// Adam(lr), shuffling each epoch with the model's deterministic RNG.
// The optional progress callback receives one report per epoch.
func (m *Model) Train(samples []Sample, epochs int, lr float64, progress func(TrainReport)) {
	if len(samples) == 0 || epochs <= 0 {
		return
	}
	if m.opt == nil {
		m.opt = nn.NewAdam(lr)
		m.opt.Register(m.params()...)
	}
	m.opt.LR = lr
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			total += m.trainStep(samples[idx])
			m.opt.Step()
		}
		if progress != nil {
			progress(TrainReport{Epoch: e + 1, Loss: total / float64(len(samples))})
		}
	}
}

// Generate greedily decodes the concept token sequence for a segmented
// abstract. The mixed generate/copy distribution lets it emit source
// surface tokens that are out of vocabulary — the CopyNet property the
// paper adopts it for.
func (m *Model) Generate(src []string) []string {
	if len(src) == 0 {
		return nil
	}
	_, emb, _, state := m.encode(src)
	bounded := src
	if len(bounded) > m.cfg.MaxSrc {
		bounded = bounded[:m.cfg.MaxSrc]
	}
	prev := BOS
	var out []string
	for t := 0; t < m.cfg.MaxTgt; t++ {
		sf := m.step(prev, state, emb)
		// Copy mass per distinct source surface.
		mass := make(map[string]float64, len(bounded))
		if m.cfg.UseCopy {
			for i, w := range bounded {
				mass[w] += sf.gate * sf.alpha[i]
			}
		}
		bestWord, bestScore := "<eos>", math.Inf(-1)
		for j := 0; j < m.vocab.Size(); j++ {
			if j == BOS || j == UNK {
				continue
			}
			w := m.vocab.Word(j)
			score := (1-sf.gate)*sf.pgen[j] + mass[w]
			if score > bestScore {
				bestScore, bestWord = score, w
			}
		}
		for w, cm := range mass {
			if m.vocab.Known(w) {
				continue // already scored above
			}
			if cm > bestScore {
				bestScore, bestWord = cm, w
			}
		}
		if bestWord == "<eos>" {
			break
		}
		out = append(out, bestWord)
		prev = m.vocab.ID(bestWord)
		state = sf.gruCache.H
	}
	return out
}
