// Package copynet implements the paper's neural generation substrate
// (Section II): an encoder–decoder that generates an entity's concept
// from its abstract, with a copy mechanism over source tokens (after Gu
// et al. 2016) so out-of-vocabulary concepts can still be produced by
// copying them from the abstract. Training data comes from distant
// supervision: (abstract, bracket-derived hypernym) pairs.
//
// The architecture is intentionally compact — mean-pooled embedding
// encoder, GRU decoder, additive attention over source embeddings, and
// a learned generate/copy mixture gate — because it must train on a
// laptop in pure Go; the copy mechanism and the distant supervision are
// the properties the reproduction exercises.
package copynet

import "sort"

// Reserved vocabulary slots.
const (
	// BOS starts every decoded sequence.
	BOS = 0
	// EOS terminates a decoded sequence.
	EOS = 1
	// UNK replaces out-of-vocabulary tokens on the generate path; the
	// copy path can still produce their surface forms.
	UNK         = 2
	numReserved = 3
)

// Vocab maps tokens to dense IDs with reserved BOS/EOS/UNK slots.
type Vocab struct {
	words []string
	index map[string]int
}

// BuildVocab collects the most frequent tokens across sequences, up to
// max entries (not counting reserved slots). Ties break
// lexicographically for determinism.
func BuildVocab(sequences [][]string, max int) *Vocab {
	freq := make(map[string]int)
	for _, seq := range sequences {
		for _, w := range seq {
			if w != "" {
				freq[w]++
			}
		}
	}
	type wf struct {
		w string
		f int
	}
	all := make([]wf, 0, len(freq))
	for w, f := range freq {
		all = append(all, wf{w, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	v := &Vocab{
		words: make([]string, numReserved, numReserved+len(all)),
		index: make(map[string]int, len(all)+numReserved),
	}
	v.words[BOS], v.words[EOS], v.words[UNK] = "<bos>", "<eos>", "<unk>"
	for i, w := range v.words {
		v.index[w] = i
	}
	for _, e := range all {
		v.index[e.w] = len(v.words)
		v.words = append(v.words, e.w)
	}
	return v
}

// ID returns the vocabulary ID of w, or UNK.
func (v *Vocab) ID(w string) int {
	if id, ok := v.index[w]; ok {
		return id
	}
	return UNK
}

// Known reports whether w is in-vocabulary.
func (v *Vocab) Known(w string) bool {
	_, ok := v.index[w]
	return ok
}

// Word returns the surface form of id.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return "<bad>"
	}
	return v.words[id]
}

// Size returns the vocabulary size including reserved slots.
func (v *Vocab) Size() int { return len(v.words) }
