package copynet

import (
	"math"
	"math/rand"

	"cnprobase/internal/nn"
)

// Config sizes the model. Defaults (see DefaultConfig) train in seconds
// on a few thousand distant-supervision pairs.
type Config struct {
	Dim    int // embedding size
	Hidden int // GRU state size
	Att    int // attention space size
	MaxSrc int // source truncation length (tokens)
	MaxTgt int // decode length cap
	Vocab  int // max vocabulary entries
	// UseCopy toggles the copy mechanism; disabling it reproduces the
	// plain seq2seq OOV failure the paper cites as the reason for
	// CopyNet.
	UseCopy bool
	Seed    int64
}

// DefaultConfig returns the configuration used by the pipeline.
func DefaultConfig() Config {
	return Config{Dim: 24, Hidden: 32, Att: 24, MaxSrc: 24, MaxTgt: 3, Vocab: 1500, UseCopy: true, Seed: 7}
}

// Sample is one distant-supervision pair: segmented abstract tokens →
// segmented concept tokens.
type Sample struct {
	Src []string
	Tgt []string
}

// Model is the copy-mechanism encoder–decoder.
type Model struct {
	cfg   Config
	vocab *Vocab
	rng   *rand.Rand

	eIn, eOut   *nn.Mat // V×d embedding tables
	gEIn, gEOut *nn.Mat
	wInit       *nn.Mat // h×d
	gWInit      *nn.Mat
	bInit       nn.Vec
	gBInit      nn.Vec
	gru         *nn.GRUCell
	wa          *nn.Mat // a×d
	gWa         *nn.Mat
	ua          *nn.Mat // a×h
	gUa         *nn.Mat
	va          nn.Vec
	gVa         nn.Vec
	wo          *nn.Mat // V×(h+d)
	gWo         *nn.Mat
	bo          nn.Vec
	gBo         nn.Vec
	wg          nn.Vec // h+d
	gWg         nn.Vec
	bg          nn.Vec // length 1: gate bias (kept as a vector for Adam)
	gBg         nn.Vec

	opt *nn.Adam
}

// New builds an untrained model over the given vocabulary.
func New(cfg Config, vocab *Vocab) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := vocab.Size()
	m := &Model{
		cfg: cfg, vocab: vocab, rng: rng,
		eIn: nn.NewMatRand(v, cfg.Dim, rng), gEIn: nn.NewMat(v, cfg.Dim),
		eOut: nn.NewMatRand(v, cfg.Dim, rng), gEOut: nn.NewMat(v, cfg.Dim),
		wInit: nn.NewMatRand(cfg.Hidden, cfg.Dim, rng), gWInit: nn.NewMat(cfg.Hidden, cfg.Dim),
		bInit: nn.NewVec(cfg.Hidden), gBInit: nn.NewVec(cfg.Hidden),
		gru: nn.NewGRUCell(cfg.Dim, cfg.Hidden, rng),
		wa:  nn.NewMatRand(cfg.Att, cfg.Dim, rng), gWa: nn.NewMat(cfg.Att, cfg.Dim),
		ua: nn.NewMatRand(cfg.Att, cfg.Hidden, rng), gUa: nn.NewMat(cfg.Att, cfg.Hidden),
		va: nn.NewVec(cfg.Att), gVa: nn.NewVec(cfg.Att),
		wo: nn.NewMatRand(v, cfg.Hidden+cfg.Dim, rng), gWo: nn.NewMat(v, cfg.Hidden+cfg.Dim),
		bo: nn.NewVec(v), gBo: nn.NewVec(v),
		wg: nn.NewVec(cfg.Hidden + cfg.Dim), gWg: nn.NewVec(cfg.Hidden + cfg.Dim),
		bg: nn.NewVec(1), gBg: nn.NewVec(1),
	}
	for i := range m.va {
		m.va[i] = (rng.Float64()*2 - 1) * 0.3
	}
	for i := range m.wg {
		m.wg[i] = (rng.Float64()*2 - 1) * 0.3
	}
	return m
}

// Vocab returns the model's vocabulary.
func (m *Model) Vocab() *Vocab { return m.vocab }

// encode embeds the (truncated) source and returns token IDs, the
// embedding views and the initial decoder state with its pre-tanh
// cache.
func (m *Model) encode(src []string) (ids []int, emb []nn.Vec, mean, s0 nn.Vec) {
	if len(src) > m.cfg.MaxSrc {
		src = src[:m.cfg.MaxSrc]
	}
	ids = make([]int, len(src))
	emb = make([]nn.Vec, len(src))
	mean = nn.NewVec(m.cfg.Dim)
	for i, w := range src {
		ids[i] = m.vocab.ID(w)
		emb[i] = m.eIn.Row(ids[i])
		mean.Add(emb[i])
	}
	if len(src) > 0 {
		for i := range mean {
			mean[i] /= float64(len(src))
		}
	}
	pre := nn.MatVec(m.wInit, mean)
	pre.Add(m.bInit)
	s0 = nn.Tanh(pre)
	return ids, emb, mean, s0
}

// attention computes additive attention of state s over source
// embeddings, returning the per-position tanh caches, scores and
// softmax weights.
func (m *Model) attention(emb []nn.Vec, s nn.Vec) (tanhs []nn.Vec, alpha nn.Vec) {
	tanhs = make([]nn.Vec, len(emb))
	scores := nn.NewVec(len(emb))
	us := nn.MatVec(m.ua, s)
	for i, e := range emb {
		pre := nn.MatVec(m.wa, e)
		pre.Add(us)
		tanhs[i] = nn.Tanh(pre)
		scores[i] = m.va.Dot(tanhs[i])
	}
	return tanhs, nn.Softmax(scores)
}

// mixture computes the final distribution pieces for one decode step:
// generate softmax, copy weights and gate.
type stepForward struct {
	gruCache *nn.GRUCache
	tanhs    []nn.Vec
	alpha    nn.Vec
	ctx      nn.Vec
	cat      nn.Vec // [s; ctx]
	pgen     nn.Vec
	gate     float64
	prevID   int
}

func (m *Model) step(prevID int, sPrev nn.Vec, emb []nn.Vec) *stepForward {
	x := m.eOut.Row(prevID)
	gc := m.gru.Forward(x, sPrev)
	tanhs, alpha := m.attention(emb, gc.H)
	ctx := nn.NewVec(m.cfg.Dim)
	for i, e := range emb {
		ctx.AddScaled(e, alpha[i])
	}
	cat := append(gc.H.Clone(), ctx...)
	logits := nn.MatVec(m.wo, cat)
	logits.Add(m.bo)
	pgen := nn.Softmax(logits)
	gate := 0.0
	if m.cfg.UseCopy {
		gate = nn.SigmoidScalar(m.wg.Dot(cat) + m.bg[0])
	}
	return &stepForward{gruCache: gc, tanhs: tanhs, alpha: alpha, ctx: ctx, cat: cat, pgen: pgen, gate: gate, prevID: prevID}
}

// probOf computes the mixed probability of a target surface token.
// genID is the vocabulary slot the generate path flowed through (UNK
// for out-of-vocabulary targets); matches are the source positions
// whose surface equals the target (copy path).
func (m *Model) probOf(sf *stepForward, src []string, target string) (p float64, genID int, matches []int) {
	genID = m.vocab.ID(target) // UNK when OOV: keeps the no-copy loss finite
	p = (1 - sf.gate) * sf.pgen[genID]
	if m.cfg.UseCopy {
		for i, w := range src {
			if i >= len(sf.alpha) {
				break
			}
			if w == target {
				p += sf.gate * sf.alpha[i]
				matches = append(matches, i)
			}
		}
	}
	return p, genID, matches
}

// targetSeq appends the EOS sentinel and applies the decode-length cap.
func (m *Model) targetSeq(tgt []string) []string {
	out := append(append([]string(nil), tgt...), "<eos>")
	if len(out) > m.cfg.MaxTgt+1 {
		out = out[:m.cfg.MaxTgt+1]
		out[len(out)-1] = "<eos>"
	}
	return out
}

// Loss runs a forward pass and returns the per-token negative
// log-likelihood of the sample (no gradient side effects).
func (m *Model) Loss(s Sample) float64 {
	_, emb, _, state := m.encode(s.Src)
	loss := 0.0
	prev := BOS
	src := s.Src
	if len(src) > m.cfg.MaxSrc {
		src = src[:m.cfg.MaxSrc]
	}
	tgt := m.targetSeq(s.Tgt)
	for _, w := range tgt {
		sf := m.step(prev, state, emb)
		p, _, _ := m.probOf(sf, src, w)
		loss += -math.Log(p + 1e-12)
		state = sf.gruCache.H
		prev = m.vocab.ID(w)
	}
	return loss / float64(len(tgt))
}
