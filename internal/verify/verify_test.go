package verify

import (
	"math"
	"testing"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/ner"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

func testSeg() *segment.Segmenter {
	return segment.New(append(lexicon.BaseDictionary(), "机构", "教育机构"))
}

func cand(hypo, hyper string) extract.Candidate {
	return extract.Candidate{Hypo: hypo, Hyper: hyper, Source: taxonomy.SourceTag, Score: 1}
}

// emptyContext builds a minimal context with no corpus evidence.
func emptyContext(cands []extract.Candidate) *Evidence {
	return NewContext(&encyclopedia.Corpus{}, cands, ner.NewSupport(), ner.New())
}

func TestThematicFilter(t *testing.T) {
	cands := []extract.Candidate{cand("刘德华", "演员"), cand("刘德华", "音乐")}
	opts := Options{EnableSyntax: true}
	kept, rep := Verify(cands, emptyContext(cands), testSeg(), opts)
	if len(kept) != 1 || kept[0].Hyper != "演员" {
		t.Fatalf("kept = %+v, want only 演员", kept)
	}
	if rep.Rejected[ReasonThematic] != 1 {
		t.Errorf("thematic rejections = %d, want 1", rep.Rejected[ReasonThematic])
	}
}

func TestHeadPositionRule(t *testing.T) {
	// isA(演员工会, 演员) dies — the hypernym's head occurs at the
	// hyponym's non-head (prefix) position, the 教育机构/教育 pattern
	// of the paper. isA(男演员, 演员) survives: suffix position is the
	// head.
	cands := []extract.Candidate{
		cand("演员工会", "演员"),
		cand("男演员", "演员"),
	}
	opts := Options{EnableSyntax: true}
	kept, rep := Verify(cands, emptyContext(cands), testSeg(), opts)
	if len(kept) != 1 || kept[0].Hypo != "男演员" {
		t.Fatalf("kept = %+v, want only 男演员→演员", kept)
	}
	if rep.Rejected[ReasonHeadPosition] != 1 {
		t.Errorf("head rejections = %d, want 1", rep.Rejected[ReasonHeadPosition])
	}
}

func TestHeadPositionRuleUsesTitleOfEntityID(t *testing.T) {
	// The rule must strip the disambiguation bracket before looking for
	// the head inside the hyponym surface.
	c := cand(encyclopedia.EntityID("演员工会", "组织"), "演员")
	kept, _ := Verify([]extract.Candidate{c}, emptyContext(nil), testSeg(), Options{EnableSyntax: true})
	if len(kept) != 0 {
		t.Errorf("kept = %+v, want rejection", kept)
	}
}

func TestNEFilter(t *testing.T) {
	sup := ner.NewSupport()
	for i := 0; i < 10; i++ {
		sup.ObserveWord("北京", true) // always a named entity in corpus
		sup.ObserveWord("演员", false)
	}
	cands := []extract.Candidate{cand("刘德华", "北京"), cand("刘德华", "演员")}
	ctx := NewContext(&encyclopedia.Corpus{}, cands, sup, ner.New())
	opts := Options{EnableNE: true, NEThreshold: 0.5}
	kept, rep := Verify(cands, ctx, testSeg(), opts)
	if len(kept) != 1 || kept[0].Hyper != "演员" {
		t.Fatalf("kept = %+v, want only 演员", kept)
	}
	if rep.Rejected[ReasonNE] != 1 {
		t.Errorf("NE rejections = %d, want 1", rep.Rejected[ReasonNE])
	}
}

func TestNESupportNoisyOr(t *testing.T) {
	// s = 1-(1-s1)(1-s2): corpus and taxonomy evidence amplify.
	corp := &encyclopedia.Corpus{Pages: []encyclopedia.Page{
		{Title: "泪花", Bracket: "歌曲"},
		{Title: "某人"},
	}}
	sup := ner.NewSupport()
	sup.ObserveWord("泪花", true)
	sup.ObserveWord("泪花", false) // s1 = 0.5
	cands := []extract.Candidate{
		cand(encyclopedia.EntityID("泪花", "歌曲"), "歌曲"),
		cand("某人", "泪花"), // the entity title used as a hypernym
	}
	ctx := NewContext(corp, cands, sup, ner.New())
	s1 := sup.S1("泪花")
	s2 := ctx.S2("泪花")
	if s2 <= 0 {
		t.Fatalf("S2(泪花) = %v, want positive (it is a page title used as hyponym)", s2)
	}
	want := 1 - (1-s1)*(1-s2)
	if got := ctx.NESupport("泪花"); math.Abs(got-want) > 1e-12 {
		t.Errorf("NESupport = %v, want %v", got, want)
	}
	if ctx.NESupport("泪花") <= s1 {
		t.Error("noisy-or must amplify beyond s1 alone")
	}
}

func TestS2UnknownWord(t *testing.T) {
	ctx := emptyContext(nil)
	if got := ctx.S2("不存在"); got != 0 {
		t.Errorf("S2(unknown) = %v, want 0", got)
	}
}

// incompatibleFixture builds a corpus where 演员 and 图书 are
// incompatible (disjoint hyponyms, disjoint attributes) and one entity
// is wrongly tagged with both.
func incompatibleFixture() (*encyclopedia.Corpus, []extract.Candidate) {
	c := &encyclopedia.Corpus{}
	var cands []extract.Candidate
	person := func(i int) string { return encyclopedia.EntityID("演员甲"+string(rune('a'+i)), "") }
	book := func(i int) string { return encyclopedia.EntityID("图书乙"+string(rune('a'+i)), "") }
	for i := 0; i < 8; i++ {
		id := person(i)
		c.Pages = append(c.Pages, encyclopedia.Page{
			Title: id,
			Infobox: []encyclopedia.Triple{
				{Subject: id, Predicate: "职业", Object: "演员"},
				{Subject: id, Predicate: "出生日期", Object: "1980年"},
			},
		})
		cands = append(cands, cand(id, "演员"))
	}
	for i := 0; i < 8; i++ {
		id := book(i)
		c.Pages = append(c.Pages, encyclopedia.Page{
			Title: id,
			Infobox: []encyclopedia.Triple{
				{Subject: id, Predicate: "出版社", Object: "某社"},
				{Subject: id, Predicate: "页数", Object: "300"},
			},
		})
		cands = append(cands, cand(id, "图书"))
	}
	// The conflicted entity: attribute profile of a person, but tagged
	// as both 演员 and 图书.
	bad := encyclopedia.EntityID("争议者", "")
	c.Pages = append(c.Pages, encyclopedia.Page{
		Title: bad,
		Infobox: []encyclopedia.Triple{
			{Subject: bad, Predicate: "职业", Object: "演员"},
			{Subject: bad, Predicate: "出生日期", Object: "1990年"},
		},
	})
	cands = append(cands, cand(bad, "演员"), cand(bad, "图书"))
	return c, cands
}

func TestIncompatibleConceptsFilter(t *testing.T) {
	c, cands := incompatibleFixture()
	ctx := NewContext(c, cands, ner.NewSupport(), ner.New())
	opts := Options{
		EnableIncompatible: true,
		JaccardMax:         0.2,
		CosineMax:          0.6,
		MinConceptSupport:  3,
	}
	kept, rep := Verify(cands, ctx, testSeg(), opts)
	if rep.IncompatiblePairs == 0 {
		t.Fatal("no incompatible pairs detected")
	}
	if rep.Rejected[ReasonIncompatible] != 1 {
		t.Fatalf("incompatible rejections = %d, want 1 (report %+v)", rep.Rejected[ReasonIncompatible], rep)
	}
	// The person-profile entity must keep 演员 and lose 图书.
	for _, k := range kept {
		if k.Hypo == encyclopedia.EntityID("争议者", "") && k.Hyper == "图书" {
			t.Error("KL resolution kept the wrong concept 图书")
		}
	}
}

func TestVerifyDisabledKeepsAll(t *testing.T) {
	c, cands := incompatibleFixture()
	cands = append(cands, cand("某人", "音乐"))
	ctx := NewContext(c, cands, ner.NewSupport(), ner.New())
	kept, rep := Verify(cands, ctx, testSeg(), Options{})
	if len(kept) != len(cands) {
		t.Errorf("kept %d of %d with all filters off", len(kept), len(cands))
	}
	if rep.Kept != len(cands) || rep.Input != len(cands) {
		t.Errorf("report wrong: %+v", rep)
	}
}

func TestMathHelpers(t *testing.T) {
	a := map[string]float64{"x": 0.5, "y": 0.5}
	b := map[string]float64{"x": 0.5, "y": 0.5}
	if got := cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine identical = %v, want 1", got)
	}
	c := map[string]float64{"z": 1}
	if got := cosine(a, c); got != 0 {
		t.Errorf("cosine disjoint = %v, want 0", got)
	}
	if got := cosine(nil, a); got != 0 {
		t.Errorf("cosine empty = %v, want 0", got)
	}

	s1 := map[string]bool{"a": true, "b": true}
	s2 := map[string]bool{"b": true, "c": true}
	if got := jaccard(s1, s2); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v, want 1/3", got)
	}
	if got := jaccard(nil, s1); got != 0 {
		t.Errorf("jaccard empty = %v", got)
	}

	p := map[string]float64{"x": 1}
	q := map[string]float64{"x": 1}
	if got := KL(p, q); math.Abs(got) > 1e-12 {
		t.Errorf("KL identical = %v, want 0", got)
	}
	far := map[string]float64{"y": 1}
	if KL(p, far) <= KL(p, q) {
		t.Error("KL to disjoint distribution must exceed KL to itself")
	}
}

func TestDefaultOptionsEnablesAll(t *testing.T) {
	o := DefaultOptions()
	if !o.EnableIncompatible || !o.EnableNE || !o.EnableSyntax {
		t.Error("default options must enable all three strategies")
	}
}
