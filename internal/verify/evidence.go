package verify

import (
	"sort"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
)

// Evidence carries the evidence the verification strategies consult.
// Unlike the one-shot context it evolved from, an Evidence is
// persistent and incrementally updatable: the pipeline builds it once
// (NewContext) and then folds each crawl batch forward through
// AddPages / FoldSupport / AddCandidates / RemoveCandidates, so an
// update touches only the delta instead of re-deriving evidence from
// every page ever crawled. Every mutation records which concepts,
// entities and words it touched; VerifyDelta consumes those dirty sets
// to re-verify only the candidates whose evidence actually changed.
//
// NewContext remains the from-scratch assembly path and is the oracle
// the incremental operations are pinned against (TestEvidenceMatchesOracle).
type Evidence struct {
	// EntityAttrs maps entity ID → normalized infobox-predicate
	// distribution v_att(e).
	EntityAttrs map[string]map[string]float64
	// ConceptAttrs maps concept → aggregated v_att(c) over its
	// candidate hyponyms.
	ConceptAttrs map[string]map[string]float64
	// Hyponyms maps concept → candidate hyponym set.
	Hyponyms map[string]map[string]bool
	// Support provides the corpus NE statistic s1. It is an
	// accumulator: updates fold delta observations in via FoldSupport.
	Support *ner.Support
	// Recognizer classifies isolated words.
	Recognizer *ner.Recognizer
	// EntityTitles is the set of page titles (taxonomy NE evidence s2).
	EntityTitles map[string]bool

	// titleEdges / hyperEdges count taxonomy occurrences of a word as
	// an entity title vs as a hypernym, for s2.
	titleEdges map[string]int
	hyperEdges map[string]int
	// titleByID maps page ID → page title, so candidates arriving
	// before or after their hyponym's page still count toward
	// titleEdges exactly as a from-scratch assembly would count them.
	titleByID map[string]string
	// byHypo maps hypo → set of hypers: the current candidate set,
	// inverted. It mirrors Hyponyms and exists so per-entity work
	// (incompatibility resolution, dirty propagation) is O(degree).
	byHypo map[string]map[string]bool
	// entityHypos maps concept → the subset of its hyponyms that are
	// known pages, maintained incrementally for consumers that need
	// entity-only extents (subsumption derivation) without rebuilding
	// filtered sets from the store every batch.
	entityHypos map[string]map[string]bool
	// cooc counts, per canonical concept pair, how many hyponyms the
	// two concepts share — exactly the intersection strategy III-A's
	// Jaccard needs, maintained on candidate add/remove so pair
	// statistics cost O(1) instead of a set scan. coocPartners indexes
	// it by concept for enumeration. entityCooc / entityCoocPartners
	// are the page-only counterparts subsumption derivation reads.
	cooc               map[pairKey]int
	coocPartners       map[string]map[string]bool
	entityCooc         map[pairKey]int
	entityCoocPartners map[string]map[string]bool
	// entityDirty accumulates the concepts whose entity extent changed
	// since the last TakeEntityDirtyConcepts — the re-derivation
	// frontier for subsumption.
	entityDirty map[string]bool

	// ---- verification caches, maintained by VerifyDelta ----

	// heads caches the hypernym's lexical head as of the last
	// verification (segmentation costs drift as statistics accumulate,
	// so heads are re-derived each pass and compared).
	heads map[string]string
	// neVerdict caches the strategy-III-B rejection verdict per
	// hypernym (NESupport > threshold); only a flipped verdict makes a
	// hypernym's candidates affected.
	neVerdict map[string]bool
	// incompatible holds the current strategy-III-A pair statuses.
	incompatible map[pairKey]bool
	// killed holds the current strategy-III-A kill set.
	killed map[edgeKey]bool
	// decisions caches the last verification decision per candidate
	// pair ("" = kept); unaffected candidates reuse it.
	decisions map[edgeKey]Reason
	// lastOpts remembers the thresholds the caches were computed
	// under; a change invalidates everything.
	lastOpts Options
	haveOpts bool

	// ---- dirt accumulated since the last VerifyDelta ----

	// dirtyConcepts: concepts whose hyponym set or aggregated
	// attribute distribution changed (pair statuses and kill sets
	// involving them must be recomputed).
	dirtyConcepts map[string]bool
	// attrDirty: concepts whose ConceptAttrs aggregate is stale.
	attrDirty map[string]bool
	// dirtyEntities: entities whose claimed-concept set or attribute
	// distribution changed (their kill entries must be recomputed).
	dirtyEntities map[string]bool
	// dirtyNE: words whose NESupport inputs (s1 counts, title/hyper
	// edge counts, entity-title membership) changed.
	dirtyNE map[string]bool
	// allDirty forces a full recompute on the next pass (cold caches:
	// freshly constructed, snapshot-loaded, or option change).
	allDirty bool
}

// NewEvidence returns an empty Evidence over the given support
// accumulator and recognizer, with cold caches (the first verification
// pass recomputes everything).
func NewEvidence(support *ner.Support, rec *ner.Recognizer) *Evidence {
	return &Evidence{
		EntityAttrs:        make(map[string]map[string]float64),
		ConceptAttrs:       make(map[string]map[string]float64),
		Hyponyms:           make(map[string]map[string]bool),
		Support:            support,
		Recognizer:         rec,
		EntityTitles:       make(map[string]bool),
		titleEdges:         make(map[string]int),
		hyperEdges:         make(map[string]int),
		titleByID:          make(map[string]string),
		byHypo:             make(map[string]map[string]bool),
		entityHypos:        make(map[string]map[string]bool),
		cooc:               make(map[pairKey]int),
		coocPartners:       make(map[string]map[string]bool),
		entityCooc:         make(map[pairKey]int),
		entityCoocPartners: make(map[string]map[string]bool),
		entityDirty:        make(map[string]bool),
		heads:              make(map[string]string),
		neVerdict:          make(map[string]bool),
		incompatible:       make(map[pairKey]bool),
		killed:             make(map[edgeKey]bool),
		decisions:          make(map[edgeKey]Reason),
		dirtyConcepts:      make(map[string]bool),
		attrDirty:          make(map[string]bool),
		dirtyEntities:      make(map[string]bool),
		dirtyNE:            make(map[string]bool),
		allDirty:           true,
	}
}

// NewContext assembles verification evidence from the corpus and the
// merged candidate set in one shot — the from-scratch path the
// incremental operations are equivalence-tested against.
func NewContext(c *encyclopedia.Corpus, cands []extract.Candidate, support *ner.Support, rec *ner.Recognizer) *Evidence {
	ev := NewEvidence(support, rec)
	ev.AddPages(c.Pages)
	ev.AddCandidates(cands)
	ev.refreshConceptAttrs()
	return ev
}

// MarkAllDirty invalidates every verification cache: the next
// VerifyDelta recomputes heads, pair statuses, kill sets and all
// candidate decisions from the current evidence.
func (ev *Evidence) MarkAllDirty() { ev.allDirty = true }

// AddPages folds newly crawled pages into the page-derived evidence:
// entity titles, the ID→title mapping, and the per-entity attribute
// distributions. Re-crawled IDs keep their title mapping and overwrite
// their attribute distribution, exactly like a from-scratch pass over
// the concatenated corpus.
func (ev *Evidence) AddPages(pages []encyclopedia.Page) {
	for i := range pages {
		p := &pages[i]
		id := p.ID()
		if _, seen := ev.titleByID[id]; !seen {
			ev.titleByID[id] = p.Title
			// Candidates that referenced this hyponym before its page
			// arrived now count as title occurrences, and the hyponym
			// joins its concepts' entity extents.
			if n := len(ev.byHypo[id]); n > 0 {
				ev.titleEdges[p.Title] += n
				ev.dirtyNE[p.Title] = true
				// The late-arriving page joins every claiming
				// concept's entity extent, pairwise.
				var cs []string
				for hyper := range ev.byHypo[id] {
					ev.addEntityHypo(hyper, id)
					cs = append(cs, hyper)
				}
				for i := 0; i < len(cs); i++ {
					for j := i + 1; j < len(cs); j++ {
						ev.bumpEntityCooc(cs[i], cs[j], 1)
					}
				}
			}
		}
		if !ev.EntityTitles[p.Title] {
			ev.EntityTitles[p.Title] = true
			ev.dirtyNE[p.Title] = true
		}
		if len(p.Infobox) == 0 {
			continue
		}
		dist := make(map[string]float64, len(p.Infobox))
		for _, t := range p.Infobox {
			dist[t.Predicate]++
		}
		normalize(dist)
		ev.EntityAttrs[id] = dist
		ev.dirtyEntities[id] = true
		for hyper := range ev.byHypo[id] {
			ev.markConceptDirty(hyper)
		}
	}
}

// ImportEntity restores one page's evidence from a snapshot: the
// ID→title mapping and (when non-empty) the attribute distribution.
// It is the deserialization counterpart of AddPages and must run
// before AddCandidates so edge counting sees the title mapping.
func (ev *Evidence) ImportEntity(id, title string, attrs map[string]float64) {
	ev.titleByID[id] = title
	ev.EntityTitles[title] = true
	if len(attrs) > 0 {
		ev.EntityAttrs[id] = attrs
	}
}

// EntityEvidence is one page's persistent evidence, as exported for
// snapshots.
type EntityEvidence struct {
	ID    string
	Title string
	// Attrs is the normalized infobox-predicate distribution; empty
	// for pages without an infobox.
	Attrs map[string]float64
}

// ExportEntities returns the page-derived evidence sorted by entity
// ID, for deterministic serialization.
func (ev *Evidence) ExportEntities() []EntityEvidence {
	out := make([]EntityEvidence, 0, len(ev.titleByID))
	for id, title := range ev.titleByID {
		out = append(out, EntityEvidence{ID: id, Title: title, Attrs: ev.EntityAttrs[id]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FoldSupport merges delta NE-support observations into the persistent
// accumulator and marks every touched word NE-dirty, so candidates
// whose hypernym's s1 moved are re-verified.
func (ev *Evidence) FoldSupport(delta *ner.Support) {
	if delta == nil {
		return
	}
	ev.Support.Merge(delta)
	for _, w := range delta.Words() {
		ev.dirtyNE[w] = true
	}
}

// AddCandidates folds candidate pairs into the edge-derived evidence;
// pairs already present are ignored (the evidence is per distinct
// (hypo, hyper) pair, matching the deduplicated set a from-scratch
// assembly consumes). Returns how many pairs were new.
func (ev *Evidence) AddCandidates(cands []extract.Candidate) int {
	added := 0
	for _, c := range cands {
		hypers := ev.byHypo[c.Hypo]
		if hypers == nil {
			hypers = make(map[string]bool)
			ev.byHypo[c.Hypo] = hypers
		}
		if hypers[c.Hyper] {
			continue
		}
		_, isPage := ev.titleByID[c.Hypo]
		for d := range hypers {
			ev.bumpCooc(c.Hyper, d, 1)
			if isPage {
				ev.bumpEntityCooc(c.Hyper, d, 1)
			}
		}
		hypers[c.Hyper] = true
		hs := ev.Hyponyms[c.Hyper]
		if hs == nil {
			hs = make(map[string]bool)
			ev.Hyponyms[c.Hyper] = hs
		}
		hs[c.Hypo] = true
		ev.hyperEdges[c.Hyper]++
		ev.dirtyNE[c.Hyper] = true
		ev.markConceptDirty(c.Hyper)
		ev.dirtyEntities[c.Hypo] = true
		if t, ok := ev.titleByID[c.Hypo]; ok {
			ev.titleEdges[t]++
			ev.dirtyNE[t] = true
			ev.addEntityHypo(c.Hyper, c.Hypo)
		}
		added++
	}
	return added
}

// bumpCooc adjusts the shared-hyponym count of a concept pair,
// maintaining the partner index and dropping entries that reach zero.
func (ev *Evidence) bumpCooc(a, b string, delta int) {
	pk := orderedPair(a, b)
	n := ev.cooc[pk] + delta
	if n <= 0 {
		delete(ev.cooc, pk)
		ev.dropPartner(a, b)
		ev.dropPartner(b, a)
		return
	}
	ev.cooc[pk] = n
	ev.addPartner(a, b)
	ev.addPartner(b, a)
}

func (ev *Evidence) addPartner(a, b string) {
	m := ev.coocPartners[a]
	if m == nil {
		m = make(map[string]bool)
		ev.coocPartners[a] = m
	}
	m[b] = true
}

func (ev *Evidence) dropPartner(a, b string) {
	if m := ev.coocPartners[a]; m != nil {
		delete(m, b)
		if len(m) == 0 {
			delete(ev.coocPartners, a)
		}
	}
}

// bumpEntityCooc adjusts the page-only shared-hyponym count of a
// concept pair — the overlap subsumption derivation reads.
func (ev *Evidence) bumpEntityCooc(a, b string, delta int) {
	pk := orderedPair(a, b)
	n := ev.entityCooc[pk] + delta
	if n <= 0 {
		delete(ev.entityCooc, pk)
		ev.dropEntityPartner(a, b)
		ev.dropEntityPartner(b, a)
		return
	}
	ev.entityCooc[pk] = n
	ev.addEntityPartner(a, b)
	ev.addEntityPartner(b, a)
}

func (ev *Evidence) addEntityPartner(a, b string) {
	m := ev.entityCoocPartners[a]
	if m == nil {
		m = make(map[string]bool)
		ev.entityCoocPartners[a] = m
	}
	m[b] = true
}

func (ev *Evidence) dropEntityPartner(a, b string) {
	if m := ev.entityCoocPartners[a]; m != nil {
		delete(m, b)
		if len(m) == 0 {
			delete(ev.entityCoocPartners, a)
		}
	}
}

// EntityOverlap returns how many known pages the two concepts share.
func (ev *Evidence) EntityOverlap(a, b string) int { return ev.entityCooc[orderedPair(a, b)] }

// EntityPartners returns the concepts sharing at least one page with
// c (the evidence's own index — read-only).
func (ev *Evidence) EntityPartners(c string) map[string]bool { return ev.entityCoocPartners[c] }

// TakeEntityDirtyConcepts returns and clears the set of concepts whose
// entity extent changed since the last call — the re-derivation
// frontier for subsumption. After construction or a snapshot load the
// set covers every concept with entity hyponyms, so the first
// derivation pass evaluates everything.
func (ev *Evidence) TakeEntityDirtyConcepts() map[string]bool {
	out := ev.entityDirty
	ev.entityDirty = make(map[string]bool)
	return out
}

// addEntityHypo records that the known page hypo sits under hyper.
func (ev *Evidence) addEntityHypo(hyper, hypo string) {
	hs := ev.entityHypos[hyper]
	if hs == nil {
		hs = make(map[string]bool)
		ev.entityHypos[hyper] = hs
	}
	hs[hypo] = true
	ev.entityDirty[hyper] = true
}

// EntityHyponyms returns the subset of a concept's hyponyms that are
// known pages. The returned map is the evidence's own index — callers
// must treat it as read-only.
func (ev *Evidence) EntityHyponyms(concept string) map[string]bool {
	return ev.entityHypos[concept]
}

// RemoveCandidates retracts candidate pairs from the edge-derived
// evidence — the counterpart of AddCandidates, applied after a
// verification pass rejects previously kept pairs. Unknown pairs are
// ignored.
func (ev *Evidence) RemoveCandidates(cands []extract.Candidate) {
	for _, c := range cands {
		hypers := ev.byHypo[c.Hypo]
		if hypers == nil || !hypers[c.Hyper] {
			continue
		}
		delete(hypers, c.Hyper)
		_, isPage := ev.titleByID[c.Hypo]
		for d := range hypers {
			ev.bumpCooc(c.Hyper, d, -1)
			if isPage {
				ev.bumpEntityCooc(c.Hyper, d, -1)
			}
		}
		if len(hypers) == 0 {
			delete(ev.byHypo, c.Hypo)
		}
		if hs := ev.Hyponyms[c.Hyper]; hs != nil {
			delete(hs, c.Hypo)
			if len(hs) == 0 {
				delete(ev.Hyponyms, c.Hyper)
			}
		}
		if ev.hyperEdges[c.Hyper]--; ev.hyperEdges[c.Hyper] <= 0 {
			delete(ev.hyperEdges, c.Hyper)
		}
		ev.dirtyNE[c.Hyper] = true
		ev.markConceptDirty(c.Hyper)
		ev.dirtyEntities[c.Hypo] = true
		if t, ok := ev.titleByID[c.Hypo]; ok {
			if ev.titleEdges[t]--; ev.titleEdges[t] <= 0 {
				delete(ev.titleEdges, t)
			}
			ev.dirtyNE[t] = true
			if hs := ev.entityHypos[c.Hyper]; hs != nil {
				delete(hs, c.Hypo)
				if len(hs) == 0 {
					delete(ev.entityHypos, c.Hyper)
				}
				ev.entityDirty[c.Hyper] = true
			}
		}
		k := edgeKey{c.Hypo, c.Hyper}
		delete(ev.decisions, k)
		delete(ev.killed, k)
	}
}

// markConceptDirty flags a concept for both attribute re-aggregation
// and pair/kill recomputation.
func (ev *Evidence) markConceptDirty(c string) {
	ev.dirtyConcepts[c] = true
	ev.attrDirty[c] = true
}

// refreshConceptAttrs re-aggregates ConceptAttrs for every
// attribute-dirty concept (all of them when the caches are cold).
func (ev *Evidence) refreshConceptAttrs() {
	if ev.allDirty {
		ev.ConceptAttrs = make(map[string]map[string]float64, len(ev.Hyponyms))
		for c := range ev.Hyponyms {
			ev.refreshConcept(c)
		}
		ev.attrDirty = make(map[string]bool)
		return
	}
	for c := range ev.attrDirty {
		ev.refreshConcept(c)
	}
	ev.attrDirty = make(map[string]bool)
}

// refreshConcept recomputes one concept's aggregated attribute
// distribution, deleting the entry when no hyponym carries attributes
// (matching the from-scratch aggregation, which skips such concepts).
func (ev *Evidence) refreshConcept(c string) {
	hypos := ev.Hyponyms[c]
	agg := make(map[string]float64)
	n := 0
	for h := range hypos {
		if d, ok := ev.EntityAttrs[h]; ok {
			for k, v := range d {
				agg[k] += v
			}
			n++
		}
	}
	if n == 0 {
		delete(ev.ConceptAttrs, c)
		return
	}
	normalize(agg)
	ev.ConceptAttrs[c] = agg
}

// S2 is the taxonomy NE support of the paper: the fraction of a word's
// taxonomy occurrences in which it behaves as an entity (a page title
// appearing as a hyponym) rather than as a concept (a hypernym).
func (ev *Evidence) S2(w string) float64 {
	te, he := ev.titleEdges[w], ev.hyperEdges[w]
	if !ev.EntityTitles[w] || te+he == 0 {
		return 0
	}
	return float64(te) / float64(te+he)
}

// NESupport combines corpus and taxonomy support with the paper's
// noisy-or (Equation 2): s(H) = 1 − (1−s1)(1−s2).
func (ev *Evidence) NESupport(h string) float64 {
	s1 := ev.Support.S1(h)
	s2 := ev.S2(h)
	return 1 - (1-s1)*(1-s2)
}
