package verify

import (
	"sort"
	"strings"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/par"
	"cnprobase/internal/runes"
	"cnprobase/internal/segment"
)

// Reason identifies which strategy rejected a candidate.
type Reason string

// Rejection reasons.
const (
	ReasonIncompatible Reason = "incompatible-concept"
	ReasonNE           Reason = "named-entity-hypernym"
	ReasonThematic     Reason = "thematic-word"
	ReasonHeadPosition Reason = "head-in-nonhead-position"
)

// Report summarizes a verification run.
type Report struct {
	Input    int
	Kept     int
	Rejected map[Reason]int
	// IncompatiblePairs is the number of incompatible concept pairs
	// detected in step one of strategy III-A.
	IncompatiblePairs int
	// Reverified is how many candidate decisions this pass actually
	// recomputed (equal to Input on a full pass; on an incremental
	// pass it is the fresh + affected subset).
	Reverified int
}

// Verify applies the enabled strategies to the full candidate set and
// returns the surviving candidates plus a report — the one-shot path
// the build pipeline uses. It invalidates the evidence caches first,
// so every decision is recomputed from the current evidence; the
// survivor order matches the candidate order exactly.
func Verify(cands []extract.Candidate, ev *Evidence, seg *segment.Segmenter, opts Options) ([]extract.Candidate, Report) {
	ev.MarkAllDirty()
	return VerifyDelta(cands, ev, seg, opts)
}

// VerifyDelta applies the enabled strategies over the candidate set,
// recomputing decisions only for candidates whose evidence changed
// since the last pass: fresh pairs, pairs whose hypernym's NE support
// or lexical head moved, and pairs touched by incompatibility changes
// (dirty concepts, dirty entities). Everything else reuses its cached
// decision — the O(delta) path incremental updates ride on. cands must
// be the deduplicated candidate set the evidence was built over (the
// pairs previously added minus those removed); the kept slice comes
// back in cands order, exactly as a full Verify would produce it.
func VerifyDelta(cands []extract.Candidate, ev *Evidence, seg *segment.Segmenter, opts Options) ([]extract.Candidate, Report) {
	rep := Report{Input: len(cands), Rejected: make(map[Reason]int)}

	// Threshold changes invalidate every cached status.
	norm := opts
	norm.Workers = 0
	if !ev.haveOpts || ev.lastOpts != norm {
		ev.allDirty = true
		ev.lastOpts, ev.haveOpts = norm, true
	}

	ev.refreshConceptAttrs()

	// Re-derive hypernym lexical heads: segmentation costs move as
	// corpus statistics accumulate, so heads are recomputed for every
	// distinct hypernym (cheap: the hypernym vocabulary is tiny next
	// to the corpus) and pairs under a changed head are re-verified.
	dirtyHead := make(map[string]bool)
	if opts.EnableSyntax {
		heads := make(map[string]string, len(ev.Hyponyms))
		for hyper := range ev.Hyponyms {
			head := lexicalHead(hyper, seg)
			heads[hyper] = head
			if old, ok := ev.heads[hyper]; !ok || old != head {
				dirtyHead[hyper] = true
			}
		}
		ev.heads = heads
	}

	// Strategy III-A: recompute pair statuses and kill entries for the
	// dirty subset (everything, on a cold cache). killSet is the set
	// of entities whose kill entries were re-resolved — their
	// candidates must be re-decided.
	killSet := ev.dirtyEntities
	if opts.EnableIncompatible {
		killSet = ev.recomputeIncompatible(opts)
	} else {
		ev.incompatible = make(map[pairKey]bool)
		ev.killed = make(map[edgeKey]bool)
	}
	rep.IncompatiblePairs = len(ev.incompatible)

	// Strategy III-B: refresh the per-hypernym NE verdicts for words
	// whose support inputs moved; only a flipped verdict makes the
	// hypernym's candidates affected (s1 drifts on nearly every common
	// word every batch, but it rarely crosses the threshold).
	neChanged := ev.refreshNEVerdicts(opts)

	// Collect the affected pairs and recompute their decisions.
	affected := ev.affectedPairs(cands, dirtyHead, neChanged, killSet)
	rep.Reverified = len(affected)
	type decided struct {
		pair   edgeKey
		reason Reason
	}
	chunks := par.MapBatches(par.NewPool(opts.Workers), len(affected), func(lo, hi int) []decided {
		out := make([]decided, 0, hi-lo)
		for _, pair := range affected[lo:hi] {
			out = append(out, decided{pair: pair, reason: ev.decide(pair.hypo, pair.hyper, seg, opts)})
		}
		return out
	})
	for _, ck := range chunks {
		for _, d := range ck {
			ev.decisions[d.pair] = d.reason
		}
	}

	// Dirt consumed; the caches now describe the current evidence.
	ev.dirtyConcepts = make(map[string]bool)
	ev.dirtyEntities = make(map[string]bool)
	ev.dirtyNE = make(map[string]bool)
	ev.allDirty = false

	// Assemble survivors in candidate order from the decision cache.
	var kept []extract.Candidate
	for _, c := range cands {
		r, ok := ev.decisions[edgeKey{c.Hypo, c.Hyper}]
		if !ok {
			// A pair the evidence never saw (caller passed candidates
			// outside the evidence set): decide it on the spot.
			r = ev.decide(c.Hypo, c.Hyper, seg, opts)
			ev.decisions[edgeKey{c.Hypo, c.Hyper}] = r
		}
		if r == "" {
			kept = append(kept, c)
		} else {
			rep.Rejected[r]++
		}
	}
	rep.Kept = len(kept)
	return kept, rep
}

// decide classifies one candidate pair against the current evidence; a
// candidate is rejected as soon as any enabled strategy rejects it.
// The hypernym's lexical head comes from the cache filled by the head
// scan; hypernyms outside the evidence set are segmented on the spot.
func (ev *Evidence) decide(hypo, hyper string, seg *segment.Segmenter, opts Options) Reason {
	if opts.EnableSyntax {
		if lexicon.IsThematic(hyper) {
			return ReasonThematic
		}
		head, cached := ev.heads[hyper]
		if !cached {
			head = lexicalHead(hyper, seg)
		}
		if headInNonHeadPosition(hypo, head) {
			return ReasonHeadPosition
		}
	}
	if opts.EnableNE {
		if v, cached := ev.neVerdict[hyper]; cached {
			if v {
				return ReasonNE
			}
		} else if ev.NESupport(hyper) > opts.NEThreshold {
			return ReasonNE
		}
	}
	if opts.EnableIncompatible && ev.killed[edgeKey{hypo, hyper}] {
		return ReasonIncompatible
	}
	return ""
}

// affectedPairs enumerates the candidate pairs whose decision inputs
// changed: every pair when the caches are cold, otherwise pairs under
// hypernyms whose NE verdict or lexical head flipped, plus all pairs
// of entities whose kill entries were re-resolved (which covers fresh
// pairs — adding a pair dirties both its endpoints).
func (ev *Evidence) affectedPairs(cands []extract.Candidate, dirtyHead, neChanged, killSet map[string]bool) []edgeKey {
	if ev.allDirty {
		out := make([]edgeKey, 0, len(cands))
		for _, c := range cands {
			out = append(out, edgeKey{c.Hypo, c.Hyper})
		}
		return out
	}
	seen := make(map[edgeKey]bool)
	var out []edgeKey
	add := func(k edgeKey) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for hyper := range neChanged {
		for hypo := range ev.Hyponyms[hyper] {
			add(edgeKey{hypo, hyper})
		}
	}
	for hyper := range dirtyHead {
		for hypo := range ev.Hyponyms[hyper] {
			add(edgeKey{hypo, hyper})
		}
	}
	for e := range killSet {
		for hyper := range ev.byHypo[e] {
			add(edgeKey{e, hyper})
		}
	}
	return out
}

// refreshNEVerdicts recomputes the cached per-hypernym NE rejection
// verdict for every NE-dirty word, returning the hypernyms whose
// verdict flipped. On a cold cache it fills the whole table (affected
// enumeration covers everything then anyway).
func (ev *Evidence) refreshNEVerdicts(opts Options) map[string]bool {
	if !opts.EnableNE {
		ev.neVerdict = make(map[string]bool)
		return nil
	}
	if ev.allDirty {
		ev.neVerdict = make(map[string]bool, len(ev.Hyponyms))
		for h := range ev.Hyponyms {
			ev.neVerdict[h] = ev.NESupport(h) > opts.NEThreshold
		}
		return nil
	}
	changed := make(map[string]bool)
	for w := range ev.dirtyNE {
		if _, isHyper := ev.Hyponyms[w]; !isHyper {
			delete(ev.neVerdict, w)
			continue
		}
		v := ev.NESupport(w) > opts.NEThreshold
		if old, cached := ev.neVerdict[w]; !cached || old != v {
			changed[w] = true
		}
		ev.neVerdict[w] = v
	}
	return changed
}

type pairKey struct{ a, b string } // a < b
type edgeKey struct{ hypo, hyper string }

func orderedPair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// recomputeIncompatible maintains strategy III-A incrementally and
// returns the set of entities whose kill entries were re-resolved.
//
// Step one: pair statuses involving a dirty concept are dropped and
// re-derived from hyponym-set Jaccard and attribute cosine (a pair can
// only appear, disappear, or change status when one of its sides is
// dirty — co-occurrence and eligibility both move only through dirty
// concepts). Step two: kill entries are re-resolved by KL divergence
// for the entities whose conflict inputs moved — entities with changed
// claims or attributes, plus entities co-claimed under a pair whose
// status flipped or whose KL inputs (a dirty side's ConceptAttrs)
// changed. On a cold cache both steps run over everything,
// reproducing the from-scratch computation.
func (ev *Evidence) recomputeIncompatible(opts Options) map[string]bool {
	dirty := ev.dirtyConcepts
	statusChanged := make(map[pairKey]bool)
	if ev.allDirty {
		ev.incompatible = make(map[pairKey]bool)
		dirty = make(map[string]bool, len(ev.Hyponyms))
		for c := range ev.Hyponyms {
			dirty[c] = true
		}
	} else {
		for pk := range ev.incompatible {
			if dirty[pk.a] || dirty[pk.b] {
				delete(ev.incompatible, pk)
				statusChanged[pk] = true // provisionally: flipped off
			}
		}
	}
	eligible := func(c string) bool { return len(ev.Hyponyms[c]) >= opts.MinConceptSupport }
	done := make(map[pairKey]bool)
	for a := range dirty {
		if !eligible(a) {
			continue
		}
		// Only co-claiming pairs can conflict; the partner index
		// enumerates them directly and the maintained intersection
		// count makes the Jaccard test O(1) — no hyponym-set scans.
		for b := range ev.coocPartners[a] {
			if !eligible(b) {
				continue
			}
			pk := orderedPair(a, b)
			if done[pk] {
				continue
			}
			done[pk] = true
			inter := ev.cooc[pk]
			union := len(ev.Hyponyms[pk.a]) + len(ev.Hyponyms[pk.b]) - inter
			if float64(inter)/float64(union) >= opts.JaccardMax {
				continue
			}
			if cosine(ev.ConceptAttrs[pk.a], ev.ConceptAttrs[pk.b]) >= opts.CosineMax {
				continue
			}
			ev.incompatible[pk] = true
			if statusChanged[pk] {
				delete(statusChanged, pk) // was on, still on
			} else {
				statusChanged[pk] = true // flipped on
			}
		}
	}

	// Step two: re-resolve conflicts for every affected entity.
	var kill map[string]bool
	if ev.allDirty {
		ev.killed = make(map[edgeKey]bool)
		kill = make(map[string]bool, len(ev.byHypo))
		for e := range ev.byHypo {
			kill[e] = true
		}
	} else {
		// Pairs whose kill influence moved: flipped statuses, plus
		// still-incompatible pairs with a dirty side (their KL inputs
		// shifted with the re-aggregated ConceptAttrs).
		relevant := statusChanged
		for pk := range ev.incompatible {
			if dirty[pk.a] || dirty[pk.b] {
				relevant[pk] = true
			}
		}
		kill = make(map[string]bool, len(ev.dirtyEntities))
		for e := range ev.dirtyEntities {
			kill[e] = true
		}
		for pk := range relevant {
			small, large := ev.Hyponyms[pk.a], ev.Hyponyms[pk.b]
			if len(small) > len(large) {
				small, large = large, small
			}
			for e := range small {
				if large[e] {
					kill[e] = true
				}
			}
		}
	}
	for e := range kill {
		for c := range ev.byHypo[e] {
			delete(ev.killed, edgeKey{e, c})
		}
		attr, ok := ev.EntityAttrs[e]
		if !ok {
			continue
		}
		concepts := make([]string, 0, len(ev.byHypo[e]))
		for c := range ev.byHypo[e] {
			concepts = append(concepts, c)
		}
		sort.Strings(concepts)
		for i := 0; i < len(concepts); i++ {
			for j := i + 1; j < len(concepts); j++ {
				c1, c2 := concepts[i], concepts[j]
				if !ev.incompatible[orderedPair(c1, c2)] {
					continue
				}
				k1 := KL(attr, ev.ConceptAttrs[c1])
				k2 := KL(attr, ev.ConceptAttrs[c2])
				if k1 > k2 {
					ev.killed[edgeKey{e, c1}] = true
				} else {
					ev.killed[edgeKey{e, c2}] = true
				}
			}
		}
	}
	return kill
}

// headInNonHeadPosition implements syntax rule (2): the stem of the
// hypernym's lexical head must not occur in a non-head position of the
// hyponym. isA(教育机构, 教育) dies here: the hypernym (教育) appears as
// a prefix — not the head — of the hyponym.
func headInNonHeadPosition(hypo, head string) bool {
	hypoSurface, _ := encyclopedia.ParseEntityID(hypo)
	if hypoSurface == "" {
		hypoSurface = hypo
	}
	if head == "" || !runes.AllHan(hypoSurface) {
		return false
	}
	idx := strings.Index(hypoSurface, head)
	if idx < 0 {
		return false
	}
	// Occurrence at the end (head position) is the legitimate
	// modifier-head pattern (男演员 isA 演员); anywhere else is the
	// smell the rule rejects.
	return !strings.HasSuffix(hypoSurface, head)
}

// lexicalHead returns the rightmost segmented word of a compound (the
// head of a Chinese noun compound).
func lexicalHead(w string, seg *segment.Segmenter) string {
	if seg == nil {
		return w
	}
	toks := seg.Cut(w)
	for i := len(toks) - 1; i >= 0; i-- {
		if segment.IsContentToken(toks[i]) {
			return toks[i]
		}
	}
	return ""
}
