package verify

import (
	"sort"
	"strings"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/par"
	"cnprobase/internal/runes"
	"cnprobase/internal/segment"
)

// Reason identifies which strategy rejected a candidate.
type Reason string

// Rejection reasons.
const (
	ReasonIncompatible Reason = "incompatible-concept"
	ReasonNE           Reason = "named-entity-hypernym"
	ReasonThematic     Reason = "thematic-word"
	ReasonHeadPosition Reason = "head-in-nonhead-position"
)

// Report summarizes a verification run.
type Report struct {
	Input    int
	Kept     int
	Rejected map[Reason]int
	// IncompatiblePairs is the number of incompatible concept pairs
	// detected in step one of strategy III-A.
	IncompatiblePairs int
}

// Verify applies the enabled strategies to the candidate set and
// returns the surviving candidates plus a report. A candidate is
// dropped as soon as any strategy rejects it. The incompatibility
// statistics are computed once up front; the per-candidate filtering
// then fans out over opts.Workers goroutines, each scanning a
// contiguous chunk, with results merged in chunk order — so the
// survivor order matches a sequential run exactly.
func Verify(cands []extract.Candidate, ctx *Context, seg *segment.Segmenter, opts Options) ([]extract.Candidate, Report) {
	rep := Report{Input: len(cands), Rejected: make(map[Reason]int)}

	var incompatible map[pairKey]bool
	var killed map[edgeKey]bool
	if opts.EnableIncompatible {
		incompatible = findIncompatiblePairs(ctx, opts)
		rep.IncompatiblePairs = len(incompatible)
		killed = resolveIncompatible(cands, ctx, incompatible)
	}

	// reject classifies one candidate; everything it consults (context,
	// segmenter, lexicon, killed set) is read-only here, so chunks can
	// run concurrently.
	reject := func(c extract.Candidate) (Reason, bool) {
		switch {
		case opts.EnableSyntax && lexicon.IsThematic(c.Hyper):
			return ReasonThematic, true
		case opts.EnableSyntax && headInNonHeadPosition(c, seg):
			return ReasonHeadPosition, true
		case opts.EnableNE && ctx.NESupport(c.Hyper) > opts.NEThreshold:
			return ReasonNE, true
		case opts.EnableIncompatible && killed[edgeKey{c.Hypo, c.Hyper}]:
			return ReasonIncompatible, true
		}
		return "", false
	}

	type chunk struct {
		kept     []extract.Candidate
		rejected map[Reason]int
	}
	chunks := par.MapBatches(par.NewPool(opts.Workers), len(cands), func(lo, hi int) chunk {
		ck := chunk{rejected: make(map[Reason]int)}
		for _, c := range cands[lo:hi] {
			if r, drop := reject(c); drop {
				ck.rejected[r]++
			} else {
				ck.kept = append(ck.kept, c)
			}
		}
		return ck
	})

	var kept []extract.Candidate
	for _, ck := range chunks {
		kept = append(kept, ck.kept...)
		for r, n := range ck.rejected {
			rep.Rejected[r] += n
		}
	}
	rep.Kept = len(kept)
	return kept, rep
}

type pairKey struct{ a, b string } // a < b
type edgeKey struct{ hypo, hyper string }

func orderedPair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// findIncompatiblePairs implements step one of strategy III-A: two
// concepts are incompatible when their hyponym sets are (near-)disjoint
// AND their attribute distributions are dissimilar. Only concept pairs
// that co-occur on at least one entity matter — others never produce a
// conflict to resolve.
func findIncompatiblePairs(ctx *Context, opts Options) map[pairKey]bool {
	// Concepts per entity, restricted to sufficiently supported
	// concepts.
	byEntity := make(map[string][]string)
	for concept, hypos := range ctx.Hyponyms {
		if len(hypos) < opts.MinConceptSupport {
			continue
		}
		for e := range hypos {
			byEntity[e] = append(byEntity[e], concept)
		}
	}
	out := make(map[pairKey]bool)
	seen := make(map[pairKey]bool)
	for _, concepts := range byEntity {
		sort.Strings(concepts)
		for i := 0; i < len(concepts); i++ {
			for j := i + 1; j < len(concepts); j++ {
				pk := orderedPair(concepts[i], concepts[j])
				if seen[pk] {
					continue
				}
				seen[pk] = true
				j1 := jaccard(ctx.Hyponyms[pk.a], ctx.Hyponyms[pk.b])
				if j1 >= opts.JaccardMax {
					continue
				}
				cs := cosine(ctx.ConceptAttrs[pk.a], ctx.ConceptAttrs[pk.b])
				if cs >= opts.CosineMax {
					continue
				}
				out[pk] = true
			}
		}
	}
	return out
}

// resolveIncompatible implements step two of strategy III-A: for every
// entity claimed under an incompatible concept pair, the concept with
// the larger KL divergence to the entity's attribute distribution is
// rejected.
func resolveIncompatible(cands []extract.Candidate, ctx *Context, incompatible map[pairKey]bool) map[edgeKey]bool {
	byEntity := make(map[string][]string)
	for _, c := range cands {
		byEntity[c.Hypo] = append(byEntity[c.Hypo], c.Hyper)
	}
	killed := make(map[edgeKey]bool)
	for e, concepts := range byEntity {
		attr, ok := ctx.EntityAttrs[e]
		if !ok {
			continue
		}
		sort.Strings(concepts)
		for i := 0; i < len(concepts); i++ {
			for j := i + 1; j < len(concepts); j++ {
				c1, c2 := concepts[i], concepts[j]
				if !incompatible[orderedPair(c1, c2)] {
					continue
				}
				k1 := KL(attr, ctx.ConceptAttrs[c1])
				k2 := KL(attr, ctx.ConceptAttrs[c2])
				if k1 > k2 {
					killed[edgeKey{e, c1}] = true
				} else {
					killed[edgeKey{e, c2}] = true
				}
			}
		}
	}
	return killed
}

// headInNonHeadPosition implements syntax rule (2): the stem of the
// hypernym's lexical head must not occur in a non-head position of the
// hyponym. isA(教育机构, 教育) dies here: the hypernym (教育) appears as
// a prefix — not the head — of the hyponym.
func headInNonHeadPosition(c extract.Candidate, seg *segment.Segmenter) bool {
	hypoSurface, _ := encyclopedia.ParseEntityID(c.Hypo)
	if hypoSurface == "" {
		hypoSurface = c.Hypo
	}
	head := lexicalHead(c.Hyper, seg)
	if head == "" || !runes.AllHan(hypoSurface) {
		return false
	}
	idx := strings.Index(hypoSurface, head)
	if idx < 0 {
		return false
	}
	// Occurrence at the end (head position) is the legitimate
	// modifier-head pattern (男演员 isA 演员); anywhere else is the
	// smell the rule rejects.
	return !strings.HasSuffix(hypoSurface, head)
}

// lexicalHead returns the rightmost segmented word of a compound (the
// head of a Chinese noun compound).
func lexicalHead(w string, seg *segment.Segmenter) string {
	if seg == nil {
		return w
	}
	toks := seg.Cut(w)
	for i := len(toks) - 1; i >= 0; i-- {
		if segment.IsContentToken(toks[i]) {
			return toks[i]
		}
	}
	return ""
}
