// Package verify implements the verification module (paper Section
// III): three heuristic strategies that filter wrong candidate isA
// relations. A candidate is rejected if ANY strategy judges it wrong —
// the same disjunctive policy the paper uses.
//
//  1. Incompatible concepts (III-A): concept pairs with near-disjoint
//     hyponym sets and dissimilar attribute distributions are
//     incompatible; an entity claimed under both keeps the concept with
//     the smaller KL divergence between attribute distributions.
//  2. Named-entity hypernyms (III-B): a hypernym that is itself a named
//     entity is wrong; corpus support s1 and taxonomy support s2 are
//     combined with a noisy-or.
//  3. Syntax rules (III-C): thematic (non-taxonomic) hypernyms from a
//     184-word lexicon are rejected, and the hypernym's lexical head
//     must not occur in a non-head position of the hyponym.
package verify

import (
	"math"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
)

// Options holds the thresholds of the three strategies, with toggles so
// ablations can disable each independently.
type Options struct {
	// EnableIncompatible toggles strategy III-A.
	EnableIncompatible bool
	// JaccardMax: hyponym-set Jaccard similarity below which a concept
	// pair may be incompatible.
	JaccardMax float64
	// CosineMax: attribute-distribution cosine similarity below which a
	// concept pair may be incompatible.
	CosineMax float64
	// MinConceptSupport: concepts need at least this many hyponyms to
	// participate in incompatibility detection.
	MinConceptSupport int

	// EnableNE toggles strategy III-B.
	EnableNE bool
	// NEThreshold: candidates whose hypernym NE support s(H) exceeds
	// this are rejected (paper: set empirically).
	NEThreshold float64

	// EnableSyntax toggles strategy III-C.
	EnableSyntax bool

	// Workers bounds the per-candidate filtering fan-out; values <= 1
	// filter sequentially. Per-candidate decisions are independent, so
	// any worker count keeps the same survivors in the same order. The
	// pipeline fills a zero value with its own resolved worker count;
	// set it explicitly to pin verification concurrency independently.
	Workers int
}

// DefaultOptions returns the calibrated thresholds.
func DefaultOptions() Options {
	return Options{
		EnableIncompatible: true,
		JaccardMax:         0.05,
		CosineMax:          0.60,
		MinConceptSupport:  5,
		EnableNE:           true,
		NEThreshold:        0.55,
		EnableSyntax:       true,
	}
}

// Context carries the evidence the strategies consult. Build it with
// NewContext once per corpus + candidate set.
type Context struct {
	// EntityAttrs maps entity ID → normalized infobox-predicate
	// distribution v_att(e).
	EntityAttrs map[string]map[string]float64
	// ConceptAttrs maps concept → aggregated v_att(c) over its
	// candidate hyponyms.
	ConceptAttrs map[string]map[string]float64
	// Hyponyms maps concept → candidate hyponym set.
	Hyponyms map[string]map[string]bool
	// Support provides the corpus NE statistic s1.
	Support *ner.Support
	// Recognizer classifies isolated words.
	Recognizer *ner.Recognizer
	// EntityTitles is the set of page titles (taxonomy NE evidence s2).
	EntityTitles map[string]bool
	// titleEdges / hyperEdges count taxonomy occurrences of a word as
	// an entity title vs as a hypernym, for s2.
	titleEdges map[string]int
	hyperEdges map[string]int
}

// NewContext assembles verification evidence from the corpus and the
// merged candidate set.
func NewContext(c *encyclopedia.Corpus, cands []extract.Candidate, support *ner.Support, rec *ner.Recognizer) *Context {
	ctx := &Context{
		EntityAttrs:  make(map[string]map[string]float64),
		ConceptAttrs: make(map[string]map[string]float64),
		Hyponyms:     make(map[string]map[string]bool),
		Support:      support,
		Recognizer:   rec,
		EntityTitles: make(map[string]bool),
		titleEdges:   make(map[string]int),
		hyperEdges:   make(map[string]int),
	}
	titleByID := make(map[string]string, len(c.Pages))
	for i := range c.Pages {
		p := &c.Pages[i]
		ctx.EntityTitles[p.Title] = true
		titleByID[p.ID()] = p.Title
		if len(p.Infobox) == 0 {
			continue
		}
		dist := make(map[string]float64, len(p.Infobox))
		for _, t := range p.Infobox {
			dist[t.Predicate]++
		}
		normalize(dist)
		ctx.EntityAttrs[p.ID()] = dist
	}
	for _, cand := range cands {
		hs := ctx.Hyponyms[cand.Hyper]
		if hs == nil {
			hs = make(map[string]bool)
			ctx.Hyponyms[cand.Hyper] = hs
		}
		hs[cand.Hypo] = true
		ctx.hyperEdges[cand.Hyper]++
		if t, ok := titleByID[cand.Hypo]; ok {
			ctx.titleEdges[t]++
		}
	}
	// Aggregate concept attribute distributions.
	for concept, hypos := range ctx.Hyponyms {
		agg := make(map[string]float64)
		n := 0
		for h := range hypos {
			if d, ok := ctx.EntityAttrs[h]; ok {
				for k, v := range d {
					agg[k] += v
				}
				n++
			}
		}
		if n == 0 {
			continue
		}
		normalize(agg)
		ctx.ConceptAttrs[concept] = agg
	}
	return ctx
}

func normalize(d map[string]float64) {
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum == 0 {
		return
	}
	for k := range d {
		d[k] /= sum
	}
}

// S2 is the taxonomy NE support of the paper: the fraction of a word's
// taxonomy occurrences in which it behaves as an entity (a page title
// appearing as a hyponym) rather than as a concept (a hypernym).
func (ctx *Context) S2(w string) float64 {
	te, he := ctx.titleEdges[w], ctx.hyperEdges[w]
	if !ctx.EntityTitles[w] || te+he == 0 {
		return 0
	}
	return float64(te) / float64(te+he)
}

// NESupport combines corpus and taxonomy support with the paper's
// noisy-or (Equation 2): s(H) = 1 − (1−s1)(1−s2).
func (ctx *Context) NESupport(h string) float64 {
	s1 := ctx.Support.S1(h)
	s2 := ctx.S2(h)
	return 1 - (1-s1)*(1-s2)
}

// cosine returns the cosine similarity of two sparse distributions.
func cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for k, v := range a {
		na += v * v
		if w, ok := b[k]; ok {
			dot += v * w
		}
	}
	for _, v := range b {
		nb += v * v
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// jaccard returns |a∩b| / |a∪b|.
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// KL computes D_KL(p‖q) = Σ p(x)·log(p(x)/q(x)) with ε-smoothing for
// q-zeros (Equation 1 of the paper, sign normalized).
func KL(p, q map[string]float64) float64 {
	const eps = 1e-6
	sum := 0.0
	for k, pv := range p {
		if pv <= 0 {
			continue
		}
		qv := q[k]
		if qv <= 0 {
			qv = eps
		}
		sum += pv * math.Log(pv/qv)
	}
	return sum
}
