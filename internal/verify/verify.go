// Package verify implements the verification module (paper Section
// III): three heuristic strategies that filter wrong candidate isA
// relations. A candidate is rejected if ANY strategy judges it wrong —
// the same disjunctive policy the paper uses.
//
//  1. Incompatible concepts (III-A): concept pairs with near-disjoint
//     hyponym sets and dissimilar attribute distributions are
//     incompatible; an entity claimed under both keeps the concept with
//     the smaller KL divergence between attribute distributions.
//  2. Named-entity hypernyms (III-B): a hypernym that is itself a named
//     entity is wrong; corpus support s1 and taxonomy support s2 are
//     combined with a noisy-or.
//  3. Syntax rules (III-C): thematic (non-taxonomic) hypernyms from a
//     184-word lexicon are rejected, and the hypernym's lexical head
//     must not occur in a non-head position of the hyponym.
package verify

import "math"

// Options holds the thresholds of the three strategies, with toggles so
// ablations can disable each independently.
type Options struct {
	// EnableIncompatible toggles strategy III-A.
	EnableIncompatible bool
	// JaccardMax: hyponym-set Jaccard similarity below which a concept
	// pair may be incompatible.
	JaccardMax float64
	// CosineMax: attribute-distribution cosine similarity below which a
	// concept pair may be incompatible.
	CosineMax float64
	// MinConceptSupport: concepts need at least this many hyponyms to
	// participate in incompatibility detection.
	MinConceptSupport int

	// EnableNE toggles strategy III-B.
	EnableNE bool
	// NEThreshold: candidates whose hypernym NE support s(H) exceeds
	// this are rejected (paper: set empirically).
	NEThreshold float64

	// EnableSyntax toggles strategy III-C.
	EnableSyntax bool

	// Workers bounds the per-candidate filtering fan-out; values <= 1
	// filter sequentially. Per-candidate decisions are independent, so
	// any worker count keeps the same survivors in the same order. The
	// pipeline fills a zero value with its own resolved worker count;
	// set it explicitly to pin verification concurrency independently.
	Workers int
}

// DefaultOptions returns the calibrated thresholds.
func DefaultOptions() Options {
	return Options{
		EnableIncompatible: true,
		JaccardMax:         0.05,
		CosineMax:          0.60,
		MinConceptSupport:  5,
		EnableNE:           true,
		NEThreshold:        0.55,
		EnableSyntax:       true,
	}
}

func normalize(d map[string]float64) {
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum == 0 {
		return
	}
	for k := range d {
		d[k] /= sum
	}
}

// cosine returns the cosine similarity of two sparse distributions.
func cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for k, v := range a {
		na += v * v
		if w, ok := b[k]; ok {
			dot += v * w
		}
	}
	for _, v := range b {
		nb += v * v
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// jaccard returns |a∩b| / |a∪b|.
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// KL computes D_KL(p‖q) = Σ p(x)·log(p(x)/q(x)) with ε-smoothing for
// q-zeros (Equation 1 of the paper, sign normalized).
func KL(p, q map[string]float64) float64 {
	const eps = 1e-6
	sum := 0.0
	for k, pv := range p {
		if pv <= 0 {
			continue
		}
		qv := q[k]
		if qv <= 0 {
			qv = eps
		}
		sum += pv * math.Log(pv/qv)
	}
	return sum
}
