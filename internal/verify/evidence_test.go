package verify

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/extract"
	"cnprobase/internal/ner"
	"cnprobase/internal/taxonomy"
)

// evidenceWorld is a deterministic generator of pages + candidates in
// typed clusters, so strategy III-A has real incompatibilities to find.
type evidenceWorld struct {
	rng *rand.Rand
	n   int
}

var evidenceConcepts = map[string][]string{
	"演员": {"职业", "出生日期", "国籍"},
	"歌手": {"职业", "出生日期", "唱片公司"},
	"图书": {"出版社", "页数", "作者"},
	"城市": {"人口", "面积", "邮编"},
}

func (w *evidenceWorld) concept() string {
	keys := []string{"演员", "歌手", "图书", "城市"}
	return keys[w.rng.Intn(len(keys))]
}

// page fabricates one typed page plus its candidate claims; about one
// in six pages gets an extra claim from a foreign cluster, the
// conflict III-A resolves.
func (w *evidenceWorld) page() (encyclopedia.Page, []extract.Candidate) {
	w.n++
	typ := w.concept()
	title := fmt.Sprintf("实体%s%03d", typ, w.n)
	p := encyclopedia.Page{Title: title}
	for _, pred := range evidenceConcepts[typ] {
		if w.rng.Intn(4) > 0 {
			p.Infobox = append(p.Infobox, encyclopedia.Triple{Subject: title, Predicate: pred, Object: "值"})
		}
	}
	cands := []extract.Candidate{{Hypo: p.ID(), Hyper: typ, Source: taxonomy.SourceTag, Score: 1}}
	if w.rng.Intn(6) == 0 {
		other := w.concept()
		if other != typ {
			cands = append(cands, extract.Candidate{Hypo: p.ID(), Hyper: other, Source: taxonomy.SourceBracket, Score: 0.5})
		}
	}
	return p, cands
}

func attrsClose(a, b map[string]map[string]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("map sizes %d != %d", len(a), len(b))
	}
	for k, da := range a {
		db, ok := b[k]
		if !ok || len(da) != len(db) {
			return fmt.Errorf("entry %q mismatch", k)
		}
		for p, va := range da {
			if math.Abs(va-db[p]) > 1e-9 {
				return fmt.Errorf("entry %q attr %q: %v != %v", k, p, va, db[p])
			}
		}
	}
	return nil
}

// TestEvidenceMatchesOracle is the incremental-vs-oracle property: a
// sequence of crawl batches folded forward through AddPages /
// FoldSupport / AddCandidates / VerifyDelta / RemoveCandidates must
// leave exactly the evidence, decisions and report that a from-scratch
// NewContext + Verify over the accumulated state produces.
func TestEvidenceMatchesOracle(t *testing.T) {
	opts := Options{
		EnableIncompatible: true,
		JaccardMax:         0.3,
		CosineMax:          0.7,
		MinConceptSupport:  3,
		EnableNE:           true,
		NEThreshold:        0.5,
		EnableSyntax:       true,
	}
	seg := testSeg()
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := &evidenceWorld{rng: rand.New(rand.NewSource(seed))}
			inc := NewEvidence(ner.NewSupport(), ner.New())
			oracleSup := ner.NewSupport()
			var allPages []encyclopedia.Page
			var kept []extract.Candidate
			for batch := 0; batch < 5; batch++ {
				var pages []encyclopedia.Page
				var fresh []extract.Candidate
				for i := 0; i < 20; i++ {
					p, cs := w.page()
					pages = append(pages, p)
					fresh = append(fresh, cs...)
				}
				// A candidate whose hyponym's page only arrives next
				// batch: titleEdges must late-bind identically.
				future := fmt.Sprintf("实体演员%03d", w.n+1)
				fresh = append(fresh, extract.Candidate{Hypo: future, Hyper: "演员", Source: taxonomy.SourceTag, Score: 1})
				// Delta NE observations drift s1 between batches.
				deltaSup := ner.NewSupport()
				for i := 0; i < 5; i++ {
					deltaSup.ObserveWord(w.concept(), w.rng.Intn(10) == 0)
				}
				deltaSup.ObserveWord("李明", true)

				// ---- incremental path ----
				inc.FoldSupport(deltaSup)
				inc.AddPages(pages)
				merged := extract.Dedupe(append(append([]extract.Candidate(nil), kept...), fresh...))
				inc.AddCandidates(merged)
				keptInc, repInc := VerifyDelta(merged, inc, seg, opts)

				// ---- oracle: from scratch over the accumulated state ----
				allPages = append(allPages, pages...)
				oracleSup.Merge(deltaSup)
				oracle := NewContext(&encyclopedia.Corpus{Pages: allPages}, merged, oracleSup, ner.New())
				keptOra, repOra := Verify(merged, oracle, seg, opts)

				if !reflect.DeepEqual(keptInc, keptOra) {
					t.Fatalf("batch %d: kept diverged: incremental %d vs oracle %d", batch, len(keptInc), len(keptOra))
				}
				if repInc.Input != repOra.Input || repInc.Kept != repOra.Kept ||
					repInc.IncompatiblePairs != repOra.IncompatiblePairs ||
					!reflect.DeepEqual(repInc.Rejected, repOra.Rejected) {
					t.Fatalf("batch %d: reports diverged: %+v vs %+v", batch, repInc, repOra)
				}
				for name, pair := range map[string][2]any{
					"Hyponyms":     {inc.Hyponyms, oracle.Hyponyms},
					"EntityTitles": {inc.EntityTitles, oracle.EntityTitles},
					"titleEdges":   {inc.titleEdges, oracle.titleEdges},
					"hyperEdges":   {inc.hyperEdges, oracle.hyperEdges},
					"titleByID":    {inc.titleByID, oracle.titleByID},
					"byHypo":       {inc.byHypo, oracle.byHypo},
				} {
					if !reflect.DeepEqual(pair[0], pair[1]) {
						t.Fatalf("batch %d: %s diverged:\nincremental: %v\noracle: %v", batch, name, pair[0], pair[1])
					}
				}
				if err := attrsClose(inc.EntityAttrs, oracle.EntityAttrs); err != nil {
					t.Fatalf("batch %d: EntityAttrs: %v", batch, err)
				}
				if err := attrsClose(inc.ConceptAttrs, oracle.ConceptAttrs); err != nil {
					t.Fatalf("batch %d: ConceptAttrs: %v", batch, err)
				}

				// Retract the rejected pairs; the next batch verifies
				// over kept ∪ fresh, exactly like core.Update.
				keptSet := make(map[edgeKey]bool, len(keptInc))
				for _, c := range keptInc {
					keptSet[edgeKey{c.Hypo, c.Hyper}] = true
				}
				var rejected []extract.Candidate
				for _, c := range merged {
					if !keptSet[edgeKey{c.Hypo, c.Hyper}] {
						rejected = append(rejected, c)
					}
				}
				inc.RemoveCandidates(rejected)
				kept = keptInc
			}
		})
	}
}

// TestVerifyDeltaSkipsUntouchedClusters pins the O(delta) claim at the
// verify level: a batch that only touches one cluster of the evidence
// re-verifies that cluster's candidates, not the whole set.
func TestVerifyDeltaSkipsUntouchedClusters(t *testing.T) {
	ev := NewEvidence(ner.NewSupport(), ner.New())
	var pages []encyclopedia.Page
	var cands []extract.Candidate
	for i := 0; i < 10; i++ {
		a := encyclopedia.Page{Title: fmt.Sprintf("演员实体%02d", i)}
		b := encyclopedia.Page{Title: fmt.Sprintf("图书实体%02d", i)}
		pages = append(pages, a, b)
		cands = append(cands,
			extract.Candidate{Hypo: a.ID(), Hyper: "演员", Source: taxonomy.SourceTag, Score: 1},
			extract.Candidate{Hypo: b.ID(), Hyper: "图书", Source: taxonomy.SourceTag, Score: 1})
	}
	cands = extract.Dedupe(cands)
	ev.AddPages(pages)
	ev.AddCandidates(cands)
	opts := DefaultOptions()
	seg := testSeg()
	kept, rep := VerifyDelta(cands, ev, seg, opts)
	if rep.Reverified != len(cands) {
		t.Fatalf("cold pass reverified %d of %d", rep.Reverified, len(cands))
	}

	// Second batch: one fresh page claiming 图书 only.
	p := encyclopedia.Page{Title: "图书实体99"}
	fresh := extract.Candidate{Hypo: p.ID(), Hyper: "图书", Source: taxonomy.SourceTag, Score: 1}
	ev.AddPages([]encyclopedia.Page{p})
	merged := extract.Dedupe(append(kept, fresh))
	ev.AddCandidates(merged)
	_, rep = VerifyDelta(merged, ev, seg, opts)
	if rep.Reverified == 0 || rep.Reverified >= rep.Input {
		t.Fatalf("incremental pass reverified %d of %d, want a strict subset covering the touched cluster", rep.Reverified, rep.Input)
	}
	for _, c := range merged {
		if c.Hyper == "演员" {
			// 演员 cluster untouched: its pairs must not be in the
			// affected set (11 图书 pairs were).
			if rep.Reverified > 11 {
				t.Fatalf("reverified %d pairs, want ≤ 11 (the 图书 cluster)", rep.Reverified)
			}
			break
		}
	}
}
