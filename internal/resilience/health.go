package resilience

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// Health is the probe state an orchestrator reads through /healthz and
// /readyz. Liveness is process-level — the HTTP plane answers, keep
// the container. Readiness is traffic-level — serve 200 only while
// the process should receive new requests:
//
//   - ready:    the serving state is loaded (snapshot decoded or
//     mapped, WAL tail replayed). Set once at startup.
//   - draining: shutdown has begun; flips /readyz to 503 *before* the
//     listeners close, so load balancers stop routing while in-flight
//     requests still drain cleanly.
//   - wedged:   the ingest updater panicked and was isolated. The
//     process keeps serving reads, but a replica that can no longer
//     apply writes must be rotated out.
//
// All transitions are atomic; handlers are safe for concurrent use.
type Health struct {
	ready    atomic.Bool
	draining atomic.Bool
	wedged   atomic.Bool

	mu          sync.Mutex
	wedgeReason string
}

// SetReady marks the serving state loaded (or not). cnpserver sets it
// after the snapshot is loaded and the WAL tail replayed.
func (h *Health) SetReady(ready bool) { h.ready.Store(ready) }

// SetDraining flips readiness off permanently: shutdown has begun.
func (h *Health) SetDraining() { h.draining.Store(true) }

// Draining reports whether shutdown has begun.
func (h *Health) Draining() bool { return h.draining.Load() }

// Wedge records that the ingest updater is permanently stuck (it
// panicked and was isolated). Readiness goes 503 with the reason; the
// first reason recorded wins.
func (h *Health) Wedge(reason string) {
	h.mu.Lock()
	if h.wedgeReason == "" {
		h.wedgeReason = reason
	}
	h.mu.Unlock()
	h.wedged.Store(true)
}

// Wedged reports whether the ingest plane has been isolated after a
// panic, and why.
func (h *Health) Wedged() (bool, string) {
	if !h.wedged.Load() {
		return false, ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return true, h.wedgeReason
}

// okBody is the fixed 200 payload of both probes; a JSON object so
// probe responses parse with the same tooling as everything else.
const okBody = "{\"status\":\"ok\"}\n"

// ServeLiveness is the /healthz handler: 200 whenever the process can
// answer HTTP at all. GET and HEAD only — probes never mutate.
func (h *Health) ServeLiveness(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		WriteJSONError(w, http.StatusMethodNotAllowed, "health probes require GET")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write([]byte(okBody))
}

// ServeReadiness is the /readyz handler: 200 while the process should
// receive traffic, 503 with the JSON reasons while it should not
// (still loading, draining for shutdown, or the ingester is wedged).
func (h *Health) ServeReadiness(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		WriteJSONError(w, http.StatusMethodNotAllowed, "health probes require GET")
		return
	}
	var reasons []string
	if !h.ready.Load() {
		reasons = append(reasons, "serving state is not loaded")
	}
	if h.draining.Load() {
		reasons = append(reasons, "draining for shutdown")
	}
	if wedged, why := h.Wedged(); wedged {
		reason := "ingest updater is wedged"
		if why != "" {
			reason += ": " + why
		}
		reasons = append(reasons, reason)
	}
	if len(reasons) > 0 {
		WriteJSONError(w, http.StatusServiceUnavailable, strings.Join(reasons, "; "))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write([]byte(okBody))
}
