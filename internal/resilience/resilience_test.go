package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// decodeError parses the uniform JSON error body every refusal uses.
func decodeError(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not the uniform JSON shape: %v (body %q)", err, body)
	}
	if e.Error == "" {
		t.Fatalf("error body has empty error field: %q", body)
	}
	return e.Error
}

func TestWriteJSONError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSONError(rec, http.StatusTeapot, "no coffee")
	if rec.Code != http.StatusTeapot {
		t.Fatalf("code = %d, want 418", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	body := rec.Body.Bytes()
	if cl := rec.Header().Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Fatalf("Content-Length = %s, body is %d bytes", cl, len(body))
	}
	if !strings.HasSuffix(string(body), "\n") {
		t.Fatalf("body %q does not end in newline", body)
	}
	if msg := decodeError(t, body); msg != "no coffee" {
		t.Fatalf("error = %q, want %q", msg, "no coffee")
	}
}

func TestLimiter(t *testing.T) {
	t.Run("nil admits everything", func(t *testing.T) {
		var l *Limiter
		for i := 0; i < 100; i++ {
			if !l.Acquire(context.Background()) {
				t.Fatal("nil limiter refused a request")
			}
		}
		l.Release() // must not panic
		if l.InFlight() != 0 {
			t.Fatal("nil limiter reports in-flight slots")
		}
	})
	t.Run("disabled by max<=0", func(t *testing.T) {
		if NewLimiter(0, time.Second) != nil || NewLimiter(-1, time.Second) != nil {
			t.Fatal("NewLimiter(<=0) should return nil (admission disabled)")
		}
	})
	t.Run("sheds past capacity", func(t *testing.T) {
		l := NewLimiter(2, 0)
		ctx := context.Background()
		if !l.Acquire(ctx) || !l.Acquire(ctx) {
			t.Fatal("first two acquires should succeed")
		}
		if l.InFlight() != 2 {
			t.Fatalf("InFlight = %d, want 2", l.InFlight())
		}
		if l.Acquire(ctx) {
			t.Fatal("third acquire should shed with zero wait")
		}
		l.Release()
		if !l.Acquire(ctx) {
			t.Fatal("acquire after release should succeed")
		}
	})
	t.Run("bounded wait gets freed slot", func(t *testing.T) {
		l := NewLimiter(1, 2*time.Second)
		if !l.Acquire(context.Background()) {
			t.Fatal("first acquire failed")
		}
		go func() {
			time.Sleep(20 * time.Millisecond)
			l.Release()
		}()
		start := time.Now()
		if !l.Acquire(context.Background()) {
			t.Fatal("waiting acquire should win the freed slot")
		}
		if time.Since(start) > time.Second {
			t.Fatal("acquire waited far longer than the release took")
		}
	})
	t.Run("context aborts the wait", func(t *testing.T) {
		l := NewLimiter(1, time.Minute)
		if !l.Acquire(context.Background()) {
			t.Fatal("first acquire failed")
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		if l.Acquire(ctx) {
			t.Fatal("acquire should fail when the client context dies")
		}
		if time.Since(start) > 10*time.Second {
			t.Fatal("cancelled acquire did not return promptly")
		}
	})
}

func TestGuardShed(t *testing.T) {
	var m Metrics
	g := Guard{Limiter: NewLimiter(1, 0), Metrics: &m}
	release := make(chan struct{})
	started := make(chan struct{})
	var shed atomic.Int64
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	}), &shed)

	// Occupy the single slot, then watch the next request shed.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	<-started

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != fmt.Sprint(RetryAfterSeconds) {
		t.Fatalf("Retry-After = %q, want %d", ra, RetryAfterSeconds)
	}
	decodeError(t, rec.Body.Bytes())
	if shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", shed.Load())
	}

	close(release)
	<-firstDone

	// Slot is free again: the next request is admitted and completes.
	// Fresh channels for the handler closure — release pre-closed so the
	// handler returns immediately, started fresh so its close is legal.
	started = make(chan struct{})
	release = make(chan struct{})
	close(release)
	rec = httptest.NewRecorder()
	done := make(chan struct{})
	go func() { defer close(done); h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil)) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("admitted request did not complete after the slot freed")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("code after release = %d, want 200", rec.Code)
	}
}

func TestGuardDeadline(t *testing.T) {
	var m Metrics
	g := Guard{Timeout: 30 * time.Millisecond, Metrics: &m}
	blocked := make(chan struct{})
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Deliberately stuck well past the deadline (released only at
		// test cleanup) so the timeout path is deterministic.
		<-blocked
		io.WriteString(w, "too late")
	}), nil)
	defer close(blocked)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rec.Code)
	}
	if msg := decodeError(t, rec.Body.Bytes()); !strings.Contains(msg, "deadline") {
		t.Fatalf("error = %q, want a deadline message", msg)
	}
	if strings.Contains(rec.Body.String(), "too late") {
		t.Fatal("timed-out handler output leaked into the response")
	}
	if m.Timeouts.Load() != 1 {
		t.Fatalf("Timeouts = %d, want 1", m.Timeouts.Load())
	}
}

func TestGuardDeadlineFastHandler(t *testing.T) {
	// A handler well under its deadline passes through untouched —
	// status, headers and body all reach the client.
	g := Guard{Timeout: 5 * time.Second}
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusCreated)
		io.WriteString(w, "payload")
	}), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusCreated || rec.Body.String() != "payload" || rec.Header().Get("X-Custom") != "yes" {
		t.Fatalf("buffered response mangled: code=%d body=%q header=%q",
			rec.Code, rec.Body.String(), rec.Header().Get("X-Custom"))
	}
}

func TestGuardPanicIsolation(t *testing.T) {
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	t.Run("inline path", func(t *testing.T) {
		var m Metrics
		g := Guard{Metrics: &m}
		rec := httptest.NewRecorder()
		g.Wrap(boom, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("code = %d, want 500", rec.Code)
		}
		decodeError(t, rec.Body.Bytes())
		if m.Panics.Load() != 1 {
			t.Fatalf("Panics = %d, want 1", m.Panics.Load())
		}
	})
	t.Run("deadline path", func(t *testing.T) {
		var m Metrics
		g := Guard{Timeout: 5 * time.Second, Metrics: &m}
		rec := httptest.NewRecorder()
		g.Wrap(boom, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("code = %d, want 500", rec.Code)
		}
		decodeError(t, rec.Body.Bytes())
		if m.Panics.Load() != 1 {
			t.Fatalf("Panics = %d, want 1", m.Panics.Load())
		}
	})
	t.Run("panic after partial write on deadline path", func(t *testing.T) {
		// The buffered writer lets the guard discard the partial output
		// and still deliver a clean JSON 500.
		var m Metrics
		g := Guard{Timeout: 5 * time.Second, Metrics: &m}
		rec := httptest.NewRecorder()
		g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "partial garbage")
			panic("mid-write")
		}), nil).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("code = %d, want 500", rec.Code)
		}
		if strings.Contains(rec.Body.String(), "garbage") {
			t.Fatal("partial handler output leaked past the panic")
		}
		decodeError(t, rec.Body.Bytes())
	})
}

// TestGuardStuckHandlerHoldsSlot is the goroutine-bound contract: a
// handler that outlives its deadline keeps its admission slot, so N
// stuck handlers occupy exactly N slots and the (N+1)th request sheds
// instead of stacking another goroutine on the wedged code path.
func TestGuardStuckHandlerHoldsSlot(t *testing.T) {
	var m Metrics
	g := Guard{Limiter: NewLimiter(2, 0), Timeout: 20 * time.Millisecond, Metrics: &m}
	release := make(chan struct{})
	var entered atomic.Int64
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Add(1)
		<-release // ignores its deadline: deliberately stuck
	}), nil)

	// Two requests time out (503) but their handlers stay stuck inside.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: code = %d, want 503", i, rec.Code)
		}
	}
	if got := entered.Load(); got != 2 {
		t.Fatalf("handlers entered = %d, want 2", got)
	}
	// Both slots are held by the stuck handlers — the next request must
	// shed rather than start a third.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code with all slots wedged = %d, want 429", rec.Code)
	}
	if got := entered.Load(); got != 2 {
		t.Fatalf("a request ran past the admission cap: entered = %d", got)
	}

	close(release)
	// Once the stuck handlers return their slots free up again.
	deadline := time.Now().Add(5 * time.Second)
	for g.Limiter.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slots never freed after the stuck handlers returned")
		}
		time.Sleep(time.Millisecond)
	}
	// release is closed, so a fresh request returns immediately → 200.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code after recovery = %d, want 200", rec.Code)
	}
}

// TestGuardOverloadGoodput floods a capacity-1 guard and checks the
// overload contract: every response is either a success or a clean
// 429, nothing hangs, and at least one request of the burst succeeds.
func TestGuardOverloadGoodput(t *testing.T) {
	g := Guard{Limiter: NewLimiter(4, time.Millisecond), Timeout: time.Second}
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		io.WriteString(w, "ok")
	}), nil)

	const clients = 64
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("client %d got unexpected code %d", i, c)
		}
	}
	if ok == 0 {
		t.Fatal("overload burst got zero goodput")
	}
	t.Logf("burst of %d: %d served, %d shed", clients, ok, shed)
}

// TestSlowloris dribbles request headers at a hardened listener and
// checks the server cuts the connection once ReadHeaderTimeout
// expires, instead of letting the client pin a goroutine forever.
func TestSlowloris(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.ReadHeaderTimeout = 100 * time.Millisecond
	srv := cfg.Server(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Dribble one header byte at a time, far slower than the window.
	io.WriteString(conn, "GET / HTTP/1.1\r\nHost: x\r\nX-Slow: ")
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	for {
		if _, err := io.WriteString(conn, "a"); err != nil {
			break // server closed on us — exactly what we want
		}
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := conn.Read(buf); err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if time.Since(start) > 5*time.Second {
					t.Fatal("server tolerated a slowloris for >5s despite a 100ms header window")
				}
				continue
			}
			break // EOF/reset: server cut the connection
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slowloris survived %v; want the connection cut near the 100ms window", elapsed)
	}

	// The listener still serves well-behaved clients afterwards.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("healthy request after slowloris: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after slowloris: code %d", resp.StatusCode)
	}
}

// TestMidBodyDisconnect starts a POST with a large declared body, sends
// half and slams the connection; the handler sees a read error, the
// server survives, and the next request is served normally.
func TestMidBodyDisconnect(t *testing.T) {
	var handlerErr atomic.Value
	srv := DefaultServerConfig().Server(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			handlerErr.Store(err.Error())
			WriteJSONError(w, http.StatusBadRequest, "truncated body")
			return
		}
		io.WriteString(w, "ok")
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	io.WriteString(conn, "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 1048576\r\n\r\n")
	io.WriteString(conn, strings.Repeat("x", 1024)) // 1 KiB of the promised 1 MiB
	conn.Close()                                    // mid-body disconnect

	// The server keeps serving fresh connections.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post("http://"+ln.Addr().String()+"/", "text/plain", strings.NewReader("whole body"))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server unhealthy after mid-body disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthProbes(t *testing.T) {
	var h Health

	get := func(f http.HandlerFunc) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		f(rec, httptest.NewRequest("GET", "/probe", nil))
		return rec
	}

	// Liveness is 200 from the start — the process answers HTTP.
	if rec := get(h.ServeLiveness); rec.Code != http.StatusOK {
		t.Fatalf("liveness = %d, want 200", rec.Code)
	}
	// Readiness starts 503: serving state not loaded yet.
	rec := get(h.ServeReadiness)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readiness before SetReady = %d, want 503", rec.Code)
	}
	if msg := decodeError(t, rec.Body.Bytes()); !strings.Contains(msg, "not loaded") {
		t.Fatalf("readiness reason = %q, want not-loaded", msg)
	}

	h.SetReady(true)
	if rec := get(h.ServeReadiness); rec.Code != http.StatusOK {
		t.Fatalf("readiness after SetReady = %d, want 200", rec.Code)
	}

	h.Wedge("updater panic: boom")
	rec = get(h.ServeReadiness)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readiness while wedged = %d, want 503", rec.Code)
	}
	if msg := decodeError(t, rec.Body.Bytes()); !strings.Contains(msg, "wedged") || !strings.Contains(msg, "boom") {
		t.Fatalf("wedged reason = %q, want wedged + original reason", msg)
	}
	h.Wedge("second panic") // first reason wins
	if _, why := h.Wedged(); !strings.Contains(why, "boom") {
		t.Fatalf("wedge reason overwritten: %q", why)
	}

	h.SetDraining()
	rec = get(h.ServeReadiness)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readiness while draining = %d, want 503", rec.Code)
	}
	if msg := decodeError(t, rec.Body.Bytes()); !strings.Contains(msg, "draining") {
		t.Fatalf("draining reason = %q", msg)
	}
	// Liveness never flips — the process is still alive while draining.
	if rec := get(h.ServeLiveness); rec.Code != http.StatusOK {
		t.Fatalf("liveness while draining = %d, want 200", rec.Code)
	}

	// Probes are GET/HEAD only.
	rec = httptest.NewRecorder()
	h.ServeLiveness(rec, httptest.NewRequest("POST", "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("405 without Allow header: %q", allow)
	}
	rec = httptest.NewRecorder()
	h.ServeReadiness(rec, httptest.NewRequest("HEAD", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HEAD /readyz = %d, want 503 while draining", rec.Code)
	}
}

// TestDrainGroup registers two live servers, parks a slow request on
// one, and checks Shutdown completes only after that request finishes
// — and that both listeners refuse new connections afterwards.
func TestDrainGroup(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	slow := DefaultServerConfig().Server(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-release
		io.WriteString(w, "drained")
	}))
	fast := DefaultServerConfig().Server(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))

	lnSlow, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnFast, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go slow.Serve(lnSlow)
	go fast.Serve(lnFast)

	var g DrainGroup
	g.Add("slow", slow)
	g.Add("fast", fast)

	// Park a request on the slow server.
	type result struct {
		code int
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + lnSlow.Addr().String() + "/")
		if err != nil {
			resc <- result{err: err}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resc <- result{code: resp.StatusCode, body: string(b)}
	}()
	<-inFlight

	drained := make(chan []error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- g.Shutdown(ctx)
	}()

	// Shutdown must wait for the parked request.
	select {
	case <-drained:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case errs := <-drained:
		if len(errs) != 0 {
			t.Fatalf("drain errors: %v", errs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never finished after the request completed")
	}
	res := <-resc
	if res.err != nil || res.code != http.StatusOK || res.body != "drained" {
		t.Fatalf("in-flight request across drain: %+v", res)
	}

	// Both listeners are closed now.
	if _, err := http.Get("http://" + lnFast.Addr().String() + "/"); err == nil {
		t.Fatal("fast listener still accepting after drain")
	}

	// Exceeding the budget reports a named error per stuck server.
	stuck := DefaultServerConfig().Server(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	lnStuck, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go stuck.Serve(lnStuck)
	defer stuck.Close()
	hang := make(chan struct{})
	go func() {
		// Hold a connection open mid-request so Shutdown cannot finish.
		conn, err := net.Dial("tcp", lnStuck.Addr().String())
		if err == nil {
			io.WriteString(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
			<-hang
			conn.Close()
		}
	}()
	defer close(hang)
	time.Sleep(50 * time.Millisecond) // let the request arrive
	var g2 DrainGroup
	g2.Add("stuck", stuck)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	errs := g2.Shutdown(ctx)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "drain stuck") {
		t.Fatalf("over-budget drain errors = %v, want one named 'drain stuck'", errs)
	}
}

// TestGuardConcurrencyRace exercises the full stack (admission +
// deadline + panic isolation + chaos delay) from many goroutines so
// the race detector can see any unsynchronized state.
func TestGuardConcurrencyRace(t *testing.T) {
	var m Metrics
	g := Guard{
		Limiter: NewLimiter(8, time.Millisecond),
		Timeout: 10 * time.Millisecond,
		Metrics: &m,
		Delay:   time.Millisecond,
	}
	var shed atomic.Int64
	var n atomic.Int64
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%7 == 0 {
			panic("every seventh request dies")
		}
		if n.Load()%5 == 0 {
			time.Sleep(20 * time.Millisecond) // past the deadline
		}
		io.WriteString(w, "ok")
	}), &shed)

	var wg sync.WaitGroup
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			switch rec.Code {
			case http.StatusOK, http.StatusTooManyRequests,
				http.StatusServiceUnavailable, http.StatusInternalServerError:
			default:
				t.Errorf("unexpected code %d", rec.Code)
			}
		}()
	}
	wg.Wait()
}
