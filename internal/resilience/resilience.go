// Package resilience is the overload-safety layer of the serving
// plane: the pieces that keep a cnpserver process alive and responsive
// under an adversarial mix of slow clients, hot crawlers and buggy
// handlers. It provides
//
//   - a composable per-endpoint middleware (Guard) that stacks
//     admission control (bounded-concurrency semaphore with a short
//     bounded wait, then load-shed with 429 + Retry-After), a
//     per-request deadline (JSON 503 on expiry, the handler keeps its
//     admission slot until it actually returns so a stuck handler can
//     never multiply), and panic isolation (recover → JSON 500 and a
//     counter, never a killed process or a dropped connection);
//
//   - health-probe state (Health) behind /healthz (liveness) and
//     /readyz (readiness: serving state loaded, not draining, the
//     ingest updater not wedged) so orchestrators and load balancers
//     can roll a server without serving errors;
//
//   - hardened listener construction (ServerConfig) — ReadHeader/
//     Read/Write/Idle timeouts and MaxHeaderBytes on every http.Server
//     so a slowloris client cannot pin connection goroutines forever —
//     and DrainGroup, the graceful shutdown of all of a process's
//     listeners at once.
//
// Every refusal the package writes is the API's uniform JSON error
// shape {"error": "..."} with the right status code: 429 always
// carries Retry-After, deadline expiry is 503, a recovered panic is
// 500. The package has no dependencies beyond net/http, so the build
// pipeline, the API layer and the server command all share one
// vocabulary for staying up.
package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// RetryAfterSeconds is the Retry-After hint on every 429 the package
// sheds: long enough to thin a retry storm, short enough that a
// well-behaved client loses almost no time.
const RetryAfterSeconds = 1

// errorResponse mirrors the API's uniform error body so every refusal
// — shed, timeout, panic — parses with the same schema as a handler
// error.
type errorResponse struct {
	Error string `json:"error"`
}

// WriteJSONError writes the uniform JSON error body with the given
// status. The encode is buffered through Marshal so the body is either
// complete or absent — never a truncated JSON fragment.
func WriteJSONError(w http.ResponseWriter, code int, msg string) {
	body, err := json.Marshal(errorResponse{Error: msg})
	if err != nil { // cannot happen for a string field; keep the contract anyway
		body = []byte(`{"error":"internal server error"}`)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Content-Length", fmt.Sprint(len(body)+1))
	w.WriteHeader(code)
	_, _ = w.Write(append(body, '\n'))
}

// Metrics counts the failure-path events the middleware absorbs. One
// instance is shared by every Guard of a server and surfaced through
// /api/stats.
type Metrics struct {
	// Panics counts handler panics converted to JSON 500s (and, on the
	// ingest plane, updater panics that wedged the ingester).
	Panics atomic.Int64
	// Timeouts counts requests answered 503 because their per-request
	// deadline expired before the handler finished.
	Timeouts atomic.Int64
}

// Limiter is the admission controller: a semaphore of MaxInFlight
// slots with a short bounded wait. Acquire returns false — shed the
// request — when no slot frees up within the wait budget; holding
// callers must Release exactly once.
type Limiter struct {
	sem  chan struct{}
	wait time.Duration
}

// NewLimiter builds an admission controller for max concurrent
// requests; acquirers wait at most `wait` for a slot before being
// shed. max <= 0 returns nil, which every consumer treats as
// "admission disabled".
func NewLimiter(max int, wait time.Duration) *Limiter {
	if max <= 0 {
		return nil
	}
	return &Limiter{sem: make(chan struct{}, max), wait: wait}
}

// Acquire takes a slot, waiting up to the limiter's bounded wait. The
// request context aborts the wait early (a gone client should not
// consume a slot). A nil limiter admits everything.
func (l *Limiter) Acquire(ctx context.Context) bool {
	if l == nil {
		return true
	}
	select {
	case l.sem <- struct{}{}:
		return true
	default:
	}
	if l.wait <= 0 {
		return false
	}
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// Release frees a slot taken by Acquire.
func (l *Limiter) Release() {
	if l != nil {
		<-l.sem
	}
}

// InFlight reports the number of currently held slots.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// Guard is the per-endpoint middleware stack. The zero value is a pure
// pass-through; each field arms one layer:
//
//	Limiter — admission control: no free slot within the bounded wait
//	          sheds the request with 429 + Retry-After.
//	Timeout — per-request deadline: the handler runs under a context
//	          that expires, and the client gets a JSON 503 when it
//	          does. The handler keeps running (and keeps its admission
//	          slot) until it actually returns, so a stuck handler
//	          occupies exactly one slot instead of breeding goroutines
//	          past the admission cap.
//	Metrics — where timeouts and recovered panics are counted.
//	Delay/Burn — chaos knobs: artificial sleep / CPU spin inside the
//	          stack (inside the admission slot, under the deadline),
//	          used by drain drills and the overload benchmark to make
//	          handler cost controllable. Zero in production.
//
// Panic isolation is always on: a panicking handler yields a JSON 500
// on that request and nothing else — the process, the connection and
// every other in-flight request are unharmed.
type Guard struct {
	Limiter *Limiter
	Timeout time.Duration
	Metrics *Metrics
	Delay   time.Duration
	Burn    time.Duration
}

// bufferedResponse captures a handler's full response in memory so the
// deadline path can choose atomically between the handler's output and
// a timeout error — never an interleaving of the two.
type bufferedResponse struct {
	header http.Header
	code   int
	body   []byte
}

var bufPool = sync.Pool{New: func() any { return &bufferedResponse{header: make(http.Header, 4)} }}

func getBuffered() *bufferedResponse {
	b := bufPool.Get().(*bufferedResponse)
	b.code = 0
	b.body = b.body[:0]
	for k := range b.header {
		delete(b.header, k)
	}
	return b
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.WriteHeader(http.StatusOK)
	b.body = append(b.body, p...)
	return len(p), nil
}

// overwriteError discards whatever the handler managed to write and
// replaces the buffered response with a clean JSON error. Only
// possible because the response is fully buffered.
func (b *bufferedResponse) overwriteError(code int, msg string) {
	for k := range b.header {
		delete(b.header, k)
	}
	b.code = 0
	b.body = b.body[:0]
	b.header.Set("Content-Type", "application/json; charset=utf-8")
	b.code = code
	raw, _ := json.Marshal(errorResponse{Error: msg})
	b.body = append(b.body, raw...)
	b.body = append(b.body, '\n')
}

// copyTo replays the buffered response onto the real writer.
func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	code := b.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	_, _ = w.Write(b.body)
}

// trackingWriter remembers whether a status line already went out, so
// the inline (no-deadline) panic path can tell whether a clean JSON
// 500 is still possible.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

// chaos applies the injected handler cost. The delay deliberately
// ignores the request context — it emulates a handler stuck on work
// that does not watch ctx, which is exactly what the deadline layer
// exists to convert into a clean 503.
func (g *Guard) chaos() {
	if g.Delay > 0 {
		time.Sleep(g.Delay)
	}
	if g.Burn > 0 {
		for start := time.Now(); time.Since(start) < g.Burn; {
			// spin: emulate CPU-bound handler work
		}
	}
}

func (g *Guard) recordPanic(p any) {
	if g.Metrics != nil {
		g.Metrics.Panics.Add(1)
	}
	log.Printf("resilience: recovered handler panic: %v\n%s", p, debug.Stack())
}

// Wrap stacks the guard's armed layers around h. shed, when non-nil,
// counts requests refused by admission control (one counter per
// endpoint gives the per-endpoint shed column in /api/stats).
func (g *Guard) Wrap(h http.Handler, shed *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !g.Limiter.Acquire(r.Context()) {
			if shed != nil {
				shed.Add(1)
			}
			w.Header().Set("Retry-After", fmt.Sprint(RetryAfterSeconds))
			WriteJSONError(w, http.StatusTooManyRequests, "server is at capacity; retry later")
			return
		}
		if g.Timeout <= 0 {
			// Inline path: release on return, isolate panics in place.
			defer g.Limiter.Release()
			tw := &trackingWriter{ResponseWriter: w}
			defer func() {
				if p := recover(); p != nil {
					g.recordPanic(p)
					if !tw.wrote {
						WriteJSONError(w, http.StatusInternalServerError, "internal server error")
					}
				}
			}()
			g.chaos()
			h.ServeHTTP(tw, r)
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), g.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
		bw := getBuffered()
		done := make(chan struct{})
		go func() {
			// The slot is held until the handler truly finishes: a
			// handler that outlives its deadline occupies one admission
			// slot, it does not breed unbounded goroutines.
			defer g.Limiter.Release()
			defer close(done)
			defer func() {
				if p := recover(); p != nil {
					g.recordPanic(p)
					bw.overwriteError(http.StatusInternalServerError, "internal server error")
				}
			}()
			g.chaos()
			h.ServeHTTP(bw, r)
		}()
		select {
		case <-done:
			bw.copyTo(w)
			bufPool.Put(bw)
		case <-ctx.Done():
			// Prefer the handler's answer if it finished in the same
			// instant the deadline fired.
			select {
			case <-done:
				bw.copyTo(w)
				bufPool.Put(bw)
			default:
				if g.Metrics != nil {
					g.Metrics.Timeouts.Add(1)
				}
				WriteJSONError(w, http.StatusServiceUnavailable, "request deadline exceeded")
				// bw still belongs to the running handler goroutine; it
				// is garbage-collected when the handler returns instead
				// of being recycled.
			}
		}
	})
}
