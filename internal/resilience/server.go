package resilience

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ServerConfig is the hardened-listener recipe: every http.Server the
// process runs gets explicit header/read/write/idle timeouts and a
// header-size cap, so no client — malicious or just broken — can pin a
// connection goroutine forever. The zero value is invalid on purpose;
// start from one of the presets.
type ServerConfig struct {
	// ReadHeaderTimeout bounds how long a client may dribble out
	// request headers — the classic slowloris vector.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the entire request (headers + body).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response; it must comfortably
	// exceed the largest per-request deadline stacked on the handlers.
	WriteTimeout time.Duration
	// IdleTimeout closes keep-alive connections that go quiet.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps the request header block.
	MaxHeaderBytes int
}

// DefaultServerConfig hardens the public query listener: requests are
// small and fast, so the windows are tight.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// IngestServerConfig hardens the admin ingest listener: bodies are up
// to 64 MiB from possibly-slow crawlers and a response waits behind
// the updater queue, so the read/write windows are generous — but the
// header window stays tight, so a slowloris on the admin port dies
// just as fast.
func IngestServerConfig() ServerConfig {
	return ServerConfig{
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// PprofServerConfig hardens the profiling listener: CPU profiles
// stream for tens of seconds, so writes get a long window.
func PprofServerConfig() ServerConfig {
	return ServerConfig{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// Server builds an http.Server over h with the config's limits
// applied.
func (c ServerConfig) Server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: c.ReadHeaderTimeout,
		ReadTimeout:       c.ReadTimeout,
		WriteTimeout:      c.WriteTimeout,
		IdleTimeout:       c.IdleTimeout,
		MaxHeaderBytes:    c.MaxHeaderBytes,
	}
}

// DrainGroup shuts down every listener a process owns in one graceful
// step. Each server is registered once; Shutdown drains them all in
// parallel and reports every failure, so the query plane, the ingest
// plane and the pprof plane stop accepting together and in-flight
// requests on all three finish before the process exits.
type DrainGroup struct {
	mu      sync.Mutex
	servers []namedServer
}

type namedServer struct {
	name string
	srv  *http.Server
}

// Add registers a server under a name used in error reports.
func (g *DrainGroup) Add(name string, srv *http.Server) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.servers = append(g.servers, namedServer{name: name, srv: srv})
}

// Shutdown gracefully drains every registered server in parallel,
// bounded by ctx. The returned slice holds one error per server that
// failed to drain cleanly (typically context.DeadlineExceeded when
// in-flight work outlived the budget); empty means every listener
// closed with all requests completed.
func (g *DrainGroup) Shutdown(ctx context.Context) []error {
	g.mu.Lock()
	servers := append([]namedServer(nil), g.servers...)
	g.mu.Unlock()

	errc := make(chan error, len(servers))
	var wg sync.WaitGroup
	for _, ns := range servers {
		wg.Add(1)
		go func(ns namedServer) {
			defer wg.Done()
			if err := ns.srv.Shutdown(ctx); err != nil {
				errc <- fmt.Errorf("drain %s: %w", ns.name, err)
			}
		}(ns)
	}
	wg.Wait()
	close(errc)
	var errs []error
	for err := range errc {
		errs = append(errs, err)
	}
	return errs
}
