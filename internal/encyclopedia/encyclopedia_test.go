package encyclopedia

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func samplePage() Page {
	return Page{
		Title:    "刘德华",
		Bracket:  "中国香港男演员、歌手",
		Abstract: "刘德华，男演员。",
		Infobox: []Triple{
			{Subject: "刘德华（中国香港男演员、歌手）", Predicate: "职业", Object: "演员"},
		},
		Tags: []string{"人物", "演员"},
	}
}

func TestEntityID(t *testing.T) {
	p := samplePage()
	want := "刘德华（中国香港男演员、歌手）"
	if got := p.ID(); got != want {
		t.Errorf("ID = %q, want %q", got, want)
	}
	bare := Page{Title: "刘德华"}
	if got := bare.ID(); got != "刘德华" {
		t.Errorf("bare ID = %q, want title", got)
	}
}

func TestParseEntityID(t *testing.T) {
	title, bracket := ParseEntityID("刘德华（中国香港男演员）")
	if title != "刘德华" || bracket != "中国香港男演员" {
		t.Errorf("ParseEntityID = %q, %q", title, bracket)
	}
	title, bracket = ParseEntityID("刘德华")
	if title != "刘德华" || bracket != "" {
		t.Errorf("ParseEntityID bare = %q, %q", title, bracket)
	}
	// Unbalanced bracket: treated as plain title.
	title, bracket = ParseEntityID("刘德华（残缺")
	if title != "刘德华（残缺" || bracket != "" {
		t.Errorf("ParseEntityID unbalanced = %q, %q", title, bracket)
	}
}

func TestQuickEntityIDRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		titles := []string{"刘德华", "王伟", "清河市"}
		brackets := []string{"", "演员", "中国城市"}
		title := titles[int(a)%len(titles)]
		bracket := brackets[int(b)%len(brackets)]
		t2, b2 := ParseEntityID(EntityID(title, bracket))
		return t2 == title && b2 == bracket
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusCounts(t *testing.T) {
	c := &Corpus{Pages: []Page{samplePage(), {Title: "空页"}}}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.TripleCount() != 1 {
		t.Errorf("TripleCount = %d", c.TripleCount())
	}
	if c.TagCount() != 2 {
		t.Errorf("TagCount = %d", c.TagCount())
	}
	if c.AbstractCount() != 1 {
		t.Errorf("AbstractCount = %d", c.AbstractCount())
	}
	if c.BracketCount() != 1 {
		t.Errorf("BracketCount = %d", c.BracketCount())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := &Corpus{Pages: []Page{samplePage(), {Title: "第二页", Tags: []string{"组织"}}}}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("round trip pages = %d, want %d", got.Len(), c.Len())
	}
	if got.Pages[0].ID() != c.Pages[0].ID() {
		t.Errorf("page 0 id = %q, want %q", got.Pages[0].ID(), c.Pages[0].ID())
	}
	if got.Pages[0].Infobox[0] != c.Pages[0].Infobox[0] {
		t.Errorf("triple mismatch: %+v", got.Pages[0].Infobox[0])
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := `{"title":"甲"}` + "\n\n" + `{"title":"乙"}` + "\n"
	c, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestReadJSONLReportsBadLine(t *testing.T) {
	in := `{"title":"甲"}` + "\n" + `{bad json` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("ReadJSONL accepted malformed input")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}
