// Package encyclopedia defines the data model of a Chinese encyclopedia
// dump in the CN-DBpedia style the paper consumes: each page has a
// title, an optional disambiguation bracket, an abstract, infobox SPO
// triples and tags (paper, Figure 1). Dumps are read and written as
// JSON Lines, one page per line.
package encyclopedia

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Triple is one infobox SPO triple, e.g.
// <刘德华, 职业, 演员>.
type Triple struct {
	Subject   string `json:"s"`
	Predicate string `json:"p"`
	Object    string `json:"o"`
}

// Page is one encyclopedia page: the unit of extraction.
type Page struct {
	// Title is the entity name, e.g. 刘德华.
	Title string `json:"title"`
	// Bracket is the disambiguation noun compound that follows the
	// title, e.g. 中国香港男演员、歌手、词作人. Empty when the page is not
	// disambiguated.
	Bracket string `json:"bracket,omitempty"`
	// Abstract is the free-text summary paragraph.
	Abstract string `json:"abstract,omitempty"`
	// Infobox holds the page's SPO triples; Subject equals Title.
	Infobox []Triple `json:"infobox,omitempty"`
	// Tags are the page's category-like labels.
	Tags []string `json:"tags,omitempty"`
}

// ID returns the disambiguated entity identifier of the page:
// 标题（括号） when a bracket is present, else the bare title. This is the
// entity-name convention of Figure 1(a).
func (p *Page) ID() string { return EntityID(p.Title, p.Bracket) }

// EntityID composes a disambiguated entity identifier.
func EntityID(title, bracket string) string {
	if bracket == "" {
		return title
	}
	return title + "（" + bracket + "）"
}

// ParseEntityID splits a disambiguated identifier back into title and
// bracket. IDs without a bracket return an empty bracket.
func ParseEntityID(id string) (title, bracket string) {
	open := strings.Index(id, "（")
	if open < 0 || !strings.HasSuffix(id, "）") {
		return id, ""
	}
	title = id[:open]
	bracket = strings.TrimSuffix(id[open+len("（"):], "）")
	return title, bracket
}

// Corpus is an in-memory encyclopedia dump.
type Corpus struct {
	Pages []Page
}

// Len returns the number of pages.
func (c *Corpus) Len() int { return len(c.Pages) }

// TripleCount returns the total number of infobox triples.
func (c *Corpus) TripleCount() int {
	n := 0
	for i := range c.Pages {
		n += len(c.Pages[i].Infobox)
	}
	return n
}

// TagCount returns the total number of tags.
func (c *Corpus) TagCount() int {
	n := 0
	for i := range c.Pages {
		n += len(c.Pages[i].Tags)
	}
	return n
}

// AbstractCount returns the number of pages with a non-empty abstract.
func (c *Corpus) AbstractCount() int {
	n := 0
	for i := range c.Pages {
		if c.Pages[i].Abstract != "" {
			n++
		}
	}
	return n
}

// BracketCount returns the number of pages with a disambiguation
// bracket.
func (c *Corpus) BracketCount() int {
	n := 0
	for i := range c.Pages {
		if c.Pages[i].Bracket != "" {
			n++
		}
	}
	return n
}

// WriteJSONL writes the corpus as JSON Lines.
func (c *Corpus) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range c.Pages {
		if err := enc.Encode(&c.Pages[i]); err != nil {
			return fmt.Errorf("encyclopedia: encode page %d (%s): %w", i, c.Pages[i].Title, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a corpus written by WriteJSONL. Blank lines are
// skipped; a malformed line aborts with an error naming the line.
func ReadJSONL(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var c Corpus
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var p Page
		if err := json.Unmarshal([]byte(text), &p); err != nil {
			return nil, fmt.Errorf("encyclopedia: line %d: %w", line, err)
		}
		c.Pages = append(c.Pages, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("encyclopedia: scan: %w", err)
	}
	return &c, nil
}
