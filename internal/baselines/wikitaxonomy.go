// Package baselines implements the three comparison taxonomies of the
// paper's Table I: Chinese WikiTaxonomy (single-source, tag-only, high
// precision / low coverage), Bigcilin (multi-source without a
// verification module) and Probase-Tran (English Probase translated to
// Chinese, with the paper's three post-translation filters).
package baselines

import (
	"math/rand"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/taxonomy"
)

// WikiTaxonomyConfig tunes the tag-only baseline (after Li et al. 2015,
// the "Chinese WikiTaxonomy" row).
type WikiTaxonomyConfig struct {
	// SubsampleRate models the smaller single-encyclopedia corpus the
	// original system was built from (581k entities vs CN-DBpedia's
	// 16M): only this fraction of pages contributes.
	SubsampleRate float64
	// MinTagCount drops tags seen fewer times corpus-wide — the strict
	// filtering that buys the system its high precision.
	MinTagCount int
	Seed        int64
}

// DefaultWikiTaxonomyConfig mirrors the coverage/precision trade-off of
// the paper's Table I row.
func DefaultWikiTaxonomyConfig() WikiTaxonomyConfig {
	return WikiTaxonomyConfig{SubsampleRate: 0.07, MinTagCount: 2, Seed: 11}
}

// BuildWikiTaxonomy constructs the tag-only baseline taxonomy.
func BuildWikiTaxonomy(c *encyclopedia.Corpus, cfg WikiTaxonomyConfig) *taxonomy.Taxonomy {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pass 1: corpus-wide tag counts (over the subsample).
	chosen := make([]bool, len(c.Pages))
	tagCount := make(map[string]int)
	for i := range c.Pages {
		if rng.Float64() >= cfg.SubsampleRate {
			continue
		}
		chosen[i] = true
		for _, t := range c.Pages[i].Tags {
			tagCount[t]++
		}
	}
	// Pass 2: emit filtered tag edges. The title gazetteer only covers
	// the pages the system actually crawled (its own subsample), so a
	// sliver of entity-title tag noise survives — which is why the
	// original reports 97.6% rather than 100%.
	titles := make(map[string]bool, len(c.Pages))
	for i := range c.Pages {
		if chosen[i] {
			titles[c.Pages[i].Title] = true
		}
	}
	tax := taxonomy.New()
	regions := make(map[string]bool)
	for _, r := range lexicon.Regions() {
		regions[r] = true
	}
	for i := range c.Pages {
		if !chosen[i] {
			continue
		}
		p := &c.Pages[i]
		id := p.ID()
		tax.MarkEntity(id)
		for _, t := range p.Tags {
			switch {
			case t == "" || t == p.Title:
			case lexicon.IsThematic(t): // their syntactic/lexicon filter
			case regions[t]: // gazetteer filter
			case titles[t]: // tags that are themselves entity pages
			case tagCount[t] < cfg.MinTagCount:
			default:
				// Error deliberately ignored: the only failure mode is
				// a self-loop, excluded above.
				_ = tax.AddIsA(id, t, taxonomy.SourceTag, 1)
			}
		}
	}
	return tax
}
