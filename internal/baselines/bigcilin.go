package baselines

import (
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/lexicon"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

// BigcilinConfig tunes the multi-source, no-verification baseline
// (after Fu et al., EMNLP 2013). It extracts from the same sources as
// CN-Probase but with simpler algorithms and — crucially — without the
// verification module, which is the comparison the paper draws.
type BigcilinConfig struct {
	// InfoboxPredicates is the fixed hand-picked predicate list (no
	// predicate discovery).
	InfoboxPredicates []string
	// MinTagCount drops singleton tags — the light frequency-based
	// quality control the original system applies (no semantic
	// verification, which is the gap the paper exploits).
	MinTagCount int
}

// DefaultBigcilinConfig uses the two predicates any Chinese KB engineer
// would hand-pick plus singleton-tag removal.
func DefaultBigcilinConfig() BigcilinConfig {
	return BigcilinConfig{InfoboxPredicates: []string{"职业", "类型"}, MinTagCount: 2}
}

// BuildBigcilin constructs the baseline: raw tags + suffix-heuristic
// brackets + fixed-predicate infobox, merged with no verification.
func BuildBigcilin(c *encyclopedia.Corpus, cfg BigcilinConfig) *taxonomy.Taxonomy {
	seg := segment.New(lexicon.BaseDictionary())
	sel := make(map[string]bool, len(cfg.InfoboxPredicates))
	for _, p := range cfg.InfoboxPredicates {
		sel[p] = true
	}
	tagCount := make(map[string]int)
	for i := range c.Pages {
		for _, t := range c.Pages[i].Tags {
			tagCount[t]++
		}
	}
	tax := taxonomy.New()
	for i := range c.Pages {
		p := &c.Pages[i]
		id := p.ID()
		tax.MarkEntity(id)
		add := func(h string) {
			if h != "" && h != p.Title && h != id {
				_ = tax.AddIsA(id, h, taxonomy.SourceTag, 1)
			}
		}
		// Tags: frequency filter plus a thematic-word lexicon (the
		// cilin-style resource the original leans on) — but no NE or
		// incompatibility verification, which is the gap the paper's
		// Table I exposes.
		for _, t := range p.Tags {
			if tagCount[t] >= cfg.MinTagCount && !lexicon.IsThematic(t) {
				add(t)
			}
		}
		// Brackets: naive heuristic — the last dictionary word of each
		// compound is the hypernym (no PMI separation, so compound
		// titles like 首席战略官 degrade to 战略官 only and modifiers
		// sometimes leak).
		for _, part := range splitOnEnumeration(p.Bracket) {
			add(suffixHypernym(part, seg))
		}
		// Infobox: fixed predicates.
		for _, t := range p.Infobox {
			if sel[t.Predicate] {
				add(t.Object)
			}
		}
	}
	return tax
}

// suffixHypernym returns the last content word of a compound.
func suffixHypernym(compound string, seg *segment.Segmenter) string {
	toks := seg.Cut(compound)
	for i := len(toks) - 1; i >= 0; i-- {
		if segment.IsContentToken(toks[i]) && len([]rune(toks[i])) >= 2 {
			return toks[i]
		}
	}
	return ""
}

func splitOnEnumeration(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	rs := []rune(s)
	for i, r := range rs {
		if r == '、' || r == '，' || r == ',' {
			if i > start {
				out = append(out, string(rs[start:i]))
			}
			start = i + 1
		}
	}
	if start < len(rs) {
		out = append(out, string(rs[start:]))
	}
	return out
}
