package baselines

import (
	"math/rand"
	"strings"

	"cnprobase/internal/lexicon"
	"cnprobase/internal/runes"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// ProbaseTranConfig tunes the translation baseline: English Probase →
// (machine translation) → Chinese taxonomy, filtered by the paper's
// three heuristics (meaning, transitivity, POS).
type ProbaseTranConfig struct {
	// EntityRate is the fraction of the world's entities that English
	// Probase knows about (Probase covers far fewer Chinese entities
	// than a Chinese encyclopedia: 405k vs 15M in Table I).
	EntityRate float64
	// WrongTranslationRate is the probability a concept translation
	// picks a wrong homonym (simulating the ambiguity the paper blames
	// for Probase-Tran's 54.5% precision).
	WrongTranslationRate float64
	// EnglishNoiseRate is English Probase's own error rate (~8%:
	// Probase's reported precision band).
	EnglishNoiseRate float64
	// FilterMeaning / FilterTransitivity / FilterPOS toggle the three
	// post-translation filters.
	FilterMeaning      bool
	FilterTransitivity bool
	FilterPOS          bool
	Seed               int64
}

// DefaultProbaseTranConfig mirrors the paper's setting: all three
// filters on, translation ambiguity dominating.
func DefaultProbaseTranConfig() ProbaseTranConfig {
	return ProbaseTranConfig{
		EntityRate:           0.25,
		WrongTranslationRate: 0.25,
		EnglishNoiseRate:     0.06,
		FilterMeaning:        true,
		FilterTransitivity:   true,
		FilterPOS:            true,
		Seed:                 23,
	}
}

// wrongHomonyms supplies realistic wrong translations: real Chinese
// nouns that an MT system plausibly picks for the ambiguous English
// word. These survive the meaning and POS filters — which is why the
// paper finds simple translation cannot produce a high-quality Chinese
// taxonomy.
var wrongHomonyms = map[string][]string{
	"model":        {"模型"},
	"host":         {"主机"},
	"work":         {"工作"},
	"film":         {"薄膜"},
	"band":         {"波段"},
	"bank":         {"河岸"},
	"novel":        {"新颖"},
	"plant":        {"工厂"},
	"country":      {"乡村"},
	"company":      {"连队"},
	"fish":         {"钓鱼"},
	"game":         {"猎物"},
	"song":         {"宋朝"},
	"singer":       {"缝纫机"},
	"director":     {"主任"},
	"doctor":       {"博士"},
	"teacher":      {"教师机"},
	"car":          {"车厢"},
	"mobile phone": {"移动"},
	"organization": {"组织结构"},
}

// TranReport describes what the translation pipeline did.
type TranReport struct {
	EnglishPairs   int
	Translated     int
	DroppedMeaning int
	DroppedPOS     int
	DroppedTrans   int
}

// BuildProbaseTran synthesizes an English Probase view of the world,
// translates it to Chinese with a noisy dictionary + transliteration,
// applies the three filters and returns the resulting taxonomy.
func BuildProbaseTran(w *synth.World, cfg ProbaseTranConfig) (*taxonomy.Taxonomy, TranReport) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rep TranReport

	type enPair struct{ hypo, hyper string }
	var pairs []enPair
	conceptsEn := make([]string, 0, len(w.ConceptOrder))
	for _, name := range w.ConceptOrder {
		conceptsEn = append(conceptsEn, w.Concepts[name].En)
	}
	// Entity-concept pairs for the subset Probase knows.
	for _, e := range w.Entities {
		if rng.Float64() >= cfg.EntityRate {
			continue
		}
		for _, c := range e.Concepts {
			en := w.Concepts[c].En
			if rng.Float64() < cfg.EnglishNoiseRate {
				en = conceptsEn[rng.Intn(len(conceptsEn))] // Probase's own noise
			}
			pairs = append(pairs, enPair{hypo: e.English, hyper: en})
		}
	}
	// Concept-concept pairs from the ontology (Probase is concept
	// dense).
	for _, name := range w.ConceptOrder {
		ci := w.Concepts[name]
		if ci.Parent == "" {
			continue
		}
		pairs = append(pairs, enPair{hypo: ci.En, hyper: w.Concepts[ci.Parent].En})
	}
	rep.EnglishPairs = len(pairs)

	// ---- translate ----
	translateConcept := func(en string) string {
		if wrong, ok := wrongHomonyms[en]; ok && rng.Float64() < cfg.WrongTranslationRate {
			return wrong[rng.Intn(len(wrong))]
		}
		if zh, ok := lexicon.FromEnglish(en); ok {
			return zh
		}
		return "" // untranslatable
	}
	translateNode := func(en string) string {
		if _, ok := lexicon.FromEnglish(en); ok {
			return translateConcept(en) // concept: dictionary, maybe wrong homonym
		}
		return transliterate(en) // entity label: syllable inversion
	}

	type zhPair struct{ hypo, hyper string }
	var zhPairs []zhPair
	for _, p := range pairs {
		hypo := translateNode(p.hypo)
		hyper := translateConcept(p.hyper)
		if hypo == "" || hyper == "" || hypo == hyper {
			rep.DroppedMeaning++
			continue
		}
		zhPairs = append(zhPairs, zhPair{hypo, hyper})
	}
	rep.Translated = len(zhPairs)

	// ---- the three filters ----
	dictionary := make(map[string]bool)
	for _, wd := range lexicon.BaseDictionary() {
		dictionary[wd] = true
	}
	edgeSet := make(map[zhPair]bool, len(zhPairs))
	for _, p := range zhPairs {
		edgeSet[p] = true
	}
	tax := taxonomy.New()
	for _, p := range zhPairs {
		// (1) meaning: the hypernym must be a real Chinese lexicon
		// word (garbled translations die here).
		if cfg.FilterMeaning && !dictionary[p.hyper] && !runes.AllHan(p.hyper) {
			rep.DroppedMeaning++
			continue
		}
		// (2) POS: hypernym must be noun-like — at least two Han runes
		// and not a function word.
		if cfg.FilterPOS && (!runes.AllHan(p.hyper) || runes.Len(p.hyper) < 2) {
			rep.DroppedPOS++
			continue
		}
		// (3) transitivity: drop 2-cycles introduced by translation
		// collapsing two English words onto one Chinese word.
		if cfg.FilterTransitivity && edgeSet[zhPair{p.hyper, p.hypo}] {
			rep.DroppedTrans++
			continue
		}
		if err := tax.AddIsA(p.hypo, p.hyper, taxonomy.SourceTranslation, 1); err != nil {
			continue
		}
		if !w.IsConcept(p.hypo) {
			tax.MarkEntity(p.hypo)
		}
	}
	return tax, rep
}

// transliterate inverts a romanized person name syllable by syllable,
// picking the position-appropriate canonical character: the surname
// table for the first field, the given-name table afterwards. It is
// right only when the original characters were the canonical ones —
// the ambiguity that wrecks entity translation.
func transliterate(en string) string {
	parts := strings.Fields(strings.ToLower(en))
	var out strings.Builder
	for pi, part := range parts {
		for _, syl := range splitSyllables(part) {
			var (
				ch string
				ok bool
			)
			if pi == 0 {
				ch, ok = lexicon.PinyinToChar(syl)
			} else {
				ch, ok = lexicon.PinyinToGivenChar(syl)
			}
			if !ok {
				return ""
			}
			out.WriteString(ch)
		}
	}
	return out.String()
}

// splitSyllables greedily cuts a concatenated pinyin string into known
// syllables, longest first.
func splitSyllables(s string) []string {
	var out []string
	for len(s) > 0 {
		matched := ""
		for l := len(s); l >= 1; l-- {
			if _, ok := lexicon.PinyinToChar(s[:l]); ok {
				matched = s[:l]
				break
			}
		}
		if matched == "" {
			return nil
		}
		out = append(out, matched)
		s = s[len(matched):]
	}
	return out
}
