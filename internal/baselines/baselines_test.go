package baselines

import (
	"testing"

	"cnprobase/internal/eval"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

func testWorld(t testing.TB) *synth.World {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Entities = 1500
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return w
}

func precisionOf(tx *taxonomy.Taxonomy, o *synth.Oracle) float64 {
	return eval.SamplePrecision(eval.EdgePairs(tx.Edges(), 0), o, 2000, 1).Precision()
}

func TestWikiTaxonomyHighPrecisionLowCoverage(t *testing.T) {
	w := testWorld(t)
	o := w.Oracle()
	wiki := BuildWikiTaxonomy(w.Corpus(), DefaultWikiTaxonomyConfig())
	big := BuildBigcilin(w.Corpus(), DefaultBigcilinConfig())

	pw, pb := precisionOf(wiki, o), precisionOf(big, o)
	if pw < 0.93 {
		t.Errorf("WikiTaxonomy precision = %.3f, want ≥0.93", pw)
	}
	if pw <= pb {
		t.Errorf("WikiTaxonomy precision %.3f should exceed Bigcilin %.3f", pw, pb)
	}
	if wiki.EdgeCount()*3 > big.EdgeCount() {
		t.Errorf("WikiTaxonomy isA=%d should be far below Bigcilin=%d", wiki.EdgeCount(), big.EdgeCount())
	}
}

func TestWikiTaxonomySubsampleScaling(t *testing.T) {
	w := testWorld(t)
	small := BuildWikiTaxonomy(w.Corpus(), WikiTaxonomyConfig{SubsampleRate: 0.05, MinTagCount: 2, Seed: 1})
	large := BuildWikiTaxonomy(w.Corpus(), WikiTaxonomyConfig{SubsampleRate: 0.5, MinTagCount: 2, Seed: 1})
	if small.EdgeCount() >= large.EdgeCount() {
		t.Errorf("subsample 0.05 (%d edges) should be smaller than 0.5 (%d)",
			small.EdgeCount(), large.EdgeCount())
	}
}

func TestBigcilinBand(t *testing.T) {
	w := testWorld(t)
	o := w.Oracle()
	big := BuildBigcilin(w.Corpus(), DefaultBigcilinConfig())
	p := precisionOf(big, o)
	// The paper's band: around 90%, clearly below CN-Probase's 95%.
	if p < 0.82 || p > 0.97 {
		t.Errorf("Bigcilin precision = %.3f, want within (0.82, 0.97)", p)
	}
	st := big.ComputeStats()
	if st.Entities == 0 || st.Concepts == 0 {
		t.Errorf("Bigcilin empty: %+v", st)
	}
}

func TestProbaseTranWorstPrecision(t *testing.T) {
	w := testWorld(t)
	o := w.Oracle()
	tran, rep := BuildProbaseTran(w, DefaultProbaseTranConfig())
	if rep.EnglishPairs == 0 || rep.Translated == 0 {
		t.Fatalf("translation pipeline empty: %+v", rep)
	}
	p := precisionOf(tran, o)
	if p > 0.75 {
		t.Errorf("Probase-Tran precision = %.3f; translation should be clearly lossy", p)
	}
	wiki := BuildWikiTaxonomy(w.Corpus(), DefaultWikiTaxonomyConfig())
	if pw := precisionOf(wiki, o); p >= pw {
		t.Errorf("Probase-Tran %.3f should be far below WikiTaxonomy %.3f", p, pw)
	}
}

func TestProbaseTranFiltersImprovePrecision(t *testing.T) {
	w := testWorld(t)
	o := w.Oracle()
	on := DefaultProbaseTranConfig()
	off := on
	off.FilterMeaning = false
	off.FilterTransitivity = false
	off.FilterPOS = false
	withFilters, _ := BuildProbaseTran(w, on)
	withoutFilters, _ := BuildProbaseTran(w, off)
	pOn, pOff := precisionOf(withFilters, o), precisionOf(withoutFilters, o)
	if pOn < pOff-0.02 {
		t.Errorf("filters should not hurt precision: on=%.3f off=%.3f", pOn, pOff)
	}
	if withoutFilters.EdgeCount() < withFilters.EdgeCount() {
		t.Errorf("filters should remove edges: on=%d off=%d",
			withFilters.EdgeCount(), withoutFilters.EdgeCount())
	}
}

func TestTransliterate(t *testing.T) {
	// Canonical names round-trip; non-canonical characters produce a
	// different (wrong) name — the designed ambiguity.
	if got := transliterate("Wang Wei"); got != "王伟" {
		t.Errorf("transliterate(Wang Wei) = %q, want 王伟", got)
	}
	if got := transliterate("Zhang Ming"); got != "张明" {
		t.Errorf("transliterate(Zhang Ming) = %q, want 张明", got)
	}
	if got := transliterate("Xyzzy Foo"); got != "" {
		t.Errorf("transliterate(garbage) = %q, want empty", got)
	}
}

func TestSplitSyllables(t *testing.T) {
	got := splitSyllables("minghua")
	if len(got) != 2 || got[0] != "ming" || got[1] != "hua" {
		t.Errorf("splitSyllables(minghua) = %v", got)
	}
	if got := splitSyllables("zzz"); got != nil {
		t.Errorf("splitSyllables(zzz) = %v, want nil", got)
	}
}

func TestSuffixHypernymHelper(t *testing.T) {
	w := testWorld(t)
	big := BuildBigcilin(w.Corpus(), DefaultBigcilinConfig())
	// The naive heuristic keeps only tail words; composed hypernyms
	// like 首席战略官 should be rare or absent compared to 战略官.
	if n := big.HyponymCount("首席战略官"); n > big.HyponymCount("战略官") {
		t.Errorf("suffix heuristic should favor bare heads: 首席战略官=%d 战略官=%d",
			n, big.HyponymCount("战略官"))
	}
}
