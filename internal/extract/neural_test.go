package extract

import (
	"testing"

	"cnprobase/internal/copynet"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

func TestBuildDistantDataset(t *testing.T) {
	seg := testSegmenter()
	c := &encyclopedia.Corpus{Pages: []encyclopedia.Page{
		{Title: "刘德华", Bracket: "男演员", Abstract: "刘德华，中国香港男演员。"},
		{Title: "无摘要", Bracket: "歌手"}, // no abstract → no sample
	}}
	cands := []Candidate{
		{Hypo: "刘德华（男演员）", Hyper: "男演员", Source: taxonomy.SourceBracket},
		{Hypo: "无摘要（歌手）", Hyper: "歌手", Source: taxonomy.SourceBracket},
	}
	samples := BuildDistantDataset(c, cands, seg)
	if len(samples) != 1 {
		t.Fatalf("samples = %+v, want 1", samples)
	}
	if len(samples[0].Src) == 0 {
		t.Fatal("empty source tokens")
	}
	if len(samples[0].Tgt) != 1 || samples[0].Tgt[0] != "男演员" {
		t.Errorf("target = %v, want [男演员]", samples[0].Tgt)
	}
	// Source tokens are content only (no punctuation).
	for _, tok := range samples[0].Src {
		if !segment.IsContentToken(tok) {
			t.Errorf("non-content token %q in source", tok)
		}
	}
}

func TestNeuralExtractSkipsDegenerate(t *testing.T) {
	n := &Neural{} // no model, no segmenter
	if got := n.Extract(&encyclopedia.Page{Title: "x"}); got != nil {
		t.Errorf("Extract without abstract = %v", got)
	}
}

func TestTrainNeuralAndExtract(t *testing.T) {
	seg := testSegmenter()
	// Train on a tiny degenerate task: the defining phrase always ends
	// with the concept.
	var samples []copynet.Sample
	for i := 0; i < 120; i++ {
		samples = append(samples, copynet.Sample{
			Src: []string{"他", "是", "著名", "歌手"},
			Tgt: []string{"歌手"},
		})
	}
	cfg := copynet.Config{Dim: 8, Hidden: 10, Att: 8, MaxSrc: 8, MaxTgt: 2, Vocab: 20, UseCopy: true, Seed: 2}
	reports := 0
	n := TrainNeural(cfg, samples, 3, 0.02, func(copynet.TrainReport) { reports++ })
	if reports != 3 {
		t.Errorf("progress reports = %d, want 3", reports)
	}
	n.SetSegmenter(seg)
	page := &encyclopedia.Page{Title: "张三", Abstract: "他是著名歌手。"}
	cands := n.Extract(page)
	if len(cands) != 1 {
		t.Fatalf("Extract = %+v", cands)
	}
	if cands[0].Hyper != "歌手" || cands[0].Source != taxonomy.SourceAbstract {
		t.Errorf("candidate = %+v", cands[0])
	}
}
