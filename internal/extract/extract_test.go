package extract

import (
	"testing"

	"cnprobase/internal/corpus"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

// figure3Stats builds corpus statistics that encode the PMI landscape
// of the paper's Figure 3 example: 蚂蚁金服 is a cohesive company name,
// 首席战略官 a cohesive title, and the junction 金服→首席 is weak.
func figure3Stats() *corpus.Stats {
	st := corpus.NewStats()
	for i := 0; i < 30; i++ {
		st.AddSentence([]string{"蚂蚁", "金服"})
		st.AddSentence([]string{"首席", "战略官"})
	}
	for i := 0; i < 3; i++ {
		st.AddSentence([]string{"蚂蚁", "金服", "首席", "战略官"})
	}
	// Background words so the distribution is not degenerate.
	for i := 0; i < 20; i++ {
		st.AddSentence([]string{"中国", "演员"})
		st.AddSentence([]string{"中国香港", "男演员"})
	}
	return st
}

func testSegmenter() *segment.Segmenter {
	return segment.New([]string{
		"蚂蚁", "金服", "首席", "战略官", "中国", "中国香港",
		"男演员", "演员", "歌手", "词作人", "著名",
	})
}

func TestSeparationFigure3(t *testing.T) {
	sep := NewSeparator(testSegmenter(), figure3Stats())
	tree := sep.Separate("蚂蚁金服首席战略官")
	wantWords := []string{"蚂蚁", "金服", "首席", "战略官"}
	if len(tree.Words) != len(wantWords) {
		t.Fatalf("words = %v, want %v", tree.Words, wantWords)
	}
	for i := range wantWords {
		if tree.Words[i] != wantWords[i] {
			t.Fatalf("words = %v, want %v", tree.Words, wantWords)
		}
	}
	// The rightmost path must yield the title, not the company.
	if len(tree.Hypernyms) == 0 {
		t.Fatal("no hypernyms")
	}
	got := make(map[string]bool)
	for _, h := range tree.Hypernyms {
		got[h] = true
	}
	if !got["首席战略官"] {
		t.Errorf("hypernyms %v missing 首席战略官", tree.Hypernyms)
	}
	if !got["战略官"] {
		t.Errorf("hypernyms %v missing 战略官", tree.Hypernyms)
	}
	for _, h := range tree.Hypernyms {
		if h == "蚂蚁金服" || h == "蚂蚁金服首席战略官" {
			t.Errorf("hypernyms %v include modifier/root constituent %q", tree.Hypernyms, h)
		}
	}
}

func TestSeparationSingleWord(t *testing.T) {
	sep := NewSeparator(testSegmenter(), figure3Stats())
	tree := sep.Separate("演员")
	if len(tree.Hypernyms) != 1 || tree.Hypernyms[0] != "演员" {
		t.Errorf("Hypernyms = %v, want [演员]", tree.Hypernyms)
	}
}

func TestSeparationTwoWords(t *testing.T) {
	sep := NewSeparator(testSegmenter(), figure3Stats())
	tree := sep.Separate("中国香港男演员")
	if len(tree.Hypernyms) != 1 || tree.Hypernyms[0] != "男演员" {
		t.Errorf("Hypernyms = %v, want [男演员]", tree.Hypernyms)
	}
}

func TestSeparationEmpty(t *testing.T) {
	sep := NewSeparator(testSegmenter(), figure3Stats())
	if tree := sep.Separate(""); len(tree.Hypernyms) != 0 {
		t.Errorf("Separate(\"\") hypernyms = %v", tree.Hypernyms)
	}
}

func TestSeparatorExtractEnumeratedBracket(t *testing.T) {
	sep := NewSeparator(testSegmenter(), figure3Stats())
	cands := sep.Extract("刘德华", "中国香港男演员、歌手、词作人")
	want := map[string]bool{"男演员": true, "歌手": true, "词作人": true}
	if len(cands) != len(want) {
		t.Fatalf("candidates = %+v, want 3", cands)
	}
	for _, c := range cands {
		if !want[c.Hyper] {
			t.Errorf("unexpected hypernym %q", c.Hyper)
		}
		if c.Hypo != "刘德华（中国香港男演员、歌手、词作人）" {
			t.Errorf("hypo = %q", c.Hypo)
		}
		if c.Source != taxonomy.SourceBracket {
			t.Errorf("source = %v", c.Source)
		}
	}
}

func TestSeparatorExtractNoBracket(t *testing.T) {
	sep := NewSeparator(testSegmenter(), figure3Stats())
	if got := sep.Extract("刘德华", ""); got != nil {
		t.Errorf("Extract with empty bracket = %v", got)
	}
}

func TestTagsExtraction(t *testing.T) {
	p := &encyclopedia.Page{
		Title: "刘德华",
		Tags:  []string{"演员", "人物", "刘德华", "", "Andy"},
	}
	cands := Tags(p)
	if len(cands) != 2 {
		t.Fatalf("Tags = %+v, want 2 candidates", cands)
	}
	for _, c := range cands {
		if c.Hyper == "刘德华" || c.Hyper == "Andy" || c.Hyper == "" {
			t.Errorf("Tags kept invalid hypernym %q", c.Hyper)
		}
	}
}

func TestDedupe(t *testing.T) {
	in := []Candidate{
		{Hypo: "a", Hyper: "b", Source: taxonomy.SourceTag, Score: 0.5},
		{Hypo: "a", Hyper: "b", Source: taxonomy.SourceBracket, Score: 0.9},
		{Hypo: "a", Hyper: "c", Source: taxonomy.SourceTag, Score: 1},
	}
	out := Dedupe(in)
	if len(out) != 2 {
		t.Fatalf("Dedupe len = %d, want 2", len(out))
	}
	first := out[0]
	if first.Hypo != "a" || first.Hyper != "b" {
		t.Fatalf("Dedupe order wrong: %+v", out)
	}
	if first.Source&taxonomy.SourceTag == 0 || first.Source&taxonomy.SourceBracket == 0 {
		t.Errorf("sources not merged: %v", first.Source)
	}
	if first.Score != 0.9 {
		t.Errorf("score = %v, want max 0.9", first.Score)
	}
}

func buildTestCorpus() *encyclopedia.Corpus {
	c := &encyclopedia.Corpus{}
	// 30 pages whose 职业 triples align with bracket-derived isA; a
	// noisy predicate 相关人物 whose objects rarely align.
	for i := 0; i < 30; i++ {
		id := encyclopedia.EntityID("人"+string(rune('一'+i)), "演员")
		page := encyclopedia.Page{
			Title:   "人" + string(rune('一'+i)),
			Bracket: "演员",
			Infobox: []encyclopedia.Triple{
				{Subject: id, Predicate: "职业", Object: "演员"},
				{Subject: id, Predicate: "国籍", Object: "中国"},
			},
		}
		if i < 2 {
			page.Infobox = append(page.Infobox,
				encyclopedia.Triple{Subject: id, Predicate: "相关人物", Object: "演员"})
		} else {
			page.Infobox = append(page.Infobox,
				encyclopedia.Triple{Subject: id, Predicate: "相关人物", Object: "某人"})
		}
		c.Pages = append(c.Pages, page)
	}
	return c
}

func TestPredicateDiscovery(t *testing.T) {
	c := buildTestCorpus()
	var prior []Candidate
	for i := range c.Pages {
		prior = append(prior, Candidate{Hypo: c.Pages[i].ID(), Hyper: "演员", Source: taxonomy.SourceBracket})
	}
	pd := PredicateDiscovery{MinAligned: 1, MinScore: 0.5, MaxSelected: 12}
	cands, selected := pd.Discover(c, NewPrior(prior))
	if len(cands) < 2 {
		t.Fatalf("candidates = %+v, want 职业 and 相关人物", cands)
	}
	if cands[0].Predicate != "职业" {
		t.Errorf("top candidate = %q, want 职业", cands[0].Predicate)
	}
	if len(selected) != 1 || selected[0] != "职业" {
		t.Errorf("selected = %v, want [职业]", selected)
	}
	// 国籍 never aligns → not a candidate at all.
	for _, cand := range cands {
		if cand.Predicate == "国籍" {
			t.Error("国籍 should not be a candidate")
		}
	}
}

func TestPredicateDiscoveryWhitelist(t *testing.T) {
	c := buildTestCorpus()
	pd := PredicateDiscovery{Whitelist: []string{"职业"}}
	_, selected := pd.Discover(c, NewPrior(nil))
	if len(selected) != 1 || selected[0] != "职业" {
		t.Errorf("whitelist ignored: %v", selected)
	}
}

func TestExtractInfobox(t *testing.T) {
	c := buildTestCorpus()
	cands := ExtractInfobox(c, []string{"职业"})
	if len(cands) != 30 {
		t.Fatalf("ExtractInfobox = %d candidates, want 30", len(cands))
	}
	for _, cand := range cands {
		if cand.Hyper != "演员" || cand.Source != taxonomy.SourceInfobox {
			t.Fatalf("bad candidate %+v", cand)
		}
	}
	if got := ExtractInfobox(c, nil); got != nil {
		t.Errorf("no predicates should yield no candidates, got %d", len(got))
	}
}

func TestPredicateStatScore(t *testing.T) {
	if got := (PredicateStat{Total: 0, Aligned: 0}).Score(); got != 0 {
		t.Errorf("zero-total score = %v", got)
	}
	if got := (PredicateStat{Total: 4, Aligned: 1}).Score(); got != 0.25 {
		t.Errorf("score = %v, want 0.25", got)
	}
}
