package extract

import (
	"strings"

	"cnprobase/internal/copynet"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

// Neural wraps the copy-mechanism encoder–decoder as the abstract
// extractor (paper Section II, neural generation).
type Neural struct {
	model *copynet.Model
	seg   *segment.Segmenter
}

// BuildDistantDataset assembles the distant-supervision training set:
// for every high-precision bracket-derived isA(e, h), the abstract of e
// becomes the source and h the target (paper: 300k+ pairs built the
// same way).
func BuildDistantDataset(c *encyclopedia.Corpus, bracketCands []Candidate, seg *segment.Segmenter) []copynet.Sample {
	abstracts := make(map[string][]string) // entity ID → segmented abstract
	var buf []string                       // recycled across pages; contentTokens copies out
	for i := range c.Pages {
		p := &c.Pages[i]
		if p.Abstract == "" {
			continue
		}
		buf = seg.CutAppend(buf[:0], p.Abstract)
		abstracts[p.ID()] = contentTokens(buf)
	}
	var out []copynet.Sample
	for _, cand := range bracketCands {
		src, ok := abstracts[cand.Hypo]
		if !ok || len(src) == 0 {
			continue
		}
		tgt := seg.Cut(cand.Hyper)
		if len(tgt) == 0 {
			continue
		}
		out = append(out, copynet.Sample{Src: src, Tgt: tgt})
	}
	return out
}

// contentTokens keeps Han tokens and drops pure punctuation/latin runs;
// the decoder never needs to produce them and dropping them shortens
// the attention span.
func contentTokens(tokens []string) []string {
	var out []string
	for _, t := range tokens {
		if segment.IsContentToken(t) {
			out = append(out, t)
		}
	}
	return out
}

// TrainNeural trains a model on the distant dataset and returns the
// extractor. Progress reports (one per epoch) go to the optional
// callback.
func TrainNeural(cfg copynet.Config, samples []copynet.Sample, epochs int, lr float64, progress func(copynet.TrainReport)) *Neural {
	var seqs [][]string
	for _, s := range samples {
		seqs = append(seqs, s.Src, s.Tgt)
	}
	vocab := copynet.BuildVocab(seqs, cfg.Vocab)
	model := copynet.New(cfg, vocab)
	model.Train(samples, epochs, lr, progress)
	return &Neural{model: model}
}

// NewNeural wraps an already-trained model.
func NewNeural(model *copynet.Model, seg *segment.Segmenter) *Neural {
	return &Neural{model: model, seg: seg}
}

// SetSegmenter attaches the segmenter used at extraction time.
func (n *Neural) SetSegmenter(seg *segment.Segmenter) { n.seg = seg }

// Model exposes the underlying network (for ablation experiments).
func (n *Neural) Model() *copynet.Model { return n.model }

// Extract generates a concept from the page's abstract and emits it as
// a candidate for the page's entity.
func (n *Neural) Extract(page *encyclopedia.Page) []Candidate {
	if page.Abstract == "" || n.seg == nil {
		return nil
	}
	bufp := cutBufPool.Get().(*[]string)
	toks := n.seg.CutAppend((*bufp)[:0], page.Abstract)
	src := contentTokens(toks)
	*bufp = toks
	cutBufPool.Put(bufp)
	if len(src) == 0 {
		return nil
	}
	tokens := n.model.Generate(src)
	concept := strings.Join(tokens, "")
	if !validHypernym(concept) || concept == page.Title {
		return nil
	}
	return []Candidate{{Hypo: page.ID(), Hyper: concept, Source: taxonomy.SourceAbstract, Score: 0.8}}
}
