package extract

import (
	"sort"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/taxonomy"
)

// PredicateStat summarizes one predicate's alignment with the
// high-precision prior isA relations: how often its object is a known
// hypernym of its subject. The paper reports 341 candidates of which 12
// were curated (Section II, predicate discovery).
type PredicateStat struct {
	Predicate string
	// Total is the number of triples with this predicate.
	Total int
	// Aligned is the number of triples (s, p, o) with isA(s, o) in the
	// prior.
	Aligned int
}

// Score is the alignment rate Aligned/Total.
func (p PredicateStat) Score() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Aligned) / float64(p.Total)
}

// PredicateDiscovery configures the infobox extractor.
type PredicateDiscovery struct {
	// MinAligned is the minimum number of prior alignments for a
	// predicate to become a candidate (paper: any alignment counts;
	// default 1).
	MinAligned int
	// MinScore is the alignment-rate threshold that substitutes for the
	// paper's manual curation of the 12 isA predicates.
	MinScore float64
	// MaxSelected bounds the curated predicate list (paper: 12).
	MaxSelected int
	// Whitelist, when non-empty, bypasses automatic curation: the
	// caller "manually" supplies the predicate list, as the authors
	// did.
	Whitelist []string
}

// DefaultPredicateDiscovery mirrors the paper's setup with automatic
// curation standing in for manual selection.
func DefaultPredicateDiscovery() PredicateDiscovery {
	return PredicateDiscovery{MinAligned: 1, MinScore: 0.30, MaxSelected: 12}
}

// Prior is the set of high-precision isA pairs (from the bracket
// source) used as distant supervision.
type Prior map[string]map[string]bool

// NewPrior builds a Prior from candidates.
func NewPrior(cands []Candidate) Prior {
	p := make(Prior)
	for _, c := range cands {
		m := p[c.Hypo]
		if m == nil {
			m = make(map[string]bool)
			p[c.Hypo] = m
		}
		m[c.Hyper] = true
	}
	return p
}

// Has reports whether isA(hypo, hyper) is in the prior.
func (p Prior) Has(hypo, hyper string) bool { return p[hypo][hyper] }

// Discover aligns every infobox triple against the prior and returns
// all candidate predicates (aligned at least MinAligned times) sorted
// by score, plus the curated selection.
func (pd PredicateDiscovery) Discover(c *encyclopedia.Corpus, prior Prior) (candidates []PredicateStat, selected []string) {
	totals := make(map[string]int)
	aligned := make(map[string]int)
	for i := range c.Pages {
		page := &c.Pages[i]
		id := page.ID()
		for _, t := range page.Infobox {
			totals[t.Predicate]++
			if prior.Has(id, t.Object) {
				aligned[t.Predicate]++
			}
		}
	}
	for p, a := range aligned {
		if a >= pd.MinAligned {
			candidates = append(candidates, PredicateStat{Predicate: p, Total: totals[p], Aligned: a})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		si, sj := candidates[i].Score(), candidates[j].Score()
		if si != sj {
			return si > sj
		}
		return candidates[i].Predicate < candidates[j].Predicate
	})
	if len(pd.Whitelist) > 0 {
		return candidates, append([]string(nil), pd.Whitelist...)
	}
	for _, cand := range candidates {
		if cand.Score() >= pd.MinScore && len(selected) < pd.MaxSelected {
			selected = append(selected, cand.Predicate)
		}
	}
	return candidates, selected
}

// ExtractInfobox harvests isA candidates from all triples whose
// predicate is in the curated list.
func ExtractInfobox(c *encyclopedia.Corpus, predicates []string) []Candidate {
	sel := make(map[string]bool, len(predicates))
	for _, p := range predicates {
		sel[p] = true
	}
	var out []Candidate
	for i := range c.Pages {
		page := &c.Pages[i]
		id := page.ID()
		for _, t := range page.Infobox {
			if !sel[t.Predicate] || !validHypernym(t.Object) || t.Object == page.Title {
				continue
			}
			out = append(out, Candidate{Hypo: id, Hyper: t.Object, Source: taxonomy.SourceInfobox, Score: 1})
		}
	}
	return out
}
