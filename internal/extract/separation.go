package extract

import (
	"strings"
	"sync"

	"cnprobase/internal/corpus"
	"cnprobase/internal/runes"
	"cnprobase/internal/segment"
	"cnprobase/internal/taxonomy"
)

// cutBufPool recycles token buffers for the segmenter calls the
// extractors make from concurrent batch workers; the tokens themselves
// are consumed (filtered/copied) before the buffer is returned.
var cutBufPool = sync.Pool{New: func() any { return new([]string) }}

// Separator implements the paper's separation algorithm (Section II,
// Figure 3): given the noun compound inside an entity's disambiguation
// bracket, segment it into words (x1 … xn), build a binary tree by
// PMI-guided adjacent merging with a right-to-left sliding window, and
// read the hypernyms off the leaves/constituents along the tree's
// rightmost path.
type Separator struct {
	seg   *segment.Segmenter
	stats *corpus.Stats
}

// NewSeparator builds a Separator from the segmenter and corpus
// statistics that supply PMI.
func NewSeparator(seg *segment.Segmenter, stats *corpus.Stats) *Separator {
	return &Separator{seg: seg, stats: stats}
}

// node is a binary-tree node over the word sequence.
type node struct {
	text        string
	first, last string // boundary words, for PMI between merged nodes
	left, right *node  // nil for leaves
}

func leaf(w string) *node { return &node{text: w, first: w, last: w} }

func merge(a, b *node) *node {
	return &node{text: a.text + b.text, first: a.first, last: b.last, left: a, right: b}
}

// pmi scores adjacency between two (possibly merged) nodes by the PMI
// of the boundary words across the join, the standard reduction for
// compound bracketing.
func (s *Separator) pmi(a, b *node) float64 { return s.stats.PMI(a.last, b.first) }

// Tree exposes the separation result for one compound: the word
// sequence and the hypernym strings read off the rightmost path.
type Tree struct {
	Words     []string
	Hypernyms []string
}

// Separate runs the algorithm on one 、-free noun compound and returns
// its tree summary. Compounds of fewer than two words trivially yield
// the word itself.
func (s *Separator) Separate(compound string) Tree {
	bufp := cutBufPool.Get().(*[]string)
	toks := s.seg.CutAppend((*bufp)[:0], compound)
	var words []string
	for _, w := range toks {
		if segment.IsContentToken(w) {
			words = append(words, w)
		}
	}
	*bufp = toks
	cutBufPool.Put(bufp)
	t := Tree{Words: words}
	if len(words) == 0 {
		return t
	}
	root := s.buildTree(words)
	t.Hypernyms = rightSpine(root)
	return t
}

// buildTree performs the PMI-guided merging. Each pass slides a
// three-element window right-to-left (steps 1–3 of the paper); the
// boundary rule (step 4) merges the leftmost pair when its cohesion
// beats its right neighbor. If a full pass merges nothing (flat PMI
// landscape), the globally best-PMI adjacent pair merges, which
// guarantees termination in n−1 merges.
func (s *Separator) buildTree(words []string) *node {
	nodes := make([]*node, len(words))
	for i, w := range words {
		nodes[i] = leaf(w)
	}
	for len(nodes) > 1 {
		merged := false
		// Right-to-left window (x_{i-1}, x_i, x_{i+1}).
		for i := len(nodes) - 2; i >= 1; i-- {
			if i+1 >= len(nodes) {
				continue // slice shrank behind the window
			}
			if s.pmi(nodes[i-1], nodes[i]) < s.pmi(nodes[i], nodes[i+1]) {
				nodes[i] = merge(nodes[i], nodes[i+1])
				nodes = append(nodes[:i+1], nodes[i+2:]...)
				merged = true
			}
		}
		if len(nodes) == 1 {
			break
		}
		// Step 4 boundary rule at the leftmost window.
		if len(nodes) >= 3 && s.pmi(nodes[0], nodes[1]) > s.pmi(nodes[1], nodes[2]) {
			nodes[0] = merge(nodes[0], nodes[1])
			nodes = append(nodes[:1], nodes[2:]...)
			merged = true
		} else if len(nodes) == 2 {
			nodes[0] = merge(nodes[0], nodes[1])
			nodes = nodes[:1]
			merged = true
		}
		if !merged {
			// Flat landscape: merge the most cohesive adjacent pair.
			best, bestPMI := 0, s.pmi(nodes[0], nodes[1])
			for i := 1; i+1 < len(nodes); i++ {
				if p := s.pmi(nodes[i], nodes[i+1]); p > bestPMI {
					best, bestPMI = i, p
				}
			}
			nodes[best] = merge(nodes[best], nodes[best+1])
			nodes = append(nodes[:best+1], nodes[best+2:]...)
		}
	}
	return nodes[0]
}

// rightSpine collects the hypernym strings along the rightmost path of
// the tree, excluding the root (the full compound including modifiers):
// for ((蚂蚁金服)((首席)(战略官))) it yields 首席战略官 and 战略官.
// A single-leaf tree yields the leaf itself.
func rightSpine(root *node) []string {
	if root.right == nil {
		if validHypernym(root.text) {
			return []string{root.text}
		}
		return nil
	}
	var out []string
	for cur := root.right; cur != nil; cur = cur.right {
		if validHypernym(cur.text) {
			out = append(out, cur.text)
		}
		if cur.right == nil {
			break
		}
	}
	return out
}

// splitCompounds cuts a bracket on enumeration separators (、/，/,/;),
// since brackets routinely enumerate several roles
// (中国香港男演员、歌手、词作人).
func splitCompounds(bracket string) []string {
	f := func(r rune) bool {
		switch r {
		case '、', '，', ',', '；', ';', '/', ' ':
			return true
		}
		return false
	}
	var out []string
	for _, p := range strings.FieldsFunc(bracket, f) {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Extract runs the separation algorithm on a page's bracket and returns
// the candidate isA relations for the page's disambiguated entity.
func (s *Separator) Extract(title, bracket string) []Candidate {
	if bracket == "" {
		return nil
	}
	id := title
	if bracket != "" {
		id = title + "（" + bracket + "）"
	}
	var out []Candidate
	seen := make(map[string]bool)
	for _, part := range splitCompounds(bracket) {
		t := s.Separate(part)
		for _, h := range t.Hypernyms {
			if h == title || seen[h] || !runes.AllHan(h) {
				continue
			}
			seen[h] = true
			out = append(out, Candidate{Hypo: id, Hyper: h, Source: taxonomy.SourceBracket, Score: 1})
		}
	}
	return out
}
