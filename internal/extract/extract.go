// Package extract implements the generation module (paper Section II):
// four algorithms that produce candidate isA relations from the four
// sources of a Chinese encyclopedia page — bracket (separation
// algorithm), abstract (neural generation), infobox (predicate
// discovery) and tag (direct extraction).
package extract

import (
	"sort"

	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/runes"
	"cnprobase/internal/taxonomy"
)

// Candidate is one candidate isA relation with provenance.
type Candidate struct {
	// Hypo is the hyponym: a disambiguated entity ID or a concept.
	Hypo string
	// Hyper is the hypernym concept string.
	Hyper string
	// Source records the generating algorithm.
	Source taxonomy.Source
	// Score is a source-specific confidence in [0, 1].
	Score float64
}

// validHypernym applies the shared sanity conditions every generator
// enforces before emitting a candidate: hypernyms are multi-rune Han
// content words.
func validHypernym(h string) bool {
	return runes.AllHan(h) && runes.Len(h) >= 2
}

// Tags implements direct extraction from tags: "a majority of tags are
// the hypernyms of the entities" — every tag becomes a candidate, and
// the verification module is responsible for the rest.
func Tags(page *encyclopedia.Page) []Candidate {
	id := page.ID()
	var out []Candidate
	for _, tag := range page.Tags {
		if !validHypernym(tag) || tag == page.Title {
			continue
		}
		out = append(out, Candidate{Hypo: id, Hyper: tag, Source: taxonomy.SourceTag, Score: 1})
	}
	return out
}

// Dedupe merges duplicate (hypo, hyper) candidates, OR-ing sources and
// keeping the maximum score. Order is deterministic.
func Dedupe(cands []Candidate) []Candidate {
	type key struct{ hypo, hyper string }
	idx := make(map[key]int)
	var out []Candidate
	for _, c := range cands {
		k := key{c.Hypo, c.Hyper}
		if i, ok := idx[k]; ok {
			out[i].Source |= c.Source
			if c.Score > out[i].Score {
				out[i].Score = c.Score
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Hypo != out[j].Hypo {
			return out[i].Hypo < out[j].Hypo
		}
		return out[i].Hyper < out[j].Hyper
	})
	return out
}
