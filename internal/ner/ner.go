// Package ner implements the named-entity recognition substrate the
// verification module needs (paper Section III-B). The paper's NE
// filter only requires an occurrence statistic — how often a word
// appears as a named entity versus in total across a text corpus — so
// the recognizer is a deterministic lexicon + rule system over the same
// vocabulary the synthetic corpus is rendered from:
//
//   - person names: known surname followed by 1–2 given-name runes;
//   - place names: region lexicon hits, or stem + place suffix;
//   - organization names: stem + org suffix/industry word;
//   - work titles: 《…》 book-quoted spans.
//
// Support(w) aggregates recognition decisions over a corpus into the
// s1 statistic of Equation (2).
package ner

import (
	"sort"
	"strings"

	"cnprobase/internal/lexicon"
	"cnprobase/internal/runes"
	"cnprobase/internal/trie"
)

// Kind classifies a recognized named entity.
type Kind int

const (
	// None marks a non-entity.
	None Kind = iota
	// Person is a personal name.
	Person
	// Place is a location name.
	Place
	// Org is an organization name.
	Org
	// Work is a creative-work title.
	Work
)

// String returns a short label for the kind.
func (k Kind) String() string {
	switch k {
	case Person:
		return "person"
	case Place:
		return "place"
	case Org:
		return "org"
	case Work:
		return "work"
	default:
		return "none"
	}
}

// Span is one recognized entity occurrence inside a text.
type Span struct {
	Text  string
	Kind  Kind
	Start int // rune offset
	End   int // rune offset, exclusive
}

// Recognizer is a deterministic lexicon + rule NE recognizer. It is
// immutable after construction and safe for concurrent use.
type Recognizer struct {
	surnames    map[string]bool
	regions     map[string]bool
	placeSuffix map[string]bool
	orgSuffix   *trie.Trie
	givenChars  map[rune]bool
	// stems is the gazetteer of name stems that compose with suffixes
	// (清河+市, 蚂蚁+金服); requiring a known stem keeps the suffix
	// rules from swallowing preceding function words (于清+河).
	stems map[string]bool
	// knownEntities are exact entity titles (e.g. from page titles);
	// matching them is the strongest evidence.
	knownEntities *trie.Trie
}

// New builds a Recognizer from the embedded lexicons.
func New() *Recognizer {
	r := &Recognizer{
		surnames:      make(map[string]bool),
		regions:       make(map[string]bool),
		placeSuffix:   make(map[string]bool),
		orgSuffix:     trie.New(),
		givenChars:    make(map[rune]bool),
		knownEntities: trie.New(),
	}
	for _, s := range lexicon.Surnames() {
		r.surnames[s] = true
	}
	for _, s := range lexicon.Regions() {
		r.regions[s] = true
	}
	for _, s := range lexicon.PlaceSuffixes() {
		r.placeSuffix[s] = true
	}
	for _, s := range lexicon.OrgSuffixes() {
		r.orgSuffix.Insert(s)
	}
	for _, s := range lexicon.OrgIndustry() {
		r.orgSuffix.Insert(s)
	}
	r.stems = make(map[string]bool)
	for _, s := range lexicon.PlaceStems() {
		r.stems[s] = true
	}
	for _, s := range lexicon.OrgStems() {
		r.stems[s] = true
	}
	for _, g := range lexicon.GivenChars() {
		for _, c := range g {
			r.givenChars[c] = true
		}
	}
	// The suffix lexicon never changes after construction; compact it.
	// knownEntities stays thawed: AddKnownEntity keeps extending it.
	r.orgSuffix.Freeze()
	return r
}

// AddKnownEntity registers an exact entity title (typically a page
// title) so occurrences of it are recognized directly.
func (r *Recognizer) AddKnownEntity(title string, kind Kind) {
	if title == "" {
		return
	}
	r.knownEntities.InsertWeighted(title, float64(kind))
}

// Classify reports whether the word w, taken in isolation, looks like a
// named entity and of which kind. This is the primitive the NE-hypernym
// filter uses.
func (r *Recognizer) Classify(w string) Kind {
	if w == "" {
		return None
	}
	if wgt, ok := r.knownEntities.Weight(w); ok {
		return Kind(int(wgt))
	}
	if r.regions[w] {
		return Place
	}
	rs := []rune(w)
	// 《…》 quoted span.
	if len(rs) >= 3 && rs[0] == '《' && rs[len(rs)-1] == '》' {
		return Work
	}
	if !runes.AllHan(w) {
		return None
	}
	// gazetteer stem + place suffix (清河+市).
	if len(rs) == 3 && r.placeSuffix[string(rs[2:])] && r.stems[string(rs[:2])] {
		return Place
	}
	// gazetteer stem + org suffix (蚂蚁+金服, 清河+研究所).
	for sl := 2; sl <= 3 && sl < len(rs); sl++ {
		if len(rs)-sl == 2 && r.orgSuffix.Contains(string(rs[2:])) && r.stems[string(rs[:2])] {
			return Org
		}
	}
	// surname + given-name runes.
	if k := r.personLike(rs); k != None {
		return k
	}
	return None
}

// personLike reports whether rs looks like surname + 1-2 given chars.
func (r *Recognizer) personLike(rs []rune) Kind {
	try := func(surLen int) bool {
		if len(rs) < surLen+1 || len(rs) > surLen+2 {
			return false
		}
		if !r.surnames[string(rs[:surLen])] {
			return false
		}
		for _, c := range rs[surLen:] {
			if !r.givenChars[c] {
				return false
			}
		}
		return true
	}
	if try(1) || try(2) {
		return Person
	}
	return None
}

// Recognize scans text and returns all recognized entity spans, longest
// match first at each position, non-overlapping.
func (r *Recognizer) Recognize(text string) []Span {
	rs := []rune(text)
	var out []Span
	for i := 0; i < len(rs); {
		// Book-quoted works.
		if rs[i] == '《' {
			if j := indexRune(rs, i+1, '》'); j > i {
				out = append(out, Span{Text: string(rs[i : j+1]), Kind: Work, Start: i, End: j + 1})
				i = j + 1
				continue
			}
		}
		// Known entity exact hits.
		if l := r.knownEntities.LongestFrom(rs, i); l > 0 {
			w := string(rs[i : i+l])
			wgt, _ := r.knownEntities.Weight(w)
			out = append(out, Span{Text: w, Kind: Kind(int(wgt)), Start: i, End: i + l})
			i += l
			continue
		}
		// Window classification: try longest window first (6 runes is
		// the longest lexicon-composed entity form).
		matched := false
		for l := min(6, len(rs)-i); l >= 2; l-- {
			w := string(rs[i : i+l])
			if k := r.Classify(w); k != None {
				out = append(out, Span{Text: w, Kind: k, Start: i, End: i + l})
				i += l
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

func indexRune(rs []rune, from int, want rune) int {
	for i := from; i < len(rs); i++ {
		if rs[i] == want {
			return i
		}
	}
	return -1
}

// Support accumulates, per word, how often it occurred as a named
// entity versus in total: the s1(H)=NE(H)/total(H) statistic of the
// paper's Equation (2) context.
type Support struct {
	ne    map[string]int
	total map[string]int
}

// NewSupport returns an empty support accumulator.
func NewSupport() *Support {
	return &Support{ne: make(map[string]int), total: make(map[string]int)}
}

// Observe records the tokens of one segmented sentence together with
// the recognizer's spans over the raw sentence: every token counts
// toward total, and tokens covered by an NE span count toward ne.
// Tokens from the zero-copy segmenter are substrings of whole page
// texts, so keys are cloned on first insertion — a long-lived
// accumulator (the persistent update evidence) never pins its
// callers' backing strings.
func (s *Support) Observe(tokens []string, spans []Span) {
	neText := make(map[string]bool, len(spans))
	for _, sp := range spans {
		neText[strings.Trim(sp.Text, "《》")] = true
		neText[sp.Text] = true
	}
	for _, t := range tokens {
		if !runes.AllHan(t) {
			continue
		}
		isNE := neText[t]
		if _, ok := s.total[t]; !ok {
			t = strings.Clone(t)
		}
		s.total[t]++
		if isNE {
			if _, ok := s.ne[t]; !ok {
				t = strings.Clone(t)
			}
			s.ne[t]++
		}
	}
}

// ObserveWord directly records one occurrence of w, as NE or not. Used
// when the caller already knows the role (e.g. page titles are NEs by
// construction).
func (s *Support) ObserveWord(w string, asNE bool) {
	s.total[w]++
	if asNE {
		s.ne[w]++
	}
}

// S1 returns NE(w)/total(w), or 0 when w was never observed.
func (s *Support) S1(w string) float64 {
	t := s.total[w]
	if t == 0 {
		return 0
	}
	return float64(s.ne[w]) / float64(t)
}

// Observed reports whether w was seen at all.
func (s *Support) Observed(w string) bool { return s.total[w] > 0 }

// Merge folds another accumulator's observations into s. Counts only
// add, so merging per-batch accumulators in any order produces the
// same totals as observing everything into one accumulator.
func (s *Support) Merge(o *Support) {
	if o == nil {
		return
	}
	for w, n := range o.total {
		s.total[w] += n
	}
	for w, n := range o.ne {
		s.ne[w] += n
	}
}

// Words returns every word s has observed, in unspecified order.
func (s *Support) Words() []string {
	out := make([]string, 0, len(s.total))
	for w := range s.total {
		out = append(out, w)
	}
	return out
}

// SupportEntry is one word's observation counts, as exported for
// serialization.
type SupportEntry struct {
	Word  string
	NE    int
	Total int
}

// Entries returns the observation counts sorted by word, for
// deterministic serialization.
func (s *Support) Entries() []SupportEntry {
	out := make([]SupportEntry, 0, len(s.total))
	for w, t := range s.total {
		out = append(out, SupportEntry{Word: w, NE: s.ne[w], Total: t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Word < out[j].Word })
	return out
}

// Import adds previously exported counts for one word — the
// deserialization counterpart of Entries.
func (s *Support) Import(w string, ne, total int) {
	if total > 0 {
		s.total[w] += total
	}
	if ne > 0 {
		s.ne[w] += ne
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
