package ner

import (
	"testing"
)

func TestClassifyPersons(t *testing.T) {
	r := New()
	for _, name := range []string{"王伟", "李丽", "刘涛", "欧阳明"} {
		if got := r.Classify(name); got != Person {
			t.Errorf("Classify(%q) = %v, want person", name, got)
		}
	}
	// Not persons: unknown surname, non given-name chars.
	for _, name := range []string{"演员", "哈伟"} {
		if got := r.Classify(name); got == Person {
			t.Errorf("Classify(%q) = person, want not-person", name)
		}
	}
}

func TestClassifyPlacesOrgsWorks(t *testing.T) {
	r := New()
	cases := map[string]Kind{
		"中国":     Place,
		"北京":     Place,
		"清河市":    Place,
		"临江湖":    Place,
		"蚂蚁金服":   Org,
		"清河大学":   Org,
		"星河研究所":  Org,
		"《忘情水》":  Work,
		"演员":     None,
		"首席战略官":  None,
		"":       None,
		"abc123": None,
	}
	for w, want := range cases {
		if got := r.Classify(w); got != want {
			t.Errorf("Classify(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestKnownEntityOverride(t *testing.T) {
	r := New()
	if got := r.Classify("忘情水"); got != None {
		t.Fatalf("precondition: Classify(忘情水) = %v, want none", got)
	}
	r.AddKnownEntity("忘情水", Work)
	if got := r.Classify("忘情水"); got != Work {
		t.Errorf("Classify after AddKnownEntity = %v, want work", got)
	}
}

func TestRecognizeSpans(t *testing.T) {
	r := New()
	text := "王伟出生于清河市，毕业于清河大学，代表作品《忘情水》。"
	spans := r.Recognize(text)
	found := make(map[string]Kind)
	for _, sp := range spans {
		found[sp.Text] = sp.Kind
	}
	if found["王伟"] != Person {
		t.Errorf("missing person 王伟 in %v", found)
	}
	if found["清河市"] != Place {
		t.Errorf("missing place 清河市 in %v", found)
	}
	if found["清河大学"] != Org {
		t.Errorf("missing org 清河大学 in %v", found)
	}
	if found["《忘情水》"] != Work {
		t.Errorf("missing work 《忘情水》 in %v", found)
	}
}

func TestRecognizeSpanOffsets(t *testing.T) {
	r := New()
	spans := r.Recognize("王伟在中国")
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	for _, sp := range spans {
		rs := []rune("王伟在中国")
		if got := string(rs[sp.Start:sp.End]); got != sp.Text {
			t.Errorf("span text %q does not match offsets [%d,%d) = %q", sp.Text, sp.Start, sp.End, got)
		}
	}
}

func TestSupportS1(t *testing.T) {
	r := New()
	s := NewSupport()
	// 北京 appears twice as NE, 演员 never.
	text := "王伟出生于北京。"
	s.Observe([]string{"王伟", "出生于", "北京", "。"}, r.Recognize(text))
	s.Observe([]string{"演员", "北京"}, r.Recognize("演员北京"))
	if got := s.S1("北京"); got != 1.0 {
		t.Errorf("S1(北京) = %v, want 1.0", got)
	}
	if got := s.S1("演员"); got != 0.0 {
		t.Errorf("S1(演员) = %v, want 0", got)
	}
	if got := s.S1("没出现过"); got != 0.0 {
		t.Errorf("S1(unseen) = %v, want 0", got)
	}
	if !s.Observed("北京") || s.Observed("没出现过") {
		t.Error("Observed bookkeeping wrong")
	}
}

func TestSupportObserveWord(t *testing.T) {
	s := NewSupport()
	s.ObserveWord("泪花", true)
	s.ObserveWord("泪花", false)
	if got := s.S1("泪花"); got != 0.5 {
		t.Errorf("S1 = %v, want 0.5", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Person: "person", Place: "place", Org: "org", Work: "work",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
