package conceptualize

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// viewOf compiles the store world into an immutable serving view.
func viewOf(t *testing.T, tx *taxonomy.Taxonomy, m *taxonomy.MentionIndex) *serving.View {
	t.Helper()
	tx.Finalize()
	return serving.Compile(tx, m)
}

// requireEquivalent conceptualizes the texts with both engines and
// demands identical results — same resolved mentions, same concept
// vectors, bit-equal scores.
func requireEquivalent(t *testing.T, store, view *Engine, texts []string) {
	t.Helper()
	for _, text := range texts {
		want := store.Conceptualize(text)
		got := view.Conceptualize(text)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("Conceptualize(%q):\n  view  = %+v\n  store = %+v", text, got, want)
		}
	}
}

func TestViewMatchesStore(t *testing.T) {
	tx, m := fixture(t)
	store := New(tx, m)
	view := NewView(viewOf(t, tx, m))
	requireEquivalent(t, store, view, []string{
		"",
		"刘德华演唱了忘情水。",
		"刘德华",
		"忘情水忘情水",
		"今天天气怎么样？",
		"前面无关刘德华后面无关",
	})
}

// TestViewMatchesStoreRandomized fuzzes the equivalence over random
// worlds: random graphs, random ambiguity, random texts mixing real
// mentions with noise. Every result must agree with the store oracle,
// including the float scores.
func TestViewMatchesStoreRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tx := taxonomy.NewSharded(1 + rng.Intn(4))
		m := taxonomy.NewMentionIndex()
		nEnt, nCon := 15+rng.Intn(20), 5+rng.Intn(5)
		ent := func(i int) string { return fmt.Sprintf("实体%02d", i) }
		con := func(i int) string { return fmt.Sprintf("概念%d", i) }
		var surfaces []string
		for i := 0; i < nEnt; i++ {
			tx.MarkEntity(ent(i))
			for tries := 1 + rng.Intn(3); tries > 0; tries-- {
				if err := tx.AddIsA(ent(i), con(rng.Intn(nCon)), taxonomy.SourceTag, rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
			// Some surfaces are shared across entities (ambiguity),
			// some unique.
			sf := fmt.Sprintf("词%d", rng.Intn(nEnt/2+1))
			m.Add(sf, ent(i))
			surfaces = append(surfaces, sf)
		}
		store := New(tx, m)
		view := NewView(viewOf(t, tx, m))
		if rng.Intn(2) == 0 {
			store.MaxConceptsPerEntity = rng.Intn(4)
			view.MaxConceptsPerEntity = store.MaxConceptsPerEntity
		}
		var texts []string
		for i := 0; i < 100; i++ {
			var b strings.Builder
			for j := 0; j < 1+rng.Intn(5); j++ {
				if rng.Intn(3) > 0 {
					b.WriteString(surfaces[rng.Intn(len(surfaces))])
				} else {
					b.WriteString("无关")
				}
				if rng.Intn(3) == 0 {
					b.WriteString("，")
				}
			}
			texts = append(texts, b.String())
		}
		requireEquivalent(t, store, view, texts)
	}
}

// tieFixture builds two senses of 苹果 with identical edge evidence, so
// the popularity prior alone cannot separate them, plus 微软 sharing
// the 科技公司 concept with the company sense.
func tieFixture(t *testing.T) (*taxonomy.Taxonomy, *taxonomy.MentionIndex) {
	t.Helper()
	tx := taxonomy.New()
	add := func(hypo, hyper string, n int) {
		for i := 0; i < n; i++ {
			if err := tx.AddIsA(hypo, hyper, taxonomy.SourceTag, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	tx.MarkEntity("苹果（一种水果）")
	tx.MarkEntity("苹果（公司）")
	tx.MarkEntity("微软")
	add("苹果（一种水果）", "水果", 2)
	add("苹果（公司）", "科技公司", 2)
	add("微软", "科技公司", 2)
	m := taxonomy.NewMentionIndex()
	m.Add("苹果", "苹果（一种水果）")
	m.Add("苹果", "苹果（公司）")
	m.Add("微软", "微软")
	return tx, m
}

// TestContextBreaksTies pins the disambiguation contract on both
// engines: with equal popularity, a lone 苹果 resolves to the first
// candidate in canonical order, but co-occurring 微软 swings it to the
// company sense through concept agreement.
func TestContextBreaksTies(t *testing.T) {
	tx, m := tieFixture(t)
	engines := map[string]*Engine{
		"store": New(tx, m),
		"view":  NewView(viewOf(t, tx, m)),
	}
	for name, e := range engines {
		lone := e.Conceptualize("苹果")
		if got := lone.Mentions[0].Entity; got != "苹果（一种水果）" {
			t.Errorf("%s: lone 苹果 = %q, want canonical-order fruit sense", name, got)
		}
		ctx := e.Conceptualize("苹果和微软都发布了新品")
		if got := ctx.Mentions[0].Entity; got != "苹果（公司）" {
			t.Errorf("%s: 苹果 with 微软 context = %q, want company sense", name, got)
		}
	}
}

// TestConceptBounds exercises MaxConceptsPerEntity at its edges on
// both engines: 0 means unbounded, 1 keeps only the most typical.
func TestConceptBounds(t *testing.T) {
	tx := taxonomy.New()
	tx.MarkEntity("多概念实体")
	for i := 0; i < 7; i++ {
		if err := tx.AddIsA("多概念实体", fmt.Sprintf("概念%d", i), taxonomy.SourceTag, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	m := taxonomy.NewMentionIndex()
	m.Add("多概念", "多概念实体")
	v := viewOf(t, tx, m)
	for name, mk := range map[string]func() *Engine{
		"store": func() *Engine { return New(tx, m) },
		"view":  func() *Engine { return NewView(v) },
	} {
		e := mk()
		if got := len(e.Conceptualize("多概念").Mentions[0].Concepts); got != 5 {
			t.Errorf("%s: default bound kept %d concepts, want 5", name, got)
		}
		e.MaxConceptsPerEntity = 0
		if got := len(e.Conceptualize("多概念").Mentions[0].Concepts); got != 7 {
			t.Errorf("%s: unbounded kept %d concepts, want all 7", name, got)
		}
		e.MaxConceptsPerEntity = 1
		res := e.Conceptualize("多概念")
		if got := len(res.Mentions[0].Concepts); got != 1 {
			t.Errorf("%s: bound 1 kept %d concepts", name, got)
		}
		if len(res.Concepts) != 1 {
			t.Errorf("%s: aggregated vector = %+v, want 1 concept", name, res.Concepts)
		}
	}
}

// TestEmptyAndUncovered pins the degenerate shapes: empty text, text
// with zero mentions, and a mention whose entities have no concepts
// all produce an uncovered result with a non-nil empty vector.
func TestEmptyAndUncovered(t *testing.T) {
	tx, m := fixture(t)
	tx.MarkEntity("孤儿实体") // no hypernyms
	m.Add("孤儿", "孤儿实体")
	for name, e := range map[string]*Engine{
		"store": New(tx, m),
		"view":  NewView(viewOf(t, tx, m)),
	} {
		for _, text := range []string{"", "完全无关的文本", "孤儿"} {
			res := e.Conceptualize(text)
			if res.Covered() {
				t.Errorf("%s: Conceptualize(%q) claims coverage: %+v", name, text, res)
			}
			if res.Concepts == nil || len(res.Concepts) != 0 {
				t.Errorf("%s: Conceptualize(%q).Concepts = %#v, want non-nil empty", name, text, res.Concepts)
			}
		}
	}
}

// TestOverlappingMentions pins greedy longest-match through the full
// engine: 刘德华 must win over its substrings 刘德/德华, and both
// engines must agree when only the shorter surfaces fit.
func TestOverlappingMentions(t *testing.T) {
	tx, m := fixture(t)
	tx.MarkEntity("刘德（武术指导）")
	tx.MarkEntity("德华（角色）")
	if err := tx.AddIsA("刘德（武术指导）", "武术指导", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddIsA("德华（角色）", "角色", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	m.Add("刘德", "刘德（武术指导）")
	m.Add("德华", "德华（角色）")
	store := New(tx, m)
	view := NewView(viewOf(t, tx, m))
	requireEquivalent(t, store, view, []string{"刘德华", "刘德与德华", "刘德德华"})
	res := view.Conceptualize("刘德华")
	if len(res.Mentions) != 1 || res.Mentions[0].Surface != "刘德华" {
		t.Errorf("longest match lost to a substring: %+v", res.Mentions)
	}
	res = view.Conceptualize("刘德与德华")
	if len(res.Mentions) != 2 {
		t.Errorf("shorter overlapping surfaces missed: %+v", res.Mentions)
	}
}

// TestConceptualizeIntoRecycles pins the recycle contract: a reused
// Result is truncated and refilled, never accumulating stale state.
func TestConceptualizeIntoRecycles(t *testing.T) {
	tx, m := fixture(t)
	e := NewView(viewOf(t, tx, m))
	var res Result
	e.ConceptualizeInto(&res, "刘德华演唱了忘情水。")
	first := len(res.Mentions)
	e.ConceptualizeInto(&res, "忘情水")
	if len(res.Mentions) != 1 || res.Mentions[0].Surface != "忘情水" {
		t.Fatalf("reused result kept stale mentions (first call had %d): %+v", first, res.Mentions)
	}
	e.ConceptualizeInto(&res, "无关")
	if res.Covered() || len(res.Concepts) != 0 {
		t.Fatalf("reused result kept stale concepts: %+v", res)
	}
}

func TestConceptualizeIntoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	tx, m := fixture(t)
	e := NewView(viewOf(t, tx, m))
	text := "刘德华演唱了忘情水。"
	var res Result
	for i := 0; i < 8; i++ { // warm the pool and res capacity
		e.ConceptualizeInto(&res, text)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.ConceptualizeInto(&res, text)
	})
	if allocs != 0 {
		t.Fatalf("view-backed ConceptualizeInto allocates %.1f allocs/op, want 0", allocs)
	}
}
