// Package conceptualize implements short-text conceptualization on top
// of the taxonomy — the application layer the paper motivates (its QA
// coverage experiment, and the short-text classification system it
// cites as a consumer of CN-Probase).
//
// Given a text, the engine finds entity mentions with the men2ent
// index, resolves ambiguity by context agreement, aggregates each
// entity's concepts weighted by typicality, and returns a ranked
// concept vector for the text — the "conceptualized" reading used by
// downstream classifiers.
package conceptualize

import (
	"sort"

	"cnprobase/internal/taxonomy"
)

// Engine conceptualizes text against a taxonomy + mention index.
type Engine struct {
	tax      *taxonomy.Taxonomy
	mentions *taxonomy.MentionIndex
	// MaxConceptsPerEntity bounds how many concepts each resolved
	// entity contributes (most typical first).
	MaxConceptsPerEntity int
}

// New returns an Engine with default settings.
func New(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) *Engine {
	return &Engine{tax: tax, mentions: mentions, MaxConceptsPerEntity: 5}
}

// Mention is one resolved mention inside a text.
type Mention struct {
	Surface string
	// Entity is the chosen disambiguated entity.
	Entity string
	// Candidates is the number of entities the surface could mean.
	Candidates int
	// Concepts are the chosen entity's ranked concepts.
	Concepts []taxonomy.Scored
}

// Result is the conceptualized reading of a text.
type Result struct {
	Mentions []Mention
	// Concepts is the aggregated ranked concept vector of the text.
	Concepts []taxonomy.Scored
}

// Covered reports whether the text contained at least one taxonomy
// mention — the coverage predicate of the paper's QA experiment.
func (r Result) Covered() bool { return len(r.Mentions) > 0 }

// Conceptualize processes one text.
func (e *Engine) Conceptualize(text string) Result {
	var res Result
	agg := make(map[string]float64)
	surfaces := e.mentions.FindAll(text)
	// First pass: collect every candidate's concepts for context
	// agreement.
	context := make(map[string]float64)
	for _, sf := range surfaces {
		for _, id := range e.mentions.Lookup(sf) {
			for _, sc := range e.tax.RankedHypernyms(id, e.MaxConceptsPerEntity) {
				context[sc.Node] += sc.Score
			}
		}
	}
	for _, sf := range surfaces {
		ids := e.mentions.Lookup(sf)
		if len(ids) == 0 {
			continue
		}
		best := e.disambiguate(ids, context)
		concepts := e.tax.RankedHypernyms(best, e.MaxConceptsPerEntity)
		if len(concepts) == 0 {
			continue
		}
		res.Mentions = append(res.Mentions, Mention{
			Surface:    sf,
			Entity:     best,
			Candidates: len(ids),
			Concepts:   concepts,
		})
		for _, sc := range concepts {
			weight := sc.Score
			if weight == 0 {
				weight = 1e-3
			}
			agg[sc.Node] += weight
		}
	}
	res.Concepts = make([]taxonomy.Scored, 0, len(agg))
	total := 0.0
	for _, v := range agg {
		total += v
	}
	for c, v := range agg {
		if total > 0 {
			v /= total
		}
		res.Concepts = append(res.Concepts, taxonomy.Scored{Node: c, Score: v})
	}
	sort.Slice(res.Concepts, func(i, j int) bool {
		if res.Concepts[i].Score != res.Concepts[j].Score {
			return res.Concepts[i].Score > res.Concepts[j].Score
		}
		return res.Concepts[i].Node < res.Concepts[j].Node
	})
	return res
}

// disambiguate picks the candidate entity by evidence popularity (the
// total generation count behind its isA edges — a prior favoring the
// dominant sense) modulated by agreement with the text's aggregate
// context (a mention of 刘德华 next to 专辑 resolves to the singer
// sense).
func (e *Engine) disambiguate(ids []string, context map[string]float64) string {
	best, bestScore := ids[0], -1.0
	for _, id := range ids {
		pop := 0
		agree := 0.0
		for _, h := range e.tax.Hypernyms(id) {
			if ed, ok := e.tax.EdgeOf(id, h); ok {
				pop += ed.Count
			}
		}
		for _, sc := range e.tax.RankedHypernyms(id, e.MaxConceptsPerEntity) {
			agree += context[sc.Node] * sc.Score
		}
		score := float64(pop) * (1 + agree)
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}
