// Package conceptualize implements short-text conceptualization on top
// of the taxonomy — the application layer the paper motivates (its QA
// coverage experiment, and the short-text classification system it
// cites as a consumer of CN-Probase).
//
// Given a text, the engine finds entity mentions with the men2ent
// index, resolves ambiguity by context agreement, aggregates each
// entity's concepts weighted by typicality, and returns a ranked
// concept vector for the text — the "conceptualized" reading used by
// downstream classifiers.
//
// The engine reads through the Source interface, which both the
// mutable build store (taxonomy.Taxonomy + taxonomy.MentionIndex, via
// New) and the immutable serving view (serving.View, via NewView)
// satisfy. The two paths are algorithmically identical — one code
// path, two data structures — and pinned equivalent by tests down to
// bit-equal scores. Serving traffic should use the view engine: its
// resolve path takes no locks and, through ConceptualizeInto with
// recycled buffers, allocates nothing per text.
package conceptualize

import (
	"sort"
	"sync"

	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// Source is the read surface the engine conceptualizes against: text
// scanning and mention resolution (men2ent), hypernym lookup
// (getConcept), typicality rankings, and edge evidence for the
// popularity prior. serving.View implements it directly; New wraps the
// mutable store in an adapter.
type Source interface {
	// FindAllAppend appends the distinct mentions found in text to dst
	// (greedy longest-match, first-occurrence order) and returns the
	// extended slice.
	FindAllAppend(dst []string, text string) []string
	// Lookup returns the entity IDs a mention may refer to, sorted.
	Lookup(mention string) []string
	// Hypernyms returns the direct hypernyms of a node in canonical
	// order.
	Hypernyms(node string) []string
	// RankedHypernyms returns hypernyms by descending typicality;
	// limit <= 0 returns all.
	RankedHypernyms(node string, limit int) []taxonomy.Scored
	// EdgeOf returns the isA edge with its evidence, if present.
	EdgeOf(hypo, hyper string) (taxonomy.Edge, bool)
}

// storeSource adapts the mutable build store to Source. It is the
// reference oracle the view-backed engine is equivalence-tested
// against.
type storeSource struct {
	tax      *taxonomy.Taxonomy
	mentions *taxonomy.MentionIndex
}

func (s storeSource) FindAllAppend(dst []string, text string) []string {
	return s.mentions.FindAllAppend(dst, text)
}
func (s storeSource) Lookup(mention string) []string { return s.mentions.Lookup(mention) }
func (s storeSource) Hypernyms(node string) []string { return s.tax.Hypernyms(node) }
func (s storeSource) RankedHypernyms(node string, limit int) []taxonomy.Scored {
	return s.tax.RankedHypernyms(node, limit)
}
func (s storeSource) EdgeOf(hypo, hyper string) (taxonomy.Edge, bool) {
	return s.tax.EdgeOf(hypo, hyper)
}

// Engine conceptualizes text against a taxonomy + mention index
// (store-backed, New) or a compiled serving view (NewView). An Engine
// is a small immutable configuration over its Source; it is safe for
// concurrent use and cheap to construct per request.
type Engine struct {
	src Source
	// MaxConceptsPerEntity bounds how many concepts each resolved
	// entity contributes (most typical first); <= 0 means no bound.
	MaxConceptsPerEntity int
}

// New returns a store-backed Engine with default settings — the
// reference path; serving traffic should prefer NewView.
func New(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) *Engine {
	return NewSource(storeSource{tax: tax, mentions: mentions})
}

// NewView returns an Engine over an immutable serving view: lock-free,
// and allocation-free through ConceptualizeInto.
func NewView(v *serving.View) *Engine { return NewSource(v) }

// NewSource returns an Engine over any Source with default settings.
func NewSource(src Source) *Engine {
	return &Engine{src: src, MaxConceptsPerEntity: 5}
}

// Mention is one resolved mention inside a text.
type Mention struct {
	Surface string `json:"surface"`
	// Entity is the chosen disambiguated entity.
	Entity string `json:"entity"`
	// Candidates is the number of entities the surface could mean.
	Candidates int `json:"candidates"`
	// Concepts are the chosen entity's ranked concepts. On the view
	// path this is a shared subslice of the view's precomputed
	// rankings: do not modify it.
	Concepts []taxonomy.Scored `json:"concepts"`
}

// Result is the conceptualized reading of a text.
type Result struct {
	Mentions []Mention `json:"mentions,omitempty"`
	// Concepts is the aggregated ranked concept vector of the text,
	// normalized to sum to 1.
	Concepts []taxonomy.Scored `json:"concepts"`
}

// Covered reports whether the text contained at least one resolvable
// taxonomy mention — the coverage predicate of the paper's QA
// experiment.
func (r Result) Covered() bool { return len(r.Mentions) > 0 }

// scratch is the pooled per-call state of ConceptualizeInto. The maps
// are cleared (not reallocated) between uses, so their buckets stay
// warm and steady-state conceptualization allocates nothing.
type scratch struct {
	surfaces []string
	context  map[string]float64
	agg      map[string]float64
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{
		context: make(map[string]float64, 16),
		agg:     make(map[string]float64, 16),
	}
}}

// Conceptualize processes one text and returns a fresh Result.
func (e *Engine) Conceptualize(text string) Result {
	var res Result
	e.ConceptualizeInto(&res, text)
	return res
}

// ConceptualizeInto is Conceptualize in recycle style: res's slices
// are truncated and refilled, so passing the same Result across calls
// keeps the view-backed resolve path at 0 allocs/op (all other
// per-call state is pooled internally). The refilled res must not be
// retained across a subsequent call.
//
//cnp:noalloc
func (e *Engine) ConceptualizeInto(res *Result, text string) {
	res.Mentions = res.Mentions[:0]
	res.Concepts = res.Concepts[:0]
	sc := scratchPool.Get().(*scratch)
	sc.surfaces = e.src.FindAllAppend(sc.surfaces[:0], text)

	// First pass: collect every candidate's concepts for context
	// agreement.
	for _, sf := range sc.surfaces {
		for _, id := range e.src.Lookup(sf) {
			for _, s := range e.src.RankedHypernyms(id, e.MaxConceptsPerEntity) {
				sc.context[s.Node] += s.Score
			}
		}
	}
	// Second pass: disambiguate each surface and aggregate the chosen
	// entities' concepts. total accumulates alongside agg so the
	// normalizer is summed in deterministic (mention) order — the
	// store- and view-backed paths produce bit-identical scores.
	total := 0.0
	for _, sf := range sc.surfaces {
		ids := e.src.Lookup(sf)
		if len(ids) == 0 {
			continue
		}
		best := e.disambiguate(ids, sc.context)
		concepts := e.src.RankedHypernyms(best, e.MaxConceptsPerEntity)
		if len(concepts) == 0 {
			continue
		}
		res.Mentions = append(res.Mentions, Mention{
			Surface:    sf,
			Entity:     best,
			Candidates: len(ids),
			Concepts:   concepts,
		})
		for _, s := range concepts {
			weight := s.Score
			if weight == 0 {
				weight = 1e-3
			}
			sc.agg[s.Node] += weight
			total += weight
		}
	}
	for c, v := range sc.agg {
		if total > 0 {
			v /= total
		}
		res.Concepts = append(res.Concepts, taxonomy.Scored{Node: c, Score: v})
	}
	sort.Sort((*scoredByRank)(&res.Concepts))
	if res.Concepts == nil {
		res.Concepts = []taxonomy.Scored{}
	}

	clear(sc.context)
	clear(sc.agg)
	scratchPool.Put(sc)
}

// disambiguate picks the candidate entity by evidence popularity (the
// total generation count behind its isA edges — a prior favoring the
// dominant sense) modulated by agreement with the text's aggregate
// context (a mention of 刘德华 next to 专辑 resolves to the singer
// sense).
//
//cnp:noalloc
func (e *Engine) disambiguate(ids []string, context map[string]float64) string {
	best, bestScore := ids[0], -1.0
	for _, id := range ids {
		pop := 0
		agree := 0.0
		for _, h := range e.src.Hypernyms(id) {
			if ed, ok := e.src.EdgeOf(id, h); ok {
				pop += ed.Count
			}
		}
		for _, s := range e.src.RankedHypernyms(id, e.MaxConceptsPerEntity) {
			agree += context[s.Node] * s.Score
		}
		score := float64(pop) * (1 + agree)
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// scoredByRank sorts descending by score, ties broken
// lexicographically — the shared ranking order of the taxonomy and the
// view. A pointer receiver keeps sort.Sort allocation-free.
type scoredByRank []taxonomy.Scored

func (s *scoredByRank) Len() int { return len(*s) }
func (s *scoredByRank) Less(i, j int) bool {
	x := *s
	if x[i].Score != x[j].Score {
		return x[i].Score > x[j].Score
	}
	return x[i].Node < x[j].Node
}
func (s *scoredByRank) Swap(i, j int) {
	x := *s
	x[i], x[j] = x[j], x[i]
}
