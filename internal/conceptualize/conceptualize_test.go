package conceptualize

import (
	"testing"

	"cnprobase/internal/taxonomy"
)

// fixture: ambiguous 刘德华 (actor sense with strong evidence, writer
// sense) plus an unambiguous song.
func fixture(t *testing.T) (*taxonomy.Taxonomy, *taxonomy.MentionIndex) {
	t.Helper()
	tx := taxonomy.New()
	add := func(hypo, hyper string, n int) {
		for i := 0; i < n; i++ {
			if err := tx.AddIsA(hypo, hyper, taxonomy.SourceTag, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	tx.MarkEntity("刘德华（演员）")
	tx.MarkEntity("刘德华（作家）")
	tx.MarkEntity("忘情水")
	add("刘德华（演员）", "演员", 3)
	add("刘德华（演员）", "歌手", 2)
	add("刘德华（作家）", "作家", 1)
	add("忘情水", "歌曲", 2)
	add("忘情水", "作品", 1)

	m := taxonomy.NewMentionIndex()
	m.Add("刘德华", "刘德华（演员）")
	m.Add("刘德华", "刘德华（作家）")
	m.Add("忘情水", "忘情水")
	return tx, m
}

func TestConceptualizeBasic(t *testing.T) {
	tx, m := fixture(t)
	e := New(tx, m)
	res := e.Conceptualize("刘德华演唱了忘情水。")
	if !res.Covered() {
		t.Fatal("text not covered")
	}
	if len(res.Mentions) != 2 {
		t.Fatalf("mentions = %+v", res.Mentions)
	}
	if len(res.Concepts) == 0 {
		t.Fatal("no aggregated concepts")
	}
	// Concept scores normalize to 1.
	sum := 0.0
	for _, c := range res.Concepts {
		sum += c.Score
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("concept vector sums to %v", sum)
	}
}

func TestDisambiguationPrefersStrongerSense(t *testing.T) {
	tx, m := fixture(t)
	e := New(tx, m)
	res := e.Conceptualize("刘德华")
	if len(res.Mentions) != 1 {
		t.Fatalf("mentions = %+v", res.Mentions)
	}
	got := res.Mentions[0]
	if got.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", got.Candidates)
	}
	if got.Entity != "刘德华（演员）" {
		t.Errorf("resolved to %q, want the higher-evidence actor sense", got.Entity)
	}
}

func TestUncoveredText(t *testing.T) {
	tx, m := fixture(t)
	e := New(tx, m)
	res := e.Conceptualize("今天天气怎么样？")
	if res.Covered() || len(res.Concepts) != 0 {
		t.Errorf("distractor conceptualized: %+v", res)
	}
}

func TestMaxConceptsPerEntity(t *testing.T) {
	tx, m := fixture(t)
	e := New(tx, m)
	e.MaxConceptsPerEntity = 1
	res := e.Conceptualize("刘德华")
	if len(res.Mentions[0].Concepts) != 1 {
		t.Errorf("concepts = %v, want 1", res.Mentions[0].Concepts)
	}
	if res.Mentions[0].Concepts[0].Node != "演员" {
		t.Errorf("top concept = %q, want most typical 演员", res.Mentions[0].Concepts[0].Node)
	}
}
