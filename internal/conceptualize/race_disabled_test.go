//go:build !race

package conceptualize

// raceEnabled reports whether the race detector is on.
const raceEnabled = false
