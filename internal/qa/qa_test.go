package qa

import (
	"strings"
	"testing"

	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

func testWorld(t testing.TB) *synth.World {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Entities = 600
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return w
}

func TestGenerateCountAndMix(t *testing.T) {
	w := testWorld(t)
	cfg := GeneratorConfig{N: 500, DistractorRate: 0.1, Seed: 1}
	qs := Generate(w, cfg)
	if len(qs) != 500 {
		t.Fatalf("len = %d, want 500", len(qs))
	}
	distractors := 0
	for _, q := range qs {
		if q.Text == "" {
			t.Fatal("empty question")
		}
		if q.AboutEntity == "" && !strings.ContainsAny(q.Text, "？?。") {
			t.Errorf("odd question %q", q.Text)
		}
		if q.AboutEntity == "" {
			distractors++
		}
	}
	// Distractors + concept questions are both entity-less; rate must
	// be at least the configured distractor share.
	if distractors < 25 {
		t.Errorf("only %d entity-less questions", distractors)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := testWorld(t)
	a := Generate(w, GeneratorConfig{N: 50, DistractorRate: 0.1, Seed: 7})
	b := Generate(w, GeneratorConfig{N: 50, DistractorRate: 0.1, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("question %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEvaluateCoverage(t *testing.T) {
	// Handmade taxonomy: one entity known, plus the concept 演员.
	tax := taxonomy.New()
	tax.MarkEntity("刘德华（演员）")
	if err := tax.AddIsA("刘德华（演员）", "演员", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	tax.MarkConcept("演员")
	mentions := taxonomy.NewMentionIndex()
	mentions.Add("刘德华", "刘德华（演员）")

	qs := []Question{
		{Text: "刘德华的出生地是哪里？", AboutEntity: "刘德华（演员）"}, // covered via mention
		{Text: "有哪些著名的演员？"},                           // covered via concept
		{Text: "今天天气怎么样？"},                            // uncovered
	}
	res := Evaluate(qs, tax, mentions)
	if res.Questions != 3 || res.Covered != 2 {
		t.Fatalf("res = %+v, want 2/3 covered", res)
	}
	if res.Coverage() < 0.66 || res.Coverage() > 0.67 {
		t.Errorf("Coverage = %v", res.Coverage())
	}
	if res.AvgConceptsPerEntity != 1 {
		t.Errorf("AvgConceptsPerEntity = %v, want 1", res.AvgConceptsPerEntity)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	res := Evaluate(nil, taxonomy.New(), taxonomy.NewMentionIndex())
	if res.Coverage() != 0 {
		t.Errorf("empty coverage = %v", res.Coverage())
	}
}

func TestDistractorsNeverCovered(t *testing.T) {
	tax := taxonomy.New()
	mentions := taxonomy.NewMentionIndex()
	var qs []Question
	for _, d := range distractors {
		qs = append(qs, Question{Text: d})
	}
	res := Evaluate(qs, tax, mentions)
	if res.Covered != 0 {
		t.Errorf("distractors covered: %+v", res)
	}
}
