// Package qa reproduces the paper's text-understanding experiment: the
// coverage of the taxonomy over a question-answering dataset
// (NLPCC-2016 QA, 23,472 questions, in the paper). A question is
// covered when it contains at least one taxonomy entity or concept; the
// paper additionally reports the average number of concepts per covered
// entity (2.14).
//
// The dataset substitute is a template question generator over the
// synthetic world, mixed with out-of-taxonomy distractor questions
// (chitchat, arithmetic, unknown entities) at a calibrated rate.
//
// Evaluation reads through the Source interface, satisfied both by the
// mutable build store (NewStoreSource) and by the immutable
// serving.View — the serving path the /api/qa endpoint uses, pinned
// equivalent to the store by tests.
package qa

import (
	"fmt"
	"math/rand"
	"sort"

	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// Question is one generated QA item.
type Question struct {
	Text string
	// AboutEntity is the entity the question targets ("" for
	// distractors).
	AboutEntity string
}

// GeneratorConfig tunes the dataset.
type GeneratorConfig struct {
	// N is the number of questions (paper: 23,472).
	N int
	// DistractorRate is the fraction of questions with no taxonomy
	// mention (NLPCC has chitchat/math/out-of-KB questions; coverage
	// was 91.68%, so ≈8% of questions are uncoverable).
	DistractorRate float64
	Seed           int64
}

// DefaultGeneratorConfig mirrors the paper's dataset size.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{N: 23472, DistractorRate: 0.08, Seed: 5}
}

var entityTemplates = []string{
	"%s的出生地是哪里？",
	"%s是谁？",
	"%s的代表作品有哪些？",
	"%s毕业于哪所大学？",
	"%s是哪一年成立的？",
	"请介绍一下%s。",
	"%s位于哪个地区？",
	"%s的主要成就是什么？",
}

var conceptTemplates = []string{
	"有哪些著名的%s？",
	"中国最有名的%s是谁？",
	"%s一般需要什么条件？",
	"如何成为一名%s？",
}

var distractors = []string{
	"今天天气怎么样？",
	"一加一等于几？",
	"现在几点了？",
	"你叫什么名字？",
	"怎么坐地铁去机场？",
	"明天会下雨吗？",
	"帮我定一个闹钟。",
	"讲个笑话吧。",
}

// Generate produces the question set from the world.
func Generate(w *synth.World, cfg GeneratorConfig) []Question {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Question, 0, cfg.N)
	concepts := w.ConceptOrder
	for len(out) < cfg.N {
		r := rng.Float64()
		switch {
		case r < cfg.DistractorRate:
			out = append(out, Question{Text: distractors[rng.Intn(len(distractors))]})
		case r < cfg.DistractorRate+0.15:
			c := concepts[rng.Intn(len(concepts))]
			out = append(out, Question{Text: fmt.Sprintf(conceptTemplates[rng.Intn(len(conceptTemplates))], c)})
		default:
			e := w.Entities[rng.Intn(len(w.Entities))]
			out = append(out, Question{
				Text:        fmt.Sprintf(entityTemplates[rng.Intn(len(entityTemplates))], e.Title),
				AboutEntity: e.ID,
			})
		}
	}
	return out
}

// Source is the taxonomy read surface question understanding needs:
// mention scanning, mention resolution, hypernym lookup, and node
// kinds. serving.View implements it directly; NewStoreSource adapts
// the mutable build store.
type Source interface {
	FindAllAppend(dst []string, text string) []string
	Lookup(mention string) []string
	Hypernyms(node string) []string
	Kind(node string) taxonomy.NodeKind
}

// storeSource adapts the build store to Source — the reference oracle
// the view-backed path is equivalence-tested against.
type storeSource struct {
	tax      *taxonomy.Taxonomy
	mentions *taxonomy.MentionIndex
}

func (s storeSource) FindAllAppend(dst []string, text string) []string {
	return s.mentions.FindAllAppend(dst, text)
}
func (s storeSource) Lookup(mention string) []string     { return s.mentions.Lookup(mention) }
func (s storeSource) Hypernyms(node string) []string     { return s.tax.Hypernyms(node) }
func (s storeSource) Kind(node string) taxonomy.NodeKind { return s.tax.Kind(node) }

// NewStoreSource wraps the mutable store as a Source.
func NewStoreSource(tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) Source {
	return storeSource{tax: tax, mentions: mentions}
}

// CoverageResult reports the experiment's metrics.
type CoverageResult struct {
	Questions int
	Covered   int
	// AvgConceptsPerEntity is the mean number of direct concepts of the
	// entities mentioned in covered questions (paper: 2.14).
	AvgConceptsPerEntity float64
}

// Coverage returns the fraction of covered questions.
func (r CoverageResult) Coverage() float64 {
	if r.Questions == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Questions)
}

// Evaluate measures taxonomy coverage over the question set against
// the build store. EvaluateSource is the general form.
func Evaluate(questions []Question, tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) CoverageResult {
	return EvaluateSource(questions, NewStoreSource(tax, mentions))
}

// EvaluateSource measures taxonomy coverage over the question set: a
// question counts as covered when the mention index finds an entity
// mention or the text contains a taxonomy concept.
func EvaluateSource(questions []Question, src Source) CoverageResult {
	res := CoverageResult{Questions: len(questions)}
	conceptHits := 0
	conceptSum := 0
	var found []string
	for _, q := range questions {
		found = src.FindAllAppend(found[:0], q.Text)
		covered := false
		for _, m := range found {
			for _, id := range src.Lookup(m) {
				if n := len(src.Hypernyms(id)); n > 0 {
					covered = true
					conceptHits++
					conceptSum += n
					break
				}
			}
			if covered {
				break
			}
		}
		if !covered {
			// Concept mention: any taxonomy concept inside the text.
			if containsConcept(q.Text, src) {
				covered = true
			}
		}
		if covered {
			res.Covered++
		}
	}
	if conceptHits > 0 {
		res.AvgConceptsPerEntity = float64(conceptSum) / float64(conceptHits)
	}
	return res
}

// EntityMention is one resolved surface inside an understood question.
type EntityMention struct {
	Surface string `json:"surface"`
	// Entities are the candidate entity IDs of the surface, sorted.
	Entities []string `json:"entities"`
	// Concepts is the sorted union of the candidates' direct concepts.
	Concepts []string `json:"concepts"`
}

// Understanding is the per-question serving answer of the /api/qa
// endpoint: whether the taxonomy understands the question, which
// entity mentions it resolved, and which bare concepts it spotted.
type Understanding struct {
	// Covered matches EvaluateSource's predicate exactly: at least one
	// mention resolves to an entity with concepts, or the text contains
	// a taxonomy concept.
	Covered bool `json:"covered"`
	// Mentions are the entity mentions found in the question.
	Mentions []EntityMention `json:"mentions,omitempty"`
	// Concepts are distinct taxonomy concepts appearing verbatim in the
	// question, in first-occurrence order.
	Concepts []string `json:"concepts,omitempty"`
}

// Understand analyzes one question against a Source. Its Covered field
// agrees with EvaluateSource question by question — the endpoint and
// the batch experiment cannot drift apart.
func Understand(text string, src Source) Understanding {
	var u Understanding
	for _, sf := range src.FindAllAppend(nil, text) {
		ids := src.Lookup(sf)
		if len(ids) == 0 {
			continue
		}
		union := map[string]bool{}
		for _, id := range ids {
			for _, h := range src.Hypernyms(id) {
				union[h] = true
			}
		}
		concepts := make([]string, 0, len(union))
		for h := range union {
			concepts = append(concepts, h)
		}
		sort.Strings(concepts)
		if len(concepts) > 0 {
			u.Covered = true
		}
		u.Mentions = append(u.Mentions, EntityMention{Surface: sf, Entities: ids, Concepts: concepts})
	}
	u.Concepts = conceptWindows(text, src)
	if len(u.Concepts) > 0 {
		u.Covered = true
	}
	return u
}

// containsConcept scans the question for any concept node of the
// taxonomy using greedy windows up to 6 runes.
func containsConcept(text string, src Source) bool {
	rs := []rune(text)
	for i := 0; i < len(rs); i++ {
		for l := 2; l <= 6 && i+l <= len(rs); l++ {
			w := string(rs[i : i+l])
			if src.Kind(w) == taxonomy.KindConcept {
				return true
			}
		}
	}
	return false
}

// conceptWindows returns the distinct concept nodes appearing verbatim
// in text (the windows containsConcept scans), in first-occurrence
// order.
func conceptWindows(text string, src Source) []string {
	rs := []rune(text)
	var out []string
	for i := 0; i < len(rs); i++ {
		for l := 2; l <= 6 && i+l <= len(rs); l++ {
			w := string(rs[i : i+l])
			if src.Kind(w) != taxonomy.KindConcept {
				continue
			}
			dup := false
			for _, x := range out {
				if x == w {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, w)
			}
		}
	}
	return out
}
