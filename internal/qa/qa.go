// Package qa reproduces the paper's text-understanding experiment: the
// coverage of the taxonomy over a question-answering dataset
// (NLPCC-2016 QA, 23,472 questions, in the paper). A question is
// covered when it contains at least one taxonomy entity or concept; the
// paper additionally reports the average number of concepts per covered
// entity (2.14).
//
// The dataset substitute is a template question generator over the
// synthetic world, mixed with out-of-taxonomy distractor questions
// (chitchat, arithmetic, unknown entities) at a calibrated rate.
package qa

import (
	"fmt"
	"math/rand"

	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// Question is one generated QA item.
type Question struct {
	Text string
	// AboutEntity is the entity the question targets ("" for
	// distractors).
	AboutEntity string
}

// GeneratorConfig tunes the dataset.
type GeneratorConfig struct {
	// N is the number of questions (paper: 23,472).
	N int
	// DistractorRate is the fraction of questions with no taxonomy
	// mention (NLPCC has chitchat/math/out-of-KB questions; coverage
	// was 91.68%, so ≈8% of questions are uncoverable).
	DistractorRate float64
	Seed           int64
}

// DefaultGeneratorConfig mirrors the paper's dataset size.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{N: 23472, DistractorRate: 0.08, Seed: 5}
}

var entityTemplates = []string{
	"%s的出生地是哪里？",
	"%s是谁？",
	"%s的代表作品有哪些？",
	"%s毕业于哪所大学？",
	"%s是哪一年成立的？",
	"请介绍一下%s。",
	"%s位于哪个地区？",
	"%s的主要成就是什么？",
}

var conceptTemplates = []string{
	"有哪些著名的%s？",
	"中国最有名的%s是谁？",
	"%s一般需要什么条件？",
	"如何成为一名%s？",
}

var distractors = []string{
	"今天天气怎么样？",
	"一加一等于几？",
	"现在几点了？",
	"你叫什么名字？",
	"怎么坐地铁去机场？",
	"明天会下雨吗？",
	"帮我定一个闹钟。",
	"讲个笑话吧。",
}

// Generate produces the question set from the world.
func Generate(w *synth.World, cfg GeneratorConfig) []Question {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Question, 0, cfg.N)
	concepts := w.ConceptOrder
	for len(out) < cfg.N {
		r := rng.Float64()
		switch {
		case r < cfg.DistractorRate:
			out = append(out, Question{Text: distractors[rng.Intn(len(distractors))]})
		case r < cfg.DistractorRate+0.15:
			c := concepts[rng.Intn(len(concepts))]
			out = append(out, Question{Text: fmt.Sprintf(conceptTemplates[rng.Intn(len(conceptTemplates))], c)})
		default:
			e := w.Entities[rng.Intn(len(w.Entities))]
			out = append(out, Question{
				Text:        fmt.Sprintf(entityTemplates[rng.Intn(len(entityTemplates))], e.Title),
				AboutEntity: e.ID,
			})
		}
	}
	return out
}

// CoverageResult reports the experiment's metrics.
type CoverageResult struct {
	Questions int
	Covered   int
	// AvgConceptsPerEntity is the mean number of direct concepts of the
	// entities mentioned in covered questions (paper: 2.14).
	AvgConceptsPerEntity float64
}

// Coverage returns the fraction of covered questions.
func (r CoverageResult) Coverage() float64 {
	if r.Questions == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Questions)
}

// Evaluate measures taxonomy coverage over the question set: a question
// counts as covered when the mention index finds an entity mention or
// the text contains a taxonomy concept.
func Evaluate(questions []Question, tax *taxonomy.Taxonomy, mentions *taxonomy.MentionIndex) CoverageResult {
	res := CoverageResult{Questions: len(questions)}
	conceptHits := 0
	conceptSum := 0
	for _, q := range questions {
		found := mentions.FindAll(q.Text)
		covered := false
		for _, m := range found {
			for _, id := range mentions.Lookup(m) {
				if n := len(tax.Hypernyms(id)); n > 0 {
					covered = true
					conceptHits++
					conceptSum += n
					break
				}
			}
			if covered {
				break
			}
		}
		if !covered {
			// Concept mention: any taxonomy concept inside the text.
			if containsConcept(q.Text, tax) {
				covered = true
			}
		}
		if covered {
			res.Covered++
		}
	}
	if conceptHits > 0 {
		res.AvgConceptsPerEntity = float64(conceptSum) / float64(conceptHits)
	}
	return res
}

// containsConcept scans the question for any concept node of the
// taxonomy using greedy windows up to 6 runes.
func containsConcept(text string, tax *taxonomy.Taxonomy) bool {
	rs := []rune(text)
	for i := 0; i < len(rs); i++ {
		for l := 2; l <= 6 && i+l <= len(rs); l++ {
			w := string(rs[i : i+l])
			if tax.Kind(w) == taxonomy.KindConcept {
				return true
			}
		}
	}
	return false
}
