package qa

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cnprobase/internal/serving"
	"cnprobase/internal/taxonomy"
)

// randWorld builds a random store (taxonomy + mentions), its compiled
// view, and a batch of question-like texts mixing entity surfaces,
// bare concept names, and distractors.
func randWorld(t *testing.T, seed int64) (Source, *serving.View, []Question) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tax := taxonomy.NewSharded(1 + rng.Intn(4))
	mentions := taxonomy.NewMentionIndex()
	nEnt, nCon := 20+rng.Intn(20), 4+rng.Intn(4)
	ent := func(i int) string { return fmt.Sprintf("实体%02d", i) }
	con := func(i int) string { return fmt.Sprintf("概念%d", i) }
	var surfaces []string
	for i := 0; i < nEnt; i++ {
		tax.MarkEntity(ent(i))
		// Some entities get no concepts: mentioning them must not
		// count as coverage.
		for tries := rng.Intn(4); tries > 0; tries-- {
			if err := tax.AddIsA(ent(i), con(rng.Intn(nCon)), taxonomy.SourceTag, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		sf := fmt.Sprintf("词%d", rng.Intn(nEnt/2+1))
		mentions.Add(sf, ent(i))
		surfaces = append(surfaces, sf)
	}
	tax.Finalize()
	v := serving.Compile(tax, mentions)

	var qs []Question
	for i := 0; i < 150; i++ {
		var b strings.Builder
		switch rng.Intn(4) {
		case 0:
			b.WriteString(distractors[rng.Intn(len(distractors))])
		case 1:
			fmt.Fprintf(&b, "有哪些著名的%s？", con(rng.Intn(nCon)))
		default:
			fmt.Fprintf(&b, "%s是谁？", surfaces[rng.Intn(len(surfaces))])
			if rng.Intn(3) == 0 {
				b.WriteString(surfaces[rng.Intn(len(surfaces))])
			}
		}
		qs = append(qs, Question{Text: b.String()})
	}
	return NewStoreSource(tax, mentions), v, qs
}

// TestEvaluateSourceViewMatchesStore pins the coverage experiment on
// the serving view against the store oracle: identical CoverageResult,
// and identical per-question coverage decisions.
func TestEvaluateSourceViewMatchesStore(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		store, view, qs := randWorld(t, seed)
		sres := EvaluateSource(qs, store)
		vres := EvaluateSource(qs, view)
		if sres != vres {
			t.Fatalf("seed %d: view = %+v, store = %+v", seed, vres, sres)
		}
		for _, q := range qs {
			one := []Question{q}
			if s, v := EvaluateSource(one, store), EvaluateSource(one, view); s != v {
				t.Fatalf("seed %d question %q: view = %+v, store = %+v", seed, q.Text, v, s)
			}
		}
	}
}

// TestUnderstandMatchesEvaluate pins the serving endpoint's predicate
// to the batch experiment's, question by question, on both sources —
// and demands the full Understanding agrees between store and view.
func TestUnderstandMatchesEvaluate(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		store, view, qs := randWorld(t, seed)
		for _, q := range qs {
			su := Understand(q.Text, store)
			vu := Understand(q.Text, view)
			if !reflect.DeepEqual(su, vu) {
				t.Fatalf("seed %d Understand(%q):\n  view  = %+v\n  store = %+v", seed, q.Text, vu, su)
			}
			covered := EvaluateSource([]Question{q}, store).Covered == 1
			if su.Covered != covered {
				t.Fatalf("seed %d %q: Understand.Covered = %v, Evaluate says %v", seed, q.Text, su.Covered, covered)
			}
		}
	}
}

// TestUnderstandShape pins the answer structure on a hand fixture.
func TestUnderstandShape(t *testing.T) {
	tax := taxonomy.New()
	tax.MarkEntity("刘德华（演员）")
	tax.MarkEntity("刘德华（作家）")
	if err := tax.AddIsA("刘德华（演员）", "演员", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	if err := tax.AddIsA("刘德华（作家）", "作家", taxonomy.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	mentions := taxonomy.NewMentionIndex()
	mentions.Add("刘德华", "刘德华（演员）")
	mentions.Add("刘德华", "刘德华（作家）")
	tax.Finalize()
	v := serving.Compile(tax, mentions)

	u := Understand("刘德华是谁？", v)
	if !u.Covered || len(u.Mentions) != 1 {
		t.Fatalf("u = %+v", u)
	}
	m := u.Mentions[0]
	if m.Surface != "刘德华" || len(m.Entities) != 2 {
		t.Errorf("mention = %+v", m)
	}
	if want := []string{"作家", "演员"}; !reflect.DeepEqual(m.Concepts, want) {
		t.Errorf("concepts = %v, want sorted union %v", m.Concepts, want)
	}

	u = Understand("有哪些著名的演员？", v)
	if !u.Covered || len(u.Mentions) != 0 {
		t.Fatalf("concept question u = %+v", u)
	}
	if len(u.Concepts) != 1 || u.Concepts[0] != "演员" {
		t.Errorf("concept windows = %v, want [演员]", u.Concepts)
	}

	u = Understand("今天天气怎么样？", v)
	if u.Covered || u.Mentions != nil || u.Concepts != nil {
		t.Errorf("distractor u = %+v", u)
	}
}
