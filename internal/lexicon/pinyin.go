package lexicon

// charPinyin romanizes the characters used in generated person names.
// Several characters deliberately share a syllable (伟/韦/薇 → wei),
// because that ambiguity is exactly what breaks the Probase-Tran
// baseline's back-transliteration — the same failure mode the paper
// attributes to cross-language translation.
var charPinyin = map[string]string{
	// surnames
	"王": "wang", "李": "li", "张": "zhang", "刘": "liu", "陈": "chen",
	"杨": "yang", "黄": "huang", "赵": "zhao", "吴": "wu", "周": "zhou",
	"徐": "xu", "孙": "sun", "马": "ma", "朱": "zhu", "胡": "hu",
	"郭": "guo", "何": "he", "林": "lin", "罗": "luo", "高": "gao",
	"郑": "zheng", "梁": "liang", "谢": "xie", "宋": "song", "唐": "tang",
	"许": "xu", "韩": "han", "冯": "feng", "邓": "deng", "曹": "cao",
	"彭": "peng", "曾": "zeng", "肖": "xiao", "田": "tian", "董": "dong",
	"袁": "yuan", "潘": "pan", "蒋": "jiang", "蔡": "cai", "余": "yu",
	"杜": "du", "叶": "ye", "程": "cheng", "苏": "su", "魏": "wei",
	"吕": "lv", "丁": "ding", "任": "ren", "沈": "shen", "姚": "yao",
	"卢": "lu", "姜": "jiang", "崔": "cui", "钟": "zhong", "谭": "tan",
	"陆": "lu", "汪": "wang", "范": "fan", "金": "jin", "石": "shi",
	"廖": "liao", "贾": "jia", "夏": "xia", "韦": "wei", "付": "fu",
	"方": "fang", "白": "bai", "邹": "zou", "孟": "meng", "熊": "xiong",
	"秦": "qin", "邱": "qiu", "江": "jiang", "尹": "yin", "薛": "xue",
	"闫": "yan", "段": "duan", "雷": "lei", "侯": "hou", "龙": "long",
	"史": "shi", "陶": "tao", "黎": "li", "贺": "he", "顾": "gu",
	"毛": "mao", "郝": "hao", "龚": "gong", "邵": "shao", "万": "wan",
	"钱": "qian", "严": "yan", "覃": "qin", "武": "wu", "戴": "dai",
	"莫": "mo", "孔": "kong", "向": "xiang", "汤": "tang", "欧阳": "ouyang",
	// given-name characters
	"伟": "wei", "芳": "fang", "娜": "na", "敏": "min", "静": "jing",
	"丽": "li", "强": "qiang", "磊": "lei", "军": "jun", "洋": "yang",
	"勇": "yong", "艳": "yan", "杰": "jie", "娟": "juan", "涛": "tao",
	"明": "ming", "超": "chao", "秀": "xiu", "霞": "xia", "平": "ping",
	"刚": "gang", "英": "ying", "华": "hua", "玉": "yu", "萍": "ping",
	"红": "hong", "玲": "ling", "丹": "dan", "峰": "feng", "凤": "feng",
	"雪": "xue", "琳": "lin", "晨": "chen", "宇": "yu", "浩": "hao",
	"轩": "xuan", "欣": "xin", "怡": "yi", "佳": "jia", "俊": "jun",
	"鹏": "peng", "飞": "fei", "鑫": "xin", "波": "bo", "斌": "bin",
	"莉": "li", "桂": "gui", "婷": "ting", "云": "yun", "健": "jian",
	"倩": "qian", "薇": "wei", "晶": "jing", "悦": "yue", "然": "ran",
	"博": "bo", "文": "wen", "天": "tian", "一": "yi",
}

// CharPinyin returns the romanization of a single character, if known.
func CharPinyin(ch string) (string, bool) {
	p, ok := charPinyin[ch]
	return p, ok
}

// canonical maps are deterministic, lossy inverses of charPinyin, as a
// machine transliterator would pick: one preferring surnames (for the
// family-name position) and one preferring given-name characters.
func buildCanonical(first, second []string) map[string]string {
	m := make(map[string]string)
	claim := func(chars []string) {
		for _, c := range chars {
			if p, ok := charPinyin[c]; ok {
				if _, taken := m[p]; !taken {
					m[p] = c
				}
			}
		}
	}
	claim(first)
	claim(second)
	return m
}

var (
	canonicalSurname = buildCanonical(surnames, givenChars)
	canonicalGiven   = buildCanonical(givenChars, surnames)
)

// PinyinToChar returns the canonical character for a syllable in
// surname position, if any.
func PinyinToChar(syllable string) (string, bool) {
	c, ok := canonicalSurname[syllable]
	return c, ok
}

// PinyinToGivenChar returns the canonical character for a syllable in
// given-name position, if any.
func PinyinToGivenChar(syllable string) (string, bool) {
	c, ok := canonicalGiven[syllable]
	return c, ok
}
