// Package lexicon embeds the Chinese word lists every other part of the
// reproduction draws from: surname and given-name characters for person
// name generation and NER, region and modifier vocabulary for brackets,
// job titles, organization/place suffixes, the 184-entry thematic
// (non-taxonomic) word lexicon used by the syntax-rule verifier (after
// Li et al., APWeb 2015), and the concept ontology with English glosses
// that powers both the synthetic encyclopedia and the Probase-Tran
// translation baseline.
//
// All exported accessors return fresh copies; the embedded data is
// immutable.
package lexicon

// copyOf returns a defensive copy of the given word list.
func copyOf(xs []string) []string {
	out := make([]string, len(xs))
	copy(out, xs)
	return out
}

var surnames = []string{
	"王", "李", "张", "刘", "陈", "杨", "黄", "赵", "吴", "周",
	"徐", "孙", "马", "朱", "胡", "郭", "何", "林", "罗", "高",
	"郑", "梁", "谢", "宋", "唐", "许", "韩", "冯", "邓", "曹",
	"彭", "曾", "肖", "田", "董", "袁", "潘", "蒋", "蔡", "余",
	"杜", "叶", "程", "苏", "魏", "吕", "丁", "任", "沈", "姚",
	"卢", "姜", "崔", "钟", "谭", "陆", "汪", "范", "金", "石",
	"廖", "贾", "夏", "韦", "付", "方", "白", "邹", "孟", "熊",
	"秦", "邱", "江", "尹", "薛", "闫", "段", "雷", "侯", "龙",
	"史", "陶", "黎", "贺", "顾", "毛", "郝", "龚", "邵", "万",
	"钱", "严", "覃", "武", "戴", "莫", "孔", "向", "汤", "欧阳",
}

// Surnames returns the embedded Chinese surname list (single- and
// double-character family names).
func Surnames() []string { return copyOf(surnames) }

var givenChars = []string{
	"伟", "芳", "娜", "敏", "静", "丽", "强", "磊", "军", "洋",
	"勇", "艳", "杰", "娟", "涛", "明", "超", "秀", "霞", "平",
	"刚", "英", "华", "玉", "红", "玲", "丹", "峰", "龙",
	"雪", "琳", "晨", "宇", "浩", "轩", "欣", "怡", "佳",
	"俊", "鹏", "飞", "波", "斌", "桂", "婷", "云",
	"健", "倩", "悦", "然", "博", "文", "天", "一",
}

// GivenChars returns characters commonly used in Chinese given names.
func GivenChars() []string { return copyOf(givenChars) }

var regions = []string{
	"中国", "美国", "日本", "英国", "法国", "德国", "韩国", "俄罗斯",
	"意大利", "加拿大", "澳大利亚", "印度", "巴西", "西班牙",
	"中国香港", "中国台湾", "中国澳门",
	"北京", "上海", "广州", "深圳", "杭州", "南京", "成都", "武汉",
	"西安", "重庆", "天津", "苏州", "长沙", "青岛", "厦门", "福州",
	"江苏", "浙江", "广东", "山东", "四川", "湖南", "湖北", "福建",
	"河南", "河北", "陕西", "辽宁", "安徽", "江西", "云南", "贵州",
}

// Regions returns country/province/city words that act as bracket
// modifiers, birthplaces and named-entity noise in tags.
func Regions() []string { return copyOf(regions) }

var modifiers = []string{
	"著名", "知名", "男", "女", "青年", "当代", "现代", "古代",
	"资深", "新生代", "国际", "民间", "优秀", "杰出", "原创",
	"独立", "自由", "专业", "业余", "一线",
}

// Modifiers returns adjective-like words that precede concepts inside
// disambiguation brackets (e.g. 著名男演员).
func Modifiers() []string { return copyOf(modifiers) }

var jobTitles = []string{
	"首席执行官", "首席战略官", "首席技术官", "首席财务官", "首席运营官",
	"总经理", "副总经理", "董事长", "副董事长", "总裁", "副总裁",
	"创始人", "联合创始人", "合伙人", "总监", "部门经理",
	"教授", "副教授", "讲师", "研究员", "副研究员", "院士",
	"主任医师", "主治医师", "总编辑", "主编", "制片人", "总设计师",
}

// JobTitles returns compound job titles that serve as bracket hypernyms
// (e.g. 蚂蚁金服首席战略官 → 首席战略官).
func JobTitles() []string { return copyOf(jobTitles) }

// titleComponents are the pieces compound titles are built from. They —
// not the full titles — go into the segmenter dictionary, so that
// 首席战略官 segments as 首席|战略官 and the PMI separation algorithm has
// real merging work to do (paper, Figure 3).
var titleComponents = []string{
	"首席", "战略官", "执行官", "技术官", "财务官", "运营官",
	"总经理", "副总经理", "董事长", "副董事长", "总裁", "副总裁",
	"创始人", "联合", "合伙人", "总监", "部门", "经理",
	"教授", "副教授", "讲师", "研究员", "院士", "主任", "医师",
	"总编辑", "主编", "制片人", "设计师",
}

// TitleComponents returns the segmentation units of compound job titles.
func TitleComponents() []string { return copyOf(titleComponents) }

// orgIndustry are industry words that compose with OrgStems into company
// names such as 蚂蚁金服 (ANT FINANCIAL in the paper's running example).
var orgIndustry = []string{"金服", "科技", "网络", "传媒", "资本", "控股", "证券", "软件"}

// OrgIndustry returns industry words used in synthetic company names.
func OrgIndustry() []string { return copyOf(orgIndustry) }

var placeSuffixes = []string{"市", "县", "省", "镇", "村", "山", "河", "湖", "岛", "区", "州", "城", "港", "湾"}

// PlaceSuffixes returns single-rune suffixes that signal place names.
func PlaceSuffixes() []string { return copyOf(placeSuffixes) }

var orgSuffixes = []string{
	"大学", "学院", "公司", "集团", "银行", "医院", "中学", "小学",
	"研究所", "研究院", "乐队", "俱乐部", "出版社", "电视台", "报社",
	"协会", "基金会", "事务所",
}

// OrgSuffixes returns multi-rune suffixes that signal organization names.
func OrgSuffixes() []string { return copyOf(orgSuffixes) }

var placeStems = []string{
	"安宁", "清河", "临江", "长乐", "永兴", "武陵", "广陵", "河阳",
	"洛川", "江宁", "海陵", "云梦", "龙泉", "凤台", "金沙", "玉门",
	"青田", "白水", "新野", "东阿", "西陵", "南浔", "北固", "中宁",
	"平遥", "兴化", "宁远", "景德", "梅溪", "桃源", "松江", "竹山",
}

// PlaceStems returns two-character stems composed with PlaceSuffixes to
// mint synthetic place names (e.g. 清河 + 市 → 清河市).
func PlaceStems() []string { return copyOf(placeStems) }

var orgStems = []string{
	"华创", "腾达", "百汇", "阿曼", "联宇", "中科", "天睿", "金辉",
	"银杉", "信诚", "创远", "达邦", "科蓝", "瑞丰", "宏图", "泰和",
	"盛世", "隆基", "蚂蚁", "星河", "云帆", "博雅", "启明", "远大",
}

// OrgStems returns stems composed with OrgSuffixes to mint synthetic
// organization names (e.g. 蚂蚁 + 金服).
func OrgStems() []string { return copyOf(orgStems) }

var workChars = []string{
	"春", "秋", "月", "风", "花", "雪", "夜", "山", "海", "江",
	"湖", "天", "地", "星", "光", "影", "梦", "情", "心", "缘",
	"恋", "城", "歌", "泪", "雨", "虹", "桥", "路", "灯", "船",
}

// WorkChars returns characters used to mint titles of creative works.
func WorkChars() []string { return copyOf(workChars) }

var functionWords = []string{
	"年", "月", "日", "出生", "出生于", "位于", "成立", "成立于",
	"毕业于", "是", "一家", "一部", "一名", "一位", "一座", "的",
	"有", "和", "与", "在", "于", "由", "为", "等", "其", "该",
	"执导", "演唱", "创作", "主演", "出演", "发行", "上映", "出版",
	"代表作品", "主要作品", "获得", "凭借", "担任", "曾任", "现任",
	"毕业", "就读", "任教", "享有", "被誉为", "之一", "先后",
}

// FunctionWords returns grammatical/function vocabulary used by the
// abstract templates; the segmenter needs them in its dictionary so that
// content words are cut cleanly.
func FunctionWords() []string { return copyOf(functionWords) }

// thematicWords is the 184-entry non-taxonomic lexicon used by syntax
// rule (1): a good hypernym is never a thematic word. Mirrors the
// lexicon the paper borrows from Li et al. (2015).
var thematicWords = []string{
	"政治", "军事", "经济", "文化", "艺术", "体育", "娱乐", "科技",
	"教育", "历史", "地理", "音乐", "美术", "舞蹈", "戏剧", "文学",
	"哲学", "宗教", "法律", "医学", "农业", "工业", "商业", "贸易",
	"金融", "财经", "交通", "旅游", "美食", "时尚", "健康", "养生",
	"环保", "能源", "航天", "航空", "外交", "民生", "社会", "民俗",
	"语言", "数学", "物理", "化学", "生物学", "天文", "气象", "地质",
	"海洋", "生态", "心理", "伦理", "逻辑", "美学", "考古", "人文",
	"科普", "国学", "武术", "棋牌", "摄影", "书法", "曲艺", "杂技",
	"动漫", "游戏产业", "影视", "传媒", "出版", "广告", "公关", "营销",
	"管理", "人力资源", "会计", "审计", "统计", "税务", "保险", "证券",
	"基金", "期货", "外汇", "地产", "建筑业", "制造", "物流", "电商",
	"互联网", "通信", "软件业", "硬件", "人工智能", "大数据", "云计算", "区块链",
	"网络安全", "生物技术", "医药", "化工", "冶金", "纺织", "食品业", "饮食",
	"服饰", "家居", "园艺", "宠物", "母婴", "婚庆", "殡葬", "公益",
	"慈善", "志愿服务", "社区", "乡村", "城市化", "人口", "民族", "宗族",
	"礼仪", "节庆", "民间文学", "神话", "传说", "典故", "成语", "诗词",
	"散文", "小说创作", "评论", "翻译", "修辞", "语法", "词汇", "音韵",
	"方言", "文字", "书画", "收藏", "文物", "遗产", "博览", "展览",
	"竞技", "健身", "户外", "探险", "垂钓", "狩猎", "骑行", "登山",
	"滑雪", "游泳运动", "球类", "田径运动", "水上运动", "冰雪运动", "极限运动", "电竞",
	"养殖", "种植", "林业", "渔业", "牧业", "水利", "气候", "灾害",
	"天气", "环境", "污染", "资源", "矿产", "石油", "电力", "新能源",
	"核能", "风能", "太阳能", "交通运输", "铁路", "公路", "航运", "民航",
}

// ThematicWords returns the 184-entry non-taxonomic thematic lexicon.
func ThematicWords() []string { return copyOf(thematicWords) }

var thematicSet = func() map[string]bool {
	m := make(map[string]bool, len(thematicWords))
	for _, w := range thematicWords {
		m[w] = true
	}
	return m
}()

// IsThematic reports whether w is in the thematic lexicon.
func IsThematic(w string) bool { return thematicSet[w] }

// ThematicCount returns the size of the thematic lexicon (184 in the
// paper; kept as an exported constant check for tests).
func ThematicCount() int { return len(thematicWords) }

var pinyinSyllables = []string{
	"an", "bao", "bin", "bo", "chen", "cheng", "chun", "da", "dong", "fan",
	"fei", "feng", "gang", "guo", "hai", "hao", "hong", "hua", "hui", "jia",
	"jian", "jie", "jin", "jing", "jun", "kai", "kang", "lan", "lei", "li",
	"liang", "lin", "ling", "long", "mei", "ming", "na", "ning", "peng", "ping",
	"qian", "qiang", "qing", "ran", "rong", "rui", "shan", "sheng", "shu", "song",
	"tao", "ting", "wei", "wen", "xia", "xiang", "xin", "xing", "xiu", "xue",
	"yan", "yang", "yi", "ying", "yong", "yu", "yuan", "yun", "ze", "zhen",
	"zheng", "zhi", "zhong", "zhou", "zhu",
}

// PinyinSyllables returns romanization syllables used to mint English
// labels for synthetic entities (consumed by the Probase-Tran baseline).
func PinyinSyllables() []string { return copyOf(pinyinSyllables) }
