package lexicon

import (
	"strings"
	"testing"

	"cnprobase/internal/runes"
)

func TestThematicLexiconSize(t *testing.T) {
	// The paper uses a 184-entry non-taxonomic lexicon (Li et al.).
	if got := ThematicCount(); got != 184 {
		t.Errorf("ThematicCount = %d, want 184", got)
	}
}

func TestThematicLookup(t *testing.T) {
	for _, w := range []string{"政治", "军事", "音乐"} {
		if !IsThematic(w) {
			t.Errorf("IsThematic(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"演员", "城市", "不存在的词"} {
		if IsThematic(w) {
			t.Errorf("IsThematic(%q) = true, want false", w)
		}
	}
}

func TestThematicDisjointFromOntology(t *testing.T) {
	// A word cannot be both a real concept and a thematic filter
	// target, or the syntax rule would wrongly kill true relations.
	for _, c := range ConceptNames() {
		if IsThematic(c) {
			t.Errorf("concept %q is also thematic", c)
		}
	}
}

func TestOntologyWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	en := make(map[string]string)
	for _, e := range Ontology() {
		if e.Zh == "" || e.En == "" {
			t.Fatalf("ontology entry with empty field: %+v", e)
		}
		if seen[e.Zh] {
			t.Errorf("duplicate concept %q", e.Zh)
		}
		seen[e.Zh] = true
		if prev, dup := en[e.En]; dup {
			t.Errorf("English gloss %q used by both %q and %q", e.En, prev, e.Zh)
		}
		en[e.En] = e.Zh
		if !runes.AllHan(e.Zh) {
			t.Errorf("concept %q is not pure Han", e.Zh)
		}
	}
	// Every parent must exist.
	for _, e := range Ontology() {
		if e.Parent == "" {
			continue
		}
		if !seen[e.Parent] {
			t.Errorf("concept %q has unknown parent %q", e.Zh, e.Parent)
		}
	}
}

func TestOntologyAcyclic(t *testing.T) {
	parent := make(map[string]string)
	for _, e := range Ontology() {
		parent[e.Zh] = e.Parent
	}
	for _, e := range Ontology() {
		steps := 0
		for cur := e.Zh; cur != ""; cur = parent[cur] {
			steps++
			if steps > len(parent) {
				t.Fatalf("cycle through %q", e.Zh)
			}
		}
	}
}

func TestConceptLookups(t *testing.T) {
	p, ok := ConceptParent("男演员")
	if !ok || p != "演员" {
		t.Errorf("ConceptParent(男演员) = %q,%v, want 演员,true", p, ok)
	}
	if _, ok := ConceptParent("不存在"); ok {
		t.Error("ConceptParent(不存在) should not be found")
	}
	g, ok := EnglishGloss("歌手")
	if !ok || g != "singer" {
		t.Errorf("EnglishGloss(歌手) = %q,%v", g, ok)
	}
	zh, ok := FromEnglish("singer")
	if !ok || zh != "歌手" {
		t.Errorf("FromEnglish(singer) = %q,%v", zh, ok)
	}
}

func TestBaseDictionaryCoversCriticalWords(t *testing.T) {
	dict := make(map[string]bool)
	for _, w := range BaseDictionary() {
		dict[w] = true
	}
	// The Figure 3 walkthrough depends on these being separate words.
	for _, w := range []string{"首席", "战略官", "金服", "蚂蚁", "中国香港", "男演员", "出生于"} {
		if !dict[w] {
			t.Errorf("BaseDictionary missing %q", w)
		}
	}
	// Full compound titles must NOT be dictionary words, or the
	// separation algorithm has nothing to do.
	for _, w := range []string{"首席战略官", "蚂蚁金服"} {
		if dict[w] {
			t.Errorf("BaseDictionary should not contain compound %q", w)
		}
	}
}

func TestAccessorsReturnCopies(t *testing.T) {
	a := Surnames()
	a[0] = "XX"
	b := Surnames()
	if b[0] == "XX" {
		t.Error("Surnames returns shared slice; mutation leaked")
	}
}

func TestPinyinTables(t *testing.T) {
	// Every surname and given char must romanize.
	for _, s := range Surnames() {
		if _, ok := CharPinyin(s); !ok {
			t.Errorf("surname %q missing pinyin", s)
		}
	}
	for _, g := range GivenChars() {
		if _, ok := CharPinyin(g); !ok {
			t.Errorf("given char %q missing pinyin", g)
		}
	}
	// Canonical inversion must return a char with that pinyin.
	for _, syl := range []string{"wang", "li", "wei", "ming"} {
		c, ok := PinyinToChar(syl)
		if !ok {
			t.Errorf("PinyinToChar(%q) not found", syl)
			continue
		}
		if p, _ := CharPinyin(c); p != syl {
			t.Errorf("PinyinToChar(%q) = %q whose pinyin is %q", syl, c, p)
		}
		g, ok := PinyinToGivenChar(syl)
		if !ok {
			t.Errorf("PinyinToGivenChar(%q) not found", syl)
			continue
		}
		if p, _ := CharPinyin(g); p != syl {
			t.Errorf("PinyinToGivenChar(%q) = %q whose pinyin is %q", syl, g, p)
		}
	}
	// Position preference: wei → 韦 as surname, 伟 as given char.
	if c, _ := PinyinToChar("wei"); c != "韦" && c != "魏" {
		t.Errorf("PinyinToChar(wei) = %q, want a surname", c)
	}
	if c, _ := PinyinToGivenChar("wei"); c != "伟" {
		t.Errorf("PinyinToGivenChar(wei) = %q, want 伟", c)
	}
}

func TestWordListsArePureHan(t *testing.T) {
	check := func(name string, xs []string) {
		for _, w := range xs {
			if strings.TrimSpace(w) == "" || !runes.AllHan(w) {
				t.Errorf("%s contains non-Han or empty entry %q", name, w)
			}
		}
	}
	check("Surnames", Surnames())
	check("Regions", Regions())
	check("Modifiers", Modifiers())
	check("JobTitles", JobTitles())
	check("ThematicWords", ThematicWords())
	check("OrgSuffixes", OrgSuffixes())
	check("PlaceStems", PlaceStems())
}
