package lexicon

// ConceptEntry is one node of the embedded ground-truth concept
// ontology. Parent is the Chinese name of the parent concept, or empty
// for a root (top-level) concept. En is the English gloss consumed by
// the Probase-Tran translation baseline.
type ConceptEntry struct {
	Zh     string
	En     string
	Parent string
}

// ontology is the embedded concept tree. It intentionally covers the
// domains the paper's examples draw from (people, places, organizations,
// creative works, organisms, products, events) with two to three levels
// of subconcepts, so that subconcept-concept edges, incompatible concept
// pairs (e.g. 人物 vs 图书) and composed hypernyms (男演员) all arise.
var ontology = []ConceptEntry{
	// ------- 人物 person -------
	{Zh: "人物", En: "person"},
	{Zh: "演员", En: "actor", Parent: "人物"},
	{Zh: "男演员", En: "male actor", Parent: "演员"},
	{Zh: "女演员", En: "actress", Parent: "演员"},
	{Zh: "电影演员", En: "film actor", Parent: "演员"},
	{Zh: "喜剧演员", En: "comedian", Parent: "演员"},
	{Zh: "歌手", En: "singer", Parent: "人物"},
	{Zh: "男歌手", En: "male singer", Parent: "歌手"},
	{Zh: "女歌手", En: "female singer", Parent: "歌手"},
	{Zh: "流行歌手", En: "pop singer", Parent: "歌手"},
	{Zh: "民谣歌手", En: "folk singer", Parent: "歌手"},
	{Zh: "作家", En: "writer", Parent: "人物"},
	{Zh: "小说家", En: "novelist", Parent: "作家"},
	{Zh: "散文家", En: "essayist", Parent: "作家"},
	{Zh: "科幻作家", En: "science fiction writer", Parent: "作家"},
	{Zh: "诗人", En: "poet", Parent: "人物"},
	{Zh: "科学家", En: "scientist", Parent: "人物"},
	{Zh: "物理学家", En: "physicist", Parent: "科学家"},
	{Zh: "化学家", En: "chemist", Parent: "科学家"},
	{Zh: "数学家", En: "mathematician", Parent: "科学家"},
	{Zh: "生物学家", En: "biologist", Parent: "科学家"},
	{Zh: "天文学家", En: "astronomer", Parent: "科学家"},
	{Zh: "计算机科学家", En: "computer scientist", Parent: "科学家"},
	{Zh: "运动员", En: "athlete", Parent: "人物"},
	{Zh: "足球运动员", En: "football player", Parent: "运动员"},
	{Zh: "篮球运动员", En: "basketball player", Parent: "运动员"},
	{Zh: "乒乓球运动员", En: "table tennis player", Parent: "运动员"},
	{Zh: "游泳运动员", En: "swimmer", Parent: "运动员"},
	{Zh: "政治家", En: "politician", Parent: "人物"},
	{Zh: "外交家", En: "diplomat", Parent: "政治家"},
	{Zh: "企业家", En: "entrepreneur", Parent: "人物"},
	{Zh: "投资人", En: "investor", Parent: "企业家"},
	{Zh: "医生", En: "doctor", Parent: "人物"},
	{Zh: "教师", En: "teacher", Parent: "人物"},
	{Zh: "导演", En: "director", Parent: "人物"},
	{Zh: "画家", En: "painter", Parent: "人物"},
	{Zh: "音乐家", En: "musician", Parent: "人物"},
	{Zh: "作曲家", En: "composer", Parent: "音乐家"},
	{Zh: "记者", En: "journalist", Parent: "人物"},
	{Zh: "律师", En: "lawyer", Parent: "人物"},
	{Zh: "工程师", En: "engineer", Parent: "人物"},
	{Zh: "学者", En: "scholar", Parent: "人物"},
	{Zh: "主持人", En: "host", Parent: "人物"},
	{Zh: "模特", En: "model", Parent: "人物"},
	{Zh: "歌唱家", En: "vocalist", Parent: "音乐家"},
	{Zh: "舞蹈家", En: "dancer", Parent: "人物"},
	{Zh: "词作人", En: "lyricist", Parent: "音乐家"},
	{Zh: "娱乐人物", En: "entertainer", Parent: "人物"},

	// ------- 地点 place -------
	{Zh: "地点", En: "place"},
	{Zh: "城市", En: "city", Parent: "地点"},
	{Zh: "省会城市", En: "provincial capital", Parent: "城市"},
	{Zh: "沿海城市", En: "coastal city", Parent: "城市"},
	{Zh: "历史文化名城", En: "historic city", Parent: "城市"},
	{Zh: "国家", En: "country", Parent: "地点"},
	{Zh: "乡镇", En: "town", Parent: "地点"},
	{Zh: "村庄", En: "village", Parent: "地点"},
	{Zh: "山脉", En: "mountain", Parent: "地点"},
	{Zh: "河流", En: "river", Parent: "地点"},
	{Zh: "湖泊", En: "lake", Parent: "地点"},
	{Zh: "岛屿", En: "island", Parent: "地点"},
	{Zh: "景点", En: "scenic spot", Parent: "地点"},
	{Zh: "古镇", En: "ancient town", Parent: "景点"},
	{Zh: "自然保护区", En: "nature reserve", Parent: "景点"},
	{Zh: "地区", En: "region", Parent: "地点"},
	{Zh: "省份", En: "province", Parent: "地点"},

	// ------- 组织 organization -------
	{Zh: "组织", En: "organization"},
	{Zh: "大学", En: "university", Parent: "组织"},
	{Zh: "综合性大学", En: "comprehensive university", Parent: "大学"},
	{Zh: "师范大学", En: "normal university", Parent: "大学"},
	{Zh: "医科大学", En: "medical university", Parent: "大学"},
	{Zh: "公司", En: "company", Parent: "组织"},
	{Zh: "科技公司", En: "technology company", Parent: "公司"},
	{Zh: "互联网公司", En: "internet company", Parent: "公司"},
	{Zh: "电影公司", En: "film company", Parent: "公司"},
	{Zh: "金融公司", En: "financial company", Parent: "公司"},
	{Zh: "游戏公司", En: "game company", Parent: "公司"},
	{Zh: "银行", En: "bank", Parent: "组织"},
	{Zh: "医院", En: "hospital", Parent: "组织"},
	{Zh: "中学", En: "middle school", Parent: "组织"},
	{Zh: "小学", En: "primary school", Parent: "组织"},
	{Zh: "研究所", En: "research institute", Parent: "组织"},
	{Zh: "乐队", En: "band", Parent: "组织"},
	{Zh: "球队", En: "sports team", Parent: "组织"},
	{Zh: "足球俱乐部", En: "football club", Parent: "球队"},
	{Zh: "篮球俱乐部", En: "basketball club", Parent: "球队"},
	{Zh: "出版社", En: "publisher", Parent: "组织"},
	{Zh: "电视台", En: "television station", Parent: "组织"},
	{Zh: "报社", En: "newspaper office", Parent: "组织"},
	{Zh: "协会", En: "association", Parent: "组织"},
	{Zh: "基金会", En: "foundation", Parent: "组织"},

	// ------- 作品 work -------
	{Zh: "作品", En: "work"},
	{Zh: "图书", En: "book", Parent: "作品"},
	{Zh: "电影", En: "film", Parent: "作品"},
	{Zh: "动作电影", En: "action film", Parent: "电影"},
	{Zh: "爱情电影", En: "romance film", Parent: "电影"},
	{Zh: "喜剧电影", En: "comedy film", Parent: "电影"},
	{Zh: "科幻电影", En: "science fiction film", Parent: "电影"},
	{Zh: "警匪片", En: "crime film", Parent: "电影"},
	{Zh: "传记片", En: "biographical film", Parent: "电影"},
	{Zh: "电视剧", En: "television drama", Parent: "作品"},
	{Zh: "武侠剧", En: "wuxia drama", Parent: "电视剧"},
	{Zh: "剧情片", En: "drama film", Parent: "电影"},
	{Zh: "小说", En: "novel", Parent: "图书"},
	{Zh: "武侠小说", En: "wuxia novel", Parent: "小说"},
	{Zh: "言情小说", En: "romance novel", Parent: "小说"},
	{Zh: "科幻小说", En: "science fiction novel", Parent: "小说"},
	{Zh: "历史小说", En: "historical novel", Parent: "小说"},
	{Zh: "推理小说", En: "mystery novel", Parent: "小说"},
	{Zh: "歌曲", En: "song", Parent: "作品"},
	{Zh: "流行歌曲", En: "pop song", Parent: "歌曲"},
	{Zh: "专辑", En: "album", Parent: "作品"},
	{Zh: "游戏", En: "game", Parent: "作品"},
	{Zh: "纪录片", En: "documentary", Parent: "电影"},
	{Zh: "诗集", En: "poetry collection", Parent: "图书"},
	{Zh: "杂志", En: "magazine", Parent: "作品"},
	{Zh: "动画片", En: "animated film", Parent: "电影"},

	// ------- 生物 organism -------
	{Zh: "生物", En: "organism"},
	{Zh: "动物", En: "animal", Parent: "生物"},
	{Zh: "鸟类", En: "bird", Parent: "动物"},
	{Zh: "鱼类", En: "fish", Parent: "动物"},
	{Zh: "昆虫", En: "insect", Parent: "动物"},
	{Zh: "哺乳动物", En: "mammal", Parent: "动物"},
	{Zh: "爬行动物", En: "reptile", Parent: "动物"},
	{Zh: "植物", En: "plant", Parent: "生物"},
	{Zh: "乔木", En: "tree", Parent: "植物"},
	{Zh: "灌木", En: "shrub", Parent: "植物"},
	{Zh: "草本植物", En: "herb", Parent: "植物"},
	{Zh: "花卉", En: "flower", Parent: "植物"},
	{Zh: "药用植物", En: "medicinal plant", Parent: "植物"},

	// ------- 产品 product -------
	{Zh: "产品", En: "product"},
	{Zh: "手机", En: "mobile phone", Parent: "产品"},
	{Zh: "智能手机", En: "smartphone", Parent: "手机"},
	{Zh: "汽车", En: "car", Parent: "产品"},
	{Zh: "轿车", En: "sedan", Parent: "汽车"},
	{Zh: "越野车", En: "off-road vehicle", Parent: "汽车"},
	{Zh: "电动汽车", En: "electric car", Parent: "汽车"},
	{Zh: "软件", En: "software", Parent: "产品"},
	{Zh: "相机", En: "camera", Parent: "产品"},
	{Zh: "电脑", En: "computer", Parent: "产品"},
	{Zh: "饮料", En: "beverage", Parent: "产品"},
	{Zh: "食品", En: "food", Parent: "产品"},
	{Zh: "药品", En: "medicine", Parent: "产品"},

	// ------- 事件 event -------
	{Zh: "事件", En: "event"},
	{Zh: "战争", En: "war", Parent: "事件"},
	{Zh: "比赛", En: "competition", Parent: "事件"},
	{Zh: "节日", En: "festival", Parent: "事件"},
	{Zh: "会议", En: "conference", Parent: "事件"},
	{Zh: "演唱会", En: "concert", Parent: "事件"},
}

// Ontology returns the embedded concept ontology as a copy.
func Ontology() []ConceptEntry {
	out := make([]ConceptEntry, len(ontology))
	copy(out, ontology)
	return out
}

// ConceptNames returns the Chinese names of all ontology concepts.
func ConceptNames() []string {
	out := make([]string, len(ontology))
	for i, c := range ontology {
		out[i] = c.Zh
	}
	return out
}

// ConceptParent returns the parent concept of zh and whether zh is in
// the ontology.
func ConceptParent(zh string) (string, bool) {
	for _, c := range ontology {
		if c.Zh == zh {
			return c.Parent, true
		}
	}
	return "", false
}

// EnglishGloss returns the English gloss of a Chinese concept, if any.
func EnglishGloss(zh string) (string, bool) {
	for _, c := range ontology {
		if c.Zh == zh {
			return c.En, true
		}
	}
	return "", false
}

// FromEnglish returns the Chinese concept for an English gloss, if any.
func FromEnglish(en string) (string, bool) {
	for _, c := range ontology {
		if c.En == en {
			return c.Zh, true
		}
	}
	return "", false
}

// BaseDictionary returns the union of all embedded word lists: the
// segmenter seeds its dictionary from this, and the synthetic corpus
// renders text using only these words plus generated entity names.
func BaseDictionary() []string {
	var out []string
	out = append(out, ConceptNames()...)
	out = append(out, modifiers...)
	out = append(out, regions...)
	out = append(out, titleComponents...)
	out = append(out, orgIndustry...)
	out = append(out, thematicWords...)
	out = append(out, functionWords...)
	out = append(out, orgSuffixes...)
	out = append(out, placeStems...)
	out = append(out, orgStems...)
	return out
}
