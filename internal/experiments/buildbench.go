package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/synth"
)

// BuildBenchResult is the machine-readable build-throughput record the
// CI pipeline emits as BENCH_BUILD.json, so the hot-path trajectory
// (segmentation speed, pipeline speed, allocation discipline) has one
// data point per commit.
type BuildBenchResult struct {
	// Entities is the synthetic-world size the numbers were measured at.
	Entities int `json:"entities"`
	// Workers is the resolved pipeline worker count of the parallel run.
	Workers int `json:"workers"`
	// RunesPerSec is steady-state Viterbi segmentation throughput over
	// the world's abstracts (pooled CutAppend path, single goroutine).
	RunesPerSec float64 `json:"runes_per_sec"`
	// PagesPerSec is end-to-end build throughput (generation +
	// verification + assembly, neural stage off) at full parallelism.
	PagesPerSec float64 `json:"pages_per_sec"`
	// PagesPerSecSequential is the same build at Workers=1.
	PagesPerSecSequential float64 `json:"pages_per_sec_sequential"`
	// AllocsPerCut is the average number of heap allocations one
	// steady-state CutAppend performs (0 is the contract).
	AllocsPerCut float64 `json:"allocs_per_cut"`
}

// minMeasure is the minimum wall time each measurement loop runs for.
const minMeasure = 300 * time.Millisecond

// RunBuildBench measures build-side throughput over a fresh synthetic
// world and returns the record. It is deliberately dependency-free
// (no testing package) so cmd/experiments can emit BENCH_BUILD.json
// from a plain binary.
func RunBuildBench(entities int) (*BuildBenchResult, error) {
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	corpus := w.Corpus()

	opts := core.DefaultOptions()
	opts.EnableNeural = false // keep the measurement deterministic
	res, err := core.New(opts).Build(corpus)
	if err != nil {
		return nil, err
	}
	out := &BuildBenchResult{Entities: wcfg.Entities, Workers: res.Report.Workers}

	// --- segmentation throughput (runes/s) ---
	seg := res.Segmenter
	abstracts := make([]string, 0, corpus.Len())
	totalRunes := 0
	for i := range corpus.Pages {
		if a := corpus.Pages[i].Abstract; a != "" {
			abstracts = append(abstracts, a)
			totalRunes += len([]rune(a))
		}
	}
	var dst []string
	for _, a := range abstracts { // warm the scratch pool and dst
		dst = seg.CutAppend(dst[:0], a)
	}
	passes := 0
	start := time.Now()
	for time.Since(start) < minMeasure {
		for _, a := range abstracts {
			dst = seg.CutAppend(dst[:0], a)
		}
		passes++
	}
	out.RunesPerSec = float64(totalRunes) * float64(passes) / time.Since(start).Seconds()

	// --- allocations per steady-state cut ---
	const cuts = 2000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < cuts; i++ {
		dst = seg.CutAppend(dst[:0], abstracts[i%len(abstracts)])
	}
	runtime.ReadMemStats(&after)
	out.AllocsPerCut = float64(after.Mallocs-before.Mallocs) / cuts

	// --- end-to-end build throughput (pages/s) ---
	measureBuild := func(workers int) (float64, error) {
		o := opts
		o.Workers = workers
		builds := 0
		start := time.Now()
		for time.Since(start) < minMeasure {
			if _, err := core.New(o).Build(corpus); err != nil {
				return 0, err
			}
			builds++
		}
		return float64(corpus.Len()) * float64(builds) / time.Since(start).Seconds(), nil
	}
	if out.PagesPerSec, err = measureBuild(0); err != nil {
		return nil, err
	}
	if out.PagesPerSecSequential, err = measureBuild(1); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSON emits the record as indented JSON.
func (r *BuildBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
